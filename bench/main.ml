(* Regenerates every table and figure of the paper's evaluation:

     table1   - Px86sim reordering constraints (Table 1)
     table2   - system configuration (Table 2)
     fig12/16 - bugs found in PMDK (+ manifestation detail)
     fig13/15 - bugs found in RECIPE (+ manifestation detail)
     fig14    - Jaaru state-space reduction vs. the eager (Yat) baseline,
                with a Bechamel timing run per benchmark
     scaling  - domain-parallel exploration: jobs=1 vs jobs=N wall time and
                the determinism cross-check
     analysis - overhead of the online persistency-sanitizer passes
     ablation - constraint refinement / commit-store design points

   Run with no arguments for everything, or pass section names. *)

open Jaaru

let section_header title = Format.printf "@.=== %s ===@.@." title

(* --- Table 1 ----------------------------------------------------------------- *)

let table1 () =
  section_header
    "Table 1: Px86sim reordering constraints (Y ordered / N reorderable / CL same-line)";
  Format.printf "%a@." Tso.Constraints.pp_table ()

(* --- Table 2 ----------------------------------------------------------------- *)

let table2 () =
  section_header "Table 2: system configuration";
  Format.printf "CPU                 %d-core host (exploration parallelises across domains: --jobs)@."
    (Domain.recommended_domain_count ());
  Format.printf "Volatile memory     host RAM@.";
  Format.printf "Non-volatile memory full Px86sim semantics simulated (store buffers,@.";
  Format.printf "                    flush buffers, clflush/clflushopt/clwb/sfence/mfence)@.";
  Format.printf "OS                  %s@." Sys.os_type;
  Format.printf "Runtime             OCaml %s@." Sys.ocaml_version

(* --- bug tables (Figs. 12/13/15/16) ------------------------------------------ *)

let run_bug_case ~id ~benchmark ~description scenario config =
  let t0 = Unix.gettimeofday () in
  let o = Explorer.run ~config scenario in
  let dt = Unix.gettimeofday () -. t0 in
  let symptom =
    match o.Explorer.bugs with [] -> "NOT FOUND" | b :: _ -> Bug.symptom b
  in
  Format.printf "%-14s %-16s %-55s %s@." id benchmark symptom
    (Printf.sprintf "(%d exec, %.2fs)" o.Explorer.stats.Stats.executions dt);
  (id, benchmark, description, symptom)

let fig12 () =
  section_header "Figure 12: bugs found in PMDK";
  Format.printf "%-14s %-16s %s@." "#" "Benchmark" "Symptom";
  List.map
    (fun (c : Pmdk.Workloads.case) ->
      run_bug_case ~id:c.id ~benchmark:c.benchmark ~description:c.description c.scenario c.config)
    (Pmdk.Workloads.fig12_cases () @ Pmdk.Workloads.checksum_cases ())

let fig13 () =
  section_header "Figure 13: bugs found in RECIPE (all 18, paper numbering)";
  Format.printf "%-14s %-16s %s@." "#" "Benchmark" "Symptom";
  List.map
    (fun (c : Recipe.Workloads.case) ->
      run_bug_case ~id:c.id ~benchmark:c.benchmark ~description:c.description c.scenario c.config)
    (Recipe.Workloads.fig13_cases ())

let manifestation_table title rows =
  section_header title;
  Format.printf "%-14s %-55s %s@." "Bug ID" "Type of bug" "Cause / manifestation";
  List.iter
    (fun (id, _benchmark, description, symptom) ->
      Format.printf "%-14s %-55s %s@." id description symptom)
    rows

(* --- Figure 14 ---------------------------------------------------------------- *)

type fig14_row = {
  benchmark : string;
  jexec : int;
  jtime : float;
  fpoints : int;
  per_fp : float;
  yat_log10 : float;
}

let fig14_sizes =
  [ ("CCEH", 24); ("FAST_FAIR", 10); ("P-ART", 8); ("P-BwTree", 7); ("P-CLHT", 3); ("P-Masstree", 4) ]

let fig14_row (benchmark, n) =
  let scn = Recipe.Workloads.fixed_scenario benchmark n in
  let config = { Config.default with Config.max_steps = 200_000 } in
  let t0 = Unix.gettimeofday () in
  let o = Explorer.run ~config scn in
  let jtime = Unix.gettimeofday () -. t0 in
  assert (not (Explorer.found_bug o));
  let yat = Yat.State_count.analyze ~config (fun ctx -> scn.Explorer.pre ctx) in
  {
    benchmark;
    jexec = o.Explorer.stats.Stats.executions;
    jtime;
    fpoints = o.Explorer.stats.Stats.failure_points;
    per_fp = Stats.executions_per_fp o.Explorer.stats;
    yat_log10 = yat.Yat.State_count.log10_total;
  }

let fig14 () =
  section_header "Figure 14: Jaaru's state-space reduction";
  Format.printf "%-12s %8s %10s %10s %10s %16s@." "Benchmark" "#JExec." "JTime" "#FPoints"
    "Exec/FP" "#Yat Execs.";
  let rows = List.map fig14_row fig14_sizes in
  List.iter
    (fun r ->
      Format.printf "%-12s %8d %9.2fs %10d %10.2f %16s@." r.benchmark r.jexec r.jtime r.fpoints
        r.per_fp
        (Format.asprintf "%a" Yat.State_count.pp_count r.yat_log10))
    rows;
  Format.printf
    "@.(Shape to compare with the paper: a handful of executions per failure point —@.\
     the paper reports 1.5 to 8 — against astronomically many eager states.)@."

(* Bechamel timing: one Test.make per Fig. 14 benchmark, measuring a full
   exhaustive exploration of that benchmark. *)
let fig14_bechamel () =
  section_header "Figure 14 (JTime column, Bechamel measurement)";
  let open Bechamel in
  let open Toolkit in
  let test_of (benchmark, n) =
    Test.make ~name:benchmark
      (Staged.stage (fun () ->
           let scn = Recipe.Workloads.fixed_scenario benchmark n in
           let config = { Config.default with Config.max_steps = 200_000 } in
           ignore (Explorer.run ~config scn)))
  in
  let test = Test.make_grouped ~name:"fig14" ~fmt:"%s/%s" (List.map test_of fig14_sizes) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ ns ] -> Format.printf "%-24s %10.3f ms / full exploration@." name (ns /. 1e6)
         | Some _ | None -> Format.printf "%-24s (no estimate)@." name)

(* Byte-identity of reports and comparable stats — the determinism contract
   every perf layer and jobs value must preserve. *)
let same_outcome (a : Explorer.outcome) (b : Explorer.outcome) =
  a.Explorer.bugs = b.Explorer.bugs
  && a.Explorer.multi_rf = b.Explorer.multi_rf
  && a.Explorer.perf = b.Explorer.perf
  && a.Explorer.findings = b.Explorer.findings
  && Stats.comparable a.Explorer.stats = Stats.comparable b.Explorer.stats

(* --- Figure 14 perf trajectory (BENCH_fig14.json) ----------------------------- *)

(* Replay-throughput trajectory over the Fig. 14 workloads, written as JSON so
   CI archives it and `make bench-check` flags regressions against the
   committed baseline. Per workload:

     - best-of-K jobs=1 wall time with snapshot/memo off — pure replay
       throughput (executions per second), the number the flat replay engine
       optimises;
     - the same at jobs=4 — domain scaling;
     - one jobs=1 run with both layers on — memo/snapshot hit rates.

   Every timed cell runs once untimed and Gc.compacts first, so the minima
   compare replay work rather than allocator state inherited from whichever
   cell happened to run before. *)

let fig14_json_path = "BENCH_fig14.json"
let bench_rounds = 3

let timed_cell f =
  ignore (f ());
  Gc.compact ();
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to bench_rounds do
    let t0 = Unix.gettimeofday () in
    let o = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some o
  done;
  (Option.get !last, !best)

let fig14_perf_config ~jobs ~layers =
  { Config.default with Config.max_steps = 200_000; jobs; snapshot = layers; memo = layers }

let measure_replay scn =
  timed_cell (fun () -> Explorer.run ~config:(fig14_perf_config ~jobs:1 ~layers:false) scn)

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let fig14_perf () =
  section_header (Printf.sprintf "Figure 14 perf trajectory (%s)" fig14_json_path);
  Format.printf "%-12s %8s %10s %12s %10s %10s %10s@." "Benchmark" "exec" "replay" "exec/s"
    "j=4 spdup" "memo hit%" "snap hit%";
  let open Jsonx in
  let total_execs = ref 0 and total_t = ref 0. in
  let rows =
    List.map
      (fun (benchmark, n) ->
        let scn = Recipe.Workloads.fixed_scenario benchmark n in
        let o1, t1 = measure_replay scn in
        let o4, t4 =
          timed_cell (fun () -> Explorer.run ~config:(fig14_perf_config ~jobs:4 ~layers:false) scn)
        in
        let ol, _tl =
          timed_cell (fun () -> Explorer.run ~config:(fig14_perf_config ~jobs:1 ~layers:true) scn)
        in
        (* The determinism contract, re-checked where the numbers are made:
           jobs and the snapshot/memo layers may only change wall time and
           cache-traffic diagnostics. *)
        assert (same_outcome o1 o4);
        assert (same_outcome o1 ol);
        let s = o1.Explorer.stats and sl = ol.Explorer.stats in
        let execs = s.Stats.executions in
        let eps = float_of_int execs /. t1 in
        let memo_rate = hit_rate sl.Stats.memo_hits sl.Stats.memo_misses in
        let snap_rate = hit_rate sl.Stats.snapshot_hits sl.Stats.snapshot_misses in
        total_execs := !total_execs + execs;
        total_t := !total_t +. t1;
        Format.printf "%-12s %8d %9.3fs %12.0f %9.2fx %9.1f%% %9.1f%%@." benchmark execs t1 eps
          (t1 /. t4) (100. *. memo_rate) (100. *. snap_rate);
        Obj
          [
            ("benchmark", Str benchmark);
            ("size", int n);
            ("executions", int execs);
            ("failure_points", int s.Stats.failure_points);
            ("replay_wall_s", Num t1);
            ("execs_per_sec", Num eps);
            ( "jobs_scaling",
              Arr
                [
                  Obj [ ("jobs", int 1); ("wall_s", Num t1); ("speedup", Num 1.) ];
                  Obj [ ("jobs", int 4); ("wall_s", Num t4); ("speedup", Num (t1 /. t4)) ];
                ] );
            ( "layered",
              Obj
                [
                  ("memo_hits", int sl.Stats.memo_hits);
                  ("memo_misses", int sl.Stats.memo_misses);
                  ("memo_saved", int sl.Stats.memo_saved);
                  ("memo_hit_rate", Num memo_rate);
                  ("snapshot_hits", int sl.Stats.snapshot_hits);
                  ("snapshot_misses", int sl.Stats.snapshot_misses);
                  ("snapshot_hit_rate", Num snap_rate);
                ] );
          ])
      fig14_sizes
  in
  let doc =
    Obj
      [
        ("schema", Str "jaaru-fig14-perf/1");
        ("rounds", int bench_rounds);
        ( "total",
          Obj
            [
              ("executions", int !total_execs);
              ("replay_wall_s", Num !total_t);
              ("execs_per_sec", Num (float_of_int !total_execs /. !total_t));
            ] );
        ("workloads", Arr rows);
      ]
  in
  Jsonx.to_file fig14_json_path doc;
  Format.printf "@.wrote %s (total %.0f exec/s over %d executions)@." fig14_json_path
    (float_of_int !total_execs /. !total_t)
    !total_execs

(* Regression gate: re-measure jobs=1 replay throughput and compare per
   workload against the committed baseline. Execution counts must match
   exactly (they are deterministic); throughput may regress by at most
   JAARU_BENCH_TOLERANCE (default 20%). Exits nonzero on violation. *)
let fig14_check () =
  section_header "Figure 14 perf check (fresh measurement vs committed baseline)";
  let baseline_path =
    Option.value (Sys.getenv_opt "JAARU_FIG14_BASELINE") ~default:fig14_json_path
  in
  let tolerance =
    match Sys.getenv_opt "JAARU_BENCH_TOLERANCE" with
    | Some s -> float_of_string s
    | None -> 0.20
  in
  let baseline = Jsonx.of_file baseline_path in
  Format.printf "baseline %s, tolerance %.0f%%@.@." baseline_path (100. *. tolerance);
  Format.printf "%-12s %12s %12s %8s %s@." "Benchmark" "base ex/s" "now ex/s" "ratio" "verdict";
  let failures = ref 0 in
  List.iter
    (fun row ->
      let benchmark = Jsonx.to_str (Jsonx.get "benchmark" row) in
      let n = int_of_float (Jsonx.to_num (Jsonx.get "size" row)) in
      let base_execs = int_of_float (Jsonx.to_num (Jsonx.get "executions" row)) in
      let base_eps = Jsonx.to_num (Jsonx.get "execs_per_sec" row) in
      let scn = Recipe.Workloads.fixed_scenario benchmark n in
      let o, t = measure_replay scn in
      let execs = o.Explorer.stats.Stats.executions in
      let eps = float_of_int execs /. t in
      let verdict =
        if execs <> base_execs then Printf.sprintf "FAIL (executions %d <> baseline %d)" execs base_execs
        else if eps < (1. -. tolerance) *. base_eps then "FAIL (throughput regression)"
        else "ok"
      in
      if verdict <> "ok" then incr failures;
      Format.printf "%-12s %12.0f %12.0f %7.2fx %s@." benchmark base_eps eps (eps /. base_eps)
        verdict)
    (Jsonx.to_arr (Jsonx.get "workloads" baseline));
  if !failures > 0 then begin
    Format.printf "@.%d workload(s) regressed beyond tolerance@." !failures;
    exit 1
  end
  else Format.printf "@.no regression beyond tolerance@."

(* --- scaling: domain-parallel exploration -------------------------------------- *)

(* jobs=1 vs jobs=N over the Fig. 14 workloads: the whole lazy search is
   embarrassingly parallel at the granularity of complete executions, so the
   frontier of choice-tree prefixes should scale until the host runs out of
   cores. Also asserts the determinism guarantee: every jobs value must
   report identical bugs/multi-rf/perf and identical stats modulo wall
   time. *)
let scaling () =
  section_header "Scaling: domain-parallel exploration (jobs=1 vs jobs=N, Fig. 14 workloads)";
  let cores = Domain.recommended_domain_count () in
  let njobs = List.sort_uniq compare [ 1; 2; 4; cores ] in
  Format.printf "host reports %d usable core(s)@.@." cores;
  Format.printf "%-12s" "Benchmark";
  List.iter (fun j -> Format.printf " %8s" (Printf.sprintf "j=%d" j)) njobs;
  Format.printf " %9s %s@." "speedup" "identical";
  List.iter
    (fun (benchmark, n) ->
      let scn = Recipe.Workloads.fixed_scenario benchmark n in
      let run jobs =
        let config = { Config.default with Config.max_steps = 200_000; jobs } in
        let t0 = Unix.gettimeofday () in
        let o = Explorer.run ~config scn in
        (o, Unix.gettimeofday () -. t0)
      in
      let results = List.map (fun j -> (j, run j)) njobs in
      let (_, (base_o, base_t)) = List.hd results in
      let best_t = List.fold_left (fun acc (_, (_, t)) -> min acc t) base_t results in
      let identical = List.for_all (fun (_, (o, _)) -> same_outcome base_o o) results in
      Format.printf "%-12s" benchmark;
      List.iter (fun (_, (_, t)) -> Format.printf " %7.2fs" t) results;
      Format.printf " %8.2fx %s@." (base_t /. best_t) (if identical then "yes" else "NO");
      assert identical)
    fig14_sizes

(* --- analysis overhead ---------------------------------------------------------- *)

(* Cost of the online persistency-sanitizer passes, split along the
   [analyze_hb] axis: each Fig. 14 workload explored exhaustively with the
   analysis engine off, with the sanitizer passes alone, and with the
   happens-before passes (vector-clock substrate + race + robustness) on
   top. All passes are O(1)-ish hashtable work per event — the HB layer adds
   clock allocation on stores and synchronisation events — so the HB
   increment should stay within ~2x of the sanitizer increment.

   Single runs are tens of milliseconds, well inside scheduler jitter, so
   the three configs are interleaved across several rounds and each
   (config, benchmark) cell keeps its minimum — the TOTAL row over those
   minima is the denoised summary and its HB/sanit ratio the number to
   watch. *)
let analysis_overhead () =
  section_header
    "Analysis: sanitizer + happens-before overhead (off / sanitizer / +HB, Fig. 14 \
     workloads)";
  let scns =
    List.map (fun (b, n) -> (b, Recipe.Workloads.fixed_scenario b n)) fig14_sizes
  in
  let configs = [| (false, false); (true, false); (true, true) |] in
  let nb = List.length scns in
  let times = Array.make_matrix (Array.length configs) nb infinity in
  let findings = Array.make nb 0 in
  (* One untimed warmup per (config, workload) cell — warming only the
     default config would leave the analysis passes' code paths and tables
     cold for their first timed round. *)
  Array.iter
    (fun (analyze, analyze_hb) ->
      let config = { Config.default with Config.max_steps = 200_000; analyze; analyze_hb } in
      List.iter (fun (_, scn) -> ignore (Explorer.run ~config scn)) scns)
    configs;
  for _round = 1 to 5 do
    Array.iteri
      (fun ci (analyze, analyze_hb) ->
        let config =
          { Config.default with Config.max_steps = 200_000; analyze; analyze_hb }
        in
        List.iteri
          (fun bi (_, scn) ->
            (* Level the allocator before every timed cell: the minima should
               compare analysis work, not major-heap state left behind by the
               previous cell. *)
            Gc.compact ();
            let t0 = Unix.gettimeofday () in
            let o = Explorer.run ~config scn in
            times.(ci).(bi) <- min times.(ci).(bi) (Unix.gettimeofday () -. t0);
            if analyze && analyze_hb then findings.(bi) <- o.Explorer.stats.Stats.findings)
          scns)
      configs
  done;
  Format.printf "%-12s %10s %10s %10s %10s %10s %9s@." "Benchmark" "off" "sanitizer"
    "+HB" "sanit.ovh" "HB ovh" "HB/sanit";
  let row name t_off t_san t_hb tail =
    let san_ovh = t_san -. t_off and hb_ovh = t_hb -. t_san in
    Format.printf "%-12s %9.2fs %9.2fs %9.2fs %9.1f%% %9.1f%% %8.2fx%s@." name t_off t_san
      t_hb
      (100. *. san_ovh /. t_off)
      (100. *. hb_ovh /. t_off)
      (if san_ovh > 0. then hb_ovh /. san_ovh else Float.nan)
      tail
  in
  List.iteri
    (fun bi (benchmark, _) ->
      row benchmark times.(0).(bi) times.(1).(bi) times.(2).(bi)
        (Printf.sprintf "  (%d finding(s))" findings.(bi)))
    scns;
  let total ci = Array.fold_left ( +. ) 0. times.(ci) in
  row "TOTAL" (total 0) (total 1) (total 2) ""

(* --- snapshot/resume ----------------------------------------------------------- *)

(* The failure-point snapshot layer (Config.snapshot): every crash subtree
   replays from a captured snapshot instead of re-executing the pre-failure
   program, so per-replay cost stops depending on how much program ran before
   the crash. The sweep uses a bulk-load scenario whose pre does n
   store+clflush+sfence rounds and whose recovery reads one slot — the
   pre-failure-dominated shape where the paper's fork-based rollback pays
   off. Wall-time ratio should grow with n; outcomes must stay
   byte-identical with snapshots on or off. *)
let snapshot_scenario n =
  let base = 0x1000 in
  Explorer.scenario ~name:(Printf.sprintf "bulk-load-%d" n)
    ~pre:(fun ctx ->
      for i = 0 to n - 1 do
        Ctx.store64 ctx ~label:"load" (base + (64 * i)) (i + 1);
        Ctx.clflush ctx ~label:"persist" (base + (64 * i)) 8;
        Ctx.sfence ctx ~label:"order" ()
      done)
    ~post:(fun ctx -> ignore (Ctx.load64 ctx ~label:"probe" base))

let snapshot_timed ~snapshot scn =
  let config = { Config.default with Config.snapshot } in
  let t0 = Unix.gettimeofday () in
  let o = Explorer.run ~config scn in
  (o, Unix.gettimeofday () -. t0)

let snapshot_sweep sizes =
  section_header "Snapshot: pre-failure-length sweep (snapshot off vs on)";
  Format.printf "%-8s %8s %10s %10s %9s %s@." "n" "exec" "off" "on" "speedup" "identical";
  List.map
    (fun n ->
      let scn = snapshot_scenario n in
      let o_off, t_off = snapshot_timed ~snapshot:false scn in
      let o_on, t_on = snapshot_timed ~snapshot:true scn in
      let identical = same_outcome o_off o_on in
      let speedup = t_off /. t_on in
      Format.printf "%-8d %8d %9.3fs %9.3fs %8.2fx %s@." n
        o_off.Explorer.stats.Stats.executions t_off t_on speedup
        (if identical then "yes" else "NO");
      assert identical;
      speedup)
    sizes

(* Same comparison on the RECIPE bulk-load workloads: real data-structure
   recoveries, so the pre/recovery ratio is less extreme than the sweep's —
   the interesting column is still "identical". *)
let snapshot_recipe () =
  section_header "Snapshot: RECIPE workloads (snapshot off vs on)";
  Format.printf "%-12s %8s %10s %10s %9s %s@." "Benchmark" "exec" "off" "on" "speedup"
    "identical";
  List.iter
    (fun (benchmark, n) ->
      let scn = Recipe.Workloads.fixed_scenario benchmark n in
      let run snapshot =
        let config = { Config.default with Config.max_steps = 200_000; snapshot } in
        let t0 = Unix.gettimeofday () in
        let o = Explorer.run ~config scn in
        (o, Unix.gettimeofday () -. t0)
      in
      let o_off, t_off = run false in
      let o_on, t_on = run true in
      let identical = same_outcome o_off o_on in
      Format.printf "%-12s %8d %9.2fs %9.2fs %8.2fx %s@." benchmark
        o_off.Explorer.stats.Stats.executions t_off t_on (t_off /. t_on)
        (if identical then "yes" else "NO");
      assert identical)
    fig14_sizes

let snapshot_bench ~smoke =
  let sizes = if smoke then [ 32; 64 ] else [ 64; 128; 256; 512 ] in
  let speedups = snapshot_sweep sizes in
  if not smoke then snapshot_recipe ();
  let best = List.fold_left max 0. speedups in
  Format.printf "@.best sweep speedup: %.2fx%s@." best
    (if best >= 2. then " (>= 2x pre-failure reduction)" else "");
  (* The full run must demonstrate the >= 2x reduction; the smoke run only
     guards the byte-identity asserts and that the layer engages at all. *)
  if not smoke then assert (best >= 2.)

(* --- crash-state memoization ---------------------------------------------------- *)

(* The memoization layer (Config.memo): at each committed crash the surviving
   persistent state is canonicalized (sequence numbers rank-normalized, so
   different drain-cut vectors persisting the same bytes collide) and fully
   explored recovery subtrees are replayed from a cached verdict instead of
   re-executed. Redundant crash states arise from concurrency: two writer
   threads running the same code reach the same persistent state through many
   schedule/drain combinations, and every duplicate's recovery subtree is
   skipped. Outcomes must stay byte-identical with the layer on or off — the
   only observable differences are the diagnostic hit counters and wall
   time. *)
let memo_row ~label ~jobs config scn =
  let run memo =
    let config = { config with Config.memo; jobs } in
    let t0 = Unix.gettimeofday () in
    let o = Explorer.run ~config scn in
    (o, Unix.gettimeofday () -. t0)
  in
  let o_off, t_off = run false in
  let o_on, t_on = run true in
  let identical = same_outcome o_off o_on in
  let s = o_on.Explorer.stats in
  let replayed = s.Stats.executions - s.Stats.memo_saved in
  Format.printf "%-22s %8d %9d %7d %7d %9.2fs %9.2fs %s@." label s.Stats.executions replayed
    s.Stats.memo_hits s.Stats.memo_saved t_off t_on
    (if identical then "yes" else "NO");
  assert identical;
  (label, s.Stats.memo_hits, s.Stats.memo_saved)

let memo_bench ~smoke =
  section_header "Memo: crash-state memoization (memo off vs on)";
  Format.printf "%-22s %8s %9s %7s %7s %10s %10s %s@." "Workload" "exec" "replayed" "hits"
    "saved" "off" "on" "identical";
  let clht ks0 ks1 = Recipe.Workloads.concurrent_scenario ~ks0 ~ks1 ~racy:false () in
  let racy = Recipe.Workloads.concurrent_scenario ~racy:true () in
  let buffered mf =
    {
      Config.default with
      Config.evict_policy = Config.Buffered;
      max_failures = mf;
      max_steps = 200_000;
    }
  in
  let rows =
    if smoke then [ ("P-CLHT racy increment", 1, buffered 2, racy) ]
    else
      [
        ("P-CLHT conc (1+1 keys)", 1, buffered 2, clht [ 3 ] [ 11 ]);
        ("P-CLHT conc (2+2 keys)", 1, buffered 2, clht [ 3; 5 ] [ 11; 13 ]);
        ("P-CLHT conc (j=4)", 4, buffered 2, clht [ 3; 5 ] [ 11; 13 ]);
        ("P-CLHT racy increment", 1, buffered 2, racy);
      ]
  in
  let results =
    List.map (fun (label, jobs, config, scn) -> memo_row ~label ~jobs config scn) rows
  in
  let saving = List.filter (fun (_, _, saved) -> saved > 0) results in
  Format.printf "@.%d workload(s) with replayed-recovery savings@." (List.length saving);
  (* The full run must demonstrate savings on at least two workloads; the
     smoke run only guards the byte-identity asserts and that the layer
     engages at all. *)
  if smoke then assert (List.exists (fun (_, hits, _) -> hits > 0) results)
  else assert (List.length saving >= 2)

(* --- checkpoint / resume --------------------------------------------------------- *)

(* Survivability layer (Config.wall_budget + Explorer.run ~checkpoint/~resume):
   a run that trips its wall-clock budget stops cooperatively, writes the
   unexplored frontier to the checkpoint file, and a resumed run continues
   from exactly that frontier. Chaining budget-limited sessions to completion
   must produce an outcome byte-identical to one uninterrupted run; the
   interesting numbers are how many sessions the chain needed and what the
   save/load/re-validate overhead cost relative to the straight run. *)
let checkpoint_bench ~smoke =
  section_header "Checkpoint: wall-budget interrupt/resume chain vs uninterrupted run";
  (* A deep tree (two nested failures over a real PMDK case) so the budget
     has something to interrupt; the seeded bug is still found, exercising
     report merging across sessions. *)
  let case = List.hd (Pmdk.Workloads.fig12_cases ()) in
  let scn = case.Pmdk.Workloads.scenario in
  let base_config =
    { case.Pmdk.Workloads.config with Config.max_failures = 2; stop_at_first_bug = false }
  in
  (* Warm-up exploration so the baseline timing doesn't charge first-run
     costs (code paths, GC heap growth) that the chain then gets for free. *)
  ignore (Explorer.run ~config:base_config scn);
  let t0 = Unix.gettimeofday () in
  let baseline = Explorer.run ~config:base_config scn in
  let t_base = Unix.gettimeofday () -. t0 in
  let path = Filename.temp_file "jaaru-bench" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let budget = min 0.25 (max 0.01 (t_base /. if smoke then 6. else 12.)) in
      let config = { base_config with Config.wall_budget = Some budget } in
      let t0 = Unix.gettimeofday () in
      let sessions = ref 1 in
      let o = ref (Explorer.run ~config ~checkpoint:path scn) in
      while !o.Explorer.stats.Stats.interrupted do
        incr sessions;
        (* Safety net: if the budget is too tight to make progress on this
           host, finish the tail of the chain without one. *)
        let config =
          if !sessions > 50 then { config with Config.wall_budget = None } else config
        in
        o := Explorer.run ~config ~resume:(Checkpoint.load path) ~checkpoint:path scn
      done;
      let t_chain = Unix.gettimeofday () -. t0 in
      let identical = same_outcome baseline !o in
      Format.printf "%-14s %10s %12s %10s %s@." "sessions" "baseline" "chain" "overhead"
        "identical";
      Format.printf "%-14d %9.2fs %11.2fs %9.1f%% %s@." !sessions t_base t_chain
        (100. *. ((t_chain /. t_base) -. 1.))
        (if identical then "yes" else "NO");
      assert identical;
      (* The chain must actually have been interrupted at least once, or the
         section proved nothing about resume. *)
      assert (!sessions > 1))

(* --- ablations ----------------------------------------------------------------- *)

(* Constraint refinement and lazy enumeration vs. eager exploration: an
   unflushed array of n 64-bit integers (the paper's 9^(n/8) example). With a
   commit store guarding the data, Jaaru's executions grow linearly in n;
   the eager baseline grows exponentially. *)
let ablation_lazy_vs_eager () =
  section_header "Ablation: lazy (Jaaru) vs eager (Yat) on an unflushed n-int array";
  Format.printf "%-6s %12s %14s %18s@." "n" "Jaaru exec" "eager states" "eager (analytic)";
  List.iter
    (fun n ->
      let base = 0x1000 in
      let pre ctx =
        for i = 0 to n - 1 do
          Ctx.store64 ctx ~label:"init" (base + (8 * i)) (i + 1)
        done
        (* no flush: the crash happens with everything in cache *)
      in
      let post ctx =
        let sum = ref 0 in
        for i = 0 to n - 1 do
          sum := !sum + Ctx.load64 ctx ~label:"read" (base + (8 * i))
        done;
        Printf.sprintf "%d" !sum
      in
      let o =
        Explorer.run (Explorer.scenario ~name:"array" ~pre ~post:(fun ctx -> ignore (post ctx)))
      in
      let eager = Yat.Eager.check ~state_limit:100_000 ~pre ~post () in
      let yat = Yat.State_count.analyze pre in
      Format.printf "%-6d %12d %13d%s %18s@." n o.Explorer.stats.Stats.executions
        eager.Yat.Eager.states
        (if eager.Yat.Eager.truncated then "+" else "")
        (Format.asprintf "%a" Yat.State_count.pp_count yat.Yat.State_count.log10_total))
    [ 2; 4; 8; 16; 24 ]

(* The commit-store insight (paper section 3.2): guarded recovery reads keep
   the number of explored executions per failure point constant; unguarded
   reads of k unflushed cache lines explore 2^k executions. *)
let ablation_commit_store () =
  section_header "Ablation: commit store vs blind recovery reads";
  Format.printf "%-8s %18s %18s@." "lines" "guarded exec" "blind exec";
  List.iter
    (fun k ->
      let base = 0x1000 in
      let data_base = 0x1100 in
      let pre ctx =
        for i = 0 to k - 1 do
          Ctx.store64 ctx ~label:"data" (data_base + (64 * i)) (i + 100)
        done;
        Ctx.clflush ctx ~label:"flush data" data_base (64 * k);
        Ctx.sfence ctx ~label:"fence" ();
        Ctx.store64 ctx ~label:"commit" base 1;
        Ctx.clflush ctx ~label:"flush commit" base 8
      in
      let guarded ctx =
        if Ctx.load64 ctx ~label:"read commit" base = 1 then
          for i = 0 to k - 1 do
            ignore (Ctx.load64 ctx ~label:"read data" (data_base + (64 * i)))
          done
      in
      let blind ctx =
        for i = 0 to k - 1 do
          ignore (Ctx.load64 ctx ~label:"read data blind" (data_base + (64 * i)))
        done
      in
      let run post = (Explorer.run (Explorer.scenario ~name:"cs" ~pre ~post)).Explorer.stats in
      Format.printf "%-8d %18d %18d@." k (run guarded).Stats.executions
        (run blind).Stats.executions)
    [ 1; 2; 4; 6; 8 ]

(* Scaling sweep: Jaaru's executions grow polynomially with workload size
   while the eager count grows exponentially — the crossover argument behind
   the paper's complexity claim (section 3.2). One series per benchmark,
   like a figure. *)
let ablation_scaling () =
  section_header "Ablation: workload-size scaling (Jaaru executions vs eager states)";
  Format.printf "%-12s %6s %10s %10s %18s@." "Benchmark" "n" "JExec" "FPoints" "eager states";
  List.iter
    (fun benchmark ->
      List.iter
        (fun n ->
          let scn = Recipe.Workloads.fixed_scenario benchmark n in
          let config = { Config.default with Config.max_steps = 200_000 } in
          let o = Explorer.run ~config scn in
          let yat = Yat.State_count.analyze ~config (fun ctx -> scn.Explorer.pre ctx) in
          Format.printf "%-12s %6d %10d %10d %18s@." benchmark n
            o.Explorer.stats.Stats.executions o.Explorer.stats.Stats.failure_points
            (Format.asprintf "%a" Yat.State_count.pp_count yat.Yat.State_count.log10_total))
        [ 2; 4; 8; 16 ])
    [ "CCEH"; "FAST_FAIR"; "P-BwTree" ]

(* Multi-failure depth: the paper's command-line option bounding the exec
   stack. Each extra failure multiplies the scenario space. *)
let ablation_multi_failure () =
  section_header "Ablation: failure-scenario depth (max_failures)";
  Format.printf "%-14s %12s %12s@." "max_failures" "executions" "wall time";
  List.iter
    (fun depth ->
      let scn = Recipe.Workloads.fixed_scenario "P-CLHT" 2 in
      let config = { Config.default with Config.max_failures = depth; Config.max_steps = 200_000 } in
      let t0 = Unix.gettimeofday () in
      let o = Explorer.run ~config scn in
      let dt = Unix.gettimeofday () -. t0 in
      assert (not (Explorer.found_bug o));
      Format.printf "%-14d %12d %11.2fs@." depth o.Explorer.stats.Stats.executions dt)
    [ 0; 1; 2 ]

(* Eviction-policy cost: the Buffered policy adds drain decisions at every
   injected failure. *)
let ablation_evict_policy () =
  section_header "Ablation: eviction policy (eager vs buffered store buffers)";
  Format.printf "%-10s %12s %14s@." "policy" "executions" "rf decisions";
  List.iter
    (fun (name, policy) ->
      let base = 0x1000 in
      let pre ctx =
        for i = 0 to 3 do
          Ctx.store64 ctx ~label:"w" (base + (64 * i)) (i + 1);
          Ctx.clflush ctx ~label:"f" (base + (64 * i)) 8;
          Ctx.sfence ctx ~label:"s" ()
        done
      in
      let post ctx =
        for i = 0 to 3 do
          ignore (Ctx.load64 ctx ~label:"r" (base + (64 * i)))
        done
      in
      let config = { Config.default with Config.evict_policy = policy } in
      let o = Explorer.run ~config (Explorer.scenario ~name:"ev" ~pre ~post) in
      Format.printf "%-10s %12d %14d@." name o.Explorer.stats.Stats.executions
        o.Explorer.stats.Stats.rf_decisions)
    [ ("eager", Config.Eager); ("buffered", Config.Buffered) ]

(* The skip-if-no-writes failure-point optimisation. *)
let ablation_fp_optimization () =
  section_header "Ablation: failure points with vs without the no-writes-skip optimisation";
  let base = 0x1000 in
  let pre ctx =
    Ctx.store64 ctx ~label:"w" base 1;
    (* A burst of flushes with no intervening writes: only the first is a
       useful failure point. *)
    for _ = 1 to 8 do
      Ctx.clflush ctx ~label:"redundant flush" base 8
    done;
    Ctx.store64 ctx ~label:"w2" (base + 64) 2;
    Ctx.clflush ctx ~label:"flush 2" (base + 64) 8
  in
  let o = Explorer.run (Explorer.scenario ~name:"fp-opt" ~pre ~post:(fun _ -> ())) in
  Format.printf "flush instructions executed: 10; failure points explored: %d@."
    o.Explorer.stats.Stats.failure_points;
  Format.printf "(without the optimisation every flush would be a failure point)@."

let ablations () =
  ablation_lazy_vs_eager ();
  ablation_commit_store ();
  ablation_fp_optimization ();
  ablation_scaling ();
  ablation_multi_failure ();
  ablation_evict_policy ()

(* --- driver -------------------------------------------------------------------- *)

let () =
  let sections = List.tl (Array.to_list Sys.argv) in
  let want s = sections = [] || List.mem s sections in
  if want "table1" then table1 ();
  if want "table2" then table2 ();
  let pmdk_rows = if want "fig12" || want "fig16" then fig12 () else [] in
  let recipe_rows = if want "fig13" || want "fig15" then fig13 () else [] in
  if want "fig15" then manifestation_table "Figure 15: RECIPE bug manifestations" recipe_rows;
  if want "fig16" then manifestation_table "Figure 16: PMDK bug manifestations" pmdk_rows;
  if want "fig14" then begin
    fig14 ();
    fig14_bechamel ()
  end;
  if want "fig14-json" then fig14_perf ();
  (* fig14-check is opt-in only: `make bench-check` runs it against the
     committed BENCH_fig14.json and fails the build on a regression. *)
  if List.mem "fig14-check" sections then fig14_check ();
  if want "scaling" then scaling ();
  if want "analysis" then analysis_overhead ();
  if want "snapshot" then snapshot_bench ~smoke:false;
  (* snapshot-smoke is opt-in only (CI): a seconds-long subset of the
     snapshot section that still exercises the byte-identity asserts. *)
  if List.mem "snapshot-smoke" sections then snapshot_bench ~smoke:true;
  if want "memo" then memo_bench ~smoke:false;
  (* memo-smoke is opt-in only (CI), like snapshot-smoke. *)
  if List.mem "memo-smoke" sections then memo_bench ~smoke:true;
  if want "checkpoint" then checkpoint_bench ~smoke:false;
  (* checkpoint-smoke is opt-in only (CI), like snapshot-smoke. *)
  if List.mem "checkpoint-smoke" sections then checkpoint_bench ~smoke:true;
  if want "ablation" then ablations ()
