(* Minimal JSON support for the bench executable: enough to write
   BENCH_fig14.json and to read the committed baseline back for the
   regression check. Deliberately dependency-free — the bench binary links
   only what the container already has. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- writer -------------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else invalid_arg "Jsonx: non-finite number"

let rec write_into b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          write_into b ~indent:(indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\": ";
          write_into b ~indent:(indent + 2) item)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  write_into b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string v))

(* --- parser --------------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* The writer only emits \u for control characters; decode the
                 BMP subset we can round-trip and reject the rest. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escape unsupported"
          | _ -> fail "bad escape");
          advance ();
          loop ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- accessors ------------------------------------------------------------ *)

let member k v = match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let get k v =
  match member k v with
  | Some x -> x
  | None -> raise (Parse_error (Printf.sprintf "missing member %S" k))

let to_num = function Num f -> f | _ -> raise (Parse_error "expected number")
let to_str = function Str s -> s | _ -> raise (Parse_error "expected string")
let to_arr = function Arr l -> l | _ -> raise (Parse_error "expected array")
