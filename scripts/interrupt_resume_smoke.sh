#!/usr/bin/env bash
# Out-of-process survivability smoke: SIGTERM a real `jaaru check` run
# mid-flight, resume it from its on-disk checkpoint, and assert the resumed
# report is byte-identical to an uninterrupted baseline.
#
# Runs the built binary directly (not `dune exec`) so the signal is
# delivered to the checker itself rather than to a build-tool wrapper.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/jaaru_cli.exe
JAARU=_build/default/bin/jaaru_cli.exe

# The acceptance combination: parallel exploration with both replay
# accelerators off, over a deep two-failure tree.
ARGS=(check pmdk-1 --exhaustive --max-failures 2 --jobs 4 --memo off --snapshot off)

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== baseline (uninterrupted) =="
"$JAARU" "${ARGS[@]}" --report-out "$work/baseline.txt"

echo "== interrupted run (SIGTERM after 2s) =="
"$JAARU" "${ARGS[@]}" --checkpoint "$work/run.ckpt" --checkpoint-every 1 \
  --report-out "$work/resumed.txt" &
pid=$!
sleep 2
kill -TERM "$pid" 2>/dev/null || true
status=0
wait "$pid" || status=$?

if [ "$status" -eq 0 ]; then
  # The exploration beat the signal; its completion checkpoint and report
  # are already those of a finished run. Still valid, just less interesting.
  echo "run completed before the signal landed (ok on fast hosts)"
else
  echo "interrupted with status $status; resuming"
  for i in $(seq 1 20); do
    status=0
    "$JAARU" "${ARGS[@]}" --resume "$work/run.ckpt" \
      --report-out "$work/resumed.txt" || status=$?
    [ "$status" -eq 0 ] && break
    echo "-- session $i interrupted again; continuing"
  done
  if [ "$status" -ne 0 ]; then
    echo "FAIL: run never completed after 20 resume sessions" >&2
    exit 1
  fi
fi

echo "== diff: resumed report vs baseline =="
diff -u "$work/baseline.txt" "$work/resumed.txt"
echo "OK: resumed report is byte-identical to the uninterrupted baseline"
