#!/usr/bin/env bash
# Fleet determinism under injected faults: run `jaaru fleet` with the chaos
# harness killing, hanging and tearing its own workers, and assert the merged
# report stays byte-identical to the single-process `jaaru check` baseline —
# for every worker count, chaos on or off. This is the end-to-end half of the
# fleet story (real processes, real signals, real pipes); test_fleet.ml
# covers the in-process coordinator.
#
# Runs the built binary directly (not `dune exec`) so workers are spawned
# from the real executable path rather than a build-tool wrapper.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/jaaru_cli.exe
JAARU=_build/default/bin/jaaru_cli.exe

CHAOS="kill:0.3,hang:0.1,torn:0.2"
WORKER_MATRIX=(2 4)

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# case_id -> extra per-case flags (a deepened PMDK tree and a paper
# RECIPE structure, so both workload families ride the fleet).
run_case() {
  local case_id=$1; shift
  local extra=("$@")

  echo "== $case_id: single-process baseline =="
  "$JAARU" check "$case_id" --exhaustive "${extra[@]}" \
    --report-out "$work/$case_id.baseline.txt"

  for workers in "${WORKER_MATRIX[@]}"; do
    echo "== $case_id: fleet --fleet-workers $workers (no chaos) =="
    "$JAARU" fleet "$case_id" --fleet-workers "$workers" "${extra[@]}" \
      --report-out "$work/$case_id.fleet$workers.txt"
    diff -u "$work/$case_id.baseline.txt" "$work/$case_id.fleet$workers.txt"

    echo "== $case_id: fleet --fleet-workers $workers --fleet-chaos $CHAOS =="
    "$JAARU" fleet "$case_id" --fleet-workers "$workers" "${extra[@]}" \
      --fleet-chaos "$CHAOS" --fleet-chaos-seed 7 --heartbeat-timeout 1 \
      --report-out "$work/$case_id.chaos$workers.txt"
    diff -u "$work/$case_id.baseline.txt" "$work/$case_id.chaos$workers.txt"
  done
}

run_case pmdk-1 --max-failures 2
run_case P-CLHT-1

echo "OK: fleet reports are byte-identical to single-process baselines" \
     "(workers: ${WORKER_MATRIX[*]}; chaos on and off)"
