#!/usr/bin/env bash
# PBT determinism smoke: `jaaru pbt --seed S` must print a byte-identical
# report for every worker count and with the snapshot/memo replay layers on
# or off — generation is seeded per (seed, structure) and each exploration's
# outcome is jobs/layer-invariant by the explorer's contract, so stdout
# (which never mentions wall clock; rates go to stderr) can be diffed.
#
# The worker-count axis comes from JAARU_TEST_JOBS (the CI matrix variable);
# jobs=1 is always the reference. A seeded-bug structure is included so the
# shrunk witness and its repro line are covered by the diff, not just clean
# "ok" lines.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/jaaru_cli.exe
JAARU=_build/default/bin/jaaru_cli.exe

SEED=${JAARU_PBT_SEED:-9}
JOBS=${JAARU_TEST_JOBS:-4}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run() { # run <outfile> <extra args...>
  local out=$1
  shift
  "$JAARU" pbt --seed "$SEED" "$@" >"$work/$out" 2>/dev/null
  # The seeded structure is expected to fail (nonzero exit); only its
  # stdout participates in the diff.
  "$JAARU" pbt --structure 'pmdk-hashmap-atomic!missing-entry-flush' \
    --seed "$SEED" --count 50 "$@" >>"$work/$out" 2>/dev/null || true
}

echo "== reference: jobs=1, snapshot/memo on =="
run reference.txt --jobs 1

for combo in "--jobs $JOBS" \
  "--jobs 1 --snapshot off --memo off" \
  "--jobs $JOBS --snapshot off --memo off"; do
  echo "== diff vs: $combo =="
  # shellcheck disable=SC2086
  run candidate.txt $combo
  diff -u "$work/reference.txt" "$work/candidate.txt"
done

grep -q 'FAIL' "$work/reference.txt" || {
  echo "FAIL: seeded structure did not produce a witness" >&2
  exit 1
}
echo "OK: pbt report is byte-identical across jobs {1,$JOBS} x snapshot/memo {on,off}"
