(* Functional and model-checking tests across the RECIPE mini-suite. *)
open Jaaru

let no_failures = { Config.default with Config.max_failures = 0 }

let run_functional name body =
  let o = Explorer.run ~config:no_failures (Explorer.scenario ~name ~pre:body ~post:(fun _ -> ())) in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) (name ^ ": no bugs") false (Explorer.found_bug o)

let keys n = List.init n (fun i -> ((i * 17) mod 97) + 1)

let cceh_functional () =
  run_functional "cceh-fn" (fun ctx ->
      let t = Recipe.Cceh.create_or_open ctx in
      List.iter (fun k -> Recipe.Cceh.insert t k (k * 3)) (keys 30);
      Recipe.Cceh.check t;
      List.iter
        (fun k -> Ctx.check ctx (Recipe.Cceh.lookup t k = Some (k * 3)) "cceh lookup")
        (keys 30);
      Ctx.check ctx (Recipe.Cceh.lookup t 4099 = None) "cceh phantom";
      Recipe.Cceh.insert t 5 999;
      Ctx.check ctx (Recipe.Cceh.lookup t 5 = Some 999) "cceh update";
      Recipe.Cceh.remove t 5;
      Ctx.check ctx (Recipe.Cceh.lookup t 5 = None) "cceh remove";
      Recipe.Cceh.check t)

let fast_fair_functional () =
  run_functional "ff-fn" (fun ctx ->
      let t = Recipe.Fast_fair.create_or_open ctx in
      List.iter (fun k -> Recipe.Fast_fair.insert t k (k * 3)) (keys 40);
      Recipe.Fast_fair.check t;
      List.iter
        (fun k -> Ctx.check ctx (Recipe.Fast_fair.lookup t k = Some (k * 3)) "ff lookup")
        (keys 40);
      Ctx.check ctx (Recipe.Fast_fair.lookup t 4099 = None) "ff phantom";
      Recipe.Fast_fair.insert t 7 999;
      Ctx.check ctx (Recipe.Fast_fair.lookup t 7 = Some 999) "ff update";
      let ks = List.map fst (Recipe.Fast_fair.entries t) in
      Ctx.check ctx (ks = List.sort_uniq compare (7 :: keys 40)) "ff entries sorted")

let p_art_functional () =
  run_functional "art-fn" (fun ctx ->
      let t = Recipe.P_art.create_or_open ctx in
      List.iter (fun k -> Recipe.P_art.insert t k (k * 3)) (keys 40);
      Recipe.P_art.check t;
      List.iter
        (fun k -> Ctx.check ctx (Recipe.P_art.lookup t k = Some (k * 3)) "art lookup")
        (keys 40);
      Ctx.check ctx (Recipe.P_art.lookup t 77777 = None) "art phantom";
      Recipe.P_art.insert t 9 999;
      Ctx.check ctx (Recipe.P_art.lookup t 9 = Some 999) "art update";
      (* keys forcing multi-byte spines *)
      Recipe.P_art.insert t 0x01020304 1;
      Recipe.P_art.insert t 0x01020504 2;
      Recipe.P_art.insert t 0x01030304 3;
      Ctx.check ctx (Recipe.P_art.lookup t 0x01020304 = Some 1) "art deep 1";
      Ctx.check ctx (Recipe.P_art.lookup t 0x01020504 = Some 2) "art deep 2";
      Ctx.check ctx (Recipe.P_art.lookup t 0x01030304 = Some 3) "art deep 3";
      Recipe.P_art.check t)

let p_bwtree_functional () =
  run_functional "bwtree-fn" (fun ctx ->
      let t = Recipe.P_bwtree.create_or_open ctx in
      List.iter (fun k -> Recipe.P_bwtree.insert t k (k * 3)) (keys 25);
      Recipe.P_bwtree.check t;
      List.iter
        (fun k -> Ctx.check ctx (Recipe.P_bwtree.lookup t k = Some (k * 3)) "bw lookup")
        (keys 25);
      Ctx.check ctx (Recipe.P_bwtree.lookup t 4099 = None) "bw phantom";
      Recipe.P_bwtree.insert t 11 999;
      Ctx.check ctx (Recipe.P_bwtree.lookup t 11 = Some 999) "bw update";
      Ctx.check ctx (Recipe.P_bwtree.gc_pending t > 0) "bw gc saw retirements")

let p_clht_functional () =
  run_functional "clht-fn" (fun ctx ->
      let t = Recipe.P_clht.create_or_open ctx in
      List.iter (fun k -> Recipe.P_clht.insert t k (k * 3)) (keys 20);
      Recipe.P_clht.check t;
      List.iter
        (fun k -> Ctx.check ctx (Recipe.P_clht.lookup t k = Some (k * 3)) "clht lookup")
        (keys 20);
      Ctx.check ctx (Recipe.P_clht.lookup t 4099 = None) "clht phantom";
      Recipe.P_clht.insert t 13 999;
      Ctx.check ctx (Recipe.P_clht.lookup t 13 = Some 999) "clht update";
      Recipe.P_clht.remove t 13;
      Ctx.check ctx (Recipe.P_clht.lookup t 13 = None) "clht remove";
      Recipe.P_clht.check t)

let p_masstree_functional () =
  run_functional "mass-fn" (fun ctx ->
      let t = Recipe.P_masstree.create_or_open ctx in
      let pairs = List.map (fun k -> ((k mod 11) + 1, (k mod 7) + 1, k * 3)) (keys 25) in
      List.iter (fun (s0, s1, v) -> Recipe.P_masstree.insert t ~slice0:s0 ~slice1:s1 v) pairs;
      Recipe.P_masstree.check t;
      List.iter
        (fun (s0, s1, _) ->
          Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:s0 ~slice1:s1 <> None) "mass lookup")
        pairs;
      Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:99 ~slice1:99 = None) "mass phantom")

(* --- model checking --------------------------------------------------------- *)

let check_case (c : Recipe.Workloads.case) () =
  let o = Explorer.run ~config:c.config c.scenario in
  Format.printf "%s: %a@." c.id Explorer.pp_outcome o;
  match c.expected_symptom with
  | None ->
      List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
      Alcotest.(check bool) (c.id ^ ": clean") false (Explorer.found_bug o);
      Alcotest.(check bool) (c.id ^ ": exhausted") true o.Explorer.stats.Stats.exhausted
  | Some fragments ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        nn = 0 || at 0
      in
      let hit =
        List.exists (fun b -> List.exists (contains (Bug.symptom b)) fragments) o.Explorer.bugs
      in
      if not hit then
        List.iter (fun b -> Format.printf "got instead: %s@." (Bug.symptom b)) o.Explorer.bugs;
      Alcotest.(check bool) (c.id ^ ": manifested") true hit

let small_fixed_cases () =
  List.map
    (fun (b, n) ->
      Recipe.Workloads.
        {
          id = b ^ "-fixed-small";
          benchmark = b;
          description = "fixed (small)";
          expected_symptom = None;
          lint_roots = [];
          scenario = Recipe.Workloads.fixed_scenario b n;
          config = { Jaaru.Config.default with max_steps = 40_000 };
        })
    [ ("CCEH", 4); ("FAST_FAIR", 6); ("P-ART", 4); ("P-BwTree", 5); ("P-CLHT", 3); ("P-Masstree", 3) ]

let case_tests cases =
  List.map (fun c -> Alcotest.test_case c.Recipe.Workloads.id `Quick (check_case c)) cases

let () =
  Alcotest.run "recipe-suite"
    [
      ( "functional",
        [
          Alcotest.test_case "cceh" `Quick cceh_functional;
          Alcotest.test_case "fast_fair" `Quick fast_fair_functional;
          Alcotest.test_case "p_art" `Quick p_art_functional;
          Alcotest.test_case "p_bwtree" `Quick p_bwtree_functional;
          Alcotest.test_case "p_clht" `Quick p_clht_functional;
          Alcotest.test_case "p_masstree" `Quick p_masstree_functional;
        ] );
      ("fixed", case_tests (small_fixed_cases ()));
      ("fig13", case_tests (Recipe.Workloads.fig13_cases ()));
      ("concurrent", case_tests (Recipe.Workloads.concurrent_cases ()));
    ]
