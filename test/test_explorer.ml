(* The explorer driver and its reporting types. *)
open Jaaru

let base = 0x1000

(* --- Bug ----------------------------------------------------------------------- *)

let mk_bug kind location = { Bug.kind; location; exec_depth = 1; trace = []; dropped = 0 }

let test_bug_symptoms () =
  Alcotest.(check string) "illegal"
    "Illegal memory access at btree_map.ml:89"
    (Bug.symptom (mk_bug (Bug.Illegal_access { addr = 0; width = 8; op = "load" }) "btree_map.ml:89"));
  Alcotest.(check string) "assert" "Assertion failure at heap.ml:533"
    (Bug.symptom (mk_bug (Bug.Assertion_failure "boom") "heap.ml:533"));
  Alcotest.(check string) "loop" "Getting stuck in an infinite loop"
    (Bug.symptom (mk_bug (Bug.Infinite_loop { steps = 100 }) "spin"));
  Alcotest.(check string) "exception" "Failure(\"x\") at f"
    (Bug.symptom (mk_bug (Bug.Program_exception "Failure(\"x\")") "f"))

let test_bug_dedup_key () =
  let a = mk_bug (Bug.Assertion_failure "m1") "loc" in
  let b = mk_bug (Bug.Assertion_failure "m2") "loc" in
  let c = mk_bug (Bug.Assertion_failure "m1") "other" in
  let d = mk_bug (Bug.Illegal_access { addr = 1; width = 1; op = "load" }) "loc" in
  Alcotest.(check bool) "same kind+loc" true (Bug.same_report a b);
  Alcotest.(check bool) "different loc" false (Bug.same_report a c);
  Alcotest.(check bool) "different kind" false (Bug.same_report a d)

(* --- Trace --------------------------------------------------------------------- *)

let test_trace_ring () =
  let ev label = Analysis.Event.Fence { kind = Analysis.Event.Sfence; tid = 0; label } in
  let rendered t = List.map Analysis.Event.render (Trace.events t) in
  let t = Trace.create ~depth:3 () in
  Alcotest.(check (list string)) "empty" [] (rendered t);
  Trace.add t (ev "a");
  Trace.add t (ev "b");
  Alcotest.(check (list string)) "partial" [ "sfence a"; "sfence b" ] (rendered t);
  Alcotest.(check int) "nothing dropped yet" 0 (Trace.dropped t);
  Trace.add t (ev "c");
  Trace.add t (ev "d");
  Alcotest.(check (list string))
    "wrapped keeps newest"
    [ "sfence b"; "sfence c"; "sfence d" ]
    (rendered t);
  Alcotest.(check int) "overwritten events counted" 1 (Trace.dropped t);
  Trace.clear t;
  Alcotest.(check (list string)) "cleared" [] (rendered t);
  Alcotest.(check int) "dropped reset" 0 (Trace.dropped t);
  let off = Trace.create ~depth:0 () in
  Trace.add off (ev "x");
  Alcotest.(check bool) "depth 0 disables" false (Trace.enabled off);
  Alcotest.(check (list string)) "disabled records nothing" [] (rendered off);
  Alcotest.(check int) "disabled drops nothing" 0 (Trace.dropped off)

(* --- Stats ---------------------------------------------------------------------- *)

let test_stats_ratio () =
  let s =
    {
      Stats.executions = 10;
      failure_points = 4;
      rf_decisions = 0;
      multi_rf_loads = 0;
      stores = 0;
      flushes = 0;
      findings = 0;
      memo_hits = 0;
      memo_misses = 0;
      memo_saved = 0;
      snapshot_hits = 0;
      snapshot_misses = 0;
      sheds = 0;
      wall_time = 0.;
      exhausted = true;
      interrupted = false;
    }
  in
  Alcotest.(check (float 1e-9)) "ratio" 2.5 (Stats.executions_per_fp s);
  Alcotest.(check (float 1e-9)) "zero fp" 0.
    (Stats.executions_per_fp { s with Stats.failure_points = 0 })

(* --- Explorer driver -------------------------------------------------------------- *)

let test_scenario_single_dispatch () =
  (* One main function serving both roles via in_recovery. *)
  let seen_pre = ref false and seen_post = ref false in
  let main ctx =
    if Ctx.in_recovery ctx then seen_post := true
    else begin
      seen_pre := true;
      Ctx.store64 ctx ~label:"w" base 1;
      Ctx.clflush ctx ~label:"f" base 8
    end
  in
  let o = Explorer.run (Explorer.scenario_single ~name:"single" main) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "pre ran" true !seen_pre;
  Alcotest.(check bool) "post ran" true !seen_post

let buggy_scenario =
  Explorer.scenario ~name:"buggy"
    ~pre:(fun ctx ->
      Ctx.store64 ctx ~label:"w" base 1;
      Ctx.clflush ctx ~label:"f" base 8;
      Ctx.store64 ctx ~label:"w2" (base + 64) 2;
      Ctx.clflush ctx ~label:"f2" (base + 64) 8)
    ~post:(fun ctx ->
      (* Fails whenever the second store did not persist. *)
      Ctx.check ctx ~label:"oracle" (Ctx.load64 ctx ~label:"r" (base + 64) = 2) "lost")

let test_stop_at_first_bug () =
  let config = { Config.default with Config.stop_at_first_bug = true } in
  let o = Explorer.run ~config buggy_scenario in
  Alcotest.(check bool) "found" true (Explorer.found_bug o);
  Alcotest.(check bool) "not exhausted" false o.Explorer.stats.Stats.exhausted;
  let o' = Explorer.run buggy_scenario in
  Alcotest.(check bool) "exhaustive run explores more" true
    (o'.Explorer.stats.Stats.executions > o.Explorer.stats.Stats.executions)

let test_bug_dedup_in_outcome () =
  (* The same symptom from several failure points is reported once. *)
  let o = Explorer.run buggy_scenario in
  Alcotest.(check int) "one deduplicated bug" 1 (List.length o.Explorer.bugs);
  Alcotest.(check bool) "still exhausted" true o.Explorer.stats.Stats.exhausted

let test_max_executions_cutoff () =
  let config = { Config.default with Config.max_executions = 3 } in
  let o = Explorer.run ~config buggy_scenario in
  Alcotest.(check int) "cut at limit" 3 o.Explorer.stats.Stats.executions;
  Alcotest.(check bool) "not exhausted" false o.Explorer.stats.Stats.exhausted

let test_stats_counts_original_execution () =
  let pre ctx =
    Ctx.store64 ctx ~label:"w" base 1 (* 8 byte-stores *);
    Ctx.clflush ctx ~label:"f" base 8 (* 1 line flush *)
  in
  let o = Explorer.run (Explorer.scenario ~name:"counts" ~pre ~post:(fun _ -> ())) in
  Alcotest.(check int) "stores" 8 o.Explorer.stats.Stats.stores;
  Alcotest.(check int) "flushes" 1 o.Explorer.stats.Stats.flushes;
  Alcotest.(check int) "fps" 2 o.Explorer.stats.Stats.failure_points

let test_pp_outcome_mentions_bug () =
  let config = { Config.default with Config.stop_at_first_bug = true } in
  let o = Explorer.run ~config buggy_scenario in
  let s = Format.asprintf "%a" Explorer.pp_outcome o in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions the symptom" true (contains s "Assertion failure at oracle")

(* --- Fuzz ------------------------------------------------------------------------- *)

let test_fuzz_aggregates () =
  let r = Fuzz.run ~seeds:[ 1; 2; 3 ] buggy_scenario in
  Alcotest.(check int) "runs" 3 r.Fuzz.runs;
  Alcotest.(check bool) "found" true (Fuzz.found_bug r);
  Alcotest.(check int) "dedup across seeds" 1 (List.length r.Fuzz.bugs);
  Alcotest.(check int) "all seeds hit" 3 (List.length r.Fuzz.buggy_seeds);
  Alcotest.(check bool) "executions summed" true (r.Fuzz.total_executions >= 3)

let test_fuzz_clean_scenario () =
  let scn =
    Explorer.scenario ~name:"clean"
      ~pre:(fun ctx ->
        Ctx.store64 ctx ~label:"w" base 1;
        Ctx.clflush ctx ~label:"f" base 8)
      ~post:(fun ctx -> ignore (Ctx.load64 ctx ~label:"r" base))
  in
  let r = Fuzz.run ~seeds:[ 1; 2 ] scn in
  Alcotest.(check bool) "clean" false (Fuzz.found_bug r);
  Alcotest.(check (list (pair int (list string)))) "no buggy seeds" [] r.Fuzz.buggy_seeds

let () =
  Alcotest.run "explorer"
    [
      ( "bug",
        [
          Alcotest.test_case "symptoms" `Quick test_bug_symptoms;
          Alcotest.test_case "dedup key" `Quick test_bug_dedup_key;
        ] );
      ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ]);
      ("stats", [ Alcotest.test_case "ratio" `Quick test_stats_ratio ]);
      ( "driver",
        [
          Alcotest.test_case "scenario_single" `Quick test_scenario_single_dispatch;
          Alcotest.test_case "stop at first bug" `Quick test_stop_at_first_bug;
          Alcotest.test_case "bug dedup" `Quick test_bug_dedup_in_outcome;
          Alcotest.test_case "max executions" `Quick test_max_executions_cutoff;
          Alcotest.test_case "original-execution counts" `Quick test_stats_counts_original_execution;
          Alcotest.test_case "pp outcome" `Quick test_pp_outcome_mentions_bug;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "aggregates" `Quick test_fuzz_aggregates;
          Alcotest.test_case "clean scenario" `Quick test_fuzz_clean_scenario;
        ] );
    ]
