(* Property-based validation.

   The centrepiece is the eager/lazy equivalence property: for random small
   PM programs, brute-force enumeration of every legal post-failure memory
   state yields exactly the recovery behaviours Jaaru's constraint-refinement
   exploration produces. This is the soundness-and-completeness claim of the
   paper (section 3: "Jaaru does not generate any false positives or
   negatives"), checked mechanically. *)

open Jaaru

let base = 0x1000

(* --- random PM programs ------------------------------------------------------ *)

type op =
  | Store of int * int * int  (* line, word offset, value *)
  | Rmw of int * int * int  (* locked fetch-add: line, word offset, delta *)
  | Flush of int
  | Flushopt of int
  | Clwb of int
  | Fence

let lines = 3 (* cache lines the generator spans *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun l o v -> Store (l, o, v + 1)) (int_range 0 (lines - 1)) (int_range 0 1) (int_range 0 6));
        (2, map3 (fun l o d -> Rmw (l, o, d + 1)) (int_range 0 (lines - 1)) (int_range 0 1) (int_range 0 2));
        (2, map (fun l -> Flush l) (int_range 0 (lines - 1)));
        (2, map (fun l -> Flushopt l) (int_range 0 (lines - 1)));
        (1, map (fun l -> Clwb l) (int_range 0 (lines - 1)));
        (1, return Fence);
      ])

let program_gen = QCheck.Gen.(list_size (int_range 1 8) op_gen)

let pp_op = function
  | Store (l, o, v) -> Printf.sprintf "st l%d+%d=%d" l o v
  | Rmw (l, o, d) -> Printf.sprintf "faa l%d+%d+=%d" l o d
  | Flush l -> Printf.sprintf "clflush l%d" l
  | Flushopt l -> Printf.sprintf "clflushopt l%d" l
  | Clwb l -> Printf.sprintf "clwb l%d" l
  | Fence -> "sfence"

let program_print ops = String.concat "; " (List.map pp_op ops)

(* Per-op shrinker: every candidate strictly decreases (kind rank, fields)
   lexicographically — Rmw simplifies to a plain store, the weakly ordered
   flush kinds collapse toward clflush, and all indices shrink toward 0 — so
   QCheck's list shrinker drives failures to a minimal counterexample. *)
let op_shrink op yield =
  match op with
  | Store (l, o, v) ->
      if v > 1 then yield (Store (l, o, 1));
      if l > 0 then yield (Store (0, o, v));
      if o > 0 then yield (Store (l, 0, v))
  | Rmw (l, o, d) ->
      yield (Store (l, o, d));
      if d > 1 then yield (Rmw (l, o, 1));
      if l > 0 then yield (Rmw (0, o, d));
      if o > 0 then yield (Rmw (l, 0, d))
  | Flush l -> if l > 0 then yield (Flush 0)
  | Flushopt l ->
      yield (Flush l);
      if l > 0 then yield (Flushopt 0)
  | Clwb l ->
      yield (Flushopt l);
      if l > 0 then yield (Clwb 0)
  | Fence -> ()

let program_shrink = QCheck.Shrink.list ~shrink:op_shrink
let program_arb = QCheck.make ~print:program_print ~shrink:program_shrink program_gen

let addr_of line word = base + (64 * line) + (8 * word)

let run_program ctx ops =
  List.iter
    (fun op ->
      match op with
      | Store (l, o, v) -> Ctx.store64 ctx ~label:(pp_op op) (addr_of l o) v
      | Rmw (l, o, d) -> ignore (Ctx.fetch_add64 ctx ~label:(pp_op op) (addr_of l o) d)
      | Flush l -> Ctx.clflush ctx ~label:(pp_op op) (addr_of l 0) 8
      | Flushopt l -> Ctx.clflushopt ctx ~label:(pp_op op) (addr_of l 0) 8
      | Clwb l -> Ctx.clwb ctx ~label:(pp_op op) (addr_of l 0) 8
      | Fence -> Ctx.sfence ctx ~label:"sfence" ())
    ops

(* The two-thread shape: the second thread is empty in the sequential shape;
   when present both bodies run under the deterministic round-robin
   scheduler, each with its own store and flush buffer. *)
let run_threaded ctx (t0, t1) =
  match t1 with
  | [] -> run_program ctx t0
  | _ -> Ctx.parallel ctx [ (fun ctx -> run_program ctx t0); (fun ctx -> run_program ctx t1) ]

let threaded_gen =
  QCheck.Gen.(pair (list_size (int_range 1 6) op_gen) (list_size (int_range 1 3) op_gen))

let threaded_print (t0, t1) = program_print t0 ^ " || " ^ program_print t1

let threaded_arb =
  QCheck.make ~print:threaded_print
    ~shrink:(QCheck.Shrink.pair program_shrink program_shrink)
    threaded_gen

let observe_all ctx =
  let v l o = Ctx.load64 ctx ~label:"obs" (addr_of l o) in
  String.concat ","
    (List.concat_map
       (fun l -> List.map (fun o -> string_of_int (v l o)) [ 0; 1 ])
       (List.init lines Fun.id))

let eager_equals_lazy pre =
  let post = observe_all in
  let eager = Yat.Eager.check ~state_limit:200_000 ~pre ~post () in
  let lazy_b = Yat.Eager.jaaru_behaviors ~pre ~post () in
  (not eager.Yat.Eager.truncated) && eager.Yat.Eager.behaviors = lazy_b

let prop_eager_equals_lazy =
  QCheck.Test.make ~name:"eager enumeration = lazy exploration" ~count:500 program_arb
    (fun ops -> eager_equals_lazy (fun ctx -> run_program ctx ops))

let prop_eager_equals_lazy_threaded =
  QCheck.Test.make ~name:"eager = lazy with a second thread" ~count:500 threaded_arb
    (fun prog -> eager_equals_lazy (fun ctx -> run_threaded ctx prog))

(* The same property under the Buffered eviction policy, where the store
   buffer and flush buffer add drain nondeterminism. Lazy exploration must
   produce a SUPERSET of the eager-policy behaviours (it adds states where
   buffered stores were lost) and every behaviour it produces must be a
   prefix-consistent cut; here we check a cheaper invariant: the set of
   behaviours under Buffered contains the all-drained behaviours of Eager. *)
let prop_buffered_superset =
  QCheck.Test.make ~name:"buffered behaviors superset of eager-policy" ~count:60 program_arb
    (fun ops ->
      let pre ctx = run_program ctx ops in
      let post = observe_all in
      let eager_policy = Yat.Eager.jaaru_behaviors ~pre ~post () in
      let buffered =
        Yat.Eager.jaaru_behaviors
          ~config:{ Config.default with Config.evict_policy = Config.Buffered }
          ~pre ~post ()
      in
      List.for_all (fun b -> List.mem b buffered) eager_policy)

(* Determinism: running the same scenario twice gives identical statistics. *)
let prop_exploration_deterministic =
  QCheck.Test.make ~name:"exploration is deterministic" ~count:40 threaded_arb
    (fun prog ->
      let scn =
        Explorer.scenario ~name:"d"
          ~pre:(fun ctx -> run_threaded ctx prog)
          ~post:(fun ctx -> ignore (observe_all ctx))
      in
      let a = (Explorer.run scn).Explorer.stats in
      let b = (Explorer.run scn).Explorer.stats in
      a.Stats.executions = b.Stats.executions
      && a.Stats.failure_points = b.Stats.failure_points
      && a.Stats.rf_decisions = b.Stats.rf_decisions)

(* Monotonicity: flushes only shrink the set of possible post-failure
   behaviours (paper section 4: "writes increase the set of possible
   post-failure executions while flushes decrease it"), so appending a
   trailing flush — whose pre-flush failure point still covers the original
   final state — leaves the overall recovery-behaviour set unchanged. *)
let prop_flush_shrinks =
  QCheck.Test.make ~name:"a trailing flush does not change the behaviour set" ~count:60
    program_arb
    (fun ops ->
      let behaviors ops =
        Yat.Eager.jaaru_behaviors ~pre:(fun ctx -> run_program ctx ops) ~post:observe_all ()
      in
      behaviors (ops @ [ Flush 0; Fence ]) = behaviors ops)

(* --- model-based testing of the data structures ------------------------------- *)

module IntMap = Map.Make (Int)

type map_op = Insert of int * int | Remove of int | Lookup of int

let map_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Insert (k, v + 1)) (int_range 1 40) (int_range 0 1000));
        (2, map (fun k -> Remove k) (int_range 1 40));
        (3, map (fun k -> Lookup k) (int_range 1 40));
      ])

let map_ops_gen = QCheck.Gen.(list_size (int_range 1 60) map_op_gen)

let print_map_ops ops =
  String.concat "; "
    (List.map
       (function
         | Insert (k, v) -> Printf.sprintf "ins %d=%d" k v
         | Remove k -> Printf.sprintf "del %d" k
         | Lookup k -> Printf.sprintf "get %d" k)
       ops)

(* Drive a structure and the OCaml Map together; any disagreement fails the
   checked program itself via an assertion. *)
let model_check_structure ~insert ~remove ~lookup ~final_check ops ctx =
  let model = ref IntMap.empty in
  List.iter
    (function
      | Insert (k, v) ->
          insert k v;
          model := IntMap.add k v !model
      | Remove k -> (
          match remove with
          | Some remove ->
              remove k;
              model := IntMap.remove k !model
          | None -> ())
      | Lookup k ->
          Ctx.check ctx
            (lookup k = IntMap.find_opt k !model)
            (Printf.sprintf "lookup %d disagrees with the model" k))
    ops;
  IntMap.iter
    (fun k v -> Ctx.check ctx (lookup k = Some v) (Printf.sprintf "final lookup %d" k))
    !model;
  final_check ()

let structure_agrees name build ops =
  let config =
    { Config.default with Config.max_failures = 0; Config.region_size = 256 * 1024 }
  in
  let pre ctx = build ctx ops in
  let o = Explorer.run ~config (Explorer.scenario ~name ~pre ~post:(fun _ -> ())) in
  if Explorer.found_bug o then
    List.iter (fun b -> Format.eprintf "%s model bug: %a@." name Bug.pp b) o.Explorer.bugs;
  not (Explorer.found_bug o)

let prop_btree_model =
  QCheck.Test.make ~name:"btree = Map" ~count:60
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "btree"
        (fun ctx ops ->
          let t = Pmdk.Btree_map.create_or_open ctx in
          model_check_structure
            ~insert:(Pmdk.Btree_map.insert t)
            ~remove:(Some (Pmdk.Btree_map.remove t))
            ~lookup:(Pmdk.Btree_map.lookup t)
            ~final_check:(fun () -> Pmdk.Btree_map.check t)
            ops ctx)
        ops)

let prop_rbtree_model =
  QCheck.Test.make ~name:"rbtree = Map" ~count:60
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "rbtree"
        (fun ctx ops ->
          let t = Pmdk.Rbtree_map.create_or_open ctx in
          model_check_structure
            ~insert:(Pmdk.Rbtree_map.insert t)
            ~remove:(Some (Pmdk.Rbtree_map.remove t))
            ~lookup:(Pmdk.Rbtree_map.lookup t)
            ~final_check:(fun () -> Pmdk.Rbtree_map.check t)
            ops ctx)
        ops)

let prop_hashmap_atomic_model =
  QCheck.Test.make ~name:"hashmap_atomic = Map" ~count:60
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "hashmap_atomic"
        (fun ctx ops ->
          let t = Pmdk.Hashmap_atomic.create_or_open ctx in
          model_check_structure
            ~insert:(Pmdk.Hashmap_atomic.insert t)
            ~remove:(Some (Pmdk.Hashmap_atomic.remove t))
            ~lookup:(Pmdk.Hashmap_atomic.lookup t)
            ~final_check:(fun () -> Pmdk.Hashmap_atomic.check t)
            ops ctx)
        ops)

let prop_hashmap_tx_model =
  QCheck.Test.make ~name:"hashmap_tx = Map" ~count:60
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "hashmap_tx"
        (fun ctx ops ->
          let t = Pmdk.Hashmap_tx.create_or_open ctx in
          model_check_structure
            ~insert:(Pmdk.Hashmap_tx.insert t)
            ~remove:(Some (Pmdk.Hashmap_tx.remove t))
            ~lookup:(Pmdk.Hashmap_tx.lookup t)
            ~final_check:(fun () -> Pmdk.Hashmap_tx.check t)
            ops ctx)
        ops)

let prop_ctree_model =
  QCheck.Test.make ~name:"ctree = Map" ~count:60
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "ctree"
        (fun ctx ops ->
          let t = Pmdk.Ctree_map.create_or_open ctx in
          model_check_structure
            ~insert:(Pmdk.Ctree_map.insert t)
            ~remove:(Some (Pmdk.Ctree_map.remove t))
            ~lookup:(Pmdk.Ctree_map.lookup t)
            ~final_check:(fun () -> Pmdk.Ctree_map.check t)
            ops ctx)
        ops)

let prop_skiplist_model =
  QCheck.Test.make ~name:"skiplist = Map" ~count:60
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "skiplist"
        (fun ctx ops ->
          let t = Pmdk.Skiplist_map.create_or_open ctx in
          model_check_structure
            ~insert:(Pmdk.Skiplist_map.insert t)
            ~remove:(Some (Pmdk.Skiplist_map.remove t))
            ~lookup:(Pmdk.Skiplist_map.lookup t)
            ~final_check:(fun () -> Pmdk.Skiplist_map.check t)
            ops ctx)
        ops)

let prop_cceh_model =
  QCheck.Test.make ~name:"cceh = Map" ~count:40
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "cceh"
        (fun ctx ops ->
          let t = Recipe.Cceh.create_or_open ctx in
          model_check_structure
            ~insert:(Recipe.Cceh.insert t)
            ~remove:(Some (Recipe.Cceh.remove t))
            ~lookup:(Recipe.Cceh.lookup t)
            ~final_check:(fun () -> Recipe.Cceh.check t)
            ops ctx)
        ops)

let prop_fast_fair_model =
  QCheck.Test.make ~name:"fast_fair = Map" ~count:40
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "fast_fair"
        (fun ctx ops ->
          let t = Recipe.Fast_fair.create_or_open ctx in
          model_check_structure
            ~insert:(Recipe.Fast_fair.insert t)
            ~remove:(Some (Recipe.Fast_fair.remove t))
            ~lookup:(Recipe.Fast_fair.lookup t)
            ~final_check:(fun () -> Recipe.Fast_fair.check t)
            ops ctx)
        ops)

let prop_p_art_model =
  QCheck.Test.make ~name:"p_art = Map" ~count:40
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "p_art"
        (fun ctx ops ->
          let t = Recipe.P_art.create_or_open ctx in
          model_check_structure
            ~insert:(Recipe.P_art.insert t)
            ~remove:(Some (Recipe.P_art.remove t))
            ~lookup:(Recipe.P_art.lookup t)
            ~final_check:(fun () -> Recipe.P_art.check t)
            ops ctx)
        ops)

let prop_p_clht_model =
  QCheck.Test.make ~name:"p_clht = Map" ~count:40
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "p_clht"
        (fun ctx ops ->
          let t = Recipe.P_clht.create_or_open ~nbuckets:8 ctx in
          model_check_structure
            ~insert:(Recipe.P_clht.insert t)
            ~remove:(Some (Recipe.P_clht.remove t))
            ~lookup:(Recipe.P_clht.lookup t)
            ~final_check:(fun () -> Recipe.P_clht.check t)
            ops ctx)
        ops)

let prop_p_bwtree_model =
  QCheck.Test.make ~name:"p_bwtree = Map" ~count:40
    (QCheck.make ~print:print_map_ops map_ops_gen)
    (fun ops ->
      structure_agrees "p_bwtree"
        (fun ctx ops ->
          let t = Recipe.P_bwtree.create_or_open ctx in
          model_check_structure
            ~insert:(Recipe.P_bwtree.insert t)
            ~remove:(Some (Recipe.P_bwtree.remove t))
            ~lookup:(Recipe.P_bwtree.lookup t)
            ~final_check:(fun () -> Recipe.P_bwtree.check t)
            ops ctx)
        ops)

(* Random fixed workloads stay crash consistent under exhaustive checking. *)
let prop_random_crash_consistency =
  QCheck.Test.make ~name:"random btree workloads are crash consistent" ~count:10
    QCheck.(make ~print:(fun l -> String.concat "," (List.map string_of_int l))
              Gen.(list_size (int_range 1 5) (int_range 1 60)))
    (fun ks ->
      let pre ctx =
        let t = Pmdk.Btree_map.create_or_open ctx in
        List.iter (fun k -> Pmdk.Btree_map.insert t k (k * 7)) ks
      in
      let post ctx =
        let t = Pmdk.Btree_map.create_or_open ctx in
        Pmdk.Btree_map.check t;
        List.iter
          (fun k ->
            match Pmdk.Btree_map.lookup t k with
            | Some v -> Ctx.check ctx (v = k * 7) "value corrupt"
            | None -> ())
          ks
      in
      let o = Explorer.run (Explorer.scenario ~name:"rand-btree" ~pre ~post) in
      (not (Explorer.found_bug o)) && o.Explorer.stats.Stats.exhausted)

let prop_random_hashmap_crash_consistency =
  QCheck.Test.make ~name:"random hashmap_atomic workloads are crash consistent" ~count:8
    QCheck.(make ~print:(fun l -> String.concat "," (List.map string_of_int l))
              Gen.(list_size (int_range 1 4) (int_range 1 60)))
    (fun ks ->
      let pre ctx =
        let t = Pmdk.Hashmap_atomic.create_or_open ctx in
        List.iter (fun k -> Pmdk.Hashmap_atomic.insert t k (k * 7)) ks
      in
      let post ctx =
        let t = Pmdk.Hashmap_atomic.create_or_open ctx in
        Pmdk.Hashmap_atomic.check t;
        List.iter
          (fun k ->
            match Pmdk.Hashmap_atomic.lookup t k with
            | Some v -> Ctx.check ctx (v = k * 7) "value corrupt"
            | None -> ())
          ks
      in
      let o = Explorer.run (Explorer.scenario ~name:"rand-hma" ~pre ~post) in
      (not (Explorer.found_bug o)) && o.Explorer.stats.Stats.exhausted)

let prop_random_skiplist_crash_consistency =
  QCheck.Test.make ~name:"random skiplist workloads are crash consistent" ~count:8
    QCheck.(make ~print:(fun l -> String.concat "," (List.map string_of_int l))
              Gen.(list_size (int_range 1 4) (int_range 1 60)))
    (fun ks ->
      let pre ctx =
        let t = Pmdk.Skiplist_map.create_or_open ctx in
        List.iter (fun k -> Pmdk.Skiplist_map.insert t k (k * 7)) ks
      in
      let post ctx =
        let t = Pmdk.Skiplist_map.create_or_open ctx in
        Pmdk.Skiplist_map.check t
      in
      let o = Explorer.run (Explorer.scenario ~name:"rand-skip" ~pre ~post) in
      (not (Explorer.found_bug o)) && o.Explorer.stats.Stats.exhausted)

let prop_random_clog_prefix =
  QCheck.Test.make ~name:"random clog appends always recover a prefix" ~count:10
    QCheck.(make ~print:(fun l -> String.concat "," (List.map string_of_int l))
              Gen.(list_size (int_range 1 5) (int_range 1 10_000)))
    (fun payloads ->
      let pre ctx =
        let t = Pmdk.Clog.create_or_open ctx in
        List.iter (Pmdk.Clog.append t) payloads
      in
      let post ctx =
        let t = Pmdk.Clog.create_or_open ctx in
        Pmdk.Clog.check t ~expected:payloads
      in
      let o = Explorer.run (Explorer.scenario ~name:"rand-clog" ~pre ~post) in
      (not (Explorer.found_bug o)) && o.Explorer.stats.Stats.exhausted)

let () =
  Alcotest.run "properties"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_eager_equals_lazy;
          QCheck_alcotest.to_alcotest prop_eager_equals_lazy_threaded;
          QCheck_alcotest.to_alcotest prop_buffered_superset;
          QCheck_alcotest.to_alcotest prop_exploration_deterministic;
          QCheck_alcotest.to_alcotest prop_flush_shrinks;
        ] );
      ( "models",
        [
          QCheck_alcotest.to_alcotest prop_btree_model;
          QCheck_alcotest.to_alcotest prop_rbtree_model;
          QCheck_alcotest.to_alcotest prop_hashmap_atomic_model;
          QCheck_alcotest.to_alcotest prop_hashmap_tx_model;
          QCheck_alcotest.to_alcotest prop_ctree_model;
          QCheck_alcotest.to_alcotest prop_skiplist_model;
          QCheck_alcotest.to_alcotest prop_cceh_model;
          QCheck_alcotest.to_alcotest prop_fast_fair_model;
          QCheck_alcotest.to_alcotest prop_p_art_model;
          QCheck_alcotest.to_alcotest prop_p_clht_model;
          QCheck_alcotest.to_alcotest prop_p_bwtree_model;
        ] );
      ( "crash-consistency",
        [
          QCheck_alcotest.to_alcotest prop_random_crash_consistency;
          QCheck_alcotest.to_alcotest prop_random_hashmap_crash_consistency;
          QCheck_alcotest.to_alcotest prop_random_skiplist_crash_consistency;
          QCheck_alcotest.to_alcotest prop_random_clog_prefix;
        ] );
    ]
