(* The stateful-PBT engine: oracle semantics, negative controls (the oracle
   is not vacuously green), and driver determinism across worker counts and
   the snapshot/memo layers. *)

let obs_list = Alcotest.(list (pair int int))

(* --- oracle ----------------------------------------------------------------- *)

let test_oracle_subsets () =
  let cmds = [ Pbt.Cmd.Insert (1, 1); Pbt.Cmd.Insert (2, 2) ] in
  let s = Pbt.Oracle.explainable Pbt.Fake.Kv Pbt.Oracle.Any_subset cmds in
  Alcotest.(check int) "four states" 4 (Pbt.Oracle.Obs_set.cardinal s);
  List.iter
    (fun o -> Alcotest.(check bool) "admissible" true (Pbt.Oracle.mem s o))
    [ []; [ (1, 1) ]; [ (2, 2) ]; [ (1, 1); (2, 2) ] ];
  Alcotest.(check bool) "torn value inadmissible" false (Pbt.Oracle.mem s [ (1, 2) ]);
  Alcotest.(check bool) "phantom key inadmissible" false (Pbt.Oracle.mem s [ (3, 3) ])

let test_oracle_prefixes () =
  let cmds = [ Pbt.Cmd.Insert (1, 1); Pbt.Cmd.Insert (2, 2) ] in
  let s = Pbt.Oracle.explainable Pbt.Fake.Kv Pbt.Oracle.Prefix_only cmds in
  Alcotest.(check int) "three states" 3 (Pbt.Oracle.Obs_set.cardinal s);
  Alcotest.(check bool) "gap state inadmissible" false (Pbt.Oracle.mem s [ (2, 2) ])

let test_oracle_remove_and_update () =
  (* insert 1=1; remove 1 — subsets reach only {} and {1=1}. *)
  let s =
    Pbt.Oracle.explainable Pbt.Fake.Kv Pbt.Oracle.Any_subset
      [ Pbt.Cmd.Insert (1, 1); Pbt.Cmd.Remove 1 ]
  in
  Alcotest.(check int) "two states" 2 (Pbt.Oracle.Obs_set.cardinal s);
  (* insert 1=1; insert 1=2 — the lost-update state {1=1} stays admissible,
     {1=2} too (first insert's line never persisted), garbage 1=3 is not. *)
  let s =
    Pbt.Oracle.explainable Pbt.Fake.Kv Pbt.Oracle.Any_subset
      [ Pbt.Cmd.Insert (1, 1); Pbt.Cmd.Insert (1, 2) ]
  in
  Alcotest.(check bool) "lost update" true (Pbt.Oracle.mem s [ (1, 1) ]);
  Alcotest.(check bool) "survivor alone" true (Pbt.Oracle.mem s [ (1, 2) ]);
  Alcotest.(check bool) "garbage" false (Pbt.Oracle.mem s [ (1, 3) ])

let test_oracle_lookups_ignored () =
  let s =
    Pbt.Oracle.explainable Pbt.Fake.Kv Pbt.Oracle.Any_subset
      [ Pbt.Cmd.Lookup 1; Pbt.Cmd.Lookup 2 ]
  in
  Alcotest.(check int) "observations change nothing" 1 (Pbt.Oracle.Obs_set.cardinal s);
  Alcotest.(check (list obs_list)) "empty" [ [] ] (Pbt.Oracle.Obs_set.elements s)

let test_oracle_log_prefix () =
  let cmds = [ Pbt.Cmd.Insert (1, 1); Pbt.Cmd.Insert (2, 2); Pbt.Cmd.Insert (3, 3) ] in
  let p1 = Pbt.Cmd.log_payload 1 1
  and p2 = Pbt.Cmd.log_payload 2 2
  and p3 = Pbt.Cmd.log_payload 3 3 in
  let s = Pbt.Oracle.explainable Pbt.Fake.Log Pbt.Oracle.Prefix_only cmds in
  Alcotest.(check int) "prefixes only" 4 (Pbt.Oracle.Obs_set.cardinal s);
  Alcotest.(check bool) "full log" true (Pbt.Oracle.mem s [ (0, p1); (1, p2); (2, p3) ]);
  Alcotest.(check bool) "lost middle record" false (Pbt.Oracle.mem s [ (0, p1); (1, p3) ]);
  Alcotest.(check bool) "lost suffix" true (Pbt.Oracle.mem s [ (0, p1) ])

(* --- registry --------------------------------------------------------------- *)

let test_registry () =
  let all = Pbt.Structures.all () in
  Alcotest.(check int) "thirteen clean structures" 13 (List.length all);
  Alcotest.(check bool) "ids unique" true
    (let ids = List.map Pbt.Structures.id (all @ Pbt.Structures.seeded ()) in
     List.length ids = List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "find clean" true (Pbt.Structures.find "pmdk-btree" <> None);
  Alcotest.(check bool) "find seeded" true
    (Pbt.Structures.find "pmdk-hashmap-atomic!missing-entry-flush" <> None);
  Alcotest.(check bool) "find unknown" true (Pbt.Structures.find "nope" = None)

(* --- negative controls ------------------------------------------------------ *)

(* The oracle must find a seeded bug within a bounded number of generated
   sequences and shrink the witness to a handful of commands — proof the
   green runs over clean structures mean something. *)
let negative_control ~id ~count ~max_cmds () =
  match Pbt.Structures.find id with
  | None -> Alcotest.fail ("unknown seeded structure " ^ id)
  | Some a ->
      let r = Pbt.Driver.run_structure ~seed:7 ~count ~max_cmds a in
      (match r.Pbt.Driver.failure with
      | None ->
          Alcotest.fail
            (Printf.sprintf "%s: seeded bug not found within %d sequence(s)" id count)
      | Some f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: witness shrank to <= 8 commands (got %d: %s)" id
               (List.length f.Pbt.Driver.cmds)
               (Pbt.Cmd.render_list f.Pbt.Driver.cmds))
            true
            (List.length f.Pbt.Driver.cmds <= 8);
          Alcotest.(check bool) (id ^ ": witness has symptoms") true
            (f.Pbt.Driver.symptoms <> []))

let test_negative_control_pmdk =
  negative_control ~id:"pmdk-hashmap-atomic!missing-entry-flush" ~count:50 ~max_cmds:6

let test_negative_control_recipe =
  negative_control ~id:"recipe-p-masstree!flush-object-not-pointer" ~count:50 ~max_cmds:6

let test_negative_control_log =
  (* skip_crc lets torn records through: recovery returns a payload that was
     never appended (or a gapped log) — inadmissible under Prefix_only. *)
  negative_control ~id:"pmdk-clog!skip-crc" ~count:50 ~max_cmds:6

(* --- clean run + determinism ------------------------------------------------ *)

let comparable r =
  let r = Pbt.Driver.comparable_report r in
  Format.asprintf "%a|seq=%d|exec=%d" Pbt.Driver.pp_report r r.Pbt.Driver.sequences
    r.Pbt.Driver.executions

let test_clean_smoke () =
  match Pbt.Structures.find "pmdk-ctree" with
  | None -> Alcotest.fail "pmdk-ctree missing"
  | Some a ->
      let r = Pbt.Driver.run_structure ~seed:3 ~count:5 ~max_cmds:4 a in
      Alcotest.(check bool) "no failure" false (Pbt.Driver.found_bug r);
      Alcotest.(check int) "all sequences ran" 5 r.Pbt.Driver.sequences;
      Alcotest.(check bool) "explored executions" true (r.Pbt.Driver.executions > 5)

let test_determinism () =
  List.iter
    (fun id ->
      match Pbt.Structures.find id with
      | None -> Alcotest.fail ("missing " ^ id)
      | Some a ->
          let run ~jobs ~snapshot ~memo =
            let config =
              { Pbt.Runner.config with Jaaru.Config.jobs; snapshot; memo }
            in
            Pbt.Driver.run_structure ~config ~seed:11 ~count:4 ~max_cmds:4 a
          in
          let reference = comparable (run ~jobs:1 ~snapshot:true ~memo:true) in
          List.iter
            (fun jobs ->
              List.iter
                (fun (snapshot, memo) ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s jobs=%d snapshot=%b memo=%b" id jobs snapshot memo)
                    reference
                    (comparable (run ~jobs ~snapshot ~memo)))
                [ (true, true); (false, false); (true, false) ])
            (Test_env.jobs_matrix ~default:[ 1; 4 ]))
    [ "pmdk-hashmap-atomic"; "recipe-p-clht" ]

let test_seeded_determinism () =
  (* The shrunk witness of a failing structure is deterministic too. *)
  match Pbt.Structures.find "pmdk-hashmap-atomic!missing-entry-flush" with
  | None -> Alcotest.fail "missing seeded structure"
  | Some a ->
      let run ~jobs =
        let config = { Pbt.Runner.config with Jaaru.Config.jobs } in
        Pbt.Driver.run_structure ~config ~seed:7 ~count:50 ~max_cmds:6 a
      in
      let reference = comparable (run ~jobs:1) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "witness stable at jobs=%d" jobs)
            reference
            (comparable (run ~jobs)))
        (Test_env.jobs_matrix ~default:[ 4 ])

let () =
  Alcotest.run "pbt"
    [
      ( "oracle",
        [
          Alcotest.test_case "subsets" `Quick test_oracle_subsets;
          Alcotest.test_case "prefixes" `Quick test_oracle_prefixes;
          Alcotest.test_case "remove/update" `Quick test_oracle_remove_and_update;
          Alcotest.test_case "lookups ignored" `Quick test_oracle_lookups_ignored;
          Alcotest.test_case "log prefix" `Quick test_oracle_log_prefix;
        ] );
      ("registry", [ Alcotest.test_case "adapters" `Quick test_registry ]);
      ( "negative-controls",
        [
          Alcotest.test_case "pmdk hashmap_atomic" `Quick test_negative_control_pmdk;
          Alcotest.test_case "recipe p-masstree" `Quick test_negative_control_recipe;
          Alcotest.test_case "clog skip-crc" `Quick test_negative_control_log;
        ] );
      ( "driver",
        [
          Alcotest.test_case "clean smoke" `Quick test_clean_smoke;
          Alcotest.test_case "jobs/layers determinism" `Quick test_determinism;
          Alcotest.test_case "seeded witness determinism" `Quick test_seeded_determinism;
        ] );
    ]
