(* Property tests for the flat replay engine's data plane:

   - the packed arena encoding (Analysis.Arena / Trace) round-trips to
     exactly the boxed Analysis.Event stream it replaced;
   - the hand-rolled structural serializer (Pmem.Wire) round-trips its
     primitives and is injective — two values produce equal bytes iff
     [Marshal] with [No_sharing] considered them equal, the property the
     Marshal-free canonical memo keys rely on. *)

open Jaaru
module Event = Analysis.Event
module Arena = Analysis.Arena
module Wire = Pmem.Wire

(* --- generators --------------------------------------------------------------- *)

(* Labels: a small pool (collisions exercise interning) plus arbitrary
   strings, including the empty string and non-ASCII bytes. *)
let label_gen =
  QCheck.Gen.(
    frequency
      [
        (4, oneofl [ "a"; "b"; "load"; "store 1"; "btree_map.ml:89"; "" ]);
        (1, string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12));
      ])

(* Values: small ints plus the sign and sentinel edges a 63-bit slot must
   carry through unchanged. *)
let value_gen =
  QCheck.Gen.(frequency [ (6, int_range (-1000) 1000); (1, oneofl [ min_int; max_int; -1 ]) ])

let event_gen =
  QCheck.Gen.(
    let* tid = int_range 0 4 in
    let* label = label_gen in
    let* addr = int_range 0 0xffff in
    let* width = int_range 1 8 in
    frequency
      [
        ( 4,
          let* value = value_gen in
          return (Event.Store { addr; width; value; tid; label }) );
        ( 4,
          let* value = value_gen in
          return (Event.Load { addr; width; value; tid; label }) );
        ( 2,
          let* old_value = value_gen in
          let* new_value = opt value_gen in
          return (Event.Rmw { addr; width; old_value; new_value; tid; label }) );
        ( 2,
          let* kind = oneofl [ Event.Clflush; Event.Clflushopt; Event.Clwb ] in
          return (Event.Flush { line_addr = addr land lnot 63; kind; tid; label }) );
        ( 2,
          let* kind = oneofl [ Event.Sfence; Event.Mfence ] in
          return (Event.Fence { kind; tid; label }) );
        ( 1,
          let* parent = int_range 0 4 in
          return (Event.Thread_start { tid; parent; label }) );
        ( 1,
          let* parent = int_range 0 4 in
          return (Event.Thread_join { tid; parent; label }) );
        (1, return (Event.Failure_point { label; tid }));
        ( 1,
          let* l = opt (return label) in
          return (Event.Crash { label = l; tid }) );
        (1, return Event.End_execution);
      ])

let events_gen = QCheck.Gen.(list_size (int_range 0 20) event_gen)
let events_print evs = String.concat "; " (List.map Event.render evs)
let events_arb = QCheck.make ~print:events_print events_gen

(* --- arena round-trip ---------------------------------------------------------- *)

(* Cell-level inverse: encode into a packed cell, decode against the same
   table, recover the exact constructor. *)
let prop_arena_roundtrip =
  QCheck.Test.make ~name:"arena encode/decode = identity" ~count:1000 events_arb (fun evs ->
      let labels = Arena.labels () in
      let cells = Array.make (List.length evs * Arena.cell_width) 0 in
      List.iteri (fun i ev -> Arena.encode labels cells (i * Arena.cell_width) ev) evs;
      let back = List.mapi (fun i _ -> Arena.decode labels cells (i * Arena.cell_width)) evs in
      back = evs)

(* Ring-level inverse: a Trace deep enough to hold everything replays the
   boxed stream unchanged; a shallower one keeps exactly the newest suffix
   and counts the rest as dropped. *)
let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace ring replays the boxed event stream" ~count:1000
    (QCheck.pair events_arb QCheck.small_nat) (fun (evs, extra) ->
      let n = List.length evs in
      let full = Trace.create ~depth:(max 1 (n + extra)) () in
      List.iter (Trace.add full) evs;
      let depth = max 1 (n / 2) in
      let ring = Trace.create ~depth () in
      List.iter (Trace.add ring) evs;
      let suffix l k =
        let rec drop l k = if k <= 0 then l else match l with [] -> [] | _ :: t -> drop t (k - 1) in
        drop l (List.length l - k)
      in
      Trace.events full = evs
      && Trace.dropped full = 0
      && Trace.events ring = suffix evs depth
      && Trace.dropped ring = max 0 (n - depth))

(* --- serializer vs Marshal ------------------------------------------------------ *)

let serialize_events evs =
  (* A fresh sink and a fresh intern table per call — and the table is
     deliberately pre-polluted with a random prefix of labels, so equal keys
     cannot come from shared intern ids, only from the table-independent
     string form the serializer promises. *)
  let labels = Arena.labels () in
  List.iteri (fun i ev -> if i mod 2 = 0 then ignore (Arena.intern labels (Event.render ev))) evs;
  let t = Trace.create ~labels ~depth:(max 1 (List.length evs)) () in
  List.iter (Trace.add t) evs;
  let sink = Wire.sink () in
  Trace.serialize t sink;
  Wire.contents sink

(* Pairs biased towards equality (plain random pairs almost never collide,
   leaving the iff's interesting direction untested): half the time the
   second list is the first — sometimes rebuilt cons-by-cons so physical
   sharing differs — otherwise an independent draw. *)
let event_pair_gen =
  QCheck.Gen.(
    let* l1 = events_gen in
    let* mode = int_range 0 3 in
    let l2 =
      match mode with
      | 0 | 1 -> return (List.map Fun.id l1)
      | 2 -> return (List.rev (List.rev_map Fun.id l1))
      | _ -> events_gen
    in
    pair (return l1) l2)

let event_pair_arb =
  QCheck.make
    ~print:(fun (a, b) -> events_print a ^ " / " ^ events_print b)
    event_pair_gen

let prop_serializer_iff_marshal =
  QCheck.Test.make ~name:"wire keys equal iff Marshal No_sharing images equal" ~count:1000
    event_pair_arb (fun (l1, l2) ->
      let wire_eq = String.equal (serialize_events l1) (serialize_events l2) in
      let marshal_eq =
        String.equal
          (Marshal.to_string l1 [ Marshal.No_sharing ])
          (Marshal.to_string l2 [ Marshal.No_sharing ])
      in
      wire_eq = marshal_eq)

(* --- wire primitives ------------------------------------------------------------ *)

type prim =
  | Pint of int
  | Pbool of bool
  | Pfloat of float
  | Pstring of string
  | Popt of int option
  | Plist of int list

let prim_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Pint i) value_gen);
        (1, map (fun b -> Pbool b) bool);
        (* Finite floats only: NaN breaks structural equality on both sides
           of the comparison, not just ours. *)
        (2, map (fun f -> Pfloat f) (float_range (-1e12) 1e12));
        (2, map (fun s -> Pstring s) (string_size ~gen:printable (int_range 0 16)));
        (1, map (fun o -> Popt o) (opt value_gen));
        (2, map (fun l -> Plist l) (list_size (int_range 0 8) value_gen));
      ])

let prims_print ps =
  String.concat ";"
    (List.map
       (function
         | Pint i -> Printf.sprintf "i%d" i
         | Pbool b -> Printf.sprintf "b%b" b
         | Pfloat f -> Printf.sprintf "f%h" f
         | Pstring s -> Printf.sprintf "s%S" s
         | Popt o -> ( match o with None -> "none" | Some i -> Printf.sprintf "some%d" i)
         | Plist l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]")
       ps)

let prims_arb = QCheck.make ~print:prims_print QCheck.Gen.(list_size (int_range 0 12) prim_gen)

let wr_prim b = function
  | Pint i -> Wire.int b i
  | Pbool x -> Wire.bool b x
  | Pfloat f -> Wire.float b f
  | Pstring s -> Wire.string b s
  | Popt o -> Wire.option Wire.int b o
  | Plist l -> Wire.list Wire.int b l

(* Readback is driven by the original shape: the format is not
   self-describing, exactly like the memo/checkpoint codecs that consume
   it. *)
let rd_prim s = function
  | Pint _ -> Pint (Wire.rd_int s)
  | Pbool _ -> Pbool (Wire.rd_bool s)
  | Pfloat _ -> Pfloat (Wire.rd_float s)
  | Pstring _ -> Pstring (Wire.rd_string s)
  | Popt _ -> Popt (Wire.rd_option Wire.rd_int s)
  | Plist _ -> Plist (Wire.rd_list Wire.rd_int s)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire primitives round-trip" ~count:1000 prims_arb (fun ps ->
      let b = Wire.sink () in
      List.iter (wr_prim b) ps;
      let s = Wire.src (Wire.contents b) in
      let back = List.map (rd_prim s) ps in
      Wire.expect_end s;
      back = ps)

let prop_wire_injective =
  QCheck.Test.make ~name:"wire primitive encoding injective" ~count:1000
    (QCheck.pair prims_arb prims_arb) (fun (a, b) ->
      let enc ps =
        let s = Wire.sink () in
        List.iter (wr_prim s) ps;
        Wire.contents s
      in
      String.equal (enc a) (enc b) = (a = b))

let () =
  Alcotest.run "wire-props"
    [
      ( "arena",
        [
          QCheck_alcotest.to_alcotest prop_arena_roundtrip;
          QCheck_alcotest.to_alcotest prop_trace_roundtrip;
        ] );
      ( "serializer",
        [
          QCheck_alcotest.to_alcotest prop_serializer_iff_marshal;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_wire_injective;
        ] );
    ]
