(* Shared test-environment knobs. The CI matrix runs the whole suite once per
   JAARU_TEST_JOBS value; suites that sweep a worker-count axis call
   [jobs_matrix] so the swept values follow the matrix leg instead of being
   hard-coded. Unset (local `dune runtest`) keeps each suite's default sweep,
   so a plain local run still covers several worker counts at once. *)

let jobs_override =
  match Sys.getenv_opt "JAARU_TEST_JOBS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | Some _ | None ->
          invalid_arg (Printf.sprintf "JAARU_TEST_JOBS must be a positive integer, got %S" s))

(* [jobs_matrix ~default] is the list of worker counts a determinism sweep
   should cover: [default] when the environment does not pin one, the pinned
   value alone otherwise. *)
let jobs_matrix ~default = match jobs_override with Some j -> [ j ] | None -> default
