(* Fake-vs-real agreement with no crashes: for every structure adapter, a
   command sequence run to completion (max_failures = 0, so no failure point
   ever branches) must leave the real structure's observable state equal to
   the fake's, with every intermediate lookup agreeing too. This catches
   adapter and model bugs independently of crash exploration — a wrong fake
   would otherwise surface as a confusing oracle failure. *)

let no_crash_config =
  { Pbt.Runner.config with Jaaru.Config.max_failures = 0; snapshot = false; memo = false }

let agreement_test adapter =
  let module S = (val adapter : Pbt.Structures.STRUCTURE) in
  let prop cmds =
    let o = Pbt.Runner.explore ~config:no_crash_config adapter cmds in
    match o.Jaaru.Explorer.bugs with
    | [] -> true
    | b :: _ -> QCheck2.Test.fail_report (Jaaru.Bug.symptom b)
  in
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    ~rand:(Random.State.make [| 0x0b5; Hashtbl.hash S.id |])
    (QCheck2.Test.make ~count:500 ~name:S.id
       ~print:(fun cmds -> Pbt.Cmd.render_list cmds)
       (Pbt.Cmd.gen ~max_cmds:8) prop)

let () =
  Alcotest.run "pbt-agreement"
    [ ("fake-vs-real", List.map agreement_test (Pbt.Structures.all ())) ]
