(* Watchdog edge cases, driven deterministically through [Monitor.poll ~now]
   (no sleeping), plus the explorer-level races the fleet PR cares about:
   an interrupt landing in the middle of a checkpoint save, a memory-budget
   shed racing parallel frontier splits, and double-interrupt escalation. *)
open Jaaru

let report_text (o : Explorer.outcome) = Format.asprintf "%a" Explorer.pp_report o

let with_temp_file f =
  let path = Filename.temp_file "jaaru_monitor" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let deep_case () =
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  ( c.Pmdk.Workloads.scenario,
    { c.Pmdk.Workloads.config with Config.max_failures = 2; stop_at_first_bug = false } )

let make_monitor ?wall_deadline ?tick_deadline ?step_deadline ?mem_budget ?(workers = 1)
    ?(interrupt = Atomic.make false) () =
  let fired = ref [] in
  let m =
    Monitor.create ~workers ~interrupt ?wall_deadline ?tick_deadline ?step_deadline ?mem_budget
      ~on_stop:(fun r -> fired := r :: !fired)
      ()
  in
  (m, fired)

(* --- deadline duties, one deterministic poll at a time ---------------------- *)

let test_wall_deadline_fires_once () =
  let m, fired = make_monitor ~wall_deadline:100.0 () in
  Monitor.poll m ~now:99.9;
  Alcotest.(check int) "before the deadline: silent" 0 (List.length !fired);
  Monitor.poll m ~now:100.0;
  Alcotest.(check bool) "at the deadline: Wall_budget" true (!fired = [ Monitor.Wall_budget ]);
  Monitor.poll m ~now:500.0;
  Monitor.poll m ~now:1000.0;
  Alcotest.(check int) "on_stop is once-only" 1 (List.length !fired)

let test_tick_fires () =
  let m, fired = make_monitor ~tick_deadline:10.0 () in
  Monitor.poll m ~now:9.0;
  Monitor.poll m ~now:10.5;
  Alcotest.(check bool) "tick deadline fires Tick" true (!fired = [ Monitor.Tick ])

let test_interrupt_wins () =
  (* Interrupt is sampled first: when a poll observes both a pending
     interrupt and an expired budget, the stop reason is the interrupt. *)
  let interrupt = Atomic.make true in
  let m, fired = make_monitor ~interrupt ~wall_deadline:1.0 ~tick_deadline:1.0 () in
  Monitor.poll m ~now:50.0;
  Alcotest.(check bool) "interrupt outranks expired budgets" true (!fired = [ Monitor.Interrupt ])

let test_step_deadline_cancels_current_exec_only () =
  let m, fired = make_monitor ~step_deadline:0.5 ~workers:2 () in
  let t0 = Unix.gettimeofday () in
  Monitor.exec_started m 0;
  Monitor.poll m ~now:(t0 +. 0.1);
  Alcotest.(check bool) "young execution not cancelled" false
    (Atomic.get (Monitor.cancel_flag m 0));
  Monitor.poll m ~now:(t0 +. 10.0);
  Alcotest.(check bool) "overdue execution cancelled" true (Atomic.get (Monitor.cancel_flag m 0));
  Alcotest.(check bool) "idle worker untouched" false (Atomic.get (Monitor.cancel_flag m 1));
  Alcotest.(check int) "step deadline is not a stop" 0 (List.length !fired);
  (* The flag from a dying execution must not poison the next one. *)
  Monitor.exec_started m 0;
  Alcotest.(check bool) "next execution starts clean" false
    (Atomic.get (Monitor.cancel_flag m 0));
  Monitor.exec_finished m 0;
  Monitor.poll m ~now:(t0 +. 100.0);
  Alcotest.(check bool) "finished execution has no deadline" false
    (Atomic.get (Monitor.cancel_flag m 0))

let test_mem_budget_shed_hysteresis () =
  (* A 1-byte budget is always exceeded: the trip must set every worker's
     shed flag once, then disarm (the heap can never fall back under 90%
     of a byte), so repeated polls never re-shed. *)
  let m, _ = make_monitor ~mem_budget:1 ~workers:3 () in
  Monitor.poll m ~now:1.0;
  for i = 0 to 2 do
    Alcotest.(check bool) (Printf.sprintf "worker %d shed once" i) true (Monitor.take_shed m i);
    Alcotest.(check bool) (Printf.sprintf "worker %d shed is consumed" i) false
      (Monitor.take_shed m i)
  done;
  Monitor.poll m ~now:2.0;
  Monitor.poll m ~now:3.0;
  Alcotest.(check bool) "tripped budget stays disarmed" false (Monitor.take_shed m 0);
  let m, _ = make_monitor ~mem_budget:max_int ~workers:1 () in
  Monitor.poll m ~now:1.0;
  Alcotest.(check bool) "generous budget never sheds" false (Monitor.take_shed m 0)

(* --- explorer-level races --------------------------------------------------- *)

(* An interrupt that lands in the middle of a checkpoint save (the watchdog
   firing while [save] is between its header and payload writes) must not
   corrupt the file: the save completes, the run stops interrupted, and
   resuming the checkpoint finishes to the exact uninterrupted report. *)
let test_interrupt_during_checkpoint_save () =
  let scn, config = deep_case () in
  let expected = report_text (Explorer.run ~config scn) in
  with_temp_file (fun path ->
      Explorer.clear_interrupt ();
      let config = { config with Config.checkpoint_every = 0.01 } in
      let saves = ref 0 in
      Checkpoint.set_write_fault
        (Some
           (fun () ->
             incr saves;
             if !saves = 1 then Explorer.request_interrupt ()));
      let o =
        Fun.protect
          ~finally:(fun () ->
            Checkpoint.set_write_fault None;
            Explorer.clear_interrupt ())
          (fun () -> Explorer.run ~config ~checkpoint:path scn)
      in
      Alcotest.(check bool) "a mid-save fault hook actually ran" true (!saves >= 1);
      if o.Explorer.stats.Stats.interrupted then begin
        let cp = Checkpoint.load path in
        Checkpoint.validate cp ~workload:scn.Explorer.name ~config;
        let final = Explorer.run ~config ~resume:cp scn in
        Alcotest.(check string) "interrupt during save + resume = baseline" expected
          (report_text final)
      end
      else
        (* The run finished before the periodic save could fire — then the
           report must already be the baseline. *)
        Alcotest.(check string) "uninterrupted report = baseline" expected (report_text o))

(* A memory-budget shed arriving while parallel workers are splitting the
   frontier must not change the verdict: caches are dropped, work is not. *)
let test_shed_racing_parallel_split () =
  let scn, config = deep_case () in
  let expected = report_text (Explorer.run ~config scn) in
  let squeezed =
    { config with Config.jobs = 4; snapshot = true; memo = true; mem_budget = Some 1 }
  in
  let o = Explorer.run ~config:squeezed scn in
  Alcotest.(check string) "shed under jobs=4 = baseline report" expected (report_text o)

let test_double_interrupt_counting () =
  Explorer.clear_interrupt ();
  Fun.protect ~finally:Explorer.clear_interrupt (fun () ->
      Alcotest.(check int) "clean slate" 0 (Explorer.interrupts_requested ());
      Explorer.request_interrupt ();
      Alcotest.(check int) "first request counted" 1 (Explorer.interrupts_requested ());
      Explorer.request_interrupt ();
      Alcotest.(check int) "second request counted (CLI escalates here)" 2
        (Explorer.interrupts_requested ());
      Explorer.clear_interrupt ();
      Alcotest.(check int) "clear resets the count" 0 (Explorer.interrupts_requested ()))

let () =
  Alcotest.run "monitor"
    [
      ( "deadlines",
        [
          Alcotest.test_case "wall deadline fires once" `Quick test_wall_deadline_fires_once;
          Alcotest.test_case "tick deadline fires" `Quick test_tick_fires;
          Alcotest.test_case "interrupt outranks budgets" `Quick test_interrupt_wins;
          Alcotest.test_case "step deadline cancels current exec only" `Quick
            test_step_deadline_cancels_current_exec_only;
          Alcotest.test_case "mem budget shed hysteresis" `Quick test_mem_budget_shed_hysteresis;
        ] );
      ( "races",
        [
          Alcotest.test_case "interrupt during checkpoint save" `Slow
            test_interrupt_during_checkpoint_save;
          Alcotest.test_case "shed racing a parallel split" `Slow test_shed_racing_parallel_split;
          Alcotest.test_case "double interrupt counting" `Quick test_double_interrupt_counting;
        ] );
    ]
