(* Fleet mode: the transport framing, the chaos/backoff machinery, prefix
   shattering, and — the load-bearing property — that an in-process
   coordinator run (the degraded mode every fleet can fall back to) reports
   byte-identically to a plain single-process exploration. The spawned-
   process path is exercised end to end by scripts/fleet_chaos_smoke.sh. *)
open Jaaru

let report_text (o : Explorer.outcome) = Format.asprintf "%a" Explorer.pp_report o

let with_temp_dir f =
  let dir = Filename.temp_file "jaaru_fleet" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let deep_case () =
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  ( c.Pmdk.Workloads.scenario,
    { c.Pmdk.Workloads.config with Config.max_failures = 2; stop_at_first_bug = false } )

(* --- transport ------------------------------------------------------------- *)

let all_msgs =
  [
    Fleet.Transport.Heartbeat { shard = -1; beats = 1 };
    Fleet.Transport.Heartbeat { shard = 42; beats = 1_000_000 };
    Fleet.Transport.Assign { shard = 0; attempt = 3; path = "/tmp/shard-0.ckpt" };
    Fleet.Transport.Preempt;
    Fleet.Transport.Result { shard = 7; payload = String.init 4096 (fun i -> Char.chr (i land 0xff)) };
    Fleet.Transport.Refused { shard = 9; reason = "checkpoint payload fails its checksum" };
  ]

let test_transport_roundtrip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter (fun m -> Fleet.Transport.write w m) all_msgs;
      List.iter
        (fun expected ->
          let got = Fleet.Transport.read r in
          Alcotest.(check bool) "message round-trips" true (got = expected))
        all_msgs;
      (* Closing the write end surfaces as a clean EOF. *)
      Unix.close w;
      match Fleet.Transport.read r with
      | _ -> Alcotest.fail "read past EOF must raise Closed"
      | exception Fleet.Transport.Closed _ -> ())

let test_transport_reader_partial_frames () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close w with Unix.Unix_error _ -> ());
      ())
    (fun () ->
      let reader = Fleet.Transport.reader r in
      (* Serialize two frames into one byte string, then deliver it in
         awkward chunks: the reader must reassemble exactly two messages. *)
      let tmp_r, tmp_w = Unix.pipe () in
      List.iter (fun m -> Fleet.Transport.write tmp_w m)
        [ Fleet.Transport.Preempt; Fleet.Transport.Heartbeat { shard = 3; beats = 9 } ];
      Unix.close tmp_w;
      let buf = Bytes.create 65536 in
      let n = Unix.read tmp_r buf 0 (Bytes.length buf) in
      Unix.close tmp_r;
      let bytes = Bytes.sub_string buf 0 n in
      let cut = (String.length bytes / 2) + 1 in
      ignore (Unix.write_substring w bytes 0 cut);
      let msgs1 = Fleet.Transport.drain reader in
      ignore (Unix.write_substring w bytes cut (String.length bytes - cut));
      let msgs2 = Fleet.Transport.drain reader in
      Alcotest.(check int) "both frames arrive across the chunk boundary" 2
        (List.length msgs1 + List.length msgs2);
      Alcotest.(check bool) "no eof yet" false (Fleet.Transport.at_eof reader);
      Unix.close w;
      let _ = Fleet.Transport.drain reader in
      Alcotest.(check bool) "eof latches after peer close" true (Fleet.Transport.at_eof reader);
      Fleet.Transport.close_reader reader)

let test_transport_corrupt_frame () =
  let r, w = Unix.pipe () in
  let reader = Fleet.Transport.reader r in
  (* A frame whose checksum cannot match: plausible length, garbage body. *)
  let garbage = "\x00\x00\x00\x04\xde\xad\xbe\xefABCD" in
  ignore (Unix.write_substring w garbage 0 (String.length garbage));
  let msgs = Fleet.Transport.drain reader in
  Alcotest.(check int) "corrupt frame yields no message" 0 (List.length msgs);
  Alcotest.(check bool) "corrupt frame latches eof (dead worker)" true
    (Fleet.Transport.at_eof reader);
  Unix.close w;
  Fleet.Transport.close_reader reader

(* --- chaos spec and backoff ------------------------------------------------ *)

let test_chaos_parse () =
  let c = Fleet.Supervise.parse_chaos "kill:0.3,hang:0.1,torn:0.2" in
  Alcotest.(check (float 1e-9)) "kill" 0.3 c.Fleet.Supervise.kill;
  Alcotest.(check (float 1e-9)) "hang" 0.1 c.Fleet.Supervise.hang;
  Alcotest.(check (float 1e-9)) "torn" 0.2 c.Fleet.Supervise.torn;
  let c = Fleet.Supervise.parse_chaos "torn:1" in
  Alcotest.(check (float 1e-9)) "single mode" 1.0 c.Fleet.Supervise.torn;
  Alcotest.(check (float 1e-9)) "others default to 0" 0.0 c.Fleet.Supervise.kill;
  Alcotest.(check bool) "empty spec is no chaos" true
    (Fleet.Supervise.parse_chaos "" = Fleet.Supervise.no_chaos);
  List.iter
    (fun bad ->
      match Fleet.Supervise.parse_chaos bad with
      | _ -> Alcotest.failf "%S must be rejected" bad
      | exception Invalid_argument _ -> ())
    [ "kill"; "kill:2"; "kill:-0.1"; "explode:0.5"; "kill:abc" ]

let test_chaos_plan_deterministic () =
  let c = Fleet.Supervise.parse_chaos "kill:0.5,hang:0.5,torn:0.5" in
  let draw seed n =
    let rng = Random.State.make [| seed |] in
    List.init n (fun _ -> Fleet.Supervise.plan rng c)
  in
  Alcotest.(check bool) "same seed, same fault schedule" true (draw 7 50 = draw 7 50);
  let plans = draw 7 200 in
  Alcotest.(check bool) "a 0.5 spec injects sometimes" true
    (List.exists Fleet.Supervise.injects plans);
  Alcotest.(check bool) "a 0.5 spec spares sometimes" true
    (List.exists (fun p -> not (Fleet.Supervise.injects p)) plans);
  let rng = Random.State.make [| 1 |] in
  Alcotest.(check bool) "no_chaos never injects" false
    (List.exists Fleet.Supervise.injects
       (List.init 100 (fun _ -> Fleet.Supervise.plan rng Fleet.Supervise.no_chaos)))

let test_backoff () =
  let b attempt = Fleet.Supervise.backoff ~base:0.1 ~cap:1.0 ~attempt in
  Alcotest.(check (float 1e-9)) "first retry at base" 0.1 (b 1);
  Alcotest.(check (float 1e-9)) "doubles" 0.2 (b 2);
  Alcotest.(check (float 1e-9)) "doubles again" 0.4 (b 3);
  Alcotest.(check (float 1e-9)) "caps" 1.0 (b 10)

(* --- Choice.split_prefix ---------------------------------------------------- *)

(* Real prefixes, from a capped run's checkpoint: splitting must terminate,
   both halves must round-trip through the codec, and the halves must differ
   from the parent (progress). The semantic property — that the two halves
   partition exactly the parent's subtree — is what the coordinator
   differential below certifies, by exploring them. *)
let test_split_prefix_invariants () =
  let scn, config = deep_case () in
  let path = Filename.temp_file "jaaru_split" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let config = { config with Config.max_executions = 16 } in
      let _ = Explorer.run ~config ~checkpoint:path scn in
      let cp = Checkpoint.load path in
      let prefixes = Checkpoint.frontier_prefixes cp in
      Alcotest.(check bool) "capped run left a frontier" true (prefixes <> []);
      let splits = ref 0 in
      let rec burn p depth =
        if depth > 10_000 then Alcotest.fail "split_prefix does not terminate";
        match Choice.split_prefix p with
        | None -> ()
        | Some (kept, donated) ->
            incr splits;
            let ek = Choice.encode_prefix kept and ed = Choice.encode_prefix donated in
            Alcotest.(check bool) "kept differs from parent" true
              (ek <> Choice.encode_prefix p);
            Alcotest.(check bool) "halves differ from each other" true (ek <> ed);
            (match (Choice.decode_prefix ek, Choice.decode_prefix ed) with
            | Some k2, Some d2 ->
                Alcotest.(check string) "kept round-trips" ek (Choice.encode_prefix k2);
                Alcotest.(check string) "donated round-trips" ed (Choice.encode_prefix d2)
            | _ -> Alcotest.fail "split halves must decode");
            burn kept (depth + 1);
            burn donated (depth + 1)
      in
      List.iter (fun p -> burn p 0) prefixes;
      Alcotest.(check bool) "at least one prefix was splittable" true (!splits > 0))

(* --- merge_outcomes ---------------------------------------------------------- *)

let test_merge_outcomes_differential () =
  let scn, config = deep_case () in
  let full = Explorer.run ~config scn in
  let path = Filename.temp_file "jaaru_merge" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Explore a capped first half, then the checkpointed remainder, and
         merge the two partial outcomes. *)
      let capped = { config with Config.max_executions = 16 } in
      let o1 = Explorer.run ~config:capped ~checkpoint:path scn in
      let cp = Checkpoint.load path in
      Alcotest.(check bool) "cap split the run" true (cp.Checkpoint.frontier <> []);
      (* The remainder resumes under the full config; reports must not
         double-count the first half, so seed it with empty stats. *)
      let remainder =
        Checkpoint.make
          ~fingerprint:(Checkpoint.fingerprint ~workload:scn.Explorer.name config)
          ~frontier:cp.Checkpoint.frontier ~bugs:[] ~multi_rf:[] ~perf:[] ~findings:[]
          ~stats:Stats.zero
      in
      let o2 = Explorer.run ~config ~resume:remainder scn in
      let merged = Explorer.merge_outcomes ~config ~completed:true ~interrupted:false [ o1; o2 ] in
      Alcotest.(check string) "merge of disjoint halves = uninterrupted run" (report_text full)
        (report_text merged);
      Alcotest.(check bool) "merged run exhausted" true merged.Explorer.stats.Stats.exhausted)

(* --- the coordinator (in-process mode) -------------------------------------- *)

let coordinator_case scn config ~chaos ~workers =
  with_temp_dir (fun scratch ->
      let fleet =
        {
          (Fleet.Coordinator.default ~scratch) with
          Fleet.Coordinator.workers;
          chaos;
          worker_argv = None;
        }
      in
      Fleet.Coordinator.run ~fleet ~config ~scenario:scn)

let test_coordinator_in_process_differential () =
  let scn, config = deep_case () in
  let expected = report_text (Explorer.run ~config scn) in
  List.iter
    (fun workers ->
      let r = coordinator_case scn config ~chaos:Fleet.Supervise.no_chaos ~workers in
      Alcotest.(check string)
        (Printf.sprintf "fleet(workers=%d, in-process) = single process" workers)
        expected (report_text r.Fleet.Coordinator.outcome);
      Alcotest.(check bool) "nothing remaining" true (r.Fleet.Coordinator.remaining = []);
      Alcotest.(check bool) "not interrupted" false r.Fleet.Coordinator.interrupted;
      Alcotest.(check bool) "fell back in-process" true r.Fleet.Coordinator.fleet.Fleet.Coordinator.in_process;
      Alcotest.(check bool) "no quarantine" true
        (r.Fleet.Coordinator.fleet.Fleet.Coordinator.quarantined = []))
    [ 1; 2; 4 ]

(* Spawn failures must degrade, not abort: a worker argv that cannot exist
   disables every slot and the coordinator completes the run itself, still
   byte-identically. *)
let test_coordinator_degrades_on_spawn_failure () =
  let scn, config = deep_case () in
  let expected = report_text (Explorer.run ~config scn) in
  with_temp_dir (fun scratch ->
      let fleet =
        {
          (Fleet.Coordinator.default ~scratch) with
          Fleet.Coordinator.workers = 2;
          spawn_attempts = 2;
          worker_argv = Some [| "/nonexistent/jaaru-worker-binary" |];
        }
      in
      let r = Fleet.Coordinator.run ~fleet ~config ~scenario:scn in
      Alcotest.(check string) "degraded fleet = single process" expected
        (report_text r.Fleet.Coordinator.outcome);
      Alcotest.(check bool) "spawn failures were counted" true
        (r.Fleet.Coordinator.fleet.Fleet.Coordinator.spawn_failures > 0);
      Alcotest.(check int) "no effective workers" 0
        r.Fleet.Coordinator.fleet.Fleet.Coordinator.workers_effective;
      Alcotest.(check bool) "degraded to in-process" true
        r.Fleet.Coordinator.fleet.Fleet.Coordinator.in_process)

(* An interrupt mid-fleet must leave a remainder that, resumed as a plain
   checkpoint, completes to the uninterrupted report — fleet and check
   checkpoints are interchangeable. *)
let test_coordinator_interrupt_remainder () =
  let scn, config = deep_case () in
  let expected = report_text (Explorer.run ~config scn) in
  Explorer.clear_interrupt ();
  Fun.protect ~finally:Explorer.clear_interrupt (fun () ->
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.05;
            Explorer.request_interrupt ())
          ()
      in
      let r = coordinator_case scn config ~chaos:Fleet.Supervise.no_chaos ~workers:2 in
      Thread.join killer;
      if r.Fleet.Coordinator.interrupted then begin
        Alcotest.(check bool) "interrupted fleet reports interrupted stats" true
          r.Fleet.Coordinator.outcome.Explorer.stats.Stats.interrupted;
        Explorer.clear_interrupt ();
        let o = r.Fleet.Coordinator.outcome in
        let cp =
          Checkpoint.make
            ~fingerprint:(Checkpoint.fingerprint ~workload:scn.Explorer.name config)
            ~frontier:r.Fleet.Coordinator.remaining ~bugs:o.Explorer.bugs
            ~multi_rf:o.Explorer.multi_rf ~perf:o.Explorer.perf ~findings:o.Explorer.findings
            ~stats:o.Explorer.stats
        in
        let final = Explorer.run ~config ~resume:cp scn in
        Alcotest.(check string) "interrupted fleet + resume = uninterrupted" expected
          (report_text final)
      end
      else
        (* The machine outran the killer: the complete report must match. *)
        Alcotest.(check string) "uninterrupted fleet = single process" expected
          (report_text r.Fleet.Coordinator.outcome))

let () =
  Alcotest.run "fleet"
    [
      ( "transport",
        [
          Alcotest.test_case "round-trip over a pipe" `Quick test_transport_roundtrip;
          Alcotest.test_case "reader reassembles partial frames" `Quick
            test_transport_reader_partial_frames;
          Alcotest.test_case "corrupt frame = dead worker" `Quick test_transport_corrupt_frame;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "spec parsing" `Quick test_chaos_parse;
          Alcotest.test_case "fault schedule is seeded" `Quick test_chaos_plan_deterministic;
          Alcotest.test_case "capped exponential backoff" `Quick test_backoff;
        ] );
      ( "shatter",
        [ Alcotest.test_case "split_prefix invariants" `Quick test_split_prefix_invariants ] );
      ( "merge",
        [
          Alcotest.test_case "merge of disjoint halves" `Quick test_merge_outcomes_differential;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "in-process fleet = single process" `Slow
            test_coordinator_in_process_differential;
          Alcotest.test_case "degrades on spawn failure" `Slow
            test_coordinator_degrades_on_spawn_failure;
          Alcotest.test_case "interrupt leaves a resumable remainder" `Quick
            test_coordinator_interrupt_remainder;
        ] );
    ]
