(* Fuzz.run aggregation: the deduplicated output must be a function of the
   seed *set* — permuting the seed list or exploring each seed with a
   different worker count must not change [bugs] or [buggy_seeds]. *)
open Jaaru

let base = 0x1000

(* Two racing writers plus an oracle that rejects any state where t0's store
   persisted: every seed finds the bug, but the trace attached to it depends
   on that seed's schedule, so a first-seen dedup would keep whichever seed
   was listed first. *)
let racy_scenario () =
  Explorer.scenario ~name:"fuzz-racy"
    ~pre:(fun ctx ->
      Ctx.parallel ctx
        [
          (fun ctx ->
            Ctx.store64 ctx ~label:"t0-store" base 1;
            Ctx.clflush ctx ~label:"t0-flush" base 8);
          (fun ctx ->
            Ctx.store64 ctx ~label:"t1-store" (base + 64) 2;
            Ctx.clflush ctx ~label:"t1-flush" (base + 64) 8);
        ])
    ~post:(fun ctx ->
      Ctx.check ctx ~label:"oracle" (Ctx.load64 ctx ~label:"ra" base <> 1) "t0 persisted")

let seeds = [ 11; 3; 7; 1; 5 ]

let test_seed_order_invariance () =
  let scn = racy_scenario () in
  let r = Fuzz.run ~seeds scn in
  Alcotest.(check bool) "found" true (Fuzz.found_bug r);
  Alcotest.(check int) "every seed hits" (List.length seeds) (List.length r.Fuzz.buggy_seeds);
  List.iter
    (fun seeds' ->
      let r' = Fuzz.run ~seeds:seeds' scn in
      Alcotest.(check bool) "same bugs" true (r'.Fuzz.bugs = r.Fuzz.bugs);
      Alcotest.(check (list (pair int (list string))))
        "same buggy seeds" r.Fuzz.buggy_seeds r'.Fuzz.buggy_seeds;
      Alcotest.(check int) "same totals" r.Fuzz.total_executions r'.Fuzz.total_executions)
    [ List.rev seeds; List.sort compare seeds; [ 5; 11; 1; 7; 3 ] ]

let test_keep_min_representative () =
  (* The dedup must keep exactly the smallest record per report key over the
     union of every seed's reports — the explorer's own discipline. *)
  let scn = racy_scenario () in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun seed ->
      let config = { Config.default with Config.schedule_seed = Some seed } in
      List.iter
        (fun b ->
          let key = Bug.report_key b in
          match Hashtbl.find_opt tbl key with
          | Some b' when compare b' b <= 0 -> ()
          | Some _ | None -> Hashtbl.replace tbl key b)
        (Explorer.run ~config scn).Explorer.bugs)
    seeds;
  let expected = List.sort compare (Hashtbl.fold (fun _ b acc -> b :: acc) tbl []) in
  let r = Fuzz.run ~seeds scn in
  Alcotest.(check bool) "min representative per key" true (r.Fuzz.bugs = expected)

let test_all_symptoms_recorded () =
  (* A seed whose exploration reports two distinct manifestations must
     record both symptoms (the old code kept only the first). The load
     below has two read-from candidates when the crash lands before the
     flush, and each branch fails a different assertion. *)
  let scn =
    Explorer.scenario ~name:"fuzz-two-symptoms"
      ~pre:(fun ctx ->
        Ctx.store64 ctx ~label:"w" base 1;
        Ctx.clflush ctx ~label:"f" base 8)
      ~post:(fun ctx ->
        if Ctx.load64 ctx ~label:"r" base = 1 then
          Ctx.check ctx ~label:"sym-persisted" false "value persisted"
        else Ctx.check ctx ~label:"sym-lost" false "value lost")
  in
  let r = Fuzz.run ~seeds:[ 2; 1 ] scn in
  let expected = [ "Assertion failure at sym-lost"; "Assertion failure at sym-persisted" ] in
  Alcotest.(check (list (pair int (list string))))
    "both symptoms, per seed, sorted"
    [ (1, expected); (2, expected) ]
    r.Fuzz.buggy_seeds

let test_jobs_invariance () =
  let scn = racy_scenario () in
  let reference = Fuzz.run ~config:{ Config.default with Config.jobs = 1 } ~seeds scn in
  List.iter
    (fun jobs ->
      let r = Fuzz.run ~config:{ Config.default with Config.jobs = jobs } ~seeds scn in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d same bugs" jobs)
        true
        (r.Fuzz.bugs = reference.Fuzz.bugs);
      Alcotest.(check (list (pair int (list string))))
        (Printf.sprintf "jobs=%d same buggy seeds" jobs)
        reference.Fuzz.buggy_seeds r.Fuzz.buggy_seeds)
    (Test_env.jobs_matrix ~default:[ 2; 4 ])

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "seed order" `Quick test_seed_order_invariance;
          Alcotest.test_case "min representative" `Quick test_keep_min_representative;
          Alcotest.test_case "all symptoms recorded" `Quick test_all_symptoms_recorded;
          Alcotest.test_case "jobs" `Quick test_jobs_invariance;
        ] );
    ]
