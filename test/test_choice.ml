(* The replay DFS: completeness, ordering, truncation, divergence. *)
open Jaaru

(* Drive a "program" that consumes a fixed shape of decisions and record
   every complete path. *)
let enumerate shape =
  let choice = Choice.create () in
  let paths = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let path = List.map (fun n -> Choice.choose choice Choice.Read_from n) shape in
    paths := path :: !paths;
    if not (Choice.advance choice) then stop := true
  done;
  List.rev !paths

let test_exhaustive_product () =
  let paths = enumerate [ 2; 3 ] in
  Alcotest.(check int) "count" 6 (List.length paths);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare paths) = 6);
  Alcotest.(check (list (list int))) "first is all-defaults" [ [ 0; 0 ] ]
    [ List.hd paths ]

let test_single_alternative_no_branch () =
  let paths = enumerate [ 1; 1; 1 ] in
  Alcotest.(check int) "one path" 1 (List.length paths)

let test_dependent_tree () =
  (* The second decision exists only on one branch of the first: the DFS
     must truncate the record correctly. *)
  let choice = Choice.create () in
  let paths = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let a = Choice.choose choice Choice.Failure_point 2 in
    let path = if a = 0 then [ a ] else [ a; Choice.choose choice Choice.Read_from 3 ] in
    paths := path :: !paths;
    if not (Choice.advance choice) then stop := true
  done;
  let paths = List.rev !paths in
  Alcotest.(check (list (list int)))
    "four leaves" [ [ 0 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ] paths

let test_early_termination_truncates () =
  (* A replay may end (e.g. a bug) before consuming recorded decisions; the
     stale suffix must be dropped. *)
  let choice = Choice.create () in
  let visits = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let a = Choice.choose choice Choice.Read_from 2 in
    (* On branch a=0 consume a second decision; on a=1 "crash" early. *)
    let b = if a = 0 then Some (Choice.choose choice Choice.Read_from 2) else None in
    visits := (a, b) :: !visits;
    if not (Choice.advance choice) then stop := true
  done;
  Alcotest.(check (list (pair int (option int))))
    "paths" [ (0, Some 0); (0, Some 1); (1, None) ] (List.rev !visits)

let test_divergence_detection () =
  let choice = Choice.create () in
  Choice.begin_replay choice;
  ignore (Choice.choose choice Choice.Read_from 2);
  ignore (Choice.advance choice);
  Choice.begin_replay choice;
  (* Same position now claims a different arity: the program under test is
     nondeterministic. *)
  (match Choice.choose choice Choice.Read_from 3 with
  | _ -> Alcotest.fail "expected Divergence"
  | exception Choice.Divergence _ -> ());
  (* Kind mismatches too. *)
  let choice = Choice.create () in
  Choice.begin_replay choice;
  ignore (Choice.choose choice Choice.Read_from 2);
  ignore (Choice.advance choice);
  Choice.begin_replay choice;
  match Choice.choose choice Choice.Failure_point 2 with
  | _ -> Alcotest.fail "expected Divergence on kind"
  | exception Choice.Divergence _ -> ()

let test_created_counters () =
  let choice = Choice.create () in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    ignore (Choice.choose choice Choice.Failure_point 2);
    ignore (Choice.choose choice Choice.Read_from 2);
    if not (Choice.advance choice) then stop := true
  done;
  Alcotest.(check int) "fp decisions" 1 (Choice.created choice Choice.Failure_point);
  (* The rf decision is re-created on the second fp branch. *)
  Alcotest.(check int) "rf decisions" 2 (Choice.created choice Choice.Read_from)

let test_invalid_arity () =
  let choice = Choice.create () in
  Choice.begin_replay choice;
  Alcotest.check_raises "zero alternatives" (Invalid_argument "Choice.choose: no alternatives")
    (fun () -> ignore (Choice.choose choice Choice.Read_from 0))

(* --- prefixes and splitting -------------------------------------------------- *)

(* Explore [shape] the way the parallel explorer does: a queue of subtree
   prefixes, each explored to exhaustion, donating a sibling subtree via
   [split] after every [split_every]-th execution. *)
let enumerate_with_splits ?(kind = Choice.Read_from) shape ~split_every =
  let pending = Queue.create () in
  Queue.add Choice.root pending;
  let paths = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty pending) do
    let choice = Choice.resume_from_prefix (Queue.pop pending) in
    let stop = ref false in
    while not !stop do
      Choice.begin_replay choice;
      let path = List.map (fun n -> Choice.choose choice kind n) shape in
      paths := path :: !paths;
      incr count;
      let advanced = Choice.advance choice in
      if !count mod split_every = 0 then
        (match Choice.split choice with Some p -> Queue.add p pending | None -> ());
      if not advanced then stop := true
    done
  done;
  List.rev !paths

let test_resume_root_equals_create () =
  Alcotest.(check (list (list int)))
    "same leaves" (enumerate [ 2; 3; 2 ])
    (enumerate_with_splits [ 2; 3; 2 ] ~split_every:max_int)

let test_split_partitions_the_tree () =
  let sequential = List.sort compare (enumerate [ 3; 2; 4 ]) in
  List.iter
    (fun split_every ->
      let parallel = enumerate_with_splits [ 3; 2; 4 ] ~split_every in
      Alcotest.(check int)
        (Printf.sprintf "no duplicates (split_every=%d)" split_every)
        (List.length parallel)
        (List.length (List.sort_uniq compare parallel));
      Alcotest.(check (list (list int)))
        (Printf.sprintf "union is the full tree (split_every=%d)" split_every)
        sequential
        (List.sort compare parallel))
    [ 1; 2; 3 ]

let test_split_dependent_tree () =
  (* Splitting must also be sound when deeper decisions only exist on some
     branches (the donated prefix replays into a different subtree shape). *)
  let explore_one choice paths =
    Choice.begin_replay choice;
    let a = Choice.choose choice Choice.Failure_point 2 in
    let path = if a = 0 then [ a ] else [ a; Choice.choose choice Choice.Read_from 3 ] in
    paths := path :: !paths
  in
  let pending = Queue.create () in
  Queue.add Choice.root pending;
  let paths = ref [] in
  while not (Queue.is_empty pending) do
    let choice = Choice.resume_from_prefix (Queue.pop pending) in
    let stop = ref false in
    while not !stop do
      explore_one choice paths;
      let advanced = Choice.advance choice in
      (match Choice.split choice with Some p -> Queue.add p pending | None -> ());
      if not advanced then stop := true
    done
  done;
  Alcotest.(check (list (list int)))
    "four leaves, once each" [ [ 0 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ]
    (List.sort compare !paths)

let test_prefix_roundtrip () =
  let cells =
    [
      (Choice.Failure_point, 2, 0, 1);
      (Choice.Read_from, 5, 1, 2);
      (Choice.Drain, 4, 2, 4);
    ]
  in
  let p = Choice.prefix_of_cells ~frozen:2 cells in
  Alcotest.(check int) "depth" 3 (Choice.prefix_depth p);
  Alcotest.(check int) "frozen" 2 (Choice.prefix_frozen p);
  let s = Choice.encode_prefix p in
  (match Choice.decode_prefix s with
  | None -> Alcotest.failf "decode failed on %S" s
  | Some p' ->
      Alcotest.(check int) "roundtrip frozen" 2 (Choice.prefix_frozen p');
      Alcotest.(check bool) "roundtrip cells" true (Choice.prefix_cells p' = cells));
  Alcotest.(check bool) "root depth" true (Choice.prefix_depth Choice.root = 0);
  (* Malformed inputs are rejected, not crashed on. *)
  List.iter
    (fun s -> Alcotest.(check bool) s true (Choice.decode_prefix s = None))
    [ ""; "x"; "1;R2:0"; "1;Q2:0:2"; "9;R2:0:2"; "0;R2:2:2"; "0;R2:0:3"; "-1;R2:0:2" ]

let test_split_resumes_where_donated () =
  (* A split prefix must survive serialization and resume into exactly the
     donated subtree. *)
  let choice = Choice.create () in
  Choice.begin_replay choice;
  ignore (Choice.choose choice Choice.Read_from 3);
  ignore (Choice.choose choice Choice.Read_from 2);
  let p =
    match Choice.split choice with
    | Some p -> p
    | None -> Alcotest.fail "expected a donation"
  in
  let p =
    match Choice.decode_prefix (Choice.encode_prefix p) with
    | Some p -> p
    | None -> Alcotest.fail "roundtrip failed"
  in
  (* The donation owns alternatives 1 and 2 of the shallowest decision. *)
  let resumed = Choice.resume_from_prefix p in
  let paths = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay resumed;
    let a = Choice.choose resumed Choice.Read_from 3 in
    let b = Choice.choose resumed Choice.Read_from 2 in
    paths := (a, b) :: !paths;
    if not (Choice.advance resumed) then stop := true
  done;
  Alcotest.(check (list (pair int int)))
    "donated subtree" [ (1, 0); (1, 1); (2, 0); (2, 1) ]
    (List.sort compare !paths);
  (* ...and the donor no longer visits them. *)
  let donor_paths = ref [] in
  let stop = ref false in
  (* The donor's current replay was (0, 0); continue its loop. *)
  donor_paths := [ (0, 0) ];
  while not !stop do
    if Choice.advance choice then begin
      Choice.begin_replay choice;
      let a = Choice.choose choice Choice.Read_from 3 in
      let b = Choice.choose choice Choice.Read_from 2 in
      donor_paths := (a, b) :: !donor_paths
    end
    else stop := true
  done;
  Alcotest.(check (list (pair int int)))
    "donor keeps the rest" [ (0, 0); (0, 1) ]
    (List.sort compare !donor_paths)

let prop_split_partitions =
  QCheck.Test.make ~name:"splitting partitions the tree for any shape and cadence" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 0 5) (int_range 1 4)) (int_range 1 4))
    (fun (shape, split_every) ->
      let parallel = enumerate_with_splits shape ~split_every in
      let sequential = List.sort compare (enumerate shape) in
      List.sort compare parallel = sequential
      && List.length parallel = List.length (List.sort_uniq compare parallel))

let prop_dfs_visits_full_product =
  QCheck.Test.make ~name:"DFS visits the full cartesian product" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 5) (int_range 1 4))
    (fun shape ->
      let paths = enumerate shape in
      let expected = List.fold_left (fun acc n -> acc * n) 1 shape in
      List.length paths = expected
      && List.length (List.sort_uniq compare paths) = expected)

let () =
  Alcotest.run "choice"
    [
      ( "dfs",
        [
          Alcotest.test_case "exhaustive product" `Quick test_exhaustive_product;
          Alcotest.test_case "single alternative" `Quick test_single_alternative_no_branch;
          Alcotest.test_case "dependent tree" `Quick test_dependent_tree;
          Alcotest.test_case "early termination" `Quick test_early_termination_truncates;
          Alcotest.test_case "divergence" `Quick test_divergence_detection;
          Alcotest.test_case "created counters" `Quick test_created_counters;
          Alcotest.test_case "invalid arity" `Quick test_invalid_arity;
          QCheck_alcotest.to_alcotest prop_dfs_visits_full_product;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "resume from root = create" `Quick test_resume_root_equals_create;
          Alcotest.test_case "split partitions the tree" `Quick test_split_partitions_the_tree;
          Alcotest.test_case "split on a dependent tree" `Quick test_split_dependent_tree;
          Alcotest.test_case "encode/decode roundtrip" `Quick test_prefix_roundtrip;
          Alcotest.test_case "split resumes where donated" `Quick test_split_resumes_where_donated;
          QCheck_alcotest.to_alcotest prop_split_partitions;
        ] );
    ]
