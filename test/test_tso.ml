(* The TSO storage machinery: buffers, eviction algorithms, and Table 1
   checked behaviourally. *)

let mk_sink () =
  let seq = ref 0 in
  let record = Exec.Exec_record.create ~id:1 in
  (Tso.Sink.to_exec_record ~seq record, record, seq)

let test_store_buffer_fifo () =
  let sb = Tso.Store_buffer.create () in
  Tso.Store_buffer.enqueue sb (Tso.Store_buffer.Store { addr = 0; value = 1; width = 1; label = "a" });
  Tso.Store_buffer.enqueue sb Tso.Store_buffer.Sfence;
  Tso.Store_buffer.enqueue sb (Tso.Store_buffer.Store { addr = 8; value = 2; width = 1; label = "b" });
  Alcotest.(check int) "length" 3 (Tso.Store_buffer.length sb);
  Alcotest.(check bool) "pending writes" true (Tso.Store_buffer.pending_writes sb);
  (match Tso.Store_buffer.dequeue sb with
  | Some (Tso.Store_buffer.Store { label = "a"; _ }) -> ()
  | _ -> Alcotest.fail "FIFO order violated");
  (match Tso.Store_buffer.dequeue sb with
  | Some Tso.Store_buffer.Sfence -> ()
  | _ -> Alcotest.fail "FIFO order violated");
  Alcotest.(check int) "remaining" 1 (Tso.Store_buffer.length sb)

let test_store_buffer_bypass () =
  let sb = Tso.Store_buffer.create () in
  Tso.Store_buffer.enqueue sb
    (Tso.Store_buffer.Store { addr = 100; value = 0x04030201; width = 4; label = "old" });
  Tso.Store_buffer.enqueue sb
    (Tso.Store_buffer.Store { addr = 102; value = 9; width = 1; label = "new" });
  Alcotest.(check (option (pair int string))) "newest wins" (Some (9, "new"))
    (Tso.Store_buffer.bypass sb 102);
  Alcotest.(check (option (pair int string))) "older byte" (Some (2, "old"))
    (Tso.Store_buffer.bypass sb 101);
  Alcotest.(check (option (pair int string))) "miss" None (Tso.Store_buffer.bypass sb 104)

let test_store_atomic_bytes () =
  (* All bytes of a store take effect with one sequence number. *)
  let sink, record, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:0x0807060504030201 ~width:8 ~label:"w";
  Tso.Thread_state.drain th sink;
  let seqs =
    List.map
      (fun i -> (Option.get (Exec.Store_queue.last (Exec.Exec_record.queue record (100 + i)))).Exec.Store_queue.seq)
      [ 0; 1; 7 ]
  in
  Alcotest.(check (list int)) "one seq for all bytes" [ 1; 1; 1 ] seqs

let test_clflush_raises_lo () =
  let sink, record, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:1 ~width:1 ~label:"w";
  Tso.Thread_state.exec_clflush th 100 ~label:"fl";
  Tso.Thread_state.drain th sink;
  let iv = Exec.Exec_record.cacheline record 100 in
  Alcotest.(check int) "flush seq" 2 (Pmem.Interval.lo iv)

let test_clflushopt_waits_for_fence () =
  (* An evicted clflushopt parks in the flush buffer; only a fence applies it. *)
  let sink, record, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:1 ~width:1 ~label:"w";
  Tso.Thread_state.exec_clflushopt th sink 100 ~label:"opt";
  Tso.Thread_state.drain th sink;
  Alcotest.(check int) "not yet applied" 0
    (Pmem.Interval.lo (Exec.Exec_record.cacheline record 100));
  Alcotest.(check int) "parked in fb" 1 (Tso.Flush_buffer.length (Tso.Thread_state.flush_buffer th));
  Tso.Thread_state.exec_sfence th;
  Tso.Thread_state.drain th sink;
  (* cacheline returns a copy: re-fetch after the drain mutates the record. *)
  Alcotest.(check bool) "applied after sfence" true
    (Pmem.Interval.lo (Exec.Exec_record.cacheline record 100) >= 1);
  Alcotest.(check int) "fb empty" 0 (Tso.Flush_buffer.length (Tso.Thread_state.flush_buffer th))

let test_clflushopt_bound_is_preceding_store () =
  (* The applied lower bound covers the same-line store that preceded the
     clflushopt (they cannot reorder), Fig. 8's max computation. *)
  let sink, record, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:1 ~width:1 ~label:"w1";
  Tso.Thread_state.drain th sink (* store gets seq 1 *);
  Tso.Thread_state.exec_clflushopt th sink 100 ~label:"opt";
  Tso.Thread_state.drain th sink;
  Tso.Thread_state.exec_store th 100 ~value:2 ~width:1 ~label:"w2";
  Tso.Thread_state.drain th sink (* seq 2: must NOT be covered *);
  Tso.Thread_state.exec_sfence th;
  Tso.Thread_state.drain th sink;
  let iv = Exec.Exec_record.cacheline record 100 in
  Alcotest.(check int) "bound = first store's seq" 1 (Pmem.Interval.lo iv)

let test_mfence_immediate () =
  let sink, record, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:1 ~width:1 ~label:"w";
  Tso.Thread_state.exec_clflushopt th sink 100 ~label:"opt";
  Tso.Thread_state.exec_mfence th sink;
  Alcotest.(check bool) "sb drained" true
    (Tso.Store_buffer.is_empty (Tso.Thread_state.store_buffer th));
  Alcotest.(check bool) "flush applied" true
    (Pmem.Interval.lo (Exec.Exec_record.cacheline record 100) >= 1)

let test_reset_clears_everything () =
  let sink, _, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:1 ~width:1 ~label:"w";
  Tso.Thread_state.exec_clflushopt th sink 100 ~label:"opt";
  Tso.Thread_state.reset th;
  Alcotest.(check bool) "sb empty" true
    (Tso.Store_buffer.is_empty (Tso.Thread_state.store_buffer th));
  Alcotest.(check bool) "fb empty" true
    (Tso.Flush_buffer.is_empty (Tso.Thread_state.flush_buffer th))

(* --- Table 1, declarative form ---------------------------------------------- *)

let sym e l = Tso.Constraints.(ordering_symbol (preserved ~earlier:e ~later:l))

let test_table1_rows () =
  let open Tso.Constraints in
  (* Spot-check every interesting cell of the paper's table. *)
  Alcotest.(check string) "W-R" "N" (sym Write Read);
  Alcotest.(check string) "W-W" "Y" (sym Write Write);
  Alcotest.(check string) "W-clflushopt" "CL" (sym Write Clflushopt);
  Alcotest.(check string) "W-clflush" "Y" (sym Write Clflush);
  Alcotest.(check string) "sfence-R" "N" (sym Sfence Read);
  Alcotest.(check string) "sfence-clflushopt" "Y" (sym Sfence Clflushopt);
  Alcotest.(check string) "clflushopt-R" "N" (sym Clflushopt Read);
  Alcotest.(check string) "clflushopt-W" "N" (sym Clflushopt Write);
  Alcotest.(check string) "clflushopt-clflushopt" "N" (sym Clflushopt Clflushopt);
  Alcotest.(check string) "clflushopt-RMW" "Y" (sym Clflushopt Rmw);
  Alcotest.(check string) "clflushopt-mfence" "Y" (sym Clflushopt Mfence);
  Alcotest.(check string) "clflushopt-sfence" "Y" (sym Clflushopt Sfence);
  Alcotest.(check string) "clflushopt-clflush" "CL" (sym Clflushopt Clflush);
  Alcotest.(check string) "clflush-clflushopt" "CL" (sym Clflush Clflushopt);
  Alcotest.(check string) "clflush-R" "N" (sym Clflush Read);
  List.iter
    (fun later -> Alcotest.(check string) "Read row all ordered" "Y" (sym Read later))
    all_kinds;
  List.iter
    (fun later -> Alcotest.(check string) "mfence row all ordered" "Y" (sym Mfence later))
    all_kinds;
  List.iter
    (fun later -> Alcotest.(check string) "RMW row all ordered" "Y" (sym Rmw later))
    all_kinds

(* Behavioural check of the table's headline cell: a later store to another
   line may overtake an earlier clflushopt (W column of the clflushopt row),
   while an sfence forbids it. Observed through the applied lower bound. *)
let test_table1_behavioural_clflushopt_store () =
  let sink, record, _ = mk_sink () in
  let th = Tso.Thread_state.create ~tid:0 in
  Tso.Thread_state.exec_store th 100 ~value:1 ~width:1 ~label:"w1";
  Tso.Thread_state.exec_clflushopt th sink 100 ~label:"opt";
  Tso.Thread_state.exec_store th 200 ~value:2 ~width:1 ~label:"other line";
  Tso.Thread_state.drain th sink;
  (* The other-line store took effect in the cache even though the earlier
     clflushopt has not been applied: they reordered. *)
  Alcotest.(check bool) "other store visible" true
    (Exec.Exec_record.queue_opt record 200 <> None);
  Alcotest.(check int) "flush still pending" 0
    (Pmem.Interval.lo (Exec.Exec_record.cacheline record 100))

let () =
  Alcotest.run "tso"
    [
      ( "buffers",
        [
          Alcotest.test_case "fifo" `Quick test_store_buffer_fifo;
          Alcotest.test_case "bypass" `Quick test_store_buffer_bypass;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "atomic multi-byte store" `Quick test_store_atomic_bytes;
          Alcotest.test_case "clflush raises lo" `Quick test_clflush_raises_lo;
          Alcotest.test_case "clflushopt waits for fence" `Quick test_clflushopt_waits_for_fence;
          Alcotest.test_case "clflushopt bound" `Quick test_clflushopt_bound_is_preceding_store;
          Alcotest.test_case "mfence immediate" `Quick test_mfence_immediate;
          Alcotest.test_case "reset" `Quick test_reset_clears_everything;
        ] );
      ( "table1",
        [
          Alcotest.test_case "declarative cells" `Quick test_table1_rows;
          Alcotest.test_case "behavioural reordering" `Quick test_table1_behavioural_clflushopt_store;
        ] );
    ]
