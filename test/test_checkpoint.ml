(* Survivable explorations: wall-clock budgets, cooperative interruption and
   checkpoint/resume. The load-bearing property is the differential one — a
   run interrupted (by budget or flag) and resumed from its checkpoint, as
   many times as it takes, reports byte-identically to an uninterrupted run,
   for every --jobs value and with the memo/snapshot layers on or off. *)
open Jaaru

let report_text (o : Explorer.outcome) = Format.asprintf "%a" Explorer.pp_report o

let with_temp_file f =
  let path = Filename.temp_file "jaaru_ckpt" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* A workload big enough that a millisecond-scale budget interrupts it
   mid-flight: the first bundled PMDK case, deepened to two failures. *)
let deep_case () =
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  ( c.Pmdk.Workloads.scenario,
    { c.Pmdk.Workloads.config with Config.max_failures = 2; stop_at_first_bug = false } )

(* Run session after session against the same checkpoint until one completes;
   every intermediate session must end interrupted, with a resumable file on
   disk. The final safety-net session runs without a budget so a slow machine
   cannot loop forever. *)
let chain_until_complete ~config ~budget ~path scn =
  let rec go resume n sessions =
    if n > 100 then Alcotest.fail "resume chain did not converge in 100 sessions";
    let config =
      if n = 100 then { config with Config.wall_budget = None }
      else { config with Config.wall_budget = Some budget }
    in
    let o = Explorer.run ~config ?resume ~checkpoint:path scn in
    if o.Explorer.stats.Stats.interrupted then begin
      Alcotest.(check bool) "interrupted run left a checkpoint" true (Sys.file_exists path);
      go (Some (Checkpoint.load path)) (n + 1) (sessions + 1)
    end
    else (o, sessions)
  in
  go None 1 1

let test_interrupt_resume_differential () =
  let scn, config = deep_case () in
  let baseline = Explorer.run ~config:{ config with Config.jobs = 1 } scn in
  let expected = report_text baseline in
  Alcotest.(check bool) "baseline found the seeded bug" true (Explorer.found_bug baseline);
  Alcotest.(check bool) "baseline exhausted" true baseline.Explorer.stats.Stats.exhausted;
  List.iter
    (fun jobs ->
      List.iter
        (fun layers ->
          let config = { config with Config.jobs = jobs; memo = layers; snapshot = layers } in
          with_temp_file (fun path ->
              let o, sessions = chain_until_complete ~config ~budget:0.03 ~path scn in
              let label = Printf.sprintf "jobs=%d layers=%b (%d sessions)" jobs layers sessions in
              Alcotest.(check string) (label ^ ": byte-identical report") expected (report_text o);
              Alcotest.(check bool) (label ^ ": final run exhausted") true
                o.Explorer.stats.Stats.exhausted;
              (* The whole point: at least one session actually got cut. *)
              Alcotest.(check bool) (label ^ ": chain was interrupted at least once") true
                (sessions > 1)))
        [ true; false ])
    (Test_env.jobs_matrix ~default:[ 1; 4 ])

(* The same cooperative stop, driven by the signal-handler flag instead of a
   wall budget — what SIGINT/SIGTERM trigger in the CLI. *)
let test_interrupt_flag () =
  let scn, config = deep_case () in
  let baseline = Explorer.run ~config scn in
  Explorer.clear_interrupt ();
  Fun.protect ~finally:Explorer.clear_interrupt (fun () ->
      with_temp_file (fun path ->
          let killer = Thread.create (fun () -> Thread.delay 0.05; Explorer.request_interrupt ()) () in
          let o = Explorer.run ~config ~checkpoint:path scn in
          Thread.join killer;
          (* Either the flag caught it mid-flight, or the run finished first
             on a fast machine — both must leave a resumable checkpoint. *)
          if o.Explorer.stats.Stats.interrupted then begin
            Alcotest.(check bool) "interrupted implies not exhausted" false
              o.Explorer.stats.Stats.exhausted;
            Explorer.clear_interrupt ();
            let resumed = Explorer.run ~config ~resume:(Checkpoint.load path) scn in
            Alcotest.(check string) "flag-interrupted + resumed = uninterrupted"
              (report_text baseline) (report_text resumed)
          end
          else Alcotest.(check string) "finished before the flag" (report_text baseline)
                 (report_text o)))

let test_completed_checkpoint_idempotent () =
  let scn, config = deep_case () in
  with_temp_file (fun path ->
      let o = Explorer.run ~config ~checkpoint:path scn in
      let cp = Checkpoint.load path in
      Alcotest.(check bool) "completion checkpoint has an empty frontier" true
        (Checkpoint.completed cp);
      let again = Explorer.run ~config ~resume:cp scn in
      Alcotest.(check string) "resuming a completed run reports the stored outcome"
        (report_text o) (report_text again);
      Alcotest.(check int) "and explores nothing new" o.Explorer.stats.Stats.executions
        again.Explorer.stats.Stats.executions)

let test_fingerprint_mismatch () =
  let scn, config = deep_case () in
  with_temp_file (fun path ->
      let _ = Explorer.run ~config ~checkpoint:path scn in
      let cp = Checkpoint.load path in
      let mismatched = { config with Config.max_failures = 1 } in
      (match Explorer.run ~config:mismatched ~resume:cp scn with
      | _ -> Alcotest.fail "resume under a different config must be rejected"
      | exception Checkpoint.Rejected msg ->
          Alcotest.(check bool) "rejection names the fingerprint" true
            (String.length msg > 0));
      (* Same config resumes fine. *)
      ignore (Explorer.run ~config ~resume:cp scn))

let test_checkpoint_corruption () =
  let scn, config = deep_case () in
  with_temp_file (fun path ->
      let _ = Explorer.run ~config ~checkpoint:path scn in
      ignore (Checkpoint.load path);
      (* Flip one payload byte: the CRC must catch it. *)
      let data = In_channel.with_open_bin path In_channel.input_all in
      let corrupt = Bytes.of_string data in
      let i = String.length data - 3 in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 1));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc corrupt);
      (match Checkpoint.load path with
      | _ -> Alcotest.fail "corrupt checkpoint must be rejected"
      | exception Checkpoint.Rejected _ -> ());
      (* Not a checkpoint at all. *)
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a checkpoint");
      match Checkpoint.load path with
      | _ -> Alcotest.fail "bad magic must be rejected"
      | exception Checkpoint.Rejected _ -> ())

(* A save that dies mid-write (full disk, kill) must neither corrupt the
   existing checkpoint nor leave its .tmp sibling behind. *)
let test_failed_save_cleans_tmp () =
  let scn, config = deep_case () in
  with_temp_file (fun path ->
      let _ = Explorer.run ~config ~checkpoint:path scn in
      let before = In_channel.with_open_bin path In_channel.input_all in
      let cp = Checkpoint.load path in
      Checkpoint.set_write_fault (Some (fun () -> failwith "disk full"));
      Fun.protect
        ~finally:(fun () -> Checkpoint.set_write_fault None)
        (fun () ->
          match Checkpoint.save cp path with
          | () -> Alcotest.fail "injected write fault must propagate"
          | exception Failure _ -> ());
      Alcotest.(check bool) "no .tmp left behind" false (Sys.file_exists (path ^ ".tmp"));
      let after = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check bool) "previous checkpoint intact" true (before = after);
      (* And it still loads: the failed save changed nothing. *)
      ignore (Checkpoint.load path))

(* --- robustness fuzz: no corrupted image is ever half-read ------------------ *)

(* One real checkpoint image, capped so it is cheap and its frontier is
   non-empty (truncations must threaten frontier bytes too, not just the
   header). Computed once and shared by both properties. *)
let fuzz_image =
  lazy
    (let scn, config = deep_case () in
     with_temp_file (fun path ->
         let config = { config with Config.max_executions = 16 } in
         let _ = Explorer.run ~config ~checkpoint:path scn in
         let img = In_channel.with_open_bin path In_channel.input_all in
         let cp = Checkpoint.load path in
         Alcotest.(check bool) "fuzz image has a frontier" true (cp.Checkpoint.frontier <> []);
         (img, Checkpoint.to_string cp)))

(* Every proper prefix of a checkpoint — a partial write that crashed before
   the file was complete — must raise Rejected, never return garbage. *)
let prop_truncation_rejected =
  QCheck.Test.make ~name:"every truncation is rejected" ~count:500
    QCheck.(pair (float_bound_inclusive 1.) small_nat)
    (fun (frac, extra) ->
      let img, _ = Lazy.force fuzz_image in
      let len = String.length img in
      (* Bias toward the interesting region boundaries but cover everything:
         cut at a fraction of the file, sometimes minus a few bytes. *)
      let n = max 0 (min (len - 1) (int_of_float (frac *. float_of_int len) - extra)) in
      match Checkpoint.of_string (String.sub img 0 n) with
      | _ -> false
      | exception Checkpoint.Rejected _ -> true)

(* A flipped bit anywhere in the image either trips the integrity checks or
   — if some byte were genuinely dead — decodes to exactly the original
   value. It must never mis-read. *)
let prop_bitflip_never_misreads =
  QCheck.Test.make ~name:"every bit flip rejects or reads back exactly" ~count:500
    QCheck.(pair (float_bound_inclusive 1.) (int_bound 7))
    (fun (frac, bit) ->
      let img, canonical = Lazy.force fuzz_image in
      let len = String.length img in
      let pos = min (len - 1) (int_of_float (frac *. float_of_int (len - 1))) in
      let flipped = Bytes.of_string img in
      Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor (1 lsl bit)));
      match Checkpoint.of_string (Bytes.unsafe_to_string flipped) with
      | cp -> Checkpoint.to_string cp = canonical
      | exception Checkpoint.Rejected _ -> true)

(* The write-fault hook as a partial-write simulator: a save that dies
   between header and payload must leave NO readable file at a fresh
   destination — partial writes never become loadable checkpoints. *)
let test_partial_write_never_loadable () =
  let scn, config = deep_case () in
  with_temp_file (fun path ->
      let _ = Explorer.run ~config ~checkpoint:path scn in
      let cp = Checkpoint.load path in
      let fresh = path ^ ".fresh" in
      Fun.protect
        ~finally:(fun () ->
          Checkpoint.set_write_fault None;
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ fresh; fresh ^ ".tmp" ])
        (fun () ->
          Checkpoint.set_write_fault (Some (fun () -> failwith "killed mid-write"));
          (match Checkpoint.save cp fresh with
          | () -> Alcotest.fail "injected fault must propagate"
          | exception Failure _ -> ());
          Alcotest.(check bool) "no destination file appears" false (Sys.file_exists fresh);
          Alcotest.(check bool) "no temp file survives" false
            (Sys.file_exists (fresh ^ ".tmp"))))

(* --- per-execution wall-clock deadline ------------------------------------- *)

(* A workload that spins forever while still issuing Ctx operations slowly
   enough that an effectively unbounded max_steps never fires: only the
   wall-clock deadline can end it. *)
let test_step_deadline_fires () =
  let spin =
    Explorer.scenario_single ~name:"spinner" (fun ctx ->
        while true do
          Ctx.progress ctx ()
        done)
  in
  let config =
    {
      Config.default with
      Config.max_steps = max_int;
      step_deadline = Some 0.05;
      stop_at_first_bug = false;
    }
  in
  let t0 = Unix.gettimeofday () in
  let o = Explorer.run ~config spin in
  let dt = Unix.gettimeofday () -. t0 in
  (match o.Explorer.bugs with
  | [ b ] -> (
      match b.Bug.kind with
      | Bug.Execution_timeout { seconds } ->
          Alcotest.(check (float 1e-9)) "reports the configured deadline" 0.05 seconds
      | k -> Alcotest.failf "expected Execution_timeout, got %a" Bug.pp_kind k)
  | bs -> Alcotest.failf "expected exactly one bug, got %d" (List.length bs));
  Alcotest.(check bool) "run terminated promptly" true (dt < 5.);
  Alcotest.(check bool) "the exploration itself completed" true o.Explorer.stats.Stats.exhausted;
  (* Control: the same spin IS an infinite loop to a finite step budget —
     max_steps sees it when it is small enough, proving the deadline covered
     the case the step budget could not (max_int). *)
  let o =
    Explorer.run ~config:{ config with Config.max_steps = 1_000; step_deadline = None } spin
  in
  match o.Explorer.bugs with
  | [ { Bug.kind = Bug.Infinite_loop _; _ } ] -> ()
  | _ -> Alcotest.fail "finite max_steps should report Infinite_loop"

(* --- Choice.remainder -------------------------------------------------------- *)

(* Drive a synthetic two-level decision tree by hand; stopping after [k]
   leaves and resuming from [remainder] must visit exactly the leaves the
   full enumeration had left, in order. *)
let enumerate_leaves choice ~stop_after =
  let leaves = ref [] in
  let continue = ref true in
  let n = ref 0 in
  let remainder = ref None in
  while !continue do
    match (!remainder, stop_after) with
    | None, Some k when !n >= k ->
        remainder := Some (Choice.remainder choice);
        continue := false
    | _ ->
        Choice.begin_replay choice;
        let a = Choice.choose choice Choice.Failure_point 3 in
        let b = Choice.choose choice Choice.Read_from 2 in
        leaves := (a, b) :: !leaves;
        incr n;
        if not (Choice.advance choice) then continue := false
  done;
  (List.rev !leaves, !remainder)

let test_choice_remainder () =
  let all, r = enumerate_leaves (Choice.create ()) ~stop_after:None in
  Alcotest.(check (list (pair int int)))
    "full enumeration"
    [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 0); (2, 1) ]
    all;
  Alcotest.(check bool) "no remainder when run to completion" true (r = None);
  for k = 1 to 5 do
    let first, r = enumerate_leaves (Choice.create ()) ~stop_after:(Some k) in
    match r with
    | None -> Alcotest.fail "stopped enumeration must produce a remainder"
    | Some prefix ->
        let rest, _ =
          enumerate_leaves (Choice.resume_from_prefix prefix) ~stop_after:None
        in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "stop after %d + resume = full" k)
          all (first @ rest)
  done

(* --- satellite: dedicated kinds and message normalization ------------------- *)

let bug kind =
  { Bug.kind; location = "spot"; exec_depth = 0; trace = []; dropped = 0 }

let test_step_limit_kind () =
  let sl = bug (Bug.Step_limit { resource = "stack" }) in
  let pe = bug (Bug.Program_exception "resource exhaustion") in
  Alcotest.(check bool) "Step_limit dedups separately from Program_exception" false
    (Bug.report_key sl = Bug.report_key pe);
  (* Rendering compatibility: the symptom line still reads like the old
     Program_exception string. *)
  Alcotest.(check string) "symptom keeps the legacy wording" "resource exhaustion at spot"
    (Bug.symptom sl);
  let tm = bug (Bug.Execution_timeout { seconds = 0.5 }) in
  Alcotest.(check bool) "Execution_timeout has its own key" false
    (Bug.report_key tm = Bug.report_key pe)

let test_normalize_message () =
  Alcotest.(check string) "hex runs become placeholders" "Failure(0x<addr>, 0x<addr>)"
    (Bug.normalize_message "Failure(0x7f3a91b2c4d0, 0XDEADbeef)");
  (* Case-insensitivity regressions: the scrubber must treat the 0X prefix
     and upper-case hex digits exactly like their lower-case forms, or
     identical exceptions printed by different runtimes dedup to different
     keys. *)
  Alcotest.(check string) "upper-case 0X prefix" "err at 0x<addr>"
    (Bug.normalize_message "err at 0X7F3A91B2C4D0");
  Alcotest.(check string) "upper-case hex digits" "err at 0x<addr>"
    (Bug.normalize_message "err at 0xABC");
  Alcotest.(check string) "mixed-case hex digits" "err at 0x<addr>"
    (Bug.normalize_message "err at 0xDeadBeef");
  let report msg = bug (Bug.Program_exception (Bug.normalize_message msg)) in
  Alcotest.(check bool) "case variants yield structurally equal reports" true
    (report "Failure(0xdeadbeef)" = report "Failure(0XDEADBEEF)");
  Alcotest.(check string) "first line only" "header"
    (Bug.normalize_message "header\nRaised at Foo.bar in file \"foo.ml\"");
  Alcotest.(check string) "plain messages unchanged" "Not_found"
    (Bug.normalize_message "Not_found");
  Alcotest.(check string) "0x alone is not an address" "0x" (Bug.normalize_message "0x");
  let long = String.make 300 'a' in
  Alcotest.(check int) "long messages are capped" 200
    (String.length (Bug.normalize_message long))

let () =
  Alcotest.run "checkpoint"
    [
      ( "differential",
        [
          Alcotest.test_case "interrupt+resume = uninterrupted" `Slow
            test_interrupt_resume_differential;
          Alcotest.test_case "interrupt flag" `Quick test_interrupt_flag;
          Alcotest.test_case "completed checkpoint idempotent" `Quick
            test_completed_checkpoint_idempotent;
        ] );
      ( "validation",
        [
          Alcotest.test_case "fingerprint mismatch rejected" `Quick test_fingerprint_mismatch;
          Alcotest.test_case "corruption rejected" `Quick test_checkpoint_corruption;
          Alcotest.test_case "failed save cleans up its temp file" `Quick
            test_failed_save_cleans_tmp;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_truncation_rejected;
          QCheck_alcotest.to_alcotest prop_bitflip_never_misreads;
          Alcotest.test_case "partial write never becomes loadable" `Quick
            test_partial_write_never_loadable;
        ] );
      ( "watchdog",
        [ Alcotest.test_case "step deadline fires, max_steps does not" `Quick
            test_step_deadline_fires ] );
      ("choice", [ Alcotest.test_case "remainder resumes exactly" `Quick test_choice_remainder ]);
      ( "bug-kinds",
        [
          Alcotest.test_case "Step_limit dedup" `Quick test_step_limit_kind;
          Alcotest.test_case "normalize_message" `Quick test_normalize_message;
        ] );
    ]
