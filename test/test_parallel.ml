(* Domain-parallel exploration: the Frontier work queue and the guarantee
   that exhaustive parallel runs report exactly what sequential runs do. *)
open Jaaru

(* --- Frontier ------------------------------------------------------------------ *)

let test_frontier_fifo () =
  let f = Frontier.create ~workers:1 () in
  Frontier.push f 1;
  Frontier.push f 2;
  Frontier.push f 3;
  Alcotest.(check (option int)) "first" (Some 1) (Frontier.pop f);
  Alcotest.(check (option int)) "second" (Some 2) (Frontier.pop f);
  Alcotest.(check (option int)) "third" (Some 3) (Frontier.pop f)

let test_frontier_termination_single () =
  let f = Frontier.create ~workers:1 () in
  Frontier.push f 42;
  Alcotest.(check (option int)) "task" (Some 42) (Frontier.pop f);
  (* The only worker asking again with an empty queue: exploration is over. *)
  Alcotest.(check (option int)) "done" None (Frontier.pop f);
  Alcotest.(check bool) "closed" true (Frontier.closed f);
  Frontier.push f 7;
  Alcotest.(check (option int)) "push after close is dropped" None (Frontier.pop f)

let test_frontier_close_wakes_everyone () =
  let f = Frontier.create ~workers:3 () in
  let d1 = Domain.spawn (fun () -> Frontier.pop f) in
  let d2 = Domain.spawn (fun () -> Frontier.pop f) in
  (* Give both a chance to block, then close. *)
  Unix.sleepf 0.05;
  Frontier.close f;
  Alcotest.(check (option int)) "worker 1 woken" None (Domain.join d1);
  Alcotest.(check (option int)) "worker 2 woken" None (Domain.join d2)

let test_frontier_parallel_drain () =
  (* Three domains drain a recursive workload: every task [n] spawns tasks
     [n - 1] and [n - 2]. All workers must process the whole tree and then
     agree on termination without an explicit close. *)
  let f = Frontier.create ~workers:3 () in
  Frontier.push f 4;
  let processed = Atomic.make 0 in
  let worker () =
    let rec go () =
      match Frontier.pop f with
      | None -> ()
      | Some n ->
          Atomic.incr processed;
          if n > 1 then begin
            Frontier.push f (n - 1);
            Frontier.push f (n - 2)
          end;
          go ()
    in
    go ()
  in
  let ds = List.init 2 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  (* tasks(n) = 1 + tasks(n-1) + tasks(n-2); tasks(0) = tasks(1) = 1 → tasks(4) = 9 *)
  Alcotest.(check int) "whole tree processed" 9 (Atomic.get processed)

let test_frontier_needs_work () =
  let f = Frontier.create ~workers:2 () in
  Alcotest.(check bool) "nobody waiting yet" false (Frontier.needs_work f);
  let d = Domain.spawn (fun () -> Frontier.pop f) in
  let rec await tries =
    if Frontier.needs_work f then ()
    else if tries = 0 then Alcotest.fail "worker never registered as hungry"
    else begin
      Unix.sleepf 0.01;
      await (tries - 1)
    end
  in
  await 200;
  Frontier.push f 5;
  Alcotest.(check (option int)) "fed" (Some 5) (Domain.join d)

(* --- parallel = sequential on the bundled workloads ----------------------------- *)

(* Memo counters are partition-dependent (see Stats.comparable), so the
   cross-jobs identity is on the comparable projection, not the raw record. *)
let strip_time = Stats.comparable

let check_jobs_equivalence name scenario config =
  let exhaustive = { config with Config.stop_at_first_bug = false } in
  let reference = Explorer.run ~config:{ exhaustive with Config.jobs = 1 } scenario in
  List.iter
    (fun jobs ->
      let o = Explorer.run ~config:{ exhaustive with Config.jobs = jobs } scenario in
      let tag fmt = Printf.sprintf "%s jobs=%d: %s" name jobs fmt in
      Alcotest.(check bool) (tag "same bugs") true (o.Explorer.bugs = reference.Explorer.bugs);
      Alcotest.(check bool)
        (tag "same multi-rf") true
        (o.Explorer.multi_rf = reference.Explorer.multi_rf);
      Alcotest.(check bool) (tag "same perf") true (o.Explorer.perf = reference.Explorer.perf);
      Alcotest.(check bool)
        (tag "same findings") true
        (o.Explorer.findings = reference.Explorer.findings);
      Alcotest.(check bool)
        (tag "same stats") true
        (strip_time o.Explorer.stats = strip_time reference.Explorer.stats))
    (Test_env.jobs_matrix ~default:[ 2; 3 ])

let test_parallel_pmdk_case () =
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  check_jobs_equivalence c.Pmdk.Workloads.id c.Pmdk.Workloads.scenario c.Pmdk.Workloads.config

let test_parallel_recipe_case () =
  let c = List.hd (Recipe.Workloads.fig13_cases ()) in
  check_jobs_equivalence c.Recipe.Workloads.id c.Recipe.Workloads.scenario
    c.Recipe.Workloads.config

let test_parallel_clean_workload () =
  let scn = Recipe.Workloads.fixed_scenario "P-CLHT" 3 in
  check_jobs_equivalence "P-CLHT n=3" scn { Config.default with Config.max_steps = 200_000 }

let test_parallel_multi_failure () =
  (* Deeper scenario spaces (two injected failures) split and merge too. *)
  let base = 0x1000 in
  let scn =
    Explorer.scenario ~name:"multi-failure"
      ~pre:(fun ctx ->
        for i = 0 to 3 do
          Ctx.store64 ctx ~label:"w" (base + (64 * i)) (i + 1);
          Ctx.clflush ctx ~label:"f" (base + (64 * i)) 8
        done)
      ~post:(fun ctx ->
        for i = 0 to 3 do
          ignore (Ctx.load64 ctx ~label:"r" (base + (64 * i)))
        done)
  in
  check_jobs_equivalence "multi-failure" scn { Config.default with Config.max_failures = 2 }

let test_parallel_finds_seeded_bug () =
  (* A buggy case keeps reporting its bug (with identical deduplicated
     records) when explored in parallel. *)
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  let config =
    { c.Pmdk.Workloads.config with Config.stop_at_first_bug = false; Config.jobs = 3 }
  in
  let o = Explorer.run ~config c.Pmdk.Workloads.scenario in
  Alcotest.(check bool) "bug found with jobs=3" true (Explorer.found_bug o)

let test_parallel_analysis_reports () =
  (* With the analysis passes on, the merged findings list must render
     byte-identically for jobs = 1, 2 and 4 — the lint report is part of the
     determinism contract. *)
  let c = Recipe.Workloads.find (Recipe.Workloads.fig13_cases ()) "CCEH-1" in
  let run jobs =
    let config =
      {
        c.Recipe.Workloads.config with
        Config.analyze = true;
        stop_at_first_bug = false;
        jobs;
      }
    in
    let o = Explorer.run ~config c.Recipe.Workloads.scenario in
    ( o.Explorer.findings,
      String.concat "\n"
        (List.map (Format.asprintf "%a" Analysis.Report.pp_finding) o.Explorer.findings) )
  in
  let findings1, text1 = run 1 in
  Alcotest.(check bool) "analysis produced findings" true (findings1 <> []);
  List.iter
    (fun jobs ->
      let findings, text = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d same findings" jobs)
        true (findings = findings1);
      Alcotest.(check string) (Printf.sprintf "jobs=%d same rendering" jobs) text1 text)
    (Test_env.jobs_matrix ~default:[ 2; 4 ])

let test_stats_merge_identity_and_sums () =
  let a =
    {
      Stats.executions = 3;
      failure_points = 7;
      rf_decisions = 2;
      multi_rf_loads = 1;
      stores = 10;
      flushes = 4;
      findings = 0;
      memo_hits = 0;
      memo_misses = 0;
      memo_saved = 1;
      snapshot_hits = 2;
      snapshot_misses = 1;
      sheds = 0;
      wall_time = 1.5;
      exhausted = true;
      interrupted = false;
    }
  in
  Alcotest.(check bool) "zero is identity" true (Stats.merge Stats.zero a = a);
  let b = { a with Stats.executions = 5; failure_points = 0; rf_decisions = 4; exhausted = false } in
  let m = Stats.merge a b in
  Alcotest.(check int) "executions add" 8 m.Stats.executions;
  Alcotest.(check int) "rf decisions add" 6 m.Stats.rf_decisions;
  Alcotest.(check int) "failure points max" 7 m.Stats.failure_points;
  Alcotest.(check int) "memo saved adds" 2 m.Stats.memo_saved;
  Alcotest.(check int) "snapshot hits add" 4 m.Stats.snapshot_hits;
  Alcotest.(check bool) "exhausted ands" false m.Stats.exhausted;
  Alcotest.(check bool) "comparable zeroes memo counters" true
    (Stats.comparable a
    = Stats.comparable { a with Stats.memo_hits = 9; memo_saved = 0; snapshot_hits = 5 })

let () =
  Alcotest.run "parallel"
    [
      ( "frontier",
        [
          Alcotest.test_case "fifo order" `Quick test_frontier_fifo;
          Alcotest.test_case "single-worker termination" `Quick test_frontier_termination_single;
          Alcotest.test_case "close wakes blocked workers" `Quick test_frontier_close_wakes_everyone;
          Alcotest.test_case "parallel drain terminates" `Quick test_frontier_parallel_drain;
          Alcotest.test_case "needs_work hint" `Quick test_frontier_needs_work;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "PMDK case" `Quick test_parallel_pmdk_case;
          Alcotest.test_case "RECIPE case" `Quick test_parallel_recipe_case;
          Alcotest.test_case "clean RECIPE workload" `Quick test_parallel_clean_workload;
          Alcotest.test_case "multi-failure scenario" `Quick test_parallel_multi_failure;
          Alcotest.test_case "seeded bug still found" `Quick test_parallel_finds_seeded_bug;
          Alcotest.test_case "analysis reports" `Quick test_parallel_analysis_reports;
        ] );
      ( "stats",
        [ Alcotest.test_case "merge" `Quick test_stats_merge_identity_and_sums ] );
    ]
