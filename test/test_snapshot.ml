(* The failure-point snapshot/resume layer: outcomes must be byte-identical
   with snapshots on or off for every --jobs value, while the pre-failure
   program actually runs only once per decision path — plus regression tests
   for the replay-path fixes that ride along (clwb event kind, exact
   execution-budget accounting, parallel-section join/drain scope). *)
open Jaaru

let base = 0x1000

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Choice: snapshot keys ------------------------------------------------- *)

let test_choice_consumed_and_matches () =
  let c = Choice.create () in
  Choice.begin_replay c;
  ignore (Choice.choose c Choice.Failure_point 2);
  ignore (Choice.choose c Choice.Read_from 3);
  let key = Choice.consumed c in
  Alcotest.(check int) "two consumed decisions" 2 (Array.length key);
  Alcotest.(check bool)
    "consumed records kind/num/chosen" true
    (key = [| (Choice.Failure_point, 2, 0); (Choice.Read_from, 3, 0) |]);
  (* Advance flips the deepest cell: the next replay reads [RF = 1]. *)
  Alcotest.(check bool) "advance has work" true (Choice.advance c);
  Choice.begin_replay c;
  Alcotest.(check bool)
    "prefix with matching chosen" true
    (Choice.recorded_matches c [| (Choice.Failure_point, 2, 0) |]);
  Alcotest.(check bool)
    "full path with flipped cell" true
    (Choice.recorded_matches c [| (Choice.Failure_point, 2, 0); (Choice.Read_from, 3, 1) |]);
  Alcotest.(check bool)
    "wrong chosen rejected" false
    (Choice.recorded_matches c [| (Choice.Failure_point, 2, 1) |]);
  Alcotest.(check bool)
    "longer than the record rejected" false
    (Choice.recorded_matches c
       [|
         (Choice.Failure_point, 2, 0); (Choice.Read_from, 3, 1); (Choice.Drain, 2, 0);
       |])

let test_choice_fast_forward () =
  let c = Choice.create () in
  Choice.begin_replay c;
  ignore (Choice.choose c Choice.Failure_point 2);
  ignore (Choice.choose c Choice.Read_from 3);
  ignore (Choice.advance c);
  Choice.begin_replay c;
  Choice.fast_forward c 1;
  Alcotest.(check int) "cursor moved" 1 (Choice.depth c);
  (* The next decision is the recorded (flipped) Read_from cell. *)
  Alcotest.(check int) "replays the recorded cell" 1 (Choice.choose c Choice.Read_from 3);
  Alcotest.(check bool)
    "cannot rewind" true
    (match Choice.fast_forward c 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- outcome equivalence: snapshot on/off x jobs --------------------------- *)

let outcome_text (o : Explorer.outcome) =
  let o = { o with Explorer.stats = Stats.comparable o.Explorer.stats } in
  Format.asprintf "%a" Explorer.pp_outcome o

let check_snapshot_equivalence name scenario config =
  let config = { config with Config.stop_at_first_bug = false } in
  let reference =
    Explorer.run ~config:{ config with Config.snapshot = false; jobs = 1 } scenario
  in
  let ref_text = outcome_text reference in
  Alcotest.(check bool)
    (name ^ ": reference explored something") true
    (reference.Explorer.stats.Stats.executions > 0);
  List.iter
    (fun jobs ->
      List.iter
        (fun snapshot ->
          let o =
            Explorer.run ~config:{ config with Config.snapshot = snapshot; jobs } scenario
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs=%d snapshot=%b byte-identical" name jobs snapshot)
            ref_text (outcome_text o))
        [ true; false ])
    (Test_env.jobs_matrix ~default:[ 1; 2; 4 ])

let flush_loop_scenario () =
  Explorer.scenario ~name:"flush-loop"
    ~pre:(fun ctx ->
      for i = 0 to 3 do
        Ctx.store64 ctx ~label:"w" (base + (64 * i)) (i + 1);
        Ctx.clflush ctx ~label:"f" (base + (64 * i)) 8
      done)
    ~post:(fun ctx ->
      for i = 0 to 3 do
        ignore (Ctx.load64 ctx ~label:"r" (base + (64 * i)))
      done)

let test_equivalence_eager () =
  check_snapshot_equivalence "eager" (flush_loop_scenario ()) Config.default

let test_equivalence_buffered () =
  check_snapshot_equivalence "buffered" (flush_loop_scenario ())
    { Config.default with Config.evict_policy = Config.Buffered }

let test_equivalence_multi_failure () =
  check_snapshot_equivalence "multi-failure" (flush_loop_scenario ())
    { Config.default with Config.max_failures = 2 }

let test_equivalence_explicit_crash () =
  (* [Ctx.crash] with a decision-free pre: the snapshot key is empty and
     every replay after the first resumes straight at the crash. *)
  let scn =
    Explorer.scenario ~name:"explicit-crash"
      ~pre:(fun ctx ->
        Ctx.store64 ctx ~label:"a" base 1;
        Ctx.store64 ctx ~label:"b" (base + 8) 2;
        Ctx.crash ctx)
      ~post:(fun ctx ->
        ignore (Ctx.load64 ctx ~label:"ra" base);
        ignore (Ctx.load64 ctx ~label:"rb" (base + 8)))
  in
  check_snapshot_equivalence "explicit-crash eager" scn
    { Config.default with Config.max_failures = 0 };
  (* Buffered: the drain prefix at the crash stays a live decision replayed
     on the restored store buffers. *)
  check_snapshot_equivalence "explicit-crash buffered" scn
    { Config.default with Config.max_failures = 0; evict_policy = Config.Buffered }

let test_equivalence_analysis () =
  check_snapshot_equivalence "analysis" (flush_loop_scenario ())
    { Config.default with Config.analyze = true }

let test_equivalence_pmdk () =
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  check_snapshot_equivalence c.Pmdk.Workloads.id c.Pmdk.Workloads.scenario
    c.Pmdk.Workloads.config

let test_equivalence_recipe () =
  let c = List.hd (Recipe.Workloads.fig13_cases ()) in
  check_snapshot_equivalence c.Recipe.Workloads.id c.Recipe.Workloads.scenario
    c.Recipe.Workloads.config

(* --- snapshots actually skip the pre-failure program ----------------------- *)

let test_snapshot_skips_pre () =
  let pre_runs = ref 0 in
  let scn =
    Explorer.scenario ~name:"skip-pre"
      ~pre:(fun ctx ->
        incr pre_runs;
        for i = 0 to 3 do
          Ctx.store64 ctx ~label:"w" (base + (64 * i)) (i + 1);
          Ctx.clflush ctx ~label:"f" (base + (64 * i)) 8
        done)
      ~post:(fun ctx ->
        for i = 0 to 3 do
          ignore (Ctx.load64 ctx ~label:"r" (base + (64 * i)))
        done)
  in
  let run snapshot =
    pre_runs := 0;
    let o = Explorer.run ~config:{ Config.default with Config.snapshot = snapshot } scn in
    (o.Explorer.stats.Stats.executions, !pre_runs)
  in
  let execs_on, pre_on = run true in
  let execs_off, pre_off = run false in
  Alcotest.(check int) "same execution count either way" execs_off execs_on;
  Alcotest.(check int) "off: pre re-executes every replay" execs_off pre_off;
  Alcotest.(check bool) "the space has crash subtrees" true (execs_off > 1);
  (* The pre-failure path has no decisions of its own, so one full replay
     captures every failure point on it and all later replays resume. *)
  Alcotest.(check int) "on: pre executes exactly once" 1 pre_on

(* --- execution budget: exact accounting ------------------------------------ *)

let test_exact_budget_not_capped () =
  let scn = flush_loop_scenario () in
  let probe = Explorer.run ~config:Config.default scn in
  Alcotest.(check bool) "probe exhausts the space" true probe.Explorer.stats.Stats.exhausted;
  let e = probe.Explorer.stats.Stats.executions in
  Alcotest.(check bool) "probe explored several executions" true (e > 2);
  List.iter
    (fun jobs ->
      List.iter
        (fun snapshot ->
          let run max_executions =
            Explorer.run
              ~config:{ Config.default with Config.max_executions; jobs; snapshot }
              scn
          in
          let o = run e in
          Alcotest.(check bool)
            (Printf.sprintf "budget=space jobs=%d snapshot=%b: exhausted" jobs snapshot)
            true o.Explorer.stats.Stats.exhausted;
          Alcotest.(check int)
            (Printf.sprintf "budget=space jobs=%d snapshot=%b: all explored" jobs snapshot)
            e o.Explorer.stats.Stats.executions;
          let o = run (e - 1) in
          Alcotest.(check bool)
            (Printf.sprintf "budget=space-1 jobs=%d snapshot=%b: capped" jobs snapshot)
            false o.Explorer.stats.Stats.exhausted)
        [ true; false ])
    (Test_env.jobs_matrix ~default:[ 1; 2; 4 ])

(* --- clwb is a distinct flush kind ----------------------------------------- *)

let test_clwb_event_render () =
  Alcotest.(check string)
    "clwb renders as clwb" "clwb persist line 0x1000"
    (Analysis.Event.render
       (Analysis.Event.Flush
          { line_addr = 0x1000; kind = Analysis.Event.Clwb; tid = 0; label = "persist" }));
  Alcotest.(check string)
    "clflushopt still renders as clflushopt" "clflushopt persist line 0x1000"
    (Analysis.Event.render
       (Analysis.Event.Flush
          { line_addr = 0x1000; kind = Analysis.Event.Clflushopt; tid = 0; label = "persist" }))

let test_clwb_bug_trace () =
  let scn =
    Explorer.scenario ~name:"clwb-trace"
      ~pre:(fun ctx ->
        Ctx.store64 ctx ~label:"w" base 1;
        Ctx.clwb ctx ~label:"persist" base 8;
        Ctx.sfence ctx ~label:"fence" ())
      ~post:(fun ctx ->
        Ctx.check ctx ~label:"inv" (Ctx.load64 ctx ~label:"r" base = 999) "always fails")
  in
  let o = Explorer.run ~config:{ Config.default with Config.stop_at_first_bug = false } scn in
  Alcotest.(check bool) "bug found" true (Explorer.found_bug o);
  let lines = List.concat_map (fun b -> b.Bug.trace) o.Explorer.bugs in
  Alcotest.(check bool)
    "trace names the clwb instruction" true
    (List.exists (contains ~needle:"clwb persist") lines);
  Alcotest.(check bool)
    "trace does not mislabel it clflushopt" false
    (List.exists (contains ~needle:"clflushopt") lines)

(* --- parallel sections: join drains only the section's fibers -------------- *)

let test_join_drains_only_section_fibers () =
  (* Fiber A has a store sitting in its private store buffer while fiber B
     completes a nested parallel section. B's inner join must not drain A's
     buffer (there is no synchronisation edge between B's join and A), so
     B's read of A's address still sees the initial value. *)
  let observed = ref (-1) in
  let scn =
    Explorer.scenario ~name:"sibling-buffer"
      ~pre:(fun ctx ->
        Ctx.parallel ctx
          [
            (fun ctx ->
              Ctx.store64 ctx ~label:"A1" base 42;
              Ctx.store64 ctx ~label:"A2" (base + 8) 1;
              Ctx.store64 ctx ~label:"A3" (base + 16) 1);
            (fun ctx ->
              Ctx.store64 ctx ~label:"B1" (base + 24) 2;
              Ctx.parallel ctx [ (fun ctx -> Ctx.store64 ctx ~label:"C1" (base + 32) 3) ];
              observed := Ctx.load64 ctx ~label:"B-read" base);
          ])
      ~post:(fun _ -> ())
  in
  let config =
    { Config.default with Config.evict_policy = Config.Buffered; max_failures = 0 }
  in
  let o = Explorer.run ~config scn in
  Alcotest.(check bool) "no bugs" true (o.Explorer.bugs = []);
  Alcotest.(check int) "sibling store still buffered across the inner join" 0 !observed

let test_sequential_sections_sync_edges () =
  (* Many back-to-back sections: each join still makes its own fibers'
     stores visible to the parent, and dead fibers are dropped from the
     live-thread set rather than accumulating. *)
  let n = 50 in
  let scn =
    Explorer.scenario ~name:"sequential-sections"
      ~pre:(fun ctx ->
        for i = 0 to n - 1 do
          let addr = base + (8 * i) in
          Ctx.parallel ctx [ (fun ctx -> Ctx.store64 ctx ~label:"fiber" addr (i + 1)) ];
          Ctx.check ctx ~label:"join"
            (Ctx.load64 ctx ~label:"after-join" addr = i + 1)
            "fiber store visible after its join"
        done)
      ~post:(fun _ -> ())
  in
  let config =
    { Config.default with Config.evict_policy = Config.Buffered; max_failures = 0 }
  in
  let o = Explorer.run ~config scn in
  Alcotest.(check bool) "no bugs" true (o.Explorer.bugs = []);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

(* The mechanism snapshots are built on: a bounded view shares the live
   record's store queues but hides everything pushed after the capture, and a
   freeze physically truncates to the bound and accepts new stores again. *)
let test_bounded_view () =
  let e = Exec.Exec_record.create ~id:1 in
  let addr = 0x40 in
  Exec.Exec_record.push_store e addr ~value:1 ~seq:1 ~label:"a";
  Exec.Exec_record.push_store e addr ~value:2 ~seq:2 ~label:"b";
  let view = Exec.Exec_record.snapshot_view ~bound:2 e in
  Exec.Exec_record.push_store e addr ~value:3 ~seq:5 ~label:"c";
  Exec.Exec_record.push_store e 0x80 ~value:9 ~seq:6 ~label:"d";
  let last r =
    match Exec.Exec_record.last_store r addr with
    | Some entry -> entry.Exec.Store_queue.value
    | None -> -1
  in
  Alcotest.(check int) "live record sees the newest store" 3 (last e);
  Alcotest.(check int) "view still ends at the capture" 2 (last view);
  Alcotest.(check bool)
    "address first stored after the capture is invisible" false
    (Exec.Exec_record.has_stores view 0x80);
  Alcotest.(check int) "fold stops at the bound" 2
    (Exec.Exec_record.fold_stores (fun _ n -> n + 1) view addr 0);
  Alcotest.(check int) "next-seq beyond the bound is infinity" Pmem.Interval.infinity
    (Exec.Exec_record.next_store_seq_after view addr 2);
  Alcotest.(check int) "next-seq inside the bound" 2
    (Exec.Exec_record.next_store_seq_after view addr 1);
  Alcotest.check_raises "views are read-only"
    (Invalid_argument "Exec_record.push_store: snapshot views are read-only") (fun () ->
      Exec.Exec_record.push_store view addr ~value:7 ~seq:9 ~label:"x");
  let frozen = Exec.Exec_record.snapshot_freeze view in
  Exec.Exec_record.push_store frozen addr ~value:4 ~seq:7 ~label:"drain";
  Alcotest.(check int) "freeze accepts the drained store" 4 (last frozen);
  Alcotest.(check int) "the live record is unaffected by the freeze" 3 (last e);
  Alcotest.(check int) "the view is unaffected by the freeze" 2 (last view)

let () =
  Alcotest.run "snapshot"
    [
      ( "choice-keys",
        [
          Alcotest.test_case "consumed / recorded_matches" `Quick test_choice_consumed_and_matches;
          Alcotest.test_case "fast_forward" `Quick test_choice_fast_forward;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "eager litmus" `Quick test_equivalence_eager;
          Alcotest.test_case "buffered litmus" `Quick test_equivalence_buffered;
          Alcotest.test_case "multi-failure" `Quick test_equivalence_multi_failure;
          Alcotest.test_case "explicit crash" `Quick test_equivalence_explicit_crash;
          Alcotest.test_case "analysis passes" `Quick test_equivalence_analysis;
          Alcotest.test_case "PMDK case" `Quick test_equivalence_pmdk;
          Alcotest.test_case "RECIPE case" `Quick test_equivalence_recipe;
        ] );
      ( "resume",
        [ Alcotest.test_case "pre runs exactly once" `Quick test_snapshot_skips_pre ] );
      ("bounded-view", [ Alcotest.test_case "seq-bound semantics" `Quick test_bounded_view ]);
      ( "budget",
        [ Alcotest.test_case "exact budget is exhausted" `Quick test_exact_budget_not_capped ] );
      ( "clwb",
        [
          Alcotest.test_case "event render" `Quick test_clwb_event_render;
          Alcotest.test_case "bug trace kind" `Quick test_clwb_bug_trace;
        ] );
      ( "parallel-drain",
        [
          Alcotest.test_case "join scope" `Quick test_join_drains_only_section_fibers;
          Alcotest.test_case "sequential sections" `Quick test_sequential_sections_sync_edges;
        ] );
    ]
