(* The persistency-sanitizer passes: synthetic event-stream unit tests for
   each pass, engine suppression/ordering semantics, and end-to-end
   root-causing of the seeded RECIPE missing-flush bugs without exploring a
   single crash. *)
open Jaaru

let line = Pmem.Addr.cache_line_size
let base = 0x1000

(* Feed a synthetic event list to one pass and collect every finding. *)
let run_pass (module P : Analysis.Pass.S) events =
  let inst = Analysis.Pass.instantiate (module P) in
  List.concat_map inst.Analysis.Pass.feed events

let store ?(tid = 0) ?(width = 8) ?(value = 1) ~label addr =
  Analysis.Event.Store { addr; width; value; tid; label }

let load ?(tid = 0) ?(width = 8) ?(value = 0) ~label addr =
  Analysis.Event.Load { addr; width; value; tid; label }

let flush ?(tid = 0) ~label line_addr =
  Analysis.Event.Flush { line_addr; kind = Analysis.Event.Clflush; tid; label }

let sfence ?(tid = 0) ~label () =
  Analysis.Event.Fence { kind = Analysis.Event.Sfence; tid; label }

let mfence ?(tid = 0) ~label () =
  Analysis.Event.Fence { kind = Analysis.Event.Mfence; tid; label }

let rmw ?(tid = 0) ?(width = 8) ?(old_value = 0) ~new_value ~label addr =
  Analysis.Event.Rmw { addr; width; old_value; new_value; tid; label }

let tstart ?(label = "par") ~parent tid = Analysis.Event.Thread_start { tid; parent; label }
let tjoin ?(label = "par") ~parent tid = Analysis.Event.Thread_join { tid; parent; label }

(* Feed a synthetic event list to one HB-aware pass, mirroring the engine's
   order: the shared clock substrate observes each event before the pass. *)
let run_pass_hb (module P : Analysis.Pass.S_hb) events =
  let hb = Analysis.Hb.create () in
  let inst = Analysis.Pass.instantiate_hb ~hb (module P) in
  List.concat_map
    (fun ev ->
      Analysis.Hb.observe hb ev;
      inst.Analysis.Pass.feed ev)
    events

let crash = Analysis.Event.Crash { label = Some "crash"; tid = 0 }
let fin = Analysis.Event.End_execution
let rules fs = List.sort_uniq compare (List.map (fun f -> f.Analysis.Report.rule) fs)
let labels fs = List.sort_uniq compare (List.concat_map (fun f -> f.Analysis.Report.labels) fs)

(* --- missing-flush pass ---------------------------------------------------------- *)

let test_mf_clean () =
  let fs =
    run_pass
      (module Analysis.Missing_flush)
      [ store ~label:"w" base; flush ~label:"f" base; sfence ~label:"s" (); fin ]
  in
  Alcotest.(check (list string)) "no findings" [] (rules fs)

let test_mf_unflushed_at_end () =
  let fs = run_pass (module Analysis.Missing_flush) [ store ~label:"w" base; fin ] in
  Alcotest.(check (list string)) "rule" [ "unflushed-at-end" ] (rules fs);
  Alcotest.(check (list string)) "root label" [ "w" ] (labels fs)

let test_mf_unfenced_at_end () =
  let fs =
    run_pass (module Analysis.Missing_flush) [ store ~label:"w" base; flush ~label:"f" base; fin ]
  in
  Alcotest.(check (list string)) "rule" [ "unfenced-at-end" ] (rules fs)

let test_mf_unpersisted_at_commit () =
  (* [w] stays dirty while a later fence persists another line: the classic
     seeded ctor-skips-flush shape. The root-cause label is the store's. *)
  let fs =
    run_pass
      (module Analysis.Missing_flush)
      [
        store ~label:"w" base;
        sfence ~label:"epoch" ();
        store ~label:"other" (base + line);
        flush ~label:"f other" (base + line);
        sfence ~label:"commit" ();
        fin;
      ]
  in
  Alcotest.(check (list string)) "rule" [ "unpersisted-at-commit" ] (rules fs);
  Alcotest.(check (list string)) "root label" [ "w" ] (labels fs)

let test_mf_commit_obligation_discharged () =
  (* Undo-log shape: the data store crosses the log-commit fence dirty but is
     flushed + fenced at transaction commit — no finding. *)
  let fs =
    run_pass
      (module Analysis.Missing_flush)
      [
        store ~label:"data" base;
        sfence ~label:"epoch" ();
        store ~label:"log" (base + line);
        flush ~label:"f log" (base + line);
        sfence ~label:"log commit" ();
        flush ~label:"f data" base;
        sfence ~label:"tx commit" ();
        fin;
      ]
  in
  Alcotest.(check (list string)) "discharged" [] (rules fs)

let test_mf_same_epoch_exempt () =
  (* A store made in the current epoch is not flagged by the fence that ends
     it — its flush legitimately belongs to the next batch. *)
  let fs =
    run_pass
      (module Analysis.Missing_flush)
      [
        store ~label:"w" base;
        store ~label:"other" (base + line);
        flush ~label:"f other" (base + line);
        sfence ~label:"commit" ();
        flush ~label:"f w" base;
        sfence ~label:"s" ();
        fin;
      ]
  in
  Alcotest.(check (list string)) "no findings" [] (rules fs)

let test_mf_crash_resets () =
  (* A crash discards the obligation; [End_execution] after recovery is
     clean. (The crash path itself never emits End_execution.) *)
  let fs =
    run_pass
      (module Analysis.Missing_flush)
      [
        store ~label:"w" base;
        sfence ~label:"epoch" ();
        crash;
        store ~label:"rec" (base + line);
        flush ~label:"f rec" (base + line);
        sfence ~label:"s" ();
        fin;
      ]
  in
  Alcotest.(check (list string)) "clean after crash" [] (rules fs)

(* --- torn-write pass ------------------------------------------------------------- *)

let test_tw_straddle () =
  let fs =
    run_pass (module Analysis.Torn_write) [ store ~width:8 ~label:"w" (base + line - 4); fin ]
  in
  Alcotest.(check (list string)) "rule" [ "straddles-cache-line" ] (rules fs);
  Alcotest.(check bool) "high severity" true
    (List.for_all (fun f -> f.Analysis.Report.severity = Analysis.Report.High) fs)

let test_tw_cross_thread () =
  let fs =
    run_pass
      (module Analysis.Torn_write)
      [ store ~tid:0 ~label:"a" base; store ~tid:1 ~label:"b" base; fin ]
  in
  Alcotest.(check (list string)) "rule" [ "cross-thread-overlap" ] (rules fs);
  Alcotest.(check (list string)) "both labels" [ "a"; "b" ] (labels fs)

let test_tw_fence_clears_ownership () =
  (* Proper handoff: the first writer fences before the second thread
     writes — no race. *)
  let fs =
    run_pass
      (module Analysis.Torn_write)
      [
        store ~tid:0 ~label:"a" base;
        flush ~tid:0 ~label:"f" base;
        sfence ~tid:0 ~label:"s" ();
        store ~tid:1 ~label:"b" base;
        fin;
      ]
  in
  Alcotest.(check (list string)) "no findings" [] (rules fs)

let test_tw_plain_overwrite_silent () =
  (* Initialise-then-update of an unflushed byte is normal behaviour. *)
  let fs =
    run_pass
      (module Analysis.Torn_write)
      [ store ~label:"init" base; store ~label:"update" base; fin ]
  in
  Alcotest.(check (list string)) "silent" [] (rules fs)

let test_tw_unfenced_overwrite () =
  (* Overwriting bytes whose flush has not been fenced: the in-flight flush
     may persist either value. *)
  let fs =
    run_pass
      (module Analysis.Torn_write)
      [ store ~label:"old" base; flush ~label:"f" base; store ~label:"new" base; fin ]
  in
  Alcotest.(check (list string)) "rule" [ "unfenced-overwrite" ] (rules fs);
  Alcotest.(check bool) "medium severity" true
    (List.for_all (fun f -> f.Analysis.Report.severity = Analysis.Report.Medium) fs)

(* --- redundant-flush/fence pass -------------------------------------------------- *)

let test_red_clean_flush () =
  let fs =
    run_pass
      (module Analysis.Redundant)
      [ store ~label:"w" base; flush ~label:"f" base; sfence ~label:"s" (); fin ]
  in
  Alcotest.(check (list string)) "no findings" [] (rules fs)

let test_red_redundant_flush () =
  let fs =
    run_pass
      (module Analysis.Redundant)
      [ store ~label:"w" base; flush ~label:"f1" base; flush ~label:"f2" base; fin ]
  in
  Alcotest.(check (list string)) "rule" [ "redundant-flush" ] (rules fs);
  Alcotest.(check (list string)) "second flush blamed" [ "f2" ] (labels fs)

let test_red_redundant_fence () =
  let fs =
    run_pass
      (module Analysis.Redundant)
      [
        store ~label:"w" base;
        flush ~label:"f" base;
        sfence ~label:"s1" ();
        sfence ~label:"s2" ();
        fin;
      ]
  in
  Alcotest.(check (list string)) "rule" [ "redundant-fence" ] (rules fs);
  Alcotest.(check (list string)) "second fence blamed" [ "s2" ] (labels fs)

let test_red_crash_resets () =
  let fs =
    run_pass
      (module Analysis.Redundant)
      [ store ~label:"w" base; flush ~label:"f1" base; crash; flush ~label:"f2" base; fin ]
  in
  (* After the crash nothing is dirty, so the recovery-side flush of a clean
     line is still redundant — but the pre-crash dirty set must not leak. *)
  Alcotest.(check (list string)) "rule" [ "redundant-flush" ] (rules fs);
  Alcotest.(check (list string)) "only post-crash flush" [ "f2" ] (labels fs)

(* --- perf reports still flow through Ctx (the legacy surface) -------------------- *)

let test_perf_reports_via_explorer () =
  let scn =
    Explorer.scenario ~name:"redundant"
      ~pre:(fun ctx ->
        Ctx.store64 ctx ~label:"w" base 1;
        Ctx.clflush ctx ~label:"f1" base 8;
        Ctx.clflush ctx ~label:"f2" base 8;
        Ctx.sfence ctx ~label:"s1" ();
        Ctx.sfence ctx ~label:"s2" ())
      ~post:(fun _ -> ())
  in
  let o = Explorer.run ~config:{ Config.default with Config.report_perf = true } scn in
  let kinds =
    List.sort_uniq compare
      (List.map (fun r -> (r.Ctx.perf_kind, r.Ctx.perf_label)) o.Explorer.perf)
  in
  Alcotest.(check int) "two reports" 2 (List.length kinds);
  Alcotest.(check bool) "flush f2" true (List.mem (Ctx.Redundant_flush, "f2") kinds);
  Alcotest.(check bool) "fence s2" true (List.mem (Ctx.Redundant_fence, "s2") kinds)

(* --- redundant pass is thread-aware ---------------------------------------------- *)

let test_red_per_thread_fence () =
  (* A store on thread 0 must not excuse a fence on thread 1. *)
  let fs =
    run_pass (module Analysis.Redundant)
      [ store ~tid:0 ~label:"w" base; sfence ~tid:1 ~label:"s1" (); fin ]
  in
  Alcotest.(check (list string)) "rule" [ "redundant-fence" ] (rules fs);
  Alcotest.(check (list string)) "label" [ "s1" ] (labels fs)

let test_red_per_thread_flush () =
  (* Two threads each flushing a line they both dirtied are each doing
     necessary work — neither flush is redundant. *)
  let fs =
    run_pass (module Analysis.Redundant)
      [
        store ~tid:0 ~label:"w0" base;
        store ~tid:1 ~label:"w1" (base + 8);
        flush ~tid:0 ~label:"f0" base;
        flush ~tid:1 ~label:"f1" base;
        sfence ~tid:0 ~label:"s0" ();
        sfence ~tid:1 ~label:"s1" ();
        fin;
      ]
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

let test_red_redundant_mfence () =
  let fs =
    run_pass (module Analysis.Redundant)
      [ mfence ~label:"m1" (); store ~label:"w" base; mfence ~label:"m2" (); fin ]
  in
  Alcotest.(check (list string)) "rule" [ "redundant-mfence" ] (rules fs);
  Alcotest.(check (list string)) "only the empty fence" [ "m1" ] (labels fs)

let test_red_rmw_fences_exempt () =
  (* A locked RMW's intrinsic mfences are never flagged, even when nothing
     is pending — and they clear the thread's pending count. *)
  let fs =
    run_pass (module Analysis.Redundant)
      [ rmw ~new_value:None ~label:"cas" base; fin ]
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- vector clocks ---------------------------------------------------------------- *)

let test_vc_basics () =
  let open Analysis.Vector_clock in
  Alcotest.(check int) "empty reads 0" 0 (get empty 3);
  let c = tick (tick empty 1) 1 in
  Alcotest.(check int) "ticked" 2 (get c 1);
  Alcotest.(check int) "out of range reads 0" 0 (get c 5);
  let j = join c (of_list [ 3; 1 ]) in
  Alcotest.(check int) "join max (0)" 3 (get j 0);
  Alcotest.(check int) "join max (1)" 2 (get j 1);
  Alcotest.(check bool) "leq refl" true (leq j j);
  Alcotest.(check bool) "c leq join" true (leq c j);
  Alcotest.(check bool) "join not leq c" false (leq j c);
  Alcotest.(check bool) "empty leq all" true (leq empty c);
  Alcotest.(check string) "render" "[3,2]" (to_string j)

let test_vc_epoch () =
  let open Analysis.Vector_clock in
  (* An access by thread 1 at its step 2... *)
  let a = of_list [ 0; 2 ] in
  Alcotest.(check bool) "ordered" true (epoch_leq a ~tid:1 (of_list [ 5; 2 ]));
  Alcotest.(check bool) "concurrent" false (epoch_leq a ~tid:1 (of_list [ 5; 1 ]))

(* --- happens-before substrate ----------------------------------------------------- *)

let test_hb_edges () =
  let hb = Analysis.Hb.create () in
  let obs = Analysis.Hb.observe hb in
  let vc_leq = Analysis.Vector_clock.leq in
  obs (store ~tid:0 ~label:"init" base);
  let init_clock = Option.get (Analysis.Hb.location hb base) in
  obs (tstart ~parent:0 1);
  Alcotest.(check bool) "spawn edge: child sees parent's store" true
    (vc_leq init_clock (Analysis.Hb.clock hb 1));
  obs (tstart ~parent:0 2);
  obs (store ~tid:1 ~label:"w1" (base + 8));
  let w1_clock = Option.get (Analysis.Hb.location hb (base + 8)) in
  Alcotest.(check bool) "siblings unordered" false
    (vc_leq w1_clock (Analysis.Hb.clock hb 2));
  (* rf-into-RMW: a CAS reading those bytes inherits the writer's history. *)
  obs (rmw ~tid:2 ~new_value:(Some 1) ~label:"cas" (base + 8));
  Alcotest.(check bool) "acquire edge" true (vc_leq w1_clock (Analysis.Hb.clock hb 2));
  obs (tjoin ~parent:0 1);
  Alcotest.(check bool) "join edge" true (vc_leq w1_clock (Analysis.Hb.clock hb 0))

let test_hb_commit_and_reset () =
  let hb = Analysis.Hb.create () in
  let obs = Analysis.Hb.observe hb in
  let ln = Pmem.Addr.line_of base in
  obs (store ~tid:0 ~label:"w" base);
  let g = Analysis.Hb.line_gen hb ln in
  Alcotest.(check bool) "store bumps the generation" true (g > 0);
  let committed () =
    Analysis.Hb.line_committed hb ln ~gen:g ~before:(Analysis.Hb.clock hb 0)
  in
  Alcotest.(check bool) "store alone uncommitted" false (committed ());
  obs (flush ~tid:0 ~label:"f" base);
  Alcotest.(check bool) "flush alone uncommitted" false (committed ());
  obs (sfence ~tid:0 ~label:"s" ());
  Alcotest.(check bool) "flush+fence commits" true (committed ());
  Alcotest.(check bool) "commit not ordered before a stale clock" false
    (Analysis.Hb.line_committed hb ln ~gen:g ~before:Analysis.Vector_clock.empty);
  obs crash;
  Alcotest.(check int) "crash resets generations" 0 (Analysis.Hb.line_gen hb ln);
  Alcotest.(check bool) "crash resets location clocks" true
    (Analysis.Hb.location hb base = None)

let test_hb_snapshot () =
  let hb = Analysis.Hb.create ~record:true () in
  List.iter (Analysis.Hb.observe hb)
    [
      store ~tid:0 ~label:"a" base;
      tstart ~parent:0 1;
      store ~tid:1 ~label:"b" (base + 8);
      store ~tid:0 ~label:"c" (base + 16);
    ];
  Alcotest.(check int) "ids assigned" 4 (Analysis.Hb.events_seen hb);
  let hb_before a ~tid b =
    Analysis.Vector_clock.epoch_leq (Analysis.Hb.snapshot hb a) ~tid
      (Analysis.Hb.snapshot hb b)
  in
  Alcotest.(check bool) "a happens-before b (spawn edge)" true (hb_before 0 ~tid:0 2);
  Alcotest.(check bool) "b concurrent with c" false (hb_before 2 ~tid:1 3);
  (match Analysis.Hb.snapshot (Analysis.Hb.create ()) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "snapshot without ~record:true must raise")

(* --- persistency-race-hb ---------------------------------------------------------- *)

let test_race_write_write () =
  let fs =
    run_pass_hb
      (module Analysis.Race)
      [
        tstart ~parent:0 1;
        tstart ~parent:0 2;
        store ~tid:1 ~label:"w1" base;
        store ~tid:2 ~label:"w2" base;
        fin;
      ]
  in
  Alcotest.(check (list string)) "rule" [ "persistency-race-hb" ] (rules fs);
  Alcotest.(check (list string)) "both labels" [ "w1"; "w2" ] (labels fs);
  match fs with
  | [ f ] -> Alcotest.(check bool) "high severity" true (f.Analysis.Report.severity = High)
  | _ -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_race_read_write () =
  let fs =
    run_pass_hb
      (module Analysis.Race)
      [
        tstart ~parent:0 1;
        tstart ~parent:0 2;
        load ~tid:1 ~label:"r1" base;
        store ~tid:2 ~label:"w2" base;
        fin;
      ]
  in
  Alcotest.(check (list string)) "read/write race" [ "r1"; "w2" ] (labels fs)

let test_race_lock_protocol_silent () =
  (* The P-CLHT locking shape: CAS acquire, plain-store release. The second
     thread's CAS reads the unlock word and inherits the first critical
     section's history, ordering the data accesses. *)
  let lock = base + 256 in
  let fs =
    run_pass_hb
      (module Analysis.Race)
      [
        tstart ~parent:0 1;
        tstart ~parent:0 2;
        rmw ~tid:1 ~new_value:(Some 1) ~label:"lock1" lock;
        store ~tid:1 ~label:"data1" base;
        store ~tid:1 ~value:0 ~label:"unlock1" lock;
        rmw ~tid:2 ~new_value:(Some 1) ~label:"lock2" lock;
        load ~tid:2 ~label:"read2" base;
        store ~tid:2 ~label:"data2" base;
        store ~tid:2 ~value:0 ~label:"unlock2" lock;
        tjoin ~parent:0 1;
        tjoin ~parent:0 2;
        load ~tid:0 ~label:"check" base;
        fin;
      ]
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

let test_race_join_orders_parent () =
  let fs =
    run_pass_hb
      (module Analysis.Race)
      [
        tstart ~parent:0 1;
        store ~tid:1 ~label:"w1" base;
        tjoin ~parent:0 1;
        store ~tid:0 ~label:"w0" base;
        fin;
      ]
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- unordered-persist-observed --------------------------------------------------- *)

let test_rob_uncommitted_observed () =
  let fs =
    run_pass_hb
      (module Analysis.Robustness)
      [
        tstart ~parent:0 1;
        store ~tid:1 ~label:"w" base;
        tjoin ~parent:0 1;
        load ~tid:0 ~label:"r" base;
        fin;
      ]
  in
  Alcotest.(check (list string)) "rule" [ "unordered-persist-observed" ] (rules fs);
  Alcotest.(check (list string)) "store label" [ "w" ] (labels fs);
  match fs with
  | [ f ] ->
      Alcotest.(check bool) "medium severity" true (f.Analysis.Report.severity = Medium)
  | _ -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_rob_committed_silent () =
  let fs =
    run_pass_hb
      (module Analysis.Robustness)
      [
        tstart ~parent:0 1;
        store ~tid:1 ~label:"w" base;
        flush ~tid:1 ~label:"f" base;
        sfence ~tid:1 ~label:"s" ();
        tjoin ~parent:0 1;
        load ~tid:0 ~label:"r" base;
        fin;
      ]
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

let test_rob_same_thread_exempt () =
  let fs =
    run_pass_hb
      (module Analysis.Robustness)
      [ store ~tid:0 ~label:"w" base; load ~tid:0 ~label:"r" base; fin ]
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

let test_rob_concurrent_commit_still_flagged () =
  (* The line was committed, but not by an edge ordered before the load:
     the observing thread cannot rely on it. *)
  let fs =
    run_pass_hb
      (module Analysis.Robustness)
      [
        tstart ~parent:0 1;
        tstart ~parent:0 2;
        store ~tid:1 ~label:"w" base;
        flush ~tid:1 ~label:"f" base;
        sfence ~tid:1 ~label:"s" ();
        load ~tid:2 ~label:"r" base;
        fin;
      ]
  in
  Alcotest.(check (list string)) "flagged" [ "w" ] (labels fs)

(* --- HB findings are deterministic across jobs x snapshot x memo ------------------ *)

let test_hb_findings_deterministic () =
  let base_config =
    {
      Config.default with
      Config.analyze = true;
      evict_policy = Config.Buffered;
      stop_at_first_bug = false;
    }
  in
  List.iter
    (fun (name, scn, want_race) ->
      let render config =
        let o = Explorer.run ~config scn in
        String.concat "\n"
          (List.map
             (Format.asprintf "%a" Analysis.Report.pp_finding)
             o.Explorer.findings)
      in
      let reference =
        render { base_config with Config.jobs = 1; snapshot = false; memo = false }
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (name ^ " race findings as expected")
        want_race
        (contains reference "persistency-race-hb");
      List.iter
        (fun jobs ->
          List.iter
            (fun (snapshot, memo) ->
              Alcotest.(check string)
                (Printf.sprintf "%s jobs=%d snapshot=%b memo=%b" name jobs snapshot memo)
                reference
                (render { base_config with Config.jobs = jobs; snapshot; memo }))
            [ (false, false); (true, false); (false, true); (true, true) ])
        (Test_env.jobs_matrix ~default:[ 1; 4 ]))
    [
      ( "P-CLHT-small",
        Recipe.Workloads.concurrent_scenario ~ks0:[ 3 ] ~ks1:[ 11 ] ~racy:false (),
        false );
      ("P-CLHT-racy", Recipe.Workloads.concurrent_scenario ~racy:true (), true);
    ]

(* --- engine: dedup, suppression, ordering ---------------------------------------- *)

let mk_engine ?suppress () =
  Analysis.Engine.create ?suppress
    [
      Analysis.Pass.instantiate (module Analysis.Missing_flush);
      Analysis.Pass.instantiate (module Analysis.Redundant);
    ]

let test_engine_dedup_and_order () =
  let e = mk_engine () in
  List.iter (Analysis.Engine.emit e)
    [
      store ~label:"w" base;
      flush ~label:"f1" base;
      flush ~label:"f2" base;
      (* same redundant flush again: must dedup *)
      flush ~label:"f2" base;
      fin;
    ];
  let fs = Analysis.Engine.findings e in
  Alcotest.(check int) "deduplicated" 2 (List.length fs);
  (* Sorted most-severe first: the High unfenced-at-end precedes the Low
     redundant-flush. *)
  Alcotest.(check bool) "severity order" true
    ((List.hd fs).Analysis.Report.severity = Analysis.Report.High)

let test_engine_suppression () =
  let run suppress =
    let e = mk_engine ~suppress () in
    List.iter (Analysis.Engine.emit e) [ store ~label:"w" base; fin ];
    Analysis.Engine.findings e
  in
  Alcotest.(check int) "unsuppressed" 1 (List.length (run []));
  Alcotest.(check int) "suppressed" 0 (List.length (run [ "w" ]));
  Alcotest.(check int) "other label keeps it" 1 (List.length (run [ "x" ]))

let test_engine_partial_suppression () =
  let e = mk_engine ~suppress:[ "a" ] () in
  List.iter (Analysis.Engine.emit e)
    [ store ~label:"a" base; store ~label:"b" (base + 8); fin ];
  match Analysis.Engine.findings e with
  | [ f ] -> Alcotest.(check (list string)) "kept label" [ "b" ] f.Analysis.Report.labels
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* --- severity helpers ------------------------------------------------------------ *)

let test_severity_helpers () =
  Alcotest.(check bool) "high >= medium" true
    (Analysis.Report.severity_at_least ~threshold:Analysis.Report.Medium Analysis.Report.High);
  Alcotest.(check bool) "low < medium" false
    (Analysis.Report.severity_at_least ~threshold:Analysis.Report.Medium Analysis.Report.Low);
  List.iter
    (fun s ->
      Alcotest.(check bool) "name roundtrip" true
        (Analysis.Report.severity_of_name (Analysis.Report.severity_name s) = Some s))
    [ Analysis.Report.Low; Analysis.Report.Medium; Analysis.Report.High ]

(* --- lint root-causes the seeded RECIPE bugs without reaching the symptom -------- *)

let lint_roots_case id =
  let c = Recipe.Workloads.find (Recipe.Workloads.fig13_cases ()) id in
  Alcotest.(check bool) (id ^ " declares roots") true (c.Recipe.Workloads.lint_roots <> []);
  let config =
    {
      c.Recipe.Workloads.config with
      Config.analyze = true;
      stop_at_first_bug = false;
      max_executions = 1;
    }
  in
  let o = Explorer.run ~config c.Recipe.Workloads.scenario in
  (* One failure-free execution: the crash symptom is never explored... *)
  Alcotest.(check int) (id ^ " single execution") 1 o.Explorer.stats.Stats.executions;
  Alcotest.(check bool) (id ^ " no symptom reached") true (o.Explorer.bugs = []);
  (* ...yet the analysis names a guilty store. *)
  let root_caused =
    List.exists
      (fun f ->
        f.Analysis.Report.severity = Analysis.Report.High
        && f.Analysis.Report.pass = "missing-flush"
        && List.exists (fun l -> List.mem l c.Recipe.Workloads.lint_roots) f.Analysis.Report.labels)
      o.Explorer.findings
  in
  Alcotest.(check bool) (id ^ " root-caused") true root_caused

let test_lint_root_causes () =
  List.iter lint_roots_case
    [
      "CCEH-1"; "CCEH-2"; "CCEH-3"; "FAST_FAIR-1"; "FAST_FAIR-2"; "FAST_FAIR-3"; "P-CLHT-1";
      "P-CLHT-2";
    ]

let test_lint_fixed_variants_clean () =
  (* The fixed variants carry no high-severity findings under the same
     single-execution lint configuration. *)
  List.iter
    (fun (c : Recipe.Workloads.case) ->
      let config =
        {
          c.Recipe.Workloads.config with
          Config.analyze = true;
          stop_at_first_bug = false;
          max_executions = 1;
        }
      in
      let o = Explorer.run ~config c.Recipe.Workloads.scenario in
      let high =
        List.filter
          (fun f -> f.Analysis.Report.severity = Analysis.Report.High)
          o.Explorer.findings
      in
      Alcotest.(check int) (c.Recipe.Workloads.id ^ " no high findings") 0 (List.length high))
    (Recipe.Workloads.fixed_cases ())

(* --- bounded trace ring surfaces its losses -------------------------------------- *)

let test_bug_trace_dropped () =
  let scn =
    Explorer.scenario ~name:"dropped"
      ~pre:(fun ctx ->
        for i = 0 to 7 do
          Ctx.store64 ctx ~label:(Printf.sprintf "w%d" i) (base + (64 * i)) 1;
          Ctx.clflush ctx ~label:(Printf.sprintf "f%d" i) (base + (64 * i)) 8
        done)
      ~post:(fun ctx ->
        (* Enough recovery events to wrap a depth-4 ring before the oracle
           fires, whichever failure point the explorer injects first. *)
        for i = 0 to 7 do
          ignore (Ctx.load64 ctx ~label:(Printf.sprintf "r%d" i) (base + (64 * i)))
        done;
        Ctx.check ctx ~label:"oracle" (Ctx.load64 ctx ~label:"r" base = 1) "lost")
  in
  let config =
    { Config.default with Config.stop_at_first_bug = true; Config.trace_depth = 4 }
  in
  let o = Explorer.run ~config scn in
  match o.Explorer.bugs with
  | [ b ] ->
      Alcotest.(check int) "window size" 4 (List.length b.Bug.trace);
      Alcotest.(check bool) "events were dropped" true (b.Bug.dropped > 0);
      let s = Format.asprintf "%a" Bug.pp b in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "pp mentions the loss" true (contains s "earlier events dropped")
  | bs -> Alcotest.failf "expected one bug, got %d" (List.length bs)

let () =
  Alcotest.run "analysis"
    [
      ( "missing-flush",
        [
          Alcotest.test_case "clean protocol" `Quick test_mf_clean;
          Alcotest.test_case "unflushed at end" `Quick test_mf_unflushed_at_end;
          Alcotest.test_case "unfenced at end" `Quick test_mf_unfenced_at_end;
          Alcotest.test_case "unpersisted at commit" `Quick test_mf_unpersisted_at_commit;
          Alcotest.test_case "undo-log shape discharged" `Quick
            test_mf_commit_obligation_discharged;
          Alcotest.test_case "same-epoch stores exempt" `Quick test_mf_same_epoch_exempt;
          Alcotest.test_case "crash resets obligations" `Quick test_mf_crash_resets;
        ] );
      ( "torn-write",
        [
          Alcotest.test_case "straddles cache line" `Quick test_tw_straddle;
          Alcotest.test_case "cross-thread overlap" `Quick test_tw_cross_thread;
          Alcotest.test_case "fence clears ownership" `Quick test_tw_fence_clears_ownership;
          Alcotest.test_case "plain overwrite silent" `Quick test_tw_plain_overwrite_silent;
          Alcotest.test_case "unfenced overwrite" `Quick test_tw_unfenced_overwrite;
        ] );
      ( "redundant",
        [
          Alcotest.test_case "clean flush" `Quick test_red_clean_flush;
          Alcotest.test_case "redundant flush" `Quick test_red_redundant_flush;
          Alcotest.test_case "redundant fence" `Quick test_red_redundant_fence;
          Alcotest.test_case "crash resets" `Quick test_red_crash_resets;
          Alcotest.test_case "per-thread fence" `Quick test_red_per_thread_fence;
          Alcotest.test_case "per-thread flush" `Quick test_red_per_thread_flush;
          Alcotest.test_case "redundant mfence" `Quick test_red_redundant_mfence;
          Alcotest.test_case "rmw fences exempt" `Quick test_red_rmw_fences_exempt;
          Alcotest.test_case "perf reports via explorer" `Quick test_perf_reports_via_explorer;
        ] );
      ( "vector-clock",
        [
          Alcotest.test_case "basics" `Quick test_vc_basics;
          Alcotest.test_case "epoch test" `Quick test_vc_epoch;
        ] );
      ( "happens-before",
        [
          Alcotest.test_case "spawn/acquire/join edges" `Quick test_hb_edges;
          Alcotest.test_case "persist commit and crash reset" `Quick
            test_hb_commit_and_reset;
          Alcotest.test_case "snapshot oracle" `Quick test_hb_snapshot;
          Alcotest.test_case "findings deterministic" `Quick test_hb_findings_deterministic;
        ] );
      ( "race",
        [
          Alcotest.test_case "write/write race" `Quick test_race_write_write;
          Alcotest.test_case "read/write race" `Quick test_race_read_write;
          Alcotest.test_case "lock protocol silent" `Quick test_race_lock_protocol_silent;
          Alcotest.test_case "join orders parent" `Quick test_race_join_orders_parent;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "uncommitted observed" `Quick test_rob_uncommitted_observed;
          Alcotest.test_case "committed silent" `Quick test_rob_committed_silent;
          Alcotest.test_case "same thread exempt" `Quick test_rob_same_thread_exempt;
          Alcotest.test_case "concurrent commit flagged" `Quick
            test_rob_concurrent_commit_still_flagged;
        ] );
      ( "engine",
        [
          Alcotest.test_case "dedup and order" `Quick test_engine_dedup_and_order;
          Alcotest.test_case "suppression" `Quick test_engine_suppression;
          Alcotest.test_case "partial suppression" `Quick test_engine_partial_suppression;
          Alcotest.test_case "severity helpers" `Quick test_severity_helpers;
        ] );
      ( "lint",
        [
          Alcotest.test_case "root-causes seeded bugs" `Quick test_lint_root_causes;
          Alcotest.test_case "fixed variants clean" `Quick test_lint_fixed_variants_clean;
        ] );
      ( "trace",
        [ Alcotest.test_case "dropped events surfaced" `Quick test_bug_trace_dropped ] );
    ]
