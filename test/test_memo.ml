(* The crash-state memoization layer: outcomes must be byte-identical with
   the layer on or off, for every --jobs value, on bundled workloads and on
   random programs — and the harness must actually be able to tell when the
   canonical key is unsound (negative control via Memo.set_key_transform). *)
open Jaaru

let base = 0x1000

let outcome_text (o : Explorer.outcome) =
  let o = { o with Explorer.stats = Stats.comparable o.Explorer.stats } in
  Format.asprintf "%a" Explorer.pp_outcome o

let check_memo_equivalence name scenario config =
  let config = { config with Config.stop_at_first_bug = false } in
  let reference = Explorer.run ~config:{ config with Config.memo = false; jobs = 1 } scenario in
  let ref_text = outcome_text reference in
  Alcotest.(check bool)
    (name ^ ": reference explored something") true
    (reference.Explorer.stats.Stats.executions > 0);
  List.iter
    (fun jobs ->
      List.iter
        (fun memo ->
          let o = Explorer.run ~config:{ config with Config.memo = memo; jobs } scenario in
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs=%d memo=%b byte-identical" name jobs memo)
            ref_text (outcome_text o))
        [ true; false ])
    (Test_env.jobs_matrix ~default:[ 1; 2; 4 ])

(* --- bundled workloads ------------------------------------------------------ *)

let test_equivalence_pmdk () =
  let c = List.hd (Pmdk.Workloads.fig12_cases ()) in
  check_memo_equivalence c.Pmdk.Workloads.id c.Pmdk.Workloads.scenario c.Pmdk.Workloads.config

let test_equivalence_recipe () =
  let c = List.hd (Recipe.Workloads.fig13_cases ()) in
  check_memo_equivalence c.Recipe.Workloads.id c.Recipe.Workloads.scenario
    c.Recipe.Workloads.config

(* The workload class where memoization actually hits: two threads running
   the same code, whose buffered-drain cut vectors frequently persist the
   same bytes. Equivalence alone would hold vacuously on sequential programs
   (deterministic decisions map injectively to crash states), so also pin
   that this case exercises the hit path. *)
let concurrent_config =
  {
    Config.default with
    Config.evict_policy = Config.Buffered;
    max_steps = 200_000;
    stop_at_first_bug = false;
  }

let test_equivalence_concurrent_with_hits () =
  let scn = Recipe.Workloads.concurrent_scenario ~ks0:[ 3 ] ~ks1:[ 11 ] ~racy:false () in
  check_memo_equivalence "P-CLHT concurrent" scn concurrent_config;
  let o = Explorer.run ~config:{ concurrent_config with Config.memo = true } scn in
  Alcotest.(check bool)
    "memoization hits on the concurrent workload" true
    (o.Explorer.stats.Stats.memo_hits > 0)

(* --- random programs -------------------------------------------------------- *)

type op = Store of int * int | Flush of int | Flushopt of int | Fence

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun l v -> Store (l, v + 1)) (int_range 0 1) (int_range 0 3));
        (2, map (fun l -> Flush l) (int_range 0 1));
        (2, map (fun l -> Flushopt l) (int_range 0 1));
        (1, return Fence);
      ])

let pp_op = function
  | Store (l, v) -> Printf.sprintf "st l%d=%d" l v
  | Flush l -> Printf.sprintf "clflush l%d" l
  | Flushopt l -> Printf.sprintf "clflushopt l%d" l
  | Fence -> "sfence"

let op_shrink op yield =
  match op with
  | Store (l, v) ->
      if v > 1 then yield (Store (l, 1));
      if l > 0 then yield (Store (0, v))
  | Flush l -> if l > 0 then yield (Flush 0)
  | Flushopt l ->
      yield (Flush l);
      if l > 0 then yield (Flushopt 0)
  | Fence -> ()

let program_shrink = QCheck.Shrink.list ~shrink:op_shrink
let program_print ops = String.concat "; " (List.map pp_op ops)
let addr_of l = base + (64 * l)

let run_program ctx ops =
  List.iter
    (fun op ->
      match op with
      | Store (l, v) -> Ctx.store64 ctx ~label:(pp_op op) (addr_of l) v
      | Flush l -> Ctx.clflush ctx ~label:(pp_op op) (addr_of l) 8
      | Flushopt l -> Ctx.clflushopt ctx ~label:(pp_op op) (addr_of l) 8
      | Fence -> Ctx.sfence ctx ~label:"sfence" ())
    ops

let observe ctx =
  ignore (Ctx.load64 ctx ~label:"obs0" (addr_of 0));
  ignore (Ctx.load64 ctx ~label:"obs1" (addr_of 1))

let scenario_of (t0, t1) =
  Explorer.scenario ~name:"memo-rand"
    ~pre:(fun ctx ->
      match t1 with
      | [] -> run_program ctx t0
      | _ ->
          Ctx.parallel ctx
            [ (fun ctx -> run_program ctx t0); (fun ctx -> run_program ctx t1) ])
    ~post:observe

let threaded_arb =
  QCheck.make
    ~print:(fun (a, b) -> program_print a ^ " || " ^ program_print b)
    ~shrink:(QCheck.Shrink.pair program_shrink program_shrink)
    QCheck.Gen.(pair (list_size (int_range 1 5) op_gen) (list_size (int_range 0 2) op_gen))

(* Byte-identity of the full rendered outcome, memo on vs off, at the given
   worker counts — the same harness the snapshot layer is tested with. *)
let memo_equivalent ?(jobs = [ 1 ]) prog =
  let scn = scenario_of prog in
  let run ~memo ~jobs =
    outcome_text (Explorer.run ~config:{ concurrent_config with Config.memo; jobs } scn)
  in
  let reference = run ~memo:false ~jobs:1 in
  List.for_all (fun jobs -> run ~memo:true ~jobs = reference && run ~memo:false ~jobs = reference) jobs

let prop_memo_differential =
  QCheck.Test.make ~name:"memo on/off x jobs byte-identical" ~count:60 threaded_arb
    (fun prog -> memo_equivalent ~jobs:(Test_env.jobs_matrix ~default:[ 1; 4 ]) prog)

(* --- negative control ------------------------------------------------------- *)

(* Deliberately break the canonical key with a lossy transform (every crash
   state collides) and confirm the differential property catches it — and
   that shrinking drives the counterexample down to a handful of ops. A
   harness that cannot detect an unsound key is not testing anything. *)
let single_thread_arb =
  QCheck.make ~print:program_print ~shrink:program_shrink
    QCheck.Gen.(list_size (int_range 1 8) op_gen)

let test_negative_control () =
  let cell =
    QCheck.Test.make_cell ~name:"lossy memo key" ~count:200 single_thread_arb (fun ops ->
        memo_equivalent (ops, []))
  in
  Memo.set_key_transform (Some (fun _ -> "collide"));
  Fun.protect
    ~finally:(fun () -> Memo.set_key_transform None)
    (fun () ->
      match
        QCheck.TestResult.get_state
          (QCheck.Test.check_cell ~rand:(Random.State.make [| 0x5eed |]) cell)
      with
      | QCheck.TestResult.Failed { instances = c :: _ } ->
          let ops = c.QCheck.TestResult.instance in
          Alcotest.(check bool)
            (Printf.sprintf "counterexample %S shrank to <= 6 ops" (program_print ops))
            true
            (List.length ops <= 6)
      | QCheck.TestResult.Failed { instances = [] } ->
          Alcotest.fail "failed with no counterexample"
      | QCheck.TestResult.Success -> Alcotest.fail "lossy memo key went undetected"
      | QCheck.TestResult.Failed_other { msg } -> Alcotest.fail ("unexpected: " ^ msg)
      | QCheck.TestResult.Error { exn; _ } -> raise exn)

let () =
  Alcotest.run "memo"
    [
      ( "equivalence",
        [
          Alcotest.test_case "PMDK case" `Quick test_equivalence_pmdk;
          Alcotest.test_case "RECIPE case" `Quick test_equivalence_recipe;
          Alcotest.test_case "concurrent workload hits" `Quick
            test_equivalence_concurrent_with_hits;
        ] );
      ("differential", [ QCheck_alcotest.to_alcotest prop_memo_differential ]);
      ("negative-control", [ Alcotest.test_case "lossy key detected" `Quick test_negative_control ]);
    ]
