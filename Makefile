# Development entry points. `make check` is the tier-1 verify: full build,
# the whole test suite (which includes the jobs>1 determinism tests in
# test_parallel.ml), and a CLI smoke run of the parallel explorer.

.PHONY: all build test check parallel-smoke lint bench bench-smoke bench-check interrupt-smoke pbt-smoke pbt-nightly fleet-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Exercise parallel mode end-to-end on every verify: one seeded-bug case and
# one clean workload, both explored with several domains.
parallel-smoke: build
	dune exec bin/jaaru_cli.exe -- check pmdk-1 --jobs 3
	dune exec bin/jaaru_cli.exe -- perf --benchmark P-CLHT -n 3 --jobs 3

# Static persistency lint over every bundled case: fails on any
# high-severity finding on a clean case and on any seeded missing-flush bug
# the passes fail to root-cause. The example binary then asserts the
# happens-before race leg end-to-end: race found on the seeded racy
# workload, locked variant clean, seeded labels suppressible.
lint: build
	dune exec bin/jaaru_cli.exe -- lint --fail-on high
	dune exec examples/persistency_race.exe

check: build test parallel-smoke lint

bench: build
	dune exec bench/main.exe

# Seconds-long subsets of the snapshot, memo and checkpoint bench sections:
# assert that outcomes stay byte-identical with the failure-point snapshot
# layer and the crash-state memoization layer on and off, and that a chain of
# wall-budget-interrupted sessions resumed from checkpoints reports
# identically to one uninterrupted run. Also regenerates BENCH_fig14.json,
# the committed replay-throughput trajectory.
bench-smoke: build
	dune exec bench/main.exe -- fig14-json snapshot-smoke memo-smoke checkpoint-smoke

# Regression gate over the committed BENCH_fig14.json: re-measures jobs=1
# replay throughput per Fig. 14 workload and fails on an execution-count
# mismatch or a throughput drop beyond JAARU_BENCH_TOLERANCE (default 20%).
# Run this BEFORE bench-smoke if you want to compare against the committed
# baseline — bench-smoke overwrites it with fresh numbers.
bench-check: build
	dune exec bench/main.exe -- fig14-check

# Stateful-PBT determinism smoke: `jaaru pbt --seed S` (a clean sweep plus
# one seeded-bug structure, so the shrunk witness is covered) must print
# byte-identical reports for jobs {1, JAARU_TEST_JOBS} and with the
# snapshot/memo layers on and off.
pbt-smoke: build
	scripts/pbt_determinism_smoke.sh

# Long-running variant for nightly jobs: as many sequences as fit in the
# wall budget (seconds; default 10 minutes), deeper command sequences.
# Deterministic coverage is forfeited; failure soundness is not. Publishes
# the schema-versioned coverage/witness summary CI archives and trends.
pbt-nightly: build
	dune exec bin/jaaru_cli.exe -- pbt --count 1000000 --max-cmds 10 \
	  --time-budget $${JAARU_PBT_BUDGET:-600} \
	  --json-out $${JAARU_PBT_JSON:-pbt-coverage.json}

# Fleet determinism under self-injected faults: `jaaru fleet` with workers
# being killed, hung and fed torn checkpoints must still report
# byte-identically to single-process `jaaru check`, across a worker-count
# matrix, chaos on and off.
fleet-smoke: build
	scripts/fleet_chaos_smoke.sh

# Out-of-process half of the survivability story: SIGTERM a real CLI run
# mid-flight, resume it from its checkpoint, and diff the resumed report
# against an uninterrupted baseline.
interrupt-smoke: build
	scripts/interrupt_resume_smoke.sh

clean:
	dune clean
