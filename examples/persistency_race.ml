(* A seeded persistency race, linted by the happens-before passes — the
   example behind `make lint`'s race leg:

     dune exec examples/persistency_race.exe

   Two threads increment a shared persistent counter. The racy variant uses
   plain load/store with no synchronisation: the accesses are unordered under
   happens-before and the [persistency-race-hb] rule must flag them in a
   single failure-free execution (vector clocks see the race on every
   schedule, so no crash exploration is needed). The locked variant guards
   the increment with a CAS spin lock and persists what it wrote, so every
   pass — race, robustness, missing-flush, torn-write, redundant — comes
   back clean without any suppression.

   The third leg re-lints the racy variant with the seeded labels
   suppressed, the workflow for signing off a known-benign race: the race
   findings (and every other High finding rooted at those labels) must
   disappear.

   Exits non-zero if any expectation fails, so the Makefile / CI lint target
   can gate on it. *)

open Jaaru

let counter = 0x1000 (* the shared persistent cell *)
let lock = 0x1040 (* lock word, its own cache line *)

(* The labels seeded into the racy variant — the `--suppress` argument of
   the third leg. *)
let racy_labels =
  [ "racy read 0"; "racy read 1"; "racy write 0"; "racy write 1" ]

let racy_increment i ctx =
  let v = Ctx.load64 ctx ~label:(Printf.sprintf "racy read %d" i) counter in
  Ctx.store64 ctx ~label:(Printf.sprintf "racy write %d" i) counter (v + 1);
  Ctx.clwb ctx ~label:(Printf.sprintf "racy flush %d" i) counter 8;
  Ctx.sfence ctx ~label:(Printf.sprintf "racy fence %d" i) ()

let locked_increment i ctx =
  let rec acquire () =
    if not (Ctx.cas64 ctx ~label:"lock cas" lock ~expected:0 ~desired:1) then begin
      Ctx.progress ctx ~label:"spin" ();
      acquire ()
    end
  in
  acquire ();
  let v = Ctx.load64 ctx ~label:(Printf.sprintf "read %d" i) counter in
  Ctx.store64 ctx ~label:(Printf.sprintf "write %d" i) counter (v + 1);
  Ctx.clwb ctx ~label:(Printf.sprintf "flush %d" i) counter 8;
  Ctx.sfence ctx ~label:(Printf.sprintf "fence %d" i) ();
  (* Plain-store release; persist the lock word too so the lint is clean
     end-to-end (an unflushed lock word is itself a missing-flush hit). *)
  Ctx.store64 ctx ~label:"unlock" lock 0;
  Ctx.clwb ctx ~label:"unlock flush" lock 8;
  Ctx.sfence ctx ~label:"unlock fence" ()

let scenario ~racy =
  let increment = if racy then racy_increment else locked_increment in
  let pre ctx =
    Ctx.parallel ctx ~label:"incrementers" [ increment 0; increment 1 ];
    Ctx.check ctx ~label:"persistency_race.ml:sum"
      (Ctx.load64 ctx ~label:"final read" counter = 2)
      "an increment was lost"
  in
  let post ctx = ignore (Ctx.load64 ctx ~label:"recovery read" counter) in
  Explorer.scenario
    ~name:(if racy then "racy increment" else "locked increment")
    ~pre ~post

(* One failure-free execution with the analysis passes on — exactly what
   `jaaru lint` runs. *)
let lint ?(suppress = []) ~racy () =
  let config =
    {
      Config.default with
      Config.analyze = true;
      evict_policy = Config.Buffered;
      max_executions = 1;
      stop_at_first_bug = false;
      suppress;
    }
  in
  (Explorer.run ~config (scenario ~racy)).Explorer.findings

let failed = ref false

let expect what cond =
  Format.printf "  %s %s@." (if cond then "ok  " else "FAIL") what;
  if not cond then failed := true

let has_rule rule fs = List.exists (fun f -> f.Analysis.Report.rule = rule) fs

let pp_findings fs =
  List.iter (fun f -> Format.printf "    %a@." Analysis.Report.pp_finding f) fs

let () =
  Format.printf "== racy variant, analysis on ==@.";
  let fs = lint ~racy:true () in
  pp_findings fs;
  expect "persistency-race-hb fires" (has_rule "persistency-race-hb" fs);
  expect "the race is High severity"
    (List.exists
       (fun f ->
         f.Analysis.Report.rule = "persistency-race-hb"
         && f.Analysis.Report.severity = Analysis.Report.High)
       fs);

  Format.printf "== locked variant, analysis on ==@.";
  let fs = lint ~racy:false () in
  pp_findings fs;
  expect "no findings at all" (fs = []);

  Format.printf "== racy variant, seeded labels suppressed ==@.";
  let fs = lint ~suppress:racy_labels ~racy:true () in
  pp_findings fs;
  expect "race findings suppressed" (not (has_rule "persistency-race-hb" fs));
  expect "no High finding survives"
    (not
       (List.exists (fun f -> f.Analysis.Report.severity = Analysis.Report.High) fs));

  if !failed then exit 1;
  Format.printf "persistency-race lint: all expectations hold@."
