(** Failure-point snapshots: resumable captures of the persistent side of a
    context, taken the first time an execution reaches a failure point, so
    that every later replay of the same crash subtree skips re-executing the
    pre-failure program and runs only recovery.

    This is the reproduction's stand-in for Jaaru's fork-based rollback
    (paper §4): where the original forks the process at the failure point and
    resumes children from the frozen image, we capture the replay-relevant
    state — the execution stack, the sequence counter, the per-thread TSO
    buffers, the trace ring — keyed by the exact decision path that led
    there. A replay whose recorded decisions begin with a snapshot's key is
    guaranteed to reach the identical state, so the explorer fast-forwards
    the choice cursor past the key and resumes at the crash.

    Outcomes are byte-identical with snapshots on or off: the state restored
    is exactly the state a full replay would recompute, buffered-drain
    nondeterminism stays a live {!Choice.Drain} decision replayed on the
    restored threads, and the pre-failure reports a skipped replay would
    have produced are contributed by the (always-executed) first full replay
    of that decision path, then deduplicated by the explorer's merge.

    Caches are per-worker and never shared across domains. *)

type key = (Choice.kind * int * int) array
(** The decision path identifying a capture point: the triples of
    {!Choice.consumed} up to the crash, including the taken
    [Failure_point] decision itself for injected failures. *)

type t = {
  key : key;
  stack : Exec.Exec_record.t list;
      (** Master copies of the execution stack, top first; never mutated —
          {!materialize} copies them again per restore. *)
  seq : int;  (** Global store/flush sequence counter at the capture. *)
  threads : Tso.Thread_state.t list;
      (** Per-thread TSO state (store/flush buffers, timestamps); empty
          buffers under eager eviction, live ones under buffered. *)
  trace : Trace.t;  (** The trace ring as of the capture. *)
  failure_count : int;  (** Before the crash increments it. *)
  fp_count : int;
  rng : int;  (** Schedule-fuzzing PRNG state. *)
  last : string;
  crash_label : string option;
      (** The flush label for injected failures, [None] for {!Ctx.crash}. *)
}

val failure_key : Choice.t -> key
(** The key of the failure point currently being considered: the consumed
    decisions plus the pending take-the-crash [Failure_point] cell (which
    the caller has not consumed yet — capture happens before the choose). *)

val crash_key : Choice.t -> key
(** The key of an unconditional {!Ctx.crash} site: exactly the consumed
    decisions ({!Ctx.crash} consumes no cell of its own). *)

val capture :
  key:key ->
  stack:Exec.Exec_stack.t ->
  seq:int ->
  threads:Tso.Thread_state.t list ->
  trace:Trace.t ->
  failure_count:int ->
  fp_count:int ->
  rng:int ->
  last:string ->
  crash_label:string option ->
  t
(** Deep-copies the live state into an immutable master snapshot. The top
    execution record is fully cloned (the capturing replay keeps writing
    into the original), buried records share their frozen store queues. *)

val materialize : deep_top:bool -> t -> Exec.Exec_record.t list * Tso.Thread_state.t list
(** Fresh mutable copies of the stack records and thread states for one
    restore — the master stays pristine for the next hit. [deep_top] clones
    the top record's store queues too; required under buffered eviction
    (the drain at the restored crash pushes into them), skippable under
    eager (the buffers are empty, so the restored top only ever sees
    interval refinement, which works on the always-cloned lines). *)

(** {1 Per-worker cache} *)

type cache

val create_cache : unit -> cache

val mem : cache -> key -> bool
(** Whether a snapshot with exactly this key is already cached — checked
    before paying for a copy at an already-captured failure point. *)

val store : cache -> t -> unit
(** Inserts, pruning entries the depth-first search has lexicographically
    passed and evicting the shallowest entries over the size cap. Eviction
    only ever costs wall time: a missing snapshot is re-captured by the next
    full replay of its path. *)

val find : cache -> Choice.t -> t option
(** The deepest cached snapshot whose key is a prefix of the upcoming
    replay's recorded decisions (call between {!Choice.begin_replay} and the
    replay). [None] means this replay must execute from the start — which is
    exactly what (re)captures snapshots for its subtree. *)

val clear_cache : cache -> unit
(** Drops every cached snapshot (memory-pressure shedding — see
    [Config.mem_budget]). Sound for the same reason eviction is: a dropped
    snapshot is re-captured by the next full replay of its path. *)
