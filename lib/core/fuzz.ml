type result = {
  runs : int;
  bugs : Bug.t list;
  buggy_seeds : (int * string list) list;
  total_executions : int;
}

let run ?(config = Config.default) ~seeds scn =
  (* Deduplicate with the explorer's discipline — smallest record per
     {!Bug.report_key}, result sorted — so the aggregate is a function of the
     seed *set*: permuting the seed list (or exploring each seed with a
     different [jobs]) cannot change [bugs] or [buggy_seeds]. A first-seen
     scheme would keep whichever seed happened to run first. *)
  let bug_tbl = Hashtbl.create 16 in
  let keep_min key b =
    match Hashtbl.find_opt bug_tbl key with
    | Some b' when compare b' b <= 0 -> ()
    | Some _ | None -> Hashtbl.replace bug_tbl key b
  in
  let buggy_seeds = ref [] in
  let total = ref 0 in
  List.iter
    (fun seed ->
      let config = { config with Config.schedule_seed = Some seed } in
      let o = Explorer.run ~config scn in
      total := !total + o.Explorer.stats.Stats.executions;
      (match o.Explorer.bugs with
      | [] -> ()
      | bs ->
          (* Every distinct symptom the seed surfaced, not just the first:
             a seed whose schedule exposes two different manifestations
             records both. Sorted and deduplicated, so the entry is still a
             function of the seed's outcome alone. *)
          let symptoms = List.sort_uniq compare (List.map Bug.symptom bs) in
          buggy_seeds := (seed, symptoms) :: !buggy_seeds);
      List.iter (fun b -> keep_min (Bug.report_key b) b) o.Explorer.bugs)
    seeds;
  {
    runs = List.length seeds;
    bugs = List.sort compare (Hashtbl.fold (fun _ b acc -> b :: acc) bug_tbl []);
    buggy_seeds = List.sort compare !buggy_seeds;
    total_executions = !total;
  }

let found_bug r = r.bugs <> []

let pp ppf r =
  Format.fprintf ppf "@[<v>%d schedules fuzzed, %d executions total@," r.runs r.total_executions;
  if r.bugs = [] then Format.fprintf ppf "no bugs found@]"
  else begin
    Format.fprintf ppf "%d bug(s) on %d seed(s):" (List.length r.bugs)
      (List.length r.buggy_seeds);
    List.iter
      (fun (seed, symptoms) ->
        Format.fprintf ppf "@,  seed %d: %s" seed (String.concat "; " symptoms))
      r.buggy_seeds;
    Format.fprintf ppf "@]"
  end
