(* The ring is a single flat int array of [depth] packed cells (see
   {!Analysis.Arena}): adding an event is a few int writes, and the
   snapshot layer copies / restores the whole ring with [Array.blit]
   instead of walking boxed events. Labels are interned in a per-ring
   table that [copy] shares — rings only ever move within one worker, and
   the table is append-only, so a cell's label id stays valid in every
   copy. *)

module Arena = Analysis.Arena

type t = {
  labels : Arena.labels;
  cells : int array;
  depth : int;
  mutable next : int;  (* slot index of the next write, in [0, depth) *)
  mutable count : int;
  mutable dropped : int;
}

let create ?labels ~depth () =
  let depth = max 0 depth in
  {
    labels = (match labels with Some l -> l | None -> Arena.labels ());
    cells = Array.make (depth * Arena.cell_width) 0;
    depth;
    next = 0;
    count = 0;
    dropped = 0;
  }

let enabled t = t.depth > 0
let labels t = t.labels
let depth t = t.depth

(* Claims the next cell and returns its offset, or -1 when disabled. *)
let claim t =
  if t.depth = 0 then -1
  else begin
    if t.count = t.depth then t.dropped <- t.dropped + 1;
    let off = t.next * Arena.cell_width in
    (* next < depth always, so wrap-around is a compare, not a div. *)
    let next = t.next + 1 in
    t.next <- (if next = t.depth then 0 else next);
    if t.count < t.depth then t.count <- t.count + 1;
    off
  end

let add t ev =
  let off = claim t in
  if off >= 0 then Arena.encode t.labels t.cells off ev

let add_store t ~addr ~width ~value ~tid ~label =
  let off = claim t in
  if off >= 0 then Arena.encode_store t.labels t.cells off ~addr ~width ~value ~tid ~label

let add_load t ~addr ~width ~value ~tid ~label =
  let off = claim t in
  if off >= 0 then Arena.encode_load t.labels t.cells off ~addr ~width ~value ~tid ~label

let add_rmw t ~addr ~width ~old_value ~new_value ~tid ~label =
  let off = claim t in
  if off >= 0 then
    Arena.encode_rmw t.labels t.cells off ~addr ~width ~old_value ~new_value ~tid ~label

let add_flush t ~line_addr ~kind ~tid ~label =
  let off = claim t in
  if off >= 0 then Arena.encode_flush t.labels t.cells off ~line_addr ~kind ~tid ~label

let add_fence t ~kind ~tid ~label =
  let off = claim t in
  if off >= 0 then Arena.encode_fence t.labels t.cells off ~kind ~tid ~label

let copy t =
  {
    labels = t.labels;
    cells = Array.copy t.cells;
    depth = t.depth;
    next = t.next;
    count = t.count;
    dropped = t.dropped;
  }

let restore t ~from =
  if t.depth <> from.depth then invalid_arg "Trace.restore: rings have different depths";
  if t.labels != from.labels then invalid_arg "Trace.restore: rings from different workers";
  Array.blit from.cells 0 t.cells 0 (Array.length from.cells);
  t.next <- from.next;
  t.count <- from.count;
  t.dropped <- from.dropped

let clear t =
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

let dropped t = t.dropped

(* Oldest-first iteration over the packed cells. *)
let iter_offsets t f =
  if t.depth > 0 then begin
    let start = (t.next - t.count + t.depth) mod t.depth in
    for i = 0 to t.count - 1 do
      f (((start + i) mod t.depth) * Arena.cell_width)
    done
  end

let events t =
  let acc = ref [] in
  iter_offsets t (fun off -> acc := Arena.decode t.labels t.cells off :: !acc);
  List.rev !acc

let serialize t sink =
  Pmem.Wire.int sink t.count;
  iter_offsets t (fun off -> Arena.serialize t.labels t.cells off sink)
