type t = {
  slots : Analysis.Event.t array;
  mutable next : int;
  mutable count : int;
  mutable dropped : int;
}

let create ~depth =
  {
    slots = Array.make (max 0 depth) Analysis.Event.End_execution;
    next = 0;
    count = 0;
    dropped = 0;
  }

let enabled t = Array.length t.slots > 0

let add t ev =
  let depth = Array.length t.slots in
  if depth > 0 then begin
    if t.count = depth then t.dropped <- t.dropped + 1;
    t.slots.(t.next) <- ev;
    t.next <- (t.next + 1) mod depth;
    if t.count < depth then t.count <- t.count + 1
  end

let copy t = { slots = Array.copy t.slots; next = t.next; count = t.count; dropped = t.dropped }

let restore t ~from =
  if Array.length t.slots <> Array.length from.slots then
    invalid_arg "Trace.restore: rings have different depths";
  Array.blit from.slots 0 t.slots 0 (Array.length from.slots);
  t.next <- from.next;
  t.count <- from.count;
  t.dropped <- from.dropped

let clear t =
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

let dropped t = t.dropped

let events t =
  let depth = Array.length t.slots in
  if depth = 0 then []
  else begin
    let start = (t.next - t.count + depth) mod depth in
    List.init t.count (fun i -> t.slots.((start + i) mod depth))
  end
