(** The exploration watchdog: one background POSIX thread sampling wall
    clock, the CLI interrupt flag and the GC heap, communicating with worker
    domains exclusively through atomics.

    Responsibilities (each optional, enabled by its knob):

    - {b Run budget} ([wall_deadline], absolute): past it, invoke [on_stop
      Wall_budget] — the explorer's cooperative-stop trigger.
    - {b Checkpoint tick} ([tick_deadline], absolute): past it, invoke
      [on_stop Tick]; the explorer stops the round, checkpoints, and starts
      the next round with a fresh monitor.
    - {b Interrupt} ([interrupt] flag, set by SIGINT/SIGTERM handlers or
      tests): invoke [on_stop Interrupt]. Workers also poll the flag
      directly between replays, so interruption works even when no knob is
      set and {!start} spawns no thread at all.
    - {b Per-execution deadline} ([step_deadline], relative): a worker whose
      current execution has been running longer gets its {!cancel_flag} set;
      the execution's next [Ctx] operation turns that into a
      [Bug.Execution_timeout]. This duty continues even after a stop fired —
      workers still finish their current replays.
    - {b Memory budget} ([mem_budget], bytes, sampled via [Gc.quick_stat]):
      over budget, every worker's shed flag is set (see {!take_shed}); the
      trip disarms until the heap falls below 90% of the budget.

    [on_stop] is invoked at most once per monitor, from the monitor thread,
    with the {e first} reason observed; it must be async-safe-ish (set
    atomics, close a frontier — no blocking). *)

type reason = Interrupt | Wall_budget | Tick

type t

val create :
  workers:int ->
  interrupt:bool Atomic.t ->
  ?wall_deadline:float ->
  ?tick_deadline:float ->
  ?step_deadline:float ->
  ?mem_budget:int ->
  on_stop:(reason -> unit) ->
  unit ->
  t
(** Deadlines are absolute [Unix.gettimeofday] instants except
    [step_deadline], which is seconds relative to each execution's
    {!exec_started}. Raises [Invalid_argument] on [workers <= 0]. *)

val start : t -> unit
(** Spawns the watchdog thread (idempotent). *)

val poll : t -> now:float -> unit
(** One synchronous sample of every duty (interrupt flag, deadlines, per-
    execution cancellation, memory budget) exactly as the watchdog thread
    performs it, against the given clock instant. The thread calls this
    internally; tests call it directly to drive deadline edge cases
    deterministically, without sleeping — [on_stop] still fires at most once
    per monitor, whoever polls. *)

val shutdown : t -> unit
(** Stops and joins the watchdog thread (idempotent; safe if never
    started). Call from [Fun.protect] so a raising exploration cannot leak
    the thread. *)

val exec_started : t -> int -> unit
(** Worker [i] is about to run one execution: stamps the start time and
    clears any stale cancel flag from the previous execution. *)

val exec_finished : t -> int -> unit
(** Worker [i] finished its execution; the deadline no longer applies. *)

val cancel_flag : t -> int -> bool Atomic.t
(** Worker [i]'s cancellation cell — pass it to [Ctx.create ~cancel]. *)

val take_shed : t -> int -> bool
(** Consumes worker [i]'s shed request: [true] at most once per memory-budget
    trip, upon which the worker drops its memo/snapshot caches. *)
