(* On-disk checkpoints of a partially explored choice tree. See
   checkpoint.mli for the format and the fingerprint rationale. *)

module Wire = Pmem.Wire

exception Rejected of string

type t = {
  fingerprint : string;
  frontier : string list;
  bugs : Bug.t list;
  multi_rf : Ctx.multi_rf list;
  perf : Ctx.perf_report list;
  findings : Analysis.Report.finding list;
  stats : Stats.t;
}

(* --- payload codecs -------------------------------------------------------

   The payload is the same hand-rolled structural encoding the memo keys use
   (Pmem.Wire) rather than a [Marshal] image: the format is explicit per
   field, so it neither breaks silently when a record changes shape (the
   codec stops compiling instead) nor accepts a hostile [Marshal] blob that
   happens to pass the CRC. Every writer below has a matching reader; a
   mismatch surfaces as [Wire.Corrupt] and is mapped to {!Rejected}. *)

let wr_kind b = function
  | Bug.Illegal_access { addr; width; op } ->
      Wire.int b 0;
      Wire.int b addr;
      Wire.int b width;
      Wire.string b op
  | Bug.Assertion_failure msg ->
      Wire.int b 1;
      Wire.string b msg
  | Bug.Infinite_loop { steps } ->
      Wire.int b 2;
      Wire.int b steps
  | Bug.Program_exception msg ->
      Wire.int b 3;
      Wire.string b msg
  | Bug.Step_limit { resource } ->
      Wire.int b 4;
      Wire.string b resource
  | Bug.Execution_timeout { seconds } ->
      Wire.int b 5;
      Wire.float b seconds

let rd_kind s =
  match Wire.rd_int s with
  | 0 ->
      let addr = Wire.rd_int s in
      let width = Wire.rd_int s in
      let op = Wire.rd_string s in
      Bug.Illegal_access { addr; width; op }
  | 1 -> Bug.Assertion_failure (Wire.rd_string s)
  | 2 -> Bug.Infinite_loop { steps = Wire.rd_int s }
  | 3 -> Bug.Program_exception (Wire.rd_string s)
  | 4 -> Bug.Step_limit { resource = Wire.rd_string s }
  | 5 -> Bug.Execution_timeout { seconds = Wire.rd_float s }
  | n -> raise (Wire.Corrupt (Printf.sprintf "unknown bug kind tag %d" n))

let wr_bug b (x : Bug.t) =
  wr_kind b x.Bug.kind;
  Wire.string b x.Bug.location;
  Wire.int b x.Bug.exec_depth;
  Wire.list Wire.string b x.Bug.trace;
  Wire.int b x.Bug.dropped

let rd_bug s =
  let kind = rd_kind s in
  let location = Wire.rd_string s in
  let exec_depth = Wire.rd_int s in
  let trace = Wire.rd_list Wire.rd_string s in
  let dropped = Wire.rd_int s in
  { Bug.kind; location; exec_depth; trace; dropped }

let wr_candidate b (label, value) =
  Wire.string b label;
  Wire.int b value

let rd_candidate s =
  let label = Wire.rd_string s in
  let value = Wire.rd_int s in
  (label, value)

let wr_multi_rf b (x : Ctx.multi_rf) =
  Wire.string b x.Ctx.load_label;
  Wire.int b x.Ctx.load_addr;
  Wire.list wr_candidate b x.Ctx.candidates

let rd_multi_rf s =
  let load_label = Wire.rd_string s in
  let load_addr = Wire.rd_int s in
  let candidates = Wire.rd_list rd_candidate s in
  { Ctx.load_label; load_addr; candidates }

let wr_perf b (x : Ctx.perf_report) =
  Wire.int b (match x.Ctx.perf_kind with Ctx.Redundant_flush -> 0 | Ctx.Redundant_fence -> 1);
  Wire.string b x.Ctx.perf_label

let rd_perf s =
  let perf_kind =
    match Wire.rd_int s with
    | 0 -> Ctx.Redundant_flush
    | 1 -> Ctx.Redundant_fence
    | n -> raise (Wire.Corrupt (Printf.sprintf "unknown perf kind tag %d" n))
  in
  let perf_label = Wire.rd_string s in
  { Ctx.perf_kind; perf_label }

let wr_severity b (x : Analysis.Report.severity) =
  Wire.int b
    (match x with Analysis.Report.Low -> 0 | Analysis.Report.Medium -> 1 | Analysis.Report.High -> 2)

let rd_severity s =
  match Wire.rd_int s with
  | 0 -> Analysis.Report.Low
  | 1 -> Analysis.Report.Medium
  | 2 -> Analysis.Report.High
  | n -> raise (Wire.Corrupt (Printf.sprintf "unknown severity tag %d" n))

let wr_finding b (x : Analysis.Report.finding) =
  wr_severity b x.Analysis.Report.severity;
  Wire.string b x.Analysis.Report.pass;
  Wire.string b x.Analysis.Report.rule;
  Wire.list Wire.string b x.Analysis.Report.labels;
  Wire.option Wire.int b x.Analysis.Report.line;
  Wire.string b x.Analysis.Report.detail

let rd_finding s =
  let severity = rd_severity s in
  let pass = Wire.rd_string s in
  let rule = Wire.rd_string s in
  let labels = Wire.rd_list Wire.rd_string s in
  let line = Wire.rd_option Wire.rd_int s in
  let detail = Wire.rd_string s in
  { Analysis.Report.severity; pass; rule; labels; line; detail }

let wr_stats b (x : Stats.t) =
  Wire.int b x.Stats.executions;
  Wire.int b x.Stats.failure_points;
  Wire.int b x.Stats.rf_decisions;
  Wire.int b x.Stats.multi_rf_loads;
  Wire.int b x.Stats.stores;
  Wire.int b x.Stats.flushes;
  Wire.int b x.Stats.findings;
  Wire.int b x.Stats.memo_hits;
  Wire.int b x.Stats.memo_misses;
  Wire.int b x.Stats.memo_saved;
  Wire.int b x.Stats.snapshot_hits;
  Wire.int b x.Stats.snapshot_misses;
  Wire.int b x.Stats.sheds;
  Wire.float b x.Stats.wall_time;
  Wire.bool b x.Stats.exhausted;
  Wire.bool b x.Stats.interrupted

let rd_stats s =
  let executions = Wire.rd_int s in
  let failure_points = Wire.rd_int s in
  let rf_decisions = Wire.rd_int s in
  let multi_rf_loads = Wire.rd_int s in
  let stores = Wire.rd_int s in
  let flushes = Wire.rd_int s in
  let findings = Wire.rd_int s in
  let memo_hits = Wire.rd_int s in
  let memo_misses = Wire.rd_int s in
  let memo_saved = Wire.rd_int s in
  let snapshot_hits = Wire.rd_int s in
  let snapshot_misses = Wire.rd_int s in
  let sheds = Wire.rd_int s in
  let wall_time = Wire.rd_float s in
  let exhausted = Wire.rd_bool s in
  let interrupted = Wire.rd_bool s in
  {
    Stats.executions;
    failure_points;
    rf_decisions;
    multi_rf_loads;
    stores;
    flushes;
    findings;
    memo_hits;
    memo_misses;
    memo_saved;
    snapshot_hits;
    snapshot_misses;
    sheds;
    wall_time;
    exhausted;
    interrupted;
  }

let encode t =
  let b = Wire.sink () in
  Wire.string b t.fingerprint;
  Wire.list Wire.string b t.frontier;
  Wire.list wr_bug b t.bugs;
  Wire.list wr_multi_rf b t.multi_rf;
  Wire.list wr_perf b t.perf;
  Wire.list wr_finding b t.findings;
  wr_stats b t.stats;
  Wire.contents b

let decode payload =
  let s = Wire.src payload in
  let fingerprint = Wire.rd_string s in
  let frontier = Wire.rd_list Wire.rd_string s in
  let bugs = Wire.rd_list rd_bug s in
  let multi_rf = Wire.rd_list rd_multi_rf s in
  let perf = Wire.rd_list rd_perf s in
  let findings = Wire.rd_list rd_finding s in
  let stats = rd_stats s in
  Wire.expect_end s;
  { fingerprint; frontier; bugs; multi_rf; perf; findings; stats }

(* Only the fields that shape the choice tree and the reports participate:
   everything a resumed run may legitimately change — [jobs], [snapshot],
   [memo], the budgets, [checkpoint_every] — is excluded, because outcomes
   are identical across those settings (the acceptance property resumption
   relies on). [step_deadline] IS included: its timeouts surface as bugs, so
   resuming under a different deadline would merge incomparable report
   sets. *)
let fingerprint ~workload (c : Config.t) =
  let b = Wire.sink ~initial:256 () in
  Wire.string b workload;
  Wire.int b c.max_failures;
  Wire.int b (match c.evict_policy with Config.Eager -> 0 | Config.Buffered -> 1);
  Wire.int b c.max_steps;
  Wire.int b c.max_executions;
  Wire.bool b c.stop_at_first_bug;
  Wire.bool b c.report_multi_rf;
  Wire.bool b c.report_perf;
  Wire.option Wire.int b c.schedule_seed;
  Wire.int b c.region_base;
  Wire.int b c.region_size;
  Wire.int b c.trace_depth;
  Wire.bool b c.analyze;
  Wire.bool b c.analyze_hb;
  Wire.list Wire.string b c.suppress;
  Wire.option Wire.float b c.step_deadline;
  Printf.sprintf "%08x" (Wire.crc b)

let magic = "jaaru-checkpoint-v2"

let make ~fingerprint ~frontier ~bugs ~multi_rf ~perf ~findings ~stats =
  { fingerprint; frontier; bugs; multi_rf; perf; findings; stats }

let frontier_prefixes t =
  List.map
    (fun s ->
      match Choice.decode_prefix s with
      | Some p -> p
      | None -> raise (Rejected (Printf.sprintf "corrupt frontier prefix %S" s)))
    t.frontier

(* Test hook: called between header and payload writes, so tests can inject
   a mid-save failure (full disk, kill) and assert the cleanup behavior. *)
let write_fault : (unit -> unit) option ref = ref None
let set_write_fault f = write_fault := f

(* Atomic save: write to a sibling temp file, fsync-less rename. A crash
   mid-checkpoint leaves the previous checkpoint intact; a crash between
   rename and the next one only loses progress, never corrupts. A save that
   fails before the rename removes its temp file — long-running sessions
   checkpoint periodically and must not litter the directory with stale
   [.tmp] files on, say, a full disk. *)
let save t path =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let payload = encode t in
        output_string oc magic;
        output_char oc '\n';
        Printf.fprintf oc "%08x\n" (Pmem.Crc32.digest_string payload);
        (match !write_fault with None -> () | Some f -> f ());
        output_string oc payload);
    Sys.rename tmp path
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    (try Sys.remove tmp with Sys_error _ -> ());
    Printexc.raise_with_backtrace e bt

(* The exact byte image [save] writes — header (magic line, CRC line) plus
   the Wire payload. Exposed so fleet workers can ship their outcome
   checkpoints over a pipe instead of through the filesystem; the integrity
   checks of [of_string] are the same ones [load] applies to a file. *)
let to_string t =
  let payload = encode t in
  Printf.sprintf "%s\n%08x\n%s" magic (Pmem.Crc32.digest_string payload) payload

let of_string s =
  let line_end from =
    match String.index_from_opt s from '\n' with
    | Some i -> i
    | None -> raise (Rejected "truncated checkpoint")
  in
  let m_end = line_end 0 in
  if String.sub s 0 m_end <> magic then raise (Rejected "not a jaaru checkpoint (bad magic)");
  let c_end = line_end (m_end + 1) in
  let crc = String.sub s (m_end + 1) (c_end - m_end - 1) in
  let payload = String.sub s (c_end + 1) (String.length s - c_end - 1) in
  if Printf.sprintf "%08x" (Pmem.Crc32.digest_string payload) <> crc then
    raise (Rejected "checkpoint payload fails its checksum");
  let t =
    try decode payload
    with Wire.Corrupt msg ->
      raise (Rejected (Printf.sprintf "checkpoint payload fails to deserialize: %s" msg))
  in
  (* Fail early on undecodable prefixes rather than mid-resume. *)
  ignore (frontier_prefixes t);
  t

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Rejected (Printf.sprintf "cannot open checkpoint: %s" msg))
  in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try really_input_string ic (in_channel_length ic)
        with End_of_file -> raise (Rejected "truncated checkpoint"))
  in
  of_string contents

let validate t ~workload ~config =
  let expected = fingerprint ~workload config in
  if t.fingerprint <> expected then
    raise
      (Rejected
         (Printf.sprintf
            "checkpoint fingerprint %s does not match this run's %s — different workload or \
             configuration (the tree shapes would not line up); re-run without --resume or \
             restore the original flags"
            t.fingerprint expected))

let completed t = t.frontier = []
