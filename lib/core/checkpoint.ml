(* On-disk checkpoints of a partially explored choice tree. See
   checkpoint.mli for the format and the fingerprint rationale. *)

exception Rejected of string

type t = {
  fingerprint : string;
  frontier : string list;
  bugs : Bug.t list;
  multi_rf : Ctx.multi_rf list;
  perf : Ctx.perf_report list;
  findings : Analysis.Report.finding list;
  stats : Stats.t;
}

(* Only the fields that shape the choice tree and the reports participate:
   everything a resumed run may legitimately change — [jobs], [snapshot],
   [memo], the budgets, [checkpoint_every] — is excluded, because outcomes
   are identical across those settings (the acceptance property resumption
   relies on). [step_deadline] IS included: its timeouts surface as bugs, so
   resuming under a different deadline would merge incomparable report
   sets. *)
let fingerprint ~workload (c : Config.t) =
  let evict = match c.evict_policy with Config.Eager -> 0 | Config.Buffered -> 1 in
  let image =
    Marshal.to_string
      ( workload,
        c.max_failures,
        evict,
        c.max_steps,
        c.max_executions,
        c.stop_at_first_bug,
        c.report_multi_rf,
        c.report_perf,
        c.schedule_seed,
        c.region_base,
        c.region_size,
        c.trace_depth,
        c.analyze,
        c.analyze_hb,
        c.suppress,
        c.step_deadline )
      [ Marshal.No_sharing ]
  in
  Printf.sprintf "%08x" (Pmem.Crc32.digest_string image)

let magic = "jaaru-checkpoint-v1"

let make ~fingerprint ~frontier ~bugs ~multi_rf ~perf ~findings ~stats =
  { fingerprint; frontier; bugs; multi_rf; perf; findings; stats }

let frontier_prefixes t =
  List.map
    (fun s ->
      match Choice.decode_prefix s with
      | Some p -> p
      | None -> raise (Rejected (Printf.sprintf "corrupt frontier prefix %S" s)))
    t.frontier

(* Atomic save: write to a sibling temp file, fsync-less rename. A crash
   mid-checkpoint leaves the previous checkpoint intact; a crash between
   rename and the next one only loses progress, never corrupts. *)
let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let payload = Marshal.to_string t [ Marshal.No_sharing ] in
      output_string oc magic;
      output_char oc '\n';
      Printf.fprintf oc "%08x\n" (Pmem.Crc32.digest_string payload);
      output_string oc payload);
  Sys.rename tmp path

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Rejected (Printf.sprintf "cannot open checkpoint: %s" msg))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line () = try input_line ic with End_of_file -> raise (Rejected "truncated checkpoint") in
      if line () <> magic then raise (Rejected "not a jaaru checkpoint (bad magic)");
      let crc = line () in
      let payload =
        let len = in_channel_length ic - pos_in ic in
        really_input_string ic len
      in
      if Printf.sprintf "%08x" (Pmem.Crc32.digest_string payload) <> crc then
        raise (Rejected "checkpoint payload fails its checksum");
      let t : t =
        try Marshal.from_string payload 0
        with _ -> raise (Rejected "checkpoint payload fails to deserialize")
      in
      (* Fail early on undecodable prefixes rather than mid-resume. *)
      ignore (frontier_prefixes t);
      t)

let validate t ~workload ~config =
  let expected = fingerprint ~workload config in
  if t.fingerprint <> expected then
    raise
      (Rejected
         (Printf.sprintf
            "checkpoint fingerprint %s does not match this run's %s — different workload or \
             configuration (the tree shapes would not line up); re-run without --resume or \
             restore the original flags"
            t.fingerprint expected))

let completed t = t.frontier = []
