(** Schedule fuzzing for concurrency bugs.

    Jaaru does not exhaustively explore thread interleavings; the paper's
    Discussion proposes using its control over the schedule to {e fuzz} for
    concurrency bugs instead. This driver runs the full crash-consistency
    exploration once per seed, each under a different deterministic
    schedule, and aggregates the findings. *)

type result = {
  runs : int;  (** explorations performed (one per seed) *)
  bugs : Bug.t list;
      (** deduplicated across seeds with the explorer's discipline (smallest
          record per {!Bug.report_key}, sorted), so the list is independent
          of the order seeds were given in and of each seed's [jobs] *)
  buggy_seeds : (int * string list) list;
      (** each seed that found a bug, with {e all} its distinct symptoms
          (sorted, deduplicated); entries sorted by seed *)
  total_executions : int;
}

val run : ?config:Config.t -> seeds:int list -> Explorer.scenario -> result
(** [run ~seeds scn] explores [scn] once per seed. [config]'s
    [schedule_seed] is overridden by each seed in turn; all other settings
    apply unchanged. Stops early only within a seed (per
    [stop_at_first_bug]); all seeds always run. *)

val found_bug : result -> bool
val pp : Format.formatter -> result -> unit
