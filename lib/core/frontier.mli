(** A shared work queue of choice-tree subtree tasks for domain-parallel
    exploration.

    Workers {!pop} tasks; a worker that is mid-search donates unexplored
    sibling subtrees (via {!Choice.split}) whenever {!needs_work} reports an
    idle peer — cheap cooperative work stealing without per-deque
    synchronisation on the hot path. Termination is detected globally: when
    every worker is blocked in {!pop} on an empty queue, no task can ever be
    produced again and all poppers receive [None]. *)

type 'a t

val create : workers:int -> unit -> 'a t
(** [workers] is the exact number of threads that will call {!pop};
    termination detection depends on it. Raises [Invalid_argument] on
    [workers <= 0]. *)

val push : 'a t -> 'a -> unit
(** Enqueue a task and wake one idle worker. Still enqueues after {!close}
    (though no {!pop} will ever deliver it): a worker may donate a subtree
    in the window between a stop request and noticing it, and the task must
    survive for {!drain_remaining} to checkpoint. *)

val pop : 'a t -> 'a option
(** Blocks until a task is available ([Some task]) or no task can ever
    arrive — the queue is empty with every worker idle, or the frontier was
    closed ([None]). After a [None], every later [pop] returns [None]. *)

val close : 'a t -> unit
(** Early stop (first bug found, execution budget exhausted): wakes every
    blocked worker and makes all subsequent {!pop}s return [None]. *)

val closed : 'a t -> bool

val needs_work : 'a t -> bool
(** Whether at least one worker is currently blocked in {!pop} — the hint
    that busy workers should donate a subtree. Lock-free; may be stale by
    the time the donation lands, which only costs an extra queued task. *)

val drain_remaining : 'a t -> 'a list
(** Removes and returns every still-queued task, in queue order — the
    undelivered part of the frontier, destined for a checkpoint. Call after
    the workers have joined (on a stopped run tasks survive {!close}; on a
    completed run the queue is empty and this returns [[]]). *)
