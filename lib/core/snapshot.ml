type key = (Choice.kind * int * int) array

type t = {
  key : key;
  stack : Exec.Exec_record.t list;  (* top-first master copies; never mutated *)
  seq : int;
  threads : Tso.Thread_state.t list;
  trace : Trace.t;
  failure_count : int;
  fp_count : int;
  rng : int;
  last : string;
  crash_label : string option;
}

(* Sorted by key length, deepest first, so the first [recorded_matches] hit
   in [find] is the deepest usable snapshot — the one that skips the most
   pre-failure work. *)
type cache = { mutable snaps : t list }

let max_cached = 256

let create_cache () = { snaps = [] }

let failure_key choice =
  Array.append (Choice.consumed choice) [| (Choice.Failure_point, 2, 1) |]

let crash_key choice = Choice.consumed choice

let mem cache key = List.exists (fun s -> s.key = key) cache.snaps

(* Every record in a snapshot is a bounded view (Exec_record.snapshot_view):
   line intervals copied — the recovery read-from analysis refines them in
   place even on buried records — store queues shared with the capturing
   execution, entries newer than the capture hidden behind the view's seq
   bound. The top record is the one the crashing execution keeps writing
   into, so its view is bounded at the capture-time sequence number; buried
   records' queues are frozen already and keep whatever bound they carry
   (restored replays can themselves be captured). The initial image is
   immutable and shared outright. *)
let capture ~key ~stack ~seq ~threads ~trace ~failure_count ~fp_count ~rng ~last
    ~crash_label =
  let stack =
    List.mapi
      (fun i e ->
        if Exec.Exec_record.is_initial e then e
        else if i = 0 then Exec.Exec_record.snapshot_view ~bound:seq e
        else Exec.Exec_record.snapshot_view e)
      (Exec.Exec_stack.to_list stack)
  in
  {
    key;
    stack;
    seq;
    threads = List.map Tso.Thread_state.copy threads;
    trace = Trace.copy trace;
    failure_count;
    fp_count;
    rng;
    last;
    crash_label;
  }

(* Per-restore copies: views of the master's views (fresh line intervals,
   still-shared queues). Under buffered eviction the top must instead be a
   private truncated copy ([deep_top]) — the drain at the restored crash
   pushes the surviving store-buffer entries into it. *)
let materialize ~deep_top snap =
  let stack =
    List.mapi
      (fun i e ->
        if Exec.Exec_record.is_initial e then e
        else if i = 0 && deep_top then Exec.Exec_record.snapshot_freeze e
        else Exec.Exec_record.snapshot_view e)
      snap.stack
  in
  (stack, List.map Tso.Thread_state.copy snap.threads)

(* [advance] is a lexicographic increment over the chosen-vector, so once
   this worker's search has reached the path of [now], a snapshot that is
   lexicographically behind [now] on a shared prefix can never match one of
   this worker's future replays. Pruning is only a wall-time heuristic —
   subtrees donated via [Choice.split] live in other workers with their own
   caches, and a missing snapshot merely costs one full replay, which
   re-captures it. *)
let dead ~now s =
  let k = s.key in
  let n = min (Array.length k) (Array.length now) in
  let rec loop i =
    i < n
    &&
    let ka, na, ca = k.(i) and kb, nb, cb = now.(i) in
    ka = kb && na = nb && (ca < cb || (ca = cb && loop (i + 1)))
  in
  loop 0

let store cache snap =
  let snaps = List.filter (fun s -> not (dead ~now:snap.key s)) cache.snaps in
  let rec insert = function
    | [] -> [ snap ]
    | s :: _ as rest when Array.length s.key <= Array.length snap.key -> snap :: rest
    | s :: rest -> s :: insert rest
  in
  let snaps = insert snaps in
  (* Evict the shallowest entries first: they are the cheapest to recompute
     and skip the least replay work per hit. *)
  cache.snaps <- List.filteri (fun i _ -> i < max_cached) snaps

(* Besides returning the deepest match, [find] garbage-collects: an entry the
   replay's recorded prefix has lexicographically passed can never match
   again in this worker, and with the cache sorted deepest-first every such
   entry sits in front of the match, so each is scanned at most once more
   before being dropped. Without this, every [find] would re-walk the shared
   prefix of all already-explored deeper snapshots — O(depth^3) over a run. *)
let find cache choice =
  let matched = ref None in
  let live =
    List.filter
      (fun s ->
        match !matched with
        | Some _ -> true
        | None -> (
            match Choice.classify_recorded choice s.key with
            | `Match ->
                matched := Some s;
                true
            | `Passed -> false
            | `Keep -> true))
      cache.snaps
  in
  cache.snaps <- live;
  !matched

let clear_cache cache = cache.snaps <- []
