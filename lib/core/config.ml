type evict_policy = Eager | Buffered

type t = {
  max_failures : int;
  evict_policy : evict_policy;
  max_steps : int;
  max_executions : int;
  jobs : int;
  stop_at_first_bug : bool;
  report_multi_rf : bool;
  report_perf : bool;
  schedule_seed : int option;
  region_base : Pmem.Addr.t;
  region_size : int;
  trace_depth : int;
  analyze : bool;
  analyze_hb : bool;
  suppress : string list;
  snapshot : bool;
  memo : bool;
  wall_budget : float option;
  step_deadline : float option;
  mem_budget : int option;
  checkpoint_every : float;
}

let default =
  {
    max_failures = 1;
    evict_policy = Eager;
    max_steps = 2_000_000;
    max_executions = 100_000;
    jobs = 1;
    stop_at_first_bug = false;
    report_multi_rf = true;
    report_perf = true;
    schedule_seed = None;
    region_base = 0x1000;
    region_size = 64 * 1024;
    trace_depth = 64;
    analyze = false;
    analyze_hb = true;
    suppress = [];
    snapshot = true;
    memo = true;
    wall_budget = None;
    step_deadline = None;
    mem_budget = None;
    checkpoint_every = 30.;
  }

let policy_name = function Eager -> "eager" | Buffered -> "buffered"

let pp ppf c =
  Format.fprintf ppf
    "max_failures=%d evict=%s max_steps=%d max_executions=%d jobs=%d snapshot=%s memo=%s \
     region=[0x%x,+%d)%s%s%s"
    c.max_failures (policy_name c.evict_policy) c.max_steps c.max_executions c.jobs
    (if c.snapshot then "on" else "off")
    (if c.memo then "on" else "off")
    c.region_base c.region_size
    (match c.wall_budget with Some b -> Printf.sprintf " wall_budget=%gs" b | None -> "")
    (match c.step_deadline with Some d -> Printf.sprintf " step_deadline=%gs" d | None -> "")
    (match c.mem_budget with Some m -> Printf.sprintf " mem_budget=%dB" m | None -> "")
