type scenario = { name : string; pre : Ctx.t -> unit; post : Ctx.t -> unit }

let scenario ~name ~pre ~post = { name; pre; post }
let scenario_single ~name main = { name; pre = main; post = main }

type outcome = {
  bugs : Bug.t list;
  stats : Stats.t;
  multi_rf : Ctx.multi_rf list;
  perf : Ctx.perf_report list;
  findings : Analysis.Report.finding list;
}

(* The CLI's signal handlers (and tests) request a cooperative stop through
   this process-global flag: workers poll it between replays, and the monitor
   thread polls it too. It is only cleared explicitly — a SIGINT that lands
   while a checkpoint is being written must still stop the next round. *)
let interrupt_flag = Atomic.make false

(* How many times an interrupt has been requested since the last clear.
   Workers only poll the boolean; the count lets the CLI escalate — a second
   SIGINT while the first cooperative stop is still winding down means the
   user wants out *now*, not after the current replays finish. *)
let interrupt_count = Atomic.make 0

let request_interrupt () =
  Atomic.set interrupt_flag true;
  Atomic.incr interrupt_count

let clear_interrupt () =
  Atomic.set interrupt_flag false;
  Atomic.set interrupt_count 0

let interrupts_requested () = Atomic.get interrupt_count

(* Why a round of exploration stopped. The first trigger wins: [Capped] and
   [First_bug] come from workers, the rest from the watchdog monitor. [Tick]
   alone continues with another round (after writing a checkpoint). *)
type stop_reason = Capped | First_bug | Interrupted | Wall_budget | Tick

(* One complete scenario execution: run the pre-failure program; every
   injected failure aborts the current execution and starts the recovery
   program on the surviving persistent state. With a snapshot, the context is
   restored to the captured crash instead and only recovery runs — the
   pre-failure program (and any captured recovery prefix) is skipped. *)
let replay_once ?snapshot scn ctx =
  let rec recover () =
    Ctx.after_crash ctx;
    try
      scn.post ctx;
      Ctx.finish_execution ctx
    with Ctx.Power_failure -> recover ()
  in
  match snapshot with
  | Some snap ->
      Ctx.resume_from_snapshot ctx snap;
      recover ()
  | None -> (
      try
        scn.pre ctx;
        Ctx.finish_execution ctx
      with Ctx.Power_failure -> recover ())

(* Deduplicating accumulators. To keep the outcome identical for every
   [jobs] value, deduplication cannot keep the first-discovered
   representative (discovery order depends on the work schedule): each key
   keeps the least representative under polymorphic compare, which is the
   same record no matter how the executions were partitioned. *)
let keep_min tbl key v = match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.replace tbl key v
  | Some prev -> if compare v prev < 0 then Hashtbl.replace tbl key v

(* What one worker accumulated over the subtrees it explored.
   [wr_remainder] is the unexplored part of the tasks it was holding when a
   cooperative stop caught it — frontier material for a checkpoint. *)
type worker_result = {
  wr_bugs : ((int * string), Bug.t) Hashtbl.t;
  wr_multi_rf : ((string * Pmem.Addr.t), Ctx.multi_rf) Hashtbl.t;
  wr_perf : (Ctx.perf_report, unit) Hashtbl.t;
  wr_findings : (Analysis.Report.finding, unit) Hashtbl.t;
  wr_stats : Stats.t;
  wr_remainder : Choice.prefix list;
}

(* An open crash-state memoization accumulator: one per crash state whose
   recovery subtree this worker is currently inside. Opened by the crash
   probe on a table miss, it collects everything the subtree produces;
   when the DFS increment moves above [acc_depth] the subtree is complete
   and the accumulator is stored as a {!Memo.verdict} — unless poisoned,
   i.e. part of the subtree was donated to another worker (or was pinned by
   the task prefix), in which case this worker never saw the whole subtree
   and the verdict would under-count. *)
type memo_acc = {
  acc_depth : int;  (* Choice.depth at the probe = the subtree's root *)
  acc_digest : int;
  acc_key : string;
  mutable acc_poisoned : bool;
  mutable acc_execs : int;
  acc_rf_at_open : int;  (* Choice.created Read_from when opened *)
  mutable acc_rf_extra : int;  (* read-from decisions credited by nested hits *)
  mutable acc_bugs : Bug.t list;
  mutable acc_multi : Ctx.multi_rf list;
  mutable acc_perf : Ctx.perf_report list;
  mutable acc_findings : Analysis.Report.finding list;
}

(* [reserved] hands out global execution slots so the [max_executions]
   budget holds across workers. Bounded CAS rather than fetch-and-add: the
   counter never overshoots the budget, so a denied reservation — the only
   thing that sets [capped] — by construction means an unexplored replay was
   pending. A run whose tree needs exactly [max_executions] replays reserves
   every slot and is never denied: it reports as exhausted, not cut short. *)
let reserve_slot reserved ~budget =
  let rec loop () =
    let cur = Atomic.get reserved in
    if cur >= budget then false
    else if Atomic.compare_and_set reserved cur (cur + 1) then true
    else loop ()
  in
  loop ()

(* All-or-nothing reservation of [n] slots at once, for crediting a memo
   hit's cached subtree against the execution budget. Refusing a partial
   grant keeps capping identical to a memo-less run: on failure the caller
   explores the subtree live, reserving slot by slot, and the cap lands on
   exactly the same execution count. *)
let reserve_slots reserved ~budget n =
  if n < 0 then invalid_arg "Explorer.reserve_slots";
  n = 0
  ||
  let rec loop () =
    let cur = Atomic.get reserved in
    if cur + n > budget then false
    else if Atomic.compare_and_set reserved cur (cur + n) then true
    else loop ()
  in
  loop ()

(* The per-worker replay loop: drain subtree tasks off the frontier until
   the exploration completes or is stopped. [stopped] is the cooperative
   stop flag; [trigger] records why it was raised (first reason wins) and
   closes the frontier. *)
let worker ~config ~scn ~frontier ~reserved ~stopped ~trigger ~monitor ~idx () =
  let budget = config.Config.max_executions in
  let snapshots = if config.Config.snapshot then Some (Snapshot.create_cache ()) else None in
  (* One label intern table for every context this worker creates: snapshots
     hold packed trace rings across replays, and restoring a ring requires
     the destination to share the source's table. *)
  let trace_labels = Analysis.Arena.labels () in
  (* One pooled trace ring reused by every replay: the packed ring is a
     major-heap array, and allocating it per context shows up directly as
     major-GC pressure on snapshot/memo-heavy workloads. *)
  let trace_ring = Trace.create ~labels:trace_labels ~depth:config.Config.trace_depth () in
  (* Memoization is disabled under stop-at-first-bug: crediting a cached
     subtree's executions without replaying it would change which replay
     trips the stop, breaking the "same outcome for every jobs value"
     guarantee that mode otherwise keeps. It is likewise disabled under a
     per-execution deadline: a cancelled replay's Execution_timeout would
     leak a wall-clock-dependent verdict into the cache. *)
  let memo_table =
    if
      config.Config.memo
      && (not config.Config.stop_at_first_bug)
      && config.Config.step_deadline = None
    then Some (Memo.create_table ())
    else None
  in
  let timed = config.Config.step_deadline <> None in
  let cancel = if timed then Some (Monitor.cancel_flag monitor idx) else None in
  let bugs = Hashtbl.create 16 in
  let multi_rf : (string * Pmem.Addr.t, Ctx.multi_rf) Hashtbl.t = Hashtbl.create 16 in
  let perf : (Ctx.perf_report, unit) Hashtbl.t = Hashtbl.create 16 in
  let findings : (Analysis.Report.finding, unit) Hashtbl.t = Hashtbl.create 16 in
  let executions = ref 0 in
  let rf_created = ref 0 in
  let rf_hit_extra = ref 0 in
  let failure_points = ref 0 in
  let stores = ref 0 in
  let flushes = ref 0 in
  let memo_hits = ref 0 in
  let memo_misses = ref 0 in
  let memo_saved = ref 0 in
  let snapshot_hits = ref 0 in
  let snapshot_misses = ref 0 in
  let sheds = ref 0 in
  let remainder = ref [] in
  (* Open accumulators of the current task, deepest first (depths strictly
     increase towards the head). Every report recorded while a subtree is
     open belongs to that subtree's verdict too. *)
  let accs : memo_acc list ref = ref [] in
  let add_bug b =
    keep_min bugs (Bug.report_key b) b;
    List.iter (fun a -> a.acc_bugs <- b :: a.acc_bugs) !accs
  in
  let add_multi (r : Ctx.multi_rf) =
    keep_min multi_rf (r.load_label, r.load_addr) r;
    List.iter (fun a -> a.acc_multi <- r :: a.acc_multi) !accs
  in
  let add_perf r =
    Hashtbl.replace perf r ();
    List.iter (fun a -> a.acc_perf <- r :: a.acc_perf) !accs
  in
  let add_finding f =
    Hashtbl.replace findings f ();
    List.iter (fun a -> a.acc_findings <- f :: a.acc_findings) !accs
  in
  let record_bug ctx kind location =
    add_bug
      {
        Bug.kind;
        location;
        exec_depth = Ctx.failures ctx;
        trace = Ctx.trace_events ctx;
        dropped = Ctx.trace_dropped ctx;
      }
  in
  let harvest ctx =
    List.iter add_multi (Ctx.multi_rf_reports ctx);
    List.iter add_perf (Ctx.perf_reports ctx);
    if config.Config.analyze then List.iter add_finding (Ctx.analysis_findings ctx)
  in
  let explore prefix =
    let choice = Choice.resume_from_prefix prefix in
    let task_depth = Choice.prefix_depth prefix in
    accs := [];
    (* The crash probe, installed on every context while memoization is on.
       Fired at each committed crash, once the surviving persistent state is
       final: a stored verdict for the state aborts the replay via Memo.Hit;
       otherwise a fresh accumulator opens for the subtree. Skipped when the
       crash lies inside the task's pinned prefix (this task only explores a
       donated slice of that subtree, so it may neither consume nor produce
       whole-subtree verdicts there) and on re-entry — a later replay passing
       through a still-open subtree root, necessarily in the same state. *)
    let probe table ctx () =
      let d = Choice.depth choice in
      if d >= task_depth && not (List.exists (fun a -> a.acc_depth = d) !accs) then begin
        let key =
          Memo.canonical_key ~scratch:(Memo.scratch table) ~stack:(Ctx.exec_stack ctx)
            ~trace:(Ctx.trace_ring ctx) ~dropped:(Ctx.trace_dropped ctx)
            ~failures:(Ctx.failures ctx) ~rng:(Ctx.rng_state ctx) ~last:(Ctx.last_label ctx) ()
        in
        let digest = Memo.digest key in
        let found = Memo.find table ~digest ~key in
        match found with
        | Some v when reserve_slots reserved ~budget (v.Memo.v_executions - 1) ->
            raise (Memo.Hit v)
        | _ ->
            (* Either unknown, or known but too big for the remaining budget
               (then explore live so capping lands exactly where a memo-less
               run would; poisoned — the verdict already exists). *)
            incr memo_misses;
            accs :=
              {
                acc_depth = d;
                acc_digest = digest;
                acc_key = key;
                acc_poisoned = found <> None;
                acc_execs = 0;
                acc_rf_at_open = Choice.created choice Choice.Read_from;
                acc_rf_extra = 0;
                acc_bugs = [];
                acc_multi = [];
                acc_perf = [];
                acc_findings = [];
              }
              :: !accs
      end
    in
    (* Pop every accumulator rooted at [down_to] or deeper: the DFS increment
       moved above them, so their subtrees are complete. *)
    let close_accs choice ~down_to =
      let rec pop () =
        match !accs with
        | acc :: rest when acc.acc_depth >= down_to ->
            accs := rest;
            (if not acc.acc_poisoned then
               match memo_table with
               | None -> ()
               | Some table ->
                   let v =
                     {
                       Memo.v_executions = acc.acc_execs;
                       v_rf_created =
                         Choice.created choice Choice.Read_from - acc.acc_rf_at_open
                         + acc.acc_rf_extra;
                       v_bugs = List.sort_uniq compare acc.acc_bugs;
                       v_multi_rf = List.sort_uniq compare acc.acc_multi;
                       v_perf = List.sort_uniq compare acc.acc_perf;
                       v_findings = List.sort_uniq compare acc.acc_findings;
                     }
                   in
                   Memo.store table ~digest:acc.acc_digest ~key:acc.acc_key v);
            pop ()
        | _ -> ()
      in
      pop ()
    in
    (* Only the root task starts with the all-defaults replay — the original
       failure-free execution whose counts Fig. 14 reports. *)
    let original = ref (task_depth = 0) in
    let continue = ref true in
    let discard = ref false in
    while !continue do
      if (not (Atomic.get stopped)) && Atomic.get interrupt_flag then trigger Interrupted;
      if Monitor.take_shed monitor idx then begin
        (match snapshots with Some cache -> Snapshot.clear_cache cache | None -> ());
        (match memo_table with Some table -> Memo.clear table | None -> ());
        incr sheds
      end;
      if Atomic.get stopped then begin
        (* The choice stack sits where the next replay would start, so its
           remainder is exactly this task's unexplored subtree. *)
        remainder := Choice.remainder choice :: !remainder;
        discard := true;
        continue := false
      end
      else begin
        if not (reserve_slot reserved ~budget) then begin
          trigger Capped;
          remainder := Choice.remainder choice :: !remainder;
          discard := true;
          continue := false
        end
        else begin
          Choice.begin_replay choice;
          let snapshot =
            match snapshots with
            | None -> None
            | Some cache -> (
                match Snapshot.find cache choice with
                | Some _ as s ->
                    incr snapshot_hits;
                    s
                | None ->
                    incr snapshot_misses;
                    None)
          in
          let ctx = Ctx.create ?snapshots ?cancel ~trace_labels ~trace_ring ~config ~choice () in
          (match memo_table with
          | Some table -> Ctx.set_crash_hook ctx (probe table ctx)
          | None -> ());
          let hit = ref None in
          if timed then Monitor.exec_started monitor idx;
          (try replay_once ?snapshot scn ctx with
          | Memo.Hit v -> hit := Some v
          | Ctx.Power_failure -> assert false
          | Choice.Divergence _ as e -> raise e
          | Bug.Found (kind, location) -> record_bug ctx kind location
          | Stack_overflow -> record_bug ctx (Bug.Step_limit { resource = "stack" }) (Ctx.last_label ctx)
          | Out_of_memory -> record_bug ctx (Bug.Step_limit { resource = "memory" }) (Ctx.last_label ctx)
          | e ->
              record_bug ctx
                (Bug.Program_exception (Bug.normalize_message (Printexc.to_string e)))
                (Ctx.last_label ctx));
          if timed then Monitor.exec_finished monitor idx;
          (match !hit with
          | Some v ->
              (* The cached verdict stands in for the whole recovery subtree:
                 credit its counts, merge its reports (they deduplicate
                 against anything this worker already found), and harvest the
                 aborted replay's own pre-crash reports, which the probe cut
                 short of their usual end-of-replay collection. *)
              executions := !executions + v.Memo.v_executions;
              incr memo_hits;
              memo_saved := !memo_saved + v.Memo.v_executions - 1;
              rf_hit_extra := !rf_hit_extra + v.Memo.v_rf_created;
              List.iter
                (fun a ->
                  a.acc_execs <- a.acc_execs + v.Memo.v_executions;
                  a.acc_rf_extra <- a.acc_rf_extra + v.Memo.v_rf_created)
                !accs;
              List.iter add_bug v.Memo.v_bugs;
              List.iter add_multi v.Memo.v_multi_rf;
              List.iter add_perf v.Memo.v_perf;
              if config.Config.analyze then List.iter add_finding v.Memo.v_findings;
              harvest ctx
          | None ->
              incr executions;
              List.iter (fun a -> a.acc_execs <- a.acc_execs + 1) !accs;
              if !original then begin
                failure_points := Ctx.fp_count ctx;
                (match List.rev (Exec.Exec_stack.to_list (Ctx.exec_stack ctx)) with
                | _ :: first :: _ ->
                    stores := Exec.Exec_record.store_count first;
                    flushes := Exec.Exec_record.flush_count first
                | [ _ ] | [] -> ());
                original := false
              end;
              harvest ctx);
          if config.Config.stop_at_first_bug && Hashtbl.length bugs > 0 then begin
            trigger First_bug;
            (* The bug-finding leaf is explored; what remains is everything
               past the next DFS increment. *)
            if Choice.advance choice then remainder := Choice.remainder choice :: !remainder;
            discard := true;
            continue := false
          end
          else begin
            let advanced = Choice.advance choice in
            (* Subtrees the increment moved above are fully explored — store
               their verdicts before anything else can touch the record. *)
            close_accs choice ~down_to:(if advanced then Choice.recorded_len choice else 0);
            if not advanced then continue := false
            else if Frontier.needs_work frontier then
              (* An idle peer: donate the shallowest unexplored sibling
                 range — the largest subtree this worker can give away. *)
              match Choice.split choice with
              | Some donated ->
                  (* The donated alternatives live inside every subtree rooted
                     at or above the donated cell: those verdicts would
                     under-count, so poison them. Deeper accumulators diverge
                     from the donated slice before their root and are safe. *)
                  let cut = Choice.prefix_depth donated in
                  List.iter
                    (fun a -> if a.acc_depth < cut then a.acc_poisoned <- true)
                    !accs;
                  Frontier.push frontier donated
              | None -> ()
          end
        end
      end
    done;
    if !discard then accs := [];
    rf_created := !rf_created + Choice.created choice Choice.Read_from
  in
  let rec drain () =
    match Frontier.pop frontier with
    | None -> ()
    | Some prefix ->
        explore prefix;
        drain ()
  in
  drain ();
  {
    wr_bugs = bugs;
    wr_multi_rf = multi_rf;
    wr_perf = perf;
    wr_findings = findings;
    wr_stats =
      {
        Stats.zero with
        Stats.executions = !executions;
        rf_decisions = !rf_created + !rf_hit_extra;
        failure_points = !failure_points;
        stores = !stores;
        flushes = !flushes;
        memo_hits = !memo_hits;
        memo_misses = !memo_misses;
        memo_saved = !memo_saved;
        snapshot_hits = !snapshot_hits;
        snapshot_misses = !snapshot_misses;
        sheds = !sheds;
      };
    wr_remainder = !remainder;
  }

(* Deterministic rendering order of the merge tables, shared by [run] and
   [merge_outcomes]: sorted lists, so the result is independent of hash-table
   iteration order and of how the explored tree was partitioned. *)
let sorted_reports ~bug_tbl ~multi_rf_tbl ~perf_tbl ~findings_tbl =
  let bugs = List.sort compare (Hashtbl.fold (fun _ b acc -> b :: acc) bug_tbl []) in
  let multi_rf =
    List.sort
      (fun a b ->
        compare (a.Ctx.load_label, a.Ctx.load_addr) (b.Ctx.load_label, b.Ctx.load_addr))
      (Hashtbl.fold (fun _ r acc -> r :: acc) multi_rf_tbl [])
  in
  let perf = List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) perf_tbl []) in
  let findings =
    List.sort Analysis.Report.compare_finding
      (Hashtbl.fold (fun f () acc -> f :: acc) findings_tbl [])
  in
  (bugs, multi_rf, perf, findings)

(* Combine the outcomes of disjoint subtree explorations — the fleet
   coordinator's merge of shard results — with exactly the dedup discipline
   [run] applies across its own workers: per-key least representative for
   bugs and multi-rf, set union for perf and findings, [Stats.merge] for the
   counters. [exhausted]/[interrupted] are recomputed from the caller's
   knowledge of completion (constituent outcomes of capped or preempted
   shards legitimately carry partial flags). *)
let merge_outcomes ?(config = Config.default) ~completed ~interrupted outcomes =
  let bug_tbl = Hashtbl.create 16 in
  let multi_rf_tbl = Hashtbl.create 16 in
  let perf_tbl = Hashtbl.create 16 in
  let findings_tbl = Hashtbl.create 16 in
  let stats_acc = ref Stats.zero in
  List.iter
    (fun o ->
      List.iter (fun b -> keep_min bug_tbl (Bug.report_key b) b) o.bugs;
      List.iter
        (fun (m : Ctx.multi_rf) -> keep_min multi_rf_tbl (m.load_label, m.load_addr) m)
        o.multi_rf;
      List.iter (fun p -> Hashtbl.replace perf_tbl p ()) o.perf;
      List.iter (fun f -> Hashtbl.replace findings_tbl f ()) o.findings;
      stats_acc := Stats.merge !stats_acc o.stats)
    outcomes;
  let bugs, multi_rf, perf, findings =
    sorted_reports ~bug_tbl ~multi_rf_tbl ~perf_tbl ~findings_tbl
  in
  let stats =
    {
      !stats_acc with
      Stats.multi_rf_loads = List.length multi_rf;
      findings = List.length findings;
      exhausted = completed && not (config.Config.stop_at_first_bug && bugs <> []);
      interrupted;
    }
  in
  { bugs; stats; multi_rf; perf; findings }

let run ?(config = Config.default) ?resume ?checkpoint scn =
  let jobs = max 1 config.Config.jobs in
  let t0 = Unix.gettimeofday () in
  let fingerprint = Checkpoint.fingerprint ~workload:scn.name config in
  (* Global merge tables — deterministic per-key least representative, so the
     final reports are byte-identical for any jobs value, any partition of
     the tree across rounds, and any interrupt/resume history. *)
  let bug_tbl = Hashtbl.create 16 in
  let multi_rf_tbl = Hashtbl.create 16 in
  let perf_tbl = Hashtbl.create 16 in
  let findings_tbl = Hashtbl.create 16 in
  let stats_acc = ref Stats.zero in
  let prior_wall = ref 0. in
  let initial_tasks =
    match resume with
    | None -> [ Choice.root ]
    | Some (cp : Checkpoint.t) ->
        Checkpoint.validate cp ~workload:scn.name ~config;
        List.iter (fun b -> keep_min bug_tbl (Bug.report_key b) b) cp.bugs;
        List.iter
          (fun (m : Ctx.multi_rf) -> keep_min multi_rf_tbl (m.load_label, m.load_addr) m)
          cp.multi_rf;
        List.iter (fun p -> Hashtbl.replace perf_tbl p ()) cp.perf;
        List.iter (fun f -> Hashtbl.replace findings_tbl f ()) cp.findings;
        prior_wall := cp.stats.Stats.wall_time;
        (* The stored flags describe the interrupted session; this session
           recomputes them. The counters carry over — in particular
           [executions] restarts the execution budget where it stood. *)
        stats_acc := { cp.stats with Stats.wall_time = 0.; exhausted = true; interrupted = false };
        Checkpoint.frontier_prefixes cp
  in
  let reserved = Atomic.make !stats_acc.Stats.executions in
  let merged_reports () = sorted_reports ~bug_tbl ~multi_rf_tbl ~perf_tbl ~findings_tbl in
  let outcome_now ~completed ~interrupted =
    let bugs, multi_rf, perf, findings = merged_reports () in
    let stats =
      {
        !stats_acc with
        Stats.multi_rf_loads = Hashtbl.length multi_rf_tbl;
        findings = List.length findings;
        wall_time = !prior_wall +. (Unix.gettimeofday () -. t0);
        exhausted = completed && not (config.Config.stop_at_first_bug && bugs <> []);
        interrupted;
      }
    in
    { bugs; stats; multi_rf; perf; findings }
  in
  let save_checkpoint ~remainder ~interrupted =
    match checkpoint with
    | None -> ()
    | Some path ->
        let o = outcome_now ~completed:(remainder = []) ~interrupted in
        Checkpoint.save
          (Checkpoint.make ~fingerprint
             ~frontier:(List.map Choice.encode_prefix remainder)
             ~bugs:o.bugs ~multi_rf:o.multi_rf ~perf:o.perf ~findings:o.findings ~stats:o.stats)
          path
  in
  (* One round: explore the given tasks until completion or the first stop
     trigger. Returns the stop reason (None = ran to completion) and the
     unexplored remainder. A [Tick] stop loops into another round after
     writing a checkpoint; anything else ends the run. *)
  let round tasks =
    let frontier = Frontier.create ~workers:jobs () in
    List.iter (Frontier.push frontier) tasks;
    let stopped = Atomic.make false in
    let reason : stop_reason option Atomic.t = Atomic.make None in
    let trigger r =
      if Atomic.compare_and_set reason None (Some r) then begin
        Atomic.set stopped true;
        Frontier.close frontier
      end
    in
    let now = Unix.gettimeofday () in
    let monitor =
      Monitor.create ~workers:jobs ~interrupt:interrupt_flag
        ?wall_deadline:(Option.map (fun b -> t0 +. b) config.Config.wall_budget)
        ?tick_deadline:
          (match checkpoint with
          | Some _ -> Some (now +. config.Config.checkpoint_every)
          | None -> None)
        ?step_deadline:config.Config.step_deadline ?mem_budget:config.Config.mem_budget
        ~on_stop:(fun r ->
          trigger
            (match r with
            | Monitor.Interrupt -> Interrupted
            | Monitor.Wall_budget -> Wall_budget
            | Monitor.Tick -> Tick))
        ()
    in
    Monitor.start monitor;
    (* A worker that dies (Choice.Divergence — a broken harness) must not
       leave its peers blocked on the frontier forever: close it, join
       everyone, then re-raise. *)
    let guarded idx () =
      match worker ~config ~scn ~frontier ~reserved ~stopped ~trigger ~monitor ~idx () with
      | r -> Ok r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set stopped true;
          Frontier.close frontier;
          Error (e, bt)
    in
    let results =
      Fun.protect
        ~finally:(fun () -> Monitor.shutdown monitor)
        (fun () ->
          if jobs = 1 then [ guarded 0 () ]
          else begin
            let spawned = List.init (jobs - 1) (fun i -> Domain.spawn (guarded (i + 1))) in
            let mine = guarded 0 () in
            mine :: List.map Domain.join spawned
          end)
    in
    let results =
      List.map
        (function Ok r -> r | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
        results
    in
    List.iter
      (fun r ->
        Hashtbl.iter (fun key b -> keep_min bug_tbl key b) r.wr_bugs;
        Hashtbl.iter (fun key m -> keep_min multi_rf_tbl key m) r.wr_multi_rf;
        Hashtbl.iter (fun p () -> Hashtbl.replace perf_tbl p ()) r.wr_perf;
        Hashtbl.iter (fun f () -> Hashtbl.replace findings_tbl f ()) r.wr_findings;
        stats_acc := Stats.merge !stats_acc r.wr_stats)
      results;
    let remainder =
      List.concat_map (fun r -> r.wr_remainder) results @ Frontier.drain_remaining frontier
    in
    (Atomic.get reason, remainder)
  in
  let rec rounds tasks =
    match round tasks with
    | Some Tick, (_ :: _ as remainder) ->
        save_checkpoint ~remainder ~interrupted:true;
        rounds remainder
    | (None | Some Tick), _ ->
        (* Ran dry (a Tick that found nothing left is completion too). *)
        save_checkpoint ~remainder:[] ~interrupted:false;
        outcome_now ~completed:true ~interrupted:false
    | Some (Interrupted | Wall_budget), remainder ->
        save_checkpoint ~remainder ~interrupted:true;
        outcome_now ~completed:false ~interrupted:true
    | Some (Capped | First_bug), remainder ->
        (* Cut short, but not "interrupted": resuming a capped checkpoint
           just caps again (the budget travels in the stats). *)
        save_checkpoint ~remainder ~interrupted:false;
        outcome_now ~completed:false ~interrupted:false
  in
  rounds initial_tasks

let found_bug o = o.bugs <> []

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%a@," Stats.pp o.stats;
  (if o.bugs = [] then Format.fprintf ppf "no bugs found"
   else begin
     Format.fprintf ppf "%d bug(s):" (List.length o.bugs);
     List.iter (fun b -> Format.fprintf ppf "@,  %s" (Bug.symptom b)) o.bugs
   end);
  if o.perf <> [] then begin
    Format.fprintf ppf "@,%d performance issue(s):" (List.length o.perf);
    List.iter
      (fun (r : Ctx.perf_report) ->
        Format.fprintf ppf "@,  %s at %s"
          (match r.Ctx.perf_kind with
          | Ctx.Redundant_flush -> "redundant flush"
          | Ctx.Redundant_fence -> "redundant fence")
          r.Ctx.perf_label)
      o.perf
  end;
  if o.findings <> [] then begin
    Format.fprintf ppf "@,%d analysis finding(s):" (List.length o.findings);
    List.iter
      (fun f -> Format.fprintf ppf "@,  %a" Analysis.Report.pp_finding f)
      o.findings
  end;
  Format.fprintf ppf "@]"

let comparable_outcome o = { o with stats = Stats.comparable o.stats }
let pp_report ppf o = pp_outcome ppf (comparable_outcome o)
