(** Exploration statistics — the raw material of the paper's Fig. 14. *)

type t = {
  executions : int;  (** complete scenario executions explored (JExec) *)
  failure_points : int;
      (** failure-injection points in the original (no-failure) execution
          (FPoints) *)
  rf_decisions : int;
      (** read-from decision points with more than one candidate created
          during the whole exploration *)
  multi_rf_loads : int;  (** distinct loads flagged by the debugging aid *)
  stores : int;  (** byte stores of the original execution *)
  flushes : int;  (** line flushes of the original execution *)
  findings : int;
      (** distinct analysis findings across the exploration (0 unless
          [Config.analyze]) *)
  wall_time : float;  (** seconds spent exploring (JTime) *)
  exhausted : bool;
      (** whether the search space was fully explored (false when a limit or
          stop-at-first-bug cut it short) *)
}

val zero : t
(** The identity of {!merge}: all counters 0, [exhausted = true]. *)

val merge : t -> t -> t
(** Combines the statistics of workers that explored disjoint subtrees:
    [executions] and [rf_decisions] add; the original-execution counters
    ([failure_points], [stores], [flushes]) and the post-merge totals
    ([multi_rf_loads], [findings]) take the max; [wall_time] takes the max
    (workers ran concurrently); [exhausted] ands. Associative and
    commutative, with {!zero} as identity. *)

val executions_per_fp : t -> float
(** The paper's §5.2 ratio; 0 when there were no failure points. *)

val pp : Format.formatter -> t -> unit
