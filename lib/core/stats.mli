(** Exploration statistics — the raw material of the paper's Fig. 14. *)

type t = {
  executions : int;  (** complete scenario executions explored (JExec) *)
  failure_points : int;
      (** failure-injection points in the original (no-failure) execution
          (FPoints) *)
  rf_decisions : int;
      (** read-from decision points with more than one candidate created
          during the whole exploration *)
  multi_rf_loads : int;  (** distinct loads flagged by the debugging aid *)
  stores : int;  (** byte stores of the original execution *)
  flushes : int;  (** line flushes of the original execution *)
  findings : int;
      (** distinct analysis findings across the exploration (0 unless
          [Config.analyze]) *)
  memo_hits : int;
      (** crash states answered from the memo table instead of replaying the
          recovery subtree (0 unless [Config.memo]) *)
  memo_misses : int;
      (** crash states looked up in the memo table and not found (each opens
          a fresh accumulation of that subtree's verdict) *)
  memo_saved : int;
      (** executions credited from cached verdicts rather than replayed —
          [executions - memo_saved] is the number actually executed *)
  snapshot_hits : int;
      (** replays resumed from a cached failure-point snapshot instead of
          re-executing from the start (0 unless [Config.snapshot]) *)
  snapshot_misses : int;
      (** replays that found no usable snapshot and ran from the start *)
  sheds : int;
      (** times the watchdog monitor tripped [Config.mem_budget] and workers
          dropped their memo/snapshot caches (0 unless a budget is set) *)
  wall_time : float;  (** seconds spent exploring (JTime) *)
  exhausted : bool;
      (** whether the search space was fully explored (false when a limit or
          stop-at-first-bug cut it short) *)
  interrupted : bool;
      (** whether a cooperative stop (signal or [Config.wall_budget]) cut the
          run short — implies [not exhausted]; resume from a checkpoint to
          continue *)
}

val zero : t
(** The identity of {!merge}: all counters 0, [exhausted = true]. *)

val merge : t -> t -> t
(** Combines the statistics of workers that explored disjoint subtrees:
    [executions], [rf_decisions] and the memo counters add; the original-execution counters
    ([failure_points], [stores], [flushes]) and the post-merge totals
    ([multi_rf_loads], [findings]) take the max; [wall_time] takes the max
    (workers ran concurrently); [exhausted] ands; [interrupted] ors.
    Associative and commutative, with {!zero} as identity. *)

val comparable : t -> t
(** The statistics with every schedule-dependent counter zeroed: [wall_time],
    the memo-table and snapshot-cache traffic
    ([memo_hits]/[memo_misses]/[memo_saved]/[snapshot_hits]/[snapshot_misses],
    whose split across workers depends on the work partition) and [sheds] (a
    wall-clock-dependent memory-pressure artifact). Two exhaustive runs
    of the same scenario must have equal [comparable] statistics whatever
    their [jobs], [snapshot] and [memo] settings. *)

val executions_per_fp : t -> float
(** The paper's §5.2 ratio; 0 when there were no failure points. *)

val pp : Format.formatter -> t -> unit
