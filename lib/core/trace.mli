(** A bounded ring of recent typed execution events, attached to bug reports
    so a developer can see what led to the crash (paper §4, Debugging
    support). Events are stored as {!Analysis.Event.t} values and rendered to
    strings only when a report is actually printed — keeping the ring
    zero-format-cost on the happy path. *)

type t

val create : depth:int -> t
(** [depth <= 0] disables the ring: {!add} is a no-op and {!events} is
    empty. *)

val enabled : t -> bool
val add : t -> Analysis.Event.t -> unit
val clear : t -> unit

val copy : t -> t
(** An independent ring with identical contents. *)

val restore : t -> from:t -> unit
(** Overwrites [t]'s contents with [from]'s. Both rings must have the same
    depth (they come from the same {!Config.t}). *)

val events : t -> Analysis.Event.t list
(** Oldest first, at most [depth] entries. *)

val dropped : t -> int
(** How many older events were overwritten because the ring was full. *)
