(** A bounded ring of recent execution events, attached to bug reports so a
    developer can see what led to the crash (paper §4, Debugging support).

    Events live packed in a flat int ring (see {!Analysis.Arena}): the hot
    [add_*] entry points write a handful of ints, snapshot copy/restore are
    array blits, and boxed {!Analysis.Event.t} values are rebuilt only when a
    report is actually printed — keeping the ring near-zero-cost on the happy
    path. *)

type t

val create : ?labels:Analysis.Arena.labels -> depth:int -> unit -> t
(** [depth <= 0] disables the ring: adds are no-ops and {!events} is empty.
    [labels] is the intern table to encode against — pass the owning
    worker's table so rings from successive replays stay mutually
    restorable (the snapshot cache holds rings across replays); omitting it
    makes a private table. *)

val enabled : t -> bool

val depth : t -> int
(** The [depth] this ring was created with (0 when disabled). *)

val labels : t -> Analysis.Arena.labels
(** The ring's label intern table. Shared by every {!copy} of this ring;
    per-worker, never shared across domains. *)

val add : t -> Analysis.Event.t -> unit
(** Packs a boxed event. Hot paths should prefer the [add_*] variants
    below, which skip constructing the event. *)

val add_store :
  t -> addr:Pmem.Addr.t -> width:int -> value:int -> tid:int -> label:string -> unit

val add_load :
  t -> addr:Pmem.Addr.t -> width:int -> value:int -> tid:int -> label:string -> unit

val add_rmw :
  t ->
  addr:Pmem.Addr.t ->
  width:int ->
  old_value:int ->
  new_value:int option ->
  tid:int ->
  label:string ->
  unit

val add_flush :
  t -> line_addr:Pmem.Addr.t -> kind:Analysis.Event.flush_kind -> tid:int -> label:string -> unit

val add_fence : t -> kind:Analysis.Event.fence_kind -> tid:int -> label:string -> unit
val clear : t -> unit

val copy : t -> t
(** An independent ring with identical contents. The label table is shared
    (it is append-only and per-worker), so {!restore} between a ring and its
    copies stays valid. *)

val restore : t -> from:t -> unit
(** Overwrites [t]'s contents with [from]'s. Both rings must have the same
    depth and share one label table (i.e. be copies of one {!create}). *)

val events : t -> Analysis.Event.t list
(** Oldest first, at most [depth] entries. Decodes — not for hot paths. *)

val dropped : t -> int
(** How many older events were overwritten because the ring was full. *)

val serialize : t -> Pmem.Wire.sink -> unit
(** Writes the event count followed by each packed cell, oldest first, with
    labels as strings (table-independent): two rings holding equal event
    sequences serialize identically whatever their intern order. *)
