type t = {
  executions : int;
  failure_points : int;
  rf_decisions : int;
  multi_rf_loads : int;
  stores : int;
  flushes : int;
  findings : int;
  memo_hits : int;
  memo_misses : int;
  memo_saved : int;
  snapshot_hits : int;
  snapshot_misses : int;
  sheds : int;
  wall_time : float;
  exhausted : bool;
  interrupted : bool;
}

let zero =
  {
    executions = 0;
    failure_points = 0;
    rf_decisions = 0;
    multi_rf_loads = 0;
    stores = 0;
    flushes = 0;
    findings = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_saved = 0;
    snapshot_hits = 0;
    snapshot_misses = 0;
    sheds = 0;
    wall_time = 0.;
    exhausted = true;
    interrupted = false;
  }

let merge a b =
  {
    (* Per-worker additive counters. *)
    executions = a.executions + b.executions;
    rf_decisions = a.rf_decisions + b.rf_decisions;
    (* Memo-table traffic is additive too, but — unlike the counters above —
       the split depends on how the work was partitioned, so these never
       appear in [pp] and byte-identity comparisons zero them out. *)
    memo_hits = a.memo_hits + b.memo_hits;
    memo_misses = a.memo_misses + b.memo_misses;
    memo_saved = a.memo_saved + b.memo_saved;
    snapshot_hits = a.snapshot_hits + b.snapshot_hits;
    snapshot_misses = a.snapshot_misses + b.snapshot_misses;
    sheds = a.sheds + b.sheds;
    (* Properties of the original (failure-free) execution: exactly one
       worker — whichever ran the root subtree — observed them. *)
    failure_points = max a.failure_points b.failure_points;
    stores = max a.stores b.stores;
    flushes = max a.flushes b.flushes;
    multi_rf_loads = max a.multi_rf_loads b.multi_rf_loads;
    findings = max a.findings b.findings;
    (* Workers ran concurrently, so the slowest one bounds the wall clock. *)
    wall_time = max a.wall_time b.wall_time;
    exhausted = a.exhausted && b.exhausted;
    interrupted = a.interrupted || b.interrupted;
  }

(* Everything that is allowed to differ between runs that must otherwise be
   byte-identical (jobs values, memo/snapshot on vs off): wall time and the
   memo-table traffic counters. *)
let comparable s =
  {
    s with
    memo_hits = 0;
    memo_misses = 0;
    memo_saved = 0;
    snapshot_hits = 0;
    snapshot_misses = 0;
    sheds = 0;
    wall_time = 0.;
  }

let executions_per_fp s =
  if s.failure_points = 0 then 0. else float_of_int s.executions /. float_of_int s.failure_points

let pp ppf s =
  Format.fprintf ppf
    "%d executions over %d failure points (%.2f per fp), %d rf decisions, %d multi-rf loads, %d \
     stores, %d flushes, %.3fs%s"
    s.executions s.failure_points (executions_per_fp s) s.rf_decisions s.multi_rf_loads s.stores
    s.flushes s.wall_time
    ((if s.findings > 0 then Printf.sprintf ", %d analysis findings" s.findings else "")
    ^ (if s.sheds > 0 then Printf.sprintf ", %d cache sheds" s.sheds else "")
    ^
    if s.interrupted then " (interrupted)" else if s.exhausted then "" else " (cut short)")
