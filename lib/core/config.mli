(** Model-checker configuration. *)

type evict_policy =
  | Eager
      (** The store buffer drains after every instruction. Deterministic and
          cheap; the store buffer is architecturally invisible to a single
          thread, so this is the default for crash-consistency checking. *)
  | Buffered
      (** Entries drain only at mfence / locked-RMW / execution end, plus a
          nondeterministic partial drain at each injected failure — exercising
          crashes that lose buffered stores, flushes and fences. *)

type t = {
  max_failures : int;
      (** Maximum number of injected power failures in one scenario (the
          paper's bound on the depth of the [exec] stack). Default 1. *)
  evict_policy : evict_policy;
  max_steps : int;
      (** Per-execution operation budget; exceeding it is reported as the
          "stuck in an infinite loop" bug manifestation. *)
  max_executions : int;
      (** Safety valve on the total number of explored executions. *)
  jobs : int;
      (** Number of OCaml domains exploring the choice tree in parallel.
          [1] (the default) explores on the calling domain only. Exhaustive
          explorations report identical bugs, multi-rf and perf reports and
          identical statistics (other than [wall_time]) for every [jobs]
          value; runs cut short by [max_executions] or [stop_at_first_bug]
          may explore a different subset of executions per [jobs] value.
          With [jobs > 1] the scenario's [pre]/[post] closures run on
          several domains concurrently, so they must not share mutable
          OCaml state — all the bundled workloads derive their state from
          the per-execution {!Ctx.t}. *)
  stop_at_first_bug : bool;
  report_multi_rf : bool;
      (** Record loads that can read from more than one store — the paper's
          missing-flush debugging aid (§4, Debugging support). *)
  report_perf : bool;
      (** Record redundant flushes (of a line with nothing new to persist)
          and redundant fences (with nothing pending to order) — the
          performance-bug extension the paper suggests in §5.1. *)
  schedule_seed : int option;
      (** [None]: deterministic round-robin scheduling of {!Ctx.parallel}
          fibers (the paper does not explore schedules). [Some seed]: a
          deterministic seeded schedule — run the checker under many seeds to
          fuzz for concurrency bugs, the future-work use the paper names. *)
  region_base : Pmem.Addr.t;
  region_size : int;  (** Size in bytes of the simulated PM pool. *)
  trace_depth : int;
      (** How many recent events to keep for bug reports; [<= 0] disables
          tracing entirely (no event is recorded or formatted). *)
  analyze : bool;
      (** Run the full analysis-pass suite ({!Analysis.Missing_flush},
          {!Analysis.Torn_write}, {!Analysis.Redundant}, and — see
          [analyze_hb] — {!Analysis.Race}, {!Analysis.Robustness}) over
          every explored execution and surface the findings on the outcome.
          Off by default; [report_perf] alone runs only the
          redundant-flush/fence pass. *)
  analyze_hb : bool;
      (** With [analyze]: also run the happens-before passes
          ({!Analysis.Race}, {!Analysis.Robustness}) over a shared
          {!Analysis.Hb} view of the event stream. On by default; turning it
          off isolates the sanitizer-only overhead (the bench's [analysis]
          section uses this axis). Ignored when [analyze] is off. *)
  suppress : string list;
      (** Store labels whose analysis findings are acknowledged noise (e.g.
          a volatile-by-design lock word living on a persistent cache line).
          See {!Analysis.Engine.create}. *)
  snapshot : bool;
      (** Capture a resumable snapshot at each failure point the search
          considers, so replays of the crash subtree skip re-executing the
          pre-failure program and run only recovery (the reproduction of the
          paper's fork-based rollback — see {!Snapshot}). On by default;
          outcomes are byte-identical (modulo wall time) either way, so
          turning it off is only a debugging / benchmarking aid. *)
  memo : bool;
      (** Memoize post-failure crash states: at every injected failure the
          surviving persistent state is canonicalized into a digest (see
          {!Memo}), and when an equivalent state was already fully explored,
          its cached verdict (bugs, reports, execution counts) is recorded
          instead of replaying the recovery subtree. On by default; outcomes
          are byte-identical (modulo [wall_time] and the memo counters of
          {!Stats.t}) with the layer on or off, for every [jobs] value.
          Ignored when [stop_at_first_bug] is set — a run that stops mid-
          subtree must not credit whole cached subtrees, or its execution
          count would depend on the memo state. Also ignored when
          [step_deadline] is set — a wall-clock cancellation inside a
          recovery subtree would leak a nondeterministic verdict into the
          cache. *)
  wall_budget : float option;
      (** Wall-clock budget in seconds for the whole run. When it trips, the
          watchdog monitor requests a cooperative stop: every worker finishes
          its current replay, the unexplored frontier is preserved (and
          checkpointed when a checkpoint path is configured), and the partial
          outcome is reported with [Stats.interrupted] set. [None] (the
          default): unbounded. *)
  step_deadline : float option;
      (** Per-execution wall-clock deadline in seconds. Catches workloads
          that diverge while still issuing [Ctx] operations slower than
          [max_steps] counts them — or with [max_steps] effectively unbounded.
          A tripped deadline cancels only that execution, recording a
          {!Bug.Execution_timeout}; the exploration continues. Enforced by
          the monitor setting a cancel flag that the next [Ctx] operation
          observes, so a loop that never calls into [Ctx] cannot be cancelled
          (cancellation is cooperative). [None]: no deadline. *)
  mem_budget : int option;
      (** Soft memory budget in bytes, sampled from [Gc] statistics by the
          monitor. When the heap exceeds it, workers shed their memo and
          snapshot caches — correct but slower, never aborting — and the trip
          count surfaces as [Stats.sheds]. [None]: never shed. *)
  checkpoint_every : float;
      (** Seconds between periodic checkpoints when the explorer is given a
          checkpoint path; ignored otherwise. Default 30. *)
}

val default : t
(** [max_failures = 1], [Eager] eviction, 2M steps, 100k executions, 64 KiB
    region at 0x1000, multi-rf reporting on. *)

val pp : Format.formatter -> t -> unit
