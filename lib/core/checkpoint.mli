(** On-disk checkpoints: the durable unit of exploration progress.

    A checkpoint captures everything needed to continue a partially explored
    run: the {e unexplored frontier} (encoded {!Choice} prefixes — each pins
    an entire untouched subtree), the merged reports and statistics of the
    explored part, and a fingerprint of the configuration and workload that
    shaped the tree. Resuming pushes the frontier's subtrees back onto a
    fresh work queue; because every explored leaf is attributed to exactly
    one checkpointed-or-explored subtree, an interrupted-then-resumed run
    reports byte-identically to an uninterrupted one, for any [jobs] value
    and with the memo/snapshot layers on or off.

    {2 File format}

    A magic line ["jaaru-checkpoint-v2"], a CRC-32 line (8 hex digits) of the
    payload, then the {!Pmem.Wire} encoding of {!t} — the same hand-rolled
    structural format the memo keys use, with an explicit per-field codec
    instead of a [Marshal] image. Saves are atomic (write-temp-then-rename),
    so a crash mid-save leaves the previous checkpoint intact; a save that
    fails before the rename removes its temp file. Checkpoints are
    single-version: a format change bumps the magic and old files are
    {!Rejected}, never misread.

    {2 The fingerprint}

    CRC-32 over the workload name and every configuration field that shapes
    the choice tree or the reports ([max_failures], eviction policy,
    [max_steps], [max_executions], [stop_at_first_bug], report switches,
    [schedule_seed], region geometry, [trace_depth], [analyze], [suppress],
    [step_deadline]). Fields a resumed run may legitimately vary — [jobs],
    [snapshot], [memo], [wall_budget], [mem_budget], [checkpoint_every] —
    are excluded: outcomes are identical across them by construction. *)

exception Rejected of string
(** The file is not a usable checkpoint for this run: unreadable, corrupt
    (bad magic, checksum or payload), or fingerprint mismatch. The message
    says which. *)

type t = {
  fingerprint : string;
  frontier : string list;  (** encoded prefixes ({!Choice.encode_prefix}) *)
  bugs : Bug.t list;
  multi_rf : Ctx.multi_rf list;
  perf : Ctx.perf_report list;
  findings : Analysis.Report.finding list;
  stats : Stats.t;  (** merged statistics of the explored part *)
}

val fingerprint : workload:string -> Config.t -> string

val make :
  fingerprint:string ->
  frontier:string list ->
  bugs:Bug.t list ->
  multi_rf:Ctx.multi_rf list ->
  perf:Ctx.perf_report list ->
  findings:Analysis.Report.finding list ->
  stats:Stats.t ->
  t

val frontier_prefixes : t -> Choice.prefix list
(** Decoded frontier, in checkpoint order. Raises {!Rejected} on a corrupt
    prefix (also checked eagerly by {!load}). *)

val save : t -> string -> unit
(** Atomically writes the checkpoint to a path (temp file + rename). If the
    write fails before the rename, the temp file is removed and the original
    exception re-raised — a failed save never leaves a stale [.tmp] sibling
    behind. *)

val set_write_fault : (unit -> unit) option -> unit
(** Test hook: a function {!save} calls after the header and before the
    payload write. Tests inject a raise here to simulate a mid-save failure
    (full disk, kill) and assert that the temp file is cleaned up and the
    previous checkpoint survives. [None] (the default) disables it. *)

val load : string -> t
(** Reads and integrity-checks a checkpoint (magic, checksum, payload and
    frontier decodability). Raises {!Rejected} — {e not} validation against
    a run; call {!validate} for that. *)

val to_string : t -> string
(** The exact byte image {!save} writes (header plus payload) — the unit
    fleet workers ship over their stdout pipe instead of through a file. *)

val of_string : string -> t
(** Inverse of {!to_string}, with the same integrity checks as {!load}
    (magic, checksum, payload and frontier decodability). Raises
    {!Rejected}. *)

val validate : t -> workload:string -> config:Config.t -> unit
(** Raises {!Rejected} unless the checkpoint's fingerprint matches this
    workload and configuration. *)

val completed : t -> bool
(** Whether the frontier is empty — the run had fully finished when this
    checkpoint was written; resuming it is a no-op that reports the stored
    outcome. *)
