type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  workers : int;
  mutable waiting : int;  (* workers blocked in pop *)
  mutable closed : bool;
  hungry : int Atomic.t;  (* = waiting, readable without the lock *)
}

let create ~workers () =
  if workers <= 0 then invalid_arg "Frontier.create: workers must be positive";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    workers;
    waiting = 0;
    closed = false;
    hungry = Atomic.make 0;
  }

let push t task =
  Mutex.lock t.lock;
  (* Enqueue even after close: a stopping worker may donate a subtree in the
     window between the stop request and noticing it, and dropping the task
     would lose that subtree from the checkpointed frontier. Closed-queue
     leftovers are harvested by [drain_remaining]; [pop] never returns them. *)
  Queue.add task t.queue;
  if not t.closed then Condition.signal t.nonempty;
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

let needs_work t = Atomic.get t.hungry > 0

let drain_remaining t =
  Mutex.lock t.lock;
  let tasks = List.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  Mutex.unlock t.lock;
  tasks

let pop t =
  Mutex.lock t.lock;
  let rec wait () =
    if t.closed then None
    else if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.waiting + 1 = t.workers then begin
      (* Every worker is here and the queue is empty: nobody can produce
         work any more, so the exploration is complete. *)
      t.closed <- true;
      Condition.broadcast t.nonempty;
      None
    end
    else begin
      t.waiting <- t.waiting + 1;
      Atomic.incr t.hungry;
      Condition.wait t.nonempty t.lock;
      t.waiting <- t.waiting - 1;
      Atomic.decr t.hungry;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.lock;
  r
