(** Crash-state memoization: canonical digests of post-failure persistent
    states and a per-worker table of cached recovery verdicts.

    Two different pre-failure paths frequently crash into {e semantically
    identical} persistent states — e.g. sibling store-buffer drain cuts that
    happen to persist the same bytes. Recovery is a deterministic function of
    the surviving persistent state (plus the schedule PRNG), so once one such
    subtree has been fully explored its verdict — bug reports, read-from
    counts, execution counts — can be replayed from cache instead of
    re-exploring the recovery subtree.

    {2 The canonical key}

    The key serializes everything recovery can observe:

    - every execution record on the stack (top first): for each written byte,
      the visible store history as [(seq rank, value, label)] triples; for
      each cache line, its last-writeback interval as seq ranks — lines still
      at the default [\[0, inf)] are skipped, so a materialized-but-untouched
      line equals an absent one;
    - the bounded trace ring (raw events, oldest first) and its dropped
      count — cached bug reports embed the rendered trace, so states with
      different trace histories must not collide;
    - the failure count, the last executed label and the schedule-PRNG state.

    The serialized form is a hand-rolled wire image ({!Pmem.Wire}:
    fixed-width ints, length-prefixed strings, count-prefixed sequences) of
    the normalized value, built in a reusable per-worker scratch buffer. The
    encoding is injective, so equal bytes mean structurally equal states —
    the property the previous [Marshal] [No_sharing] image provided — and
    the probe, which runs at every committed crash, pays neither Marshal's
    generic traversal nor any text formatting.

    Sequence numbers are {e rank-normalized} before serialization: every
    finite seq appearing anywhere in the state (store seqs, interval bounds)
    is replaced by its rank in the sorted set of such seqs, with [0] fixed to
    rank 0 and {!Pmem.Interval.infinity} to a distinct top marker. The
    read-from analysis only ever {e compares} seqs ([mem], [next_seq_after],
    [count_le]); it never does arithmetic on them — so two states whose seqs
    are order-isomorphic behave identically in recovery. Without this, an
    extra [sfence] on one path would consume a sequence number and spuriously
    distinguish byte-identical states.

    Digests are CRC-32 of the serialized key; collisions are resolved by
    comparing the full key bytes, so a digest collision costs a miss-speed
    lookup, never a wrong verdict. *)

type verdict = {
  v_executions : int;
      (** Executions the cached subtree took — credited to the hitting run's
          statistics and capped against the remaining execution budget. *)
  v_rf_created : int;
      (** Fresh read-from decisions the subtree created, for the
          [rf_created] statistic. *)
  v_bugs : Bug.t list;
  v_multi_rf : Ctx.multi_rf list;
  v_perf : Ctx.perf_report list;
  v_findings : Analysis.Report.finding list;
      (** Reports the subtree produced, in canonical (sorted) order. Reports
          from the storing subtree's {e pre-crash} prefix are included —
          they deduplicate against the copies the storing worker already
          holds, and a hitting replay shares the bug-relevant pre-crash
          history by construction (it is part of the key). *)
}
(** Everything the explorer needs to account for a fully-explored recovery
    subtree without replaying it. *)

exception Hit of verdict
(** Raised by the explorer's crash hook to abort a replay whose post-crash
    subtree is already memoized. *)

val canonical_key :
  ?scratch:Pmem.Wire.sink ->
  stack:Exec.Exec_stack.t ->
  trace:Trace.t ->
  dropped:int ->
  failures:int ->
  rng:int ->
  last:string ->
  unit ->
  string
(** The canonical serialization of a crash state, built from the context's
    accessors at the moment the crash commits (after buffered-drain
    decisions). Deterministic: independent of hash-table iteration order, of
    absolute sequence-number values and of trace-ring label intern order.
    [scratch] is the reusable construction buffer (see {!scratch}); omitting
    it allocates a fresh one. *)

val digest : string -> int
(** CRC-32 of a canonical key. *)

(** {1 Per-worker tables}

    Each explorer worker owns one table; workers never share verdicts, which
    keeps the layer lock-free and the parallel output deterministic. Tables
    are bounded: once full, new verdicts are dropped (existing entries keep
    hitting). *)

type table

val create_table : ?capacity:int -> unit -> table
(** [capacity] defaults to 8192 verdicts. *)

val scratch : table -> Pmem.Wire.sink
(** The table's per-worker key-construction buffer, for passing back to
    {!canonical_key}. Reused (reset) on every call that receives it. *)

val find : table -> digest:int -> key:string -> verdict option
(** Full-key comparison behind the digest bucket — never trusts the CRC
    alone. *)

val store : table -> digest:int -> key:string -> verdict -> unit
(** No-op when the table is full or the key is already present. *)

val stored : table -> int
(** Number of verdicts currently held (diagnostic). *)

val clear : table -> unit
(** Drops every cached verdict (memory-pressure shedding — see
    [Config.mem_budget]). Sound: a cleared table only costs future misses,
    and the capacity is freed for new verdicts. *)

(** {1 Test hook} *)

val set_key_transform : (string -> string) option -> unit
(** Test-only: post-compose a transform onto {!canonical_key}. Installing a
    lossy transform (e.g. [fun _ -> "X"]) deliberately breaks the key so the
    differential property test can confirm it detects unsound memoization.
    [None] restores the identity. Not for production use. *)
