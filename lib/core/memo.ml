(* Crash-state memoization: canonical keys, digests and per-worker verdict
   tables. See memo.mli for the soundness argument; the short version is that
   recovery is a deterministic function of (persistent state, trace ring,
   failure count, schedule PRNG), all of which the key serializes, and that
   sequence numbers are only ever *compared* by the read-from analysis, so
   rank-normalizing them keeps order-isomorphic states together. *)

type verdict = {
  v_executions : int;
  v_rf_created : int;
  v_bugs : Bug.t list;
  v_multi_rf : Ctx.multi_rf list;
  v_perf : Ctx.perf_report list;
  v_findings : Analysis.Report.finding list;
}

exception Hit of verdict

(* Test-only hook: a lossy transform here deliberately merges distinct keys
   so the differential test can prove it would catch unsound memoization. *)
let key_transform : (string -> string) option ref = ref None
let set_key_transform f = key_transform := f

(* The key is a hand-rolled wire serialization (length-prefixed ints and
   strings, see {!Pmem.Wire}) of everything recovery can observe. The wire
   encoding is injective — every field is fixed-width or length-prefixed and
   every variable-length sequence is count-prefixed — so equal bytes mean
   structurally equal states, exactly the property the old [Marshal]
   [No_sharing] image provided, without Marshal's block-header bookkeeping
   and with the output accumulating in a caller-provided scratch buffer that
   a worker reuses across every crash it probes. *)

let canonical_key ?scratch ~stack ~trace ~dropped ~failures ~rng ~last () =
  let records = Exec.Exec_stack.to_list stack in
  (* Pass 1: rank-normalize sequence numbers. Collect every finite seq the
     state mentions — store seqs and interval bounds — and map them to dense
     ranks by order. 0 stays 0 (the "since forever" lower bound) and
     Interval.infinity gets a distinct top marker; both appear with meanings
     independent of the counter, so they must not participate in ranking. *)
  let seen = Hashtbl.create 256 in
  let note s = if s <> 0 && s <> Pmem.Interval.infinity then Hashtbl.replace seen s () in
  List.iter
    (fun r ->
      List.iter
        (fun addr ->
          match Exec.Exec_record.visible_stores r addr with
          | None -> ()
          | Some (q, n) ->
              for i = 0 to n - 1 do
                note (Exec.Store_queue.seq_at q i)
              done)
        (Exec.Exec_record.written_addrs r);
      Exec.Exec_record.fold_lines
        (fun _line ~lo ~hi () ->
          note lo;
          note hi)
        r ())
    records;
  let sorted = List.sort_uniq compare (Hashtbl.fold (fun s () acc -> s :: acc) seen []) in
  let ranks = Hashtbl.create 256 in
  List.iteri (fun i s -> Hashtbl.add ranks s (i + 1)) sorted;
  let rank s =
    if s = 0 then 0
    else if s = Pmem.Interval.infinity then -1 (* top marker, below any real rank *)
    else Hashtbl.find ranks s
  in
  (* Pass 2: serialize, with every hash-table enumeration sorted and seqs
     replaced by ranks. *)
  let sink = match scratch with Some s -> Pmem.Wire.reset s; s | None -> Pmem.Wire.sink () in
  Pmem.Wire.int sink failures;
  Pmem.Wire.int sink rng;
  Pmem.Wire.string sink last;
  Pmem.Wire.int sink dropped;
  Trace.serialize trace sink;
  Pmem.Wire.int sink (List.length records);
  List.iter
    (fun r ->
      Pmem.Wire.bool sink (Exec.Exec_record.is_initial r);
      let addrs = List.sort compare (Exec.Exec_record.written_addrs r) in
      Pmem.Wire.int sink (List.length addrs);
      List.iter
        (fun addr ->
          Pmem.Wire.int sink addr;
          match Exec.Exec_record.visible_stores r addr with
          | None -> Pmem.Wire.int sink 0 (* written_addrs only lists non-empty *)
          | Some (q, n) ->
              Pmem.Wire.int sink n;
              for i = 0 to n - 1 do
                Pmem.Wire.int sink (rank (Exec.Store_queue.seq_at q i));
                Pmem.Wire.int sink (Exec.Store_queue.value_at q i);
                Pmem.Wire.string sink (Exec.Store_queue.label_at q i)
              done)
        addrs;
      let lines =
        List.sort compare
          (Exec.Exec_record.fold_lines
             (fun line ~lo ~hi acc ->
               (* A materialized line still at [0, inf) reads identically to
                  an absent one — skip it or identical states would differ. *)
               if lo = 0 && hi = Pmem.Interval.infinity then acc
               else (line, rank lo, rank hi) :: acc)
             r [])
      in
      Pmem.Wire.int sink (List.length lines);
      List.iter
        (fun (line, lo, hi) ->
          Pmem.Wire.int sink line;
          Pmem.Wire.int sink lo;
          Pmem.Wire.int sink hi)
        lines)
    records;
  let key = Pmem.Wire.contents sink in
  match !key_transform with None -> key | Some f -> f key

let digest = Pmem.Crc32.digest_string

type table = {
  buckets : (int, (string * verdict) list) Hashtbl.t;
      (* digest -> assoc list; the full-key compare makes CRC collisions
         harmless (they just miss). *)
  capacity : int;
  mutable size : int;
  scratch : Pmem.Wire.sink;
      (* per-worker key-construction buffer, reused across every crash this
         table's worker probes *)
}

let create_table ?(capacity = 8192) () =
  { buckets = Hashtbl.create 512; capacity; size = 0; scratch = Pmem.Wire.sink () }

let scratch t = t.scratch

let find t ~digest ~key =
  match Hashtbl.find_opt t.buckets digest with
  | None -> None
  | Some entries -> List.assoc_opt key entries

let store t ~digest ~key v =
  if t.size < t.capacity then
    let entries = Option.value ~default:[] (Hashtbl.find_opt t.buckets digest) in
    if not (List.mem_assoc key entries) then begin
      Hashtbl.replace t.buckets digest ((key, v) :: entries);
      t.size <- t.size + 1
    end

let stored t = t.size

let clear t =
  Hashtbl.reset t.buckets;
  t.size <- 0
