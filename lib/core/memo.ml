(* Crash-state memoization: canonical keys, digests and per-worker verdict
   tables. See memo.mli for the soundness argument; the short version is that
   recovery is a deterministic function of (persistent state, trace ring,
   failure count, schedule PRNG), all of which the key serializes, and that
   sequence numbers are only ever *compared* by the read-from analysis, so
   rank-normalizing them keeps order-isomorphic states together. *)

type verdict = {
  v_executions : int;
  v_rf_created : int;
  v_bugs : Bug.t list;
  v_multi_rf : Ctx.multi_rf list;
  v_perf : Ctx.perf_report list;
  v_findings : Analysis.Report.finding list;
}

exception Hit of verdict

(* Test-only hook: a lossy transform here deliberately merges distinct keys
   so the differential test can prove it would catch unsound memoization. *)
let key_transform : (string -> string) option ref = ref None
let set_key_transform f = key_transform := f

(* The normalized form of one execution record: is-initial tag, per-address
   visible store history as (seq rank, value, label), addresses sorted, and
   the non-default line intervals as (line, lo rank, hi rank), sorted. *)
type norm_record = bool * (int * (int * int * string) list) list * (int * int * int) list

(* Everything recovery can observe, as a plain immutable value. The key is
   its Marshal image: [No_sharing] makes the bytes purely structural (equal
   values marshal identically regardless of physical sharing), and
   marshalling skips the formatting cost a textual serialization would pay
   at every crash. *)
type norm_state = {
  n_failures : int;
  n_rng : int;
  n_last : string;
  n_dropped : int;
  n_trace : Analysis.Event.t list;
  n_records : norm_record list;
}

let canonical_key ~stack ~trace ~dropped ~failures ~rng ~last =
  let records = Exec.Exec_stack.to_list stack in
  (* Pass 1: rank-normalize sequence numbers. Collect every finite seq the
     state mentions — store seqs and interval bounds — and map them to dense
     ranks by order. 0 stays 0 (the "since forever" lower bound) and
     Interval.infinity gets a distinct top marker; both appear with meanings
     independent of the counter, so they must not participate in ranking. *)
  let seen = Hashtbl.create 256 in
  let note s = if s <> 0 && s <> Pmem.Interval.infinity then Hashtbl.replace seen s () in
  List.iter
    (fun r ->
      List.iter
        (fun addr ->
          Exec.Exec_record.fold_stores
            (fun (e : Exec.Store_queue.entry) () -> note e.seq)
            r addr ())
        (Exec.Exec_record.written_addrs r);
      Exec.Exec_record.fold_lines
        (fun _line iv () ->
          note (Pmem.Interval.lo iv);
          note (Pmem.Interval.hi iv))
        r ())
    records;
  let sorted = List.sort_uniq compare (Hashtbl.fold (fun s () acc -> s :: acc) seen []) in
  let ranks = Hashtbl.create 256 in
  List.iteri (fun i s -> Hashtbl.add ranks s (i + 1)) sorted;
  let rank s =
    if s = 0 then 0
    else if s = Pmem.Interval.infinity then -1 (* top marker, below any real rank *)
    else Hashtbl.find ranks s
  in
  (* Pass 2: normalize (hash-table enumerations sorted, seqs replaced by
     ranks) and marshal. *)
  let norm_record r : norm_record =
    let addrs =
      List.sort compare
        (List.map
           (fun addr ->
             let entries =
               List.rev (Exec.Exec_record.fold_stores (fun e acc -> e :: acc) r addr [])
             in
             ( addr,
               List.map
                 (fun (e : Exec.Store_queue.entry) -> (rank e.seq, e.value, e.label))
                 entries ))
           (Exec.Exec_record.written_addrs r))
    in
    let lines =
      List.sort compare
        (Exec.Exec_record.fold_lines
           (fun line iv acc ->
             let lo = Pmem.Interval.lo iv and hi = Pmem.Interval.hi iv in
             (* A materialized line still at [0, inf) reads identically to an
                absent one — skip it or identical states would differ. *)
             if lo = 0 && hi = Pmem.Interval.infinity then acc
             else (line, rank lo, rank hi) :: acc)
           r [])
    in
    (Exec.Exec_record.is_initial r, addrs, lines)
  in
  let norm =
    {
      n_failures = failures;
      n_rng = rng;
      n_last = last;
      n_dropped = dropped;
      n_trace = trace;
      n_records = List.map norm_record records;
    }
  in
  let key = Marshal.to_string norm [ Marshal.No_sharing ] in
  match !key_transform with None -> key | Some f -> f key

let digest = Pmem.Crc32.digest_string

type table = {
  buckets : (int, (string * verdict) list) Hashtbl.t;
      (* digest -> assoc list; the full-key compare makes CRC collisions
         harmless (they just miss). *)
  capacity : int;
  mutable size : int;
}

let create_table ?(capacity = 8192) () =
  { buckets = Hashtbl.create 512; capacity; size = 0 }

let find t ~digest ~key =
  match Hashtbl.find_opt t.buckets digest with
  | None -> None
  | Some entries -> List.assoc_opt key entries

let store t ~digest ~key v =
  if t.size < t.capacity then
    let entries = Option.value ~default:[] (Hashtbl.find_opt t.buckets digest) in
    if not (List.mem_assoc key entries) then begin
      Hashtbl.replace t.buckets digest ((key, v) :: entries);
      t.size <- t.size + 1
    end

let stored t = t.size

let clear t =
  Hashtbl.reset t.buckets;
  t.size <- 0
