(** The replay DFS over nondeterministic choices.

    Jaaru explores a failure scenario by re-running it from scratch under a
    recorded list of decisions (stateless-model-checking replay — the
    substitute for the paper's fork-based rollback). Each nondeterministic
    point in an execution — inject a failure or not, which store a load reads
    from, how much of the store buffer drains at a crash — consults this
    stack: decisions inside the recorded prefix are replayed, fresh ones
    default to alternative 0 and are recorded. After each replay, {!advance}
    flips the deepest unexhausted decision, depth-first, until the whole tree
    has been visited. *)

type kind = Failure_point | Read_from | Drain
(** What a decision was about — kept for statistics and debug output. *)

exception Divergence of string
(** A replayed decision saw a different shape than when it was recorded —
    the program under test is nondeterministic (e.g. it consulted wall-clock
    time or hash-table iteration order). *)

type t

val create : unit -> t

val begin_replay : t -> unit
(** Rewinds the cursor to the start of the recorded prefix. *)

val choose : t -> kind -> int -> int
(** [choose t kind n] returns the alternative (in [0, n-1]) for the decision
    at the cursor. Raises [Invalid_argument] on [n <= 0] and {!Divergence}
    when a replayed decision sees a different [kind] or [n] than when it was
    recorded. *)

val advance : t -> bool
(** Truncates the record to the decisions actually consumed by the last
    replay, then steps to the next unexplored leaf. [false] when the search
    space is exhausted. *)

val depth : t -> int
(** Decisions consumed by the current replay so far. *)

val recorded_len : t -> int
(** Length of the recorded decision prefix — after {!advance}, the index of
    the flipped decision plus one. A subtree rooted at depth [d] has been
    fully explored exactly when [recorded_len] drops to [d] or below (the
    lexicographic increment moved above it). *)

val count_kind : t -> kind -> int
(** Decisions of a kind in the current record (diagnostic). *)

val created : t -> kind -> int
(** Cumulative count of fresh decisions of a kind created over the whole
    exploration (never decreases on truncation). Decisions replayed out of a
    resumed prefix are {e not} counted again — summing [created] across the
    workers of a parallel exploration equals the sequential count. *)

(** {1 Snapshot keys}

    A snapshot of the state at a decision point is identified by the exact
    decisions that led there: any replay whose recorded decisions begin with
    the same [(kind, num, chosen)] triples deterministically reaches the same
    state, so it can skip re-executing the program up to that point. *)

val step : t -> int -> kind * int * int
(** [(kind, num, chosen)] of consumed decision [i]. Raises
    [Invalid_argument] unless [0 <= i < depth t]. *)

val consumed : t -> (kind * int * int) array
(** The decisions consumed by the replay so far, shallowest first — the
    snapshot key of the current point. *)

val recorded_matches : t -> (kind * int * int) array -> bool
(** Whether the recorded decisions of the upcoming replay begin with exactly
    the given key — i.e. this replay is guaranteed to pass through the
    key's decision point. Call after {!begin_replay}, before replaying. *)

val classify_recorded : t -> (kind * int * int) array -> [ `Match | `Passed | `Keep ]
(** Like {!recorded_matches}, but also detects keys the depth-first search
    has left behind. [`Match]: the recorded decisions begin with the key.
    [`Passed]: at the first divergence the key's chosen alternative is
    smaller than the recorded one (same kind and width) — since {!advance}
    is a lexicographic increment, no future replay of this searcher can
    match, and a cache may drop the key's snapshot. [`Keep]: neither, e.g.
    the key lies ahead of the current path. Call after {!begin_replay}. *)

val fast_forward : t -> int -> unit
(** Moves the cursor to recorded decision [n] without consuming the cells in
    between — the replay resumes as if the first [n] decisions had been
    taken. Only meaningful after {!recorded_matches} succeeded on a key of
    length [n]. Raises [Invalid_argument] when [n] is behind the cursor or
    beyond the recorded prefix. *)

(** {1 Prefixes: forking subtrees for parallel exploration}

    A prefix pins the first decisions of an execution: cells below [frozen]
    are replayed verbatim and never advanced; the remaining cells (in
    practice exactly one, the forked decision) start at [chosen] and are
    advanced up to [limit - 1] as usual. A searcher resumed from a prefix
    therefore explores exactly the subtrees of the alternatives
    [\[chosen, limit)] of the forked decision — the other side of a
    {!split}. *)

type prefix

val root : prefix
(** The empty prefix: resuming from it is a full sequential exploration. *)

val prefix_depth : prefix -> int
(** Number of pinned cells; [0] only for {!root}. *)

val prefix_frozen : prefix -> int
(** Number of leading cells that {!advance} may never flip. *)

val prefix_cells : prefix -> (kind * int * int * int) list
(** [(kind, num, chosen, limit)] per cell, shallowest first. *)

val prefix_of_cells : frozen:int -> (kind * int * int * int) list -> prefix
(** Inverse of {!prefix_cells}. Raises [Invalid_argument] unless every cell
    satisfies [0 <= chosen < limit <= num] and [0 <= frozen <= length]. *)

val encode_prefix : prefix -> string
(** A compact printable encoding, e.g. ["2;F2:0:1;R3:1:2;D4:2:4"] — suitable
    for handing subtree tasks to another process. *)

val decode_prefix : string -> prefix option
(** Inverse of {!encode_prefix}; [None] on malformed or invalid input. *)

val resume_from_prefix : prefix -> t
(** A fresh searcher over the subtree the prefix describes. Replays the
    pinned decisions first, then explores depth-first exactly as {!create}
    would, never flipping a frozen cell. [resume_from_prefix root] is
    equivalent to {!create}. *)

val remainder : t -> prefix
(** The searcher's entire unexplored subtree as a resumable prefix:
    [resume_from_prefix (remainder t)] explores exactly the leaves [t] had
    left. The basis of checkpointing — a worker asked to stop cooperatively
    captures [remainder] instead of replaying. Call it where a fresh replay
    would start (after a successful {!advance}, or on a just-resumed
    searcher before any replay); raises [Invalid_argument] if some recorded
    cell is exhausted ([chosen >= limit]), which cannot happen at those
    points. [remainder] of a fresh {!create} (or of [resume_from_prefix
    root]) is {!root}. *)

val split_prefix : prefix -> (prefix * prefix) option
(** The static counterpart of {!split}: carves the sibling alternatives of
    the shallowest non-frozen wide cell ([chosen + 1 < limit]) out of an
    encoded prefix without replaying anything. [Some (kept, donated)] covers
    exactly the subtree of the input — [kept] continues the recorded path
    with the wide cell's range shrunk to its current choice, [donated] pins
    the path up to that cell and owns the alternatives [\[chosen+1, limit)] —
    and the two are disjoint. [None] when no cell is splittable (the prefix
    pins a single undived path, e.g. {!root} or a fully singleton prefix).
    The fleet coordinator uses this to shatter a checkpoint frontier into
    more shards than the run that wrote it had workers. *)

val split : t -> prefix option
(** Donates the unexplored sibling range of the shallowest splittable
    decision: picks the shallowest non-frozen on-path cell with alternatives
    [chosen + 1 < limit], returns a prefix covering [\[chosen + 1, limit)] of
    that cell, and shrinks the local [limit] so this searcher never visits
    the donated subtrees. [None] when the current path has nothing left to
    donate. Call it between {!advance} and the next replay (or after a
    completed replay): only decisions consumed by the last replay are
    considered. *)
