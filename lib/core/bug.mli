(** Bug manifestations and reports.

    Jaaru reports bugs that have a visible manifestation (paper §5.1): a
    segmentation-fault-like illegal memory access, an assertion failure inside
    the program under test, getting stuck in an infinite loop, or an
    unexpected program exception. *)

type kind =
  | Illegal_access of { addr : Pmem.Addr.t; width : int; op : string }
      (** A load or store outside the PM region — the model's segmentation
          fault. [op] is ["load"] or ["store"]. *)
  | Assertion_failure of string
  | Infinite_loop of { steps : int }
  | Program_exception of string
      (** The program under test raised an unexpected OCaml exception. *)
  | Step_limit of { resource : string }
      (** The replay blew a checker resource budget ([Stack_overflow] /
          [Out_of_memory]); [resource] names which ("stack" or "memory").
          Distinct from {!Program_exception} so deduplication and suppression
          treat runaway resource usage separately from real program
          exceptions. *)
  | Execution_timeout of { seconds : float }
      (** One execution exceeded the per-execution wall-clock deadline
          ({!Config.step_deadline}) and was cancelled by the watchdog monitor.
          Catches workloads that diverge between [Ctx] operations faster than
          [max_steps] can see; [seconds] is the configured deadline, so the
          report is deterministic even though the trigger is wall-clock. *)

type t = {
  kind : kind;
  location : string;  (** source label of the faulting operation *)
  exec_depth : int;  (** how many failures had been injected when it fired *)
  trace : string list;  (** recent events, oldest first *)
  dropped : int;
      (** events older than the trace window that the bounded ring discarded;
          surfaced by {!pp} as "… N earlier events dropped" *)
}

exception Found of kind * string
(** Raised inside a checked program to signal a bug at a location; the
    explorer catches it and records a {!t}. *)

val symptom : t -> string
(** One-line symptom in the style of the paper's Fig. 12/15 tables, e.g.
    "Illegal memory access at btree_map.ml:89". *)

val same_report : t -> t -> bool
(** Deduplication: same kind shape and location (the paper conservatively
    groups failure points with the same symptom as one bug). *)

val report_key : t -> int * string
(** The identity {!same_report} compares — a hashtable key for
    deduplicating reports without a quadratic scan. *)

val normalize_message : string -> string
(** Canonicalizes a {!Program_exception} message for stable dedup keys:
    first line only, hexadecimal runs (heap addresses from [Printexc]
    printers) rewritten to [0x<addr>], length bounded. *)

val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
