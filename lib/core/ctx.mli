(** The checker context: the API a persistent-memory program is written
    against.

    Where the original Jaaru instruments loads, stores, flushes and fences
    with an LLVM pass, programs checked by this reproduction call these
    functions directly. Each operation feeds the same event stream into the
    model-checking algorithm: stores and flushes pass through the TSO store
    buffer of the calling thread, loads consult the execution stack through
    the constraint-refinement read-from analysis, and flush instructions are
    failure-injection points.

    All [addr] arguments are byte addresses inside the context's PM region;
    accesses outside it raise {!Bug.Found} with an [Illegal_access] — the
    model's segmentation fault. The optional [?label] arguments play the role
    of source locations in bug reports (e.g. ["btree_map.ml:89"]). *)

type t

exception Power_failure
(** Raised at an injected failure; handled by the explorer. Never catch it in
    a checked program. *)

type multi_rf = {
  load_label : string;
  load_addr : Pmem.Addr.t;
  candidates : (string * int) list;  (** store label, byte value *)
}
(** A load observed to have more than one read-from candidate — the paper's
    missing-flush debugging report. *)

type perf_kind =
  | Redundant_flush  (** flushing a line with no new stores to persist *)
  | Redundant_fence  (** an sfence with nothing pending to order *)

type perf_report = { perf_kind : perf_kind; perf_label : string }
(** A performance issue — the extension the paper suggests for finding the
    redundant-flush/fence bugs reported by PMTest and XFDetector. *)

(** {1 Lifecycle (used by the explorer; not by checked programs)} *)

val create :
  ?snapshots:Snapshot.cache ->
  ?cancel:bool Atomic.t ->
  ?trace_labels:Analysis.Arena.labels ->
  ?trace_ring:Trace.t ->
  config:Config.t ->
  choice:Choice.t ->
  unit ->
  t
(** [snapshots] is the owning worker's failure-point snapshot cache: when
    present, every failure point the execution considers captures a
    resumable snapshot into it (see {!Snapshot}). Omitted (e.g. with
    [config.snapshot] off), executions always run from the start.

    [trace_labels] is the worker's trace-ring label intern table. Snapshots
    hold trace rings across replays, and a ring can only be restored from
    one encoded against the same table — a worker that reuses a snapshot
    cache across contexts must pass one table to all of them.

    [trace_ring] is an optional pooled ring the context clears and adopts
    instead of allocating its own — a ring of [trace_depth] packed cells is
    a major-heap allocation, so a worker replaying many executions should
    create one ring (against its [trace_labels] table) and pass it to every
    context. Its depth must equal [config.trace_depth] ([Invalid_argument]
    otherwise), and [trace_labels] is ignored in its favour.

    [cancel] is the worker's watchdog flag: when the monitor sets it (the
    execution blew [Config.step_deadline]), the next {!step} consumes the
    flag and raises {!Bug.Found} with {!Bug.Execution_timeout}. Cancellation
    is cooperative — code that never issues a [Ctx] operation cannot be
    interrupted. *)

val resume_from_snapshot : t -> Snapshot.t -> unit
(** Puts a freshly created context into the exact post-crash state of the
    snapshot: restored execution stack, sequence counter, thread buffers and
    trace ring, decision cursor fast-forwarded past the snapshot's key, the
    buffered-drain decisions replayed live on the restored buffers, and the
    crash event emitted. The caller then runs recovery exactly as if the
    pre-failure program had been re-executed. The context's recorded
    decisions must begin with the snapshot's key
    ({!Snapshot.find} guarantees it). *)

val set_failure_point_hook : t -> (string -> unit) -> unit
(** Invoked (with the flush label) at every failure-injection point that is
    considered, before the fail/continue decision. Used by the Yat baseline
    to snapshot the pre-failure state at each point. *)

val set_crash_hook : t -> (unit -> unit) -> unit
(** Invoked at every committed crash — a taken {!failure_point} branch,
    {!crash}, or the restored crash of {!resume_from_snapshot} — after the
    surviving persistent state is final (buffered-drain decisions taken,
    crash event emitted) and before the failure counter advances. The
    explorer's crash-state memoization probe; it may raise (e.g.
    {!Memo.Hit}) to abort the replay instead of running recovery.
    [install_concrete_state] does not fire it (the eager baseline manages its
    own enumeration). *)

val rng_state : t -> int
(** The current schedule-fuzzing PRNG state (0 when [schedule_seed] is
    unset). Part of the canonical crash-state key: two crash states only
    behave identically in recovery if their schedules continue identically. *)

(** [install_concrete_state ctx bytes] is the eager-baseline bridge: it
    records the given byte values as fully persisted stores of the current
    execution, then simulates a power failure so that a following recovery
    run reads exactly this concrete persistent-memory image. Counts as one
    injected failure. *)
val install_concrete_state : t -> (Pmem.Addr.t * int) list -> unit
val finish_execution : t -> unit
val after_crash : t -> unit
val fp_count : t -> int
val multi_rf_reports : t -> multi_rf list

val perf_reports : t -> perf_report list
(** Legacy view of the {!Analysis.Redundant} pass findings (empty when
    [config.report_perf] is false). *)

val analysis_findings : t -> Analysis.Report.finding list
(** Everything the configured analysis passes reported for this execution:
    deduplicated, label-suppressed ([config.suppress]) and sorted. The
    passes run only when [config.analyze] (full suite) or
    [config.report_perf] (redundant pass only) is set. *)

val trace_events : t -> string list
(** Rendered trace-ring events, oldest first. Rendering happens here, not at
    emission — an execution that reports no bug never formats a string. *)

val trace_raw : t -> Analysis.Event.t list
(** The same ring decoded to boxed events, oldest first. *)

val trace_ring : t -> Trace.t
(** The packed ring itself — for the crash-state memoization key, which must
    incorporate the trace (cached bug reports embed it) but runs at every
    crash and must pay neither decoding nor formatting. *)

val trace_dropped : t -> int
(** How many older events fell out of the bounded trace ring. *)

val last_label : t -> string
val exec_stack : t -> Exec.Exec_stack.t
val failures : t -> int

(** {1 Program-facing API} *)

val config : t -> Config.t
val region : t -> Pmem.Region.t

val in_recovery : t -> bool
(** Whether at least one failure has been injected — lets one [main] function
    serve as both the pre- and post-failure program. *)

val store : t -> ?label:string -> width:int -> Pmem.Addr.t -> int -> unit
val load : t -> ?label:string -> width:int -> Pmem.Addr.t -> int

val store8 : t -> ?label:string -> Pmem.Addr.t -> int -> unit
val store16 : t -> ?label:string -> Pmem.Addr.t -> int -> unit
val store32 : t -> ?label:string -> Pmem.Addr.t -> int -> unit
val store64 : t -> ?label:string -> Pmem.Addr.t -> int -> unit
val load8 : t -> ?label:string -> Pmem.Addr.t -> int
val load16 : t -> ?label:string -> Pmem.Addr.t -> int
val load32 : t -> ?label:string -> Pmem.Addr.t -> int
val load64 : t -> ?label:string -> Pmem.Addr.t -> int

val clflush : t -> ?label:string -> Pmem.Addr.t -> int -> unit
(** [clflush ctx addr size] issues one [clflush] instruction per cache line
    covering [\[addr, addr+size)]. Each instruction is a failure-injection
    point. *)

val clflushopt : t -> ?label:string -> Pmem.Addr.t -> int -> unit

val clwb : t -> ?label:string -> Pmem.Addr.t -> int -> unit
(** Same reordering semantics as {!clflushopt} (paper §2), but traces and
    analysis passes see the distinct {!Analysis.Event.Clwb} kind. *)

val sfence : t -> ?label:string -> unit -> unit
val mfence : t -> ?label:string -> unit -> unit

val memset : t -> ?label:string -> Pmem.Addr.t -> int -> int -> unit
(** [memset ctx addr byte len] stores [byte] over [len] bytes (64-bit chunks
    where possible), without flushing. *)

val memcpy : t -> ?label:string -> dst:Pmem.Addr.t -> src:Pmem.Addr.t -> int -> unit
(** Byte copy within the region, without flushing. Forward-overlapping
    ranges are rejected. *)

val memset_persist : t -> ?label:string -> Pmem.Addr.t -> int -> int -> unit
val memcpy_persist : t -> ?label:string -> dst:Pmem.Addr.t -> src:Pmem.Addr.t -> int -> unit
(** The pmem_memcpy_persist / pmem_memset_persist idiom: the bulk write
    followed by clwb of every touched line and an sfence. *)

val cas64 : t -> ?label:string -> Pmem.Addr.t -> expected:int -> desired:int -> bool
(** Locked compare-and-swap: atomic [mfence; load; conditional store; mfence]
    (paper §4, Locked RMW instructions). Returns whether the swap happened. *)

val xchg64 : t -> ?label:string -> Pmem.Addr.t -> int -> int
(** Atomic exchange; returns the previous value. *)

val fetch_add64 : t -> ?label:string -> Pmem.Addr.t -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val check : t -> ?label:string -> bool -> string -> unit
(** [check ctx cond msg] is the program-under-test assertion: raises
    {!Bug.Found} with [Assertion_failure msg] when [cond] is false. *)

val abort : t -> ?label:string -> string -> 'a
(** Unconditional assertion failure. *)

val parallel : t -> ?label:string -> (t -> unit) list -> unit
(** Runs the given thread bodies under the deterministic round-robin
    scheduler, each with its own store and flush buffer. Returns when all
    complete. Emits {!Analysis.Event.Thread_start} for each spawned thread
    before any body runs and {!Analysis.Event.Thread_join} after all bodies
    complete (joins are not emitted when a power failure unwinds the
    section); [label] tags those events, default ["parallel"]. *)

val crash : t -> 'a
(** Unconditionally injects a power failure at this exact point. With
    [max_failures = 0] this is the only failure in the scenario — the
    litmus-test idiom for asking "what exactly can recovery observe if power
    is lost precisely here?". *)

val progress : t -> ?label:string -> unit -> unit
(** Charges one step against the loop budget without touching memory — call
    inside volatile-only loops so genuine infinite loops are still caught. *)
