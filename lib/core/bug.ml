type kind =
  | Illegal_access of { addr : Pmem.Addr.t; width : int; op : string }
  | Assertion_failure of string
  | Infinite_loop of { steps : int }
  | Program_exception of string

type t = {
  kind : kind;
  location : string;
  exec_depth : int;
  trace : string list;
  dropped : int;
}

exception Found of kind * string

let pp_kind ppf = function
  | Illegal_access { addr; width; op } ->
      Format.fprintf ppf "illegal %d-byte %s at address %a" width op Pmem.Addr.pp addr
  | Assertion_failure msg -> Format.fprintf ppf "assertion failure: %s" msg
  | Infinite_loop { steps } -> Format.fprintf ppf "stuck in a loop after %d steps" steps
  | Program_exception msg -> Format.fprintf ppf "program exception: %s" msg

let symptom bug =
  match bug.kind with
  | Illegal_access _ -> Printf.sprintf "Illegal memory access at %s" bug.location
  | Assertion_failure _ -> Printf.sprintf "Assertion failure at %s" bug.location
  | Infinite_loop _ -> "Getting stuck in an infinite loop"
  | Program_exception msg -> Printf.sprintf "%s at %s" msg bug.location

let kind_tag = function
  | Illegal_access _ -> 0
  | Assertion_failure _ -> 1
  | Infinite_loop _ -> 2
  | Program_exception _ -> 3

let report_key bug = (kind_tag bug.kind, bug.location)
let same_report a b = report_key a = report_key b

let pp ppf bug =
  Format.fprintf ppf "@[<v 2>%a at %s (after %d injected failure%s)" pp_kind bug.kind bug.location
    bug.exec_depth
    (if bug.exec_depth = 1 then "" else "s");
  if bug.trace <> [] then begin
    Format.fprintf ppf "@,recent events:";
    if bug.dropped > 0 then
      Format.fprintf ppf "@,  … %d earlier event%s dropped" bug.dropped
        (if bug.dropped = 1 then "" else "s");
    List.iter (fun ev -> Format.fprintf ppf "@,  %s" ev) bug.trace
  end;
  Format.fprintf ppf "@]"
