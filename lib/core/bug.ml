type kind =
  | Illegal_access of { addr : Pmem.Addr.t; width : int; op : string }
  | Assertion_failure of string
  | Infinite_loop of { steps : int }
  | Program_exception of string
  | Step_limit of { resource : string }
  | Execution_timeout of { seconds : float }

type t = {
  kind : kind;
  location : string;
  exec_depth : int;
  trace : string list;
  dropped : int;
}

exception Found of kind * string

let pp_kind ppf = function
  | Illegal_access { addr; width; op } ->
      Format.fprintf ppf "illegal %d-byte %s at address %a" width op Pmem.Addr.pp addr
  | Assertion_failure msg -> Format.fprintf ppf "assertion failure: %s" msg
  | Infinite_loop { steps } -> Format.fprintf ppf "stuck in a loop after %d steps" steps
  | Program_exception msg -> Format.fprintf ppf "program exception: %s" msg
  | Step_limit { resource } -> Format.fprintf ppf "resource exhaustion (%s)" resource
  | Execution_timeout { seconds } ->
      Format.fprintf ppf "execution exceeded its %gs wall-clock deadline" seconds

let symptom bug =
  match bug.kind with
  | Illegal_access _ -> Printf.sprintf "Illegal memory access at %s" bug.location
  | Assertion_failure _ -> Printf.sprintf "Assertion failure at %s" bug.location
  | Infinite_loop _ -> "Getting stuck in an infinite loop"
  | Program_exception msg -> Printf.sprintf "%s at %s" msg bug.location
  | Step_limit _ -> Printf.sprintf "resource exhaustion at %s" bug.location
  | Execution_timeout _ -> "Exceeding the per-execution wall-clock deadline"

let kind_tag = function
  | Illegal_access _ -> 0
  | Assertion_failure _ -> 1
  | Infinite_loop _ -> 2
  | Program_exception _ -> 3
  | Step_limit _ -> 4
  | Execution_timeout _ -> 5

(* Dedup keys must be stable across runs, [--jobs] values and resume:
   [Printexc.to_string] can embed heap addresses (custom printers, abstract
   payloads) and multi-line noise that vary run to run. Keep the first line,
   canonicalize hexadecimal runs, and bound the length. *)
let normalize_message msg =
  let msg =
    match String.index_opt msg '\n' with Some i -> String.sub msg 0 i | None -> msg
  in
  let n = String.length msg in
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if
      !i + 2 < n
      && msg.[!i] = '0'
      && (msg.[!i + 1] = 'x' || msg.[!i + 1] = 'X')
      && is_hex msg.[!i + 2]
    then begin
      Buffer.add_string b "0x<addr>";
      i := !i + 2;
      while !i < n && is_hex msg.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char b msg.[!i];
      incr i
    end
  done;
  let s = Buffer.contents b in
  if String.length s > 200 then String.sub s 0 197 ^ "..." else s

let report_key bug = (kind_tag bug.kind, bug.location)
let same_report a b = report_key a = report_key b

let pp ppf bug =
  Format.fprintf ppf "@[<v 2>%a at %s (after %d injected failure%s)" pp_kind bug.kind bug.location
    bug.exec_depth
    (if bug.exec_depth = 1 then "" else "s");
  if bug.trace <> [] then begin
    Format.fprintf ppf "@,recent events:";
    if bug.dropped > 0 then
      Format.fprintf ppf "@,  … %d earlier event%s dropped" bug.dropped
        (if bug.dropped = 1 then "" else "s");
    List.iter (fun ev -> Format.fprintf ppf "@,  %s" ev) bug.trace
  end;
  Format.fprintf ppf "@]"
