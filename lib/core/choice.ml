type kind = Failure_point | Read_from | Drain

exception Divergence of string

(* [limit] is the exclusive upper bound on [chosen] that this searcher owns:
   normally [num], smaller after the alternatives [limit, num) have been
   donated to another worker via {!split}. *)
type cell = { mutable chosen : int; num : int; kind : kind; mutable limit : int }

type t = {
  mutable cells : cell array;
  mutable len : int;
  mutable cursor : int;
  base : int;  (* frozen prefix length; advance never flips cells below it *)
  created : int array;  (* cumulative fresh decisions, indexed by kind *)
}

let kind_index = function Failure_point -> 0 | Read_from -> 1 | Drain -> 2

let create () = { cells = [||]; len = 0; cursor = 0; base = 0; created = Array.make 3 0 }
let begin_replay t = t.cursor <- 0

let dummy_cell () = { chosen = 0; num = 1; kind = Read_from; limit = 1 }

let grow t =
  let cap = Array.length t.cells in
  let cap' = if cap = 0 then 16 else 2 * cap in
  (* Array.init, not Array.make: [Array.make cap' cell] would alias one
     mutable record across every fresh slot. *)
  let cells = Array.init cap' (fun i -> if i < t.len then t.cells.(i) else dummy_cell ()) in
  t.cells <- cells

let choose t kind n =
  if n <= 0 then invalid_arg "Choice.choose: no alternatives";
  if t.cursor < t.len then begin
    let cell = t.cells.(t.cursor) in
    if cell.num <> n || cell.kind <> kind then
      raise
        (Divergence
           (Printf.sprintf
           "Choice.choose: replay divergence at decision %d (recorded %d alternatives, now %d) — \
            the program under test is nondeterministic"
              t.cursor cell.num n));
    t.cursor <- t.cursor + 1;
    cell.chosen
  end
  else begin
    if t.len = Array.length t.cells then grow t;
    t.created.(kind_index kind) <- t.created.(kind_index kind) + 1;
    t.cells.(t.len) <- { chosen = 0; num = n; kind; limit = n };
    t.len <- t.len + 1;
    t.cursor <- t.cursor + 1;
    0
  end

let advance t =
  t.len <- t.cursor;
  let rec strip () =
    if t.len <= t.base then false
    else
      let cell = t.cells.(t.len - 1) in
      if cell.chosen + 1 >= cell.limit then begin
        t.len <- t.len - 1;
        strip ()
      end
      else begin
        cell.chosen <- cell.chosen + 1;
        true
      end
  in
  strip ()

let depth t = t.cursor
let recorded_len t = t.len
let created t kind = t.created.(kind_index kind)

(* --- snapshot keys: identifying a point on the current decision path ------- *)

let step t i =
  if i < 0 || i >= t.cursor then invalid_arg "Choice.step: not a consumed decision";
  let c = t.cells.(i) in
  (c.kind, c.num, c.chosen)

let consumed t = Array.init t.cursor (fun i -> step t i)

let recorded_matches t key =
  let n = Array.length key in
  n <= t.len
  &&
  let rec ok i =
    i >= n
    ||
    let c = t.cells.(i) in
    let kind, num, chosen = key.(i) in
    c.kind = kind && c.num = num && c.chosen = chosen && ok (i + 1)
  in
  ok 0

let classify_recorded t key =
  let n = Array.length key in
  let rec loop i =
    if i >= n then `Match
    else if i >= t.len then `Keep
    else
      let c = t.cells.(i) in
      let kind, num, chosen = key.(i) in
      if c.kind <> kind || c.num <> num then `Keep
      else if c.chosen = chosen then loop (i + 1)
      else if chosen < c.chosen then `Passed
      else `Keep
  in
  loop 0

let fast_forward t n =
  if n < t.cursor || n > t.len then
    invalid_arg "Choice.fast_forward: target outside the recorded prefix";
  t.cursor <- n

let count_kind t kind =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if t.cells.(i).kind = kind then incr n
  done;
  !n

(* --- prefixes: forking subtrees off an in-progress search ----------------- *)

type prefix_cell = { pkind : kind; pnum : int; pchosen : int; plimit : int }
type prefix = { pfx : prefix_cell array; frozen : int }

let root = { pfx = [||]; frozen = 0 }
let prefix_depth p = Array.length p.pfx
let prefix_frozen p = p.frozen
let prefix_cells p = Array.to_list (Array.map (fun c -> (c.pkind, c.pnum, c.pchosen, c.plimit)) p.pfx)

let valid_cell (num, chosen, limit) = num > 0 && chosen >= 0 && chosen < limit && limit <= num

let prefix_of_cells ~frozen cells =
  let pfx =
    Array.of_list
      (List.map
         (fun (pkind, pnum, pchosen, plimit) ->
           if not (valid_cell (pnum, pchosen, plimit)) then
             invalid_arg "Choice.prefix_of_cells: cell violates 0 <= chosen < limit <= num";
           { pkind; pnum; pchosen; plimit })
         cells)
  in
  if frozen < 0 || frozen > Array.length pfx then
    invalid_arg "Choice.prefix_of_cells: frozen out of range";
  { pfx; frozen }

let kind_char = function Failure_point -> 'F' | Read_from -> 'R' | Drain -> 'D'

let kind_of_char = function
  | 'F' -> Some Failure_point
  | 'R' -> Some Read_from
  | 'D' -> Some Drain
  | _ -> None

let encode_prefix p =
  let b = Buffer.create (16 + (12 * Array.length p.pfx)) in
  Buffer.add_string b (string_of_int p.frozen);
  Array.iter
    (fun c ->
      Buffer.add_char b ';';
      Buffer.add_char b (kind_char c.pkind);
      Buffer.add_string b (Printf.sprintf "%d:%d:%d" c.pnum c.pchosen c.plimit))
    p.pfx;
  Buffer.contents b

let decode_prefix s =
  let cell tok =
    if tok = "" then None
    else
      match kind_of_char tok.[0] with
      | None -> None
      | Some pkind -> (
          match String.split_on_char ':' (String.sub tok 1 (String.length tok - 1)) with
          | [ num; chosen; limit ] -> (
              match (int_of_string_opt num, int_of_string_opt chosen, int_of_string_opt limit) with
              | Some pnum, Some pchosen, Some plimit when valid_cell (pnum, pchosen, plimit) ->
                  Some { pkind; pnum; pchosen; plimit }
              | _ -> None)
          | _ -> None)
  in
  match String.split_on_char ';' s with
  | [] -> None
  | frozen :: rest -> (
      match int_of_string_opt frozen with
      | None -> None
      | Some frozen ->
          let rec all acc = function
            | [] -> Some (List.rev acc)
            | tok :: rest -> ( match cell tok with None -> None | Some c -> all (c :: acc) rest)
          in
          (match all [] rest with
          | Some cells when frozen >= 0 && frozen <= List.length cells ->
              Some { pfx = Array.of_list cells; frozen }
          | _ -> None))

let resume_from_prefix p =
  let n = Array.length p.pfx in
  let cells =
    Array.init (max n 16) (fun i ->
        if i < n then
          let c = p.pfx.(i) in
          { chosen = c.pchosen; num = c.pnum; kind = c.pkind; limit = c.plimit }
        else dummy_cell ())
  in
  { cells; len = n; cursor = 0; base = p.frozen; created = Array.make 3 0 }

(* The still-unexplored subtree of this searcher, as a resumable prefix: the
   recorded decisions pin the next leaf the DFS would replay, and each cell's
   [limit] preserves the sibling alternatives it still owns. Valid whenever a
   fresh replay is about to start (after [advance] or [resume_from_prefix],
   before consuming decisions), where every recorded cell satisfies
   [chosen < limit]. *)
let remainder t =
  prefix_of_cells ~frozen:t.base
    (List.init t.len (fun i ->
         let c = t.cells.(i) in
         (c.kind, c.num, c.chosen, c.limit)))

(* The static mirror of {!split}, operating on an encoded prefix instead of
   an in-progress searcher: carve the sibling alternatives of the shallowest
   wide cell into their own prefix. The fleet coordinator shatters checkpoint
   frontiers with this to make more shards than the interrupted run had
   workers — without replaying anything. *)
let split_prefix p =
  let n = Array.length p.pfx in
  let rec find i =
    if i >= n then None
    else
      let c = p.pfx.(i) in
      (* Cells below [frozen] are replayed verbatim: their other alternatives
         were donated elsewhere long ago and are not this prefix's to give. *)
      if i >= p.frozen && c.pchosen + 1 < c.plimit then Some i else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let c = p.pfx.(i) in
      (* The kept half continues the recorded path: same cells, the wide
         cell's limit shrunk to its current choice. The donated half covers
         the sibling range [chosen+1, limit); deeper recorded cells belong
         only to the [chosen] branch, so they are dropped, and shallower
         cells are pinned — exactly what the dynamic [split] emits. *)
      let kept =
        {
          pfx =
            Array.mapi
              (fun j cc -> if j = i then { cc with plimit = c.pchosen + 1 } else cc)
              p.pfx;
          frozen = p.frozen;
        }
      in
      let donated =
        {
          pfx =
            Array.init (i + 1) (fun j ->
                let cc = p.pfx.(j) in
                if j = i then { cc with pchosen = c.pchosen + 1 }
                else { cc with plimit = cc.pchosen + 1 });
          frozen = i;
        }
      in
      Some (kept, donated)

let split t =
  (* Only cells consumed by the last replay are on the current path; a stale
     suffix beyond the cursor must not be donated. *)
  let bound = min t.len t.cursor in
  let rec find i =
    if i >= bound then None
    else
      let cell = t.cells.(i) in
      if cell.chosen + 1 < cell.limit then Some i else find (i + 1)
  in
  match find t.base with
  | None -> None
  | Some i ->
      let cell = t.cells.(i) in
      let pfx =
        Array.init (i + 1) (fun j ->
            let c = t.cells.(j) in
            if j = i then
              { pkind = c.kind; pnum = c.num; pchosen = c.chosen + 1; plimit = c.limit }
            else { pkind = c.kind; pnum = c.num; pchosen = c.chosen; plimit = c.chosen + 1 })
      in
      cell.limit <- cell.chosen + 1;
      Some { pfx; frozen = i }
