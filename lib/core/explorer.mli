(** The exploration driver (paper Fig. 11, Explore).

    A failure scenario is a pre-failure program plus a recovery program. The
    explorer repeatedly replays the scenario under the {!Choice} stack,
    injecting power failures at flush instructions and branching on every
    load with multiple read-from candidates, until the whole choice tree has
    been visited (or a configured limit is hit). *)

type scenario = {
  name : string;
  pre : Ctx.t -> unit;  (** the pre-failure execution *)
  post : Ctx.t -> unit;
      (** the recovery execution, re-run after every injected failure
          (including failures injected during recovery itself when
          [max_failures > 1]) *)
}

val scenario : name:string -> pre:(Ctx.t -> unit) -> post:(Ctx.t -> unit) -> scenario

val scenario_single : name:string -> (Ctx.t -> unit) -> scenario
(** A program whose one entry point handles both roles, dispatching on
    {!Ctx.in_recovery} — the common main-function structure of real PM
    programs. *)

type outcome = {
  bugs : Bug.t list;  (** deduplicated, in a deterministic sorted order *)
  stats : Stats.t;
  multi_rf : Ctx.multi_rf list;  (** deduplicated debugging reports *)
  perf : Ctx.perf_report list;
      (** deduplicated redundant-flush/fence reports (advisory, not bugs) *)
  findings : Analysis.Report.finding list;
      (** analysis-pass findings across every explored execution, merged with
          the same deterministic discipline as [bugs] (deduplicated, sorted
          with {!Analysis.Report.compare_finding}); empty unless
          [config.analyze] *)
}

val run : ?config:Config.t -> ?resume:Checkpoint.t -> ?checkpoint:string -> scenario -> outcome
(** Explores the scenario exhaustively. Checked-program bugs become entries
    in [outcome.bugs]; {!Choice.Divergence} propagates (it indicates a broken
    test harness, not a program bug).

    {b Survivability.} With [checkpoint:path] the run periodically (every
    [config.checkpoint_every] seconds) and at every stop — including
    completion — atomically writes a {!Checkpoint} of the unexplored
    frontier and the merged reports to [path]. With [resume:cp] it first
    validates [cp]'s fingerprint against this workload and configuration
    (raising {!Checkpoint.Rejected} on mismatch), seeds the report tables
    and statistics from it, and explores only the checkpointed frontier; an
    interrupted-then-resumed run therefore reports byte-identically
    (see {!pp_report}) to an uninterrupted one, for every [jobs] value and
    with the memo/snapshot layers on or off. A cooperative stop — a SIGINT
    routed through {!request_interrupt}, or an exceeded
    [config.wall_budget] — lets every worker finish its current replay,
    reports the partial outcome with [stats.interrupted] set, and preserves
    the rest of the tree in the checkpoint. [config.step_deadline] cancels
    individual runaway executions as {!Bug.Execution_timeout} bugs, and
    [config.mem_budget] sheds the memo/snapshot caches under memory
    pressure; neither ends the run.

    With [config.jobs > 1] the choice tree is explored by that many OCaml
    domains: each worker replays executions out of a shared {!Frontier} of
    subtree prefixes and donates unexplored sibling subtrees ({!Choice.split})
    whenever a peer runs dry. Reports are deduplicated keeping a
    schedule-independent representative and sorted, so an exhaustive run
    produces byte-identical [bugs]/[multi_rf]/[perf] and identical [stats]
    (other than [wall_time]) for every [jobs] value. Runs cut short by
    [max_executions] or [stop_at_first_bug] may explore a different subset
    of executions depending on [jobs] and timing.

    With [config.snapshot] (the default) each worker keeps a cache of
    failure-point snapshots: the first replay through a failure point
    captures the persistent side of the context, and every later replay of
    that crash subtree restores it and runs only recovery instead of
    re-executing the pre-failure program. The outcome is byte-identical
    (modulo [wall_time]) with snapshots on or off, for every [jobs] value.

    With [config.memo] (the default) each worker additionally memoizes fully
    explored recovery subtrees by canonical crash state (see {!Memo}): when a
    later crash lands in a semantically identical persistent state — same
    surviving stores, line persistence intervals (up to sequence-number
    renaming), trace ring, failure count and schedule-PRNG state — the cached
    verdict (bugs, reports, execution and read-from counts) is credited
    instead of replaying the subtree. Every execution the cache saves is
    counted against [max_executions] exactly as if it had run, so reports
    {e and} stats other than the [memo_*] counters and [wall_time] are
    byte-identical with the layer on or off, again for every [jobs] value.
    The [memo_hits]/[memo_misses]/[memo_saved] counters themselves depend on
    how the tree was partitioned across workers and are excluded from
    {!Stats.pp} and {!Stats.comparable}. Memoization is disabled under
    [stop_at_first_bug] (such runs stop mid-subtree, so no verdict is ever
    complete). *)

val request_interrupt : unit -> unit
(** Requests a cooperative stop of every in-flight {!run} in this process:
    workers finish their current replay, the partial outcome is flagged
    [interrupted] and the frontier is checkpointed (when a path was given).
    Async-signal-safe — the CLI calls it from SIGINT/SIGTERM handlers. The
    request is sticky until {!clear_interrupt}, so a signal arriving between
    rounds (or just before [run]) is not lost. *)

val clear_interrupt : unit -> unit
(** Clears a pending {!request_interrupt} — call before a run that must not
    inherit a stale request (tests; the CLI at startup). *)

val interrupts_requested : unit -> int
(** How many times {!request_interrupt} has fired since the last
    {!clear_interrupt}. The CLI escalates on the second request: the first
    SIGINT stops cooperatively (finish replays, checkpoint), a second one
    during the wind-down forces an immediate exit. *)

val merge_outcomes :
  ?config:Config.t -> completed:bool -> interrupted:bool -> outcome list -> outcome
(** Combines the outcomes of {e disjoint} subtree explorations — shard
    results in fleet mode, or a prior checkpoint's outcome plus its
    continuation — with exactly the deduplication and sorting discipline
    {!run} applies across its own workers, so merging shard outcomes of any
    partition of the tree reproduces the single-process reports byte for
    byte. [Stats.exhausted] is recomputed from [completed] (and
    [config.stop_at_first_bug]); [Stats.interrupted] is set from
    [interrupted] — constituent outcomes of capped or preempted shards
    legitimately carry partial flags that must not poison the merge. *)

val found_bug : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val comparable_outcome : outcome -> outcome
(** The outcome with {!Stats.comparable} applied — everything that is
    allowed to differ between equivalent runs zeroed. *)

val pp_report : Format.formatter -> outcome -> unit
(** [pp_outcome] of {!comparable_outcome}: a rendering that is byte-identical
    across [jobs] values, memo/snapshot settings, and interrupt/resume
    histories of the same exploration — the artifact CI diffs. *)
