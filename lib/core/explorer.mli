(** The exploration driver (paper Fig. 11, Explore).

    A failure scenario is a pre-failure program plus a recovery program. The
    explorer repeatedly replays the scenario under the {!Choice} stack,
    injecting power failures at flush instructions and branching on every
    load with multiple read-from candidates, until the whole choice tree has
    been visited (or a configured limit is hit). *)

type scenario = {
  name : string;
  pre : Ctx.t -> unit;  (** the pre-failure execution *)
  post : Ctx.t -> unit;
      (** the recovery execution, re-run after every injected failure
          (including failures injected during recovery itself when
          [max_failures > 1]) *)
}

val scenario : name:string -> pre:(Ctx.t -> unit) -> post:(Ctx.t -> unit) -> scenario

val scenario_single : name:string -> (Ctx.t -> unit) -> scenario
(** A program whose one entry point handles both roles, dispatching on
    {!Ctx.in_recovery} — the common main-function structure of real PM
    programs. *)

type outcome = {
  bugs : Bug.t list;  (** deduplicated, in a deterministic sorted order *)
  stats : Stats.t;
  multi_rf : Ctx.multi_rf list;  (** deduplicated debugging reports *)
  perf : Ctx.perf_report list;
      (** deduplicated redundant-flush/fence reports (advisory, not bugs) *)
  findings : Analysis.Report.finding list;
      (** analysis-pass findings across every explored execution, merged with
          the same deterministic discipline as [bugs] (deduplicated, sorted
          with {!Analysis.Report.compare_finding}); empty unless
          [config.analyze] *)
}

val run : ?config:Config.t -> scenario -> outcome
(** Explores the scenario exhaustively. Checked-program bugs become entries
    in [outcome.bugs]; {!Choice.Divergence} propagates (it indicates a broken
    test harness, not a program bug).

    With [config.jobs > 1] the choice tree is explored by that many OCaml
    domains: each worker replays executions out of a shared {!Frontier} of
    subtree prefixes and donates unexplored sibling subtrees ({!Choice.split})
    whenever a peer runs dry. Reports are deduplicated keeping a
    schedule-independent representative and sorted, so an exhaustive run
    produces byte-identical [bugs]/[multi_rf]/[perf] and identical [stats]
    (other than [wall_time]) for every [jobs] value. Runs cut short by
    [max_executions] or [stop_at_first_bug] may explore a different subset
    of executions depending on [jobs] and timing.

    With [config.snapshot] (the default) each worker keeps a cache of
    failure-point snapshots: the first replay through a failure point
    captures the persistent side of the context, and every later replay of
    that crash subtree restores it and runs only recovery instead of
    re-executing the pre-failure program. The outcome is byte-identical
    (modulo [wall_time]) with snapshots on or off, for every [jobs] value.

    With [config.memo] (the default) each worker additionally memoizes fully
    explored recovery subtrees by canonical crash state (see {!Memo}): when a
    later crash lands in a semantically identical persistent state — same
    surviving stores, line persistence intervals (up to sequence-number
    renaming), trace ring, failure count and schedule-PRNG state — the cached
    verdict (bugs, reports, execution and read-from counts) is credited
    instead of replaying the subtree. Every execution the cache saves is
    counted against [max_executions] exactly as if it had run, so reports
    {e and} stats other than the [memo_*] counters and [wall_time] are
    byte-identical with the layer on or off, again for every [jobs] value.
    The [memo_hits]/[memo_misses]/[memo_saved] counters themselves depend on
    how the tree was partitioned across workers and are excluded from
    {!Stats.pp} and {!Stats.comparable}. Memoization is disabled under
    [stop_at_first_bug] (such runs stop mid-subtree, so no verdict is ever
    complete). *)

val found_bug : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
