exception Power_failure

type multi_rf = {
  load_label : string;
  load_addr : Pmem.Addr.t;
  candidates : (string * int) list;
}

type perf_kind = Redundant_flush | Redundant_fence

type perf_report = { perf_kind : perf_kind; perf_label : string }

type t = {
  cfg : Config.t;
  reg : Pmem.Region.t;
  choice : Choice.t;
  stack : Exec.Exec_stack.t;
  seq : int ref;
  trace : Trace.t;
  mutable sink : Tso.Sink.t;
  mutable threads : Tso.Thread_state.t list;
  mutable cur : Tso.Thread_state.t;
  mutable next_tid : int;
  mutable steps : int;
  mutable failure_count : int;
  mutable writes_since_fp : bool;
  mutable fp_count : int;
  mutable multi_rf : multi_rf list;
  engine : Analysis.Engine.t option;  (* analysis passes fed the event stream *)
  events_on : bool;  (* emit typed events at all (trace or engine present) *)
  mutable in_rmw : bool;
      (* inside a locked RMW: its constituent load/store/mfence operations
         are not mirrored as events — the RMW is one [Analysis.Event.Rmw] *)
  mutable parallel_depth : int;
  mutable atomic_depth : int;
  mutable last : string;
  mutable fp_hook : (string -> unit) option;
  mutable crash_hook : (unit -> unit) option;
      (* invoked at every committed crash, after the surviving state is final
         (store buffers drained, crash event emitted) and before the failure
         counter advances — the crash-state memoization probe *)
  mutable rng : int;  (* schedule-fuzzing PRNG state; reset per replay *)
  snapshots : Snapshot.cache option;  (* the owning worker's snapshot cache *)
  cancel : bool Atomic.t option;
      (* watchdog flag: set by the monitor when this execution blows its
         wall-clock deadline, observed (and consumed) at the next [step] *)
}

let create ?snapshots ?cancel ?trace_labels ?trace_ring ~config ~choice () =
  let stack = Exec.Exec_stack.create () in
  let seq = ref 0 in
  let thread0 = Tso.Thread_state.create ~tid:0 in
  (* A ring of [trace_depth] packed cells is a major-heap allocation (well
     past [Max_young_wosize]); workers replay hundreds of thousands of times,
     so they pass one pooled ring in rather than paying a major alloc per
     replay. *)
  let trace =
    match trace_ring with
    | Some ring ->
        if Trace.depth ring <> config.Config.trace_depth then
          invalid_arg "Ctx.create: trace_ring depth <> config.trace_depth";
        Trace.clear ring;
        ring
    | None -> Trace.create ?labels:trace_labels ~depth:config.Config.trace_depth ()
  in
  let engine =
    let hb =
      if config.Config.analyze && config.Config.analyze_hb then Some (Analysis.Hb.create ())
      else None
    in
    let passes =
      if config.Config.analyze then
        [
          Analysis.Pass.instantiate (module Analysis.Missing_flush);
          Analysis.Pass.instantiate (module Analysis.Torn_write);
        ]
        @ (match hb with
          | Some hb ->
              [
                Analysis.Pass.instantiate_hb ~hb (module Analysis.Race);
                Analysis.Pass.instantiate_hb ~hb (module Analysis.Robustness);
              ]
          | None -> [])
      else []
    in
    let passes =
      if config.Config.report_perf || config.Config.analyze then
        Analysis.Pass.instantiate (module Analysis.Redundant) :: passes
      else passes
    in
    match passes with
    | [] -> None
    | _ -> Some (Analysis.Engine.create ~suppress:config.Config.suppress ?hb passes)
  in
  {
    cfg = config;
    reg = Pmem.Region.v ~base:config.Config.region_base ~size:config.Config.region_size;
    choice;
    stack;
    seq;
    trace;
    sink = Tso.Sink.to_exec_record ~seq (Exec.Exec_stack.top stack);
    threads = [ thread0 ];
    cur = thread0;
    next_tid = 1;
    steps = 0;
    failure_count = 0;
    writes_since_fp = true;
    fp_count = 0;
    multi_rf = [];
    engine;
    events_on = Trace.enabled trace || engine <> None;
    in_rmw = false;
    parallel_depth = 0;
    atomic_depth = 0;
    last = "<start>";
    fp_hook = None;
    crash_hook = None;
    rng =
      (match config.Config.schedule_seed with
      | Some seed -> (seed lxor 0x9e3779b9) lor 1
      | None -> 0);
    snapshots;
    cancel;
  }

let set_failure_point_hook ctx hook = ctx.fp_hook <- Some hook
let set_crash_hook ctx hook = ctx.crash_hook <- Some hook
let at_crash ctx = match ctx.crash_hook with Some hook -> hook () | None -> ()
let rng_state ctx = ctx.rng

let config ctx = ctx.cfg
let region ctx = ctx.reg
let in_recovery ctx = ctx.failure_count > 0
let fp_count ctx = ctx.fp_count
let multi_rf_reports ctx = List.rev ctx.multi_rf

let analysis_findings ctx =
  match ctx.engine with None -> [] | Some e -> Analysis.Engine.findings e

(* Legacy view of the redundant pass's findings, for callers of the pre-
   framework perf-report API. *)
let perf_reports ctx =
  if not ctx.cfg.Config.report_perf then []
  else
    List.filter_map
      (fun (f : Analysis.Report.finding) ->
        if f.pass <> "redundant" then None
        else
          let perf_kind =
            if f.rule = "redundant-flush" then Redundant_flush else Redundant_fence
          in
          match f.labels with [ perf_label ] -> Some { perf_kind; perf_label } | _ -> None)
      (analysis_findings ctx)

let trace_events ctx = List.map Analysis.Event.render (Trace.events ctx.trace)
let trace_raw ctx = Trace.events ctx.trace
let trace_ring ctx = ctx.trace
let trace_dropped ctx = Trace.dropped ctx.trace
let last_label ctx = ctx.last
let exec_stack ctx = ctx.stack
let failures ctx = ctx.failure_count

(* The one event-emission point: the ring stores the event unrendered (no
   formatting unless a bug report is printed) and the analysis engine feeds
   its passes. Call sites guard on [events_on] so event construction itself
   costs nothing when both are disabled. *)
let emit ctx ev =
  Trace.add ctx.trace ev;
  match ctx.engine with Some e -> Analysis.Engine.emit e ev | None -> ()

let tid ctx = Tso.Thread_state.tid ctx.cur

(* Hot-path emission: with no analysis engine attached (the common search
   configuration) the event goes straight into the packed trace ring — a few
   int writes — without ever constructing the boxed [Analysis.Event.t]. With
   an engine, the boxed event is built once and shared by ring and passes. *)
let emit_store ctx ~addr ~width ~value ~label =
  match ctx.engine with
  | None -> Trace.add_store ctx.trace ~addr ~width ~value ~tid:(tid ctx) ~label
  | Some _ -> emit ctx (Analysis.Event.Store { addr; width; value; tid = tid ctx; label })

let emit_load ctx ~addr ~width ~value ~label =
  match ctx.engine with
  | None -> Trace.add_load ctx.trace ~addr ~width ~value ~tid:(tid ctx) ~label
  | Some _ -> emit ctx (Analysis.Event.Load { addr; width; value; tid = tid ctx; label })

let emit_flush ctx ~line_addr ~kind ~label =
  match ctx.engine with
  | None -> Trace.add_flush ctx.trace ~line_addr ~kind ~tid:(tid ctx) ~label
  | Some _ -> emit ctx (Analysis.Event.Flush { line_addr; kind; tid = tid ctx; label })

let emit_fence ctx ~kind ~label =
  match ctx.engine with
  | None -> Trace.add_fence ctx.trace ~kind ~tid:(tid ctx) ~label
  | Some _ -> emit ctx (Analysis.Event.Fence { kind; tid = tid ctx; label })

let step ctx label =
  ctx.last <- label;
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.cfg.Config.max_steps then
    raise (Bug.Found (Bug.Infinite_loop { steps = ctx.steps }, label));
  match ctx.cancel with
  | Some c when Atomic.get c ->
      (* Consume the flag so a raise swallowed by the program under test does
         not re-fire on the next replay. *)
      Atomic.set c false;
      let seconds = Option.value ~default:0. ctx.cfg.Config.step_deadline in
      raise (Bug.Found (Bug.Execution_timeout { seconds }, label))
  | _ -> ()

let progress ctx ?(label = "progress") () = step ctx label

let bounds ctx addr width op label =
  if not (Pmem.Region.contains ctx.reg addr width) then
    raise (Bug.Found (Bug.Illegal_access { addr; width; op }, label))

let maybe_yield ctx = if ctx.parallel_depth > 0 && ctx.atomic_depth = 0 then Scheduler.yield ()

let eager ctx = ctx.cfg.Config.evict_policy = Config.Eager

(* --- failure injection ------------------------------------------------- *)

(* Buffered policy only: at a crash, a nondeterministic prefix of each store
   buffer may already have drained to the cache. *)
let drain_choices ctx =
  List.iter
    (fun th ->
      let n = Tso.Store_buffer.length (Tso.Thread_state.store_buffer th) in
      if n > 0 then begin
        let keep = Choice.choose ctx.choice Choice.Drain (n + 1) in
        for _ = 1 to keep do
          ignore (Tso.Thread_state.evict_one th ctx.sink)
        done
      end)
    ctx.threads

(* Capture-at-consideration: the snapshot is taken at every failure point the
   search considers — before the fail/continue decision — not only when the
   crash is actually taken. One full replay therefore populates the cache for
   every failure point on its path, and each crash subtree's replays resume
   from the restored state without ever re-running the pre-failure program.
   The [mem] check keeps later replays through the same point from paying for
   a copy again. *)
let capture_snapshot ctx ~crash_label ~pending_failure =
  match ctx.snapshots with
  | None -> ()
  | Some cache ->
      let key =
        if pending_failure then Snapshot.failure_key ctx.choice
        else Snapshot.crash_key ctx.choice
      in
      if not (Snapshot.mem cache key) then
        Snapshot.store cache
          (Snapshot.capture ~key ~stack:ctx.stack ~seq:!(ctx.seq) ~threads:ctx.threads
             ~trace:ctx.trace ~failure_count:ctx.failure_count ~fp_count:ctx.fp_count
             ~rng:ctx.rng ~last:ctx.last ~crash_label)

let failure_point ?(force = false) ctx label =
  if ctx.failure_count < ctx.cfg.Config.max_failures && (force || ctx.writes_since_fp) then begin
    ctx.writes_since_fp <- false;
    ctx.fp_count <- ctx.fp_count + 1;
    (match ctx.fp_hook with Some hook -> hook label | None -> ());
    if ctx.events_on then emit ctx (Analysis.Event.Failure_point { label; tid = tid ctx });
    capture_snapshot ctx ~crash_label:(Some label) ~pending_failure:true;
    match Choice.choose ctx.choice Choice.Failure_point 2 with
    | 0 -> ()
    | _ ->
        if not (eager ctx) then drain_choices ctx;
        if ctx.events_on then
          emit ctx (Analysis.Event.Crash { label = Some label; tid = tid ctx });
        at_crash ctx;
        ctx.failure_count <- ctx.failure_count + 1;
        raise Power_failure
  end

let after_crash ctx =
  let record = Exec.Exec_stack.push_fresh ctx.stack in
  ctx.sink <- Tso.Sink.to_exec_record ~seq:ctx.seq record;
  (* Volatile state is lost: store/flush buffers, every thread but a fresh
     main one, and the step budget restart with the new execution. *)
  let thread0 = Tso.Thread_state.create ~tid:0 in
  ctx.threads <- [ thread0 ];
  ctx.cur <- thread0;
  ctx.next_tid <- 1;
  ctx.steps <- 0;
  ctx.writes_since_fp <- true;
  ctx.parallel_depth <- 0;
  ctx.atomic_depth <- 0

let crash ctx =
  capture_snapshot ctx ~crash_label:None ~pending_failure:false;
  if not (eager ctx) then drain_choices ctx;
  if ctx.events_on then emit ctx (Analysis.Event.Crash { label = None; tid = tid ctx });
  at_crash ctx;
  ctx.failure_count <- ctx.failure_count + 1;
  raise Power_failure

(* The restore half of the snapshot layer: put the context into exactly the
   state the matching replay would have at the captured crash — restored
   execution stack, sequence counter, thread buffers and trace ring, cursor
   fast-forwarded past the snapshot's decisions — then take the crash the way
   [failure_point] / [crash] would, with the buffered-drain prefix still a
   live [Choice.Drain] decision on the restored buffers. The caller runs
   recovery next; it never re-executes the pre-failure program. *)
let resume_from_snapshot ctx (snap : Snapshot.t) =
  Choice.fast_forward ctx.choice (Array.length snap.Snapshot.key);
  let records, threads = Snapshot.materialize ~deep_top:(not (eager ctx)) snap in
  Exec.Exec_stack.restore ctx.stack records;
  ctx.seq := snap.Snapshot.seq;
  ctx.sink <- Tso.Sink.to_exec_record ~seq:ctx.seq (Exec.Exec_stack.top ctx.stack);
  ctx.threads <- threads;
  Trace.restore ctx.trace ~from:snap.Snapshot.trace;
  ctx.failure_count <- snap.Snapshot.failure_count;
  ctx.fp_count <- snap.Snapshot.fp_count;
  ctx.rng <- snap.Snapshot.rng;
  ctx.last <- snap.Snapshot.last;
  if not (eager ctx) then drain_choices ctx;
  if ctx.events_on then
    emit ctx (Analysis.Event.Crash { label = snap.Snapshot.crash_label; tid = tid ctx });
  at_crash ctx;
  ctx.failure_count <- ctx.failure_count + 1

let finish_execution ctx =
  (* The paper also injects a failure at the end of the execution (its Fig. 4
     walkthrough), regardless of the no-writes-since-last-point optimisation. *)
  failure_point ~force:true ctx "<end of execution>";
  List.iter
    (fun th ->
      Tso.Thread_state.drain th ctx.sink;
      Tso.Thread_state.drain_flush_buffer th ctx.sink)
    ctx.threads;
  if ctx.events_on then emit ctx Analysis.Event.End_execution

(* --- stores and flushes ------------------------------------------------ *)

let store ctx ?(label = "store") ~width addr v =
  step ctx label;
  bounds ctx addr width "store" label;
  maybe_yield ctx;
  Tso.Thread_state.exec_store ctx.cur addr ~value:v ~width ~label;
  ctx.writes_since_fp <- true;
  if ctx.events_on && not ctx.in_rmw then emit_store ctx ~addr ~width ~value:v ~label;
  if eager ctx then Tso.Thread_state.drain ctx.cur ctx.sink

let flush_lines ctx ~kind ~label addr size =
  bounds ctx addr (max size 1) "flush" label;
  (* clwb shares clflushopt's reordering semantics (paper §2) but is a
     distinct instruction: traces and analysis passes see the real kind. *)
  let opt = match kind with Analysis.Event.Clflush -> false | Clflushopt | Clwb -> true in
  Pmem.Addr.iter_lines_spanned
    (fun line ->
      let line_addr = line * Pmem.Addr.cache_line_size in
      failure_point ctx label;
      step ctx label;
      if ctx.events_on then emit_flush ctx ~line_addr ~kind ~label;
      if opt then Tso.Thread_state.exec_clflushopt ctx.cur ctx.sink line_addr ~label
      else Tso.Thread_state.exec_clflush ctx.cur line_addr ~label;
      if eager ctx then Tso.Thread_state.drain ctx.cur ctx.sink)
    addr (max size 1);
  maybe_yield ctx

let clflush ctx ?(label = "clflush") addr size =
  flush_lines ctx ~kind:Analysis.Event.Clflush ~label addr size

let clflushopt ctx ?(label = "clflushopt") addr size =
  flush_lines ctx ~kind:Analysis.Event.Clflushopt ~label addr size

let clwb ctx ?(label = "clwb") addr size =
  flush_lines ctx ~kind:Analysis.Event.Clwb ~label addr size

let sfence ctx ?(label = "sfence") () =
  step ctx label;
  if ctx.events_on && not ctx.in_rmw then emit_fence ctx ~kind:Analysis.Event.Sfence ~label;
  Tso.Thread_state.exec_sfence ctx.cur;
  if eager ctx then Tso.Thread_state.drain ctx.cur ctx.sink;
  maybe_yield ctx

let mfence ctx ?(label = "mfence") () =
  step ctx label;
  if ctx.events_on && not ctx.in_rmw then emit_fence ctx ~kind:Analysis.Event.Mfence ~label;
  Tso.Thread_state.exec_mfence ctx.cur ctx.sink;
  maybe_yield ctx

(* --- loads -------------------------------------------------------------- *)

(* Reads whose single candidate lives in the current execution — a store-
   buffer bypass hit or a store this execution already made — carry no
   persistency constraint ([do_read] is a no-op for them), record no multi-rf
   report and consume no choice. [read_byte_slow] handles the rest; the fast
   checks here allocate nothing. *)
let read_byte_slow ctx addr label =
  let candidates = Exec.Read_from.build_may_read_from ctx.stack addr in
  let src =
    match candidates with
    | [] -> assert false (* the initial image backstops the recursion *)
    | [ only ] -> only
    | _ :: _ ->
        if ctx.cfg.Config.report_multi_rf then
          ctx.multi_rf <-
            {
              load_label = label;
              load_addr = addr;
              candidates =
                List.map (fun s -> (s.Exec.Read_from.label, s.Exec.Read_from.value)) candidates;
            }
            :: ctx.multi_rf;
        let k = Choice.choose ctx.choice Choice.Read_from (List.length candidates) in
        List.nth candidates k
  in
  Exec.Read_from.do_read ctx.stack addr src;
  src.Exec.Read_from.value

let read_byte ctx addr label =
  match Tso.Thread_state.bypass ctx.cur addr with
  | Some (value, _) -> value
  | None ->
      let b = Exec.Exec_record.last_store_byte (Exec.Exec_stack.top ctx.stack) addr in
      if b >= 0 then b else read_byte_slow ctx addr label

let load ctx ?(label = "load") ~width addr =
  step ctx label;
  bounds ctx addr width "load" label;
  maybe_yield ctx;
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := !v lor (read_byte ctx (addr + i) label lsl (8 * i))
  done;
  let v = !v in
  if ctx.events_on && not ctx.in_rmw then emit_load ctx ~addr ~width ~value:v ~label;
  v

let store8 ctx ?label addr v = store ctx ?label ~width:1 addr v
let store16 ctx ?label addr v = store ctx ?label ~width:2 addr v
let store32 ctx ?label addr v = store ctx ?label ~width:4 addr v
let store64 ctx ?label addr v = store ctx ?label ~width:8 addr v
let load8 ctx ?label addr = load ctx ?label ~width:1 addr
let load16 ctx ?label addr = load ctx ?label ~width:2 addr
let load32 ctx ?label addr = load ctx ?label ~width:4 addr
let load64 ctx ?label addr = load ctx ?label ~width:8 addr

(* --- bulk helpers -------------------------------------------------------- *)

let memset ctx ?(label = "memset") addr byte len =
  if len < 0 then invalid_arg "Ctx.memset: negative length";
  bounds ctx addr (max len 1) "store" label;
  let byte = byte land 0xff in
  let word = Pmem.Bytes_le.implode [ byte; byte; byte; byte; byte; byte; byte; byte ] in
  let rec go addr len =
    if len >= 8 then begin
      store ctx ~label ~width:8 addr word;
      go (addr + 8) (len - 8)
    end
    else if len > 0 then begin
      store ctx ~label ~width:1 addr byte;
      go (addr + 1) (len - 1)
    end
  in
  go addr len

let memcpy ctx ?(label = "memcpy") ~dst ~src len =
  if len < 0 then invalid_arg "Ctx.memcpy: negative length";
  bounds ctx src (max len 1) "load" label;
  bounds ctx dst (max len 1) "store" label;
  if dst > src && dst < src + len then
    invalid_arg "Ctx.memcpy: overlapping forward copy unsupported";
  let rec go i len =
    if len >= 8 then begin
      store ctx ~label ~width:8 (dst + i) (load ctx ~label ~width:8 (src + i));
      go (i + 8) (len - 8)
    end
    else if len > 0 then begin
      store ctx ~label ~width:1 (dst + i) (load ctx ~label ~width:1 (src + i));
      go (i + 1) (len - 1)
    end
  in
  go 0 len

let memset_persist ctx ?(label = "memset_persist") addr byte len =
  memset ctx ~label addr byte len;
  if len > 0 then begin
    flush_lines ctx ~kind:Analysis.Event.Clwb ~label addr len;
    sfence ctx ~label ()
  end

let memcpy_persist ctx ?(label = "memcpy_persist") ~dst ~src len =
  memcpy ctx ~label ~dst ~src len;
  if len > 0 then begin
    flush_lines ctx ~kind:Analysis.Event.Clwb ~label dst len;
    sfence ctx ~label ()
  end

(* --- locked RMW --------------------------------------------------------- *)

let atomically ctx f =
  ctx.atomic_depth <- ctx.atomic_depth + 1;
  Fun.protect ~finally:(fun () -> ctx.atomic_depth <- ctx.atomic_depth - 1) f

(* The constituent mfence/load/store operations run with their full TSO
   semantics but are not mirrored as events ([in_rmw]): the analysis passes
   see one [Rmw] event carrying the observed and stored values, emitted
   after the instruction completes — a locked RMW is one synchronisation
   point, and the happens-before engine gives it acquire-release semantics
   that the constituent plain accesses must not dilute. *)
let rmw64 ctx label addr f =
  maybe_yield ctx;
  atomically ctx (fun () ->
      ctx.in_rmw <- true;
      let old, stored =
        Fun.protect
          ~finally:(fun () -> ctx.in_rmw <- false)
          (fun () ->
            mfence ctx ~label ();
            let old = load ctx ~label ~width:8 addr in
            let stored =
              match f old with
              | None -> None
              | Some desired ->
                  store ctx ~label ~width:8 addr desired;
                  Some desired
            in
            mfence ctx ~label ();
            (old, stored))
      in
      if ctx.events_on then
        emit ctx
          (Analysis.Event.Rmw
             { addr; width = 8; old_value = old; new_value = stored; tid = tid ctx; label });
      old)

let cas64 ctx ?(label = "cas64") addr ~expected ~desired =
  let old = rmw64 ctx label addr (fun v -> if v = expected then Some desired else None) in
  old = expected

let xchg64 ctx ?(label = "xchg64") addr v = rmw64 ctx label addr (fun _ -> Some v)

let fetch_add64 ctx ?(label = "fetch_add64") addr delta =
  rmw64 ctx label addr (fun v -> Some (v + delta))

(* --- assertions and threads --------------------------------------------- *)

let check ctx ?(label = "assert") cond msg =
  step ctx label;
  if not cond then raise (Bug.Found (Bug.Assertion_failure msg, label))

let abort ctx ?(label = "abort") msg =
  step ctx label;
  raise (Bug.Found (Bug.Assertion_failure msg, label))

let install_concrete_state ctx bytes =
  let record = Exec.Exec_stack.top ctx.stack in
  let touched = Hashtbl.create 16 in
  List.iter
    (fun (addr, value) ->
      bounds ctx addr 1 "store" "<concrete state>";
      incr ctx.seq;
      Exec.Exec_record.push_store record addr ~value ~seq:!(ctx.seq) ~label:"<concrete state>";
      Hashtbl.replace touched (Pmem.Addr.line_of addr) ())
    bytes;
  Hashtbl.iter
    (fun line () ->
      incr ctx.seq;
      Exec.Exec_record.flush_line record (line * Pmem.Addr.cache_line_size) ~seq:!(ctx.seq))
    touched;
  if ctx.events_on then
    emit ctx (Analysis.Event.Crash { label = Some "<concrete state>"; tid = tid ctx });
  ctx.failure_count <- ctx.failure_count + 1;
  after_crash ctx

(* xorshift with the low bits mixed out; deterministic given the seed, and
   the state is re-seeded at every replay so the DFS stays sound. *)
let next_rand ctx bound =
  let x = ctx.rng in
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land max_int in
  ctx.rng <- x;
  x lsr 11 mod bound

let parallel ctx ?(label = "parallel") bodies =
  (* Spawning is a synchronisation edge (pthread_create implies
     happens-before): the parent's buffered stores and flushes become
     visible before any fiber runs. *)
  Tso.Thread_state.drain ctx.cur ctx.sink;
  Tso.Thread_state.drain_flush_buffer ctx.cur ctx.sink;
  let parent_tid = tid ctx in
  let spawned =
    List.map
      (fun body ->
        let th = Tso.Thread_state.create ~tid:ctx.next_tid in
        ctx.next_tid <- ctx.next_tid + 1;
        (th, body))
      bodies
  in
  if ctx.events_on then
    List.iter
      (fun (th, _) ->
        emit ctx
          (Analysis.Event.Thread_start
             { tid = Tso.Thread_state.tid th; parent = parent_tid; label }))
      spawned;
  (* One append for the whole section: the live-thread list grows by the
     section's fibers, not once per spawn over an ever-longer history. *)
  ctx.threads <- ctx.threads @ List.map fst spawned;
  let fibers =
    List.map
      (fun (th, body) ->
        {
          Scheduler.enter = (fun () -> ctx.cur <- th);
          body =
            (fun () ->
              body ctx;
              (* Thread exit is a synchronisation edge too: without it a
                 final release store (e.g. an unlock) could stay buffered
                 until the join while a sibling spins on it forever. *)
              Tso.Thread_state.drain th ctx.sink;
              Tso.Thread_state.drain_flush_buffer th ctx.sink);
        })
      spawned
  in
  let parent = ctx.cur in
  ctx.parallel_depth <- ctx.parallel_depth + 1;
  let pick =
    match ctx.cfg.Config.schedule_seed with
    | None -> fun _ -> 0
    | Some _ -> fun n -> next_rand ctx n
  in
  Fun.protect
    ~finally:(fun () ->
      ctx.parallel_depth <- ctx.parallel_depth - 1;
      ctx.cur <- parent)
    (fun () -> Scheduler.run_fibers ~pick fibers);
  (* Joining is a synchronisation edge for the joined threads — and only for
     them: the section's fibers drain, the parent's own buffered state stays
     buffered past the join. This must NOT happen when a power failure
     unwinds the section — buffered state dies with the threads — which is
     why it sits after run_fibers rather than in the finally (the fibers
     then stay in [ctx.threads] for the crash's drain decisions, and
     [after_crash] resets the list). *)
  List.iter
    (fun (th, _) ->
      Tso.Thread_state.drain th ctx.sink;
      Tso.Thread_state.drain_flush_buffer th ctx.sink;
      if ctx.events_on then
        emit ctx
          (Analysis.Event.Thread_join
             { tid = Tso.Thread_state.tid th; parent = parent_tid; label }))
    spawned;
  (* The joined threads are dead: drop them so later crash points and
     parallel sections walk only live threads. *)
  ctx.threads <-
    List.filter (fun th -> not (List.exists (fun (s, _) -> s == th) spawned)) ctx.threads
