(* The watchdog that makes explorations self-limiting: a single POSIX thread
   (not a domain — it spends its life in [Thread.delay] and must not tie up a
   core) sampling wall clock, the interrupt flag and the GC heap, and talking
   to the workers exclusively through atomics. See monitor.mli. *)

type reason = Interrupt | Wall_budget | Tick

(* Per-worker communication cells. [start] is the wall-clock stamp of the
   in-flight execution, [neg_infinity] when the worker is between
   executions. *)
type slot = { start : float Atomic.t; cancel : bool Atomic.t; shed : bool Atomic.t }

type t = {
  slots : slot array;
  interrupt : bool Atomic.t;
  wall_deadline : float option;
  tick_deadline : float option;
  step_deadline : float option;
  mem_budget : int option;
  on_stop : reason -> unit;
  stop_fired : bool Atomic.t;
  mem_armed : bool Atomic.t;
  quit : bool Atomic.t;
  mutable thread : Thread.t option;
}

let create ~workers ~interrupt ?wall_deadline ?tick_deadline ?step_deadline ?mem_budget
    ~on_stop () =
  if workers <= 0 then invalid_arg "Monitor.create: workers must be positive";
  {
    slots =
      Array.init workers (fun _ ->
          {
            start = Atomic.make neg_infinity;
            cancel = Atomic.make false;
            shed = Atomic.make false;
          });
    interrupt;
    wall_deadline;
    tick_deadline;
    step_deadline;
    mem_budget;
    on_stop;
    stop_fired = Atomic.make false;
    mem_armed = Atomic.make true;
    quit = Atomic.make false;
    thread = None;
  }

let cancel_flag t i = t.slots.(i).cancel

let exec_started t i =
  let s = t.slots.(i) in
  (* A deadline tripped in the dying moments of the previous execution must
     not poison this one. *)
  Atomic.set s.cancel false;
  Atomic.set s.start (Unix.gettimeofday ())

let exec_finished t i = Atomic.set t.slots.(i).start neg_infinity

let take_shed t i = Atomic.compare_and_set t.slots.(i).shed true false

let fire t reason =
  if Atomic.compare_and_set t.stop_fired false true then t.on_stop reason

let heap_bytes () = (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8)

let poll t ~now =
  if Atomic.get t.interrupt then fire t Interrupt;
  (match t.wall_deadline with Some d when now >= d -> fire t Wall_budget | _ -> ());
  (match t.tick_deadline with Some d when now >= d -> fire t Tick | _ -> ());
  (match t.step_deadline with
  | Some deadline ->
      Array.iter
        (fun s ->
          let started = Atomic.get s.start in
          if started > neg_infinity && now -. started >= deadline then Atomic.set s.cancel true)
        t.slots
  | None -> ());
  match t.mem_budget with
  | Some budget ->
      if Atomic.get t.mem_armed then begin
        if heap_bytes () >= budget then begin
          (* Disarm until the heap drops back below 90% of the budget, so a
             slowly-collecting heap sheds once, not on every sample. *)
          Atomic.set t.mem_armed false;
          Array.iter (fun s -> Atomic.set s.shed true) t.slots
        end
      end
      else if float_of_int (heap_bytes ()) < 0.9 *. float_of_int budget then
        Atomic.set t.mem_armed true
  | None -> ()

let period t ~now =
  (* Deadlines want responsive sampling; a bare mem budget can be lazier.
     Absolute deadlines scale the period to the time actually remaining — a
     budget smaller than a fixed poll period would otherwise never fire
     before the run completes (the packed replay path finishes whole test
     workloads in single-digit milliseconds). *)
  let of_deadline d = Float.max 0.001 (Float.min 0.05 (d /. 4.)) in
  let of_abs d = Float.max 0.0002 (Float.min 0.01 ((d -. now) /. 4.)) in
  let candidates =
    (match t.step_deadline with Some d -> [ of_deadline d ] | None -> [])
    @ (match t.wall_deadline with Some d -> [ of_abs d ] | None -> [])
    @ (match t.tick_deadline with Some d -> [ of_abs d ] | None -> [])
    @ if t.mem_budget <> None then [ 0.05 ] else []
  in
  List.fold_left Float.min 0.05 candidates

(* With no knob set there is nothing only a thread can notice — workers poll
   the interrupt flag themselves between replays — so plain runs spawn no
   thread at all. *)
let needed t =
  t.wall_deadline <> None || t.tick_deadline <> None || t.step_deadline <> None
  || t.mem_budget <> None

let start t =
  if needed t && t.thread = None then
    let dt = period t ~now:(Unix.gettimeofday ()) in
    t.thread <-
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get t.quit) do
               Thread.delay dt;
               (* Keep polling after a stop fired: step-deadline duty must
                  continue while workers finish their current replays, and
                  so must interrupt detection. [fire] is once-only anyway. *)
               poll t ~now:(Unix.gettimeofday ())
             done)
           ())

let shutdown t =
  Atomic.set t.quit true;
  match t.thread with
  | Some th ->
      Thread.join th;
      t.thread <- None
  | None -> ()
