(** Per-thread TSO state and the instruction-execution / eviction algorithms
    of the paper's Figures 7 and 8.

    Instruction execution (the [exec_*] functions) enqueues into the thread's
    store buffer; eviction ([evict_one], [drain]) pops entries and applies
    their cache / persistent-storage effects through a {!Sink.t}. The thread
    also tracks the per-line and per-fence timestamps used to compute the
    flush-buffer lower bounds for [clflushopt]. *)

type t

val create : tid:int -> t

val copy : t -> t
(** An independent copy of the whole per-thread volatile state: store buffer,
    flush buffer and timestamps. Used by the failure-point snapshot layer to
    freeze the state at a crash so that the buffered-drain decisions can be
    replayed on a restored copy later. *)

val tid : t -> int
val store_buffer : t -> Store_buffer.t
val flush_buffer : t -> Flush_buffer.t

(** {1 Phase one — executing instructions (Fig. 7)} *)

val exec_store : t -> Pmem.Addr.t -> value:int -> width:int -> label:string -> unit
(** Enqueues a packed [width]-byte little-endian store of [value]. *)

val exec_clflush : t -> Pmem.Addr.t -> label:string -> unit

val exec_clflushopt : t -> Sink.t -> Pmem.Addr.t -> label:string -> unit
(** Captures the current sequence number at execution time. *)

val exec_sfence : t -> unit

val exec_mfence : t -> Sink.t -> unit
(** Drains the store buffer, then the flush buffer (mfence is not buffered). *)

(** {1 Phase two — updating storage (Fig. 8)} *)

val evict_one : t -> Sink.t -> bool
(** Pops and applies the oldest store-buffer entry. [false] when empty. *)

val drain : t -> Sink.t -> unit
(** Evicts until the store buffer is empty. *)

val drain_flush_buffer : t -> Sink.t -> unit
(** Applies and empties the flush buffer (sfence/mfence/RMW semantics). *)

(** {1 Queries} *)

val bypass : t -> Pmem.Addr.t -> (int * string) option
(** Store-buffer forwarding for one byte. *)

val reset : t -> unit
(** Clears buffers and timestamps (power failure: buffered state is lost). *)
