(** A per-thread x86-TSO store buffer.

    Stores, [clflush]es, [clflushopt]s and [sfence]s are buffered in FIFO
    order when executed and take effect in the cache only when evicted
    (paper Fig. 1 and Fig. 7). Loads forward from the newest buffered store to
    the same byte (store-buffer bypass). *)

type entry =
  | Store of { addr : Pmem.Addr.t; value : int; width : int; label : string }
      (** A possibly multi-byte store, packed: [value] holds the [width]
          little-endian bytes written starting at [addr] (no per-store byte
          array). All bytes hit the cache atomically with one sequence
          number. *)
  | Clflush of { addr : Pmem.Addr.t; label : string }
  | Clflushopt of { addr : Pmem.Addr.t; enq_seq : int; label : string }
      (** [enq_seq] is σ_curr captured when the instruction executed
          (Fig. 7, Exec_CLFLUSHOPT). *)
  | Sfence

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int
val enqueue : t -> entry -> unit

val dequeue : t -> entry option
(** Oldest entry, removed. *)

val bypass : t -> Pmem.Addr.t -> (int * string) option
(** [bypass sb a] is the value (and store label) the newest buffered store
    writes to byte [a], if any — the TSO load-forwarding path. *)

val pending_writes : t -> bool
(** Whether any buffered entry is a store. *)

val copy : t -> t
(** An independent copy of the FIFO; entries are immutable and shared. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit
