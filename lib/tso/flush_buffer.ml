type entry = { addr : Pmem.Addr.t; bound : int }

type t = { q : entry Queue.t }

let create () = { q = Queue.create () }
let is_empty fb = Queue.is_empty fb.q
let length fb = Queue.length fb.q
let add fb e = Queue.add e fb.q

let drain fb f =
  let rec loop () =
    match Queue.take_opt fb.q with
    | None -> ()
    | Some e ->
        f e;
        loop ()
  in
  loop ()

let copy fb = { q = Queue.copy fb.q }
let entries fb = List.of_seq (Queue.to_seq fb.q)
let clear fb = Queue.clear fb.q
