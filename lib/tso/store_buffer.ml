type entry =
  | Store of { addr : Pmem.Addr.t; value : int; width : int; label : string }
  | Clflush of { addr : Pmem.Addr.t; label : string }
  | Clflushopt of { addr : Pmem.Addr.t; enq_seq : int; label : string }
  | Sfence

type t = { q : entry Queue.t }

let create () = { q = Queue.create () }
let is_empty sb = Queue.is_empty sb.q
let length sb = Queue.length sb.q
let enqueue sb e = Queue.add e sb.q
let dequeue sb = Queue.take_opt sb.q

let bypass sb a =
  (* Newest matching store wins: scan the whole FIFO, keep the last hit. *)
  Queue.fold
    (fun acc e ->
      match e with
      | Store { addr; value; width; label } when a >= addr && a < addr + width ->
          Some (Pmem.Bytes_le.byte_at ~width value (a - addr), label)
      | Store _ | Clflush _ | Clflushopt _ | Sfence -> acc)
    None sb.q

let pending_writes sb =
  Queue.fold
    (fun acc e -> acc || match e with Store _ -> true | Clflush _ | Clflushopt _ | Sfence -> false)
    false sb.q

let copy sb = { q = Queue.copy sb.q }
let entries sb = List.of_seq (Queue.to_seq sb.q)
let clear sb = Queue.clear sb.q
