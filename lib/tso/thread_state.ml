type t = {
  tid : int;
  sb : Store_buffer.t;
  fb : Flush_buffer.t;
  line_ts : (int, int) Hashtbl.t;  (* t_{τ,line}: last store/clflush to the line *)
  mutable fence_ts : int;  (* t_τ: last sfence *)
}

let create ~tid =
  { tid; sb = Store_buffer.create (); fb = Flush_buffer.create (); line_ts = Hashtbl.create 16; fence_ts = 0 }

let copy th =
  {
    tid = th.tid;
    sb = Store_buffer.copy th.sb;
    fb = Flush_buffer.copy th.fb;
    line_ts = Hashtbl.copy th.line_ts;
    fence_ts = th.fence_ts;
  }

let tid th = th.tid
let store_buffer th = th.sb
let flush_buffer th = th.fb
let line_ts th line = Option.value ~default:0 (Hashtbl.find_opt th.line_ts line)
let set_line_ts th line seq = Hashtbl.replace th.line_ts line seq

(* Phase one: enqueue (Fig. 7). *)

let exec_store th addr ~value ~width ~label =
  if width < 1 then invalid_arg "Thread_state.exec_store: empty store";
  Store_buffer.enqueue th.sb (Store_buffer.Store { addr; value; width; label })

let exec_clflush th addr ~label =
  Store_buffer.enqueue th.sb (Store_buffer.Clflush { addr; label })

let exec_clflushopt th (sink : Sink.t) addr ~label =
  Store_buffer.enqueue th.sb (Store_buffer.Clflushopt { addr; enq_seq = sink.cur_seq (); label })

let exec_sfence th = Store_buffer.enqueue th.sb Store_buffer.Sfence

(* Phase two: eviction (Fig. 8). *)

let drain_flush_buffer th (sink : Sink.t) =
  Flush_buffer.drain th.fb (fun { Flush_buffer.addr; bound } -> sink.flush_line addr ~seq:bound)

let apply th (sink : Sink.t) entry =
  match entry with
  | Store_buffer.Store { addr; value; width; label } ->
      (* All bytes of one store hit the cache atomically, sharing one
         sequence number (paper §4, mixed-size accesses). *)
      let seq = sink.next_seq () in
      for i = 0 to width - 1 do
        sink.push_store (addr + i) ~value:(Pmem.Bytes_le.byte_at ~width value i) ~seq ~label
      done;
      Pmem.Addr.iter_lines_spanned (fun line -> set_line_ts th line seq) addr width
  | Store_buffer.Clflush { addr; label = _ } ->
      let seq = sink.next_seq () in
      sink.flush_line addr ~seq;
      set_line_ts th (Pmem.Addr.line_of addr) seq
  | Store_buffer.Clflushopt { addr; enq_seq; label = _ } ->
      let line = Pmem.Addr.line_of addr in
      let bound = max enq_seq (max (line_ts th line) th.fence_ts) in
      Flush_buffer.add th.fb { Flush_buffer.addr; bound }
  | Store_buffer.Sfence ->
      let seq = sink.next_seq () in
      drain_flush_buffer th sink;
      th.fence_ts <- seq

let evict_one th sink =
  match Store_buffer.dequeue th.sb with
  | None -> false
  | Some entry ->
      apply th sink entry;
      true

let rec drain th sink = if evict_one th sink then drain th sink

let exec_mfence th sink =
  drain th sink;
  drain_flush_buffer th sink

let bypass th addr = Store_buffer.bypass th.sb addr

let reset th =
  Store_buffer.clear th.sb;
  Flush_buffer.clear th.fb;
  Hashtbl.reset th.line_ts;
  th.fence_ts <- 0
