(** A per-thread clflushopt reordering buffer.

    Evicted [clflushopt] instructions do not flush immediately: they wait in
    this buffer (modelling their weak ordering, Table 1) until an [sfence],
    [mfence] or locked RMW drains it (paper Fig. 8, Evict_FB). Each entry
    carries the sequence-number lower bound computed at eviction time —
    the max of the instruction's execution time, the thread's last store or
    clflush to the same line, and the thread's last sfence. *)

type entry = { addr : Pmem.Addr.t; bound : int }

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int
val add : t -> entry -> unit

val drain : t -> (entry -> unit) -> unit
(** Applies the callback to every entry (insertion order) and empties the
    buffer. *)

val copy : t -> t
(** An independent copy of the buffer; entries are immutable and shared. *)

val entries : t -> entry list
val clear : t -> unit
