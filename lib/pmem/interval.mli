(** Last-writeback intervals for cache lines.

    Jaaru's constraint-refinement technique (paper §3.1) tracks, for every
    cache line of every execution, an interval [\[lo, hi)] of sequence numbers
    bounding the last time that line was written back to persistent memory:

    - a [clflush] (or an evicted [clflushopt]) raises [lo], because the line is
      guaranteed to have been written back at or after that instruction;
    - a recovery load that observes a particular store {e refines} the
      interval: the writeback must have happened after the store read from and
      before the next store to the same byte.

    [hi = infinity] denotes an unbounded upper end. An interval can become
    empty ([lo >= hi]) only through contradictory refinements, which the
    read-from machinery never produces for reads it offered as candidates. *)

type t

val infinity : int
(** Upper bound representing "no constraint" ([max_int]). *)

val make : unit -> t
(** A fresh unconstrained interval [\[0, infinity)]: absent any flush, a dirty
    line may have been written back at any time (cache-pressure evictions are
    nondeterministic). *)

val of_bounds : lo:int -> hi:int -> t
(** A boxed interval with the given bounds — the bridge from the unboxed
    per-line state in {!Line_table} to callers wanting an interval value. *)

val lo : t -> int
val hi : t -> int

val raise_lo : t -> int -> unit
(** [raise_lo iv s] sets [lo] to [max lo s]. Used when a flush of the line
    takes effect at sequence number [s]. *)

val lower_hi : t -> int -> unit
(** [lower_hi iv s] sets [hi] to [min hi s]. Used when a recovery read proves
    the writeback happened before [s]. *)

val copy : t -> t
val set : t -> t -> unit
(** [set dst src] overwrites [dst]'s bounds with [src]'s. *)

val is_empty : t -> bool
val mem : t -> int -> bool
(** [mem iv s] is [lo <= s < hi]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
