(** CRC-32 (IEEE 802.3 polynomial) over byte sequences.

    Supports the checksum-based recovery idiom the paper singles out (§4,
    "Checksum-based recovery"): a program writes a payload followed by its
    checksum and recovery validates the payload by recomputing the checksum,
    instead of relying on a commit store. *)

val digest_bytes : int list -> int
(** [digest_bytes bs] is the CRC-32 of the bytes [bs] (each in [0, 255]),
    as a non-negative 32-bit value. *)

val digest_string : string -> int
(** CRC-32 of a string's bytes. *)

val digest_subbytes : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [b] starting at [pos], without copying. *)

val update : int -> int -> int
(** [update crc byte] folds one byte into a running checksum. Start from
    [empty]. *)

val empty : int
(** Initial running-checksum state. [digest_bytes bs] equals
    [finish (List.fold_left update empty bs)]. *)

val finish : int -> int
(** Final xor step of the running checksum. *)
