type sink = { mutable buf : Bytes.t; mutable len : int }

let sink ?(initial = 4096) () = { buf = Bytes.create (max 16 initial); len = 0 }
let reset s = s.len <- 0
let length s = s.len

let ensure s n =
  let cap = Bytes.length s.buf in
  if s.len + n > cap then begin
    let cap' = ref (2 * cap) in
    while s.len + n > !cap' do
      cap' := 2 * !cap'
    done;
    let buf = Bytes.create !cap' in
    Bytes.blit s.buf 0 buf 0 s.len;
    s.buf <- buf
  end

(* Ints are zigzag + LEB128: small magnitudes (the overwhelming case in
   memo keys — ranks, widths, tids, lengths) cost one byte instead of
   eight, which is the difference between wire keys and Marshal images of
   comparable size. The encoder always emits the minimal form, so the
   encoding stays injective and self-delimiting. *)
let int s v =
  ensure s 9;
  (* zigzag: bijective on the native int range, small |v| -> small word *)
  let z = ref ((v lsl 1) lxor (v asr 62)) in
  let buf = s.buf in
  let len = ref s.len in
  while !z lsr 7 <> 0 do
    Bytes.unsafe_set buf !len (Char.unsafe_chr (0x80 lor (!z land 0x7f)));
    incr len;
    z := !z lsr 7
  done;
  Bytes.unsafe_set buf !len (Char.unsafe_chr !z);
  s.len <- !len + 1

let bool s b =
  ensure s 1;
  Bytes.unsafe_set s.buf s.len (if b then '\001' else '\000');
  s.len <- s.len + 1

let float s f =
  ensure s 8;
  Bytes.set_int64_le s.buf s.len (Int64.bits_of_float f);
  s.len <- s.len + 8

let string s str =
  let n = String.length str in
  int s n;
  ensure s n;
  Bytes.blit_string str 0 s.buf s.len n;
  s.len <- s.len + n

let option f s = function
  | None -> bool s false
  | Some v ->
      bool s true;
      f s v

let list f s xs =
  int s (List.length xs);
  List.iter (f s) xs

let contents s = Bytes.sub_string s.buf 0 s.len
let crc s = Crc32.digest_subbytes s.buf ~pos:0 ~len:s.len

(* --- decoding ------------------------------------------------------------- *)

type src = { data : string; mutable pos : int }

exception Corrupt of string

let src data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then raise (Corrupt "truncated input")

let rd_int r =
  let z = ref 0 in
  let shift = ref 0 in
  let continue = ref true in
  while !continue do
    (* 9 septets cover the 63-bit range; a continuation past that is noise *)
    if !shift > 56 then raise (Corrupt "varint too long");
    need r 1;
    let b = Char.code (String.unsafe_get r.data r.pos) in
    r.pos <- r.pos + 1;
    z := !z lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  (!z lsr 1) lxor - (!z land 1)

let rd_bool r =
  need r 1;
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | _ -> raise (Corrupt "invalid boolean byte")

let rd_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let rd_string r =
  let n = rd_int r in
  if n < 0 then raise (Corrupt "negative string length");
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rd_option f r = if rd_bool r then Some (f r) else None

let rd_list f r =
  let n = rd_int r in
  if n < 0 then raise (Corrupt "negative list length");
  List.init n (fun _ -> f r)

let expect_end r =
  if r.pos <> String.length r.data then raise (Corrupt "trailing bytes")
