(** Flat per-cache-line interval state: an open-addressed hash table from
    line number to a persistence interval [\[lo, hi)], stored unboxed in
    parallel [int] arrays.

    This replaces the [(int, Interval.t) Hashtbl.t] in execution records.
    Every line's interval was previously a two-field mutable record behind a
    hashtable bucket — three heap objects per touched line, chased on every
    read-from refinement and copied one by one at every snapshot capture.
    Here a lookup is a probe over an [int array] and {!copy} (the snapshot
    path) is three [Array.blit]s.

    Intervals follow {!Interval}'s convention: a fresh line starts at
    [\[0, Interval.infinity)], [lo] only ever rises, [hi] only ever falls. *)

type t

val create : unit -> t
val copy : t -> t

val find : t -> int -> int
(** [find t line] is the slot index of [line], inserting a fresh
    [\[0, infinity)] interval if absent. Slot indices stay valid until the
    next insertion (they are positions in the open-addressed arrays), so
    they must not be cached across mutating calls — use them immediately. *)

val lo : t -> int -> int
val hi : t -> int -> int
(** Interval bounds at a slot index returned by {!find}. *)

val raise_lo : t -> int -> int -> unit
(** [raise_lo t slot s] raises the slot's lower bound to [s] if higher. *)

val lower_hi : t -> int -> int -> unit
(** [lower_hi t slot s] lowers the slot's upper bound to [s] if lower. *)

val fold : (int -> lo:int -> hi:int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t acc] over every materialized line, in unspecified order
    (callers sort). Lines still at the default [\[0, infinity)] are
    indistinguishable from absent ones to every reader, so canonicalizers
    must skip them. *)

val length : t -> int
