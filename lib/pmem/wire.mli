(** Hand-rolled structural serialization: length-prefixed ints and strings
    written into a reusable scratch buffer.

    This replaces [Marshal] on the explorer's per-crash path (memo keys) and
    in checkpoint payloads. The encoding is purely structural — equal values
    encode to equal bytes, and the length prefixes make it injective, so two
    values encode identically iff they are structurally equal (the property
    [Marshal.to_string v [No_sharing]] provided, without the runtime's
    generic traversal or its per-call allocation).

    Encoders write into a {!sink}, a growable byte scratch the caller resets
    and reuses across calls — one sink per worker keeps the per-crash key
    construction allocation-free apart from the final {!contents} copy.
    Decoders read from a {!src} cursor and raise {!Corrupt} on truncated or
    malformed input rather than returning partial values. *)

type sink

val sink : ?initial:int -> unit -> sink
(** A fresh scratch buffer. [initial] (default 4096) is the starting
    capacity in bytes; the buffer doubles as needed and is never shrunk. *)

val reset : sink -> unit
(** Forget the contents, keep the capacity. *)

val length : sink -> int

val int : sink -> int -> unit
(** Zigzag + LEB128 varint: one byte for |v| < 64, at most nine bytes for
    any OCaml int, including negatives and sentinels like [max_int]. The
    encoder always emits the minimal form, so the encoding is injective
    and self-delimiting. *)

val bool : sink -> bool -> unit
val float : sink -> float -> unit
(** IEEE-754 bit pattern, so the round trip is exact. *)

val string : sink -> string -> unit
(** Length-prefixed bytes. *)

val option : (sink -> 'a -> unit) -> sink -> 'a option -> unit
val list : (sink -> 'a -> unit) -> sink -> 'a list -> unit
(** Count-prefixed elements, in list order. *)

val contents : sink -> string
(** The bytes written since the last {!reset} (a fresh string). *)

val crc : sink -> int
(** CRC-32 of the current contents, without copying them out. *)

(** {1 Decoding} *)

type src

exception Corrupt of string

val src : string -> src
(** A cursor over [s], starting at offset 0. *)

val rd_int : src -> int
val rd_bool : src -> bool
val rd_float : src -> float
val rd_string : src -> string
val rd_option : (src -> 'a) -> src -> 'a option
val rd_list : (src -> 'a) -> src -> 'a list
val expect_end : src -> unit
(** Raises {!Corrupt} unless every byte has been consumed. *)
