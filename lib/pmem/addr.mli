(** Byte-granularity persistent-memory addresses and cache-line arithmetic.

    The Px86sim model (Raad et al.) and Jaaru both reason about persistency at
    cache-line granularity while accesses themselves are byte-addressable. An
    address is a plain non-negative integer; a cache line is identified by the
    address divided by {!cache_line_size}. *)

type t = int

val cache_line_size : int
(** Size of a cache line in bytes. Fixed at 64, as on every x86 part the paper
    targets. *)

val line_of : t -> int
(** [line_of a] is the cache-line identifier containing byte [a]. *)

val line_base : t -> t
(** [line_base a] is the address of the first byte of [a]'s cache line. *)

val line_offset : t -> int
(** [line_offset a] is [a]'s offset within its cache line, in [0, 63]. *)

val lines_spanned : t -> int -> int list
(** [lines_spanned a n] lists the cache-line identifiers touched by the byte
    range [a, a+n). [n] must be positive. *)

val iter_lines_spanned : (int -> unit) -> t -> int -> unit
(** [iter_lines_spanned f a n] applies [f] to each cache line touched by
    [a, a+n), in ascending order, without building a list. *)

val same_line : t -> t -> bool
(** Whether two byte addresses share a cache line. *)

val pp : Format.formatter -> t -> unit
(** Prints an address in hexadecimal. *)
