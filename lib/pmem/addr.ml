type t = int

let cache_line_size = 64
let line_of a = a / cache_line_size
let line_base a = a - (a mod cache_line_size)
let line_offset a = a mod cache_line_size
let same_line a b = line_of a = line_of b

let lines_spanned a n =
  assert (n > 0);
  let first = line_of a and last = line_of (a + n - 1) in
  let rec loop l acc = if l < first then acc else loop (l - 1) (l :: acc) in
  loop last []

let iter_lines_spanned f a n =
  assert (n > 0);
  for l = line_of a to line_of (a + n - 1) do
    f l
  done

let pp ppf a = Format.fprintf ppf "0x%x" a
