(* Open addressing with linear probing over power-of-two capacities. Keys are
   cache-line numbers (>= 0); -1 marks an empty slot. There are no deletions,
   so probing never needs tombstones. *)

type t = {
  mutable keys : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable count : int;
}

let initial_capacity = 16

let create () =
  {
    keys = Array.make initial_capacity (-1);
    lo = Array.make initial_capacity 0;
    hi = Array.make initial_capacity Interval.infinity;
    count = 0;
  }

let copy t =
  { keys = Array.copy t.keys; lo = Array.copy t.lo; hi = Array.copy t.hi; count = t.count }

let length t = t.count

(* Fibonacci hashing spreads consecutive line numbers, which are the common
   access pattern, across the table. *)
let slot_of t key =
  let mask = Array.length t.keys - 1 in
  (key * 0x2545F4914F6CDD1D) lsr 40 land mask

let rec probe t key i =
  let mask = Array.length t.keys - 1 in
  let k = Array.unsafe_get t.keys i in
  if k = key || k = -1 then i else probe t key ((i + 1) land mask)

let grow t =
  let keys = t.keys and lo = t.lo and hi = t.hi in
  let cap' = 2 * Array.length keys in
  t.keys <- Array.make cap' (-1);
  t.lo <- Array.make cap' 0;
  t.hi <- Array.make cap' Interval.infinity;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe t k (slot_of t k) in
        t.keys.(j) <- k;
        t.lo.(j) <- lo.(i);
        t.hi.(j) <- hi.(i)
      end)
    keys

let find t key =
  if key < 0 then invalid_arg "Line_table.find: negative line";
  (* Keep load factor under 1/2 so probe chains stay short. *)
  if 2 * (t.count + 1) > Array.length t.keys then grow t;
  let i = probe t key (slot_of t key) in
  if Array.unsafe_get t.keys i = -1 then begin
    t.keys.(i) <- key;
    t.lo.(i) <- 0;
    t.hi.(i) <- Interval.infinity;
    t.count <- t.count + 1
  end;
  i

let lo t i = Array.unsafe_get t.lo i
let hi t i = Array.unsafe_get t.hi i
let raise_lo t i s = if s > Array.unsafe_get t.lo i then Array.unsafe_set t.lo i s
let lower_hi t i s = if s < Array.unsafe_get t.hi i then Array.unsafe_set t.hi i s

let fold f t acc =
  let acc = ref acc in
  Array.iteri (fun i k -> if k >= 0 then acc := f k ~lo:t.lo.(i) ~hi:t.hi.(i) !acc) t.keys;
  !acc
