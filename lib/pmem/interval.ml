type t = { mutable lo : int; mutable hi : int }

let infinity = max_int
let make () = { lo = 0; hi = infinity }
let of_bounds ~lo ~hi = { lo; hi }
let lo iv = iv.lo
let hi iv = iv.hi
let raise_lo iv s = if s > iv.lo then iv.lo <- s
let lower_hi iv s = if s < iv.hi then iv.hi <- s
let copy iv = { lo = iv.lo; hi = iv.hi }

let set dst src =
  dst.lo <- src.lo;
  dst.hi <- src.hi

let is_empty iv = iv.lo >= iv.hi
let mem iv s = iv.lo <= s && s < iv.hi
let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf iv =
  if iv.hi = infinity then Format.fprintf ppf "[%d, inf)" iv.lo
  else Format.fprintf ppf "[%d, %d)" iv.lo iv.hi
