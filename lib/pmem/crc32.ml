(* Built eagerly at module init: a [lazy] here would be forced concurrently
   by parallel explorer domains, and OCaml 5 lazy is not domain-safe. *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let empty = 0xffffffff
let update crc byte = table.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let finish crc = crc lxor 0xffffffff
let digest_bytes bs = finish (List.fold_left update empty bs)

let digest_string s =
  let crc = ref empty in
  String.iter (fun c -> crc := update !crc (Char.code c)) s;
  finish !crc

let digest_subbytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_subbytes";
  let crc = ref empty in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  finish !crc
