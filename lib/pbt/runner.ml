let config =
  {
    Jaaru.Config.default with
    Jaaru.Config.max_steps = 60_000;
    stop_at_first_bug = false;
    report_multi_rf = false;
  }

(* The unexplainable state rendered into the assertion message: distinct
   unexplainable recoveries report as distinct bugs (the message is part of
   the dedup key), and the witness names the state, not just the fact.
   Bounded so Bug.normalize_message never truncates mid-binding. *)
let render_obs obs =
  let n = List.length obs in
  let shown = List.filteri (fun i _ -> i < 6) obs in
  let bindings =
    String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%d=%d" k v) shown)
  in
  if n > 6 then Printf.sprintf "{%s, ... %d more}" bindings (n - 6)
  else Printf.sprintf "{%s}" bindings

let scenario (module S : Structures.STRUCTURE) cmds =
  (* Precomputed once per sequence and shared read-only across worker
     domains; the per-replay cost of the oracle is one set lookup. *)
  let explainable = Oracle.explainable S.model S.discipline cmds in
  let pre ctx =
    let t = S.open_ ctx in
    let model = ref Fake.empty in
    List.iter
      (fun c ->
        match c with
        | Cmd.Lookup k ->
            Jaaru.Ctx.check ctx ~label:(S.id ^ ":pbt-lookup")
              (S.lookup t k = Fake.lookup S.model !model k)
              (Printf.sprintf "pbt: lookup %d disagrees with the model" k)
        | c ->
            S.apply t c;
            model := Fake.apply S.model !model c)
      cmds;
    (* Pre-crash the structure has no excuse: its observable state must
       equal the fake of the whole sequence. This is also the entire check
       of the no-crash agreement property (max_failures = 0 runs only this
       program). *)
    Jaaru.Ctx.check ctx ~label:(S.id ^ ":pbt-final")
      (S.observe t = Fake.observe !model)
      "pbt: completed state differs from the model"
  in
  let post ctx =
    let t = S.open_ ctx in
    S.verify t;
    let obs = S.observe t in
    Jaaru.Ctx.check ctx ~label:(S.id ^ ":pbt-oracle")
      (Oracle.mem explainable obs)
      ("pbt: recovered state " ^ render_obs obs
     ^ " is not the model of any persist-consistent command subset")
  in
  Jaaru.Explorer.scenario ~name:("pbt-" ^ S.id) ~pre ~post

let explore ?config:(c = config) adapter cmds =
  Jaaru.Explorer.run ~config:c (scenario adapter cmds)
