(** The crash-recovery consistency oracle.

    After a crash anywhere in a generated command sequence, the recovered
    structure's observable state must be {e explainable}: equal to the fake
    applied to some subset of the issued commands that is closed under the
    persist ordering the structure guarantees. Each bundled structure
    commits an operation with a single atomic store, so an individual
    command is either entirely visible after recovery or entirely absent —
    but {e which} commands survive depends on the structure's flush/fence
    discipline:

    - {b Any_subset}: commits of different operations live on unrelated
      cache lines and are not fenced against each other, so under Px86sim
      any combination may have reached persistence. The admissible states
      are the fake applied to every subset of the commands, {e in issue
      order} (dropping a command never reorders the survivors). This is the
      sound default: it never calls a correct structure buggy, and garbage
      (torn values, phantom keys, lost-then-resurrected bindings) is
      explainable by no subset at all.
    - {b Prefix_only}: the structure orders persists totally (an
      append-only log accepted up to the first checksum mismatch, or a
      flush+fence after every commit), so only prefixes of the issue order
      are admissible — strictly stronger, rejecting gap states
      [{c1, c3}].

    The admissible set is enumerated {e once per sequence}, outside the
    explorer (subset enumeration memoizes shared intermediate states, so
    the cost is bounded by distinct reachable model states, not 2^n), and
    shared read-only by every worker domain. *)

type discipline = Any_subset | Prefix_only

module Obs_set : Set.S with type elt = (int * int) list

val explainable : Fake.semantics -> discipline -> Cmd.t list -> Obs_set.t
(** Every observable state an admissible command subset produces, including
    the empty subset (a crash before anything persisted) and the full
    sequence. *)

val mem : Obs_set.t -> (int * int) list -> bool
