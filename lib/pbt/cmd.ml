type t = Insert of int * int | Remove of int | Lookup of int

let keys = 8
let values = 32

(* Injective over the command universe: payload uniquely names (k, v). *)
let log_payload k v = (k * (values + 1)) + v

let pp ppf = function
  | Insert (k, v) -> Format.fprintf ppf "insert %d=%d" k v
  | Remove k -> Format.fprintf ppf "remove %d" k
  | Lookup k -> Format.fprintf ppf "lookup %d" k

let render_list cmds =
  String.concat "; " (List.map (fun c -> Format.asprintf "%a" pp c) cmds)

let gen_cmd =
  let open QCheck2.Gen in
  let key = int_range 1 keys in
  let value = int_range 1 values in
  frequency
    [
      (4, map2 (fun k v -> Insert (k, v)) key value);
      (2, map (fun k -> Remove k) key);
      (2, map (fun k -> Lookup k) key);
    ]

let gen ~max_cmds = QCheck2.Gen.(list_size (int_range 1 max_cmds) gen_cmd)
