type discipline = Any_subset | Prefix_only

module Obs_set = Set.Make (struct
  type t = (int * int) list

  let compare = compare
end)

module State_set = Set.Make (struct
  type t = Fake.state

  let compare = compare
end)

(* Lookups never change the model; dropping them first keeps the subset
   frontier exactly as large as the distinct reachable states demand. *)
let mutations cmds =
  List.filter (function Cmd.Lookup _ -> false | _ -> true) cmds

let explainable semantics discipline cmds =
  let cmds = mutations cmds in
  match discipline with
  | Prefix_only ->
      let _, states =
        List.fold_left
          (fun (st, acc) c ->
            let st = Fake.apply semantics st c in
            (st, Obs_set.add (Fake.observe st) acc))
          (Fake.empty, Obs_set.singleton (Fake.observe Fake.empty))
          cmds
      in
      states
  | Any_subset ->
      (* Breadth-first over include/exclude per command, deduplicating the
         partial-state frontier: states_i = states_{i-1} ∪ {apply s c_i}.
         Equal partial states generate equal futures, so the work is bounded
         by the number of distinct reachable model states. *)
      let frontier =
        List.fold_left
          (fun frontier c ->
            State_set.fold
              (fun st acc -> State_set.add (Fake.apply semantics st c) acc)
              frontier frontier)
          (State_set.singleton Fake.empty)
          cmds
      in
      State_set.fold
        (fun st acc -> Obs_set.add (Fake.observe st) acc)
        frontier Obs_set.empty

let mem set obs = Obs_set.mem obs set
