(** The stateful-PBT driver: generate, explore, shrink, report.

    For each structure the driver generates [count] command sequences from a
    PRNG derived from [(seed, structure id)] alone, explores each under
    {!Runner.explore}, and — on the first sequence whose exploration reports
    any bug — lets QCheck2's integrated shrinking reduce it, re-exploring
    every candidate, to a minimal failing command sequence. The reported
    witness is that shrunk sequence plus the explorer's deterministic bug
    list (whose locations name the crash point).

    {b Determinism.} Without a deadline the whole report — sequences,
    execution totals, the shrunk witness — is a function of (structure,
    seed, count, max_cmds) only: generation is seeded, and each
    exploration's outcome is byte-identical across [jobs] values and the
    snapshot/memo layers by the explorer's contract. [wall] is the only
    nondeterministic field, and {!pp_report} never prints it.

    {b Nightly mode.} With [deadline] (absolute, [Unix.gettimeofday]) the
    driver checks the clock between sequences and also hands each
    exploration the remaining budget as [Config.wall_budget], so the
    watchdog monitor interrupts even a single oversized exploration
    cooperatively. A deadline-tripped structure reports [interrupted = true]
    with the sequences it completed; determinism is forfeited, minimality of
    an in-flight shrink may be too — soundness (no false failures) is not. *)

type failure = {
  cmds : Cmd.t list;  (** the shrunk minimal failing sequence *)
  shrink_steps : int;
  symptoms : string list;
      (** deduplicated sorted bug symptoms from exploring [cmds] *)
}

type report = {
  structure : string;
  seed : int;
  requested : int;  (** sequences asked for ([count]) *)
  max_cmds : int;
  sequences : int;
      (** sequences actually explored — [requested] on a clean run; more
          when shrinking re-explored candidates; fewer when a deadline
          tripped *)
  executions : int;  (** total executions across all explored sequences *)
  failure : failure option;
  interrupted : bool;  (** a [deadline] cut the run short *)
  wall : float;  (** seconds; never printed by {!pp_report} *)
}

val run_structure :
  ?config:Jaaru.Config.t ->
  ?deadline:float ->
  seed:int ->
  count:int ->
  max_cmds:int ->
  Structures.adapter ->
  report
(** [config] defaults to {!Runner.config}; pass jobs/snapshot/memo overrides
    through it. *)

val found_bug : report -> bool

val comparable_report : report -> report
(** [wall] zeroed — the projection that must be equal across [jobs] values
    and layer settings (the PBT analogue of [Explorer.comparable_outcome]). *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic rendering (no wall clock): one status line, plus the
    shrunk witness and its symptoms on failure. *)

val json_schema : string
(** The version tag written into {!json_report} artifacts
    (["jaaru-pbt-coverage/1"]); bumped on any shape change so consumers
    never misread an old artifact. *)

val json_report : report list -> string
(** The nightly coverage/witness summary as a schema-versioned JSON
    document (see the $(b,--json-out) flag of [jaaru pbt]): per structure
    the seed and requested coverage, the sequences and executions actually
    explored, the interrupted flag, and the shrunk failure witness
    (commands rendered as a repro string, plus symptoms) or [null].
    Deterministic — [wall] is never written. *)
