type semantics = Kv | Log

(* Kv: bindings sorted by key. Log: (position, payload) in append order. *)
type state = (int * int) list

let empty = []

let rec kv_insert k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | (k', v') :: rest when k' > k -> (k, v) :: (k', v') :: rest
  | b :: rest -> b :: kv_insert k v rest

let apply semantics st cmd =
  match (semantics, cmd) with
  | _, Cmd.Lookup _ -> st
  | Kv, Cmd.Insert (k, v) -> kv_insert k v st
  | Kv, Cmd.Remove k -> List.filter (fun (k', _) -> k' <> k) st
  | Log, Cmd.Insert (k, v) -> st @ [ (List.length st, Cmd.log_payload k v) ]
  | Log, Cmd.Remove _ -> st

let lookup semantics st k =
  match semantics with Log -> None | Kv -> List.assoc_opt k st

let observe st = st
