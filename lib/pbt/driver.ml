type failure = { cmds : Cmd.t list; shrink_steps : int; symptoms : string list }

type report = {
  structure : string;
  seed : int;
  requested : int;
  max_cmds : int;
  sequences : int;
  executions : int;
  failure : failure option;
  interrupted : bool;
  wall : float;
}

let symptoms_of outcome =
  List.sort_uniq compare (List.map Jaaru.Bug.symptom outcome.Jaaru.Explorer.bugs)

let run_structure ?(config = Runner.config) ?deadline ~seed ~count ~max_cmds adapter =
  let module S = (val adapter : Structures.STRUCTURE) in
  let t0 = Unix.gettimeofday () in
  let sequences = ref 0 in
  let executions = ref 0 in
  let interrupted = ref false in
  (* The property QCheck2 drives: a sequence passes iff exhaustively
     exploring its crash tree reports no bug. Once a deadline trips, the
     property answers a vacuous [true] for everything that follows —
     remaining generation (and any in-flight shrink) flies by without
     exploring, and the partial report says so. *)
  let prop cmds =
    if !interrupted then true
    else
      let over, budget =
        match deadline with
        | None -> (false, None)
        | Some d ->
            let remaining = d -. Unix.gettimeofday () in
            (remaining <= 0., Some (max 0.05 remaining))
      in
      if over then begin
        interrupted := true;
        true
      end
      else begin
        let config = { config with Jaaru.Config.wall_budget = budget } in
        let o = Runner.explore ~config adapter cmds in
        if o.Jaaru.Explorer.stats.Jaaru.Stats.interrupted then begin
          interrupted := true;
          true
        end
        else begin
          incr sequences;
          executions := !executions + o.Jaaru.Explorer.stats.Jaaru.Stats.executions;
          o.Jaaru.Explorer.bugs = []
        end
      end
  in
  let rand = Random.State.make [| 0x9aa3; seed; Hashtbl.hash S.id |] in
  let cell = QCheck2.Test.make_cell ~count ~name:S.id (Cmd.gen ~max_cmds) prop in
  let result = QCheck2.Test.check_cell ~rand cell in
  let witness cmds shrink_steps =
    (* Re-explore the shrunk counterexample (uncounted) for its bug list —
       deterministic, so the witness is too. *)
    let o = Runner.explore ~config adapter cmds in
    { cmds; shrink_steps; symptoms = symptoms_of o }
  in
  let failure =
    match QCheck2.TestResult.get_state result with
    | QCheck2.TestResult.Success -> None
    | QCheck2.TestResult.Failed { instances = [] } -> None
    | QCheck2.TestResult.Failed { instances = c :: _ } ->
        Some (witness c.QCheck2.TestResult.instance c.QCheck2.TestResult.shrink_steps)
    | QCheck2.TestResult.Failed_other { msg } ->
        Some { cmds = []; shrink_steps = 0; symptoms = [ "driver failure: " ^ msg ] }
    | QCheck2.TestResult.Error { instance; exn; _ } ->
        Some
          {
            cmds = instance.QCheck2.TestResult.instance;
            shrink_steps = instance.QCheck2.TestResult.shrink_steps;
            symptoms = [ "driver exception: " ^ Printexc.to_string exn ];
          }
  in
  {
    structure = S.id;
    seed;
    requested = count;
    max_cmds;
    sequences = !sequences;
    executions = !executions;
    failure;
    interrupted = !interrupted;
    wall = Unix.gettimeofday () -. t0;
  }

let found_bug r = r.failure <> None
let comparable_report r = { r with wall = 0. }

let pp_report ppf r =
  match r.failure with
  | None ->
      Format.fprintf ppf "@[<v>pbt %s: %s — %d sequence(s), %d execution(s) explored@]"
        r.structure
        (if r.interrupted then "interrupted (time budget)" else "ok")
        r.sequences r.executions
  | Some f ->
      Format.fprintf ppf
        "@[<v>pbt %s: FAIL — %d command(s) after %d shrink step(s)@,\
        \  commands: %s@,"
        r.structure (List.length f.cmds) f.shrink_steps (Cmd.render_list f.cmds);
      List.iter (fun s -> Format.fprintf ppf "  bug: %s@," s) f.symptoms;
      Format.fprintf ppf
        "  repro: jaaru pbt --structure %s --seed %d --count %d --max-cmds %d@]" r.structure
        r.seed r.requested r.max_cmds
