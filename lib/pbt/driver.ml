type failure = { cmds : Cmd.t list; shrink_steps : int; symptoms : string list }

type report = {
  structure : string;
  seed : int;
  requested : int;
  max_cmds : int;
  sequences : int;
  executions : int;
  failure : failure option;
  interrupted : bool;
  wall : float;
}

let symptoms_of outcome =
  List.sort_uniq compare (List.map Jaaru.Bug.symptom outcome.Jaaru.Explorer.bugs)

let run_structure ?(config = Runner.config) ?deadline ~seed ~count ~max_cmds adapter =
  let module S = (val adapter : Structures.STRUCTURE) in
  let t0 = Unix.gettimeofday () in
  let sequences = ref 0 in
  let executions = ref 0 in
  let interrupted = ref false in
  (* The property QCheck2 drives: a sequence passes iff exhaustively
     exploring its crash tree reports no bug. Once a deadline trips, the
     property answers a vacuous [true] for everything that follows —
     remaining generation (and any in-flight shrink) flies by without
     exploring, and the partial report says so. *)
  let prop cmds =
    if !interrupted then true
    else
      let over, budget =
        match deadline with
        | None -> (false, None)
        | Some d ->
            let remaining = d -. Unix.gettimeofday () in
            (remaining <= 0., Some (max 0.05 remaining))
      in
      if over then begin
        interrupted := true;
        true
      end
      else begin
        let config = { config with Jaaru.Config.wall_budget = budget } in
        let o = Runner.explore ~config adapter cmds in
        if o.Jaaru.Explorer.stats.Jaaru.Stats.interrupted then begin
          interrupted := true;
          true
        end
        else begin
          incr sequences;
          executions := !executions + o.Jaaru.Explorer.stats.Jaaru.Stats.executions;
          o.Jaaru.Explorer.bugs = []
        end
      end
  in
  let rand = Random.State.make [| 0x9aa3; seed; Hashtbl.hash S.id |] in
  let cell = QCheck2.Test.make_cell ~count ~name:S.id (Cmd.gen ~max_cmds) prop in
  let result = QCheck2.Test.check_cell ~rand cell in
  let witness cmds shrink_steps =
    (* Re-explore the shrunk counterexample (uncounted) for its bug list —
       deterministic, so the witness is too. *)
    let o = Runner.explore ~config adapter cmds in
    { cmds; shrink_steps; symptoms = symptoms_of o }
  in
  let failure =
    match QCheck2.TestResult.get_state result with
    | QCheck2.TestResult.Success -> None
    | QCheck2.TestResult.Failed { instances = [] } -> None
    | QCheck2.TestResult.Failed { instances = c :: _ } ->
        Some (witness c.QCheck2.TestResult.instance c.QCheck2.TestResult.shrink_steps)
    | QCheck2.TestResult.Failed_other { msg } ->
        Some { cmds = []; shrink_steps = 0; symptoms = [ "driver failure: " ^ msg ] }
    | QCheck2.TestResult.Error { instance; exn; _ } ->
        Some
          {
            cmds = instance.QCheck2.TestResult.instance;
            shrink_steps = instance.QCheck2.TestResult.shrink_steps;
            symptoms = [ "driver exception: " ^ Printexc.to_string exn ];
          }
  in
  {
    structure = S.id;
    seed;
    requested = count;
    max_cmds;
    sequences = !sequences;
    executions = !executions;
    failure;
    interrupted = !interrupted;
    wall = Unix.gettimeofday () -. t0;
  }

let found_bug r = r.failure <> None
let comparable_report r = { r with wall = 0. }

(* The nightly coverage artifact: a schema-versioned JSON summary CI can
   archive and trend. Hand-rolled like bench/jsonx.ml — the library links
   nothing new — and deterministic: [wall] is never written. *)

let json_schema = "jaaru-pbt-coverage/1"

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

let json_report reports =
  let b = Buffer.create 1024 in
  let str s =
    Buffer.add_char b '"';
    json_escape b s;
    Buffer.add_char b '"'
  in
  let field ?(last = false) pad k write =
    Buffer.add_string b pad;
    str k;
    Buffer.add_string b ": ";
    write ();
    Buffer.add_string b (if last then "\n" else ",\n")
  in
  Buffer.add_string b "{\n";
  field "  " "schema" (fun () -> str json_schema);
  field "  " ~last:true "structures" (fun () ->
      if reports = [] then Buffer.add_string b "[]"
      else begin
        Buffer.add_string b "[\n";
        List.iteri
          (fun i r ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b "    {\n";
            field "      " "structure" (fun () -> str r.structure);
            field "      " "seed" (fun () -> Buffer.add_string b (string_of_int r.seed));
            field "      " "requested" (fun () -> Buffer.add_string b (string_of_int r.requested));
            field "      " "max_cmds" (fun () -> Buffer.add_string b (string_of_int r.max_cmds));
            field "      " "sequences" (fun () -> Buffer.add_string b (string_of_int r.sequences));
            field "      " "executions" (fun () -> Buffer.add_string b (string_of_int r.executions));
            field "      " "interrupted" (fun () ->
                Buffer.add_string b (string_of_bool r.interrupted));
            field "      " ~last:true "failure" (fun () ->
                match r.failure with
                | None -> Buffer.add_string b "null"
                | Some f ->
                    Buffer.add_string b "{\n";
                    field "        " "shrink_steps" (fun () ->
                        Buffer.add_string b (string_of_int f.shrink_steps));
                    field "        " "commands" (fun () -> str (Cmd.render_list f.cmds));
                    field "        " ~last:true "symptoms" (fun () ->
                        Buffer.add_char b '[';
                        List.iteri
                          (fun j s ->
                            if j > 0 then Buffer.add_string b ", ";
                            str s)
                          f.symptoms;
                        Buffer.add_char b ']');
                    Buffer.add_string b "      }");
            Buffer.add_string b "    }")
          reports;
        Buffer.add_string b "\n  ]"
      end);
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp_report ppf r =
  match r.failure with
  | None ->
      Format.fprintf ppf "@[<v>pbt %s: %s — %d sequence(s), %d execution(s) explored@]"
        r.structure
        (if r.interrupted then "interrupted (time budget)" else "ok")
        r.sequences r.executions
  | Some f ->
      Format.fprintf ppf
        "@[<v>pbt %s: FAIL — %d command(s) after %d shrink step(s)@,\
        \  commands: %s@,"
        r.structure (List.length f.cmds) f.shrink_steps (Cmd.render_list f.cmds);
      List.iter (fun s -> Format.fprintf ppf "  bug: %s@," s) f.symptoms;
      Format.fprintf ppf
        "  repro: jaaru pbt --structure %s --seed %d --count %d --max-cmds %d@]" r.structure
        r.seed r.requested r.max_cmds
