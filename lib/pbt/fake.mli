(** In-memory fakes (models) of the checked structures.

    A fake is the trivially correct reference implementation a structure's
    observable behavior is compared against — an ordered association list,
    updated purely. Two semantics cover the whole suite:

    - {b Kv}: a map. [Insert] upserts, [Remove] deletes, the observable
      state is the sorted key/value binding list.
    - {b Log}: an append-only log. [Insert (k, v)] appends
      {!Cmd.log_payload}[ k v]; [Remove] and [Lookup] do not apply. The
      observable state is the payload list tagged with positions, so a
      recovered log that lost a {e middle} record is distinguishable from
      one that lost a suffix. *)

type semantics = Kv | Log

type state
(** Pure; structurally comparable. *)

val empty : state

val apply : semantics -> state -> Cmd.t -> state
(** [Lookup] never changes the state (under either semantics). *)

val lookup : semantics -> state -> int -> int option
(** What a correct structure must answer for key [k] — [None] under [Log]
    semantics, which has no point lookup. *)

val observe : state -> (int * int) list
(** The canonical observable: sorted bindings under [Kv]; [(position,
    payload)] pairs in append order under [Log]. This is the value adapters
    must reproduce from the real structure (see
    {!Structures.STRUCTURE.observe}). *)
