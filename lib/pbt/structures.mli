(** The uniform structure adapter — one signature over every PMDK map/log
    and RECIPE index, the surface the stateful-PBT engine generates against.

    An adapter binds a persistent structure to the {!Cmd} vocabulary, names
    the {!Fake.semantics} it must refine and the persist {!Oracle.discipline}
    its commit protocol guarantees, and renders the structure's observable
    state in the fake's canonical form. Everything an adapter does runs
    under a checker {!Jaaru.Ctx.t} — loads branch over read-from candidates
    during recovery, so [observe]/[verify] are exactly as crash-aware as the
    structure's own recovery code. *)

module type STRUCTURE = sig
  val id : string
  (** e.g. ["pmdk-btree"]; seeded variants use ["<id>!<bug>"]. *)

  val family : string  (** ["pmdk"] or ["recipe"] *)

  val model : Fake.semantics
  val discipline : Oracle.discipline

  type t

  val open_ : Jaaru.Ctx.t -> t
  (** Create on first use, or open — running the structure's recovery —
      after a crash. *)

  val apply : t -> Cmd.t -> unit
  (** Mutating commands only; the runner interprets [Lookup] itself via
      {!lookup} so it can compare the answer against the model. *)

  val lookup : t -> int -> int option
  (** [None] for structures without point lookup (the log). *)

  val observe : t -> (int * int) list
  (** The observable state in the fake's canonical form ({!Fake.observe}):
      sorted bindings for maps — from the structure's own full walk where it
      has one (phantom keys show up), otherwise a sweep of the key universe
      — and positioned payloads for logs. *)

  val verify : t -> unit
  (** The structure's own recovery verification ([check]); raises through
      {!Jaaru.Ctx.check} on structural corruption. *)
end

type adapter = (module STRUCTURE)

val id : adapter -> string
val family : adapter -> string

val all : unit -> adapter list
(** The bug-free adapters, one per bundled structure (7 PMDK, 6 RECIPE),
    in a fixed deterministic order. *)

val seeded : unit -> adapter list
(** Known-bug variants for negative controls — proof the oracle is not
    vacuously green. Not part of {!all}: the default [jaaru pbt] sweep and
    the fake-agreement suite cover clean structures only; tests and an
    explicit [--structure <id>!<bug>] opt in. *)

val find : string -> adapter option
(** Looks up {!all} then {!seeded} by {!id}. *)
