(** Runs one generated command sequence under crash exploration.

    The scenario built here is the heart of the engine: the pre-failure
    program opens the structure and issues the commands (checking every
    [Lookup] and the completed final state against the fake as it goes —
    pre-crash, the structure must agree with the model {e exactly}); the
    recovery program re-opens the structure (running its recovery), runs its
    own verification, and then applies the crash-consistency oracle: the
    recovered observable state must be a member of the {!Oracle.explainable}
    set precomputed for the sequence. {!Jaaru.Explorer.run} drives the
    scenario across every failure point and every read-from candidate of
    recovery, so the oracle is evaluated on every recoverable state Px86sim
    admits. *)

val config : Jaaru.Config.t
(** The engine's base configuration: exhaustive (no stop at first bug — the
    bug list must be a function of the sequence alone, not of which crash
    point a worker reached first), single failure, multi-rf reporting off,
    and the workloads' customary step budget. Callers layer [jobs] /
    [snapshot] / [memo] / budget overrides on top; outcomes are
    byte-identical across all of those by the explorer's standing
    contract. *)

val scenario : Structures.adapter -> Cmd.t list -> Jaaru.Explorer.scenario

val explore :
  ?config:Jaaru.Config.t -> Structures.adapter -> Cmd.t list -> Jaaru.Explorer.outcome
(** [explore a cmds] = [Jaaru.Explorer.run ~config (scenario a cmds)]. *)
