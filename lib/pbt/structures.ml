module type STRUCTURE = sig
  val id : string
  val family : string
  val model : Fake.semantics
  val discipline : Oracle.discipline

  type t

  val open_ : Jaaru.Ctx.t -> t
  val apply : t -> Cmd.t -> unit
  val lookup : t -> int -> int option
  val observe : t -> (int * int) list
  val verify : t -> unit
end

type adapter = (module STRUCTURE)

let id (module S : STRUCTURE) = S.id
let family (module S : STRUCTURE) = S.family

(* Structures without a full-walk [entries] are observed by sweeping the key
   universe — complete because commands only ever name keys in [1..Cmd.keys];
   structural garbage beyond it is the job of [verify]. *)
let sweep lookup t =
  List.filter_map
    (fun k -> Option.map (fun v -> (k, v)) (lookup t k))
    (List.init Cmd.keys succ)

(* --- PMDK ----------------------------------------------------------------- *)

let btree ?(bugs = Pmdk.Btree_map.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Pmdk.Btree_map.t

    let open_ ctx = Pmdk.Btree_map.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Btree_map.insert t k v
      | Cmd.Remove k -> Pmdk.Btree_map.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Pmdk.Btree_map.lookup
    let observe t = List.sort compare (Pmdk.Btree_map.entries t)
    let verify = Pmdk.Btree_map.check
  end)

let ctree ?(bugs = Pmdk.Ctree_map.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Pmdk.Ctree_map.t

    let open_ ctx = Pmdk.Ctree_map.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Ctree_map.insert t k v
      | Cmd.Remove k -> Pmdk.Ctree_map.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Pmdk.Ctree_map.lookup
    let observe t = List.sort compare (Pmdk.Ctree_map.entries t)
    let verify = Pmdk.Ctree_map.check
  end)

let rbtree ?(bugs = Pmdk.Rbtree_map.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Pmdk.Rbtree_map.t

    let open_ ctx = Pmdk.Rbtree_map.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Rbtree_map.insert t k v
      | Cmd.Remove k -> Pmdk.Rbtree_map.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Pmdk.Rbtree_map.lookup
    let observe t = List.sort compare (Pmdk.Rbtree_map.entries t)
    let verify = Pmdk.Rbtree_map.check
  end)

let hashmap_tx ?(tx_bugs = Pmdk.Tx.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Pmdk.Hashmap_tx.t

    let open_ ctx = Pmdk.Hashmap_tx.create_or_open ~tx_bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Hashmap_tx.insert t k v
      | Cmd.Remove k -> Pmdk.Hashmap_tx.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Pmdk.Hashmap_tx.lookup
    let observe t = List.sort compare (Pmdk.Hashmap_tx.entries t)
    let verify = Pmdk.Hashmap_tx.check
  end)

let hashmap_atomic ?(bugs = Pmdk.Hashmap_atomic.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Pmdk.Hashmap_atomic.t

    let open_ ctx = Pmdk.Hashmap_atomic.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Hashmap_atomic.insert t k v
      | Cmd.Remove k -> Pmdk.Hashmap_atomic.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Pmdk.Hashmap_atomic.lookup
    let observe t = List.sort compare (Pmdk.Hashmap_atomic.entries t)
    let verify = Pmdk.Hashmap_atomic.check
  end)

let skiplist ?(bugs = Pmdk.Skiplist_map.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Pmdk.Skiplist_map.t

    let open_ ctx = Pmdk.Skiplist_map.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Skiplist_map.insert t k v
      | Cmd.Remove k -> Pmdk.Skiplist_map.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Pmdk.Skiplist_map.lookup
    let observe t = List.sort compare (Pmdk.Skiplist_map.entries t)
    let verify = Pmdk.Skiplist_map.check
  end)

let clog ?(bugs = Pmdk.Clog.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "pmdk"
    let model = Fake.Log

    (* Checksum-committed recovery accepts records up to the first CRC
       mismatch: the recovered log is always a prefix of what was appended —
       the structure's fundamental guarantee, so the oracle may demand it. *)
    let discipline = Oracle.Prefix_only

    type t = Pmdk.Clog.t

    let open_ ctx = Pmdk.Clog.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Pmdk.Clog.append t (Cmd.log_payload k v)
      | Cmd.Remove _ | Cmd.Lookup _ -> ()

    let lookup _ _ = None
    let observe t = List.mapi (fun i p -> (i, p)) (Pmdk.Clog.recover t)
    let verify _ = ()
  end)

(* --- RECIPE --------------------------------------------------------------- *)

let cceh ?(bugs = Recipe.Cceh.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "recipe"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Recipe.Cceh.t

    let open_ ctx = Recipe.Cceh.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Recipe.Cceh.insert t k v
      | Cmd.Remove k -> Recipe.Cceh.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Recipe.Cceh.lookup
    let observe t = sweep Recipe.Cceh.lookup t
    let verify = Recipe.Cceh.check
  end)

let fast_fair ?(bugs = Recipe.Fast_fair.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "recipe"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Recipe.Fast_fair.t

    let open_ ctx = Recipe.Fast_fair.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Recipe.Fast_fair.insert t k v
      | Cmd.Remove k -> Recipe.Fast_fair.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Recipe.Fast_fair.lookup
    let observe t = List.sort compare (Recipe.Fast_fair.entries t)
    let verify = Recipe.Fast_fair.check
  end)

let p_art ?(bugs = Recipe.P_art.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "recipe"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Recipe.P_art.t

    let open_ ctx = Recipe.P_art.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Recipe.P_art.insert t k v
      | Cmd.Remove k -> Recipe.P_art.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Recipe.P_art.lookup
    let observe t = sweep Recipe.P_art.lookup t
    let verify = Recipe.P_art.check
  end)

let p_bwtree ?(bugs = Recipe.P_bwtree.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "recipe"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Recipe.P_bwtree.t

    let open_ ctx = Recipe.P_bwtree.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Recipe.P_bwtree.insert t k v
      | Cmd.Remove k -> Recipe.P_bwtree.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Recipe.P_bwtree.lookup
    let observe t = sweep Recipe.P_bwtree.lookup t
    let verify = Recipe.P_bwtree.check
  end)

let p_clht ?(bugs = Recipe.P_clht.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "recipe"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Recipe.P_clht.t

    let open_ ctx = Recipe.P_clht.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) -> Recipe.P_clht.insert t k v
      | Cmd.Remove k -> Recipe.P_clht.remove t k
      | Cmd.Lookup _ -> ()

    let lookup = Recipe.P_clht.lookup
    let observe t = sweep Recipe.P_clht.lookup t
    let verify = Recipe.P_clht.check
  end)

(* P-Masstree keys are two non-zero 8-byte slices; the universe [1..Cmd.keys]
   maps injectively onto (slice0, slice1) so several keys share a first
   slice and exercise the second layer. *)
let masstree_slices k = ((((k - 1) / 4) + 1), (((k - 1) mod 4) + 1))

let p_masstree ?(bugs = Recipe.P_masstree.no_bugs) ~id () : adapter =
  (module struct
    let id = id
    let family = "recipe"
    let model = Fake.Kv
    let discipline = Oracle.Any_subset

    type t = Recipe.P_masstree.t

    let open_ ctx = Recipe.P_masstree.create_or_open ~bugs ctx

    let apply t = function
      | Cmd.Insert (k, v) ->
          let slice0, slice1 = masstree_slices k in
          Recipe.P_masstree.insert t ~slice0 ~slice1 v
      | Cmd.Remove k ->
          let slice0, slice1 = masstree_slices k in
          Recipe.P_masstree.remove t ~slice0 ~slice1
      | Cmd.Lookup _ -> ()

    let lookup t k =
      let slice0, slice1 = masstree_slices k in
      Recipe.P_masstree.lookup t ~slice0 ~slice1

    let observe t = sweep lookup t
    let verify = Recipe.P_masstree.check
  end)

(* --- registries ------------------------------------------------------------ *)

let all () =
  [
    btree ~id:"pmdk-btree" ();
    ctree ~id:"pmdk-ctree" ();
    rbtree ~id:"pmdk-rbtree" ();
    hashmap_tx ~id:"pmdk-hashmap-tx" ();
    hashmap_atomic ~id:"pmdk-hashmap-atomic" ();
    skiplist ~id:"pmdk-skiplist" ();
    clog ~id:"pmdk-clog" ();
    cceh ~id:"recipe-cceh" ();
    fast_fair ~id:"recipe-fast-fair" ();
    p_art ~id:"recipe-p-art" ();
    p_bwtree ~id:"recipe-p-bwtree" ();
    p_clht ~id:"recipe-p-clht" ();
    p_masstree ~id:"recipe-p-masstree" ();
  ]

let seeded () =
  [
    hashmap_atomic
      ~bugs:{ Pmdk.Hashmap_atomic.missing_entry_flush = true }
      ~id:"pmdk-hashmap-atomic!missing-entry-flush" ();
    ctree
      ~bugs:{ Pmdk.Ctree_map.no_bugs with Pmdk.Ctree_map.missing_node_flush = true }
      ~id:"pmdk-ctree!missing-node-flush" ();
    skiplist
      ~bugs:{ Pmdk.Skiplist_map.no_bugs with Pmdk.Skiplist_map.missing_node_flush = true }
      ~id:"pmdk-skiplist!missing-node-flush" ();
    p_masstree
      ~bugs:{ Recipe.P_masstree.flush_object_not_pointer = true }
      ~id:"recipe-p-masstree!flush-object-not-pointer" ();
    fast_fair
      ~bugs:{ Recipe.Fast_fair.no_bugs with Recipe.Fast_fair.missing_entry_flush = true }
      ~id:"recipe-fast-fair!missing-entry-flush" ();
    clog ~bugs:{ Pmdk.Clog.skip_crc = true } ~id:"pmdk-clog!skip-crc" ();
  ]

let find wanted =
  List.find_opt (fun a -> id a = wanted) (all () @ seeded ())
