(** The stateful-PBT command DSL.

    One small vocabulary covers every bundled structure: keys are drawn from
    the fixed universe [1..keys] (small enough that generated sequences
    collide, update and remove the same keys; large enough to exercise
    chains, splits and multi-node shapes), values from [1..values] (never 0
    — several structures use 0 as their empty/tombstone marker). Adapters
    map the universe into their own key space (e.g. P-Masstree splits a key
    into two slices); the mapping must be injective so the fake and the real
    structure agree on identity. *)

type t =
  | Insert of int * int  (** [Insert (k, v)]: bind [k] to [v] (upsert). *)
  | Remove of int  (** Remove [k]; a no-op when absent. *)
  | Lookup of int
      (** Read [k] and compare the answer against the model — a pure
          observation that widens pre-crash coverage of search paths. *)

val keys : int
(** Size of the key universe; commands only name keys in [1..keys]. *)

val values : int
(** Values are drawn from [1..values]. *)

val log_payload : int -> int -> int
(** [log_payload k v] is the injective encoding adapters over append-only
    logs (and their fakes) store for [Insert (k, v)]. *)

val pp : Format.formatter -> t -> unit

val render_list : t list -> string
(** ["insert 3=7; remove 3; lookup 5"] — the replayable witness format. *)

val gen : max_cmds:int -> t list QCheck2.Gen.t
(** Command sequences of 1..[max_cmds] commands, weighted toward inserts
    (they grow the structure; removes and lookups only make sense against
    prior inserts). QCheck2's integrated shrinking applies: failing
    sequences shrink both in length and per-command toward the smallest
    keys/values. *)
