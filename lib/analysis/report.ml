type severity = Low | Medium | High

let severity_rank = function High -> 0 | Medium -> 1 | Low -> 2
let severity_name = function Low -> "low" | Medium -> "medium" | High -> "high"
let severity_of_name = function
  | "low" -> Some Low
  | "medium" -> Some Medium
  | "high" -> Some High
  | _ -> None

let severity_at_least ~threshold s = severity_rank s <= severity_rank threshold

type finding = {
  severity : severity;
  pass : string;
  rule : string;
  labels : string list;
  line : Pmem.Addr.t option;
  detail : string;
}

(* Total order: most severe first, then a stable lexicographic tiebreak on
   every remaining field — the merge across workers sorts with this, so the
   report list is byte-identical for any work partition. *)
let compare_finding a b =
  compare
    (severity_rank a.severity, a.pass, a.rule, a.labels, a.line, a.detail)
    (severity_rank b.severity, b.pass, b.rule, b.labels, b.line, b.detail)

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s/%s: store%s %s%s — %s" (severity_name f.severity) f.pass f.rule
    (if List.length f.labels > 1 then "s" else "")
    (String.concat ", " (List.map (fun l -> "'" ^ l ^ "'") f.labels))
    (match f.line with None -> "" | Some l -> Printf.sprintf " (line 0x%x)" l)
    f.detail
