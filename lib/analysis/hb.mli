(** The happens-before substrate for the HB-aware analysis passes — and the
    per-event clock oracle source-DPOR will query.

    One instance is created per execution and fed every event by the
    {!Engine} {e before} the passes see it, so a pass observing event [e]
    reads post-[e] clocks. The relation encoded:

    - {b Thread_start / Thread_join}: parent ⊑ child at spawn, child ⊑
      parent at join (pthread_create / pthread_join edges).
    - {b Rmw}: acquire-release. The RMW joins the last-store clock of the
      bytes it reads (the rf-into-RMW edge — a CAS lock-acquire that reads a
      plain unlock store inherits the unlocker's full history) and, when its
      store happens, publishes the joined clock to those bytes. Its locked
      mfences also commit the thread's pending flushes.
    - {b Store}: publishes the storing thread's clock as the location's
      release clock. Plain {b loads} create no edge — ordering every rf
      would hide exactly the races being hunted.
    - {b Flush / Fence}: the Px86 persist-commit edge. A flush records the
      line's current store generation as pending for the flushing thread; a
      fence by that thread commits every pending line, stamping the covered
      generation with the fencing thread's clock. Not an inter-thread edge.
    - {b Crash}: full reset — volatile clocks die with the machine, matching
      the pass contract that obligations reset at {!Event.Crash}.

    {b Determinism:} everything is a pure function of the event stream, so
    clock assignments — and any finding details derived from them — are
    byte-identical across [--jobs] values and with the snapshot/memo layers
    on or off (the repo's standing reporting contract). *)

type t

val create : ?record:bool -> unit -> t
(** [record] (default [false]) keeps a per-event clock snapshot for
    {!snapshot}. The engine's per-execution instance leaves it off; the
    DPOR oracle and tests turn it on. *)

val observe : t -> Event.t -> unit
(** Feed one event, in stream order. *)

val clock : t -> int -> Vector_clock.t
(** Current clock of a thread ([Vector_clock.empty] for a tid never seen). *)

val location : t -> int -> Vector_clock.t option
(** Release clock of the last store to a byte address, if any store
    happened since the last crash. *)

val line_gen : t -> int -> int
(** Store generation of a cache line (stores observed since the last
    crash); 0 for an untouched line. Passes pair this with
    {!line_committed} to ask whether a specific store is persisted. *)

val line_committed : t -> int -> gen:int -> before:Vector_clock.t -> bool
(** [line_committed t line ~gen ~before]: has some flush+fence edge
    committed generation [gen] of [line], with the fence's clock ⪯
    [before]? The robustness pass's core query: "was this store's line
    committed in a way ordered before the observing load?" *)

val events_seen : t -> int
(** Event ids assigned so far; the next event gets id [events_seen t].
    Ids run across crashes (they number the execution's whole stream). *)

val snapshot : t -> int -> Vector_clock.t
(** [snapshot t id] is the emitting thread's clock just after event [id]
    was applied — the happens-before oracle: event [a] happens-before [b]
    (same execution) iff [Vector_clock.leq (snapshot t a) (snapshot t b)]
    when [a]'s thread component is included, i.e. via
    {!Vector_clock.epoch_leq}. Raises [Invalid_argument] if the instance
    was created without [~record:true] or [id] is out of range. *)
