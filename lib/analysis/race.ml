(* The persistency-race detector: a FastTrack-style pass over the
   happens-before view. Two conflicting plain accesses (same byte, at least
   one a store) by different threads with no synchronisation path between
   them are a data race on persistent memory — and worse than a volatile
   race: the racing store may persist in either order, so the post-crash
   winner is undefined even on schedules where the volatile winner is fixed.

   Per byte we keep the last plain write and the plain reads since then,
   each with the accessing thread's clock at access time. The checks are the
   FastTrack epoch tests (O(1) per pair): a prior access at clock [a] by
   thread [p] is ordered before the current thread iff the current clock has
   seen component [p] as far as [a] advanced it.

   Locked RMWs are synchronisation, not accesses: the Hb substrate gives
   them acquire-release semantics (a CAS joining the clock of the store it
   reads), and this pass deliberately does not race-check their bytes —
   flagging a spinlock's CAS against the plain unlock store it synchronises
   with would turn every lock word into noise. The cost is that a genuinely
   unsynchronised plain-store-vs-RMW pair on a data word goes unreported
   here (torn-write still sees the overlap). *)

let name = "race"

type access = { tid : int; label : string; clock : Vector_clock.t }

(* Per-byte access history, stored as one 64-slot cell array per cache line
   so the per-access cost is one hashtable probe per line plus array
   indexing — not a hashtable operation per byte. *)
type cell = {
  mutable w : access option;  (* last plain write *)
  mutable rs : access list;
      (* newest plain read per thread since that write. Per thread, the
         newest read subsumes the older ones: a write unordered with an
         older read is also unordered with every newer read by the same
         thread (its own-component only grows), so keeping the newest loses
         no race — only the reported label names the latest read. *)
}

type state = {
  lines : (int, cell array) Hashtbl.t;
  mutable live : int;
      (* live threads (parent + unjoined children). Under the structured
         fork-join of [Ctx.parallel], an access made while only one thread
         is live is happens-before-ordered against everything: earlier
         events are ordered in via the join edges that made it sole
         survivor, later ones via program order or a spawn edge it
         precedes. Such accesses can never race, so the pass skips them
         entirely — the sequential portions of a workload cost nothing. *)
}

let create () = { lines = Hashtbl.create 64; live = 1 }

let cells st line =
  match Hashtbl.find_opt st.lines line with
  | Some cs -> cs
  | None ->
      let cs = Array.init Pmem.Addr.cache_line_size (fun _ -> { w = None; rs = [] }) in
      Hashtbl.add st.lines line cs;
      cs

(* Iterate the cells an access covers, line by line. *)
let iter_cells st addr width f =
  List.iter
    (fun line ->
      let base = line * Pmem.Addr.cache_line_size in
      let cs = cells st line in
      let lo = max addr base
      and hi = min (addr + width - 1) (base + Pmem.Addr.cache_line_size - 1) in
      for b = lo to hi do
        f b cs.(b - base)
      done)
    (Pmem.Addr.lines_spanned addr width)

let ordered (prior : access) now = Vector_clock.epoch_leq prior.clock ~tid:prior.tid now

let finding ~(prior : access) ~(cur : access) ~prior_kind ~cur_kind b =
  {
    Report.severity = High;
    pass = name;
    rule = "persistency-race-hb";
    labels = List.sort_uniq String.compare [ prior.label; cur.label ];
    line = Some (Pmem.Addr.line_base b);
    detail =
      Printf.sprintf
        "unsynchronized %s '%s' (thread %d @ %s) and %s '%s' (thread %d @ %s) to the same \
         persistent location; the racing store may persist in either order"
        prior_kind prior.label prior.tid
        (Vector_clock.to_string prior.clock)
        cur_kind cur.label cur.tid
        (Vector_clock.to_string cur.clock);
  }

let add_unique fs f = if List.mem f !fs then () else fs := f :: !fs

let on_event ~hb st (ev : Event.t) =
  match ev with
  | Event.Store _ when st.live <= 1 -> []
  | Load _ when st.live <= 1 -> []
  | Event.Store { addr; width; tid; label; _ } ->
      let cur = { tid; label; clock = Hb.clock hb tid } in
      (* One shared [Some cur] for every byte the store covers. *)
      let w_cur = Some cur in
      let fs = ref [] in
      iter_cells st addr width (fun b cell ->
          (match cell.w with
          | Some w when w.tid <> tid && not (ordered w cur.clock) ->
              add_unique fs (finding ~prior:w ~cur ~prior_kind:"store" ~cur_kind:"store" b)
          | _ -> ());
          List.iter
            (fun r ->
              if r.tid <> tid && not (ordered r cur.clock) then
                add_unique fs (finding ~prior:r ~cur ~prior_kind:"load" ~cur_kind:"store" b))
            cell.rs;
          cell.w <- w_cur;
          if cell.rs <> [] then cell.rs <- []);
      !fs
  | Load { addr; width; tid; label; _ } ->
      let cur = { tid; label; clock = Hb.clock hb tid } in
      (* One shared singleton for the common fresh-read-set case. *)
      let rs_cur = [ cur ] in
      let fs = ref [] in
      iter_cells st addr width (fun b cell ->
          (match cell.w with
          | Some w when w.tid <> tid && not (ordered w cur.clock) ->
              add_unique fs (finding ~prior:w ~cur ~prior_kind:"store" ~cur_kind:"load" b)
          | _ -> ());
          match cell.rs with
          | [] -> cell.rs <- rs_cur
          | [ r ] when r.tid = tid -> cell.rs <- rs_cur
          | rs -> cell.rs <- cur :: List.filter (fun r -> r.tid <> tid) rs);
      !fs
  | Thread_start _ ->
      st.live <- st.live + 1;
      []
  | Thread_join _ ->
      st.live <- st.live - 1;
      []
  | Crash _ ->
      Hashtbl.reset st.lines;
      st.live <- 1;
      []
  | Rmw _ | Flush _ | Fence _ | Failure_point _ | End_execution -> []
