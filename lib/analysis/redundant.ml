(* The redundant-flush / redundant-fence performance hints (the §5.1
   extension the paper proposes), previously computed inline by
   [Ctx.note_perf]. Low severity: they cost cycles, not data.

   All state is keyed by thread: flushes and fences order the issuing
   thread's own persist pipeline, so a store on thread A must not mask a
   redundant sfence on thread B — and two threads each flushing a line they
   both dirtied are each doing necessary work, not duplicating it. *)

let name = "redundant"

type state = {
  dirty : (int * int, unit) Hashtbl.t;
      (* (tid, line): lines a thread stored to since its last flush of them *)
  unfenced : (int, int) Hashtbl.t;  (* tid -> stores/flushes since its last fence *)
}

let create () = { dirty = Hashtbl.create 32; unfenced = Hashtbl.create 8 }

let pending st tid = Option.value ~default:0 (Hashtbl.find_opt st.unfenced tid)
let bump st tid = Hashtbl.replace st.unfenced tid (pending st tid + 1)

let finding rule label line detail =
  { Report.severity = Low; pass = name; rule; labels = [ label ]; line; detail }

let on_event st (ev : Event.t) =
  match ev with
  | Store { addr; width; tid; _ } ->
      List.iter
        (fun line -> Hashtbl.replace st.dirty (tid, line) ())
        (Pmem.Addr.lines_spanned addr width);
      bump st tid;
      []
  | Rmw { addr; width; tid; new_value; _ } ->
      (* A locked RMW carries its own mfences: its store leaves the line
         dirty (a later flush of it is useful work) and nothing stays
         unfenced behind it. The intrinsic fences are never flagged. *)
      (match new_value with
      | Some _ ->
          List.iter
            (fun line -> Hashtbl.replace st.dirty (tid, line) ())
            (Pmem.Addr.lines_spanned addr width)
      | None -> ());
      Hashtbl.replace st.unfenced tid 0;
      []
  | Flush { line_addr; tid; label; _ } ->
      let line = Pmem.Addr.line_of line_addr in
      let fs =
        if Hashtbl.mem st.dirty (tid, line) then []
        else
          [
            finding "redundant-flush" label (Some line_addr)
              "flush of a cache line with no new stores to persist";
          ]
      in
      Hashtbl.remove st.dirty (tid, line);
      bump st tid;
      fs
  | Fence { kind = Sfence; tid; label } ->
      let fs =
        if pending st tid = 0 then
          [ finding "redundant-fence" label None "sfence with nothing pending to order" ]
        else []
      in
      Hashtbl.replace st.unfenced tid 0;
      fs
  | Fence { kind = Mfence; tid; label } ->
      let fs =
        if pending st tid = 0 then
          [ finding "redundant-mfence" label None "mfence with nothing pending to order" ]
        else []
      in
      Hashtbl.replace st.unfenced tid 0;
      fs
  | Crash _ ->
      Hashtbl.reset st.dirty;
      Hashtbl.reset st.unfenced;
      []
  | Load _ | Thread_start _ | Thread_join _ | Failure_point _ | End_execution -> []
