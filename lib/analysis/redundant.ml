(* The redundant-flush / redundant-fence performance hints (the §5.1
   extension the paper proposes), previously computed inline by
   [Ctx.note_perf]. Low severity: they cost cycles, not data. *)

let name = "redundant"

type state = {
  dirty : (int, unit) Hashtbl.t;  (* lines stored to since their last flush *)
  mutable unfenced : int;  (* stores/flushes since the last fence *)
}

let create () = { dirty = Hashtbl.create 32; unfenced = 0 }

let finding rule label line detail =
  { Report.severity = Low; pass = name; rule; labels = [ label ]; line; detail }

let on_event st (ev : Event.t) =
  match ev with
  | Store { addr; width; _ } ->
      List.iter
        (fun line -> Hashtbl.replace st.dirty line ())
        (Pmem.Addr.lines_spanned addr width);
      st.unfenced <- st.unfenced + 1;
      []
  | Flush { line_addr; label; _ } ->
      let line = Pmem.Addr.line_of line_addr in
      let fs =
        if Hashtbl.mem st.dirty line then []
        else
          [
            finding "redundant-flush" label (Some line_addr)
              "flush of a cache line with no new stores to persist";
          ]
      in
      Hashtbl.remove st.dirty line;
      st.unfenced <- st.unfenced + 1;
      fs
  | Fence { kind = Sfence; label; _ } ->
      let fs =
        if st.unfenced = 0 then
          [ finding "redundant-fence" label None "sfence with nothing pending to order" ]
        else []
      in
      st.unfenced <- 0;
      fs
  | Fence { kind = Mfence; _ } ->
      st.unfenced <- 0;
      []
  | Crash _ ->
      Hashtbl.reset st.dirty;
      st.unfenced <- 0;
      []
  | Load _ | Failure_point _ | End_execution -> []
