module type S = sig
  val name : string

  type state

  val create : unit -> state
  val on_event : state -> Event.t -> Report.finding list
end

module type S_hb = sig
  val name : string

  type state

  val create : unit -> state
  val on_event : hb:Hb.t -> state -> Event.t -> Report.finding list
end

type instance = { name : string; feed : Event.t -> Report.finding list }

let instantiate (module P : S) =
  let state = P.create () in
  { name = P.name; feed = (fun ev -> P.on_event state ev) }

let instantiate_hb ~hb (module P : S_hb) =
  let state = P.create () in
  { name = P.name; feed = (fun ev -> P.on_event ~hb state ev) }
