(** Packed int-array vector clocks for the happens-before engine.

    Component [i] counts events executed by thread [i]. Values are
    immutable — {!tick} and {!join} allocate — so handed-out clocks can be
    aliased without defensive copies. Components beyond a clock's backing
    array read as 0, making clocks over a growing thread space comparable
    without padding. Domain-free: no locks, no shared state. *)

type t

val empty : t
(** The zero clock: ⪯ every clock. *)

val of_list : int list -> t
val size : t -> int

val get : t -> int -> int
(** [get c i] is thread [i]'s component; 0 when [i] is out of range. *)

val tick : t -> int -> t
(** [tick c i] is [c] with component [i] incremented (growing the clock as
    needed). *)

val join : t -> t -> t
(** Component-wise maximum — the clock after a synchronisation edge. *)

val leq : t -> t -> bool
(** [leq a b] is the happens-before order: every component of [a] bounded by
    [b]'s. *)

val epoch_leq : t -> tid:int -> t -> bool
(** The FastTrack epoch test: an access recorded at clock [a] by thread
    [tid] happens-before the thread currently at [b] iff
    [get a tid <= get b tid] — an O(1) check equivalent to [leq a b] when
    [a] is the access-time clock of a [tid] event. *)

val compare : t -> t -> int
(** Structural total order (not the happens-before partial order) — for
    deterministic sorting and test assertions. *)

val to_string : t -> string
(** ["[c0,c1,...]"] — the form embedded in finding details. *)

val pp : Format.formatter -> t -> unit
