(* The missing-flush/fence detector: per-cache-line persist-epoch state,
   flagging PM stores whose line can reach a failure point — the end of the
   execution, or a dependent commit (a fence that persists other lines) —
   without an intervening flush+fence. It reports the root-cause store
   label(s), not the recovery symptom the explorer would eventually crash on.

   Epoch discipline (after Khyzha & Lahav's Px86 persistency obligations):
   every fence ends an epoch. A correct persist of a store is
   store; flush(line); fence — all obligations of the line discharged by the
   fence. A line that is still dirty when a fence commits *other* lines is a
   persist-ordering violation candidate: whatever that fence publishes (commit
   stores, magic words) can survive a crash while the dirty line's data does
   not. Stores made in the current epoch are exempt at that fence — their
   flush legitimately belongs to a later batch — so only lines dirty since
   before the previous fence are flagged.

   Flagged lines are not reported at the fence itself: undo-log designs
   legitimately let data stores cross log-commit fences unflushed, because a
   persisted log entry can roll them back, and they are flushed later at
   transaction commit. A flag is therefore an *obligation*: it is discharged
   silently if the line is persisted (flush + fence) later in the execution,
   and becomes a finding only when the execution ends with it still open. *)

let name = "missing-flush"

type line_state = {
  mutable dirty : (string list * int) option;
      (* labels of unflushed stores to the line, epoch of the first of them *)
  mutable pending : string list;  (* labels flushed but not yet fenced *)
  mutable flagged : (string list * string) option;
      (* open obligation: stores that crossed a commit fence dirty
         (labels, label of the fence that committed other lines); cleared
         when the line is subsequently persisted — a flush covers the whole
         line, so flush + fence discharges the old stores too *)
}

type state = { lines : (int, line_state) Hashtbl.t; mutable epoch : int }

let create () = { lines = Hashtbl.create 64; epoch = 0 }

let get st line =
  match Hashtbl.find_opt st.lines line with
  | Some ls -> ls
  | None ->
      let ls = { dirty = None; pending = []; flagged = None } in
      Hashtbl.add st.lines line ls;
      ls

let add_label labels l = if List.mem l labels then labels else l :: labels

let finding rule labels line detail =
  {
    Report.severity = High;
    pass = name;
    rule;
    labels = List.sort_uniq String.compare labels;
    line = Some (line * Pmem.Addr.cache_line_size);
    detail;
  }

let on_event st (ev : Event.t) =
  match ev with
  | Store { addr; width; label; _ } ->
      List.iter
        (fun line ->
          let ls = get st line in
          match ls.dirty with
          | None -> ls.dirty <- Some ([ label ], st.epoch)
          | Some (labels, e) -> ls.dirty <- Some (add_label labels label, e))
        (Pmem.Addr.lines_spanned addr width);
      []
  | Flush { line_addr; _ } ->
      (match Hashtbl.find_opt st.lines (Pmem.Addr.line_of line_addr) with
      | Some ({ dirty = Some (labels, _); _ } as ls) ->
          ls.pending <- List.fold_left add_label ls.pending labels;
          ls.dirty <- None
      | Some _ | None -> ());
      []
  | Fence { label = fence_label; _ } ->
      let committed = ref false in
      Hashtbl.iter
        (fun _ ls ->
          if ls.pending <> [] then begin
            committed := true;
            ls.pending <- [];
            (* The flush persisted the whole line, discharging any open
               obligation on it. *)
            ls.flagged <- None
          end)
        st.lines;
      if !committed then
        Hashtbl.iter
          (fun _ ls ->
            match ls.dirty with
            | Some (labels, e) when e < st.epoch && ls.flagged = None ->
                ls.flagged <- Some (labels, fence_label)
            | _ -> ())
          st.lines;
      st.epoch <- st.epoch + 1;
      []
  | End_execution ->
      let fs = ref [] in
      Hashtbl.iter
        (fun line ls ->
          match ls.flagged with
          | Some (labels, fence_label) ->
              fs :=
                finding "unpersisted-at-commit" labels line
                  (Printf.sprintf
                     "line was still unflushed when '%s' persisted other lines and was never \
                      persisted afterwards; a crash keeps the committed state but loses these \
                      stores"
                     fence_label)
                :: !fs
          | None -> (
              match ls.dirty with
              | Some (labels, _) ->
                  fs :=
                    finding "unflushed-at-end" labels line
                      "stored but never flushed; a failure at the end of the execution can \
                       lose the data"
                    :: !fs
              | None ->
                  if ls.pending <> [] then
                    fs :=
                      finding "unfenced-at-end" ls.pending line
                        "flushed but never fenced; the flush may not have completed at a \
                         failure"
                      :: !fs))
        st.lines;
      !fs
  | Crash _ ->
      (* Volatile obligations die with the machine; recovery starts clean. *)
      Hashtbl.reset st.lines;
      st.epoch <- 0;
      []
  | Load _ | Failure_point _ -> []
