(* The missing-flush/fence detector: per-cache-line persist-epoch state,
   flagging PM stores whose line can reach a failure point — the end of the
   execution, or a dependent commit (a fence that persists other lines) —
   without an intervening flush+fence. It reports the root-cause store
   label(s), not the recovery symptom the explorer would eventually crash on.

   Epoch discipline (after Khyzha & Lahav's Px86 persistency obligations):
   every fence ends an epoch. A correct persist of a store is
   store; flush(line); fence — all obligations of the line discharged by the
   fence. A line that is still dirty when a fence commits *other* lines is a
   persist-ordering violation candidate: whatever that fence publishes (commit
   stores, magic words) can survive a crash while the dirty line's data does
   not. Stores made in the current epoch are exempt at that fence — their
   flush legitimately belongs to a later batch — so only lines dirty since
   before the previous fence are flagged.

   Flagged lines are not reported at the fence itself: undo-log designs
   legitimately let data stores cross log-commit fences unflushed, because a
   persisted log entry can roll them back, and they are flushed later at
   transaction commit. A flag is therefore an *obligation*: it is discharged
   silently if the line is persisted (flush + fence) later in the execution,
   and becomes a finding only when the execution ends with it still open.

   Alongside the store labels, each obligation carries the tids of the
   storing threads, reported in the finding detail — on multi-threaded
   workloads "which thread left the line unflushed" is the first triage
   question. The tids enrich the detail only; the labels/line identity of
   each finding is unchanged. *)

let name = "missing-flush"

type line_state = {
  mutable dirty : (string list * int list * int) option;
      (* labels and tids of unflushed stores to the line, epoch of the first *)
  mutable pending : (string list * int list) option;
      (* labels/tids flushed but not yet fenced *)
  mutable flagged : (string list * int list * string) option;
      (* open obligation: stores that crossed a commit fence dirty
         (labels, tids, label of the fence that committed other lines);
         cleared when the line is subsequently persisted — a flush covers the
         whole line, so flush + fence discharges the old stores too *)
}

type state = { lines : (int, line_state) Hashtbl.t; mutable epoch : int }

let create () = { lines = Hashtbl.create 64; epoch = 0 }

let get st line =
  match Hashtbl.find_opt st.lines line with
  | Some ls -> ls
  | None ->
      let ls = { dirty = None; pending = None; flagged = None } in
      Hashtbl.add st.lines line ls;
      ls

let add_label labels l = if List.mem l labels then labels else l :: labels
let add_tid tids t = if List.mem t tids then tids else t :: tids

(* "thread 0" / "threads 0,1" — appended to finding details. *)
let threads_str tids =
  let tids = List.sort_uniq compare tids in
  Printf.sprintf "thread%s %s"
    (if List.length tids > 1 then "s" else "")
    (String.concat "," (List.map string_of_int tids))

let finding rule labels line detail =
  {
    Report.severity = High;
    pass = name;
    rule;
    labels = List.sort_uniq String.compare labels;
    line = Some (line * Pmem.Addr.cache_line_size);
    detail;
  }

let mark_dirty st ~tid ~label ~epoch addr width =
  List.iter
    (fun line ->
      let ls = get st line in
      match ls.dirty with
      | None -> ls.dirty <- Some ([ label ], [ tid ], epoch)
      | Some (labels, tids, e) -> ls.dirty <- Some (add_label labels label, add_tid tids tid, e))
    (Pmem.Addr.lines_spanned addr width)

(* A fence: commit every pending flush; if anything committed, lines dirty
   since before the previous epoch acquire an open obligation. *)
let fence st fence_label =
  let committed = ref false in
  Hashtbl.iter
    (fun _ ls ->
      if ls.pending <> None then begin
        committed := true;
        ls.pending <- None;
        (* The flush persisted the whole line, discharging any open
           obligation on it. *)
        ls.flagged <- None
      end)
    st.lines;
  if !committed then
    Hashtbl.iter
      (fun _ ls ->
        match ls.dirty with
        | Some (labels, tids, e) when e < st.epoch && ls.flagged = None ->
            ls.flagged <- Some (labels, tids, fence_label)
        | _ -> ())
      st.lines;
  st.epoch <- st.epoch + 1

let on_event st (ev : Event.t) =
  match ev with
  | Store { addr; width; tid; label; _ } ->
      mark_dirty st ~tid ~label ~epoch:st.epoch addr width;
      []
  | Rmw { addr; width; tid; label; new_value; _ } ->
      (* Locked RMW: its mfences end the epoch and commit pending flushes;
         its store (when taken) dirties the line in the new epoch. *)
      fence st label;
      (match new_value with
      | Some _ -> mark_dirty st ~tid ~label ~epoch:st.epoch addr width
      | None -> ());
      []
  | Flush { line_addr; _ } ->
      (match Hashtbl.find_opt st.lines (Pmem.Addr.line_of line_addr) with
      | Some ({ dirty = Some (labels, tids, _); _ } as ls) ->
          let p_labels, p_tids =
            match ls.pending with Some (pl, pt) -> (pl, pt) | None -> ([], [])
          in
          ls.pending <-
            Some
              ( List.fold_left add_label p_labels labels,
                List.fold_left add_tid p_tids tids );
          ls.dirty <- None
      | Some _ | None -> ());
      []
  | Fence { label = fence_label; _ } ->
      fence st fence_label;
      []
  | End_execution ->
      let fs = ref [] in
      Hashtbl.iter
        (fun line ls ->
          match ls.flagged with
          | Some (labels, tids, fence_label) ->
              fs :=
                finding "unpersisted-at-commit" labels line
                  (Printf.sprintf
                     "line was still unflushed (stores by %s) when '%s' persisted other lines \
                      and was never persisted afterwards; a crash keeps the committed state \
                      but loses these stores"
                     (threads_str tids) fence_label)
                :: !fs
          | None -> (
              match ls.dirty with
              | Some (labels, tids, _) ->
                  fs :=
                    finding "unflushed-at-end" labels line
                      (Printf.sprintf
                         "stored by %s but never flushed; a failure at the end of the \
                          execution can lose the data"
                         (threads_str tids))
                    :: !fs
              | None -> (
                  match ls.pending with
                  | Some (labels, tids) ->
                      fs :=
                        finding "unfenced-at-end" labels line
                          (Printf.sprintf
                             "flushed (stores by %s) but never fenced; the flush may not \
                              have completed at a failure"
                             (threads_str tids))
                        :: !fs
                  | None -> ())))
        st.lines;
      !fs
  | Crash _ ->
      (* Volatile obligations die with the machine; recovery starts clean. *)
      Hashtbl.reset st.lines;
      st.epoch <- 0;
      []
  | Load _ | Thread_start _ | Thread_join _ | Failure_point _ -> []
