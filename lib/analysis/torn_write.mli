(** Persistency-race / torn-write detector. Rules:
    - ["straddles-cache-line"] (High): one store spanning two cache lines —
      the halves persist independently;
    - ["cross-thread-overlap"] (High): two threads wrote the same bytes with
      no intervening fence — the persisted winner is undefined;
    - ["unfenced-overwrite"] (Medium): one thread overwrote its own unfenced
      bytes under a different label — idiomatic for initialise-then-fill
      protocols, so advisory only. *)

include Pass.S
