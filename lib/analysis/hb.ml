(* The happens-before substrate: one instance per execution, observing the
   typed event stream ahead of the detector passes and maintaining

   - per-thread clocks (ticked at every event the thread executes),
   - per-location (byte) release clocks: the clock of the last store, which
     a locked RMW joins on access — the rf-into-RMW edge that makes a
     CAS-acquire inherit the full history of a plain-store unlock,
   - per-cache-line persist state: a store generation counter plus the
     flush+fence commit edges of Px86 (a fence by the flushing thread
     commits every line it flushed, stamping the committed generation with
     the fencing thread's clock).

   Synchronisation edges encoded (Px86 / pthread):
     Thread_start   parent clock ⊑ child clock
     Thread_join    child clock ⊑ parent clock
     Rmw            joins the location's last-store clock (acquire) and
                    publishes its own clock to the location (release); also
                    commits the thread's pending flushes (its mfences)
     Fence          commits the thread's own pending flushes — NOT an
                    inter-thread edge (fences order persists, not threads)
     Crash          full reset: volatile clocks die with the machine

   Everything here is a deterministic function of the event stream, so the
   per-event clock assignment (see [snapshot]) is stable across --jobs and
   across the snapshot/memo layers — the oracle contract source-DPOR will
   rely on. *)

type line_commit = { covers : int; at : Vector_clock.t }

type line_info = {
  mutable gen : int;  (* stores to the line since the last crash *)
  mutable commits : line_commit list;  (* newest first *)
}

type t = {
  mutable threads : Vector_clock.t array;  (* clock per tid, grown on demand *)
  loc : (int, Vector_clock.t array) Hashtbl.t;
      (* line -> per-byte last-store release clock ([Vector_clock.empty] =
         never stored). One hashtable probe per line instead of per byte —
         the passes hit this on every access, so the constant matters. *)
  lines : (int, line_info) Hashtbl.t;
  pending : (int, (int * int) list) Hashtbl.t;
      (* tid -> (line, generation covered) flushed but not yet fenced *)
  mutable events : int;  (* event ids assigned so far *)
  record : bool;
  mutable snaps : Vector_clock.t array;  (* event id -> emitting thread's clock *)
  mutable snap_len : int;
}

let create ?(record = false) () =
  {
    threads = [| Vector_clock.tick Vector_clock.empty 0 |];
    loc = Hashtbl.create 64;
    lines = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    events = 0;
    record;
    snaps = (if record then Array.make 64 Vector_clock.empty else [||]);
    snap_len = 0;
  }

let clock t tid =
  if tid >= 0 && tid < Array.length t.threads then t.threads.(tid) else Vector_clock.empty

let set_clock t tid c =
  if tid >= Array.length t.threads then begin
    let grown = Array.make (tid + 1) Vector_clock.empty in
    Array.blit t.threads 0 grown 0 (Array.length t.threads);
    t.threads <- grown
  end;
  t.threads.(tid) <- c

let tick t tid = set_clock t tid (Vector_clock.tick (clock t tid) tid)

let loc_cells t line =
  match Hashtbl.find_opt t.loc line with
  | Some cells -> cells
  | None ->
      let cells = Array.make Pmem.Addr.cache_line_size Vector_clock.empty in
      Hashtbl.add t.loc line cells;
      cells

let location t b =
  match Hashtbl.find_opt t.loc (Pmem.Addr.line_of b) with
  | None -> None
  | Some cells ->
      let c = cells.(Pmem.Addr.line_offset b) in
      if Vector_clock.size c = 0 then None else Some c

(* Iterate the (line, cells, byte range) triples an access spans. *)
let iter_spanned t addr width f =
  List.iter
    (fun line ->
      let base = line * Pmem.Addr.cache_line_size in
      let lo = max addr base and hi = min (addr + width - 1) (base + Pmem.Addr.cache_line_size - 1) in
      f line (loc_cells t line) ~base ~lo ~hi)
    (Pmem.Addr.lines_spanned addr width)

let line_info t line =
  match Hashtbl.find_opt t.lines line with
  | Some li -> li
  | None ->
      let li = { gen = 0; commits = [] } in
      Hashtbl.add t.lines line li;
      li

let line_gen t line = match Hashtbl.find_opt t.lines line with Some li -> li.gen | None -> 0

(* Is the store that was generation [gen] of [line] committed by a
   flush+fence edge ordered before [before]? *)
let line_committed t line ~gen ~before =
  match Hashtbl.find_opt t.lines line with
  | None -> false
  | Some li ->
      List.exists (fun c -> c.covers >= gen && Vector_clock.leq c.at before) li.commits

let record_snapshot t c =
  if t.record then begin
    if t.snap_len = Array.length t.snaps then begin
      let grown = Array.make (max 64 (2 * t.snap_len)) Vector_clock.empty in
      Array.blit t.snaps 0 grown 0 t.snap_len;
      t.snaps <- grown
    end;
    t.snaps.(t.snap_len) <- c;
    t.snap_len <- t.snap_len + 1
  end

let events_seen t = t.events

let snapshot t id =
  if not t.record then invalid_arg "Hb.snapshot: created without ~record:true";
  if id < 0 || id >= t.snap_len then
    invalid_arg (Printf.sprintf "Hb.snapshot: event id %d out of range [0,%d)" id t.snap_len);
  t.snaps.(id)

let reset t =
  t.threads <- [| Vector_clock.tick Vector_clock.empty 0 |];
  Hashtbl.reset t.loc;
  Hashtbl.reset t.lines;
  Hashtbl.reset t.pending

let commit_pending t tid =
  match Hashtbl.find_opt t.pending tid with
  | None | Some [] -> ()
  | Some flushed ->
      let at = clock t tid in
      List.iter
        (fun (line, covers) ->
          let li = line_info t line in
          li.commits <- { covers; at } :: li.commits)
        flushed;
      Hashtbl.replace t.pending tid []

let observe t (ev : Event.t) =
  let emitter =
    match ev with
    | Store { tid; _ } | Load { tid; _ } | Rmw { tid; _ } | Flush { tid; _ }
    | Fence { tid; _ } | Failure_point { tid; _ } | Crash { tid; _ } ->
        tid
    | Thread_start { tid; _ } | Thread_join { tid; _ } -> tid
    | End_execution -> 0
  in
  (match ev with
  | Event.Store { addr; width; tid; _ } ->
      tick t tid;
      let c = clock t tid in
      iter_spanned t addr width (fun line cells ~base ~lo ~hi ->
          for b = lo to hi do
            cells.(b - base) <- c
          done;
          let li = line_info t line in
          li.gen <- li.gen + 1)
  | Load { tid; _ } ->
      (* Plain loads create no edge: making every rf a synchronisation would
         order the racing accesses we are trying to catch. *)
      tick t tid
  | Rmw { addr; width; tid; new_value; _ } ->
      tick t tid;
      (* Acquire: join the last-store clock of every byte read — the
         rf-into-RMW edge (a CAS that reads an unlock store inherits the
         unlocker's history). *)
      let acquired = ref (clock t tid) in
      iter_spanned t addr width (fun _ cells ~base ~lo ~hi ->
          for b = lo to hi do
            acquired := Vector_clock.join !acquired cells.(b - base)
          done);
      set_clock t tid !acquired;
      (* Release: a successful RMW publishes the joined clock. *)
      (match new_value with
      | Some _ ->
          let c = clock t tid in
          iter_spanned t addr width (fun line cells ~base ~lo ~hi ->
              for b = lo to hi do
                cells.(b - base) <- c
              done;
              let li = line_info t line in
              li.gen <- li.gen + 1)
      | None -> ());
      (* Its locked mfences commit the thread's pending flushes. *)
      commit_pending t tid
  | Flush { line_addr; tid; _ } ->
      tick t tid;
      let line = Pmem.Addr.line_of line_addr in
      let li = line_info t line in
      let mine = Option.value ~default:[] (Hashtbl.find_opt t.pending tid) in
      Hashtbl.replace t.pending tid ((line, li.gen) :: mine)
  | Fence { tid; _ } ->
      tick t tid;
      commit_pending t tid
  | Thread_start { tid; parent; _ } ->
      set_clock t tid (Vector_clock.tick (Vector_clock.join (clock t tid) (clock t parent)) tid);
      tick t parent
  | Thread_join { tid; parent; _ } ->
      set_clock t parent (Vector_clock.join (clock t parent) (clock t tid));
      tick t parent
  | Failure_point { tid; _ } -> tick t tid
  | Crash _ -> reset t
  | End_execution -> ());
  record_snapshot t (clock t emitter);
  t.events <- t.events + 1
