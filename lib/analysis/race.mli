(** The persistency-race detector (High severity, rule
    ["persistency-race-hb"]).

    Flags concurrent conflicting plain accesses — same byte, at least one a
    store, different threads, no happens-before path between them (FastTrack
    epoch test against the {!Hb} clocks). A racing store on persistent
    memory may persist in either order, so the post-crash winner is
    undefined regardless of the volatile schedule. Findings carry both
    access labels and both access-time clocks.

    Locked RMWs are treated as pure synchronisation (the acquire-release
    edges live in {!Hb}) and are not race-checked — a spinlock CAS spinning
    against a plain unlock store is protocol, not a race. *)

include Pass.S_hb
