(** The typed checker event stream.

    Every PM-visible operation the checker context executes is mirrored as one
    of these events, carrying the byte address, access width, cache line,
    issuing thread and source label. The bounded {i trace ring} stores them for
    bug reports (rendered lazily — nothing is formatted unless a bug is
    printed) and the {!Engine} feeds them to the analysis passes online. *)

type flush_kind =
  | Clflush
  | Clflushopt
  | Clwb  (** Same reordering semantics as [clflushopt] (paper §2), but a
              distinct instruction — traces and passes must not conflate
              them. *)

type fence_kind = Sfence | Mfence

type t =
  | Store of { addr : Pmem.Addr.t; width : int; value : int; tid : int; label : string }
  | Load of { addr : Pmem.Addr.t; width : int; value : int; tid : int; label : string }
  | Rmw of {
      addr : Pmem.Addr.t;
      width : int;
      old_value : int;
      new_value : int option;
      tid : int;
      label : string;
    }
      (** One locked RMW instruction (cas / xchg / fetch-add), atomic
          [mfence; load; conditional store; mfence]. [new_value] is [None]
          when the store did not happen (a failed CAS). Emitted as a single
          event — its constituent operations are not mirrored separately —
          because it is a synchronisation point: the happens-before engine
          gives it acquire-release semantics. *)
  | Flush of { line_addr : Pmem.Addr.t; kind : flush_kind; tid : int; label : string }
      (** One flush instruction for one whole cache line; [line_addr] is the
          line's base address. *)
  | Fence of { kind : fence_kind; tid : int; label : string }
  | Thread_start of { tid : int; parent : int; label : string }
      (** Thread [tid] spawned by [parent] in a {!Ctx.parallel} section — a
          happens-before edge from everything the parent did. *)
  | Thread_join of { tid : int; parent : int; label : string }
      (** Thread [tid] joined by [parent] at the end of its section — a
          happens-before edge into everything the parent does next. *)
  | Failure_point of { label : string; tid : int }
      (** A failure-injection point was considered here (whether or not the
          exploration chose to fail). *)
  | Crash of { label : string option; tid : int }
      (** A power failure was injected; [None] for an explicit {!Ctx.crash}.
          Volatile state — including every unpersisted ordering obligation
          and every happens-before clock — is gone; passes must reset. *)
  | End_execution
      (** The scenario ran to completion (not emitted on the crash path). *)

val render : t -> string
(** The human-readable one-line form used in bug-report traces. *)

val pp : Format.formatter -> t -> unit
