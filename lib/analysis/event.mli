(** The typed checker event stream.

    Every PM-visible operation the checker context executes is mirrored as one
    of these events, carrying the byte address, access width, cache line,
    issuing thread and source label. The bounded {i trace ring} stores them for
    bug reports (rendered lazily — nothing is formatted unless a bug is
    printed) and the {!Engine} feeds them to the analysis passes online. *)

type flush_kind =
  | Clflush
  | Clflushopt
  | Clwb  (** Same reordering semantics as [clflushopt] (paper §2), but a
              distinct instruction — traces and passes must not conflate
              them. *)

type fence_kind = Sfence | Mfence

type t =
  | Store of { addr : Pmem.Addr.t; width : int; value : int; tid : int; label : string }
  | Load of { addr : Pmem.Addr.t; width : int; value : int; tid : int; label : string }
  | Flush of { line_addr : Pmem.Addr.t; kind : flush_kind; tid : int; label : string }
      (** One flush instruction for one whole cache line; [line_addr] is the
          line's base address. *)
  | Fence of { kind : fence_kind; tid : int; label : string }
  | Failure_point of { label : string }
      (** A failure-injection point was considered here (whether or not the
          exploration chose to fail). *)
  | Crash of { label : string option }
      (** A power failure was injected; [None] for an explicit {!Ctx.crash}.
          Volatile state — including every unpersisted ordering obligation —
          is gone; passes must reset. *)
  | End_execution
      (** The scenario ran to completion (not emitted on the crash path). *)

val render : t -> string
(** The human-readable one-line form used in bug-report traces. *)

val pp : Format.formatter -> t -> unit
