(** Analysis findings: what a pass reports, with severity, the root-cause
    store label(s), and a deterministic total order. *)

type severity =
  | Low  (** advisory — e.g. a redundant flush (performance, not correctness) *)
  | Medium  (** suspicious but idiomatic in some protocols *)
  | High  (** a crash-consistency bug candidate *)

val severity_rank : severity -> int
(** [High] ranks 0 (first), [Low] last. *)

val severity_name : severity -> string
val severity_of_name : string -> severity option

val severity_at_least : threshold:severity -> severity -> bool
(** Whether a severity meets a reporting threshold ([High] meets every
    threshold; [Low] only meets [Low]). *)

type finding = {
  severity : severity;
  pass : string;  (** name of the pass that produced it *)
  rule : string;  (** pass-local rule identifier, e.g. ["unpersisted-at-commit"] *)
  labels : string list;
      (** the root-cause {e store} labels (sorted, deduplicated) — the
          source locations to fix, not the symptom location *)
  line : Pmem.Addr.t option;  (** base address of the affected cache line *)
  detail : string;
}

val compare_finding : finding -> finding -> int
(** Severity-major total order; ties broken on every other field, so sorted
    report lists are byte-identical regardless of discovery order. *)

val pp_finding : Format.formatter -> finding -> unit
