(** Packed event cells: a fixed-width [int]-array encoding of {!Event.t}.

    The replay hot path emits one event per simulated instruction. Boxing
    each as an {!Event.t} constructor allocates a record per step that is
    usually thrown away unrendered — the trace ring overwrites it, no pass
    ever sees it. This module packs an event into {!cell_width} consecutive
    ints (tag, address, auxiliary field, values, thread id, interned label)
    so a ring of events is one flat [int array]: emission is a handful of
    array writes, snapshot copies are blits, and the boxed constructor is
    rebuilt lazily only when a bug report or a pass needs structure.

    Labels are interned in a per-worker append-only {!labels} table; a cell
    stores the label's id. Tables are never shared across workers, so ids
    are only meaningful next to the table that produced them. *)

type labels

val labels : unit -> labels
(** A fresh, empty intern table. *)

val intern : labels -> string -> int
(** The id of [s], assigned first-come append-only. *)

val label_name : labels -> int -> string
(** The string behind an id produced by the same table. *)

val cell_width : int
(** Ints per encoded event. *)

val encode : labels -> int array -> int -> Event.t -> unit
(** [encode labels cells off ev] packs [ev] into
    [cells.(off) .. cells.(off + cell_width - 1)]. *)

val decode : labels -> int array -> int -> Event.t
(** Inverse of {!encode} over the same table: rebuilds the boxed event. *)

(** {1 Unboxed encoders}

    One per event shape, so hot call sites pack fields directly without
    constructing the {!Event.t} value first. *)

val encode_store :
  labels -> int array -> int -> addr:int -> width:int -> value:int -> tid:int ->
  label:string -> unit

val encode_load :
  labels -> int array -> int -> addr:int -> width:int -> value:int -> tid:int ->
  label:string -> unit

val encode_rmw :
  labels -> int array -> int -> addr:int -> width:int -> old_value:int ->
  new_value:int option -> tid:int -> label:string -> unit

val encode_flush :
  labels -> int array -> int -> line_addr:int -> kind:Event.flush_kind -> tid:int ->
  label:string -> unit

val encode_fence :
  labels -> int array -> int -> kind:Event.fence_kind -> tid:int -> label:string -> unit

val encode_thread_start :
  labels -> int array -> int -> tid:int -> parent:int -> label:string -> unit

val encode_thread_join :
  labels -> int array -> int -> tid:int -> parent:int -> label:string -> unit

val encode_failure_point : labels -> int array -> int -> label:string -> tid:int -> unit
val encode_crash : labels -> int array -> int -> label:string option -> tid:int -> unit
val encode_end_execution : labels -> int array -> int -> unit

val serialize : labels -> int array -> int -> Pmem.Wire.sink -> unit
(** Writes the cell at [off] into a wire sink in a table-independent form:
    every slot as an int except the label slot, written as the label
    {e string}. Equal events serialize to equal bytes regardless of the
    intern order of the tables that encoded them — the property canonical
    memo keys need. *)
