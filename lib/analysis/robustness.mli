(** The strict-persistency (robustness) check, after PSan (Medium severity,
    rule ["unordered-persist-observed"]).

    Flags a load observing another thread's store whose cache line has not
    been committed by a flush+fence edge ordered happens-before the load —
    the observer may persist dependent data while the observed value can
    still be lost at a crash, producing post-crash states no sequential
    execution explains. Same-thread observation (TSO store forwarding) is
    exempt. The finding's label is the {e store}'s (the root cause to
    persist or suppress), the detail names both threads and the observing
    load. *)

include Pass.S_hb
