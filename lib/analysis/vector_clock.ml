(* Packed int-array vector clocks. Values are immutable: [tick] and [join]
   return fresh arrays, so a clock handed out (to a finding detail, an event
   snapshot, a per-location table) can be aliased freely without defensive
   copies. Arrays are sized to the highest component ever set; missing
   components read as 0, which makes clocks over a growing tid space
   comparable without padding. *)

type t = int array

let empty = [||]

let size = Array.length

let get (c : t) i = if i >= 0 && i < Array.length c then c.(i) else 0

let of_list = Array.of_list

let tick (c : t) i =
  if i < 0 then invalid_arg "Vector_clock.tick: negative component";
  let n = max (Array.length c) (i + 1) in
  let r = Array.make n 0 in
  Array.blit c 0 r 0 (Array.length c);
  r.(i) <- r.(i) + 1;
  r

let join (a : t) (b : t) =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else begin
    let n = max (Array.length a) (Array.length b) in
    let r = Array.init n (fun i -> max (get a i) (get b i)) in
    r
  end

(* a ⪯ b: every component of [a] is bounded by [b]'s. *)
let leq (a : t) (b : t) =
  let rec go i = i >= Array.length a || (a.(i) <= get b i && go (i + 1)) in
  go 0

(* The FastTrack epoch test: the access recorded at clock [a] by thread
   [tid] happens-before the thread currently at clock [b] iff [b] has seen
   [tid]'s component as far as [a] advanced it — no full comparison
   needed. *)
let epoch_leq (a : t) ~tid (b : t) = get a tid <= get b tid

let compare = Stdlib.compare

let to_string (c : t) =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list c)) ^ "]"

let pp ppf c = Format.pp_print_string ppf (to_string c)
