(** Redundant-flush / redundant-fence hints (performance, not correctness):
    flushing a cache line with no new stores to persist, or an [sfence] /
    [mfence] with no stores or flushes pending since the previous fence.
    All state is per-thread — a store on thread A does not excuse a
    redundant fence on thread B. Low severity; rules ["redundant-flush"],
    ["redundant-fence"] and ["redundant-mfence"], with the flush/fence label
    as the reported label. A locked RMW's intrinsic mfences are never
    flagged. *)

include Pass.S
