(** Redundant-flush / redundant-fence hints (performance, not correctness):
    flushing a cache line with no new stores to persist, or an [sfence] with
    no stores or flushes pending since the previous fence. Low severity;
    rules ["redundant-flush"] and ["redundant-fence"], with the flush/fence
    label as the reported label. *)

include Pass.S
