(** The missing-flush/fence detector (High severity).

    Tracks per-cache-line persist-epoch state. Rules:
    - ["unpersisted-at-commit"]: the line was dirty since before the previous
      fence when a fence persisted {e other} lines — the classic RECIPE
      constructor bug, caught at the first dependent commit without
      exploration ever reaching the recovery symptom;
    - ["unflushed-at-end"]: dirty when the execution completed;
    - ["unfenced-at-end"]: flushed but never fenced when the execution
      completed.

    Findings carry the root-cause {e store} labels (for at-commit and
    at-end-unflushed rules) so the fix site is named directly. Obligations
    reset at {!Event.Crash} — crash-induced data loss is the explorer's
    business, not a lint finding. *)

include Pass.S
