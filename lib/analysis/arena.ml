(* Packed event cells. Layout of one cell (cell_width ints):

     slot 0  tag (constructor + option shape, see tag_* below)
     slot 1  addr / line_addr
     slot 2  aux: width, flush kind, fence kind, or parent tid
     slot 3  value / old_value
     slot 4  rmw new value (tag_rmw_set only)
     slot 5  tid
     slot 6  label id in the intern table, -1 when the event has none

   Unused slots are written as 0 so encode is injective per tag and a cell
   compares (and serializes) identically however it was produced. *)

type labels = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
  (* Two-entry physical-identity cache: labels are almost always string
     literals the checked program passes over and over, so the common case
     is a pointer compare instead of a string hash per recorded event. *)
  mutable last1 : string;
  mutable last1_id : int;
  mutable last2 : string;
  mutable last2_id : int;
}

let labels () =
  (* Freshly allocated at runtime, so no caller-supplied string (not even a
     shared [""] literal) can be physically equal to it — the cache starts
     guaranteed-cold. *)
  let sentinel = String.sub "-" 0 0 in
  {
    ids = Hashtbl.create 64;
    names = Array.make 64 "";
    n = 0;
    last1 = sentinel;
    last1_id = -1;
    last2 = sentinel;
    last2_id = -1;
  }

let intern_slow t s =
  let id =
    match Hashtbl.find_opt t.ids s with
    | Some id -> id
    | None ->
        let id = t.n in
        if id = Array.length t.names then begin
          let names = Array.make (2 * id) "" in
          Array.blit t.names 0 names 0 id;
          t.names <- names
        end;
        t.names.(id) <- s;
        t.n <- id + 1;
        Hashtbl.add t.ids s id;
        id
  in
  t.last2 <- t.last1;
  t.last2_id <- t.last1_id;
  t.last1 <- s;
  t.last1_id <- id;
  id

let[@inline] intern t s =
  if s == t.last1 then t.last1_id
  else if s == t.last2 then begin
    (* Promote, so two alternating labels both stay cached. *)
    let s2 = t.last1 and id2 = t.last1_id in
    t.last1 <- s;
    t.last1_id <- t.last2_id;
    t.last2 <- s2;
    t.last2_id <- id2;
    t.last1_id
  end
  else intern_slow t s

let label_name t id =
  if id < 0 || id >= t.n then invalid_arg "Arena.label_name: unknown id";
  t.names.(id)

let cell_width = 7

let tag_store = 0
let tag_load = 1
let tag_rmw_none = 2
let tag_rmw_set = 3
let tag_flush = 4
let tag_fence = 5
let tag_thread_start = 6
let tag_thread_join = 7
let tag_failure_point = 8
let tag_crash_label = 9
let tag_crash_anon = 10
let tag_end = 11

let flush_code = function Event.Clflush -> 0 | Event.Clflushopt -> 1 | Event.Clwb -> 2
let flush_of_code = function 0 -> Event.Clflush | 1 -> Event.Clflushopt | _ -> Event.Clwb
let fence_code = function Event.Sfence -> 0 | Event.Mfence -> 1
let fence_of_code = function 0 -> Event.Sfence | _ -> Event.Mfence

(* One range check up front, then unchecked stores. The [int array]
   annotation is load-bearing: every slot value unifies to the same type
   variable, so without it [fill] is polymorphic and each store compiles to
   the generic write barrier (float-array check + [caml_modify]) — an order
   of magnitude slower than the immediate stores this exists for. *)
let[@inline] fill (cells : int array) off ~tag ~addr ~aux ~v ~v2 ~tid ~lbl =
  if off < 0 || off + cell_width > Array.length cells then invalid_arg "Arena: cell out of range";
  Array.unsafe_set cells off tag;
  Array.unsafe_set cells (off + 1) addr;
  Array.unsafe_set cells (off + 2) aux;
  Array.unsafe_set cells (off + 3) v;
  Array.unsafe_set cells (off + 4) v2;
  Array.unsafe_set cells (off + 5) tid;
  Array.unsafe_set cells (off + 6) lbl

let encode_store t cells off ~addr ~width ~value ~tid ~label =
  fill cells off ~tag:tag_store ~addr ~aux:width ~v:value ~v2:0 ~tid ~lbl:(intern t label)

let encode_load t cells off ~addr ~width ~value ~tid ~label =
  fill cells off ~tag:tag_load ~addr ~aux:width ~v:value ~v2:0 ~tid ~lbl:(intern t label)

let encode_rmw t cells off ~addr ~width ~old_value ~new_value ~tid ~label =
  let tag, v2 = match new_value with None -> (tag_rmw_none, 0) | Some v -> (tag_rmw_set, v) in
  fill cells off ~tag ~addr ~aux:width ~v:old_value ~v2 ~tid ~lbl:(intern t label)

let encode_flush t cells off ~line_addr ~kind ~tid ~label =
  fill cells off ~tag:tag_flush ~addr:line_addr ~aux:(flush_code kind) ~v:0 ~v2:0 ~tid
    ~lbl:(intern t label)

let encode_fence t cells off ~kind ~tid ~label =
  fill cells off ~tag:tag_fence ~addr:0 ~aux:(fence_code kind) ~v:0 ~v2:0 ~tid
    ~lbl:(intern t label)

let encode_thread_start t cells off ~tid ~parent ~label =
  fill cells off ~tag:tag_thread_start ~addr:0 ~aux:parent ~v:0 ~v2:0 ~tid ~lbl:(intern t label)

let encode_thread_join t cells off ~tid ~parent ~label =
  fill cells off ~tag:tag_thread_join ~addr:0 ~aux:parent ~v:0 ~v2:0 ~tid ~lbl:(intern t label)

let encode_failure_point t cells off ~label ~tid =
  fill cells off ~tag:tag_failure_point ~addr:0 ~aux:0 ~v:0 ~v2:0 ~tid ~lbl:(intern t label)

let encode_crash t cells off ~label ~tid =
  match label with
  | Some label ->
      fill cells off ~tag:tag_crash_label ~addr:0 ~aux:0 ~v:0 ~v2:0 ~tid ~lbl:(intern t label)
  | None -> fill cells off ~tag:tag_crash_anon ~addr:0 ~aux:0 ~v:0 ~v2:0 ~tid ~lbl:(-1)

let encode_end_execution _t cells off =
  fill cells off ~tag:tag_end ~addr:0 ~aux:0 ~v:0 ~v2:0 ~tid:0 ~lbl:(-1)

let encode t cells off = function
  | Event.Store { addr; width; value; tid; label } ->
      encode_store t cells off ~addr ~width ~value ~tid ~label
  | Event.Load { addr; width; value; tid; label } ->
      encode_load t cells off ~addr ~width ~value ~tid ~label
  | Event.Rmw { addr; width; old_value; new_value; tid; label } ->
      encode_rmw t cells off ~addr ~width ~old_value ~new_value ~tid ~label
  | Event.Flush { line_addr; kind; tid; label } ->
      encode_flush t cells off ~line_addr ~kind ~tid ~label
  | Event.Fence { kind; tid; label } -> encode_fence t cells off ~kind ~tid ~label
  | Event.Thread_start { tid; parent; label } ->
      encode_thread_start t cells off ~tid ~parent ~label
  | Event.Thread_join { tid; parent; label } -> encode_thread_join t cells off ~tid ~parent ~label
  | Event.Failure_point { label; tid } -> encode_failure_point t cells off ~label ~tid
  | Event.Crash { label; tid } -> encode_crash t cells off ~label ~tid
  | Event.End_execution -> encode_end_execution t cells off

let decode t cells off =
  let tag = cells.(off) in
  let addr = cells.(off + 1) in
  let aux = cells.(off + 2) in
  let v = cells.(off + 3) in
  let v2 = cells.(off + 4) in
  let tid = cells.(off + 5) in
  let lbl = cells.(off + 6) in
  let label () = label_name t lbl in
  if tag = tag_store then Event.Store { addr; width = aux; value = v; tid; label = label () }
  else if tag = tag_load then Event.Load { addr; width = aux; value = v; tid; label = label () }
  else if tag = tag_rmw_none then
    Event.Rmw { addr; width = aux; old_value = v; new_value = None; tid; label = label () }
  else if tag = tag_rmw_set then
    Event.Rmw { addr; width = aux; old_value = v; new_value = Some v2; tid; label = label () }
  else if tag = tag_flush then
    Event.Flush { line_addr = addr; kind = flush_of_code aux; tid; label = label () }
  else if tag = tag_fence then Event.Fence { kind = fence_of_code aux; tid; label = label () }
  else if tag = tag_thread_start then Event.Thread_start { tid; parent = aux; label = label () }
  else if tag = tag_thread_join then Event.Thread_join { tid; parent = aux; label = label () }
  else if tag = tag_failure_point then Event.Failure_point { label = label (); tid }
  else if tag = tag_crash_label then Event.Crash { label = Some (label ()); tid }
  else if tag = tag_crash_anon then Event.Crash { label = None; tid }
  else if tag = tag_end then Event.End_execution
  else invalid_arg "Arena.decode: corrupt cell"

let serialize t cells off sink =
  Pmem.Wire.int sink cells.(off);
  Pmem.Wire.int sink cells.(off + 1);
  Pmem.Wire.int sink cells.(off + 2);
  Pmem.Wire.int sink cells.(off + 3);
  Pmem.Wire.int sink cells.(off + 4);
  Pmem.Wire.int sink cells.(off + 5);
  let lbl = cells.(off + 6) in
  Pmem.Wire.string sink (if lbl < 0 then "" else label_name t lbl)
