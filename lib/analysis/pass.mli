(** The pluggable analysis-pass signature.

    A pass is an online state machine over the typed {!Event} stream of one
    execution: it receives every event in program order and may return
    findings at any event. Passes must be deterministic functions of the
    event stream alone (no wall clock, no randomness, no I/O) — the engine
    relies on this to keep reports byte-identical across [--jobs] workers —
    and must reset any ordering obligations on {!Event.Crash}, because a
    power failure discards volatile state rather than violating a rule. *)

module type S = sig
  val name : string

  type state

  val create : unit -> state
  (** Fresh state; called once per execution. *)

  val on_event : state -> Event.t -> Report.finding list
  (** Feed one event; returns any findings it triggers. [End_execution] is
      the place for end-of-run obligations (it is not emitted when the
      execution dies at a crash, so crash-truncated runs are exempt). *)
end

type instance = { name : string; feed : Event.t -> Report.finding list }
(** A pass packaged with its per-execution state. *)

val instantiate : (module S) -> instance
