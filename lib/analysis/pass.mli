(** The pluggable analysis-pass signature.

    A pass is an online state machine over the typed {!Event} stream of one
    execution: it receives every event in program order and may return
    findings at any event. Passes must be deterministic functions of the
    event stream alone (no wall clock, no randomness, no I/O) — the engine
    relies on this to keep reports byte-identical across [--jobs] workers —
    and must reset any ordering obligations on {!Event.Crash}, because a
    power failure discards volatile state rather than violating a rule. *)

module type S = sig
  val name : string

  type state

  val create : unit -> state
  (** Fresh state; called once per execution. *)

  val on_event : state -> Event.t -> Report.finding list
  (** Feed one event; returns any findings it triggers. [End_execution] is
      the place for end-of-run obligations (it is not emitted when the
      execution dies at a crash, so crash-truncated runs are exempt). *)
end

module type S_hb = sig
  val name : string

  type state

  val create : unit -> state
  (** Fresh state; called once per execution. *)

  val on_event : hb:Hb.t -> state -> Event.t -> Report.finding list
  (** Like {!S.on_event}, with the engine's shared happens-before view. The
      engine feeds [hb] every event {e before} the passes, so clocks read
      here already include the event being handled. The determinism
      contract extends to [hb]: it is itself a pure function of the stream,
      so HB-derived findings stay byte-identical across [--jobs] and the
      snapshot/memo layers. *)
end

type instance = { name : string; feed : Event.t -> Report.finding list }
(** A pass packaged with its per-execution state. *)

val instantiate : (module S) -> instance

val instantiate_hb : hb:Hb.t -> (module S_hb) -> instance
(** Package an HB-aware pass over the engine's shared {!Hb} instance. *)
