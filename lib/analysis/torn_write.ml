(* Persistency-race / torn-write detector. Three shapes:

   - a single store whose byte range straddles a cache-line boundary: the
     two halves live on lines that persist independently, so a failure can
     tear the value (High);
   - overlapping writes to the same bytes by two threads with no intervening
     fence by the first writer: a persistency race — the persisted winner is
     undefined (High);
   - a same-thread store overwriting bytes whose flush has not yet been
     fenced: the in-flight flush may persist either value (Medium). Plain
     overwrites of unflushed bytes are normal program behaviour (initialise
     then update) and are not reported. *)

let name = "torn-write"

type entry = { tid : int; label : string; mutable flushed : bool }
type state = { bytes : (int, entry) Hashtbl.t }
(* byte address -> latest writer; cleared per writer at its fences *)

let create () = { bytes = Hashtbl.create 64 }

let on_event st (ev : Event.t) =
  match ev with
  | Store { addr; width; tid; label; _ } ->
      let fs = ref [] in
      (match Pmem.Addr.lines_spanned addr width with
      | _ :: _ :: _ ->
          fs :=
            [
              {
                Report.severity = High;
                pass = name;
                rule = "straddles-cache-line";
                labels = [ label ];
                line = Some (Pmem.Addr.line_base addr);
                detail =
                  Printf.sprintf
                    "%d-byte store crosses a cache-line boundary; the halves persist \
                     independently and a failure can tear the value"
                    width;
              };
            ]
      | _ -> ());
      for i = 0 to width - 1 do
        let b = addr + i in
        (match Hashtbl.find_opt st.bytes b with
        | Some e when e.label <> label ->
            let report =
              if e.tid <> tid then
                Some
                  ( "cross-thread-overlap",
                    Report.High,
                    "the same bytes were written by two threads with no intervening fence; \
                     the persisted winner is undefined" )
              else if e.flushed then
                Some
                  ( "unfenced-overwrite",
                    Report.Medium,
                    "store overwrites bytes whose flush has not been fenced yet; the \
                     in-flight flush may persist either value" )
              else None
            in
            (match report with
            | Some (rule, severity, detail) ->
                let f =
                  {
                    Report.severity;
                    pass = name;
                    rule;
                    labels = List.sort_uniq String.compare [ e.label; label ];
                    line = Some (Pmem.Addr.line_base b);
                    detail;
                  }
                in
                if not (List.mem f !fs) then fs := f :: !fs
            | None -> ())
        | _ -> ());
        Hashtbl.replace st.bytes b { tid; label; flushed = false }
      done;
      !fs
  | Flush { line_addr; _ } ->
      for b = line_addr to line_addr + Pmem.Addr.cache_line_size - 1 do
        match Hashtbl.find_opt st.bytes b with
        | Some e -> e.flushed <- true
        | None -> ()
      done;
      []
  | Fence { tid; _ } ->
      let mine = Hashtbl.fold (fun b e acc -> if e.tid = tid then b :: acc else acc) st.bytes [] in
      List.iter (Hashtbl.remove st.bytes) mine;
      []
  | Crash _ ->
      Hashtbl.reset st.bytes;
      []
  | Load _ | Failure_point _ | End_execution -> []
