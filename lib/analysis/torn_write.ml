(* Persistency-race / torn-write detector. Three shapes:

   - a single store whose byte range straddles a cache-line boundary: the
     two halves live on lines that persist independently, so a failure can
     tear the value (High);
   - overlapping writes to the same bytes by two threads with no intervening
     fence by the first writer: a persistency race — the persisted winner is
     undefined (High);
   - a same-thread store overwriting bytes whose flush has not yet been
     fenced: the in-flight flush may persist either value (Medium). Plain
     overwrites of unflushed bytes are normal program behaviour (initialise
     then update) and are not reported.

   Finding details name the threads involved (which thread's bytes were
   overwritten, and by whom) — the tids enrich the detail only; the
   labels/line identity of each finding is unchanged. *)

let name = "torn-write"

type entry = { tid : int; label : string; mutable flushed : bool }
type state = { bytes : (int, entry) Hashtbl.t }
(* byte address -> latest writer; cleared per writer at its fences *)

let create () = { bytes = Hashtbl.create 64 }

(* One store-shaped write of [width] bytes at [addr] by [tid]: the straddle
   check plus the per-byte overlap checks against the previous writers. *)
let check_write st ~tid ~label ~addr ~width =
  let fs = ref [] in
  (match Pmem.Addr.lines_spanned addr width with
  | _ :: _ :: _ ->
      fs :=
        [
          {
            Report.severity = High;
            pass = name;
            rule = "straddles-cache-line";
            labels = [ label ];
            line = Some (Pmem.Addr.line_base addr);
            detail =
              Printf.sprintf
                "%d-byte store by thread %d crosses a cache-line boundary; the halves \
                 persist independently and a failure can tear the value"
                width tid;
          };
        ]
  | _ -> ());
  for i = 0 to width - 1 do
    let b = addr + i in
    (match Hashtbl.find_opt st.bytes b with
    | Some e when e.label <> label ->
        let report =
          if e.tid <> tid then
            Some
              ( "cross-thread-overlap",
                Report.High,
                Printf.sprintf
                  "the same bytes were written by thread %d and then thread %d with no \
                   intervening fence by the first writer; the persisted winner is undefined"
                  e.tid tid )
          else if e.flushed then
            Some
              ( "unfenced-overwrite",
                Report.Medium,
                Printf.sprintf
                  "store by thread %d overwrites bytes whose flush has not been fenced yet; \
                   the in-flight flush may persist either value"
                  tid )
          else None
        in
        (match report with
        | Some (rule, severity, detail) ->
            let f =
              {
                Report.severity;
                pass = name;
                rule;
                labels = List.sort_uniq String.compare [ e.label; label ];
                line = Some (Pmem.Addr.line_base b);
                detail;
              }
            in
            if not (List.mem f !fs) then fs := f :: !fs
        | None -> ())
    | _ -> ());
    Hashtbl.replace st.bytes b { tid; label; flushed = false }
  done;
  !fs

(* A fence by [tid] hands its bytes off: later writers are no longer racing
   with it. *)
let fence_clears st tid =
  let mine = Hashtbl.fold (fun b e acc -> if e.tid = tid then b :: acc else acc) st.bytes [] in
  List.iter (Hashtbl.remove st.bytes) mine

let on_event st (ev : Event.t) =
  match ev with
  | Store { addr; width; tid; label; _ } -> check_write st ~tid ~label ~addr ~width
  | Rmw { addr; width; tid; label; new_value; _ } ->
      (* A locked RMW's store participates in the overlap checks (its write
         really does overwrite the previous writer's bytes), then its
         trailing mfence clears the thread's ownership — its own bytes
         included. *)
      let fs =
        match new_value with
        | Some _ -> check_write st ~tid ~label ~addr ~width
        | None -> []
      in
      fence_clears st tid;
      fs
  | Flush { line_addr; _ } ->
      for b = line_addr to line_addr + Pmem.Addr.cache_line_size - 1 do
        match Hashtbl.find_opt st.bytes b with
        | Some e -> e.flushed <- true
        | None -> ()
      done;
      []
  | Fence { tid; _ } ->
      fence_clears st tid;
      []
  | Crash _ ->
      Hashtbl.reset st.bytes;
      []
  | Load _ | Thread_start _ | Thread_join _ | Failure_point _ | End_execution -> []
