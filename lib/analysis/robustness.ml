(* The strict-persistency (robustness) check, after PSan: a load that
   observes another thread's store whose cache line has not been committed
   by a flush+fence edge ordered before the load. The observing thread can
   now make decisions — and persist values — based on data that a crash may
   lose, leaving the post-crash state one no sequential execution produces
   (the execution is not "persistency-robust").

   The pass keeps the last writer per byte with the line's store generation
   at write time; the commit question ("did some flush+fence cover that
   generation, with the fence ordered before this load?") is answered by
   the Hb substrate's per-line commit clocks. Same-thread observation is
   exempt: a thread reading its own uncommitted store is TSO store
   forwarding, not an ordering decision. Medium severity — lock words and
   other volatile-by-design state on persistent lines trip it idiomatically
   (suppress their store labels), and the racy schedules that make it a
   real bug are better confirmed by exploration. *)

let name = "robustness"

type wrec = { tid : int; label : string; gen : int }

(* Last writer per byte, as one 64-slot array per cache line — one
   hashtable probe per line on the load-heavy hot path. [writer_tid] is the
   sole storing thread so far (-1 before the first store); once a second
   thread stores, [multi] latches and every cross-thread load is checked.
   Until then, loads by the sole writer (the entire sequential portion of a
   workload) can observe nobody else's stores and are skipped outright. *)
type state = {
  lines : (int, wrec option array) Hashtbl.t;
  mutable writer_tid : int;
  mutable multi : bool;
}

let create () = { lines = Hashtbl.create 64; writer_tid = -1; multi = false }

let slots st line =
  match Hashtbl.find_opt st.lines line with
  | Some a -> a
  | None ->
      let a = Array.make Pmem.Addr.cache_line_size None in
      Hashtbl.add st.lines line a;
      a

let record st ~hb ~tid ~label addr width =
  if st.writer_tid = -1 then st.writer_tid <- tid
  else if st.writer_tid <> tid then st.multi <- true;
  List.iter
    (fun line ->
      let w = Some { tid; label; gen = Hb.line_gen hb line } in
      let a = slots st line in
      let base = line * Pmem.Addr.cache_line_size in
      let lo = max addr base in
      let hi = min (addr + width - 1) (base + Pmem.Addr.cache_line_size - 1) in
      for b = lo to hi do
        a.(b - base) <- w
      done)
    (Pmem.Addr.lines_spanned addr width)

let on_event ~hb st (ev : Event.t) =
  match ev with
  | Event.Store { addr; width; tid; label; _ } ->
      record st ~hb ~tid ~label addr width;
      []
  | Rmw { addr; width; tid; label; new_value = Some _; _ } ->
      record st ~hb ~tid ~label addr width;
      []
  | Load _ when (not st.multi) && st.writer_tid = -1 -> []
  | Load { tid; _ } when (not st.multi) && st.writer_tid = tid -> []
  | Load { addr; width; tid; label; _ } ->
      let now = Hb.clock hb tid in
      let fs = ref [] in
      (* The bytes of one load usually share a writer: memoize the commit
         query per (line, generation) within the event. *)
      let memo_line = ref (-1) and memo_gen = ref (-1) and memo_res = ref false in
      let committed line gen =
        if !memo_line <> line || !memo_gen <> gen then begin
          memo_line := line;
          memo_gen := gen;
          memo_res := Hb.line_committed hb line ~gen ~before:now
        end;
        !memo_res
      in
      List.iter
        (fun line ->
          let a = slots st line in
          let base = line * Pmem.Addr.cache_line_size in
          let lo = max addr base in
          let hi = min (addr + width - 1) (base + Pmem.Addr.cache_line_size - 1) in
          for b = lo to hi do
            match a.(b - base) with
            | Some w when w.tid <> tid ->
                if not (committed line w.gen) then begin
                  let f =
                    {
                      Report.severity = Medium;
                      pass = name;
                      rule = "unordered-persist-observed";
                      labels = [ w.label ];
                      line = Some (Pmem.Addr.line_base b);
                      detail =
                        Printf.sprintf
                          "load '%s' (thread %d) observes this store by thread %d before \
                           its cache line is committed by a flush+fence ordered before the \
                           load; a crash can lose the observed value while later persists \
                           survive (strict-persistency violation)"
                          label tid w.tid;
                    }
                  in
                  if not (List.mem f !fs) then fs := f :: !fs
                end
            | _ -> ()
          done)
        (Pmem.Addr.lines_spanned addr width);
      !fs
  | Crash _ ->
      Hashtbl.reset st.lines;
      st.writer_tid <- -1;
      st.multi <- false;
      []
  | Rmw _ | Flush _ | Fence _ | Thread_start _ | Thread_join _ | Failure_point _
  | End_execution ->
      []
