(** Runs a set of analysis passes over one execution's event stream.

    An engine is created per execution (its passes are stateful), fed every
    event with {!emit}, and asked for its accumulated findings at the end.
    Findings are deduplicated, label-suppressed, and sorted with
    {!Report.compare_finding}, so the result is a deterministic function of
    the event stream — the explorer's cross-worker merge relies on this. *)

type t

val create : ?suppress:string list -> ?hb:Hb.t -> Pass.instance list -> t
(** [suppress] lists store labels whose findings are acknowledged noise
    (e.g. a volatile-by-design lock word on a persistent line). A suppressed
    label is removed from every finding; findings left with no labels are
    dropped.

    [hb] is the shared happens-before view the HB-aware passes were
    instantiated over ({!Pass.instantiate_hb}): {!emit} feeds it every event
    {e before} the passes, so a pass handling event [e] reads post-[e]
    clocks. *)

val hb : t -> Hb.t option
(** The engine's happens-before view, when one was attached. *)

val emit : t -> Event.t -> unit

val findings : t -> Report.finding list
(** Deduplicated, suppressed, sorted (most severe first). *)
