type flush_kind = Clflush | Clflushopt | Clwb
type fence_kind = Sfence | Mfence

type t =
  | Store of { addr : Pmem.Addr.t; width : int; value : int; tid : int; label : string }
  | Load of { addr : Pmem.Addr.t; width : int; value : int; tid : int; label : string }
  | Rmw of {
      addr : Pmem.Addr.t;
      width : int;
      old_value : int;
      new_value : int option;
      tid : int;
      label : string;
    }
  | Flush of { line_addr : Pmem.Addr.t; kind : flush_kind; tid : int; label : string }
  | Fence of { kind : fence_kind; tid : int; label : string }
  | Thread_start of { tid : int; parent : int; label : string }
  | Thread_join of { tid : int; parent : int; label : string }
  | Failure_point of { label : string; tid : int }
  | Crash of { label : string option; tid : int }
  | End_execution

let render = function
  | Store { addr; width; value; tid = _; label } ->
      Printf.sprintf "store%-2d %s [0x%x] := %d" (8 * width) label addr value
  | Load { addr; width; value; tid = _; label } ->
      Printf.sprintf "load%-2d %s [0x%x] -> %d" (8 * width) label addr value
  | Rmw { addr; width = _; old_value; new_value = Some v; tid = _; label } ->
      Printf.sprintf "rmw    %s [0x%x] %d := %d" label addr old_value v
  | Rmw { addr; width = _; old_value; new_value = None; tid = _; label } ->
      Printf.sprintf "rmw    %s [0x%x] %d (no store)" label addr old_value
  | Flush { line_addr; kind; tid = _; label } ->
      Printf.sprintf "%s %s line 0x%x"
        (match kind with Clflush -> "clflush" | Clflushopt -> "clflushopt" | Clwb -> "clwb")
        label line_addr
  | Fence { kind = Sfence; tid = _; label } -> Printf.sprintf "sfence %s" label
  | Fence { kind = Mfence; tid = _; label } -> Printf.sprintf "mfence %s" label
  | Thread_start { tid; parent; label } ->
      Printf.sprintf "thread %d started by thread %d (%s)" tid parent label
  | Thread_join { tid; parent; label } ->
      Printf.sprintf "thread %d joined by thread %d (%s)" tid parent label
  | Failure_point { label; tid = _ } -> Printf.sprintf "failure point before %s" label
  | Crash { label = Some label; tid = _ } ->
      Printf.sprintf "power failure injected before %s" label
  | Crash { label = None; tid = _ } -> "explicit crash injected"
  | End_execution -> "<end of execution>"

let pp ppf ev = Format.pp_print_string ppf (render ev)
