type t = {
  passes : Pass.instance list;
  findings : (Report.finding, unit) Hashtbl.t;
  suppress : string list;
  hb : Hb.t option;  (* shared happens-before view, fed before the passes *)
}

let create ?(suppress = []) ?hb passes = { passes; findings = Hashtbl.create 32; suppress; hb }

let hb t = t.hb

let emit t ev =
  (match t.hb with Some hb -> Hb.observe hb ev | None -> ());
  List.iter
    (fun (p : Pass.instance) ->
      match p.feed ev with
      | [] -> ()
      | fs -> List.iter (fun f -> Hashtbl.replace t.findings f ()) fs)
    t.passes

(* Suppression removes suppressed labels from a finding; a finding whose
   labels are all suppressed is dropped entirely (a finding that never had
   labels is kept — suppression is per-label by design). Sorting with the
   total finding order makes the result independent of hash iteration. *)
let findings t =
  Hashtbl.fold (fun f () acc -> f :: acc) t.findings []
  |> List.filter_map (fun (f : Report.finding) ->
         match List.filter (fun l -> not (List.mem l t.suppress)) f.labels with
         | [] when f.labels <> [] -> None
         | labels -> Some { f with labels })
  |> List.sort_uniq Report.compare_finding
