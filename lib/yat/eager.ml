type result = {
  states : int;
  failure_points : int;
  behaviors : string list;
  bugs : Jaaru.Bug.t list;
  truncated : bool;
}

(* --- snapshots ----------------------------------------------------------- *)

type line_snap = {
  byte_entries : (Pmem.Addr.t * (int * int) list) list;  (* addr, (seq, value) ascending *)
  cuts : int list;  (* legal last-writeback positions: lo plus each event above it *)
}

let snapshot_record record =
  let by_line : (int, (Pmem.Addr.t * (int * int) list) list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun addr ->
      match Exec.Exec_record.queue_opt record addr with
      | None -> ()
      | Some q ->
          let entries =
            List.map (fun e -> (e.Exec.Store_queue.seq, e.Exec.Store_queue.value))
              (Exec.Store_queue.to_list q)
          in
          let line = Pmem.Addr.line_of addr in
          let cell =
            match Hashtbl.find_opt by_line line with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add by_line line c;
                c
          in
          cell := (addr, entries) :: !cell)
    (List.sort compare (Exec.Exec_record.written_addrs record));
  Hashtbl.fold
    (fun line cell acc ->
      let byte_entries = List.rev !cell in
      let lo =
        Pmem.Interval.lo (Exec.Exec_record.cacheline record (line * Pmem.Addr.cache_line_size))
      in
      let events =
        List.sort_uniq compare
          (List.concat_map
             (fun (_, entries) -> List.filter_map (fun (s, _) -> if s > lo then Some s else None) entries)
             byte_entries)
      in
      { byte_entries; cuts = lo :: events } :: acc)
    by_line []
  |> List.sort compare

(* The concrete bytes of one line under a given cut: each byte holds its
   newest store at or before the cut; bytes whose stores all postdate the cut
   keep the initial zero (and can be omitted). *)
let line_bytes snap cut =
  List.filter_map
    (fun (addr, entries) ->
      let value =
        List.fold_left (fun acc (s, v) -> if s <= cut then Some v else acc) None entries
      in
      Option.map (fun v -> (addr, v)) value)
    snap.byte_entries

let enumerate_states snapshot ~limit ~f =
  let count = ref 0 in
  let truncated = ref false in
  let rec go lines acc =
    if !truncated then ()
    else
      match lines with
      | [] ->
          if !count >= limit then truncated := true
          else begin
            incr count;
            f (List.concat acc)
          end
      | snap :: rest -> List.iter (fun cut -> go rest (line_bytes snap cut :: acc)) snap.cuts
  in
  go snapshot [];
  (!count, !truncated)

(* --- running recovery on a concrete image -------------------------------- *)

let bug_of ctx kind location =
  {
    Jaaru.Bug.kind;
    location;
    exec_depth = Jaaru.Ctx.failures ctx;
    trace = Jaaru.Ctx.trace_events ctx;
    dropped = Jaaru.Ctx.trace_dropped ctx;
  }

let observe ctx post =
  match post ctx with
  | obs -> (obs, None)
  | exception Jaaru.Bug.Found (kind, location) ->
      let bug = bug_of ctx kind location in
      ("bug: " ^ Jaaru.Bug.symptom bug, Some bug)
  | exception (Jaaru.Choice.Divergence _ as e) -> raise e
  | exception Jaaru.Ctx.Power_failure -> assert false
  | exception e ->
      let bug =
        bug_of ctx
          (Jaaru.Bug.Program_exception (Jaaru.Bug.normalize_message (Printexc.to_string e)))
          (Jaaru.Ctx.last_label ctx)
      in
      ("bug: " ^ Jaaru.Bug.symptom bug, Some bug)

let check ?(config = Jaaru.Config.default) ?(state_limit = 20_000) ~pre ~post () =
  let config = { config with Jaaru.Config.max_failures = 1 } in
  (* Pass one: collect a snapshot of the persistent state space at every
     failure-injection point. *)
  let snapshots = ref [] in
  let choice = Jaaru.Choice.create () in
  let ctx = Jaaru.Ctx.create ~config ~choice () in
  Jaaru.Ctx.set_failure_point_hook ctx (fun _label ->
      snapshots := snapshot_record (Exec.Exec_stack.top (Jaaru.Ctx.exec_stack ctx)) :: !snapshots);
  pre ctx;
  Jaaru.Ctx.finish_execution ctx;
  let snapshots = List.rev !snapshots in
  (* Pass two: run recovery on every concrete state of every snapshot. *)
  let behaviors = Hashtbl.create 16 in
  let bugs = ref [] in
  let states = ref 0 in
  let truncated = ref false in
  let budget = ref state_limit in
  List.iter
    (fun snapshot ->
      let n, trunc =
        enumerate_states snapshot ~limit:!budget ~f:(fun state ->
            let choice = Jaaru.Choice.create () in
            let ctx = Jaaru.Ctx.create ~config ~choice () in
            Jaaru.Ctx.install_concrete_state ctx state;
            let obs, bug = observe ctx post in
            Hashtbl.replace behaviors obs ();
            match bug with
            | Some b when not (List.exists (Jaaru.Bug.same_report b) !bugs) -> bugs := b :: !bugs
            | Some _ | None -> ())
      in
      states := !states + n;
      budget := max 0 (!budget - n);
      if trunc then truncated := true)
    snapshots;
  {
    states = !states;
    failure_points = List.length snapshots;
    behaviors = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) behaviors []);
    bugs = List.rev !bugs;
    truncated = !truncated;
  }

(* Note: the caller's [max_failures] is respected — the default of 1 gives
   the usual every-flush injection; 0 plus an explicit [Ctx.crash] in [pre]
   gives sharp single-point litmus semantics. *)
let jaaru_behaviors ?(config = Jaaru.Config.default) ~pre ~post () =
  let choice = Jaaru.Choice.create () in
  let behaviors = Hashtbl.create 16 in
  let stop = ref false in
  while not !stop do
    Jaaru.Choice.begin_replay choice;
    let ctx = Jaaru.Ctx.create ~config ~choice () in
    (try
       pre ctx;
       Jaaru.Ctx.finish_execution ctx
     with
    | Jaaru.Ctx.Power_failure ->
        Jaaru.Ctx.after_crash ctx;
        let obs, _ = observe ctx post in
        Hashtbl.replace behaviors obs ()
    | Jaaru.Bug.Found _ -> ());
    if not (Jaaru.Choice.advance choice) then stop := true
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) behaviors [])
