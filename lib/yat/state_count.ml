type t = { log10_total : float; failure_points : int; max_line_states : int }

(* Distinct unflushed store events per line: a store instruction writing n
   bytes is one event (one sequence number), so collect distinct sequence
   numbers above the line's last guaranteed flush. *)
let unflushed_events_by_line record =
  let by_line : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun addr ->
      match Exec.Exec_record.queue_opt record addr with
      | None -> ()
      | Some q ->
          let line = Pmem.Addr.line_of addr in
          let lo = Pmem.Interval.lo (Exec.Exec_record.cacheline record addr) in
          let seqs =
            match Hashtbl.find_opt by_line line with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 8 in
                Hashtbl.add by_line line s;
                s
          in
          Exec.Store_queue.fold
            (fun entry () ->
              if entry.Exec.Store_queue.seq > lo then Hashtbl.replace seqs entry.seq ())
            q ())
    (Exec.Exec_record.written_addrs record);
  by_line

let line_state_counts record =
  Hashtbl.fold (fun _line seqs acc -> (Hashtbl.length seqs + 1) :: acc)
    (unflushed_events_by_line record) []

let log10_states_at record =
  List.fold_left (fun acc k -> acc +. log10 (float_of_int k)) 0. (line_state_counts record)

(* log10 (10^a + 10^b) without leaving log space. *)
let log10_add a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = max a b and lo = min a b in
    hi +. log10 (1. +. (10. ** (lo -. hi)))

let analyze ?(config = Jaaru.Config.default) pre =
  let config = { config with Jaaru.Config.max_failures = 1 } in
  let choice = Jaaru.Choice.create () in
  let ctx = Jaaru.Ctx.create ~config ~choice () in
  let total = ref neg_infinity in
  let fps = ref 0 in
  let max_line = ref 1 in
  Jaaru.Ctx.set_failure_point_hook ctx (fun _label ->
      let record = Exec.Exec_stack.top (Jaaru.Ctx.exec_stack ctx) in
      let counts = line_state_counts record in
      List.iter (fun k -> if k > !max_line then max_line := k) counts;
      let log_states = List.fold_left (fun acc k -> acc +. log10 (float_of_int k)) 0. counts in
      total := log10_add !total log_states;
      incr fps);
  (* All decisions default to "continue": exactly one failure-free replay. *)
  pre ctx;
  Jaaru.Ctx.finish_execution ctx;
  { log10_total = !total; failure_points = !fps; max_line_states = !max_line }

let pp_count ppf log10_n =
  if log10_n = neg_infinity then Format.fprintf ppf "0"
  else if log10_n < 6. then Format.fprintf ppf "%.0f" (10. ** log10_n)
  else
    let e = floor log10_n in
    let mantissa = 10. ** (log10_n -. e) in
    Format.fprintf ppf "%.2fx10^%.0f" mantissa e

let pp ppf t =
  Format.fprintf ppf "%a eager states over %d failure points (largest line: %d states)" pp_count
    t.log10_total t.failure_points t.max_line_states
