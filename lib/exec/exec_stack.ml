type t = { mutable execs : Exec_record.t list (* head = top *) }

let create () =
  { execs = [ Exec_record.create ~id:1; Exec_record.initial () ] }

let top s =
  match s.execs with
  | e :: _ -> e
  | [] -> assert false

let prev s e =
  let rec loop = function
    | x :: (below :: _ as rest) ->
        if Exec_record.id x = Exec_record.id e then below else loop rest
    | [ _ ] | [] -> invalid_arg "Exec_stack.prev: no predecessor"
  in
  loop s.execs

let push_fresh s =
  let e = Exec_record.create ~id:(Exec_record.id (top s) + 1) in
  s.execs <- e :: s.execs;
  e

let restore s records =
  match records with
  | [] -> invalid_arg "Exec_stack.restore: empty record list"
  | _ ->
      let bottom = List.nth records (List.length records - 1) in
      if not (Exec_record.is_initial bottom) then
        invalid_arg "Exec_stack.restore: bottom record must be the initial image";
      s.execs <- records

let depth s = List.length s.execs - 1
let to_list s = s.execs
