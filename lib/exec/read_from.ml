type source = {
  exec : Exec_record.t;
  seq : int option;
  value : int;
  label : string;
}

let source_from_current stack ~value ~label =
  { exec = Exec_stack.top stack; seq = None; value; label }

let source_of_entry exec (e : Store_queue.entry) =
  { exec; seq = Some e.seq; value = e.value; label = e.label }

let initial_source exec =
  { exec; seq = Some 0; value = 0; label = "<initial zero>" }

(* ReadPreFailure (Fig. 9, lines 7-13). Candidates from execution [e] are the
   stores that could have been the line's content at its last writeback: every
   store inside the open interval (lo, hi), plus the newest store at or before
   lo (the value certainly in PM when the guaranteed flush happened). If no
   store predates lo, the flush (if any) wrote a value inherited from an older
   execution, so the search continues below. *)
let rec read_pre_failure stack e addr =
  if Exec_record.is_initial e then [ initial_source e ]
  else
    let cl = Exec_record.cacheline e addr in
    let lo = Pmem.Interval.lo cl and hi = Pmem.Interval.hi cl in
    let in_window, newest_le_lo =
      Exec_record.fold_stores
        (fun entry (wins, best) ->
          if entry.Store_queue.seq <= lo then (wins, Some entry)
          else if entry.Store_queue.seq < hi then (entry :: wins, best)
          else (wins, best))
        e addr ([], None)
    in
    (* [in_window] is newest-first already (fold is oldest-first, cons reverses). *)
    let wins = List.map (source_of_entry e) in_window in
    match newest_le_lo with
    | Some entry -> wins @ [ source_of_entry e entry ]
    | None -> wins @ read_pre_failure stack (Exec_stack.prev stack e) addr

let build_may_read_from ?sb_value stack addr =
  match sb_value with
  | Some (value, label) -> [ source_from_current stack ~value ~label ]
  | None -> (
      let top = Exec_stack.top stack in
      match Exec_record.last_store top addr with
      | Some e ->
          (* A store of the current execution carries no persistency
             constraint: the paper's ⟨top(exec), _, val⟩ tuple. *)
          [ { exec = top; seq = None; value = e.Store_queue.value; label = e.Store_queue.label } ]
      | None -> read_pre_failure stack (Exec_stack.prev stack top) addr)

(* UpdateRanges (Fig. 10). Walk down from the execution just below the current
   one to the source's execution, refining each line interval. *)
let rec update_ranges stack ec addr src =
  if Exec_record.id ec <> Exec_record.id src.exec then begin
    let cl = Exec_record.cacheline ec addr in
    (match Exec_record.first_store ec addr with
    | Some f -> Pmem.Interval.lower_hi cl f.Store_queue.seq
    | None -> ());
    update_ranges stack (Exec_stack.prev stack ec) addr src
  end
  else if Exec_record.is_initial ec then ()
  else
    match src.seq with
    | None -> assert false
    | Some seq ->
        let cl = Exec_record.cacheline ec addr in
        Pmem.Interval.raise_lo cl seq;
        Pmem.Interval.lower_hi cl (Exec_record.next_store_seq_after ec addr seq)

let do_read stack addr src =
  let top = Exec_stack.top stack in
  if Exec_record.id src.exec <> Exec_record.id top then
    update_ranges stack (Exec_stack.prev stack top) addr src

let pp_source ppf s =
  let pp_seq ppf = function
    | None -> Format.fprintf ppf "_"
    | Some n -> Format.fprintf ppf "%d" n
  in
  Format.fprintf ppf "<exec#%d %s=%d@@%a>" (Exec_record.id s.exec) s.label s.value pp_seq s.seq
