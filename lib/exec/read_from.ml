type source = {
  exec : Exec_record.t;
  seq : int option;
  value : int;
  label : string;
}

let source_from_current stack ~value ~label =
  { exec = Exec_stack.top stack; seq = None; value; label }

let source_of_idx exec q i =
  {
    exec;
    seq = Some (Store_queue.seq_at q i);
    value = Store_queue.value_at q i;
    label = Store_queue.label_at q i;
  }

let initial_source exec =
  { exec; seq = Some 0; value = 0; label = "<initial zero>" }

(* ReadPreFailure (Fig. 9, lines 7-13). Candidates from execution [e] are the
   stores that could have been the line's content at its last writeback: every
   store inside the open interval (lo, hi), plus the newest store at or before
   lo (the value certainly in PM when the guaranteed flush happened). If no
   store predates lo, the flush (if any) wrote a value inherited from an older
   execution, so the search continues below. The visible history is indexed
   directly (seqs strictly increase, so the window is a contiguous index
   range) instead of folding boxed entries. *)
let rec read_pre_failure stack e addr =
  if Exec_record.is_initial e then [ initial_source e ]
  else
    let lo, hi = Exec_record.line_bounds e addr in
    match Exec_record.visible_stores e addr with
    | None -> read_pre_failure stack (Exec_stack.prev stack e) addr
    | Some (q, n) ->
        (* Newest index with seq <= lo, or -1; the window (lo, hi) is the
           index range (idx_le_lo, first index with seq >= hi). *)
        let idx_le_lo = Store_queue.count_le q lo - 1 in
        let below_hi = min n (Store_queue.count_le q (hi - 1)) in
        let wins = ref [] in
        (* Ascending index walk with cons leaves the newest store (highest
           index) at the head — the newest-first order callers rely on. *)
        for i = idx_le_lo + 1 to below_hi - 1 do
          wins := source_of_idx e q i :: !wins
        done;
        let wins = !wins in
        if idx_le_lo >= 0 then wins @ [ source_of_idx e q idx_le_lo ]
        else wins @ read_pre_failure stack (Exec_stack.prev stack e) addr

let build_may_read_from ?sb_value stack addr =
  match sb_value with
  | Some (value, label) -> [ source_from_current stack ~value ~label ]
  | None -> (
      let top = Exec_stack.top stack in
      match Exec_record.visible_stores top addr with
      | Some (q, n) ->
          (* A store of the current execution carries no persistency
             constraint: the paper's ⟨top(exec), _, val⟩ tuple. *)
          [
            {
              exec = top;
              seq = None;
              value = Store_queue.value_at q (n - 1);
              label = Store_queue.label_at q (n - 1);
            };
          ]
      | None -> read_pre_failure stack (Exec_stack.prev stack top) addr)

(* UpdateRanges (Fig. 10). Walk down from the execution just below the current
   one to the source's execution, refining each line interval in place. *)
let rec update_ranges stack ec addr src =
  if Exec_record.id ec <> Exec_record.id src.exec then begin
    (match Exec_record.visible_stores ec addr with
    | Some (q, _) -> Exec_record.lower_line_hi ec addr ~seq:(Store_queue.seq_at q 0)
    | None -> ());
    update_ranges stack (Exec_stack.prev stack ec) addr src
  end
  else if Exec_record.is_initial ec then ()
  else
    match src.seq with
    | None -> assert false
    | Some seq ->
        Exec_record.raise_line_lo ec addr ~seq;
        Exec_record.lower_line_hi ec addr
          ~seq:(Exec_record.next_store_seq_after ec addr seq)

let do_read stack addr src =
  let top = Exec_stack.top stack in
  if Exec_record.id src.exec <> Exec_record.id top then
    update_ranges stack (Exec_stack.prev stack top) addr src

let pp_source ppf s =
  let pp_seq ppf = function
    | None -> Format.fprintf ppf "_"
    | Some n -> Format.fprintf ppf "%d" n
  in
  Format.fprintf ppf "<exec#%d %s=%d@@%a>" (Exec_record.id s.exec) s.label s.value pp_seq s.seq
