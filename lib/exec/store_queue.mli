(** Per-byte-address store history within one execution.

    This is the paper's [e.queue(addr)]: the sequence of tuples [(val, seq)]
    recording the values written to one byte address, in the order the stores
    took effect in the cache (strictly increasing sequence numbers). *)

type entry = { value : int; seq : int; label : string }
(** One store that reached the cache: the byte [value] written, the global
    sequence number [seq] assigned when it left the store buffer, and a
    human-readable source [label] for bug reports. A boxed {e view} — the
    queue itself stores the three fields in parallel unboxed arrays, and hot
    paths should use {!value_at} / {!seq_at} / {!label_at} instead. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> entry -> unit
(** Appends a store. Its [seq] must exceed the last entry's. *)

val push_unboxed : t -> value:int -> seq:int -> label:string -> unit
(** {!push} without constructing the entry record (the hot path). *)

val value_at : t -> int -> int
val seq_at : t -> int -> int
val label_at : t -> int -> string
(** Field reads of the [i]-th oldest entry, without boxing it. *)

val copy : t -> t
(** An independent copy: pushes to either queue never affect the other
    (entries themselves are immutable and shared). Used by the failure-point
    snapshot layer. *)

val truncated_copy : t -> int -> t
(** [truncated_copy q n] is an independent copy of the oldest [n] entries. *)

val get : t -> int -> entry
(** [get q i] is the [i]-th oldest entry. *)

val first : t -> entry option
val last : t -> entry option

val count_le : t -> int -> int
(** [count_le q s] is the number of entries with [seq <= s] (binary search —
    seqs strictly increase). Used to bound reads to a snapshot's prefix. *)

val fold_prefix : (entry -> 'a -> 'a) -> t -> int -> 'a -> 'a
(** [fold_prefix f q n acc] folds the oldest [n] entries (oldest first). *)

val next_seq_after : t -> int -> int
(** [next_seq_after q s] is the sequence number of the oldest entry strictly
    newer than [s], or {!Pmem.Interval.infinity} if none — the paper's "next
    tuple" bound used to refine interval upper ends. *)

val fold : (entry -> 'a -> 'a) -> t -> 'a -> 'a
(** Oldest-first fold. *)

val to_list : t -> entry list
val pp : Format.formatter -> t -> unit
