type t = {
  id : int;
  queues : (Pmem.Addr.t, Store_queue.t) Hashtbl.t;
  lines : Pmem.Line_table.t;
  seq_bound : int;
      (* Stores with seq > seq_bound are invisible to every read accessor:
         a snapshot view shares the live record's queue table and hides the
         entries pushed after the capture. [max_int] = unbounded. *)
  mutable store_count : int;
  mutable flush_count : int;
}

let create ~id =
  if id < 0 then invalid_arg "Exec_record.create: negative id";
  {
    id;
    queues = Hashtbl.create 64;
    lines = Pmem.Line_table.create ();
    seq_bound = max_int;
    store_count = 0;
    flush_count = 0;
  }

let initial () = create ~id:0
let id e = e.id
let is_initial e = e.id = 0

let queue e addr =
  match Hashtbl.find_opt e.queues addr with
  | Some q -> q
  | None ->
      let q = Store_queue.create () in
      Hashtbl.add e.queues addr q;
      q

let queue_opt e addr = Hashtbl.find_opt e.queues addr

(* Unboxed line-interval reads: the per-line state lives in the flat
   {!Pmem.Line_table}, so the bounds come back as plain ints. The slot index
   is only valid until the next insertion, hence the immediate reads. *)
let line_lo e addr =
  let lines = e.lines in
  Pmem.Line_table.lo lines (Pmem.Line_table.find lines (Pmem.Addr.line_of addr))

let line_bounds e addr =
  let lines = e.lines in
  let slot = Pmem.Line_table.find lines (Pmem.Addr.line_of addr) in
  (Pmem.Line_table.lo lines slot, Pmem.Line_table.hi lines slot)

let raise_line_lo e addr ~seq =
  let lines = e.lines in
  Pmem.Line_table.raise_lo lines (Pmem.Line_table.find lines (Pmem.Addr.line_of addr)) seq

let lower_line_hi e addr ~seq =
  let lines = e.lines in
  Pmem.Line_table.lower_hi lines (Pmem.Line_table.find lines (Pmem.Addr.line_of addr)) seq

(* Boxed view for cold paths (state counters, tests): a copy, not an alias —
   refinements must go through {!raise_line_lo} / {!lower_line_hi}. *)
let cacheline e addr =
  let lo, hi = line_bounds e addr in
  Pmem.Interval.of_bounds ~lo ~hi

let push_store e addr ~value ~seq ~label =
  if e.seq_bound <> max_int then
    invalid_arg "Exec_record.push_store: snapshot views are read-only";
  Store_queue.push_unboxed (queue e addr) ~value ~seq ~label;
  e.store_count <- e.store_count + 1

(* Bounded store accessors: the visible history of [addr] is the queue prefix
   with seq <= seq_bound. On unbounded records (the common case) this is the
   whole queue. *)
let visible_len e q =
  if e.seq_bound = max_int then Store_queue.length q else Store_queue.count_le q e.seq_bound

let stores_opt e addr =
  match Hashtbl.find_opt e.queues addr with
  | None -> None
  | Some q ->
      let n = visible_len e q in
      if n = 0 then None else Some (q, n)

let visible_stores = stores_opt
let has_stores e addr = stores_opt e addr <> None

let fold_stores f e addr acc =
  match stores_opt e addr with
  | None -> acc
  | Some (q, n) -> Store_queue.fold_prefix f q n acc

let first_store e addr =
  match stores_opt e addr with None -> None | Some (q, _) -> Some (Store_queue.get q 0)

let last_store e addr =
  match stores_opt e addr with None -> None | Some (q, n) -> Some (Store_queue.get q (n - 1))

let last_store_byte e addr =
  match Hashtbl.find_opt e.queues addr with
  | None -> -1
  | Some q ->
      let n = visible_len e q in
      if n = 0 then -1 else Store_queue.value_at q (n - 1)

let next_store_seq_after e addr s =
  match stores_opt e addr with
  | None -> Pmem.Interval.infinity
  | Some (q, _) ->
      let r = Store_queue.next_seq_after q s in
      if r > e.seq_bound then Pmem.Interval.infinity else r

let flush_line e addr ~seq =
  raise_line_lo e addr ~seq;
  e.flush_count <- e.flush_count + 1

(* Line-interval enumeration for state canonicalization: [f line ~lo ~hi]
   over every materialized line, in unspecified order (callers sort). Lines
   still at the default [0, inf) are indistinguishable from absent ones to
   every reader, so canonicalizers must skip them. *)
let fold_lines f e acc = Pmem.Line_table.fold f e.lines acc

(* A read-only view that stays correct while the original keeps executing,
   for the failure-point snapshot layer. Line intervals are duplicated — a
   flat three-blit copy — because the recovery read-from analysis refines
   them in place even on buried records (UpdateRanges). The per-byte store
   queues are *shared* — queue entries are immutable, appends only ever add
   entries with larger seqs, and the view's [seq_bound] hides everything
   pushed after the capture. Capture cost is therefore O(lines touched),
   independent of how many stores the pre-failure program executed. *)
let snapshot_view ?bound e =
  let seq_bound = match bound with None -> e.seq_bound | Some b -> min b e.seq_bound in
  {
    id = e.id;
    queues = e.queues;
    lines = Pmem.Line_table.copy e.lines;
    seq_bound;
    store_count = e.store_count;
    flush_count = e.flush_count;
  }

(* A private, physically truncated copy of a view: entries beyond the view's
   seq_bound are dropped and the result is unbounded, so it may receive new
   stores. Needed for a restored top record under buffered eviction, where
   the drain at the crash pushes the surviving buffer entries into it. *)
let snapshot_freeze e =
  let queues = Hashtbl.create (max 16 (Hashtbl.length e.queues)) in
  Hashtbl.iter
    (fun addr q ->
      let n = visible_len e q in
      if n > 0 then Hashtbl.add queues addr (Store_queue.truncated_copy q n))
    e.queues;
  {
    id = e.id;
    queues;
    lines = Pmem.Line_table.copy e.lines;
    seq_bound = max_int;
    store_count = e.store_count;
    flush_count = e.flush_count;
  }

let store_count e = e.store_count
let flush_count e = e.flush_count

let written_addrs e =
  Hashtbl.fold (fun addr _ acc -> if has_stores e addr then addr :: acc else acc) e.queues []

let unflushed_store_count e addr =
  match stores_opt e addr with
  | None -> 0
  | Some (q, n) ->
      let lo = line_lo e addr in
      let m = ref 0 in
      for i = 0 to n - 1 do
        if Store_queue.seq_at q i > lo then incr m
      done;
      !m

let pp ppf e =
  Format.fprintf ppf "exec#%d: %d stores, %d flushes over %d addrs" e.id e.store_count
    e.flush_count (Hashtbl.length e.queues)
