(** The stack of executions making up one failure scenario.

    The paper records the sequence of executions that have run against the
    persistent store as a stack [exec]; [top] is the currently-running
    execution and [prev e] the one that failed immediately before [e] began.
    The bottom of the stack is always the {!Exec_record.initial} image. *)

type t

val create : unit -> t
(** A stack holding only the initial image, with one live execution pushed on
    top of it (the first pre-failure execution). *)

val top : t -> Exec_record.t

val prev : t -> Exec_record.t -> Exec_record.t
(** [prev s e] is the execution immediately below [e]. Raises
    [Invalid_argument] on the initial record or a record not in [s]. *)

val push_fresh : t -> Exec_record.t
(** Simulates a power failure: pushes and returns a new empty execution on
    top of the stack. Volatile state is the caller's to reset. *)

val restore : t -> Exec_record.t list -> unit
(** Replaces the whole stack with the given records (top first). The caller
    owns the records — the snapshot layer passes freshly materialised
    copies. Raises [Invalid_argument] if the list is empty or its bottom is
    not the {!Exec_record.initial} image. *)

val depth : t -> int
(** Number of non-initial executions. 1 after {!create}. *)

val to_list : t -> Exec_record.t list
(** Top-first, including the initial record last. *)
