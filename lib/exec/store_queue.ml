(* Structure-of-arrays slab: values, sequence numbers and labels in parallel
   arrays rather than one boxed record per store. A push is three array
   writes; the binary searches ([count_le], [next_seq_after]) scan a flat
   [int array] of seqs; [copy] for the snapshot layer is three blits. The
   boxed {!entry} view survives only on cold paths (reports, tests). *)

type entry = { value : int; seq : int; label : string }

type t = {
  mutable values : int array;
  mutable seqs : int array;
  mutable labels : string array;
  mutable len : int;
}

let create () = { values = [||]; seqs = [||]; labels = [||]; len = 0 }
let length q = q.len
let is_empty q = q.len = 0

let grow q =
  let cap = Array.length q.seqs in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let values = Array.make cap' 0 and seqs = Array.make cap' 0 and labels = Array.make cap' "" in
  Array.blit q.values 0 values 0 q.len;
  Array.blit q.seqs 0 seqs 0 q.len;
  Array.blit q.labels 0 labels 0 q.len;
  q.values <- values;
  q.seqs <- seqs;
  q.labels <- labels

let push_unboxed q ~value ~seq ~label =
  if q.len > 0 && seq <= q.seqs.(q.len - 1) then
    invalid_arg "Store_queue.push: sequence numbers must increase";
  if q.len = Array.length q.seqs then grow q;
  Array.unsafe_set q.values q.len value;
  Array.unsafe_set q.seqs q.len seq;
  Array.unsafe_set q.labels q.len label;
  q.len <- q.len + 1

let push q e = push_unboxed q ~value:e.value ~seq:e.seq ~label:e.label

let copy q =
  { values = Array.copy q.values; seqs = Array.copy q.seqs; labels = Array.copy q.labels; len = q.len }

let truncated_copy q n =
  let n = min n q.len in
  {
    values = Array.sub q.values 0 n;
    seqs = Array.sub q.seqs 0 n;
    labels = Array.sub q.labels 0 n;
    len = n;
  }

let check_index q i =
  if i < 0 || i >= q.len then invalid_arg "Store_queue.get: index out of range"

let value_at q i =
  check_index q i;
  Array.unsafe_get q.values i

let seq_at q i =
  check_index q i;
  Array.unsafe_get q.seqs i

let label_at q i =
  check_index q i;
  Array.unsafe_get q.labels i

let get q i =
  check_index q i;
  { value = q.values.(i); seq = q.seqs.(i); label = q.labels.(i) }

let first q = if q.len = 0 then None else Some (get q 0)
let last q = if q.len = 0 then None else Some (get q (q.len - 1))

let count_le q s =
  (* Binary search: number of entries with seq <= s (seqs strictly increase). *)
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Array.unsafe_get q.seqs mid <= s then loop (mid + 1) hi else loop lo mid
  in
  loop 0 q.len

let fold_prefix f q n acc =
  let n = min n q.len in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f (get q i) !acc
  done;
  !acc

let next_seq_after q s =
  (* Binary search for the oldest entry with seq > s. *)
  let rec loop lo hi =
    if lo >= hi then if lo >= q.len then Pmem.Interval.infinity else q.seqs.(lo)
    else
      let mid = (lo + hi) / 2 in
      if Array.unsafe_get q.seqs mid <= s then loop (mid + 1) hi else loop lo mid
  in
  loop 0 q.len

let fold f q acc = fold_prefix f q q.len acc

let to_list q = List.rev (fold (fun e acc -> e :: acc) q [])

let pp ppf q =
  let pp_entry ppf e = Format.fprintf ppf "%d@@%d" e.value e.seq in
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry) (to_list q)
