type entry = { value : int; seq : int; label : string }

type t = { mutable entries : entry array; mutable len : int }

let create () = { entries = [||]; len = 0 }
let length q = q.len
let is_empty q = q.len = 0

let grow q =
  let cap = Array.length q.entries in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let dummy = { value = 0; seq = 0; label = "" } in
  let entries = Array.make cap' dummy in
  Array.blit q.entries 0 entries 0 q.len;
  q.entries <- entries

let push q e =
  if q.len > 0 && e.seq <= q.entries.(q.len - 1).seq then
    invalid_arg "Store_queue.push: sequence numbers must increase";
  if q.len = Array.length q.entries then grow q;
  q.entries.(q.len) <- e;
  q.len <- q.len + 1

let copy q = { entries = Array.copy q.entries; len = q.len }

let truncated_copy q n =
  let n = min n q.len in
  { entries = Array.sub q.entries 0 n; len = n }

let get q i =
  if i < 0 || i >= q.len then invalid_arg "Store_queue.get: index out of range";
  q.entries.(i)

let first q = if q.len = 0 then None else Some q.entries.(0)
let last q = if q.len = 0 then None else Some q.entries.(q.len - 1)

let count_le q s =
  (* Binary search: number of entries with seq <= s (seqs strictly increase). *)
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if q.entries.(mid).seq <= s then loop (mid + 1) hi else loop lo mid
  in
  loop 0 q.len

let fold_prefix f q n acc =
  let n = min n q.len in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f q.entries.(i) !acc
  done;
  !acc

let next_seq_after q s =
  (* Binary search for the oldest entry with seq > s. *)
  let rec loop lo hi =
    if lo >= hi then if lo >= q.len then Pmem.Interval.infinity else q.entries.(lo).seq
    else
      let mid = (lo + hi) / 2 in
      if q.entries.(mid).seq <= s then loop (mid + 1) hi else loop lo mid
  in
  loop 0 q.len

let fold f q acc =
  let acc = ref acc in
  for i = 0 to q.len - 1 do
    acc := f q.entries.(i) !acc
  done;
  !acc

let to_list q = List.rev (fold (fun e acc -> e :: acc) q [])

let pp ppf q =
  let pp_entry ppf e = Format.fprintf ppf "%d@@%d" e.value e.seq in
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry) (to_list q)
