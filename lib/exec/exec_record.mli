(** The persistent-memory-relevant record of one execution.

    A failure scenario is a stack of executions, each ending in a power
    failure except the last. For each execution Jaaru records (paper §4):

    - [queue(addr)]: the per-byte history of stores that reached the cache;
    - [getcacheline(addr)]: the interval bounding when each cache line was
      most recently written back to persistent memory.

    The bottom of every stack is the {e initial} pseudo-execution: a fully
    persisted, all-zero memory image, the analogue of a freshly zeroed pool
    file. *)

type t

val create : id:int -> t
(** A fresh execution record. [id] is its depth in the execution stack;
    id 0 is reserved for {!initial}. *)

val initial : unit -> t
(** The all-zero, fully-flushed base image. *)

val id : t -> int
val is_initial : t -> bool

val queue : t -> Pmem.Addr.t -> Store_queue.t
(** The store history for one byte address, created empty on first use. *)

val queue_opt : t -> Pmem.Addr.t -> Store_queue.t option
(** Like {!queue} but without materialising an empty history. *)

val cacheline : t -> Pmem.Addr.t -> Pmem.Interval.t
(** A boxed {e copy} of the last-writeback interval of the line containing
    the given byte, created as [\[0, inf)] on first use. Read-only: the live
    per-line state is unboxed (see {!line_bounds}); refinements must go
    through {!raise_line_lo} / {!lower_line_hi}, and a copy taken before a
    refinement does not see it. *)

val line_lo : t -> Pmem.Addr.t -> int
(** The line's last-writeback lower bound, without boxing. *)

val line_bounds : t -> Pmem.Addr.t -> int * int
(** The line's [(lo, hi)] bounds, without boxing. *)

val raise_line_lo : t -> Pmem.Addr.t -> seq:int -> unit
(** Raises the line's lower bound to [seq] if higher (a flush took effect). *)

val lower_line_hi : t -> Pmem.Addr.t -> seq:int -> unit
(** Lowers the line's upper bound to [seq] if lower (a recovery read proved
    the writeback happened before [seq]). *)

val push_store : t -> Pmem.Addr.t -> value:int -> seq:int -> label:string -> unit
(** Records one byte store taking effect in the cache. *)

val flush_line : t -> Pmem.Addr.t -> seq:int -> unit
(** Raises the line's last-writeback lower bound to [seq] (a [clflush] or an
    evicted [clflushopt] took effect). *)

(** {1 Bounded store accessors}

    Read paths must use these instead of touching {!queue_opt} directly: a
    snapshot view (below) shares the live record's queue table and hides
    every store pushed after the capture behind a sequence-number bound, and
    only these accessors apply that bound. On ordinary records they see the
    whole queue. *)

val has_stores : t -> Pmem.Addr.t -> bool
(** Whether [addr] has at least one visible store. *)

val visible_stores : t -> Pmem.Addr.t -> (Store_queue.t * int) option
(** The store history of [addr] together with its visible length (the prefix
    a snapshot view exposes), for unboxed indexed reads via
    {!Store_queue.value_at} and friends. Indices [0 .. n-1] are visible; the
    queue may physically hold more. *)

val fold_stores : (Store_queue.entry -> 'a -> 'a) -> t -> Pmem.Addr.t -> 'a -> 'a
(** Oldest-first fold over the visible stores of [addr]. *)

val first_store : t -> Pmem.Addr.t -> Store_queue.entry option
val last_store : t -> Pmem.Addr.t -> Store_queue.entry option

val last_store_byte : t -> Pmem.Addr.t -> int
(** The newest visible store's byte value at [addr], or [-1] if the address
    has no visible store — the allocation-free probe behind the common-case
    read path (every recorded value is a byte in [0, 255]). *)

val next_store_seq_after : t -> Pmem.Addr.t -> int -> int
(** The sequence number of the oldest visible store of [addr] strictly newer
    than the given seq, or {!Pmem.Interval.infinity} — the paper's "next
    tuple" bound used to refine interval upper ends. *)

(** {1 Snapshot copies}

    Building blocks of the failure-point snapshot layer. *)

val snapshot_view : ?bound:int -> t -> t
(** A read-only view (same [id]) that stays correct while the original keeps
    executing. Line intervals are duplicated, because recovery reads refine
    them in place even on buried records; the store queues are shared, with
    stores newer than [bound] hidden from the accessors above (queue entries
    are immutable and appends carry strictly larger seqs, so the prefix up
    to [bound] is frozen). Capture cost is O(lines touched), independent of
    the store count. [bound] defaults to the record's own bound; views of
    views compose by taking the minimum. Pushing into a view raises
    [Invalid_argument]. *)

val snapshot_freeze : t -> t
(** A private, physically truncated copy of a view: stores beyond the view's
    bound are dropped and the copy is unbounded, so it may receive new
    stores — needed for a restored top record under buffered eviction, where
    the drain at the crash pushes the surviving buffer entries into it. *)

val store_count : t -> int
(** Total byte stores recorded. *)

val flush_count : t -> int
(** Total line-flush events recorded. *)

val fold_lines : (int -> lo:int -> hi:int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over every materialized line interval as [f line ~lo ~hi], in
    unspecified order. A line that was never touched has no entry, and a
    materialized line still at the default [\[0, inf)] behaves identically to
    an absent one — canonical-state builders must treat the two as equal. *)

val written_addrs : t -> Pmem.Addr.t list
(** All byte addresses with at least one recorded store (unordered). *)

val unflushed_store_count : t -> Pmem.Addr.t -> int
(** Number of stores to the byte that are not certainly persisted, i.e. with
    sequence numbers above the line's last-writeback lower bound. Used by the
    Yat state counter. *)

val pp : Format.formatter -> t -> unit
