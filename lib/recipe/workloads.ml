type case = {
  id : string;
  benchmark : string;
  description : string;
  expected_symptom : string list option;
  lint_roots : string list;
      (* for seeded missing-flush bugs: the store labels `jaaru lint` must
         name as the root cause (any one of them suffices) *)
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

let keys n = List.init n (fun i -> ((i * 17) mod 97) + 1)

(* Analysis-pass suppressions that hold for every RECIPE workload: the
   allocator's dirty-memory poison is unflushed by design (a constructor
   that persists the object discharges it), and P-CLHT lock words are
   volatile-by-design state living on persistent cache lines (recovery
   resets them). *)
let recipe_suppress =
  [
    "region_alloc.ml:poison";
    (* lock words are volatile-by-design state living on persistent cache
       lines; recovery re-initialises them *)
    "p_clht.ml:unlock";
    "p_clht.ml:lock cas";
    "p_art.ml:unlock";
    "p_art.ml:lock cas";
  ]

let config ?(max_steps = 40_000) () =
  { Jaaru.Config.default with max_steps; suppress = recipe_suppress }

(* --- scenario builders ----------------------------------------------------- *)

let cceh_scenario ?(bugs = Cceh.no_bugs) ?alloc_bugs n =
  let pre ctx =
    let t = Cceh.create_or_open ~bugs ?alloc_bugs ctx in
    List.iter (fun k -> Cceh.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = Cceh.create_or_open ~bugs ?alloc_bugs ctx in
    Cceh.check t;
    List.iter
      (fun k ->
        match Cceh.lookup t k with
        | Some v -> Jaaru.Ctx.check ctx ~label:"workloads.ml:cceh" (v = k * 100) "wrong value"
        | None -> ())
      (keys n)
  in
  Jaaru.Explorer.scenario ~name:"cceh" ~pre ~post

let fast_fair_scenario ?(bugs = Fast_fair.no_bugs) ?alloc_bugs n =
  let pre ctx =
    let t = Fast_fair.create_or_open ~bugs ?alloc_bugs ctx in
    List.iter (fun k -> Fast_fair.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = Fast_fair.create_or_open ~bugs ?alloc_bugs ctx in
    Fast_fair.check t;
    List.iter (fun k -> ignore (Fast_fair.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"fast_fair" ~pre ~post

let p_art_scenario ?(bugs = P_art.no_bugs) ?alloc_bugs ?(epoch_every = 4) n =
  let pre ctx =
    let t = P_art.create_or_open ~bugs ?alloc_bugs ctx in
    List.iteri
      (fun i k ->
        P_art.insert t k (k * 100);
        if (i + 1) mod epoch_every = 0 then P_art.epoch_end t)
      (keys n);
    P_art.epoch_end t
  in
  let post ctx =
    let t = P_art.create_or_open ~bugs ?alloc_bugs ctx in
    P_art.check t;
    List.iter (fun k -> ignore (P_art.lookup t k)) (keys n);
    (* A recovery-side insert exercises the lock paths (the loop bug). *)
    P_art.insert t 251 77;
    P_art.epoch_end t
  in
  Jaaru.Explorer.scenario ~name:"p_art" ~pre ~post

let p_bwtree_scenario ?(bugs = P_bwtree.no_bugs) ?alloc_bugs n =
  let pre ctx =
    let t = P_bwtree.create_or_open ~bugs ?alloc_bugs ctx in
    List.iter (fun k -> P_bwtree.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = P_bwtree.create_or_open ~bugs ?alloc_bugs ctx in
    P_bwtree.check t;
    List.iter (fun k -> ignore (P_bwtree.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"p_bwtree" ~pre ~post

let p_clht_scenario ?(bugs = P_clht.no_bugs) ?alloc_bugs ?nbuckets n =
  let pre ctx =
    let t = P_clht.create_or_open ~bugs ?alloc_bugs ?nbuckets ctx in
    List.iter (fun k -> P_clht.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = P_clht.create_or_open ~bugs ?alloc_bugs ?nbuckets ctx in
    P_clht.check t;
    List.iter (fun k -> ignore (P_clht.lookup t k)) (keys n);
    (* Recovery resumes the workload: re-inserting spins on any bucket whose
       crashed lock was never reset. *)
    List.iter (fun k -> P_clht.insert t k (k * 100)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"p_clht" ~pre ~post

let p_masstree_scenario ?(bugs = P_masstree.no_bugs) ?alloc_bugs n =
  let slices k = (((k / 8) mod 13) + 1, (k mod 8) + 1) in
  let pre ctx =
    let t = P_masstree.create_or_open ~bugs ?alloc_bugs ctx in
    List.iter
      (fun k ->
        let slice0, slice1 = slices k in
        P_masstree.insert t ~slice0 ~slice1 (k * 100))
      (keys n)
  in
  let post ctx =
    let t = P_masstree.create_or_open ~bugs ?alloc_bugs ctx in
    P_masstree.check t;
    List.iter
      (fun k ->
        let slice0, slice1 = slices k in
        ignore (P_masstree.lookup t ~slice0 ~slice1))
      (keys n)
  in
  Jaaru.Explorer.scenario ~name:"p_masstree" ~pre ~post

let fixed_scenario benchmark n =
  match benchmark with
  | "CCEH" -> cceh_scenario n
  | "FAST_FAIR" -> fast_fair_scenario n
  | "P-ART" -> p_art_scenario n
  | "P-BwTree" -> p_bwtree_scenario n
  | "P-CLHT" ->
      (* The paper's P-CLHT has the largest eager state count despite the
         smallest execution count: its constructor initialises a big bucket
         array and flushes it only once. A 32-line table reproduces that
         shape. *)
      p_clht_scenario ~nbuckets:32 n
  | "P-Masstree" -> p_masstree_scenario n
  | other -> invalid_arg ("Workloads.fixed_scenario: unknown benchmark " ^ other)

(* --- case tables ------------------------------------------------------------ *)

let case ~id ~benchmark ~description ?expected ?(lint_roots = []) ?(config = config ()) scenario =
  { id; benchmark; description; expected_symptom = expected; lint_roots; scenario; config }

(* Every seeded bug must surface as one of the paper's visible
   manifestations (Fig. 15): a segfault-like illegal access, an assertion
   failure, or getting stuck in a loop. Exact locations vary with the
   explored interleaving, exactly as the paper's appendix notes. *)
let structure_damage = [ "Illegal memory access"; "Assertion failure"; "infinite loop" ]

let fig13_cases () =
  let sd = Some structure_damage in
  (* Bug hunts stop at the first manifestation (as the paper's bug runs do);
     a missing flush multiplies read-from candidates, so exhausting the
     buggy state space would take orders of magnitude longer than finding
     the crash. *)
  let bug_config = { (config ()) with Jaaru.Config.stop_at_first_bug = true } in
  let mk ~id ~benchmark ~description ?expected ?lint_roots scenario =
    case ~id ~benchmark ~description ?expected ?lint_roots ~config:bug_config scenario
  in
  [
    mk ~id:"CCEH-1" ~benchmark:"CCEH" ~description:"Missing flush in CCEH constructor (directory)"
      ?expected:sd
      ~lint_roots:[ "cceh.ml:ctor dir0"; "cceh.ml:ctor dir1" ]
      (cceh_scenario ~bugs:{ Cceh.no_bugs with ctor_skip_dir_flush = true } 6);
    mk ~id:"CCEH-2" ~benchmark:"CCEH" ~description:"Missing flush in CCEH constructor (segments)"
      ?expected:sd
      ~lint_roots:[ "cceh.ml:seg init depth"; "cceh.ml:seg init key"; "cceh.ml:seg init value" ]
      (cceh_scenario ~bugs:{ Cceh.no_bugs with ctor_skip_segment_flush = true } 6);
    mk ~id:"CCEH-3" ~benchmark:"CCEH" ~description:"Missing flush in CCEH constructor (metadata)"
      ?expected:sd
      ~lint_roots:[ "cceh.ml:ctor depth"; "cceh.ml:ctor dirptr" ]
      (cceh_scenario ~bugs:{ Cceh.no_bugs with ctor_skip_meta_flush = true } 6);
    mk ~id:"FAST_FAIR-1" ~benchmark:"FAST_FAIR" ~description:"Missing flush in header constructor"
      ?expected:sd
      ~lint_roots:
        [ "fast_fair.ml:init kind"; "fast_fair.ml:init sibling"; "fast_fair.ml:init high" ]
      (fast_fair_scenario ~bugs:{ Fast_fair.no_bugs with ctor_skip_header_flush = true } 8);
    mk ~id:"FAST_FAIR-2" ~benchmark:"FAST_FAIR" ~description:"Missing flush in entry constructor"
      ?expected:sd
      ~lint_roots:[ "fast_fair.ml:entry init key"; "fast_fair.ml:entry init payload" ]
      (fast_fair_scenario ~bugs:{ Fast_fair.no_bugs with missing_entry_flush = true } 8);
    mk ~id:"FAST_FAIR-3" ~benchmark:"FAST_FAIR" ~description:"Missing flush in btree constructor"
      ?expected:sd ~lint_roots:[ "fast_fair.ml:set root" ]
      (fast_fair_scenario ~bugs:{ Fast_fair.no_bugs with ctor_skip_root_flush = true } 6);
    mk ~id:"P-ART-1" ~benchmark:"P-ART"
      ~description:"Use of non-persistent data structure in Epoch" ?expected:sd
      (p_art_scenario ~bugs:{ P_art.no_bugs with epoch_volatile_flush = true } 8);
    mk ~id:"P-ART-2" ~benchmark:"P-ART" ~description:"Missing flush in Tree constructor"
      ?expected:sd
      (p_art_scenario ~bugs:{ P_art.no_bugs with ctor_skip_root_flush = true } 6);
    mk ~id:"P-ART-3" ~benchmark:"P-ART"
      ~description:"Use of non-persistent data structure for recovery" ?expected:sd
      (p_art_scenario ~bugs:{ P_art.no_bugs with volatile_lock_recovery = true } 6);
    mk ~id:"P-BwTree-1" ~benchmark:"P-BwTree"
      ~description:"GC crash leaves data structure in inconsistent state" ?expected:sd
      (p_bwtree_scenario ~bugs:{ P_bwtree.no_bugs with gc_nonatomic = true } 8);
    mk ~id:"P-BwTree-2" ~benchmark:"P-BwTree" ~description:"Missing flush of GC metadata pointer"
      ?expected:sd
      (p_bwtree_scenario ~bugs:{ P_bwtree.no_bugs with missing_gc_head_flush = true } 14);
    mk ~id:"P-BwTree-3" ~benchmark:"P-BwTree" ~description:"Missing flush of GC metadata"
      ?expected:sd
      (p_bwtree_scenario ~bugs:{ P_bwtree.no_bugs with missing_gc_link_flush = true } 14);
    mk ~id:"P-BwTree-4" ~benchmark:"P-BwTree"
      ~description:"Missing flush in AllocationMeta constructor" ?expected:sd
      (p_bwtree_scenario
         ~alloc_bugs:{ Region_alloc.no_bugs with missing_meta_flush = true }
         6);
    mk ~id:"P-BwTree-5" ~benchmark:"P-BwTree" ~description:"Missing flush in BwTree constructor"
      ?expected:sd
      (p_bwtree_scenario ~bugs:{ P_bwtree.no_bugs with ctor_skip_flush = true } 6);
    mk ~id:"P-CLHT-1" ~benchmark:"P-CLHT" ~description:"Missing flush in clht constructor"
      ?expected:sd ~lint_roots:[ "p_clht.ml:meta ht" ]
      (p_clht_scenario ~bugs:{ P_clht.no_bugs with ctor_skip_meta_flush = true } 4);
    mk ~id:"P-CLHT-2" ~benchmark:"P-CLHT" ~description:"Missing flush for hashtable object"
      ?expected:sd ~lint_roots:[ "p_clht.ml:ht nbuckets"; "p_clht.ml:ht table" ]
      (p_clht_scenario ~bugs:{ P_clht.no_bugs with skip_ht_flush = true } 4);
    mk ~id:"P-CLHT-3" ~benchmark:"P-CLHT"
      ~description:"Missing lock reset in recovery (volatile lock state)" ?expected:sd
      (p_clht_scenario ~bugs:{ P_clht.no_bugs with skip_lock_reset = true } 4);
    mk ~id:"P-MassTree-1" ~benchmark:"P-Masstree"
      ~description:"Flushed referenced object instead of pointer" ?expected:sd
      (p_masstree_scenario ~bugs:{ P_masstree.flush_object_not_pointer = true } 6);
  ]

(* Workload sizes chosen so the relative failure-point counts follow the
   paper's Fig. 14 ordering (CCEH largest, P-CLHT / P-Masstree smallest). *)
let fixed_sizes =
  [
    ("CCEH", 24);
    ("FAST_FAIR", 10);
    ("P-ART", 8);
    ("P-BwTree", 7);
    ("P-CLHT", 3);
    ("P-Masstree", 4);
  ]

let fixed_cases () =
  List.map
    (fun (benchmark, n) ->
      case ~id:(benchmark ^ "-fixed") ~benchmark ~description:"fixed"
        (fixed_scenario benchmark n))
    fixed_sizes

(* Two threads hammer the same P-CLHT concurrently. The correct variant
   relies on the bucket locks; the racy variant bypasses them with plain
   slot writes, so some schedules overwrite a neighbour's committed slot. *)
let concurrent_scenario ?(ks0 = [ 3; 5; 7 ]) ?(ks1 = [ 11; 13; 17 ]) ~racy () =
  let pre ctx =
    let t = P_clht.create_or_open ~nbuckets:2 ctx in
    if racy then begin
      (* Unsynchronised writers sharing one slot index: a lost update. *)
      let region = Jaaru.Ctx.region ctx in
      let cell = Pmem.Region.limit region - 64 in
      Jaaru.Ctx.parallel ctx
        [
          (fun ctx ->
            let v = Jaaru.Ctx.load64 ctx ~label:"racy read 0" cell in
            Jaaru.Ctx.store64 ctx ~label:"racy write 0" cell (v + 1);
            Jaaru.Ctx.mfence ctx ~label:"racy fence 0" ());
          (fun ctx ->
            let v = Jaaru.Ctx.load64 ctx ~label:"racy read 1" cell in
            Jaaru.Ctx.store64 ctx ~label:"racy write 1" cell (v + 1);
            Jaaru.Ctx.mfence ctx ~label:"racy fence 1" ());
        ];
      Jaaru.Ctx.mfence ctx ~label:"join" ();
      Jaaru.Ctx.check ctx ~label:"workloads.ml:race"
        (Jaaru.Ctx.load64 ctx ~label:"final" cell = 2)
        "an unsynchronised increment was lost"
    end
    else
      Jaaru.Ctx.parallel ctx
        [
          (fun _ -> List.iter (fun k -> P_clht.insert t k (k * 100)) ks0);
          (fun _ -> List.iter (fun k -> P_clht.insert t k (k * 100)) ks1);
        ]
  in
  let post ctx =
    let t = P_clht.create_or_open ~nbuckets:2 ctx in
    P_clht.check t;
    List.iter (fun k -> ignore (P_clht.lookup t k)) (ks0 @ ks1)
  in
  Jaaru.Explorer.scenario ~name:"p_clht_concurrent" ~pre ~post

let concurrent_cases () =
  [
    case ~id:"P-CLHT-concurrent" ~benchmark:"P-CLHT"
      ~description:"two lock-protected writer threads"
      ~config:{ (config ()) with Jaaru.Config.evict_policy = Jaaru.Config.Buffered }
      (concurrent_scenario ~racy:false ());
    case ~id:"P-CLHT-racy" ~benchmark:"P-CLHT"
      ~description:"unsynchronised concurrent increment (schedule-dependent)"
      ~expected:[ "workloads.ml:race" ]
      ~config:
        {
          (config ()) with
          Jaaru.Config.evict_policy = Jaaru.Config.Buffered;
          Jaaru.Config.stop_at_first_bug = true;
        }
      (concurrent_scenario ~racy:true ());
  ]

let find cases id = List.find (fun c -> c.id = id) cases
