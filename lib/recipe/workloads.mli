(** Ready-made failure scenarios over the RECIPE mini-suite.

    [fig13_cases] seeds the eighteen bugs of the paper's Fig. 13 (one case
    per row, same numbering); [fixed_cases] are the bug-free variants used
    for the Fig. 14 state-space-reduction experiment. *)

type case = {
  id : string;  (** e.g. "CCEH-1" — the paper's Fig. 15 bug id *)
  benchmark : string;  (** e.g. "CCEH" *)
  description : string;  (** the paper's Fig. 13 "type of bug" text *)
  expected_symptom : string list option;
      (** fragments, at least one of which must appear in a reported
          symptom; [None] for fixed variants that must verify clean *)
  lint_roots : string list;
      (** for seeded missing-flush bugs: store labels [jaaru lint] must name
          as the root cause (naming any one of them counts); [[]] when the
          case is not lint-detectable *)
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

val fig13_cases : unit -> case list
val fixed_cases : unit -> case list

val fixed_scenario : string -> int -> Jaaru.Explorer.scenario
(** [fixed_scenario benchmark n] builds the bug-free scenario for one of
    "CCEH", "FAST_FAIR", "P-ART", "P-BwTree", "P-CLHT", "P-Masstree" with an
    [n]-key workload — the knob behind the Fig. 14 sweep. Raises
    [Invalid_argument] on an unknown name. *)

val concurrent_cases : unit -> case list
(** Multithreaded P-CLHT workloads (two writers under the cooperative
    scheduler): a correct lock-protected variant and a racy one whose bug
    only some schedules expose — inputs for schedule fuzzing. *)

val concurrent_scenario :
  ?ks0:int list -> ?ks1:int list -> racy:bool -> unit -> Jaaru.Explorer.scenario
(** The scenario behind {!concurrent_cases}, with the per-thread key lists
    exposed as knobs ([ks0]/[ks1] for the lock-protected variant; the racy
    variant ignores them) — smaller lists make a seconds-long workload for
    the crash-state-memoization benchmark. *)

val find : case list -> string -> case
