(** Ready-made failure scenarios over the PMDK mini-suite.

    Each case couples a pre-failure workload with its recovery program and
    records whether a bug is seeded — the driving data for reproducing the
    paper's Fig. 12 / Fig. 16 (bugs found in PMDK) and for the fixed-variant
    performance runs. *)

type case = {
  id : string;  (** e.g. "pmdk-btree-1" *)
  benchmark : string;  (** paper benchmark name, e.g. "Btree" *)
  description : string;  (** what is seeded / exercised *)
  expected_symptom : string list option;
      (** [Some fragments]: a seeded bug whose symptom should contain at
          least one of [fragments]; [None]: a fixed variant that must verify
          clean. *)
  lint_roots : string list;
      (** for seeded missing-flush bugs: store labels [jaaru lint] must name
          as the root cause (naming any one of them counts); [[]] when the
          case is not lint-detectable *)
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

val fig12_cases : unit -> case list
(** The seven buggy PMDK configurations of the paper's Fig. 12. *)

val fixed_cases : ?n:int -> unit -> case list
(** Bug-free variants of every PMDK benchmark (inserting [n] keys,
    default 8), for performance measurement and regression. *)

val checksum_cases : unit -> case list
(** Checksum-based recovery (§4): a correct CRC log and the skip-CRC bug. *)

val skiplist_cases : unit -> case list
(** The skiplist example (the paper checked every PMDK example program):
    a fixed variant plus two seeded protocol bugs. *)

val find : case list -> string -> case
(** Lookup by [id]; raises [Not_found]. *)
