type case = {
  id : string;
  benchmark : string;
  description : string;
  expected_symptom : string list option;
  lint_roots : string list;
      (* for seeded missing-flush bugs: the store labels `jaaru lint` must
         name as the root cause (any one of them suffices) *)
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

let keys n = List.init n (fun i -> ((i * 13) mod 61) + 1)

let config ?(max_steps = 60_000) () = { Jaaru.Config.default with max_steps }

(* --- btree --------------------------------------------------------------- *)

let btree_scenario ?(bugs = Btree_map.no_bugs) ?pool_bugs ?alloc_bugs n =
  let pre ctx =
    let t = Btree_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    List.iter (fun k -> Btree_map.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = Btree_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    Btree_map.check t;
    List.iter
      (fun k ->
        match Btree_map.lookup t k with
        | Some v -> Jaaru.Ctx.check ctx ~label:"workloads.ml:btree" (v = k * 100) "wrong value"
        | None -> ())
      (keys n)
  in
  Jaaru.Explorer.scenario ~name:"btree" ~pre ~post

(* --- ctree --------------------------------------------------------------- *)

let ctree_scenario ?(bugs = Ctree_map.no_bugs) ?pool_bugs ?alloc_bugs n =
  let pre ctx =
    let t = Ctree_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    List.iter (fun k -> Ctree_map.insert t k (k * 100)) (keys n);
    (* Exercise removal so the free list sees traffic. *)
    match keys n with k :: _ -> Ctree_map.remove t k | [] -> ()
  in
  let post ctx =
    let t = Ctree_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    Ctree_map.check t;
    List.iter (fun k -> ignore (Ctree_map.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"ctree" ~pre ~post

(* --- rbtree -------------------------------------------------------------- *)

let rbtree_scenario ?(bugs = Rbtree_map.no_bugs) ?pool_bugs ?alloc_bugs ?tx_bugs n =
  let pre ctx =
    let t = Rbtree_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ?tx_bugs ctx in
    List.iter (fun k -> Rbtree_map.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = Rbtree_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ?tx_bugs ctx in
    Rbtree_map.check t;
    List.iter (fun k -> ignore (Rbtree_map.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"rbtree" ~pre ~post

(* --- hashmaps ------------------------------------------------------------ *)

let hashmap_atomic_scenario ?(bugs = Hashmap_atomic.no_bugs) ?pool_bugs ?alloc_bugs n =
  let pre ctx =
    let t = Hashmap_atomic.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    List.iter (fun k -> Hashmap_atomic.insert t k (k * 100)) (keys n);
    match keys n with
    | a :: b :: _ ->
        Hashmap_atomic.remove t a;
        Hashmap_atomic.insert t b (b * 200)
    | _ -> ()
  in
  let post ctx =
    let t = Hashmap_atomic.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    Hashmap_atomic.check t;
    List.iter (fun k -> ignore (Hashmap_atomic.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"hashmap_atomic" ~pre ~post

let hashmap_tx_scenario ?(bugs = Hashmap_tx.no_bugs) ?pool_bugs ?alloc_bugs ?tx_bugs n =
  let pre ctx =
    let t = Hashmap_tx.create_or_open ~bugs ?pool_bugs ?alloc_bugs ?tx_bugs ctx in
    List.iter (fun k -> Hashmap_tx.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = Hashmap_tx.create_or_open ~bugs ?pool_bugs ?alloc_bugs ?tx_bugs ctx in
    Hashmap_tx.check t;
    List.iter (fun k -> ignore (Hashmap_tx.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"hashmap_tx" ~pre ~post

(* --- checksum log -------------------------------------------------------- *)

let clog_scenario ?(bugs = Clog.no_bugs) n =
  let payloads = List.map (fun k -> (k * 257) + 3) (keys n) in
  let pre ctx =
    let t = Clog.create_or_open ~bugs ctx in
    List.iter (Clog.append t) payloads
  in
  let post ctx =
    let t = Clog.create_or_open ~bugs ctx in
    Clog.check t ~expected:payloads
  in
  Jaaru.Explorer.scenario ~name:"clog" ~pre ~post

(* --- skiplist -------------------------------------------------------------- *)

let skiplist_scenario ?(bugs = Skiplist_map.no_bugs) ?pool_bugs ?alloc_bugs n =
  let pre ctx =
    let t = Skiplist_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    List.iter (fun k -> Skiplist_map.insert t k (k * 100)) (keys n);
    match keys n with k :: _ -> Skiplist_map.remove t k | [] -> ()
  in
  let post ctx =
    let t = Skiplist_map.create_or_open ~bugs ?pool_bugs ?alloc_bugs ctx in
    Skiplist_map.check t;
    List.iter (fun k -> ignore (Skiplist_map.lookup t k)) (keys n)
  in
  Jaaru.Explorer.scenario ~name:"skiplist" ~pre ~post

(* --- case tables ---------------------------------------------------------- *)

let case ~id ~benchmark ~description ?expected ?(lint_roots = []) ?(config = config ()) scenario =
  { id; benchmark; description; expected_symptom = expected; lint_roots; scenario; config }

let fig12_cases () =
  (* Bug hunts stop at the first manifestation, as the paper's runs do. *)
  let bug_config = { (config ()) with Jaaru.Config.stop_at_first_bug = true } in
  let case ~id ~benchmark ~description ~expected ?(config = bug_config) scenario =
    case ~id ~benchmark ~description ~expected ~config scenario
  in
  [
    case ~id:"pmdk-1" ~benchmark:"Btree"
      ~description:"non-transactional node split (atomicity violation)"
      ~expected:[ "btree_map.ml"; "workloads.ml:btree" ]
      (btree_scenario ~bugs:{ Btree_map.no_bugs with nontx_split = true } 8);
    case ~id:"pmdk-2" ~benchmark:"Btree"
      ~description:"pool header params not flushed before the magic commits"
      ~expected:[ "pool.ml:open" ]
      (btree_scenario ~pool_bugs:{ Pool.missing_header_flush = true } 4);
    case ~id:"pmdk-3" ~benchmark:"Hashmap_atomic"
      ~description:"allocator bump pointer not flushed (heap walk assert)"
      ~expected:[ "heap.ml" ]
      (hashmap_atomic_scenario
         ~alloc_bugs:{ Pmalloc.no_bugs with missing_bump_flush = true }
         6);
    case ~id:"pmdk-4" ~benchmark:"CTree"
      ~description:"fresh internal node not flushed before the slot commit"
      ~expected:[ "ctree_map.ml"; "heap.ml"; "pmalloc.ml" ]
      (ctree_scenario ~bugs:{ Ctree_map.no_bugs with missing_node_flush = true } 8);
    case ~id:"pmdk-5" ~benchmark:"Hashmap_atomic"
      ~description:"freed block state not flushed before the free-list push"
      ~expected:[ "pmalloc.ml" ]
      (hashmap_atomic_scenario
         ~alloc_bugs:{ Pmalloc.no_bugs with missing_free_flush = true }
         6);
    case ~id:"pmdk-6" ~benchmark:"Hashmap_tx"
      ~description:"transaction data not flushed before the undo log is discarded"
      ~expected:[ "hashmap_tx.ml"; "heap.ml"; "pmalloc.ml" ]
      (hashmap_tx_scenario ~tx_bugs:{ Tx.no_bugs with missing_data_flush = true } 10);
    case ~id:"pmdk-7" ~benchmark:"RBTree"
      ~description:"rotation performed with raw unlogged stores"
      ~expected:[ "rbtree_map.ml" ]
      (rbtree_scenario ~bugs:{ Rbtree_map.nontx_rotate = true } 8);
  ]

let fixed_cases ?(n = 8) () =
  [
    case ~id:"pmdk-btree-fixed" ~benchmark:"Btree" ~description:"fixed" (btree_scenario n);
    case ~id:"pmdk-ctree-fixed" ~benchmark:"CTree" ~description:"fixed" (ctree_scenario n);
    case ~id:"pmdk-rbtree-fixed" ~benchmark:"RBTree" ~description:"fixed" (rbtree_scenario n);
    case ~id:"pmdk-hashmap-atomic-fixed" ~benchmark:"Hashmap_atomic" ~description:"fixed"
      (hashmap_atomic_scenario n);
    case ~id:"pmdk-hashmap-tx-fixed" ~benchmark:"Hashmap_tx" ~description:"fixed"
      (hashmap_tx_scenario n);
  ]

let skiplist_cases () =
  let bug_config = { (config ()) with Jaaru.Config.stop_at_first_bug = true } in
  [
    case ~id:"pmdk-skiplist-fixed" ~benchmark:"Skiplist" ~description:"fixed"
      (skiplist_scenario 8);
    case ~id:"pmdk-skiplist-1" ~benchmark:"Skiplist"
      ~description:"node not flushed before the level-0 commit"
      ~expected:[ "skiplist_map.ml"; "heap.ml" ] ~config:bug_config
      (skiplist_scenario ~bugs:{ Skiplist_map.no_bugs with missing_node_flush = true } 8);
    case ~id:"pmdk-skiplist-2" ~benchmark:"Skiplist"
      ~description:"index levels published before the data level"
      ~expected:[ "skiplist_map.ml" ] ~config:bug_config
      (skiplist_scenario ~bugs:{ Skiplist_map.no_bugs with index_before_data = true } 8);
  ]

let checksum_cases () =
  (* The checksum log deliberately never flushes appends (§4): the trailing
     CRC lets recovery detect and discard torn or lost records, so the
     missing-flush obligations the analysis passes would report are the
     design, not a bug. *)
  let clog_config =
    {
      (config ()) with
      Jaaru.Config.suppress =
        [ "clog.ml:append seqno"; "clog.ml:append payload"; "clog.ml:append crc" ];
    }
  in
  [
    case ~id:"pmdk-clog-fixed" ~benchmark:"CLog" ~description:"checksum-based recovery, correct"
      ~config:clog_config (clog_scenario 6);
    case ~id:"pmdk-clog-bug" ~benchmark:"CLog" ~description:"recovery skips CRC validation"
      ~expected:[ "clog.ml" ] ~config:clog_config (clog_scenario ~bugs:{ Clog.skip_crc = true } 6);
  ]

let find cases id = List.find (fun c -> c.id = id) cases
