(** The fleet wire protocol: length-prefixed, checksummed {!Pmem.Wire} frames
    over the pipes connecting the coordinator to each supervised worker
    process.

    Frame layout: 4-byte big-endian payload length, 4-byte big-endian CRC-32
    of the payload, payload. The length catches the common failure (a worker
    SIGKILLed mid-write leaves a short final frame); the CRC guarantees a
    corrupted stream surfaces as {!Closed} rather than decoding into a
    plausible wrong message. A transport stream never recovers from a framing
    error — the supervisor treats it as a dead worker and requeues the
    shard. *)

exception Closed of string
(** The peer closed the pipe, the stream ended mid-frame, or a frame failed
    its checksum. *)

type msg =
  | Heartbeat of { shard : int; beats : int }
      (** worker → coordinator, periodic liveness proof; [shard] is the shard
          currently being explored ([-1] when idle — the first idle beat
          doubles as the ready handshake) *)
  | Assign of { shard : int; attempt : int; path : string }
      (** coordinator → worker: explore the shard checkpoint at [path] *)
  | Preempt
      (** coordinator → worker: stop cooperatively and return the remainder —
          work stealing and graceful shutdown *)
  | Result of { shard : int; payload : string }
      (** worker → coordinator: the shard's result checkpoint, as bytes
          ({!Jaaru.Checkpoint.of_string}); an interrupted shard carries a
          non-empty frontier remainder *)
  | Refused of { shard : int; reason : string }
      (** worker → coordinator: the assignment could not even start (unreadable
          or torn shard checkpoint, fingerprint mismatch) — distinct from a
          crash so the coordinator can rewrite the file and retry *)

val write : Unix.file_descr -> msg -> unit
(** Writes one complete frame (blocking). Raises {!Closed} on a broken
    pipe. *)

val read : Unix.file_descr -> msg
(** Blocks until one complete frame arrives — the worker side, where the
    coordinator is the only peer and there is nothing to do without it.
    Raises {!Closed} on EOF, a torn frame, or a checksum failure. *)

(** {1 Non-blocking buffered reader — the coordinator side}

    The coordinator multiplexes many workers with [Unix.select]; each
    worker's pipe gets a [reader] that accumulates partial frames across
    {!drain} calls and never blocks. *)

type reader

val reader : Unix.file_descr -> reader
(** Takes ownership of [fd] and switches it to non-blocking mode. *)

val reader_fd : reader -> Unix.file_descr
(** The underlying descriptor, for the [select] read set. *)

val drain : reader -> msg list
(** Reads everything currently available and returns the complete frames, in
    arrival order; partial trailing bytes are buffered for the next call.
    EOF and framing errors do not raise — they latch {!at_eof}, because on
    this side a dead peer is routine (that is what the supervisor is for). *)

val at_eof : reader -> bool
(** The stream has ended (peer exit, torn frame, or checksum failure) and no
    further messages will arrive. *)

val close_reader : reader -> unit
(** Closes the descriptor and latches {!at_eof} (idempotent). *)
