(* The worker side of fleet mode: a protocol loop around one shard
   exploration at a time. Deliberately generic — the actual exploration is
   the [run] callback, so this module never depends on the case registry or
   the explorer. See worker.mli for the thread structure. *)

type assignment = { shard : int; attempt : int; path : string }

type event = Run of assignment | Quit

let serve ?(heartbeat_period = 0.05) ~on_preempt ~run () =
  let input = Unix.stdin and output = Unix.stdout in
  let out_mutex = Mutex.create () in
  let send msg =
    Mutex.lock out_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock out_mutex) (fun () ->
        Transport.write output msg)
  in
  let current = Atomic.make (-1) in
  let quit = Atomic.make false in
  let inbox = Queue.create () in
  let inbox_mutex = Mutex.create () in
  let inbox_cond = Condition.create () in
  let post ev =
    Mutex.lock inbox_mutex;
    Queue.push ev inbox;
    Condition.signal inbox_cond;
    Mutex.unlock inbox_mutex
  in
  (* Reader thread: the only consumer of stdin. Preempts are acted on
     immediately — the main thread is busy inside [run] exactly when they
     matter. Coordinator death (EOF) is treated as a preempt-then-quit, so an
     orphaned worker stops instead of exploring into the void. *)
  let reader =
    Thread.create
      (fun () ->
        let rec loop () =
          match Transport.read input with
          | Transport.Assign { shard; attempt; path } ->
              post (Run { shard; attempt; path });
              loop ()
          | Transport.Preempt ->
              on_preempt ();
              loop ()
          | Transport.Heartbeat _ | Transport.Result _ | Transport.Refused _ -> loop ()
          | exception Transport.Closed _ ->
              on_preempt ();
              post Quit
        in
        loop ())
      ()
  in
  (* Heartbeat thread: always beating, whatever the main thread is doing —
     that is the point. The first (idle) beat doubles as the ready
     handshake. A send failure means the coordinator is gone; stop quietly
     and let the reader's EOF wind the main loop down. *)
  let beater =
    Thread.create
      (fun () ->
        let beats = ref 0 in
        let rec loop () =
          if not (Atomic.get quit) then begin
            incr beats;
            match send (Transport.Heartbeat { shard = Atomic.get current; beats = !beats }) with
            | () ->
                Thread.delay heartbeat_period;
                loop ()
            | exception Transport.Closed _ -> ()
          end
        in
        loop ())
      ()
  in
  let rec main () =
    Mutex.lock inbox_mutex;
    while Queue.is_empty inbox do
      Condition.wait inbox_cond inbox_mutex
    done;
    let ev = Queue.pop inbox in
    Mutex.unlock inbox_mutex;
    match ev with
    | Quit -> ()
    | Run { shard; attempt; path } ->
        Atomic.set current shard;
        let reply =
          match run ~shard ~attempt ~path with
          | Ok payload -> Transport.Result { shard; payload }
          | Error reason -> Transport.Refused { shard; reason }
          | exception exn ->
              Transport.Refused { shard; reason = Printexc.to_string exn }
        in
        Atomic.set current (-1);
        (match send reply with
        | () -> ()
        | exception Transport.Closed _ -> Atomic.set quit true);
        if not (Atomic.get quit) then main ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set quit true;
      (* The reader is blocked on stdin; closing it unblocks the read with
         [Closed] and lets the thread exit. *)
      (try Unix.close input with Unix.Unix_error _ -> ());
      (try Thread.join beater with _ -> ());
      try Thread.join reader with _ -> ())
    main
