(* Worker process lifecycle: spawn (fork + setsid + exec), group kill, reap,
   retry backoff, and the self-inflicted fault plans of [--fleet-chaos]. *)

type chaos = { kill : float; hang : float; torn : float }

let no_chaos = { kill = 0.; hang = 0.; torn = 0. }

let parse_chaos s =
  let prob what v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> p
    | _ -> invalid_arg (Printf.sprintf "--fleet-chaos: %s wants a probability in [0,1], got %S" what v)
  in
  let parse_field acc field =
    match String.index_opt field ':' with
    | None -> invalid_arg (Printf.sprintf "--fleet-chaos: expected mode:prob, got %S" field)
    | Some i -> (
        let mode = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match mode with
        | "kill" -> { acc with kill = prob "kill" v }
        | "hang" -> { acc with hang = prob "hang" v }
        | "torn" -> { acc with torn = prob "torn" v }
        | m -> invalid_arg (Printf.sprintf "--fleet-chaos: unknown mode %S (kill|hang|torn)" m))
  in
  match String.trim s with
  | "" -> no_chaos
  | s -> List.fold_left parse_field no_chaos (String.split_on_char ',' s)

let pp_chaos ppf c =
  Format.fprintf ppf "kill:%g,hang:%g,torn:%g" c.kill c.hang c.torn

(* The faults planned for one shard assignment. Decided coordinator-side from
   one seeded PRNG so a chaos run's fault schedule — and therefore its retry
   history — is reproducible. [kill_after] is seconds until the coordinator
   SIGKILLs the worker's process group; [hang] asks the worker (via argv) to
   stop heartbeating mid-shard; [torn] truncates the shard checkpoint file
   after writing it, before the worker reads it. *)
type plan = { kill_after : float option; hang : bool; torn : bool }

let no_faults = { kill_after = None; hang = false; torn = false }

let injects p = p.kill_after <> None || p.hang || p.torn

let plan rng c =
  (* Fixed draw order keeps the fault schedule a pure function of the seed
     and the assignment sequence, independent of which probabilities are
     zero. *)
  let kill_draw = Random.State.float rng 1.0 in
  let hang_draw = Random.State.float rng 1.0 in
  let torn_draw = Random.State.float rng 1.0 in
  let delay_draw = Random.State.float rng 1.0 in
  {
    kill_after = (if kill_draw < c.kill then Some (0.02 +. (delay_draw *. 0.2)) else None);
    hang = hang_draw < c.hang;
    torn = torn_draw < c.torn;
  }

let backoff ~base ~cap ~attempt =
  (* attempt 1 is the first retry *)
  let d = base *. (2. ** float_of_int (max 0 (attempt - 1))) in
  Float.min cap d

(* --- process control ------------------------------------------------------ *)

type proc = {
  pid : int;
  to_child : Unix.file_descr;  (* coordinator writes Assign/Preempt here *)
  from_child : Unix.file_descr;  (* worker's Heartbeat/Result frames *)
}

exception Spawn_failed of string

let spawn ~argv =
  let prog = argv.(0) in
  if not (Sys.file_exists prog) then raise (Spawn_failed (prog ^ ": no such executable"));
  let down_r, down_w = Unix.pipe ~cloexec:false () in
  let up_r, up_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | exception Unix.Unix_error (e, _, _) ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ down_r; down_w; up_r; up_w ];
      raise (Spawn_failed (Unix.error_message e))
  | 0 ->
      (* Child. Its own session → its own process group, so the coordinator
         can kill the worker and any grandchildren with one negative-pid
         signal, and a coordinator SIGINT from the terminal does not reach
         workers except through the supervisor. *)
      (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
      Unix.dup2 down_r Unix.stdin;
      Unix.dup2 up_w Unix.stdout;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ down_r; down_w; up_r; up_w ];
      (try Unix.execv prog argv with _ -> ());
      (* exec failed: die without running the parent's at_exit handlers *)
      exit 127
  | pid ->
      Unix.close down_r;
      Unix.close up_w;
      { pid; to_child = down_w; from_child = up_r }

let kill_group ?(signal = Sys.sigkill) p =
  (* The worker called setsid, so its pgid is its pid; the negative pid form
     reaches any helper processes it spawned too. Fall back to the single pid
     if the group is already gone. *)
  (try Unix.kill (-p.pid) signal
   with Unix.Unix_error _ -> ( try Unix.kill p.pid signal with Unix.Unix_error _ -> ()));
  ()

type exit_status = Exited of int | Signaled of int | Running

let reap p =
  match Unix.waitpid [ Unix.WNOHANG ] p.pid with
  | 0, _ -> Running
  | _, Unix.WEXITED c -> Exited c
  | _, Unix.WSIGNALED s -> Signaled s
  | _, Unix.WSTOPPED _ -> Running
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Exited 0

let wait_reap ?(grace = 2.0) p =
  let deadline = Unix.gettimeofday () +. grace in
  let rec go () =
    match reap p with
    | (Exited _ | Signaled _) as st -> st
    | Running ->
        if Unix.gettimeofday () >= deadline then begin
          kill_group p;
          match Unix.waitpid [] p.pid with
          | _, Unix.WEXITED c -> Exited c
          | _, Unix.WSIGNALED s -> Signaled s
          | _, Unix.WSTOPPED _ -> Signaled Sys.sigkill
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Exited 0
        end
        else begin
          Unix.sleepf 0.01;
          go ()
        end
  in
  go ()

let close_pipes p =
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ p.to_child; p.from_child ]
