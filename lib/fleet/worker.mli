(** The worker side of fleet mode: the protocol loop a spawned
    [jaaru fleet-worker] process runs around its shard explorations.

    Three threads: the {e main} thread pops assignments off an inbox and
    executes them one at a time via [run]; a {e reader} thread owns stdin,
    queueing [Assign]s and acting on [Preempt]s immediately (the main thread
    is busy inside [run] exactly when a preempt matters); a {e heartbeat}
    thread proves liveness every [heartbeat_period] seconds no matter what
    the main thread is doing — its first, idle beat (shard [-1]) doubles as
    the ready handshake the coordinator waits for before assigning work.

    Coordinator death — EOF or a broken pipe in either direction — is
    treated as preempt-then-quit, so an orphaned worker stops promptly
    instead of exploring into the void. *)

val serve :
  ?heartbeat_period:float ->
  on_preempt:(unit -> unit) ->
  run:(shard:int -> attempt:int -> path:string -> (string, string) result) ->
  unit ->
  unit
(** Serves until the coordinator closes the pipe. [run] explores one shard
    checkpoint and returns [Ok payload] (the result checkpoint's bytes, sent
    back as [Result]) or [Error reason] (sent as [Refused] — the assignment
    could not start, e.g. a torn shard file). An exception from [run] is
    also reported as [Refused] rather than killing the process; the
    coordinator decides whether to retry. [on_preempt] must be async-ish
    (set a flag — it is called from the reader thread while [run] is in
    flight). *)
