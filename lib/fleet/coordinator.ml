(* The fleet coordinator: splits the choice tree into shard checkpoints,
   fans them out to supervised worker processes, and merges the shard
   reports deterministically. See coordinator.mli for the contract and
   DESIGN.md §13 for the architecture. *)

module Ck = Jaaru.Checkpoint
module Ex = Jaaru.Explorer
module Ch = Jaaru.Choice

type config = {
  workers : int;
  shards_per_worker : int;
  split_execs : int;
  heartbeat_timeout : float;
  steal_after : float;
  quarantine_after : int;
  backoff_base : float;
  backoff_cap : float;
  spawn_attempts : int;
  chaos : Supervise.chaos;
  chaos_seed : int;
  scratch : string;
  worker_argv : string array option;
  log : string -> unit;
}

let default ~scratch =
  {
    workers = 2;
    shards_per_worker = 4;
    split_execs = 32;
    heartbeat_timeout = 2.0;
    steal_after = 1.0;
    quarantine_after = 3;
    backoff_base = 0.05;
    backoff_cap = 2.0;
    spawn_attempts = 3;
    chaos = Supervise.no_chaos;
    chaos_seed = 0;
    scratch;
    worker_argv = None;
    log = ignore;
  }

type fleet_stats = {
  shards : int;
  workers_configured : int;
  workers_effective : int;
  spawns : int;
  spawn_failures : int;
  assignments : int;
  retries : int;
  chaos_injected : int;
  steals : int;
  quarantined : (int * string) list;  (* shard id, last failure — sorted by id *)
  in_process : bool;
}

let pp_fleet ppf f =
  Format.fprintf ppf
    "fleet: shards %d, workers %d/%d%s, spawns %d (%d failed), assignments %d, retries %d (%d chaos-injected), steals %d, quarantined %d"
    f.shards f.workers_effective f.workers_configured
    (if f.in_process then " (in-process fallback)" else "")
    f.spawns f.spawn_failures f.assignments f.retries f.chaos_injected f.steals
    (List.length f.quarantined);
  List.iter
    (fun (sid, reason) ->
      Format.fprintf ppf "@\n  quarantined shard %d: %s" sid reason)
    f.quarantined

type result = {
  outcome : Ex.outcome;
  fleet : fleet_stats;
  remaining : string list;
  interrupted : bool;
}

(* --- shards --------------------------------------------------------------- *)

type shard_status = Pending | Assigned of int | Done | Quarantined of string

type shard = {
  sid : int;
  prefixes : string list;  (* encoded; the shard checkpoint's frontier *)
  path : string;
  mutable status : shard_status;
  mutable attempts : int;
  mutable failures : int;  (* non-chaos-induced failures, toward quarantine *)
  mutable not_before : float;  (* retry backoff gate *)
}

(* Shatter a frontier into at least [target] pieces. Splittable prefixes are
   repeatedly halved via {!Ch.split_prefix}; prefixes with no open choice
   are atomic. The output order is a pure function of the input, so the
   shard partition is deterministic for a given phase-1 frontier. *)
let shatter prefixes target =
  let q = Queue.create () in
  List.iter (fun p -> Queue.push p q) prefixes;
  let atomic = ref [] in
  let total () = Queue.length q + List.length !atomic in
  let rec go () =
    if total () < target && not (Queue.is_empty q) then begin
      let p = Queue.pop q in
      (match Ch.split_prefix p with
      | Some (kept, donated) ->
          Queue.push kept q;
          Queue.push donated q
      | None -> atomic := p :: !atomic);
      go ()
    end
  in
  go ();
  List.of_seq (Queue.to_seq q) @ List.rev !atomic

(* Group decoded prefixes into shard-sized pieces of encoded prefixes: one
   prefix per shard after shattering, or consecutive chunks when the
   frontier is already finer than the target. *)
let partition prefixes target =
  let n = List.length prefixes in
  if n = 0 then []
  else if n >= target then begin
    let per = (n + target - 1) / target in
    let rec chunk acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | p :: rest ->
          if k = per then chunk (List.rev cur :: acc) [ p ] 1 rest
          else chunk acc (p :: cur) (k + 1) rest
    in
    chunk [] [] 0 (List.map Ch.encode_prefix prefixes)
  end
  else List.map (fun p -> [ Ch.encode_prefix p ]) (shatter prefixes target)

(* --- worker slots --------------------------------------------------------- *)

type slot = {
  wid : int;
  mutable proc : Supervise.proc option;
  mutable reader : Transport.reader option;
  mutable ready : bool;
  mutable busy : int option;  (* sid of the assigned shard *)
  mutable busy_since : float;
  mutable preempted : bool;
  mutable last_beat : float;
  mutable deaf : bool;  (* hang chaos: this worker's messages are dropped *)
  mutable kill_at : float option;  (* kill chaos: scheduled SIGKILL *)
  mutable chaos_attempt : bool;  (* current assignment carries an injected fault *)
  mutable spawns : int;
  mutable disabled : bool;
}

(* --- the run -------------------------------------------------------------- *)

let run ~fleet ~config ~scenario =
  let log fmt = Printf.ksprintf fleet.log fmt in
  (* The workload string must be whatever {!Ex.run} fingerprints with, or the
     workers would reject their own shards. *)
  let real_fp = Ck.fingerprint ~workload:scenario.Ex.name config in
  let rng = Random.State.make [| fleet.chaos_seed; 0x6a617275 |] in
  let interrupted = ref false in

  (* counters *)
  let spawns = ref 0
  and spawn_failures = ref 0
  and assignments = ref 0
  and retries = ref 0
  and chaos_injected = ref 0
  and steals = ref 0 in

  (* Phase 1: explore in-process under a small execution cap to grow a
     frontier worth sharding. jobs = 1 keeps it cheap and deterministic;
     the partition it produces does not need to be canonical — any
     partition of the tree merges identically. *)
  let split_path = Filename.concat fleet.scratch "phase1.ckpt" in
  let split_config =
    {
      config with
      Jaaru.Config.jobs = 1;
      max_executions = min config.Jaaru.Config.max_executions fleet.split_execs;
    }
  in
  let outcome0 = Ex.run ~config:split_config ~checkpoint:split_path scenario in
  let cp0 = Ck.load split_path in
  let phase1_only = Ck.completed cp0 || outcome0.Ex.stats.Jaaru.Stats.interrupted in
  if outcome0.Ex.stats.Jaaru.Stats.interrupted then interrupted := true;

  let shard_target = max 1 fleet.workers * max 1 fleet.shards_per_worker in
  let groups = if phase1_only then [] else partition (Ck.frontier_prefixes cp0) shard_target in
  let shards =
    Array.of_list
      (List.mapi
         (fun i prefixes ->
           {
             sid = i;
             prefixes;
             path = Filename.concat fleet.scratch (Printf.sprintf "shard-%d.ckpt" i);
             status = Pending;
             attempts = 0;
             failures = 0;
             not_before = 0.;
           })
         groups)
  in
  let extra_shards = ref [] in
  (* Remainders stolen from preempted workers become fresh shards. *)
  let next_sid = ref (Array.length shards) in
  let shard_list () = Array.to_list shards @ List.rev !extra_shards in
  let results : (int, Ex.outcome) Hashtbl.t = Hashtbl.create 64 in

  let outcome_of_cp (cp : Ck.t) : Ex.outcome =
    {
      Ex.bugs = cp.Ck.bugs;
      stats = cp.Ck.stats;
      multi_rf = cp.Ck.multi_rf;
      perf = cp.Ck.perf;
      findings = cp.Ck.findings;
    }
  in

  let write_shard sh =
    let cp =
      Ck.make ~fingerprint:real_fp ~frontier:sh.prefixes ~bugs:[] ~multi_rf:[] ~perf:[]
        ~findings:[] ~stats:Jaaru.Stats.zero
    in
    Ck.save cp sh.path
  in

  let tear path =
    match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            let len = (Unix.fstat fd).Unix.st_size in
            Unix.ftruncate fd (max 1 (len / 2)))
  in

  let slots =
    Array.init (max 1 fleet.workers) (fun wid ->
        {
          wid;
          proc = None;
          reader = None;
          ready = false;
          busy = None;
          busy_since = 0.;
          preempted = false;
          last_beat = 0.;
          deaf = false;
          kill_at = None;
          chaos_attempt = false;
          spawns = 0;
          disabled = fleet.worker_argv = None;
        })
  in

  let pending_eligible now =
    List.filter (fun s -> s.status = Pending && s.not_before <= now) (shard_list ())
  in
  let unfinished () =
    List.filter (fun s -> match s.status with Done -> false | _ -> true) (shard_list ())
  in
  let finished () =
    List.for_all
      (fun s -> match s.status with Done | Quarantined _ -> true | _ -> false)
      (shard_list ())
  in

  let steal_split prefixes =
    (* A stolen remainder becomes fresh shards so several idle workers can
       share it. *)
    List.iter
      (fun group ->
        let sid = !next_sid in
        incr next_sid;
        extra_shards :=
          {
            sid;
            prefixes = group;
            path = Filename.concat fleet.scratch (Printf.sprintf "shard-%d.ckpt" sid);
            status = Pending;
            attempts = 0;
            failures = 0;
            not_before = 0.;
          }
          :: !extra_shards)
      (partition prefixes (max 2 fleet.workers))
  in

  let requeue ~why ~chaos sh now =
    incr retries;
    if not chaos then sh.failures <- sh.failures + 1;
    if sh.failures >= fleet.quarantine_after then begin
      sh.status <- Quarantined why;
      log "shard %d quarantined after %d failures: %s" sh.sid sh.failures why
    end
    else begin
      let delay =
        Supervise.backoff ~base:fleet.backoff_base ~cap:fleet.backoff_cap ~attempt:sh.attempts
      in
      sh.status <- Pending;
      sh.not_before <- now +. delay;
      log "shard %d requeued (%s%s), retry in %.2fs" sh.sid why
        (if chaos then ", chaos-induced" else "")
        delay
    end
  in

  let release_slot w =
    (match w.reader with Some r -> Transport.close_reader r | None -> ());
    (match w.proc with
    | Some p ->
        (try Unix.close p.Supervise.to_child with Unix.Unix_error _ -> ());
        ignore (Supervise.wait_reap ~grace:0. p)
    | None -> ());
    w.proc <- None;
    w.reader <- None;
    w.ready <- false;
    w.preempted <- false;
    w.deaf <- false;
    w.kill_at <- None;
    w.chaos_attempt <- false
  in

  (* A worker died (or was declared dead): requeue its shard, if any, and
     free the slot for a respawn. *)
  let worker_down ~why w now =
    (match w.busy with
    | Some sid -> (
        match List.find_opt (fun s -> s.sid = sid) (shard_list ()) with
        | Some sh when sh.status <> Done -> requeue ~why ~chaos:w.chaos_attempt sh now
        | _ -> ())
    | None -> ());
    w.busy <- None;
    release_slot w
  in

  let maybe_spawn now =
    match fleet.worker_argv with
    | None -> ()
    | Some argv ->
        Array.iter
          (fun w ->
            if w.proc = None && not w.disabled && unfinished () <> [] then begin
              if w.spawns >= fleet.spawn_attempts then begin
                w.disabled <- true;
                log "worker %d disabled after %d failed spawns" w.wid w.spawns
              end
              else begin
                w.spawns <- w.spawns + 1;
                incr spawns;
                match Supervise.spawn ~argv with
                | p ->
                    w.proc <- Some p;
                    w.reader <- Some (Transport.reader p.Supervise.from_child);
                    w.ready <- false;
                    w.last_beat <- now
                | exception Supervise.Spawn_failed msg ->
                    incr spawn_failures;
                    log "worker %d spawn failed: %s" w.wid msg
              end
            end)
          slots
  in

  let handle_result w sid payload now =
    match Ck.of_string payload with
    | exception Ck.Rejected msg ->
        log "worker %d returned a corrupt result for shard %d: %s" w.wid sid msg;
        (match List.find_opt (fun s -> s.sid = sid) (shard_list ()) with
        | Some sh when sh.status <> Done -> requeue ~why:"corrupt result" ~chaos:w.chaos_attempt sh now
        | _ -> ());
        w.busy <- None;
        w.preempted <- false
    | cp ->
        if cp.Ck.fingerprint <> real_fp then begin
          log "worker %d returned a foreign result for shard %d" w.wid sid;
          match List.find_opt (fun s -> s.sid = sid) (shard_list ()) with
          | Some sh when sh.status <> Done ->
              requeue ~why:"fingerprint mismatch in result" ~chaos:w.chaos_attempt sh now
          | _ -> ()
        end
        else begin
          (match List.find_opt (fun s -> s.sid = sid) (shard_list ()) with
          | Some sh when sh.status <> Done ->
              sh.status <- Done;
              Hashtbl.replace results sid (outcome_of_cp cp);
              if cp.Ck.frontier <> [] then begin
                (* A preempted worker returned the explored part plus the
                   remainder; the remainder becomes new shards. *)
                incr steals;
                log "shard %d returned %d remainder prefixes (steal)" sid
                  (List.length cp.Ck.frontier);
                steal_split (Ck.frontier_prefixes cp)
              end
          | _ -> ());
          w.busy <- None;
          w.preempted <- false
        end
  in

  let handle_refused w sid reason now =
    log "worker %d refused shard %d: %s" w.wid sid reason;
    (match List.find_opt (fun s -> s.sid = sid) (shard_list ()) with
    | Some sh when sh.status <> Done ->
        (* The shard file may be torn (possibly by our own chaos): it is
           rewritten intact on the next assignment either way. *)
        requeue ~why:("refused: " ^ reason) ~chaos:w.chaos_attempt sh now
    | _ -> ());
    w.busy <- None;
    w.preempted <- false
  in

  let drain_worker w now =
    match w.reader with
    | None -> ()
    | Some r ->
        let msgs = Transport.drain r in
        if not w.deaf then
          List.iter
            (fun msg ->
              match msg with
              | Transport.Heartbeat _ ->
                  w.last_beat <- now;
                  if not w.ready then begin
                    w.ready <- true;
                    (* The handshake proves spawning works: the attempt
                       budget guards consecutive spawn failures only, not a
                       long chaos-heavy run's many legitimate respawns. *)
                    w.spawns <- 0
                  end
              | Transport.Result { shard; payload } -> handle_result w shard payload now
              | Transport.Refused { shard; reason } -> handle_refused w shard reason now
              | Transport.Assign _ | Transport.Preempt -> ())
            msgs
  in

  let assign w sh now =
    match w.proc with
    | None -> ()
    | Some p ->
        sh.attempts <- sh.attempts + 1;
        incr assignments;
        let plan = Supervise.plan rng fleet.chaos in
        if Supervise.injects plan then incr chaos_injected;
        w.chaos_attempt <- Supervise.injects plan;
        write_shard sh;
        if plan.Supervise.torn then begin
          tear sh.path;
          log "chaos: tore shard %d's checkpoint" sh.sid
        end;
        (match plan.Supervise.kill_after with
        | Some d ->
            w.kill_at <- Some (now +. d);
            log "chaos: will kill worker %d in %.2fs" w.wid d
        | None -> ());
        if plan.Supervise.hang then begin
          w.deaf <- true;
          log "chaos: stalling worker %d's channel (hang)" w.wid
        end;
        match
          Transport.write p.Supervise.to_child
            (Transport.Assign { shard = sh.sid; attempt = sh.attempts; path = sh.path })
        with
        | () ->
            sh.status <- Assigned w.wid;
            w.busy <- Some sh.sid;
            w.busy_since <- now
        | exception Transport.Closed _ ->
            Supervise.kill_group p;
            worker_down ~why:"assign failed (pipe closed)" w now
  in

  let preempt w =
    match w.proc with
    | None -> ()
    | Some p -> (
        match Transport.write p.Supervise.to_child Transport.Preempt with
        | () -> w.preempted <- true
        | exception Transport.Closed _ -> ())
  in

  (* In-process fallback: no worker processes are available (none were
     requested, or every spawn attempt failed), so explore the shards on
     this process — slower, but the run still completes. *)
  let explore_in_process sh now =
    sh.attempts <- sh.attempts + 1;
    incr assignments;
    write_shard sh;
    let out = sh.path ^ ".out" in
    match
      let cp = Ck.load sh.path in
      Ex.run ~config ~resume:cp ~checkpoint:out scenario
    with
    | o ->
        let rcp = Ck.load out in
        sh.status <- Done;
        Hashtbl.replace results sh.sid o;
        if o.Ex.stats.Jaaru.Stats.interrupted then interrupted := true;
        (* Any remainder — a cap, or the interrupt — must survive as new
           (pending) shards so it reaches the aggregate checkpoint. *)
        if rcp.Ck.frontier <> [] then steal_split (Ck.frontier_prefixes rcp)
    | exception Ck.Rejected msg -> requeue ~why:("rejected: " ^ msg) ~chaos:false sh now
    | exception exn -> requeue ~why:(Printexc.to_string exn) ~chaos:false sh now
  in

  let all_disabled () = Array.for_all (fun w -> w.disabled) slots in

  let wind_down () =
    (* Collect what the fleet can still deliver: preempt every busy worker,
       give them a grace period to return partial results, then kill the
       stragglers. A second interrupt skips the grace. *)
    Array.iter (fun w -> if w.busy <> None then preempt w) slots;
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec collect () =
      let now = Unix.gettimeofday () in
      let busy = Array.exists (fun w -> w.busy <> None && w.proc <> None) slots in
      if busy && now < deadline && Ex.interrupts_requested () <= 1 then begin
        let fds =
          Array.to_list slots
          |> List.filter_map (fun w ->
                 match w.reader with
                 | Some r when not (Transport.at_eof r) -> Some (Transport.reader_fd r)
                 | _ -> None)
        in
        (try ignore (Unix.select fds [] [] 0.02)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        Array.iter (fun w -> drain_worker w now) slots;
        Array.iter
          (fun w ->
            match (w.proc, w.reader) with
            | Some p, Some r when Transport.at_eof r ->
                ignore (Supervise.reap p);
                worker_down ~why:"worker exited during wind-down" w now
            | _ -> ())
          slots;
        collect ()
      end
    in
    collect ();
    Array.iter
      (fun w ->
        (match w.proc with
        | Some p ->
            Supervise.kill_group p;
            ignore (Supervise.wait_reap ~grace:0.5 p)
        | None -> ());
        (match w.busy with
        | Some sid -> (
            match List.find_opt (fun s -> s.sid = sid) (shard_list ()) with
            | Some sh when sh.status <> Done -> sh.status <- Pending
            | _ -> ())
        | None -> ());
        w.busy <- None;
        release_slot w)
      slots
  in

  let rec loop () =
    if finished () then ()
    else if Ex.interrupts_requested () > 0 then begin
      interrupted := true;
      wind_down ()
    end
    else begin
      let now = Unix.gettimeofday () in
      if fleet.worker_argv = None || all_disabled () then begin
        match pending_eligible now with
        | sh :: _ -> explore_in_process sh now; loop ()
        | [] ->
            if not (finished ()) then begin
              (* Only backoff gates remain; wait the shortest one out. *)
              let soonest =
                List.fold_left
                  (fun acc s -> if s.status = Pending then Float.min acc s.not_before else acc)
                  infinity (shard_list ())
              in
              if soonest < infinity then Unix.sleepf (Float.max 0.005 (soonest -. now));
              loop ()
            end
      end
      else begin
        maybe_spawn now;
        (* chaos kills that came due *)
        Array.iter
          (fun w ->
            match (w.kill_at, w.proc) with
            | Some t, Some p when now >= t ->
                w.kill_at <- None;
                log "chaos: SIGKILL worker %d" w.wid;
                Supervise.kill_group p
            | _ -> ())
          slots;
        let fds =
          Array.to_list slots
          |> List.filter_map (fun w ->
                 match w.reader with
                 | Some r when not (Transport.at_eof r) -> Some (Transport.reader_fd r)
                 | _ -> None)
        in
        (if fds = [] then Unix.sleepf 0.02
         else
           try ignore (Unix.select fds [] [] 0.02)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        let now = Unix.gettimeofday () in
        Array.iter (fun w -> drain_worker w now) slots;
        (* dead workers: EOF on the pipe, or a reaped exit *)
        Array.iter
          (fun w ->
            match w.proc with
            | None -> ()
            | Some p -> (
                let eof = match w.reader with Some r -> Transport.at_eof r | None -> true in
                if eof then begin
                  let why =
                    match Supervise.wait_reap ~grace:0.5 p with
                    | Supervise.Exited 0 -> "worker exited"
                    | Supervise.Exited c -> Printf.sprintf "worker exited with code %d" c
                    | Supervise.Signaled s -> Printf.sprintf "worker killed by signal %d" s
                    | Supervise.Running -> "worker pipe closed"
                  in
                  worker_down ~why w now
                end
                else
                  match Supervise.reap p with
                  | Supervise.Running -> ()
                  | Supervise.Exited c ->
                      worker_down ~why:(Printf.sprintf "worker exited with code %d" c) w now
                  | Supervise.Signaled s ->
                      worker_down ~why:(Printf.sprintf "worker killed by signal %d" s) w now))
          slots;
        (* heartbeat timeouts (the hang-chaos path arrives here: a deaf
           worker's beats are dropped, so its slot times out and the shard
           requeues exactly as for a real hang) *)
        Array.iter
          (fun w ->
            match w.proc with
            | Some p when now -. w.last_beat > fleet.heartbeat_timeout ->
                log "worker %d heartbeat timeout (%.1fs), killing" w.wid
                  (now -. w.last_beat);
                Supervise.kill_group p;
                ignore (Supervise.wait_reap ~grace:0.5 p);
                worker_down ~why:"heartbeat timeout" w now
            | _ -> ())
          slots;
        (* assignment: lowest shard id to lowest ready idle worker *)
        let rec assign_loop () =
          let idle =
            Array.to_list slots
            |> List.find_opt (fun w -> w.proc <> None && w.ready && w.busy = None)
          in
          match (idle, pending_eligible now) with
          | Some w, sh :: _ ->
              assign w sh now;
              assign_loop ()
          | _ -> ()
        in
        assign_loop ();
        (* work stealing: idle capacity, nothing assignable, and a worker
           stuck in one shard for a while — preempt one per tick; the
           remainder it returns is shattered into fresh shards *)
        (let idle_capacity =
           Array.exists (fun w -> w.proc <> None && w.ready && w.busy = None) slots
         and any_pending = List.exists (fun s -> s.status = Pending) (shard_list ()) in
         if idle_capacity && not any_pending then
           match
             Array.to_list slots
             |> List.filter (fun w ->
                    w.busy <> None && not w.preempted && not w.deaf
                    && now -. w.busy_since >= fleet.steal_after)
             |> List.sort (fun a b -> Float.compare a.busy_since b.busy_since)
           with
           | w :: _ -> preempt w
           | [] -> ());
        loop ()
      end
    end
  in

  if not phase1_only then begin
    if fleet.worker_argv <> None then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    log "fleet: %d shards across %d workers" (Array.length shards) fleet.workers;
    loop ();
    (* shut the workers down cleanly: closing their stdin makes them quit *)
    Array.iter release_slot slots
  end;

  let shard_outcomes =
    shard_list ()
    |> List.filter_map (fun s -> Hashtbl.find_opt results s.sid)
  in
  let quarantined =
    shard_list ()
    |> List.filter_map (fun s ->
           match s.status with Quarantined why -> Some (s.sid, why) | _ -> None)
    |> List.sort compare
  in
  let remaining =
    if phase1_only then cp0.Ck.frontier
    else unfinished () |> List.concat_map (fun s -> s.prefixes)
  in
  let completed = remaining = [] && not !interrupted in
  let outcome =
    Ex.merge_outcomes ~config ~completed ~interrupted:!interrupted (outcome0 :: shard_outcomes)
  in
  let effective =
    if fleet.worker_argv = None then 0
    else List.length (List.filter (fun w -> not w.disabled) (Array.to_list slots))
  in
  {
    outcome;
    fleet =
      {
        shards = !next_sid;
        workers_configured = fleet.workers;
        workers_effective = effective;
        spawns = !spawns;
        spawn_failures = !spawn_failures;
        assignments = !assignments;
        retries = !retries;
        chaos_injected = !chaos_injected;
        steals = !steals;
        quarantined;
        in_process = fleet.worker_argv = None || all_disabled ();
      };
    remaining;
    interrupted = !interrupted;
  }
