(* Length-prefixed Wire frames over pipe file descriptors — the coordinator
   / worker protocol. See transport.mli for the framing rationale. *)

module Wire = Pmem.Wire

exception Closed of string

type msg =
  | Heartbeat of { shard : int; beats : int }
  | Assign of { shard : int; attempt : int; path : string }
  | Preempt
  | Result of { shard : int; payload : string }
  | Refused of { shard : int; reason : string }

(* A frame a worker could construct by accident must never be mistaken for a
   huge allocation request: a shard-result payload is a checkpoint (KBs to a
   few MBs); anything beyond this is a corrupt stream. *)
let max_frame = 256 * 1024 * 1024

let encode_msg b = function
  | Heartbeat { shard; beats } ->
      Wire.int b 0;
      Wire.int b shard;
      Wire.int b beats
  | Assign { shard; attempt; path } ->
      Wire.int b 1;
      Wire.int b shard;
      Wire.int b attempt;
      Wire.string b path
  | Preempt -> Wire.int b 2
  | Result { shard; payload } ->
      Wire.int b 3;
      Wire.int b shard;
      Wire.string b payload
  | Refused { shard; reason } ->
      Wire.int b 4;
      Wire.int b shard;
      Wire.string b reason

let decode_msg payload =
  let s = Wire.src payload in
  let msg =
    match Wire.rd_int s with
    | 0 ->
        let shard = Wire.rd_int s in
        let beats = Wire.rd_int s in
        Heartbeat { shard; beats }
    | 1 ->
        let shard = Wire.rd_int s in
        let attempt = Wire.rd_int s in
        let path = Wire.rd_string s in
        Assign { shard; attempt; path }
    | 2 -> Preempt
    | 3 ->
        let shard = Wire.rd_int s in
        let payload = Wire.rd_string s in
        Result { shard; payload }
    | 4 ->
        let shard = Wire.rd_int s in
        let reason = Wire.rd_string s in
        Refused { shard; reason }
    | n -> raise (Wire.Corrupt (Printf.sprintf "unknown message tag %d" n))
  in
  Wire.expect_end s;
  msg

(* Frame: 4-byte big-endian payload length, 4-byte big-endian CRC-32 of the
   payload, payload bytes. The CRC is defense in depth — a worker SIGKILLed
   mid-write leaves a short read (caught by length), but a corrupted stream
   must never decode into a plausible wrong message. *)

let be32 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 3) (Char.chr (v land 0xff))

let rd_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame msg =
  let b = Wire.sink ~initial:256 () in
  encode_msg b msg;
  let payload = Wire.contents b in
  let n = String.length payload in
  let out = Bytes.create (8 + n) in
  be32 out 0 n;
  be32 out 4 (Pmem.Crc32.digest_string payload);
  Bytes.blit_string payload 0 out 8 n;
  out

let write fd msg =
  let buf = frame msg in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write fd buf off (len - off) with
        | Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) ->
            raise (Closed "peer closed the pipe")
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n)
    end
  in
  go 0

(* --- blocking reads (worker side) ---------------------------------------- *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then
      match Unix.read fd buf off len with
      | 0 -> raise (Closed "eof mid-frame")
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EBADF | Unix.ECONNRESET), _, _) ->
          raise (Closed "peer closed the pipe")
  in
  go off len

let parse_frame header body =
  let expected = rd_be32 header 4 in
  if Pmem.Crc32.digest_string body <> expected then raise (Closed "frame fails its checksum");
  match decode_msg body with
  | m -> m
  | exception Wire.Corrupt msg -> raise (Closed (Printf.sprintf "corrupt frame: %s" msg))

let read fd =
  let header = Bytes.create 8 in
  (* EOF cleanly between frames is a normal shutdown; EOF mid-frame is a torn
     write from a dying peer — both surface as [Closed], callers do not
     recover a protocol stream. *)
  let n = try Unix.read fd header 0 1 with Unix.Unix_error (Unix.EINTR, _, _) -> -1 in
  if n = 0 then raise (Closed "eof")
  else begin
    if n > 0 then really_read fd header n (8 - n) else really_read fd header 0 8;
    let header = Bytes.unsafe_to_string header in
    let len = rd_be32 header 0 in
    if len < 0 || len > max_frame then raise (Closed "oversized frame");
    let body = Bytes.create len in
    really_read fd body 0 len;
    parse_frame header (Bytes.unsafe_to_string body)
  end

(* --- non-blocking buffered reader (coordinator side) ---------------------- *)

type reader = {
  fd : Unix.file_descr;
  mutable pending : string;  (* unparsed bytes, frame-aligned at offset 0 *)
  mutable eof : bool;
}

let reader fd =
  Unix.set_nonblock fd;
  { fd; pending = ""; eof = false }

let reader_fd r = r.fd
let at_eof r = r.eof

let close_reader r =
  r.eof <- true;
  try Unix.close r.fd with Unix.Unix_error _ -> ()

let drain r =
  let chunk = Bytes.create 65536 in
  let rec pull acc =
    match Unix.read r.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        r.eof <- true;
        acc
    | n -> pull (acc ^ Bytes.sub_string chunk 0 n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> acc
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> pull acc
    | exception Unix.Unix_error ((Unix.EBADF | Unix.ECONNRESET), _, _) ->
        r.eof <- true;
        acc
  in
  r.pending <- pull r.pending;
  let msgs = ref [] in
  let rec parse () =
    let s = r.pending in
    if String.length s >= 8 then begin
      let len = rd_be32 s 0 in
      if len < 0 || len > max_frame then begin
        (* Poisoned stream: drop everything, report EOF — the supervisor
           treats it as a dead worker and requeues the shard. *)
        r.eof <- true;
        r.pending <- ""
      end
      else if String.length s >= 8 + len then begin
        let body = String.sub s 8 len in
        r.pending <- String.sub s (8 + len) (String.length s - 8 - len);
        (match parse_frame s body with
        | m -> msgs := m :: !msgs
        | exception Closed _ ->
            r.eof <- true;
            r.pending <- "");
        parse ()
      end
    end
  in
  parse ();
  (* A stream that ended mid-frame: the partial bytes can never complete. *)
  if r.eof && r.pending <> "" then r.pending <- "";
  List.rev !msgs
