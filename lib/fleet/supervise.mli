(** Worker process lifecycle: spawning supervised workers in their own
    process groups, killing and reaping them, retry backoff, and the
    self-inflicted fault plans behind [--fleet-chaos]. *)

(** {1 Chaos — self fault injection}

    The fleet's failure handling is exercised in CI by injecting the faults
    it claims to survive: [kill] SIGKILLs a worker's process group mid-shard,
    [hang] makes a worker stop heartbeating (exercising the heartbeat
    timeout), [torn] truncates a shard checkpoint file before the worker
    reads it (exercising the {!Transport.msg.Refused} path). Each field is
    the per-assignment probability of that fault. *)

type chaos = { kill : float; hang : float; torn : float }

val no_chaos : chaos

val parse_chaos : string -> chaos
(** Parses ["kill:0.3,hang:0.1,torn:0.2"] — any subset of modes, in any
    order; the empty string is {!no_chaos}. Raises [Invalid_argument] on an
    unknown mode or a probability outside [0,1]. *)

val pp_chaos : Format.formatter -> chaos -> unit

type plan = { kill_after : float option; hang : bool; torn : bool }
(** The faults planned for one shard assignment: coordinator-side SIGKILL
    after [kill_after] seconds, a worker told (via argv) to stall its
    heartbeats, a shard checkpoint truncated after writing. *)

val no_faults : plan

val injects : plan -> bool
(** Whether the plan injects any fault — such an attempt's failure is
    expected and must not count toward poison-shard quarantine. *)

val plan : Random.State.t -> chaos -> plan
(** Draws one assignment's plan. Always consumes the same number of PRNG
    draws regardless of the probabilities, so the fault schedule is a pure
    function of the chaos seed and the assignment sequence number. *)

(** {1 Retry backoff} *)

val backoff : base:float -> cap:float -> attempt:int -> float
(** Capped exponential delay before retrying a failed shard:
    [min cap (base * 2^(attempt-1))] with [attempt = 1] the first retry. *)

(** {1 Process control} *)

type proc = {
  pid : int;
  to_child : Unix.file_descr;  (** coordinator writes [Assign]/[Preempt] here *)
  from_child : Unix.file_descr;  (** worker's [Heartbeat]/[Result] frames *)
}

exception Spawn_failed of string

val spawn : argv:string array -> proc
(** Forks and execs [argv.(0)] with the child's stdin/stdout replaced by
    fresh pipes and the child in its own session (hence its own process
    group — one negative-pid signal reaches it and any grandchildren, and a
    terminal SIGINT to the coordinator does not). Raises {!Spawn_failed}
    when the executable is missing or the fork fails — the coordinator
    degrades to fewer workers rather than aborting. *)

val kill_group : ?signal:int -> proc -> unit
(** Signals the worker's whole process group (default SIGKILL); falls back
    to the single pid if the group is already gone. Never raises. *)

type exit_status = Exited of int | Signaled of int | Running

val reap : proc -> exit_status
(** Non-blocking [waitpid]; a worker already reaped (or stolen by another
    wait) reports [Exited 0]. *)

val wait_reap : ?grace:float -> proc -> exit_status
(** Polls {!reap} for up to [grace] seconds (default 2), then SIGKILLs the
    group and waits for real. The worker is guaranteed gone on return. *)

val close_pipes : proc -> unit
(** Closes both pipe ends (idempotent, never raises). *)
