(** The fleet coordinator: exhaustive exploration fanned out over supervised
    worker processes, merged back deterministically.

    The run has two phases. {e Split}: a short in-process exploration under
    [split_execs] grows a frontier, which is shattered
    ({!Jaaru.Choice.split_prefix}) into roughly [workers * shards_per_worker]
    shard checkpoints — each a {!Jaaru.Checkpoint} with the real run's
    fingerprint, one slice of the frontier, empty reports and zero
    statistics (so merging never double-counts). {e Fan-out}: shards are
    assigned to spawned worker processes over the {!Transport} protocol;
    each worker resumes its shard and returns the result checkpoint.

    {b Determinism.} Partial work is merged {e only} when a [Result] frame
    arrives; a worker that crashes, hangs or is killed mid-shard contributes
    nothing and its whole shard is requeued, so every leaf of the choice
    tree is attributed exactly once no matter how many attempts failed.
    Combined with {!Jaaru.Explorer.merge_outcomes} being partition-
    independent, an exhaustive fleet run's report is byte-identical to the
    single-process [jaaru check] report — for every worker count, with
    chaos on or off. (Runs cut short by [max_executions] carry the same
    caveat as [jobs > 1]: each shard is capped independently.)

    {b Robustness.} Heartbeat timeouts detect hangs; nonzero exits, signals
    and EOFs detect crashes; failed shards are requeued with capped
    exponential backoff; a shard that keeps killing workers {e without} an
    injected fault is quarantined after [quarantine_after] failures and
    reported rather than retried forever; when every spawn attempt fails the
    coordinator degrades to exploring the shards in-process. Work stealing:
    when workers sit idle with nothing assignable, the longest-running busy
    worker is preempted and the remainder it returns is shattered into new
    shards.

    {b Chaos.} With a non-trivial [chaos] spec the coordinator injects the
    faults itself: scheduled SIGKILLs of worker process groups, stalled
    worker channels (exercising the heartbeat timeout), and torn shard
    checkpoint files (exercising the [Refused] path). Chaos-induced failures
    are counted as retries but never toward quarantine. *)

type config = {
  workers : int;  (** worker processes to supervise *)
  shards_per_worker : int;  (** shatter granularity target *)
  split_execs : int;  (** phase-1 execution cap *)
  heartbeat_timeout : float;  (** seconds without a beat before a kill *)
  steal_after : float;  (** busy seconds before a preempt can steal *)
  quarantine_after : int;  (** non-chaos failures before quarantine *)
  backoff_base : float;
  backoff_cap : float;
  spawn_attempts : int;  (** consecutive spawn failures before a slot is disabled *)
  chaos : Supervise.chaos;
  chaos_seed : int;
  scratch : string;  (** existing directory for shard checkpoints *)
  worker_argv : string array option;
      (** argv of a worker process ([jaaru fleet-worker CASE flags…]);
          [None] explores every shard in-process (testing, degraded mode) *)
  log : string -> unit;  (** progress/supervision event lines *)
}

val default : scratch:string -> config

type fleet_stats = {
  shards : int;
  workers_configured : int;
  workers_effective : int;  (** after spawn-failure degradation *)
  spawns : int;
  spawn_failures : int;
  assignments : int;
  retries : int;
  chaos_injected : int;
  steals : int;
  quarantined : (int * string) list;  (** shard id and last failure, sorted *)
  in_process : bool;
}

val pp_fleet : Format.formatter -> fleet_stats -> unit

type result = {
  outcome : Jaaru.Explorer.outcome;  (** merged, {!Jaaru.Explorer.pp_report}-ready *)
  fleet : fleet_stats;
  remaining : string list;
      (** encoded prefixes of unexplored shards (quarantined, or unfinished
          at an interrupt) — the frontier of an aggregate resume checkpoint *)
  interrupted : bool;
}

val run :
  fleet:config -> config:Jaaru.Config.t -> scenario:Jaaru.Explorer.scenario -> result
(** Runs the fleet to completion, quarantine-exhaustion, or interrupt
    ({!Jaaru.Explorer.request_interrupt} — the first request preempts all
    workers and collects partial results for up to a grace period; a second
    kills them immediately). *)
