(* The paper's headline experiment as a program: hunt all eighteen RECIPE
   bugs (Fig. 13) and print the table the paper reports.

     dune exec examples/recipe_hunt.exe *)

open Jaaru

let () =
  Format.printf "%-14s %-12s %-52s %s@." "Bug ID" "Benchmark" "Type of bug" "Manifestation";
  let found = ref 0 in
  List.iter
    (fun (c : Recipe.Workloads.case) ->
      let o = Explorer.run ~config:c.config c.scenario in
      let symptom =
        match o.Explorer.bugs with
        | [] -> "NOT FOUND"
        | b :: _ ->
            incr found;
            Bug.symptom b
      in
      Format.printf "%-14s %-12s %-52s %s@." c.id c.benchmark c.description symptom)
    (Recipe.Workloads.fig13_cases ());
  Format.printf "@.%d / 18 seeded bugs found@." !found
