(* Quickstart: the paper's Fig. 4 example, checked end to end.

     dune exec examples/quickstart.exe

   addChild writes a child node, flushes it, then publishes it with a commit
   store; readChild checks the commit store before dereferencing. Jaaru
   injects a power failure before every flush (and at the end), replays the
   recovery against every persistent state the Px86sim semantics allows, and
   reports what it explored. The second half removes the commit-store check
   and shows Jaaru producing a concrete crashing execution. *)

open Jaaru

let child_ptr = 0x1000 (* ptr->child field *)
let data_addr = 0x1080 (* tmp->data field of the freshly allocated child *)

let add_child ctx =
  Ctx.store64 ctx ~label:"addChild: tmp->data = data" data_addr 42;
  Ctx.clflush ctx ~label:"addChild: clflush(tmp)" data_addr 8;
  Ctx.store64 ctx ~label:"addChild: ptr->child = tmp (commit)" child_ptr data_addr;
  Ctx.clflush ctx ~label:"addChild: clflush(&ptr->child)" child_ptr 8

let read_child_safe ctx =
  let child = Ctx.load64 ctx ~label:"readChild: ptr->child" child_ptr in
  if child <> 0 then begin
    let data = Ctx.load64 ctx ~label:"readChild: child->data" child in
    Ctx.check ctx (data = 42) "persisted child must carry its data"
  end

let read_child_blind ctx =
  (* No commit-store check: whatever the pointer field holds is dereferenced. *)
  let child = Ctx.load64 ctx ~label:"readChild: ptr->child" child_ptr in
  ignore (Ctx.load64 ctx ~label:"readChild: child->data (blind)" child)

let () =
  Format.printf "== Fig. 4, correct commit-store recovery ==@.";
  let o = Explorer.run (Explorer.scenario ~name:"fig4" ~pre:add_child ~post:read_child_safe) in
  Format.printf "%a@.@." Explorer.pp_outcome o;

  Format.printf "== the same program without the null check ==@.";
  let o = Explorer.run (Explorer.scenario ~name:"fig4-blind" ~pre:add_child ~post:read_child_blind) in
  Format.printf "%a@.@." Explorer.pp_outcome o;
  List.iter (fun b -> Format.printf "%a@.@." Bug.pp b) o.Explorer.bugs;

  Format.printf "== what an eager checker would have enumerated ==@.";
  let yat = Yat.State_count.analyze add_child in
  Format.printf "%a@." Yat.State_count.pp yat
