(* TSO litmus tests on the simulated Px86sim storage system.

     dune exec examples/litmus.exe

   Demonstrates the store-buffer machinery the checker simulates (paper
   section 2 and Table 1): the classic SB litmus test shows both threads
   reading stale values while their stores sit in the store buffers; adding
   mfence forbids it. The final test shows the persistency side: a
   clflushopt without an sfence leaves the flush buffered, so the flushed
   line is not guaranteed persistent at a crash. *)

open Jaaru

let x = 0x1000
let y = 0x1040

let buffered = { Config.default with Config.evict_policy = Config.Buffered }

let sb_litmus ~fenced ctx =
  let r0 = ref (-1) and r1 = ref (-1) in
  Ctx.parallel ctx
    [
      (fun ctx ->
        Ctx.store64 ctx ~label:"t0: x=1" x 1;
        if fenced then Ctx.mfence ctx ~label:"t0: mfence" ();
        r0 := Ctx.load64 ctx ~label:"t0: r0=y" y);
      (fun ctx ->
        Ctx.store64 ctx ~label:"t1: y=1" y 1;
        if fenced then Ctx.mfence ctx ~label:"t1: mfence" ();
        r1 := Ctx.load64 ctx ~label:"t1: r1=x" x);
    ];
  (!r0, !r1)

let run_litmus ~fenced =
  let result = ref (0, 0) in
  let pre ctx = result := sb_litmus ~fenced ctx in
  let config = { buffered with Config.max_failures = 0 } in
  ignore (Explorer.run ~config (Explorer.scenario ~name:"sb" ~pre ~post:(fun _ -> ())));
  !result

let persistency_litmus () =
  (* x=1; clflushopt x; [sfence]; y=1 — if recovery observes y=1, the crash
     happened after the clflushopt executed. With the sfence the flushopt
     has certainly drained by then, so x must be 1: the pair (x=0, y=1) is
     possible only without the fence (the flushopt was still sitting in the
     flush buffer when power was lost). *)
  let observations ~fenced =
    let pre ctx =
      Ctx.store64 ctx ~label:"x=1" x 1;
      Ctx.clflushopt ctx ~label:"flushopt x" x 8;
      if fenced then Ctx.sfence ctx ~label:"sfence" ();
      Ctx.store64 ctx ~label:"y=1" y 1;
      Ctx.clflush ctx ~label:"flush y" y 8
    in
    let post ctx =
      Printf.sprintf "x=%d y=%d"
        (Ctx.load64 ctx ~label:"rx" x)
        (Ctx.load64 ctx ~label:"ry" y)
    in
    Yat.Eager.jaaru_behaviors ~pre ~post ()
  in
  (observations ~fenced:false, observations ~fenced:true)

let () =
  Format.printf "== SB litmus (store buffering visible) ==@.";
  let r0, r1 = run_litmus ~fenced:false in
  Format.printf "without fences: r0=%d r1=%d (both stale: TSO store buffering)@.@." r0 r1;
  let r0, r1 = run_litmus ~fenced:true in
  Format.printf "with mfence:    r0=%d r1=%d (at least one thread sees the other's store)@.@." r0 r1;

  Format.printf "== persistency litmus (clflushopt needs sfence) ==@.";
  let unfenced, fenced = persistency_litmus () in
  Format.printf "crash after clflushopt, no sfence: recovery may observe { %s }@."
    (String.concat "; " unfenced);
  Format.printf "crash after clflushopt + sfence:   recovery may observe { %s }@."
    (String.concat "; " fenced)
