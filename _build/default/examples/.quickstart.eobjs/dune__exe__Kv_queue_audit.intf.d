examples/kv_queue_audit.mli:
