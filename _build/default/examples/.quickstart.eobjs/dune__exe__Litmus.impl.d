examples/litmus.ml: Config Ctx Explorer Format Jaaru Printf String Yat
