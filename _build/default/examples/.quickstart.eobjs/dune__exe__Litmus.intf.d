examples/litmus.mli:
