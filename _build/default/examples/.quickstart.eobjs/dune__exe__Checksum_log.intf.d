examples/checksum_log.mli:
