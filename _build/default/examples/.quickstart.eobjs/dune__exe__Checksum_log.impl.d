examples/checksum_log.ml: Bug Config Explorer Format Jaaru List Pmdk
