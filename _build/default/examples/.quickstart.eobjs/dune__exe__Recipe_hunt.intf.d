examples/recipe_hunt.mli:
