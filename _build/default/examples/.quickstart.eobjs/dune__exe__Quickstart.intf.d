examples/quickstart.mli:
