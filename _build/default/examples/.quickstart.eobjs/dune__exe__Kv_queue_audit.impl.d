examples/kv_queue_audit.ml: Bug Config Ctx Explorer Format Jaaru List Printf String
