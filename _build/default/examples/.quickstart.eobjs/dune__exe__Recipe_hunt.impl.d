examples/recipe_hunt.ml: Bug Explorer Format Jaaru List Recipe
