examples/fuzz_race.ml: Config Ctx Explorer Format Fuzz Jaaru List
