examples/quickstart.ml: Bug Ctx Explorer Format Jaaru List Yat
