examples/fuzz_race.mli:
