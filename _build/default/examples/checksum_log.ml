(* Checksum-based recovery (paper section 4): a write-ahead log that never
   flushes — record acceptance is guarded only by a CRC.

     dune exec examples/checksum_log.exe

   Because nothing is ever explicitly flushed, recovery loads can observe
   many unflushed stores; Jaaru explores every consistent cache-line cut and
   the CRC must reject every torn record. Skipping the CRC check turns
   half-persisted records into accepted garbage, which Jaaru demonstrates
   with a concrete execution. *)

open Jaaru

let payloads = [ 260; 517; 774; 1031 ]

let scenario bugs =
  let pre ctx =
    let log = Pmdk.Clog.create_or_open ~bugs ctx in
    List.iter (Pmdk.Clog.append log) payloads
  in
  let post ctx =
    let log = Pmdk.Clog.create_or_open ~bugs ctx in
    Pmdk.Clog.check log ~expected:payloads
  in
  Explorer.scenario ~name:"clog" ~pre ~post

let () =
  Format.printf "== CRC-validated recovery: every torn prefix is rejected ==@.";
  let o = Explorer.run (scenario Pmdk.Clog.no_bugs) in
  Format.printf "%a@.@." Explorer.pp_outcome o;

  Format.printf "== recovery that trusts record headers without the CRC ==@.";
  let config = { Config.default with Config.stop_at_first_bug = true } in
  let o = Explorer.run ~config (scenario { Pmdk.Clog.skip_crc = true }) in
  Format.printf "%a@." Explorer.pp_outcome o;
  List.iter (fun b -> Format.printf "@.%a@." Bug.pp b) o.Explorer.bugs
