(* Auditing your own persistent data structure before release — the paper's
   primary usage scenario (check small, widely-used library code
   exhaustively).

     dune exec examples/kv_queue_audit.exe

   The structure under audit is written right here against the public
   [Jaaru.Ctx] API: a persistent single-producer message queue in a ring
   buffer. Slots hold (seqno, payload); the producer persists the record
   before advancing the tail index (the commit store), and a consumer after
   a crash replays every record between head and tail.

   Two protocol variants are audited: one that flushes the record before the
   tail advance, and one that does not. Jaaru proves the first correct for
   this workload and produces a crashing execution for the second. *)

open Jaaru

let base = 0x1000
let off_head = 0 (* consumer index, line 0 *)
let off_tail = 64 (* producer index, line 1 *)
let slots = 0x1100 (* ring storage *)
let slot_size = 16
let capacity = 16

type queue = { ctx : Ctx.t; flush_records : bool }

let slot q i = ignore q; slots + (slot_size * (i mod capacity))

let tail q = Ctx.load64 q.ctx ~label:"queue: read tail" (base + off_tail)
let head q = Ctx.load64 q.ctx ~label:"queue: read head" (base + off_head)

let push q payload =
  let t = tail q in
  Ctx.check q.ctx (t - head q < capacity) "queue full";
  let s = slot q t in
  Ctx.store64 q.ctx ~label:"queue: slot seqno" s (t + 1);
  Ctx.store64 q.ctx ~label:"queue: slot payload" (s + 8) payload;
  if q.flush_records then begin
    Ctx.clflush q.ctx ~label:"queue: flush slot" s slot_size;
    Ctx.sfence q.ctx ~label:"queue: fence slot" ()
  end;
  (* The tail advance commits the record. *)
  Ctx.store64 q.ctx ~label:"queue: tail advance" (base + off_tail) (t + 1);
  Ctx.clflush q.ctx ~label:"queue: flush tail" (base + off_tail) 8;
  Ctx.sfence q.ctx ~label:"queue: fence tail" ()

let drain q =
  let t = tail q in
  let h = head q in
  Ctx.check q.ctx (t >= h && t - h <= capacity) "queue indices corrupt";
  let collected = ref [] in
  for i = h to t - 1 do
    let s = slot q i in
    let seqno = Ctx.load64 q.ctx ~label:"queue: read seqno" s in
    let payload = Ctx.load64 q.ctx ~label:"queue: read payload" (s + 8) in
    (* A committed slot must carry the right sequence number and a sane
       payload: the tail advance vouched for it. *)
    Ctx.check q.ctx (seqno = i + 1) "committed slot has a stale sequence number";
    Ctx.check q.ctx (payload >= 100 && payload < 200) "committed slot has a torn payload";
    collected := payload :: !collected
  done;
  List.rev !collected

let scenario ~flush_records =
  let messages = [ 101; 117; 133; 149; 165 ] in
  let pre ctx =
    let q = { ctx; flush_records } in
    List.iter (push q) messages
  in
  let post ctx =
    let q = { ctx; flush_records } in
    ignore (drain q)
  in
  Explorer.scenario ~name:"kv-queue" ~pre ~post

let () =
  Format.printf "== auditing the correct protocol (record flushed before tail advance) ==@.";
  let o = Explorer.run (scenario ~flush_records:true) in
  Format.printf "%a@.@." Explorer.pp_outcome o;

  Format.printf "== auditing the broken protocol (record not flushed) ==@.";
  let config = { Config.default with Config.stop_at_first_bug = true } in
  let o = Explorer.run ~config (scenario ~flush_records:false) in
  Format.printf "%a@.@." Explorer.pp_outcome o;
  List.iter (fun b -> Format.printf "%a@.@." Bug.pp b) o.Explorer.bugs;

  Format.printf "== the missing-flush debugging aid pinpoints the culprit ==@.";
  List.iter
    (fun (r : Ctx.multi_rf) ->
      Format.printf "load %s could read from: %s@." r.load_label
        (String.concat ", " (List.map (fun (l, v) -> Printf.sprintf "%s (%d)" l v) r.candidates)))
    o.Explorer.multi_rf
