(* Schedule fuzzing for concurrency bugs — the future-work direction the
   paper's Discussion describes, built on Jaaru's control of the schedule.

     dune exec examples/fuzz_race.exe

   Two threads insert into a shared persistent counter-indexed log. The
   broken variant claims slots with a plain read-increment-write on the
   shared cursor; the fixed variant uses a locked fetch-and-add. Under the
   default round-robin schedule the race may stay hidden; fuzzing across
   seeded schedules exposes the lost update, while the fixed variant
   survives every schedule AND every injected power failure. *)

open Jaaru

let cursor = 0x1000
let slots = 0x1080

let writer ~racy id ctx =
  let claim () =
    if racy then begin
      (* Read-increment-write: two threads can claim the same slot. *)
      let c = Ctx.load64 ctx ~label:"racy read" cursor in
      Ctx.store64 ctx ~label:"racy write" cursor (c + 1);
      c
    end
    else Ctx.fetch_add64 ctx ~label:"locked claim" cursor 1
  in
  let slot = claim () in
  let addr = slots + (8 * slot) in
  Ctx.store64 ctx ~label:"slot write" addr id;
  Ctx.clflush ctx ~label:"slot flush" addr 8;
  Ctx.sfence ctx ~label:"slot fence" ()

let scenario ~racy =
  let pre ctx =
    Ctx.parallel ctx [ writer ~racy 101; writer ~racy 202 ];
    Ctx.mfence ctx ~label:"join" ();
    (* The oracle: two writers must have claimed two distinct slots. A lost
       cursor update leaves the cursor at 1 and one record missing. *)
    let c = Ctx.load64 ctx ~label:"cursor check" cursor in
    Ctx.check ctx ~label:"fuzz_race.ml:cursor" (c = 2) "a cursor update was lost";
    Ctx.check ctx ~label:"fuzz_race.ml:slot0" (Ctx.load64 ctx ~label:"slot0 check" slots <> 0) "slot 0 missing";
    Ctx.check ctx ~label:"fuzz_race.ml:slot1" (Ctx.load64 ctx ~label:"slot1 check" (slots + 8) <> 0) "slot 1 missing";
    Ctx.clflush ctx ~label:"cursor flush" cursor 8
  in
  let post ctx = ignore (Ctx.load64 ctx ~label:"recovery read" cursor) in
  Explorer.scenario ~name:"race" ~pre ~post

let seeds = List.init 24 succ

let () =
  let config = { Config.default with Config.evict_policy = Config.Buffered } in
  Format.printf "== fuzzing the racy slot-claim protocol ==@.";
  let r = Fuzz.run ~config ~seeds (scenario ~racy:true) in
  Format.printf "%a@.@." Fuzz.pp r;

  Format.printf "== fuzzing the locked (fetch-and-add) protocol ==@.";
  let r = Fuzz.run ~config ~seeds (scenario ~racy:false) in
  Format.printf "%a@." Fuzz.pp r
