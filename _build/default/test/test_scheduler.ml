(* The cooperative fiber scheduler in isolation. *)
open Jaaru

let test_round_robin_order () =
  let log = ref [] in
  let fiber name n =
    {
      Scheduler.enter = (fun () -> ());
      body =
        (fun () ->
          for i = 1 to n do
            log := Printf.sprintf "%s%d" name i :: !log;
            Scheduler.yield ()
          done);
    }
  in
  Scheduler.run_fibers [ fiber "a" 2; fiber "b" 2 ];
  Alcotest.(check (list string)) "interleaved round robin" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let test_unbalanced_fibers () =
  let log = ref [] in
  let fiber name n =
    {
      Scheduler.enter = (fun () -> ());
      body =
        (fun () ->
          for i = 1 to n do
            log := Printf.sprintf "%s%d" name i :: !log;
            Scheduler.yield ()
          done);
    }
  in
  Scheduler.run_fibers [ fiber "a" 1; fiber "b" 3 ];
  Alcotest.(check (list string)) "survivor runs alone" [ "a1"; "b1"; "b2"; "b3" ]
    (List.rev !log)

let test_enter_called_on_each_resume () =
  let enters = ref 0 in
  let fb =
    {
      Scheduler.enter = (fun () -> incr enters);
      body =
        (fun () ->
          Scheduler.yield ();
          Scheduler.yield ());
    }
  in
  Scheduler.run_fibers [ fb ];
  Alcotest.(check int) "initial + two resumes" 3 !enters

let test_pick_lifo () =
  (* pick (n-1) always chooses the most recently parked fiber: with two
     fibers this alternates differently from round-robin. *)
  let log = ref [] in
  let fiber name n =
    {
      Scheduler.enter = (fun () -> ());
      body =
        (fun () ->
          for i = 1 to n do
            log := Printf.sprintf "%s%d" name i :: !log;
            Scheduler.yield ()
          done);
    }
  in
  Scheduler.run_fibers ~pick:(fun n -> n - 1) [ fiber "a" 2; fiber "b" 2 ];
  (* LIFO: b starts last, then the freshest parked fiber always runs. *)
  Alcotest.(check (list string)) "lifo schedule" [ "b1"; "b2"; "a1"; "a2" ] (List.rev !log)

let test_pick_out_of_range_clamped () =
  let ran = ref false in
  Scheduler.run_fibers ~pick:(fun _ -> 99)
    [ { Scheduler.enter = (fun () -> ()); body = (fun () -> ran := true) } ];
  Alcotest.(check bool) "still runs" true !ran

let test_exception_propagates () =
  let second_ran = ref false in
  (try
     Scheduler.run_fibers
       [
         { Scheduler.enter = (fun () -> ()); body = (fun () -> failwith "die") };
         { Scheduler.enter = (fun () -> ()); body = (fun () -> second_ran := true) };
       ]
   with Failure m -> Alcotest.(check string) "message" "die" m);
  Alcotest.(check bool) "remaining fiber abandoned" false !second_ran

let test_yield_outside_is_noop () = Scheduler.yield () (* must not raise *)

let test_nested_run_fibers () =
  let log = ref [] in
  let inner () =
    Scheduler.run_fibers
      [ { Scheduler.enter = (fun () -> ()); body = (fun () -> log := "inner" :: !log) } ]
  in
  Scheduler.run_fibers
    [
      {
        Scheduler.enter = (fun () -> ());
        body =
          (fun () ->
            log := "outer-start" :: !log;
            inner ();
            log := "outer-end" :: !log);
      };
    ];
  Alcotest.(check (list string)) "nested completes inline" [ "outer-start"; "inner"; "outer-end" ]
    (List.rev !log)

let test_many_fibers () =
  let n = 200 in
  let counter = ref 0 in
  Scheduler.run_fibers
    (List.init n (fun _ ->
         {
           Scheduler.enter = (fun () -> ());
           body =
             (fun () ->
               Scheduler.yield ();
               incr counter);
         }));
  Alcotest.(check int) "all completed" n !counter

let () =
  Alcotest.run "scheduler"
    [
      ( "fibers",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_order;
          Alcotest.test_case "unbalanced" `Quick test_unbalanced_fibers;
          Alcotest.test_case "enter per resume" `Quick test_enter_called_on_each_resume;
          Alcotest.test_case "lifo pick" `Quick test_pick_lifo;
          Alcotest.test_case "pick clamped" `Quick test_pick_out_of_range_clamped;
          Alcotest.test_case "exception" `Quick test_exception_propagates;
          Alcotest.test_case "yield outside" `Quick test_yield_outside_is_noop;
          Alcotest.test_case "nested" `Quick test_nested_run_fibers;
          Alcotest.test_case "many fibers" `Quick test_many_fibers;
        ] );
    ]
