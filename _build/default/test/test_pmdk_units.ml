(* Focused unit tests for the PMDK substrate internals: pool lifecycle, the
   persistent allocator, undo-log transactions and the checksummed log. *)
open Jaaru

let no_failures = { Config.default with Config.max_failures = 0 }

let run_functional name body =
  let o =
    Explorer.run ~config:no_failures (Explorer.scenario ~name ~pre:body ~post:(fun _ -> ()))
  in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) (name ^ ": no bugs") false (Explorer.found_bug o)

(* --- pool -------------------------------------------------------------------- *)

let test_pool_create_then_open () =
  run_functional "pool" (fun ctx ->
      let p = Pmdk.Pool.create ctx ~layout:0xabc ~root_size:64 in
      Ctx.check ctx (Pmdk.Pool.valid ctx ~layout:0xabc) "valid after create";
      Ctx.check ctx (not (Pmdk.Pool.valid ctx ~layout:0xdef)) "other layout invalid";
      let p' = Pmdk.Pool.open_or_create ctx ~layout:0xabc ~root_size:64 in
      Ctx.check ctx (Pmdk.Pool.root p = Pmdk.Pool.root p') "same root";
      Ctx.check ctx (Pmdk.Pool.heap_base p = Pmdk.Pool.heap_base p') "same heap";
      Ctx.check ctx (Pmdk.Pool.root p >= (Ctx.region ctx).Pmem.Region.base + 128) "root after header";
      Ctx.check ctx (Pmdk.Pool.heap_base p > Pmdk.Pool.root p) "heap after root")

let test_pool_wrong_layout_rejected () =
  let o =
    Explorer.run ~config:no_failures
      (Explorer.scenario ~name:"pool-layout"
         ~pre:(fun ctx ->
           ignore (Pmdk.Pool.create ctx ~layout:1 ~root_size:64);
           ignore (Pmdk.Pool.open_or_create ctx ~layout:2 ~root_size:64))
         ~post:(fun _ -> ()))
  in
  match o.Explorer.bugs with
  | [ b ] ->
      Alcotest.(check string) "symptom" "Assertion failure at pool.ml:open" (Bug.symptom b)
  | _ -> Alcotest.fail "expected exactly the open failure"

let test_pool_crash_consistent_creation () =
  (* Exhaustively: a crash during create either reopens or recreates, never
     errors. *)
  let pre ctx = ignore (Pmdk.Pool.create ctx ~layout:7 ~root_size:64) in
  let post ctx = ignore (Pmdk.Pool.open_or_create ctx ~layout:7 ~root_size:64) in
  let o = Explorer.run (Explorer.scenario ~name:"pool-crash" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

(* --- pmalloc ------------------------------------------------------------------ *)

let with_heap ctx f =
  let pool = Pmdk.Pool.open_or_create ctx ~layout:0x11 ~root_size:64 in
  f (Pmdk.Pmalloc.init_or_open pool)

let test_alloc_distinct_and_sized () =
  run_functional "pmalloc-alloc" (fun ctx ->
      with_heap ctx (fun heap ->
          let a = Pmdk.Pmalloc.alloc heap 24 in
          let b = Pmdk.Pmalloc.alloc heap 100 in
          Ctx.check ctx (a <> b) "distinct blocks";
          Ctx.check ctx (Pmdk.Pmalloc.block_payload_size heap a >= 24) "size a";
          Ctx.check ctx (Pmdk.Pmalloc.block_payload_size heap b >= 100) "size b";
          Ctx.check ctx (b >= a + 24) "no overlap";
          Pmdk.Pmalloc.assert_allocated heap a;
          Pmdk.Pmalloc.assert_allocated heap b;
          Pmdk.Pmalloc.check heap;
          Ctx.check ctx (List.length (Pmdk.Pmalloc.live_blocks heap) = 2) "live blocks"))

let test_free_and_reuse () =
  run_functional "pmalloc-reuse" (fun ctx ->
      with_heap ctx (fun heap ->
          let a = Pmdk.Pmalloc.alloc heap 32 in
          Pmdk.Pmalloc.free heap a;
          Pmdk.Pmalloc.check heap;
          let b = Pmdk.Pmalloc.alloc heap 32 in
          Ctx.check ctx (a = b) "freed block reused first-fit";
          (* A smaller request also fits the freed block. *)
          Pmdk.Pmalloc.free heap b;
          let c = Pmdk.Pmalloc.alloc heap 16 in
          Ctx.check ctx (c = a) "smaller request reuses";
          Pmdk.Pmalloc.check heap))

let test_free_list_ordering () =
  run_functional "pmalloc-freelist" (fun ctx ->
      with_heap ctx (fun heap ->
          let a = Pmdk.Pmalloc.alloc heap 16 in
          let b = Pmdk.Pmalloc.alloc heap 16 in
          let c = Pmdk.Pmalloc.alloc heap 16 in
          Pmdk.Pmalloc.free heap a;
          Pmdk.Pmalloc.free heap c;
          Pmdk.Pmalloc.check heap;
          (* LIFO: c is at the head of the free list. *)
          let d = Pmdk.Pmalloc.alloc heap 16 in
          Ctx.check ctx (d = c) "LIFO reuse";
          ignore b))

let test_heap_exhaustion_reported () =
  let o =
    Explorer.run ~config:no_failures
      (Explorer.scenario ~name:"pmalloc-oom"
         ~pre:(fun ctx ->
           with_heap ctx (fun heap ->
               for _ = 1 to 10_000 do
                 ignore (Pmdk.Pmalloc.alloc heap 4096)
               done))
         ~post:(fun _ -> ()))
  in
  match o.Explorer.bugs with
  | [ b ] -> Alcotest.(check string) "oom" "Assertion failure at pmalloc.ml:oom" (Bug.symptom b)
  | _ -> Alcotest.fail "expected the oom assertion"

let test_alloc_crash_consistent () =
  (* alloc/free under exhaustive failure injection: the heap verifies clean
     in every post-failure state. *)
  let pre ctx =
    with_heap ctx (fun heap ->
        let a = Pmdk.Pmalloc.alloc heap 16 in
        let _b = Pmdk.Pmalloc.alloc heap 32 in
        Pmdk.Pmalloc.free heap a;
        ignore (Pmdk.Pmalloc.alloc heap 16))
  in
  let post ctx = with_heap ctx Pmdk.Pmalloc.check in
  let o = Explorer.run (Explorer.scenario ~name:"pmalloc-crash" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

(* --- tx ------------------------------------------------------------------------ *)

let tx_area ctx f =
  let pool = Pmdk.Pool.open_or_create ctx ~layout:0x22 ~root_size:(16 + Pmdk.Tx.area_size ~capacity:8) in
  let data = Pmdk.Pool.root pool in
  let tx = Pmdk.Tx.attach ctx ~base:(data + 16) ~capacity:8 in
  Pmdk.Tx.recover tx;
  f tx data

let test_tx_commit_applies () =
  run_functional "tx-commit" (fun ctx ->
      tx_area ctx (fun tx data ->
          Ctx.store64 ctx data 1;
          Pmdk.Tx.run tx (fun () ->
              Pmdk.Tx.set64 tx data 2;
              Pmdk.Tx.set64 tx (data + 8) 3;
              Ctx.check ctx (Ctx.load64 ctx data = 2) "visible inside tx");
          Ctx.check ctx (Ctx.load64 ctx data = 2) "committed";
          Ctx.check ctx (Ctx.load64 ctx (data + 8) = 3) "both writes";
          Ctx.check ctx (not (Pmdk.Tx.in_tx tx)) "tx closed"))

let test_tx_nested_flatten () =
  run_functional "tx-nested" (fun ctx ->
      tx_area ctx (fun tx data ->
          Pmdk.Tx.run tx (fun () ->
              Pmdk.Tx.set64 tx data 1;
              Pmdk.Tx.run tx (fun () -> Pmdk.Tx.set64 tx (data + 8) 2);
              Ctx.check ctx (Pmdk.Tx.in_tx tx) "still open after inner");
          Ctx.check ctx (Ctx.load64 ctx data = 1) "outer write";
          Ctx.check ctx (Ctx.load64 ctx (data + 8) = 2) "inner write"))

let test_tx_set_outside_fails () =
  let o =
    Explorer.run ~config:no_failures
      (Explorer.scenario ~name:"tx-outside"
         ~pre:(fun ctx -> tx_area ctx (fun tx data -> Pmdk.Tx.set64 tx data 1))
         ~post:(fun _ -> ()))
  in
  Alcotest.(check bool) "reported" true (Explorer.found_bug o)

let test_tx_crash_rolls_back () =
  (* Exhaustive: recovery either sees the old consistent pair or the new
     one, never a mix. *)
  let pre ctx =
    tx_area ctx (fun tx data ->
        Ctx.store64 ctx data 10;
        Ctx.store64 ctx (data + 8) 20;
        Ctx.clflush ctx data 16;
        Ctx.sfence ctx ();
        Pmdk.Tx.run tx (fun () ->
            Pmdk.Tx.set64 tx data 11;
            Pmdk.Tx.set64 tx (data + 8) 21))
  in
  let post ctx =
    tx_area ctx (fun _tx data ->
        let a = Ctx.load64 ctx data in
        let b = Ctx.load64 ctx (data + 8) in
        (* The crash may predate the flush of the initial pair (prefix states
           of the setup stores), but the transaction itself is atomic: no
           mix of old and new transactional values survives. *)
        Ctx.check ctx
          (List.mem (a, b) [ (0, 0); (10, 0); (10, 20); (11, 21) ])
          (Printf.sprintf "atomic pair, got %d/%d" a b))
  in
  let o = Explorer.run (Explorer.scenario ~name:"tx-atomic" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

let test_tx_recovery_idempotent_under_double_crash () =
  (* The rollback itself may crash (max_failures = 2); re-running recovery
     must still restore the old pair. *)
  let config = { Config.default with Config.max_failures = 2 } in
  let pre ctx =
    tx_area ctx (fun tx data ->
        Ctx.store64 ctx data 10;
        Ctx.store64 ctx (data + 8) 20;
        Ctx.clflush ctx data 16;
        Ctx.sfence ctx ();
        Pmdk.Tx.run tx (fun () ->
            Pmdk.Tx.set64 tx data 11;
            Pmdk.Tx.set64 tx (data + 8) 21))
  in
  let post ctx =
    tx_area ctx (fun _tx data ->
        let a = Ctx.load64 ctx data in
        let b = Ctx.load64 ctx (data + 8) in
        Ctx.check ctx
          (List.mem (a, b) [ (0, 0); (10, 0); (10, 20); (11, 21) ])
          (Printf.sprintf "atomic pair after repeated recovery, got %d/%d" a b))
  in
  let o = Explorer.run ~config (Explorer.scenario ~name:"tx-double" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

let test_tx_overflow_guard () =
  let o =
    Explorer.run ~config:no_failures
      (Explorer.scenario ~name:"tx-overflow"
         ~pre:(fun ctx ->
           tx_area ctx (fun tx data ->
               Pmdk.Tx.run tx (fun () ->
                   for i = 0 to 8 do
                     Pmdk.Tx.set64 tx (data + (8 * (i mod 2))) i
                   done)))
         ~post:(fun _ -> ()))
  in
  match o.Explorer.bugs with
  | [ b ] ->
      Alcotest.(check string) "overflow" "Assertion failure at tx.ml:capacity" (Bug.symptom b)
  | _ -> Alcotest.fail "expected the capacity assertion"

(* --- rbtree delete under crash ---------------------------------------------------- *)

let test_rbtree_remove_crash_atomic () =
  (* Transactional deletion: every post-failure state has either both keys,
     or the tree after exactly the committed removals — never a torn tree
     (check validates the full red-black invariants). *)
  let pre ctx =
    let t = Pmdk.Rbtree_map.create_or_open ctx in
    List.iter (fun k -> Pmdk.Rbtree_map.insert t k (k * 10)) [ 5; 3; 8; 1 ];
    Pmdk.Rbtree_map.remove t 3;
    Pmdk.Rbtree_map.remove t 5
  in
  let post ctx =
    let t = Pmdk.Rbtree_map.create_or_open ctx in
    Pmdk.Rbtree_map.check t;
    List.iter
      (fun k ->
        match Pmdk.Rbtree_map.lookup t k with
        | None -> ()
        | Some v -> Ctx.check ctx (v = k * 10) "surviving key carries its value")
      [ 1; 3; 5; 8 ]
  in
  let config = { Config.default with Config.max_steps = 100_000 } in
  let o = Explorer.run ~config (Explorer.scenario ~name:"rb-remove" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

(* --- clog ----------------------------------------------------------------------- *)

let test_clog_crash_prefix () =
  (* Exhaustive: recovery always yields a prefix (enforced by Clog.check). *)
  let payloads = [ 9; 17; 33 ] in
  let pre ctx =
    let log = Pmdk.Clog.create_or_open ctx in
    List.iter (Pmdk.Clog.append log) payloads
  in
  let post ctx =
    let log = Pmdk.Clog.create_or_open ctx in
    Pmdk.Clog.check log ~expected:payloads
  in
  let o = Explorer.run (Explorer.scenario ~name:"clog-prefix" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

let test_clog_append_after_recovery () =
  run_functional "clog-append" (fun ctx ->
      let log = Pmdk.Clog.create_or_open ctx in
      List.iter (Pmdk.Clog.append log) [ 5; 6 ];
      (* Re-opening scans and appends after the valid prefix. *)
      let log2 = Pmdk.Clog.create_or_open ctx in
      Pmdk.Clog.append log2 7;
      Ctx.check ctx (Pmdk.Clog.recover log2 = [ 5; 6; 7 ]) "resumed append")

let () =
  Alcotest.run "pmdk-units"
    [
      ( "pool",
        [
          Alcotest.test_case "create then open" `Quick test_pool_create_then_open;
          Alcotest.test_case "wrong layout" `Quick test_pool_wrong_layout_rejected;
          Alcotest.test_case "crash-consistent creation" `Quick test_pool_crash_consistent_creation;
        ] );
      ( "pmalloc",
        [
          Alcotest.test_case "alloc" `Quick test_alloc_distinct_and_sized;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "free list order" `Quick test_free_list_ordering;
          Alcotest.test_case "exhaustion" `Quick test_heap_exhaustion_reported;
          Alcotest.test_case "crash consistent" `Quick test_alloc_crash_consistent;
        ] );
      ( "tx",
        [
          Alcotest.test_case "commit applies" `Quick test_tx_commit_applies;
          Alcotest.test_case "nested flatten" `Quick test_tx_nested_flatten;
          Alcotest.test_case "set outside" `Quick test_tx_set_outside_fails;
          Alcotest.test_case "crash rolls back" `Quick test_tx_crash_rolls_back;
          Alcotest.test_case "double-crash recovery" `Quick test_tx_recovery_idempotent_under_double_crash;
          Alcotest.test_case "overflow guard" `Quick test_tx_overflow_guard;
          Alcotest.test_case "rbtree remove crash-atomic" `Quick test_rbtree_remove_crash_atomic;
        ] );
      ( "clog",
        [
          Alcotest.test_case "crash prefix" `Quick test_clog_crash_prefix;
          Alcotest.test_case "append after recovery" `Quick test_clog_append_after_recovery;
        ] );
    ]
