(* Smoke: the paper's Fig. 4 commit-store example. *)
open Jaaru

let fig4 () =
  let data_addr = 0x1080 and child_ptr = 0x1000 in
  let pre ctx =
    Ctx.store64 ctx ~label:"tmp->data" data_addr 42;
    Ctx.clflush ctx ~label:"flush data" data_addr 8;
    Ctx.store64 ctx ~label:"ptr->child" child_ptr data_addr;
    Ctx.clflush ctx ~label:"flush child" child_ptr 8
  in
  let post ctx =
    let child = Ctx.load64 ctx ~label:"read child" child_ptr in
    if child <> 0 then begin
      let data = Ctx.load64 ctx ~label:"read data" child in
      Ctx.check ctx (data = 42) "data must be 42"
    end
  in
  let o = Explorer.run (Explorer.scenario ~name:"fig4" ~pre ~post) in
  Format.printf "fig4: %a@." Explorer.pp_outcome o;
  Alcotest.(check bool) "no bugs" false (Explorer.found_bug o);
  Alcotest.(check int) "failure points" 3 o.stats.Stats.failure_points;
  Alcotest.(check int) "executions" 5 o.stats.Stats.executions

let fig4_missing_commit_check () =
  (* readChild dereferences data without checking the commit store: if the
     crash lands before the data flush, recovery reads garbage. *)
  let data_addr = 0x1080 and child_ptr = 0x1000 in
  let pre ctx =
    Ctx.store64 ctx ~label:"tmp->data" data_addr 42;
    Ctx.clflush ctx ~label:"flush data" data_addr 8;
    Ctx.store64 ctx ~label:"ptr->child" child_ptr data_addr;
    Ctx.clflush ctx ~label:"flush child" child_ptr 8
  in
  let post ctx =
    let child = Ctx.load64 ctx ~label:"read child" child_ptr in
    (* no null check: treat whatever we read as a pointer *)
    let data = Ctx.load64 ctx ~label:"read data blind" child in
    ignore data
  in
  let o = Explorer.run (Explorer.scenario ~name:"fig4-blind" ~pre ~post) in
  Format.printf "fig4-blind: %a@." Explorer.pp_outcome o;
  Alcotest.(check bool) "found bug" true (Explorer.found_bug o)


(* Cross-validation: Jaaru's lazy exploration must observe exactly the same
   set of recovery behaviors as the eager Yat-style enumerator. *)
let equivalence () =
  let base = 0x1000 in
  let pre ctx =
    (* x and y share a line; z is on another line; mixed flushes. *)
    Ctx.store64 ctx ~label:"y=1" (base + 8) 1;
    Ctx.store64 ctx ~label:"x=2" base 2;
    Ctx.clflush ctx ~label:"flush x" base 8;
    Ctx.store64 ctx ~label:"y=3" (base + 8) 3;
    Ctx.store64 ctx ~label:"x=4" base 4;
    Ctx.store64 ctx ~label:"z=7" (base + 64) 7;
    Ctx.clflushopt ctx ~label:"flushopt z" (base + 64) 8;
    Ctx.sfence ctx ~label:"fence" ();
    Ctx.store64 ctx ~label:"y=5" (base + 8) 5;
    Ctx.store64 ctx ~label:"x=6" base 6
  in
  let post ctx =
    let x = Ctx.load64 ctx ~label:"read x" base in
    let y = Ctx.load64 ctx ~label:"read y" (base + 8) in
    let z = Ctx.load64 ctx ~label:"read z" (base + 64) in
    Printf.sprintf "x=%d y=%d z=%d" x y z
  in
  let eager = Yat.Eager.check ~pre ~post () in
  let lazy_behaviors = Yat.Eager.jaaru_behaviors ~pre ~post () in
  Alcotest.(check bool) "eager not truncated" false eager.Yat.Eager.truncated;
  Alcotest.(check (list string)) "same behaviors" eager.Yat.Eager.behaviors lazy_behaviors

let fig23_refinement () =
  (* Paper Fig. 2/3: after reading x=4, y can only be 3 or 5, never 1. *)
  let base = 0x1000 in
  let pre ctx =
    Ctx.store64 ctx ~label:"y=1" (base + 8) 1;
    Ctx.store64 ctx ~label:"x=2" base 2;
    Ctx.clflush ctx ~label:"clflush" base 8;
    Ctx.store64 ctx ~label:"y=3" (base + 8) 3;
    Ctx.store64 ctx ~label:"x=4" base 4;
    Ctx.store64 ctx ~label:"y=5" (base + 8) 5;
    Ctx.store64 ctx ~label:"x=6" base 6
  in
  let seen = ref [] in
  let post ctx =
    let x = Ctx.load64 ctx ~label:"r1=x" base in
    let y = Ctx.load64 ctx ~label:"r2=y" (base + 8) in
    seen := (x, y) :: !seen;
    Ctx.check ctx (not (x = 4 && y = 1)) "y=1 impossible after observing x=4";
    Ctx.check ctx (not (x = 6 && y < 5)) "y<5 impossible after observing x=6"
  in
  let o = Explorer.run (Explorer.scenario ~name:"fig2-3" ~pre ~post) in
  Alcotest.(check bool) "no bugs" false (Explorer.found_bug o);
  Alcotest.(check bool) "x=4 observed with y=3 or 5" true
    (List.mem (4, 3) !seen || List.mem (4, 5) !seen)

let () =
  Alcotest.run "smoke"
    [
      ( "fig4",
        [
          Alcotest.test_case "commit store" `Quick fig4;
          Alcotest.test_case "blind read" `Quick fig4_missing_commit_check;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "fig2/3 intervals" `Quick fig23_refinement;
          Alcotest.test_case "eager equivalence" `Quick equivalence;
        ] );
    ]
