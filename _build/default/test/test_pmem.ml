(* Unit and property tests for the pmem substrate. *)

let test_addr_lines () =
  Alcotest.(check int) "line of 0" 0 (Pmem.Addr.line_of 0);
  Alcotest.(check int) "line of 63" 0 (Pmem.Addr.line_of 63);
  Alcotest.(check int) "line of 64" 1 (Pmem.Addr.line_of 64);
  Alcotest.(check int) "base" 64 (Pmem.Addr.line_base 100);
  Alcotest.(check int) "offset" 36 (Pmem.Addr.line_offset 100);
  Alcotest.(check bool) "same line" true (Pmem.Addr.same_line 64 127);
  Alcotest.(check bool) "diff line" false (Pmem.Addr.same_line 63 64);
  Alcotest.(check (list int)) "span one" [ 1 ] (Pmem.Addr.lines_spanned 64 64);
  Alcotest.(check (list int)) "span two" [ 0; 1 ] (Pmem.Addr.lines_spanned 60 8);
  Alcotest.(check (list int)) "span three" [ 0; 1; 2 ] (Pmem.Addr.lines_spanned 0 129)

let test_interval_basics () =
  let iv = Pmem.Interval.make () in
  Alcotest.(check int) "lo" 0 (Pmem.Interval.lo iv);
  Alcotest.(check int) "hi" Pmem.Interval.infinity (Pmem.Interval.hi iv);
  Alcotest.(check bool) "not empty" false (Pmem.Interval.is_empty iv);
  Pmem.Interval.raise_lo iv 10;
  Pmem.Interval.raise_lo iv 5 (* no-op: lower than current *);
  Alcotest.(check int) "lo raised" 10 (Pmem.Interval.lo iv);
  Pmem.Interval.lower_hi iv 20;
  Pmem.Interval.lower_hi iv 30 (* no-op *);
  Alcotest.(check int) "hi lowered" 20 (Pmem.Interval.hi iv);
  Alcotest.(check bool) "mem 10" true (Pmem.Interval.mem iv 10);
  Alcotest.(check bool) "mem 19" true (Pmem.Interval.mem iv 19);
  Alcotest.(check bool) "not mem 20" false (Pmem.Interval.mem iv 20);
  Pmem.Interval.lower_hi iv 10;
  Alcotest.(check bool) "now empty" true (Pmem.Interval.is_empty iv)

let test_interval_copy_set () =
  let a = Pmem.Interval.make () in
  Pmem.Interval.raise_lo a 3;
  let b = Pmem.Interval.copy a in
  Pmem.Interval.raise_lo a 9;
  Alcotest.(check int) "copy is independent" 3 (Pmem.Interval.lo b);
  Pmem.Interval.set b a;
  Alcotest.(check bool) "set copies bounds" true (Pmem.Interval.equal a b)

let test_bytes_known () =
  Alcotest.(check (list int)) "explode 1" [ 0xff ] (Pmem.Bytes_le.explode ~width:1 0xff);
  Alcotest.(check (list int)) "explode 2 LE" [ 0x34; 0x12 ] (Pmem.Bytes_le.explode ~width:2 0x1234);
  Alcotest.(check int) "implode" 0x1234 (Pmem.Bytes_le.implode [ 0x34; 0x12 ]);
  Alcotest.(check int) "byte_at" 0x12 (Pmem.Bytes_le.byte_at ~width:2 0x1234 1);
  Alcotest.(check int) "truncate" 0x34 (Pmem.Bytes_le.truncate ~width:1 0x1234);
  Alcotest.(check int) "truncate id" max_int (Pmem.Bytes_le.truncate ~width:8 max_int)

let test_bytes_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bytes_le: width 0 not in [1, 8]") (fun () ->
      ignore (Pmem.Bytes_le.explode ~width:0 1));
  Alcotest.check_raises "width 9" (Invalid_argument "Bytes_le: width 9 not in [1, 8]") (fun () ->
      ignore (Pmem.Bytes_le.explode ~width:9 1))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"explode/implode roundtrip" ~count:500
    QCheck.(pair (int_range 1 8) int)
    (fun (width, v) ->
      let v = Pmem.Bytes_le.truncate ~width v in
      Pmem.Bytes_le.implode (Pmem.Bytes_le.explode ~width v) = v)

let prop_bytes_roundtrip_full_width =
  QCheck.Test.make ~name:"width-8 roundtrip incl. negatives" ~count:500 QCheck.int (fun v ->
      Pmem.Bytes_le.implode (Pmem.Bytes_le.explode ~width:8 v) = v)

let test_crc_known () =
  (* Standard CRC-32 test vector. *)
  Alcotest.(check int) "123456789" 0xcbf43926 (Pmem.Crc32.digest_string "123456789");
  Alcotest.(check int) "empty" 0 (Pmem.Crc32.digest_string "")

let prop_crc_incremental =
  QCheck.Test.make ~name:"incremental crc = one-shot crc" ~count:200
    QCheck.(list (int_range 0 255))
    (fun bytes ->
      Pmem.Crc32.digest_bytes bytes
      = Pmem.Crc32.finish (List.fold_left Pmem.Crc32.update Pmem.Crc32.empty bytes))

let prop_crc_discriminates =
  QCheck.Test.make ~name:"crc differs on a flipped byte" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 32) (int_range 0 255)) (int_range 0 31))
    (fun (bytes, i) ->
      QCheck.assume (bytes <> []);
      let i = i mod List.length bytes in
      let flipped = List.mapi (fun j b -> if j = i then b lxor 0x5a else b) bytes in
      Pmem.Crc32.digest_bytes bytes <> Pmem.Crc32.digest_bytes flipped)

let test_region () =
  let r = Pmem.Region.v ~base:0x1000 ~size:256 in
  Alcotest.(check bool) "contains start" true (Pmem.Region.contains r 0x1000 1);
  Alcotest.(check bool) "contains all" true (Pmem.Region.contains r 0x1000 256);
  Alcotest.(check bool) "limit excluded" false (Pmem.Region.contains r 0x1100 1);
  Alcotest.(check bool) "below" false (Pmem.Region.contains r 0xfff 1);
  Alcotest.(check bool) "overrun" false (Pmem.Region.contains r 0x10ff 2);
  Alcotest.(check int) "limit" 0x1100 (Pmem.Region.limit r);
  Alcotest.check_raises "unaligned base"
    (Invalid_argument "Region.v: base must be positive and cache-line aligned") (fun () ->
      ignore (Pmem.Region.v ~base:0x1001 ~size:64))

let () =
  Alcotest.run "pmem"
    [
      ( "addr",
        [ Alcotest.test_case "lines" `Quick test_addr_lines ] );
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "copy/set" `Quick test_interval_copy_set;
        ] );
      ( "bytes",
        [
          Alcotest.test_case "known values" `Quick test_bytes_known;
          Alcotest.test_case "invalid widths" `Quick test_bytes_invalid;
          QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
          QCheck_alcotest.to_alcotest prop_bytes_roundtrip_full_width;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_known;
          QCheck_alcotest.to_alcotest prop_crc_incremental;
          QCheck_alcotest.to_alcotest prop_crc_discriminates;
        ] );
      ("region", [ Alcotest.test_case "bounds" `Quick test_region ]);
    ]
