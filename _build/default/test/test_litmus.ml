(* A battery of persistency litmus tests: for each idiom, the exact set of
   states recovery may observe when power is lost at a precise point. Uses
   Ctx.crash with max_failures = 0, so the explicit crash is the only
   failure and the observation sets are sharp (no aggregation over earlier
   failure points).

   Each expected set is derived by hand from the Px86sim rules: a line's
   content in PM is a prefix cut of its store sequence, cuts are per-line
   independent, clflush pins the cut at or after the flush, clflushopt only
   does so once an sfence/mfence/RMW has drained the flush buffer. *)

open Jaaru

let a0 = 0x1000 (* line 0 *)
let a1 = 0x1008 (* line 0, second word *)
let b0 = 0x1040 (* line 1 *)

let behaviors ?(policy = Config.Eager) pre post =
  let config =
    { Config.default with Config.max_failures = 0; Config.evict_policy = policy }
  in
  Yat.Eager.jaaru_behaviors ~config
    ~pre:(fun ctx ->
      pre ctx;
      Ctx.crash ctx)
    ~post ()

let read1 ctx = string_of_int (Ctx.load64 ctx ~label:"rA" a0)

let read2 ctx =
  Printf.sprintf "%d,%d" (Ctx.load64 ctx ~label:"rA" a0) (Ctx.load64 ctx ~label:"rB" b0)

let read_pair_same_line ctx =
  Printf.sprintf "%d,%d" (Ctx.load64 ctx ~label:"rA" a0) (Ctx.load64 ctx ~label:"rA1" a1)

let check name expected got = Alcotest.(check (list string)) name expected got

(* --- single variable ---------------------------------------------------------- *)

let unflushed_store () =
  check "store alone may or may not persist" [ "0"; "7" ]
    (behaviors (fun ctx -> Ctx.store64 ctx a0 7) read1)

let clflush_pins () =
  check "clflush guarantees persistence" [ "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflush ctx a0 8)
       read1)

let overwrite_unflushed () =
  check "overwrites give prefix cuts" [ "0"; "1"; "2" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 1;
         Ctx.store64 ctx a0 2)
       read1)

let overwrite_after_flush () =
  check "flush between overwrites drops the zero" [ "1"; "2" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 1;
         Ctx.clflush ctx a0 8;
         Ctx.store64 ctx a0 2)
       read1)

(* --- clflushopt and fences ----------------------------------------------------- *)

let clflushopt_unfenced () =
  check "clflushopt without a fence guarantees nothing" [ "0"; "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflushopt ctx a0 8)
       read1)

let clflushopt_sfence () =
  check "clflushopt + sfence pins" [ "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflushopt ctx a0 8;
         Ctx.sfence ctx ())
       read1)

let clflushopt_mfence () =
  check "clflushopt + mfence pins" [ "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflushopt ctx a0 8;
         Ctx.mfence ctx ())
       read1)

let clflushopt_rmw_drains () =
  check "a locked RMW drains the flush buffer" [ "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflushopt ctx a0 8;
         ignore (Ctx.cas64 ctx b0 ~expected:0 ~desired:1))
       read1)

let clwb_is_clflushopt () =
  check "clwb behaves like clflushopt" [ "0"; "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clwb ctx a0 8)
       read1);
  check "clwb + sfence pins" [ "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clwb ctx a0 8;
         Ctx.sfence ctx ())
       read1)

(* --- cross-line (in)dependence -------------------------------------------------- *)

let flush_does_not_order_other_lines () =
  check "flushing A says nothing about B" [ "7,0"; "7,9" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflush ctx a0 8;
         Ctx.store64 ctx b0 9)
       read2)

let lines_cut_independently () =
  check "per-line cuts are independent" [ "0,0"; "0,9"; "7,0"; "7,9" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.store64 ctx b0 9)
       read2)

let flushopt_other_line_irrelevant () =
  check "clflushopt of another line does not pin A" [ "0"; "7" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflushopt ctx b0 8;
         Ctx.sfence ctx ())
       read1)

(* --- same-line coupling ----------------------------------------------------------- *)

let same_line_prefix_cuts () =
  (* x=1; y=2 on one line: the cut is a prefix of the store order. *)
  check "same-line prefix cuts" [ "0,0"; "1,0"; "1,2" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 1;
         Ctx.store64 ctx a1 2)
       read_pair_same_line)

let same_line_flush_midway () =
  (* x=1; clflush; y=2; x=3: the cut is at or after the flush. *)
  check "flush bounds the cut below" [ "1,0"; "1,2"; "3,2" ]
    (behaviors
       (fun ctx ->
         Ctx.store64 ctx a0 1;
         Ctx.clflush ctx a0 8;
         Ctx.store64 ctx a1 2;
         Ctx.store64 ctx a0 3)
       read_pair_same_line)

let paper_fig23 () =
  (* The paper's running example, as exact observation sets. *)
  let pre ctx =
    Ctx.store64 ctx a1 1 (* y=1 *);
    Ctx.store64 ctx a0 2 (* x=2 *);
    Ctx.clflush ctx a0 8;
    Ctx.store64 ctx a1 3 (* y=3 *);
    Ctx.store64 ctx a0 4 (* x=4 *);
    Ctx.store64 ctx a1 5 (* y=5 *);
    Ctx.store64 ctx a0 6 (* x=6 *)
  in
  let post ctx =
    Printf.sprintf "x=%d,y=%d" (Ctx.load64 ctx ~label:"x" a0) (Ctx.load64 ctx ~label:"y" a1)
  in
  check "fig 2/3 exact states"
    [ "x=2,y=1"; "x=2,y=3"; "x=4,y=3"; "x=4,y=5"; "x=6,y=5" ]
    (behaviors pre post)

(* --- mixed sizes -------------------------------------------------------------------- *)

let torn_across_lines () =
  (* An 8-byte store straddling a line boundary is NOT persist-atomic. *)
  let addr = 0x1040 - 4 in
  check "line-straddling store can tear"
    [ "0,0"; "0,2"; "16908545,0"; "16908545,2" ]
    (behaviors
       (fun ctx ->
         (* LE bytes 01 01 02 01 land on line 0 (= 0x01020101 = 16908545 as a
            32-bit read); byte 02 and zeros land on line 1 (= 2). Each line
            persists independently. *)
         Ctx.store64 ctx ~label:"straddle" addr 0x0000000201020101)
       (fun ctx ->
         Printf.sprintf "%d,%d"
           (Ctx.load32 ctx ~label:"low" (0x1040 - 4))
           (Ctx.load32 ctx ~label:"high" 0x1040)))

let aligned_store_atomic () =
  (* Within one line a store persists all-or-nothing. *)
  check "aligned store is persist-atomic" [ "0"; "72623859790382856" ]
    (behaviors (fun ctx -> Ctx.store64 ctx a0 0x0102030405060708) read1)

(* --- buffered policy ------------------------------------------------------------------ *)

let buffered_store_may_die_in_sb () =
  check "buffered: store may never reach the cache" [ "0"; "7" ]
    (behaviors ~policy:Config.Buffered (fun ctx -> Ctx.store64 ctx a0 7) read1)

let buffered_clflush_in_sb_is_void () =
  (* Even a clflush guarantees nothing while it sits in the store buffer. *)
  check "buffered: unfenced clflush may be lost" [ "0"; "7" ]
    (behaviors ~policy:Config.Buffered
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflush ctx a0 8)
       read1)

let buffered_mfence_pins () =
  check "buffered: clflush + mfence pins" [ "7" ]
    (behaviors ~policy:Config.Buffered
       (fun ctx ->
         Ctx.store64 ctx a0 7;
         Ctx.clflush ctx a0 8;
         Ctx.mfence ctx ())
       read1)

let () =
  Alcotest.run "litmus"
    [
      ( "single-variable",
        [
          Alcotest.test_case "unflushed store" `Quick unflushed_store;
          Alcotest.test_case "clflush pins" `Quick clflush_pins;
          Alcotest.test_case "overwrite unflushed" `Quick overwrite_unflushed;
          Alcotest.test_case "overwrite after flush" `Quick overwrite_after_flush;
        ] );
      ( "flush-buffer",
        [
          Alcotest.test_case "clflushopt unfenced" `Quick clflushopt_unfenced;
          Alcotest.test_case "clflushopt + sfence" `Quick clflushopt_sfence;
          Alcotest.test_case "clflushopt + mfence" `Quick clflushopt_mfence;
          Alcotest.test_case "RMW drains" `Quick clflushopt_rmw_drains;
          Alcotest.test_case "clwb = clflushopt" `Quick clwb_is_clflushopt;
        ] );
      ( "cross-line",
        [
          Alcotest.test_case "flush is per-line" `Quick flush_does_not_order_other_lines;
          Alcotest.test_case "independent cuts" `Quick lines_cut_independently;
          Alcotest.test_case "other-line flushopt" `Quick flushopt_other_line_irrelevant;
        ] );
      ( "same-line",
        [
          Alcotest.test_case "prefix cuts" `Quick same_line_prefix_cuts;
          Alcotest.test_case "flush midway" `Quick same_line_flush_midway;
          Alcotest.test_case "paper fig 2/3" `Quick paper_fig23;
        ] );
      ( "mixed-size",
        [
          Alcotest.test_case "straddling store tears" `Quick torn_across_lines;
          Alcotest.test_case "aligned store atomic" `Quick aligned_store_atomic;
        ] );
      ( "buffered-policy",
        [
          Alcotest.test_case "store dies in SB" `Quick buffered_store_may_die_in_sb;
          Alcotest.test_case "clflush in SB void" `Quick buffered_clflush_in_sb_is_void;
          Alcotest.test_case "mfence pins" `Quick buffered_mfence_pins;
        ] );
    ]
