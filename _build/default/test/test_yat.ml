(* The Yat-style eager baseline: analytic state counting and the real eager
   explorer, cross-validated against Jaaru's lazy exploration. *)
open Jaaru

let base = 0x1000

(* --- analytic state counts -------------------------------------------------- *)

let count_simple () =
  (* n sequential stores to one line, never flushed: n+1 states at the final
     failure point (the paper's 9-states-per-line example with n=8). *)
  let pre ctx =
    for i = 1 to 8 do
      Ctx.store64 ctx ~label:"w" (base + (8 * (i - 1))) i
    done
  in
  let t = Yat.State_count.analyze pre in
  (* Only the end-of-execution failure point exists (no flushes). *)
  Alcotest.(check int) "fps" 1 t.Yat.State_count.failure_points;
  Alcotest.(check int) "line states" 9 t.Yat.State_count.max_line_states;
  Alcotest.(check (float 1e-9)) "log10" (log10 9.) t.Yat.State_count.log10_total

let count_independent_lines () =
  (* Two lines with 3 unflushed stores each: 4 * 4 = 16 states. *)
  let pre ctx =
    for i = 1 to 3 do
      Ctx.store64 ctx ~label:"a" base i;
      Ctx.store64 ctx ~label:"b" (base + 64) i
    done
  in
  let t = Yat.State_count.analyze pre in
  Alcotest.(check (float 1e-9)) "log10" (log10 16.) t.Yat.State_count.log10_total

let count_flush_resets () =
  (* A flushed line contributes exactly one state at a later failure point. *)
  let pre ctx =
    Ctx.store64 ctx ~label:"a" base 1;
    Ctx.store64 ctx ~label:"a" base 2;
    Ctx.clflush ctx ~label:"fl" base 8;
    Ctx.store64 ctx ~label:"b" (base + 64) 1
  in
  let t = Yat.State_count.analyze pre in
  (* fp1 before the clflush: line a has 3 states. fp2 at the end: line a is
     clean (1 state), line b has 2. Total = 3 + 2 = 5. *)
  Alcotest.(check int) "fps" 2 t.Yat.State_count.failure_points;
  Alcotest.(check (float 1e-9)) "log10" (log10 5.) t.Yat.State_count.log10_total

let count_recipe_explosion () =
  (* The paper's key claim: eager counts are astronomically larger than the
     handful of executions Jaaru explores. *)
  let scn = Recipe.Workloads.fixed_scenario "CCEH" 24 in
  let pre ctx = scn.Explorer.pre ctx in
  let t = Yat.State_count.analyze pre in
  Format.printf "CCEH yat: %a@." Yat.State_count.pp t;
  (* Millions of eager states where Jaaru explores a few dozen executions;
     the bench harness reports the full-size numbers. *)
  Alcotest.(check bool) "astronomical" true (t.Yat.State_count.log10_total > 5.)

(* --- eager vs lazy equivalence on richer programs --------------------------- *)

let behaviors_agree name pre post =
  let eager = Yat.Eager.check ~pre ~post () in
  let lazy_b = Yat.Eager.jaaru_behaviors ~pre ~post () in
  Alcotest.(check bool) (name ^ ": not truncated") false eager.Yat.Eager.truncated;
  Alcotest.(check (list string)) (name ^ ": behaviors") eager.Yat.Eager.behaviors lazy_b

let equiv_commit_store () =
  behaviors_agree "commit"
    (fun ctx ->
      Ctx.store64 ctx ~label:"data" (base + 64) 42;
      Ctx.clflush ctx ~label:"flush data" (base + 64) 8;
      Ctx.store64 ctx ~label:"commit" base (base + 64);
      Ctx.clflush ctx ~label:"flush commit" base 8)
    (fun ctx ->
      let p = Ctx.load64 ctx ~label:"read commit" base in
      if p = 0 then "empty"
      else Printf.sprintf "data=%d" (Ctx.load64 ctx ~label:"read data" p))

let equiv_clflushopt_sfence () =
  behaviors_agree "flushopt"
    (fun ctx ->
      Ctx.store64 ctx ~label:"x" base 1;
      Ctx.clflushopt ctx ~label:"opt x" base 8;
      Ctx.store64 ctx ~label:"y" (base + 64) 2;
      Ctx.clflushopt ctx ~label:"opt y" (base + 64) 8;
      Ctx.sfence ctx ~label:"sf" ();
      Ctx.store64 ctx ~label:"x2" base 3)
    (fun ctx ->
      Printf.sprintf "x=%d y=%d"
        (Ctx.load64 ctx ~label:"rx" base)
        (Ctx.load64 ctx ~label:"ry" (base + 64)))

let equiv_mixed_sizes () =
  behaviors_agree "mixed"
    (fun ctx ->
      Ctx.store64 ctx ~label:"wide" base 0x0102030405060708;
      Ctx.store16 ctx ~label:"narrow" (base + 2) 0xbeef;
      Ctx.store8 ctx ~label:"byte" (base + 7) 0x7f)
    (fun ctx ->
      Printf.sprintf "lo32=%x hi32=%x"
        (Ctx.load32 ctx ~label:"lo" base)
        (Ctx.load32 ctx ~label:"hi" (base + 4)))

let equiv_same_line_interleave () =
  behaviors_agree "fig2-3"
    (fun ctx ->
      Ctx.store64 ctx ~label:"y=1" (base + 8) 1;
      Ctx.store64 ctx ~label:"x=2" base 2;
      Ctx.clflush ctx ~label:"clflush" base 8;
      Ctx.store64 ctx ~label:"y=3" (base + 8) 3;
      Ctx.store64 ctx ~label:"x=4" base 4;
      Ctx.store64 ctx ~label:"y=5" (base + 8) 5;
      Ctx.store64 ctx ~label:"x=6" base 6)
    (fun ctx ->
      Printf.sprintf "x=%d y=%d"
        (Ctx.load64 ctx ~label:"rx" base)
        (Ctx.load64 ctx ~label:"ry" (base + 8)))

let pp_count_small () =
  let s = Format.asprintf "%a" Yat.State_count.pp_count (log10 42.) in
  Alcotest.(check string) "small" "42" s

let pp_count_large () =
  let s = Format.asprintf "%a" Yat.State_count.pp_count 182.336 in
  Alcotest.(check string) "large" "2.17x10^182" s

let () =
  Alcotest.run "yat"
    [
      ( "state-count",
        [
          Alcotest.test_case "one line" `Quick count_simple;
          Alcotest.test_case "independent lines" `Quick count_independent_lines;
          Alcotest.test_case "flush resets" `Quick count_flush_resets;
          Alcotest.test_case "recipe explosion" `Quick count_recipe_explosion;
          Alcotest.test_case "pp small" `Quick pp_count_small;
          Alcotest.test_case "pp large" `Quick pp_count_large;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "commit store" `Quick equiv_commit_store;
          Alcotest.test_case "clflushopt + sfence" `Quick equiv_clflushopt_sfence;
          Alcotest.test_case "mixed sizes" `Quick equiv_mixed_sizes;
          Alcotest.test_case "same line interleave" `Quick equiv_same_line_interleave;
        ] );
    ]
