(* The two extensions the paper names: performance-bug reporting (redundant
   flushes and fences) and schedule fuzzing for concurrency bugs. *)
open Jaaru

let base = 0x1000
let no_failures = { Config.default with Config.max_failures = 0 }

let run_one ?(config = no_failures) body =
  Explorer.run ~config (Explorer.scenario ~name:"t" ~pre:body ~post:(fun _ -> ()))

(* --- performance reports ---------------------------------------------------- *)

let test_redundant_flush_detected () =
  let o =
    run_one (fun ctx ->
        Ctx.store64 ctx ~label:"w" base 1;
        Ctx.clflush ctx ~label:"good flush" base 8;
        Ctx.clflush ctx ~label:"bad flush" base 8 (* nothing new on the line *))
  in
  match o.Explorer.perf with
  | [ { Ctx.perf_kind = Ctx.Redundant_flush; perf_label = "bad flush" } ] -> ()
  | reports ->
      Alcotest.failf "expected one redundant flush, got %d reports" (List.length reports)

let test_flush_of_clean_line () =
  let o = run_one (fun ctx -> Ctx.clflush ctx ~label:"pointless" base 8) in
  Alcotest.(check int) "reported" 1 (List.length o.Explorer.perf)

let test_redundant_fence_detected () =
  let o =
    run_one (fun ctx ->
        Ctx.store64 ctx ~label:"w" base 1;
        Ctx.sfence ctx ~label:"good fence" ();
        Ctx.sfence ctx ~label:"bad fence" ())
  in
  match o.Explorer.perf with
  | [ { Ctx.perf_kind = Ctx.Redundant_fence; perf_label = "bad fence" } ] -> ()
  | reports -> Alcotest.failf "expected one redundant fence, got %d" (List.length reports)

let test_clean_protocol_no_reports () =
  let o =
    run_one (fun ctx ->
        Ctx.store64 ctx ~label:"w1" base 1;
        Ctx.clflush ctx ~label:"f1" base 8;
        Ctx.sfence ctx ~label:"s1" ();
        Ctx.store64 ctx ~label:"w2" base 2;
        Ctx.clflushopt ctx ~label:"f2" base 8;
        Ctx.sfence ctx ~label:"s2" ())
  in
  Alcotest.(check int) "no reports" 0 (List.length o.Explorer.perf)

let test_report_perf_off () =
  let config = { no_failures with Config.report_perf = false } in
  let o = run_one ~config (fun ctx -> Ctx.clflush ctx ~label:"pointless" base 8) in
  Alcotest.(check int) "suppressed" 0 (List.length o.Explorer.perf)

let test_perf_resets_at_crash () =
  (* A line flushed before the crash is clean in the cache of the next
     execution, but flushing it during recovery is not redundant work by
     the recovery code — the dirty tracking restarts per execution, so the
     only report is the pre-failure one we planted. *)
  let config = Config.default in
  let pre ctx =
    Ctx.store64 ctx ~label:"w" base 1;
    Ctx.clflush ctx ~label:"f" base 8
  in
  let post ctx =
    Ctx.store64 ctx ~label:"rw" base 2;
    Ctx.clflush ctx ~label:"rf" base 8
  in
  let o = Explorer.run ~config (Explorer.scenario ~name:"pf" ~pre ~post) in
  Alcotest.(check int) "no spurious reports" 0 (List.length o.Explorer.perf)

let test_fixed_structures_are_flush_clean () =
  (* The fixed PMDK/RECIPE variants must not issue redundant flushes — a
     regression guard on their protocols. *)
  List.iter
    (fun (c : Recipe.Workloads.case) ->
      let o = Explorer.run ~config:c.config c.scenario in
      let redundant =
        List.filter (fun r -> r.Ctx.perf_kind = Ctx.Redundant_flush) o.Explorer.perf
      in
      if redundant <> [] then
        List.iter
          (fun (r : Ctx.perf_report) -> Format.printf "%s: %s@." c.id r.Ctx.perf_label)
          redundant;
      Alcotest.(check int) (c.id ^ " redundant flushes") 0 (List.length redundant))
    [ List.hd (Recipe.Workloads.fixed_cases ()) ]

(* --- schedule fuzzing --------------------------------------------------------- *)

(* An unsynchronised counter race: t0 does counter+=1, t1 does counter*=2
   with plain loads/stores. Different schedules yield different finals. *)
let race_final seed =
  let config =
    { no_failures with Config.schedule_seed = seed; Config.evict_policy = Config.Buffered }
  in
  let final = ref (-1) in
  let pre ctx =
    Ctx.store64 ctx ~label:"init" base 1;
    Ctx.mfence ctx ~label:"publish" ();
    Ctx.parallel ctx
      [
        (fun ctx ->
          let v = Ctx.load64 ctx ~label:"t0 read" base in
          Ctx.store64 ctx ~label:"t0 write" base (v + 1);
          Ctx.mfence ctx ~label:"t0 fence" ());
        (fun ctx ->
          let v = Ctx.load64 ctx ~label:"t1 read" base in
          Ctx.store64 ctx ~label:"t1 write" base (v * 2);
          Ctx.mfence ctx ~label:"t1 fence" ());
      ];
    Ctx.mfence ctx ~label:"join" ();
    final := Ctx.load64 ctx ~label:"final" base
  in
  ignore (run_one ~config pre);
  !final

let test_fuzzing_finds_schedules () =
  let outcomes =
    List.sort_uniq compare (List.map (fun s -> race_final (Some s)) (List.init 16 succ))
  in
  Format.printf "race outcomes over 16 seeds: %s@."
    (String.concat ", " (List.map string_of_int outcomes));
  (* Correct serialisations give 3 [increment first] or 4 [double first];
     racy interleavings give 2 (lost increment). Fuzzing must find at least
     two distinct behaviours, including a racy one. *)
  Alcotest.(check bool) "several schedules observed" true (List.length outcomes >= 2);
  Alcotest.(check bool) "a racy outcome observed" true (List.mem 2 outcomes)

let test_fuzzing_deterministic_per_seed () =
  Alcotest.(check int) "same seed, same schedule" (race_final (Some 7)) (race_final (Some 7));
  Alcotest.(check int) "round robin stable" (race_final None) (race_final None)

let test_fuzzing_composes_with_crash_exploration () =
  (* A seeded schedule under failure injection still explores exhaustively
     and deterministically. *)
  let config = { Config.default with Config.schedule_seed = Some 5 } in
  let pre ctx =
    Ctx.parallel ctx
      [
        (fun ctx ->
          Ctx.store64 ctx ~label:"t0 w" base 1;
          Ctx.clflush ctx ~label:"t0 f" base 8);
        (fun ctx ->
          Ctx.store64 ctx ~label:"t1 w" (base + 64) 2;
          Ctx.clflush ctx ~label:"t1 f" (base + 64) 8);
      ]
  in
  let post ctx =
    ignore (Ctx.load64 ctx ~label:"r0" base);
    ignore (Ctx.load64 ctx ~label:"r1" (base + 64))
  in
  let run () = Explorer.run ~config (Explorer.scenario ~name:"fz" ~pre ~post) in
  let a = run () and b = run () in
  Alcotest.(check bool) "clean" false (Explorer.found_bug a);
  Alcotest.(check bool) "exhausted" true a.Explorer.stats.Stats.exhausted;
  Alcotest.(check int) "deterministic executions" a.Explorer.stats.Stats.executions
    b.Explorer.stats.Stats.executions

let () =
  Alcotest.run "extensions"
    [
      ( "perf",
        [
          Alcotest.test_case "redundant flush" `Quick test_redundant_flush_detected;
          Alcotest.test_case "clean-line flush" `Quick test_flush_of_clean_line;
          Alcotest.test_case "redundant fence" `Quick test_redundant_fence_detected;
          Alcotest.test_case "clean protocol silent" `Quick test_clean_protocol_no_reports;
          Alcotest.test_case "report_perf off" `Quick test_report_perf_off;
          Alcotest.test_case "resets at crash" `Quick test_perf_resets_at_crash;
          Alcotest.test_case "fixed structures clean" `Quick test_fixed_structures_are_flush_clean;
        ] );
      ( "fuzzing",
        [
          Alcotest.test_case "finds schedules" `Quick test_fuzzing_finds_schedules;
          Alcotest.test_case "deterministic per seed" `Quick test_fuzzing_deterministic_per_seed;
          Alcotest.test_case "composes with crashes" `Quick test_fuzzing_composes_with_crash_exploration;
        ] );
    ]
