(* The replay DFS: completeness, ordering, truncation, divergence. *)
open Jaaru

(* Drive a "program" that consumes a fixed shape of decisions and record
   every complete path. *)
let enumerate shape =
  let choice = Choice.create () in
  let paths = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let path = List.map (fun n -> Choice.choose choice Choice.Read_from n) shape in
    paths := path :: !paths;
    if not (Choice.advance choice) then stop := true
  done;
  List.rev !paths

let test_exhaustive_product () =
  let paths = enumerate [ 2; 3 ] in
  Alcotest.(check int) "count" 6 (List.length paths);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare paths) = 6);
  Alcotest.(check (list (list int))) "first is all-defaults" [ [ 0; 0 ] ]
    [ List.hd paths ]

let test_single_alternative_no_branch () =
  let paths = enumerate [ 1; 1; 1 ] in
  Alcotest.(check int) "one path" 1 (List.length paths)

let test_dependent_tree () =
  (* The second decision exists only on one branch of the first: the DFS
     must truncate the record correctly. *)
  let choice = Choice.create () in
  let paths = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let a = Choice.choose choice Choice.Failure_point 2 in
    let path = if a = 0 then [ a ] else [ a; Choice.choose choice Choice.Read_from 3 ] in
    paths := path :: !paths;
    if not (Choice.advance choice) then stop := true
  done;
  let paths = List.rev !paths in
  Alcotest.(check (list (list int)))
    "four leaves" [ [ 0 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ] paths

let test_early_termination_truncates () =
  (* A replay may end (e.g. a bug) before consuming recorded decisions; the
     stale suffix must be dropped. *)
  let choice = Choice.create () in
  let visits = ref [] in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let a = Choice.choose choice Choice.Read_from 2 in
    (* On branch a=0 consume a second decision; on a=1 "crash" early. *)
    let b = if a = 0 then Some (Choice.choose choice Choice.Read_from 2) else None in
    visits := (a, b) :: !visits;
    if not (Choice.advance choice) then stop := true
  done;
  Alcotest.(check (list (pair int (option int))))
    "paths" [ (0, Some 0); (0, Some 1); (1, None) ] (List.rev !visits)

let test_divergence_detection () =
  let choice = Choice.create () in
  Choice.begin_replay choice;
  ignore (Choice.choose choice Choice.Read_from 2);
  ignore (Choice.advance choice);
  Choice.begin_replay choice;
  (* Same position now claims a different arity: the program under test is
     nondeterministic. *)
  (match Choice.choose choice Choice.Read_from 3 with
  | _ -> Alcotest.fail "expected Divergence"
  | exception Choice.Divergence _ -> ());
  (* Kind mismatches too. *)
  let choice = Choice.create () in
  Choice.begin_replay choice;
  ignore (Choice.choose choice Choice.Read_from 2);
  ignore (Choice.advance choice);
  Choice.begin_replay choice;
  match Choice.choose choice Choice.Failure_point 2 with
  | _ -> Alcotest.fail "expected Divergence on kind"
  | exception Choice.Divergence _ -> ()

let test_created_counters () =
  let choice = Choice.create () in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    ignore (Choice.choose choice Choice.Failure_point 2);
    ignore (Choice.choose choice Choice.Read_from 2);
    if not (Choice.advance choice) then stop := true
  done;
  Alcotest.(check int) "fp decisions" 1 (Choice.created choice Choice.Failure_point);
  (* The rf decision is re-created on the second fp branch. *)
  Alcotest.(check int) "rf decisions" 2 (Choice.created choice Choice.Read_from)

let test_invalid_arity () =
  let choice = Choice.create () in
  Choice.begin_replay choice;
  Alcotest.check_raises "zero alternatives" (Invalid_argument "Choice.choose: no alternatives")
    (fun () -> ignore (Choice.choose choice Choice.Read_from 0))

let prop_dfs_visits_full_product =
  QCheck.Test.make ~name:"DFS visits the full cartesian product" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 5) (int_range 1 4))
    (fun shape ->
      let paths = enumerate shape in
      let expected = List.fold_left (fun acc n -> acc * n) 1 shape in
      List.length paths = expected
      && List.length (List.sort_uniq compare paths) = expected)

let () =
  Alcotest.run "choice"
    [
      ( "dfs",
        [
          Alcotest.test_case "exhaustive product" `Quick test_exhaustive_product;
          Alcotest.test_case "single alternative" `Quick test_single_alternative_no_branch;
          Alcotest.test_case "dependent tree" `Quick test_dependent_tree;
          Alcotest.test_case "early termination" `Quick test_early_termination_truncates;
          Alcotest.test_case "divergence" `Quick test_divergence_detection;
          Alcotest.test_case "created counters" `Quick test_created_counters;
          Alcotest.test_case "invalid arity" `Quick test_invalid_arity;
          QCheck_alcotest.to_alcotest prop_dfs_visits_full_product;
        ] );
    ]
