(* Checker-context behaviour: oracles, RMWs, threads, eviction policies,
   multi-failure scenarios. *)
open Jaaru

let no_failures = { Config.default with Config.max_failures = 0 }
let base = 0x1000

let run_one ?(config = no_failures) body =
  Explorer.run ~config (Explorer.scenario ~name:"t" ~pre:body ~post:(fun _ -> ()))

let kind_of o =
  match o.Explorer.bugs with [] -> None | b :: _ -> Some b.Bug.kind

(* --- bug oracles -------------------------------------------------------- *)

let test_illegal_store_low () =
  match kind_of (run_one (fun ctx -> Ctx.store64 ctx 0x10 1)) with
  | Some (Bug.Illegal_access { op = "store"; addr = 0x10; width = 8 }) -> ()
  | _ -> Alcotest.fail "expected illegal store"

let test_illegal_load_high () =
  let config = no_failures in
  let limit = config.Config.region_base + config.Config.region_size in
  match kind_of (run_one (fun ctx -> ignore (Ctx.load8 ctx limit))) with
  | Some (Bug.Illegal_access { op = "load"; width = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected illegal load"

let test_access_straddling_limit () =
  let config = no_failures in
  let limit = config.Config.region_base + config.Config.region_size in
  match kind_of (run_one (fun ctx -> Ctx.store64 ctx (limit - 4) 1)) with
  | Some (Bug.Illegal_access _) -> ()
  | _ -> Alcotest.fail "straddling access must be illegal"

let test_infinite_loop_detected () =
  let config = { no_failures with Config.max_steps = 1000 } in
  match kind_of (run_one ~config (fun ctx ->
      while true do Ctx.progress ctx () done)) with
  | Some (Bug.Infinite_loop _) -> ()
  | _ -> Alcotest.fail "expected loop detection"

let test_program_exception_captured () =
  match kind_of (run_one (fun _ -> failwith "boom")) with
  | Some (Bug.Program_exception _) -> ()
  | _ -> Alcotest.fail "expected captured exception"

let test_assertions () =
  (match kind_of (run_one (fun ctx -> Ctx.check ctx false "nope")) with
  | Some (Bug.Assertion_failure "nope") -> ()
  | _ -> Alcotest.fail "expected assertion");
  match kind_of (run_one (fun ctx -> Ctx.check ctx true "ok")) with
  | None -> ()
  | Some _ -> Alcotest.fail "true assertion must not fire"

(* --- loads, stores, widths ------------------------------------------------ *)

let test_width_roundtrips () =
  let o =
    run_one (fun ctx ->
        Ctx.store64 ctx base 0x0102030405060708;
        Ctx.check ctx (Ctx.load64 ctx base = 0x0102030405060708) "64";
        Ctx.check ctx (Ctx.load32 ctx base = 0x05060708) "low 32";
        Ctx.check ctx (Ctx.load32 ctx (base + 4) = 0x01020304) "high 32";
        Ctx.check ctx (Ctx.load16 ctx (base + 2) = 0x0506) "mid 16";
        Ctx.check ctx (Ctx.load8 ctx (base + 7) = 0x01) "top byte";
        Ctx.store8 ctx (base + 3) 0xff;
        Ctx.check ctx (Ctx.load64 ctx base = 0x01020304ff060708) "byte patch";
        Ctx.store16 ctx (base + 62) 0xabcd;
        Ctx.check ctx (Ctx.load16 ctx (base + 62) = 0xabcd) "line straddle")
  in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

let test_initial_zero () =
  let o = run_one (fun ctx -> Ctx.check ctx (Ctx.load64 ctx base = 0) "initial") in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

let test_memset_memcpy () =
  let o =
    run_one (fun ctx ->
        Ctx.memset ctx base 0xab 20;
        Ctx.check ctx (Ctx.load8 ctx base = 0xab) "first byte";
        Ctx.check ctx (Ctx.load8 ctx (base + 19) = 0xab) "last byte";
        Ctx.check ctx (Ctx.load8 ctx (base + 20) = 0) "one past untouched";
        Ctx.check ctx (Ctx.load64 ctx (base + 8) = -0x5454545454545455) "full word pattern" |> ignore;
        Ctx.memcpy ctx ~dst:(base + 64) ~src:base 20;
        Ctx.check ctx (Ctx.load8 ctx (base + 64) = 0xab) "copied first";
        Ctx.check ctx (Ctx.load8 ctx (base + 83) = 0xab) "copied last";
        Ctx.check ctx (Ctx.load8 ctx (base + 84) = 0) "copy bounded")
  in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

let test_memcpy_persist_durable () =
  (* After memcpy_persist the destination is pinned: recovery at the final
     crash must observe the copied bytes. *)
  let behaviors =
    let config = { Config.default with Config.max_failures = 0 } in
    Yat.Eager.jaaru_behaviors ~config
      ~pre:(fun ctx ->
        Ctx.store64 ctx ~label:"src" base 0x1122334455667788;
        Ctx.memcpy_persist ctx ~dst:(base + 64) ~src:base 8;
        Ctx.crash ctx)
      ~post:(fun ctx -> Printf.sprintf "%x" (Ctx.load64 ctx ~label:"r" (base + 64)))
      ()
  in
  Alcotest.(check (list string)) "destination durable" [ "1122334455667788" ] behaviors

let test_crash_inside_parallel () =
  (* Failure points fire inside fibers; each thread's committed line is
     independently durable. *)
  let pre ctx =
    Ctx.parallel ctx
      [
        (fun ctx ->
          Ctx.store64 ctx ~label:"t0 w" base 1;
          Ctx.clflush ctx ~label:"t0 f" base 8;
          Ctx.sfence ctx ~label:"t0 s" ());
        (fun ctx ->
          Ctx.store64 ctx ~label:"t1 w" (base + 64) 2;
          Ctx.clflush ctx ~label:"t1 f" (base + 64) 8;
          Ctx.sfence ctx ~label:"t1 s" ());
      ]
  in
  let seen = ref [] in
  let post ctx =
    let a = Ctx.load64 ctx ~label:"r0" base in
    let b = Ctx.load64 ctx ~label:"r1" (base + 64) in
    if not (List.mem (a, b) !seen) then seen := (a, b) :: !seen
  in
  let scn = Explorer.scenario ~name:"par-crash" ~pre ~post in
  let o = Explorer.run scn in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted;
  (* Under the fixed round-robin schedule thread 0's flush precedes thread
     1's store, so (0,2) is unreachable — Jaaru explores crash states
     exhaustively but schedules are fixed per run (paper §4, Discussion). *)
  List.iter
    (fun st -> Alcotest.(check bool) "round-robin state" true (List.mem st !seen))
    [ (0, 0); (1, 0); (1, 2) ];
  Alcotest.(check bool) "(0,2) needs another schedule" false (List.mem (0, 2) !seen);
  (* Schedule fuzzing reaches the fourth combination. *)
  List.iter
    (fun seed ->
      let config = { Config.default with Config.schedule_seed = Some seed } in
      ignore (Explorer.run ~config scn))
    (List.init 10 succ);
  Alcotest.(check bool) "(0,2) found by fuzzing" true (List.mem (0, 2) !seen)

(* --- locked RMW ------------------------------------------------------------ *)

let test_rmw_semantics () =
  let o =
    run_one (fun ctx ->
        Ctx.check ctx (Ctx.cas64 ctx base ~expected:0 ~desired:5) "cas on zero";
        Ctx.check ctx (not (Ctx.cas64 ctx base ~expected:0 ~desired:9)) "cas fails";
        Ctx.check ctx (Ctx.load64 ctx base = 5) "cas stored";
        Ctx.check ctx (Ctx.xchg64 ctx base 7 = 5) "xchg returns old";
        Ctx.check ctx (Ctx.fetch_add64 ctx base 10 = 7) "faa returns old";
        Ctx.check ctx (Ctx.load64 ctx base = 17) "faa added")
  in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

(* --- threads ---------------------------------------------------------------- *)

let test_parallel_tso_visibility () =
  (* Buffered policy: buffered stores are invisible to the sibling thread
     but visible to their own thread via bypass. *)
  let config = { no_failures with Config.evict_policy = Config.Buffered } in
  let o =
    run_one ~config (fun ctx ->
        Ctx.parallel ctx
          [
            (fun ctx ->
              Ctx.store64 ctx ~label:"t0 w" base 1;
              Ctx.check ctx (Ctx.load64 ctx ~label:"t0 own" base = 1) "own bypass");
            (fun ctx ->
              Ctx.store64 ctx ~label:"t1 w" (base + 64) 2;
              Ctx.check ctx (Ctx.load64 ctx ~label:"t1 own" (base + 64) = 2) "own bypass t1");
          ])
  in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

let test_parallel_fence_publishes () =
  let config = { no_failures with Config.evict_policy = Config.Buffered } in
  let saw = ref (-1) in
  let o =
    run_one ~config (fun ctx ->
        Ctx.parallel ctx
          [
            (fun ctx ->
              Ctx.store64 ctx ~label:"w" base 42;
              Ctx.mfence ctx ~label:"publish" ());
            (fun ctx ->
              (* Round-robin guarantees the fence ran before this load's turn
                 comes a second time. *)
              ignore (Ctx.load64 ctx ~label:"first" base);
              saw := Ctx.load64 ctx ~label:"second" base);
          ])
  in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check int) "published" 42 !saw

let test_parallel_exception_unwinds () =
  match kind_of (run_one (fun ctx ->
      Ctx.parallel ctx [ (fun ctx -> Ctx.abort ctx "in fiber") ])) with
  | Some (Bug.Assertion_failure "in fiber") -> ()
  | _ -> Alcotest.fail "fiber bug must surface"

let test_many_yields_stack_safe () =
  let o =
    run_one (fun ctx ->
        let config = Ctx.config ctx in
        ignore config;
        Ctx.parallel ctx
          [
            (fun _ -> for _ = 1 to 50_000 do Scheduler.yield () done);
            (fun _ -> for _ = 1 to 50_000 do Scheduler.yield () done);
          ])
  in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o)

(* --- eviction policies and crashes ------------------------------------------- *)

let test_buffered_store_lost_at_crash () =
  (* Under the Buffered policy a store still in the store buffer at the
     failure is gone: recovery can only read 0. Under Eager it reached the
     cache, so recovery may read either value. *)
  let behaviors policy =
    let config = { Config.default with Config.evict_policy = policy } in
    let pre ctx =
      Ctx.store64 ctx ~label:"w" base 7;
      (* The flush provides the failure point; the store may or may not have
         drained by then. *)
      Ctx.clflush ctx ~label:"fl other" (base + 64) 8
    in
    let post ctx = Printf.sprintf "x=%d" (Ctx.load64 ctx ~label:"r" base) in
    Yat.Eager.jaaru_behaviors ~config ~pre ~post ()
  in
  Alcotest.(check (list string)) "eager policy sees both" [ "x=0"; "x=7" ]
    (behaviors Config.Eager);
  (* Buffered: the drain choice at the crash explores both 0-drained and
     1-drained prefixes, so both behaviours appear here too — but through
     the Drain decision, not the writeback interval. *)
  Alcotest.(check (list string)) "buffered sees both via drain choice" [ "x=0"; "x=7" ]
    (behaviors Config.Buffered)

let test_multi_failure_depth () =
  (* With max_failures = 2 the recovery itself crashes and recovers. *)
  let config = { Config.default with Config.max_failures = 2 } in
  let max_depth = ref 0 in
  let pre ctx =
    Ctx.store64 ctx ~label:"w" base 1;
    Ctx.clflush ctx ~label:"fl" base 8
  in
  let post ctx =
    if Ctx.failures ctx > !max_depth then max_depth := Ctx.failures ctx;
    let v = Ctx.load64 ctx ~label:"r" base in
    Ctx.store64 ctx ~label:"w2" base (v + 10);
    Ctx.clflush ctx ~label:"fl2" base 8
  in
  let o = Explorer.run ~config (Explorer.scenario ~name:"mf" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check int) "second failure explored" 2 !max_depth;
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

let test_multi_failure_reads_previous_recovery () =
  (* A value written by the first recovery must be readable by the second
     when it was flushed, exercising ReadPreFailure across three
     executions. *)
  let config = { Config.default with Config.max_failures = 2 } in
  let ok = ref true in
  let pre ctx =
    Ctx.store64 ctx ~label:"gen0" base 1;
    Ctx.clflush ctx ~label:"fl0" base 8
  in
  let post ctx =
    let v = Ctx.load64 ctx ~label:"r" base in
    (* Every observable value is the initial zero or odd (1, 3, 7, ...):
       each generation stores 2v+1. *)
    if not (v = 0 || v land 1 = 1) then ok := false;
    Ctx.store64 ctx ~label:"bump" base ((2 * v) + 1);
    Ctx.clflush ctx ~label:"fl" base 8
  in
  let o = Explorer.run ~config (Explorer.scenario ~name:"mf2" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "all observed values odd" true !ok

(* --- misc ---------------------------------------------------------------------- *)

let test_trace_recorded () =
  let config = { Config.default with Config.stop_at_first_bug = true } in
  let pre ctx =
    Ctx.store64 ctx ~label:"the store" base 1;
    Ctx.clflush ctx ~label:"the flush" base 8
  in
  let post ctx = ignore (Ctx.load64 ctx ~label:"the load" 0x0) in
  let o = Explorer.run ~config (Explorer.scenario ~name:"tr" ~pre ~post) in
  match o.Explorer.bugs with
  | [ b ] ->
      Alcotest.(check bool) "trace non-empty" true (b.Bug.trace <> []);
      Alcotest.(check bool) "trace mentions the store" true
        (List.exists (fun e -> String.length e > 0) b.Bug.trace)
  | _ -> Alcotest.fail "expected exactly one bug"

let test_in_recovery_flag () =
  let saw = ref [] in
  let pre ctx =
    saw := Ctx.in_recovery ctx :: !saw;
    Ctx.store64 ctx ~label:"w" base 1;
    Ctx.clflush ctx ~label:"fl" base 8
  in
  let post ctx = saw := Ctx.in_recovery ctx :: !saw in
  ignore (Explorer.run (Explorer.scenario ~name:"rec" ~pre ~post));
  Alcotest.(check bool) "pre says false" true (List.mem false !saw);
  Alcotest.(check bool) "post says true" true (List.mem true !saw)

let () =
  Alcotest.run "ctx"
    [
      ( "oracles",
        [
          Alcotest.test_case "illegal store" `Quick test_illegal_store_low;
          Alcotest.test_case "illegal load" `Quick test_illegal_load_high;
          Alcotest.test_case "straddling access" `Quick test_access_straddling_limit;
          Alcotest.test_case "infinite loop" `Quick test_infinite_loop_detected;
          Alcotest.test_case "program exception" `Quick test_program_exception_captured;
          Alcotest.test_case "assertions" `Quick test_assertions;
        ] );
      ( "memory",
        [
          Alcotest.test_case "width roundtrips" `Quick test_width_roundtrips;
          Alcotest.test_case "initial zero" `Quick test_initial_zero;
          Alcotest.test_case "rmw" `Quick test_rmw_semantics;
          Alcotest.test_case "memset/memcpy" `Quick test_memset_memcpy;
          Alcotest.test_case "memcpy_persist durable" `Quick test_memcpy_persist_durable;
          Alcotest.test_case "crash inside parallel" `Quick test_crash_inside_parallel;
        ] );
      ( "threads",
        [
          Alcotest.test_case "tso visibility" `Quick test_parallel_tso_visibility;
          Alcotest.test_case "fence publishes" `Quick test_parallel_fence_publishes;
          Alcotest.test_case "exception unwinds" `Quick test_parallel_exception_unwinds;
          Alcotest.test_case "stack safety" `Quick test_many_yields_stack_safe;
        ] );
      ( "failures",
        [
          Alcotest.test_case "buffered store lost" `Quick test_buffered_store_lost_at_crash;
          Alcotest.test_case "multi-failure depth" `Quick test_multi_failure_depth;
          Alcotest.test_case "cross-recovery reads" `Quick test_multi_failure_reads_previous_recovery;
        ] );
      ( "misc",
        [
          Alcotest.test_case "trace recorded" `Quick test_trace_recorded;
          Alcotest.test_case "in_recovery" `Quick test_in_recovery_flag;
        ] );
    ]
