(* Focused unit tests for the RECIPE structures' mechanics: splits,
   directory doubling, node growth, consolidation, layer linking. *)
open Jaaru

let no_failures = { Config.default with Config.max_failures = 0 }

let run_functional ?(config = no_failures) name body =
  let o = Explorer.run ~config (Explorer.scenario ~name ~pre:body ~post:(fun _ -> ())) in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) (name ^ ": no bugs") false (Explorer.found_bug o)

let exhaustive_clean name scn config =
  let o = Explorer.run ~config scn in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) (name ^ " clean") false (Explorer.found_bug o);
  Alcotest.(check bool) (name ^ " exhausted") true o.Explorer.stats.Stats.exhausted

(* --- region allocator --------------------------------------------------------- *)

let test_region_alloc_basics () =
  run_functional "ralloc" (fun ctx ->
      let region = Ctx.region ctx in
      let base = region.Pmem.Region.base in
      let a = Recipe.Region_alloc.create_or_open ctx ~base ~limit:(Pmem.Region.limit region) in
      let p1 = Recipe.Region_alloc.alloc a 10 in
      let p2 = Recipe.Region_alloc.alloc a 100 in
      Ctx.check ctx (p1 = base + 128) "first object after metadata";
      Ctx.check ctx (p2 >= p1 + 16) "aligned bump";
      Ctx.check ctx (Recipe.Region_alloc.contains_object a p1) "contains p1";
      Ctx.check ctx (not (Recipe.Region_alloc.contains_object a (p2 + 256))) "beyond bump";
      (* Reopen: the committed bump survives. *)
      let a' = Recipe.Region_alloc.create_or_open ctx ~base ~limit:(Pmem.Region.limit region) in
      let p3 = Recipe.Region_alloc.alloc a' 8 in
      Ctx.check ctx (p3 >= p2 + 112) "bump persisted across reopen")

let test_region_alloc_poisons () =
  run_functional "ralloc-poison" (fun ctx ->
      let region = Ctx.region ctx in
      let base = region.Pmem.Region.base in
      let a = Recipe.Region_alloc.create_or_open ctx ~base ~limit:(Pmem.Region.limit region) in
      let p = Recipe.Region_alloc.alloc a 32 in
      Ctx.check ctx (Ctx.load64 ctx p = 0x6b6b6b6b6b6b) "fresh memory is dirty")

(* --- CCEH ---------------------------------------------------------------------- *)

let test_cceh_directory_doubling () =
  run_functional "cceh-double" (fun ctx ->
      let t = Recipe.Cceh.create_or_open ctx in
      Ctx.check ctx (Recipe.Cceh.global_depth t = 1) "initial depth";
      (* Insert enough keys to force splits and doubling. *)
      for k = 1 to 60 do
        Recipe.Cceh.insert t k (k * 2)
      done;
      Ctx.check ctx (Recipe.Cceh.global_depth t > 1) "directory doubled";
      Recipe.Cceh.check t;
      for k = 1 to 60 do
        Ctx.check ctx (Recipe.Cceh.lookup t k = Some (k * 2)) "survives splits"
      done)

let test_cceh_split_preserves_under_crash () =
  (* A workload sized to trigger at least one split, checked exhaustively:
     committed keys never disappear when the crash happens after their
     insert's final fence. The structural check runs in every state. *)
  let pre ctx =
    let t = Recipe.Cceh.create_or_open ctx in
    for k = 1 to 10 do
      Recipe.Cceh.insert t k k
    done
  in
  let post ctx =
    let t = Recipe.Cceh.create_or_open ctx in
    Recipe.Cceh.check t
  in
  let config = { Config.default with Config.max_steps = 100_000 } in
  let o = Explorer.run ~config (Explorer.scenario ~name:"cceh-split-crash" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

(* --- FAST_FAIR ------------------------------------------------------------------ *)

let test_fast_fair_split_chain () =
  run_functional "ff-split" (fun ctx ->
      let t = Recipe.Fast_fair.create_or_open ctx in
      (* 30 keys with fanout 8 forces leaf and root splits. *)
      for k = 1 to 30 do
        Recipe.Fast_fair.insert t k (k * 5)
      done;
      Recipe.Fast_fair.check t;
      Ctx.check ctx
        (List.map fst (Recipe.Fast_fair.entries t) = List.init 30 succ)
        "leaf chain sorted and complete";
      for k = 1 to 30 do
        Ctx.check ctx (Recipe.Fast_fair.lookup t k = Some (k * 5)) "lookup after splits"
      done)

let test_fast_fair_descending_inserts () =
  run_functional "ff-descending" (fun ctx ->
      let t = Recipe.Fast_fair.create_or_open ctx in
      for k = 30 downto 1 do
        Recipe.Fast_fair.insert t k k
      done;
      Recipe.Fast_fair.check t;
      Ctx.check ctx
        (List.map fst (Recipe.Fast_fair.entries t) = List.init 30 succ)
        "sorted after descending inserts")

let test_fast_fair_delete () =
  run_functional "ff-delete" (fun ctx ->
      let t = Recipe.Fast_fair.create_or_open ctx in
      for k = 1 to 20 do
        Recipe.Fast_fair.insert t k k
      done;
      Recipe.Fast_fair.remove t 7;
      Recipe.Fast_fair.remove t 13;
      Recipe.Fast_fair.remove t 99 (* absent: no-op *);
      Recipe.Fast_fair.check t;
      Ctx.check ctx (Recipe.Fast_fair.lookup t 7 = None) "deleted 7";
      Ctx.check ctx (Recipe.Fast_fair.lookup t 13 = None) "deleted 13";
      Ctx.check ctx (Recipe.Fast_fair.lookup t 8 = Some 8) "neighbour intact";
      Ctx.check ctx
        (List.map fst (Recipe.Fast_fair.entries t)
        = List.filter (fun k -> k <> 7 && k <> 13) (List.init 20 succ))
        "entries after delete")

let test_ff_delete_window_crash () =
  let pre ctx =
    let t = Recipe.Fast_fair.create_or_open ctx in
    for k = 1 to 7 do
      Recipe.Fast_fair.insert t k k
    done;
    Recipe.Fast_fair.remove t 3;
    Recipe.Fast_fair.remove t 6
  in
  let post ctx =
    let t = Recipe.Fast_fair.create_or_open ctx in
    Recipe.Fast_fair.check t;
    (* Deletion is not atomic across the whole shift, but any key that is
       still present carries its correct value — nothing tears. *)
    List.iter
      (fun k ->
        match Recipe.Fast_fair.lookup t k with
        | None -> ()
        | Some v ->
            Ctx.check ctx (v = k) (Printf.sprintf "key %d present with a wrong value" k))
      (List.init 7 succ)
  in
  exhaustive_clean "ff-delete-window"
    (Explorer.scenario ~name:"ffd" ~pre ~post)
    { Config.default with Config.max_steps = 100_000 }

let test_fast_fair_update_atomic () =
  run_functional "ff-update" (fun ctx ->
      let t = Recipe.Fast_fair.create_or_open ctx in
      Recipe.Fast_fair.insert t 5 50;
      Recipe.Fast_fair.insert t 5 55;
      Ctx.check ctx (Recipe.Fast_fair.lookup t 5 = Some 55) "updated";
      Ctx.check ctx (List.length (Recipe.Fast_fair.entries t) = 1) "no duplicate")

(* --- P-ART ----------------------------------------------------------------------- *)

let test_p_art_grow_chain () =
  run_functional "art-grow" (fun ctx ->
      let t = Recipe.P_art.create_or_open ctx in
      (* >16 distinct final bytes force Node4 -> Node16 -> Node256 growth. *)
      for k = 1 to 40 do
        Recipe.P_art.insert t k k
      done;
      Recipe.P_art.check t;
      for k = 1 to 40 do
        Ctx.check ctx (Recipe.P_art.lookup t k = Some k) "survives grows"
      done)

let test_p_art_spine_keys () =
  run_functional "art-spine" (fun ctx ->
      let t = Recipe.P_art.create_or_open ctx in
      (* Keys sharing long prefixes exercise multi-level spines. *)
      let ks = [ 0x01010101; 0x01010102; 0x01010201; 0x01020101; 0x02010101 ] in
      List.iteri (fun i k -> Recipe.P_art.insert t k (i + 1)) ks;
      Recipe.P_art.check t;
      List.iteri
        (fun i k -> Ctx.check ctx (Recipe.P_art.lookup t k = Some (i + 1)) "spine lookup")
        ks;
      Ctx.check ctx (Recipe.P_art.lookup t 0x01010103 = None) "absent sibling")

let test_p_art_remove_and_reuse () =
  run_functional "art-remove" (fun ctx ->
      let t = Recipe.P_art.create_or_open ctx in
      for k = 1 to 10 do
        Recipe.P_art.insert t k k
      done;
      Recipe.P_art.remove t 5;
      Recipe.P_art.remove t 99 (* absent: no-op *);
      Recipe.P_art.check t;
      Ctx.check ctx (Recipe.P_art.lookup t 5 = None) "removed";
      Ctx.check ctx (Recipe.P_art.lookup t 4 = Some 4) "neighbour intact";
      (* Reinsertion reuses the tombstone. *)
      Recipe.P_art.insert t 5 555;
      Ctx.check ctx (Recipe.P_art.lookup t 5 = Some 555) "tombstone reused";
      Recipe.P_art.check t;
      (* Removal inside a grown Node256 clears the direct slot. *)
      for k = 11 to 30 do
        Recipe.P_art.insert t k k
      done;
      Recipe.P_art.remove t 20;
      Ctx.check ctx (Recipe.P_art.lookup t 20 = None) "removed from node256";
      Recipe.P_art.check t)

let test_p_art_remove_window_crash () =
  let pre ctx =
    let t = Recipe.P_art.create_or_open ctx in
    for k = 1 to 5 do
      Recipe.P_art.insert t k k
    done;
    Recipe.P_art.remove t 2;
    Recipe.P_art.insert t 2 222
  in
  let post ctx =
    let t = Recipe.P_art.create_or_open ctx in
    Recipe.P_art.check t;
    match Recipe.P_art.lookup t 2 with
    | None -> ()
    | Some v -> Ctx.check ctx (v = 2 || v = 222) "key 2 never tears"
  in
  exhaustive_clean "art-remove-window"
    (Explorer.scenario ~name:"artrm" ~pre ~post)
    { Config.default with Config.max_steps = 100_000 }

(* --- P-BwTree ---------------------------------------------------------------------- *)

let test_bwtree_consolidation () =
  run_functional "bw-consolidate" (fun ctx ->
      let t = Recipe.P_bwtree.create_or_open ctx in
      Ctx.check ctx (Recipe.P_bwtree.gc_pending t = 0) "no gc initially";
      for k = 1 to 12 do
        Recipe.P_bwtree.insert t k (k * 3)
      done;
      Ctx.check ctx (Recipe.P_bwtree.gc_pending t >= 2) "chains retired";
      Recipe.P_bwtree.check t;
      for k = 1 to 12 do
        Ctx.check ctx (Recipe.P_bwtree.lookup t k = Some (k * 3)) "survives consolidation"
      done)

let test_bwtree_delta_shadows_base () =
  run_functional "bw-shadow" (fun ctx ->
      let t = Recipe.P_bwtree.create_or_open ctx in
      for k = 1 to 6 do
        Recipe.P_bwtree.insert t k k
      done;
      (* k=3 now lives in the base; a fresh delta must shadow it. *)
      Recipe.P_bwtree.insert t 3 333;
      Ctx.check ctx (Recipe.P_bwtree.lookup t 3 = Some 333) "delta shadows base";
      for _ = 1 to 6 do
        Recipe.P_bwtree.insert t 9 9
      done;
      (* Consolidations preserve the newest binding. *)
      Ctx.check ctx (Recipe.P_bwtree.lookup t 3 = Some 333) "shadow survives consolidation")

let test_bwtree_delete_delta () =
  run_functional "bw-delete" (fun ctx ->
      let t = Recipe.P_bwtree.create_or_open ctx in
      for k = 1 to 8 do
        Recipe.P_bwtree.insert t k k
      done;
      Recipe.P_bwtree.remove t 3;
      Ctx.check ctx (Recipe.P_bwtree.lookup t 3 = None) "delete delta hides base entry";
      Ctx.check ctx (Recipe.P_bwtree.lookup t 4 = Some 4) "neighbour intact";
      (* Consolidations drop deleted keys for good. *)
      for k = 10 to 20 do
        Recipe.P_bwtree.insert t k k
      done;
      Ctx.check ctx (Recipe.P_bwtree.lookup t 3 = None) "stays deleted after consolidation";
      Recipe.P_bwtree.remove t 99 (* absent: delete delta is harmless *);
      Ctx.check ctx (Recipe.P_bwtree.lookup t 99 = None) "absent key";
      Recipe.P_bwtree.insert t 3 333;
      Ctx.check ctx (Recipe.P_bwtree.lookup t 3 = Some 333) "reinsert shadows delete";
      Recipe.P_bwtree.check t)

(* --- P-CLHT ------------------------------------------------------------------------- *)

let test_clht_overflow_chains () =
  run_functional "clht-overflow" (fun ctx ->
      (* One bucket (nbuckets = 1) with 3 slots: the 4th key must chain. *)
      let t = Recipe.P_clht.create_or_open ~nbuckets:1 ctx in
      for k = 1 to 7 do
        Recipe.P_clht.insert t k (k * 9)
      done;
      Recipe.P_clht.check t;
      for k = 1 to 7 do
        Ctx.check ctx (Recipe.P_clht.lookup t k = Some (k * 9)) "chained lookup"
      done;
      Recipe.P_clht.remove t 5;
      Ctx.check ctx (Recipe.P_clht.lookup t 5 = None) "removed from chain";
      Recipe.P_clht.check t)

let test_clht_lock_cleared_after_ops () =
  run_functional "clht-locks" (fun ctx ->
      let t = Recipe.P_clht.create_or_open ~nbuckets:2 ctx in
      Recipe.P_clht.insert t 1 1;
      Recipe.P_clht.insert t 2 2;
      (* check validates every lock word is free. *)
      Recipe.P_clht.check t)

(* --- P-Masstree ----------------------------------------------------------------------- *)

let test_masstree_layers () =
  run_functional "mass-layers" (fun ctx ->
      let t = Recipe.P_masstree.create_or_open ctx in
      (* Same slice0, many slice1: one shared second layer. *)
      for s1 = 1 to 12 do
        Recipe.P_masstree.insert t ~slice0:7 ~slice1:s1 (s1 * 11)
      done;
      (* Distinct slice0s. *)
      for s0 = 1 to 5 do
        Recipe.P_masstree.insert t ~slice0:s0 ~slice1:1 (s0 * 100)
      done;
      Recipe.P_masstree.check t;
      for s1 = 1 to 12 do
        Ctx.check ctx
          (Recipe.P_masstree.lookup t ~slice0:7 ~slice1:s1 = Some (s1 * 11))
          "layer-1 chain lookup"
      done;
      Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:7 ~slice1:99 = None) "absent slice1";
      Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:99 ~slice1:1 = None) "absent slice0";
      Recipe.P_masstree.insert t ~slice0:7 ~slice1:3 999;
      Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:7 ~slice1:3 = Some 999) "update";
      Recipe.P_masstree.remove t ~slice0:7 ~slice1:3;
      Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:7 ~slice1:3 = None) "removed";
      Recipe.P_masstree.remove t ~slice0:99 ~slice1:1 (* absent: no-op *);
      Recipe.P_masstree.insert t ~slice0:7 ~slice1:3 77;
      Ctx.check ctx (Recipe.P_masstree.lookup t ~slice0:7 ~slice1:3 = Some 77)
        "tombstone revived in place";
      Recipe.P_masstree.check t)

(* --- crash-exhaustive spot checks on interesting windows ------------------------------- *)

let test_ff_split_window_crash () =
  (* Crash anywhere inside a leaf split: the sibling-link protocol plus
     reader-side chase/repair keep every key reachable. *)
  let pre ctx =
    let t = Recipe.Fast_fair.create_or_open ctx in
    for k = 1 to 9 do
      Recipe.Fast_fair.insert t k k
    done
  in
  let post ctx =
    let t = Recipe.Fast_fair.create_or_open ctx in
    Recipe.Fast_fair.check t;
    (* Committed keys readable: every key whose insert fully fenced before
       the crash window of the next op. Structural check covers the rest. *)
    ignore (Recipe.Fast_fair.lookup t 1)
  in
  exhaustive_clean "ff-split-window"
    (Explorer.scenario ~name:"ffw" ~pre ~post)
    { Config.default with Config.max_steps = 100_000 }

let test_bwtree_gc_window_crash () =
  let pre ctx =
    let t = Recipe.P_bwtree.create_or_open ctx in
    for k = 1 to 6 do
      Recipe.P_bwtree.insert t k k
    done
  in
  let post ctx =
    let t = Recipe.P_bwtree.create_or_open ctx in
    Recipe.P_bwtree.check t
  in
  exhaustive_clean "bw-gc-window"
    (Explorer.scenario ~name:"bww" ~pre ~post)
    { Config.default with Config.max_steps = 100_000 }

let () =
  Alcotest.run "recipe-units"
    [
      ( "region-alloc",
        [
          Alcotest.test_case "basics" `Quick test_region_alloc_basics;
          Alcotest.test_case "poison" `Quick test_region_alloc_poisons;
        ] );
      ( "cceh",
        [
          Alcotest.test_case "directory doubling" `Quick test_cceh_directory_doubling;
          Alcotest.test_case "split under crash" `Quick test_cceh_split_preserves_under_crash;
        ] );
      ( "fast-fair",
        [
          Alcotest.test_case "split chain" `Quick test_fast_fair_split_chain;
          Alcotest.test_case "descending inserts" `Quick test_fast_fair_descending_inserts;
          Alcotest.test_case "atomic update" `Quick test_fast_fair_update_atomic;
          Alcotest.test_case "delete" `Quick test_fast_fair_delete;
          Alcotest.test_case "split window crash" `Quick test_ff_split_window_crash;
          Alcotest.test_case "delete window crash" `Quick test_ff_delete_window_crash;
        ] );
      ( "p-art",
        [
          Alcotest.test_case "grow chain" `Quick test_p_art_grow_chain;
          Alcotest.test_case "spines" `Quick test_p_art_spine_keys;
          Alcotest.test_case "remove and reuse" `Quick test_p_art_remove_and_reuse;
          Alcotest.test_case "remove window crash" `Quick test_p_art_remove_window_crash;
        ] );
      ( "p-bwtree",
        [
          Alcotest.test_case "consolidation" `Quick test_bwtree_consolidation;
          Alcotest.test_case "delta shadows base" `Quick test_bwtree_delta_shadows_base;
          Alcotest.test_case "delete delta" `Quick test_bwtree_delete_delta;
          Alcotest.test_case "gc window crash" `Quick test_bwtree_gc_window_crash;
        ] );
      ( "p-clht",
        [
          Alcotest.test_case "overflow chains" `Quick test_clht_overflow_chains;
          Alcotest.test_case "locks cleared" `Quick test_clht_lock_cleared_after_ops;
        ] );
      ("p-masstree", [ Alcotest.test_case "layers" `Quick test_masstree_layers ]);
    ]
