(* Unit tests for execution records and the Fig. 9/10 read-from analysis. *)

let entry value seq = { Exec.Store_queue.value; seq; label = Printf.sprintf "s%d" seq }

let test_store_queue_basics () =
  let q = Exec.Store_queue.create () in
  Alcotest.(check bool) "empty" true (Exec.Store_queue.is_empty q);
  Exec.Store_queue.push q (entry 1 5);
  Exec.Store_queue.push q (entry 2 9);
  Exec.Store_queue.push q (entry 3 12);
  Alcotest.(check int) "length" 3 (Exec.Store_queue.length q);
  Alcotest.(check int) "first" 1 (Option.get (Exec.Store_queue.first q)).Exec.Store_queue.value;
  Alcotest.(check int) "last" 3 (Option.get (Exec.Store_queue.last q)).Exec.Store_queue.value;
  Alcotest.(check int) "get" 2 (Exec.Store_queue.get q 1).Exec.Store_queue.value;
  Alcotest.check_raises "non-monotone push"
    (Invalid_argument "Store_queue.push: sequence numbers must increase") (fun () ->
      Exec.Store_queue.push q (entry 4 12))

let test_next_seq_after () =
  let q = Exec.Store_queue.create () in
  List.iter (fun s -> Exec.Store_queue.push q (entry s s)) [ 5; 9; 12; 20 ];
  Alcotest.(check int) "before all" 5 (Exec.Store_queue.next_seq_after q 0);
  Alcotest.(check int) "at 5" 9 (Exec.Store_queue.next_seq_after q 5);
  Alcotest.(check int) "between" 12 (Exec.Store_queue.next_seq_after q 10);
  Alcotest.(check int) "at last" Pmem.Interval.infinity (Exec.Store_queue.next_seq_after q 20);
  Alcotest.(check int) "past" Pmem.Interval.infinity (Exec.Store_queue.next_seq_after q 99)

let prop_next_seq_after =
  QCheck.Test.make ~name:"next_seq_after = first strictly greater" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (int_range 1 100)) (int_range 0 110))
    (fun (seqs, s) ->
      let seqs = List.sort_uniq compare seqs in
      let q = Exec.Store_queue.create () in
      List.iter (fun x -> Exec.Store_queue.push q (entry x x)) seqs;
      let expected =
        match List.filter (fun x -> x > s) seqs with
        | [] -> Pmem.Interval.infinity
        | x :: _ -> x
      in
      Exec.Store_queue.next_seq_after q s = expected)

let test_exec_record () =
  let e = Exec.Exec_record.create ~id:1 in
  Alcotest.(check bool) "not initial" false (Exec.Exec_record.is_initial e);
  Exec.Exec_record.push_store e 100 ~value:7 ~seq:1 ~label:"a";
  Exec.Exec_record.push_store e 100 ~value:8 ~seq:2 ~label:"b";
  Exec.Exec_record.push_store e 200 ~value:9 ~seq:3 ~label:"c";
  Alcotest.(check int) "store count" 3 (Exec.Exec_record.store_count e);
  Alcotest.(check int) "queue length" 2
    (Exec.Store_queue.length (Exec.Exec_record.queue e 100));
  Alcotest.(check bool) "no queue for untouched" true
    (Exec.Exec_record.queue_opt e 300 = None);
  Alcotest.(check int) "unflushed before flush" 2 (Exec.Exec_record.unflushed_store_count e 100);
  Exec.Exec_record.flush_line e 100 ~seq:5;
  Alcotest.(check int) "unflushed after flush" 0 (Exec.Exec_record.unflushed_store_count e 100);
  Alcotest.(check int) "other line unaffected" 1 (Exec.Exec_record.unflushed_store_count e 200);
  Alcotest.(check int) "flush count" 1 (Exec.Exec_record.flush_count e);
  Alcotest.(check int) "written addrs" 2 (List.length (Exec.Exec_record.written_addrs e))

let test_exec_stack () =
  let s = Exec.Exec_stack.create () in
  Alcotest.(check int) "depth" 1 (Exec.Exec_stack.depth s);
  let top = Exec.Exec_stack.top s in
  Alcotest.(check int) "top id" 1 (Exec.Exec_record.id top);
  let below = Exec.Exec_stack.prev s top in
  Alcotest.(check bool) "initial below" true (Exec.Exec_record.is_initial below);
  let e2 = Exec.Exec_stack.push_fresh s in
  Alcotest.(check int) "new top id" 2 (Exec.Exec_record.id e2);
  Alcotest.(check int) "depth 2" 2 (Exec.Exec_stack.depth s);
  Alcotest.(check int) "prev of new top" 1 (Exec.Exec_record.id (Exec.Exec_stack.prev s e2));
  Alcotest.check_raises "prev of initial" (Invalid_argument "Exec_stack.prev: no predecessor")
    (fun () -> ignore (Exec.Exec_stack.prev s below))

(* --- read-from semantics ------------------------------------------------- *)

let source_values srcs = List.map (fun s -> s.Exec.Read_from.value) srcs

(* One failed execution over the initial image. *)
let stack_with_stores stores ~flush_at =
  let s = Exec.Exec_stack.create () in
  let e1 = Exec.Exec_stack.top s in
  List.iter (fun (addr, value, seq) -> Exec.Exec_record.push_store e1 addr ~value ~seq ~label:"w") stores;
  (match flush_at with
  | Some (addr, seq) -> Exec.Exec_record.flush_line e1 addr ~seq
  | None -> ());
  ignore (Exec.Exec_stack.push_fresh s);
  s

let test_rf_unflushed_line () =
  (* No flush: every store plus the initial zero is a candidate. *)
  let s = stack_with_stores [ (100, 1, 1); (100, 2, 2); (100, 3, 3) ] ~flush_at:None in
  let srcs = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "newest first, zero last" [ 3; 2; 1; 0 ] (source_values srcs)

let test_rf_flushed_line () =
  (* Flush after seq 2: the newest store at or before the flush is definite;
     later stores remain possible; the initial zero is not. *)
  let s = stack_with_stores [ (100, 1, 1); (100, 2, 2); (100, 3, 4) ] ~flush_at:(Some (100, 3)) in
  let srcs = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "window plus newest definite" [ 3; 2 ] (source_values srcs)

let test_rf_fully_flushed () =
  let s = stack_with_stores [ (100, 1, 1); (100, 2, 2) ] ~flush_at:(Some (100, 5)) in
  let srcs = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "single definite value" [ 2 ] (source_values srcs)

let test_rf_current_execution_wins () =
  let s = stack_with_stores [ (100, 1, 1) ] ~flush_at:None in
  let top = Exec.Exec_stack.top s in
  Exec.Exec_record.push_store top 100 ~value:9 ~seq:10 ~label:"recovery write";
  let srcs = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "own store shadows history" [ 9 ] (source_values srcs);
  Alcotest.(check bool) "no persistency constraint" true
    ((List.hd srcs).Exec.Read_from.seq = None)

let test_rf_sb_bypass_wins () =
  let s = stack_with_stores [ (100, 1, 1) ] ~flush_at:None in
  let srcs = Exec.Read_from.build_may_read_from ~sb_value:(7, "sb") s 100 in
  Alcotest.(check (list int)) "store buffer bypass" [ 7 ] (source_values srcs)

let test_do_read_refines_same_line () =
  (* The Fig. 2/3 scenario at byte granularity: after committing to the
     second store of a line, earlier stores to other bytes of that line are
     no longer candidates. *)
  let s =
    stack_with_stores
      [ (100, 1, 1) (* x=1 *); (108, 5, 2) (* y=5 *); (100, 2, 3) (* x=2 *) ]
      ~flush_at:None
  in
  let x_srcs = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "x candidates" [ 2; 1; 0 ] (source_values x_srcs);
  (* Commit x to the newest store (seq 3). *)
  Exec.Read_from.do_read s 100 (List.hd x_srcs);
  let y_srcs = Exec.Read_from.build_may_read_from s 108 in
  Alcotest.(check (list int)) "y pinned by x's refinement" [ 5 ] (source_values y_srcs)

let test_do_read_refines_upper_bound () =
  let s = stack_with_stores [ (100, 1, 1); (108, 5, 2); (100, 2, 3) ] ~flush_at:None in
  let x_srcs = Exec.Read_from.build_may_read_from s 100 in
  (* Commit x to the initial zero: the line was never written back after
     any store, so y must also read zero. *)
  let zero = List.nth x_srcs 2 in
  Alcotest.(check int) "zero candidate" 0 zero.Exec.Read_from.value;
  Exec.Read_from.do_read s 100 zero;
  let y_srcs = Exec.Read_from.build_may_read_from s 108 in
  Alcotest.(check (list int)) "y pinned to zero" [ 0 ] (source_values y_srcs)

let test_rf_two_failures_deep () =
  (* Two failed executions: a value flushed in the older one is readable
     when the newer one never persisted its overwrite. *)
  let s = Exec.Exec_stack.create () in
  let e1 = Exec.Exec_stack.top s in
  Exec.Exec_record.push_store e1 100 ~value:1 ~seq:1 ~label:"old";
  Exec.Exec_record.flush_line e1 100 ~seq:2;
  let e2 = Exec.Exec_stack.push_fresh s in
  Exec.Exec_record.push_store e2 100 ~value:2 ~seq:3 ~label:"new unflushed";
  ignore (Exec.Exec_stack.push_fresh s);
  let srcs = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "new store or older flushed value" [ 2; 1 ] (source_values srcs);
  (* Committing to the old value proves e2 never flushed the line after its
     store: e2's candidates collapse for subsequent reads. *)
  Exec.Read_from.do_read s 100 (List.nth srcs 1);
  let srcs' = Exec.Read_from.build_may_read_from s 100 in
  Alcotest.(check (list int)) "refined to the old value" [ 1 ] (source_values srcs')

(* Reference model of ReadPreFailure for a single byte of a single failed
   execution: candidates are every store in the open window (lo, hi) newest
   first, then the newest store at or before lo — or the initial zero when
   no store predates lo. *)
let reference_candidates stores ~lo =
  let in_window = List.rev (List.filter (fun (s, _) -> s > lo) stores) in
  let le_lo = List.filter (fun (s, _) -> s <= lo) stores in
  let tail =
    match List.rev le_lo with (_, v) :: _ -> [ v ] | [] -> [ 0 ]
  in
  List.map snd in_window @ tail

let prop_candidates_match_reference =
  QCheck.Test.make ~name:"BuildMayReadFrom matches the Fig. 9 reference" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 8) (int_range 1 100))
        (option (int_range 0 60)))
    (fun (values, flush_after) ->
      (* Stores at seqs 2,4,6,...; optional flush at an interleaving seq. *)
      let stores = List.mapi (fun i v -> ((2 * i) + 2, v)) values in
      let s = Exec.Exec_stack.create () in
      let e1 = Exec.Exec_stack.top s in
      List.iter
        (fun (seq, v) -> Exec.Exec_record.push_store e1 100 ~value:(v land 0xff) ~seq ~label:"w")
        stores;
      let lo =
        match flush_after with
        | Some f when f > 0 ->
            Exec.Exec_record.flush_line e1 100 ~seq:f;
            f
        | _ -> 0
      in
      ignore (Exec.Exec_stack.push_fresh s);
      let got =
        List.map (fun src -> src.Exec.Read_from.value) (Exec.Read_from.build_may_read_from s 100)
      in
      let expected =
        reference_candidates (List.map (fun (q, v) -> (q, v land 0xff)) stores) ~lo
      in
      got = expected)

let prop_do_read_narrows =
  QCheck.Test.make ~name:"committing to a candidate never widens later candidate sets" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 6) (int_range 1 100))
    (fun values ->
      let stores = List.mapi (fun i v -> ((2 * i) + 2, v land 0xff)) values in
      let s = Exec.Exec_stack.create () in
      let e1 = Exec.Exec_stack.top s in
      List.iter (fun (seq, v) -> Exec.Exec_record.push_store e1 100 ~value:v ~seq ~label:"w") stores;
      ignore (Exec.Exec_stack.push_fresh s);
      let before = Exec.Read_from.build_may_read_from s 100 in
      List.for_all
        (fun src ->
          (* Refine on a copy of the stack state is impossible (mutable), so
             rebuild per candidate. *)
          let s = Exec.Exec_stack.create () in
          let e1 = Exec.Exec_stack.top s in
          List.iter
            (fun (seq, v) -> Exec.Exec_record.push_store e1 100 ~value:v ~seq ~label:"w")
            stores;
          ignore (Exec.Exec_stack.push_fresh s);
          let cands = Exec.Read_from.build_may_read_from s 100 in
          let chosen =
            List.find (fun c -> c.Exec.Read_from.seq = src.Exec.Read_from.seq) cands
          in
          Exec.Read_from.do_read s 100 chosen;
          let after = Exec.Read_from.build_may_read_from s 100 in
          (* The committed value must still be readable, and the set shrinks
             to candidates consistent with it. *)
          List.exists (fun c -> c.Exec.Read_from.value = chosen.Exec.Read_from.value) after
          && List.length after <= List.length cands)
        before)

let () =
  Alcotest.run "exec"
    [
      ( "store-queue",
        [
          Alcotest.test_case "basics" `Quick test_store_queue_basics;
          Alcotest.test_case "next_seq_after" `Quick test_next_seq_after;
          QCheck_alcotest.to_alcotest prop_next_seq_after;
        ] );
      ( "records",
        [
          Alcotest.test_case "exec record" `Quick test_exec_record;
          Alcotest.test_case "exec stack" `Quick test_exec_stack;
        ] );
      ( "read-from",
        [
          Alcotest.test_case "unflushed line" `Quick test_rf_unflushed_line;
          Alcotest.test_case "flushed line" `Quick test_rf_flushed_line;
          Alcotest.test_case "fully flushed" `Quick test_rf_fully_flushed;
          Alcotest.test_case "current execution wins" `Quick test_rf_current_execution_wins;
          Alcotest.test_case "sb bypass wins" `Quick test_rf_sb_bypass_wins;
          Alcotest.test_case "same-line refinement" `Quick test_do_read_refines_same_line;
          Alcotest.test_case "upper-bound refinement" `Quick test_do_read_refines_upper_bound;
          Alcotest.test_case "two failures deep" `Quick test_rf_two_failures_deep;
          QCheck_alcotest.to_alcotest prop_candidates_match_reference;
          QCheck_alcotest.to_alcotest prop_do_read_narrows;
        ] );
    ]
