open Jaaru

let keys n = List.init n (fun i -> ((i * 7) mod 29) + 1)

let btree_scenario ?(bugs = Pmdk.Btree_map.no_bugs) n =
  let pre ctx =
    let t = Pmdk.Btree_map.create_or_open ~bugs ctx in
    List.iter (fun k -> Pmdk.Btree_map.insert t k (k * 100)) (keys n)
  in
  let post ctx =
    let t = Pmdk.Btree_map.create_or_open ~bugs ctx in
    Pmdk.Btree_map.check t;
    List.iter (fun k -> ignore (Pmdk.Btree_map.lookup t k)) (keys n)
  in
  Explorer.scenario ~name:"btree" ~pre ~post

let no_crash_semantics () =
  (* Pure functional check without any failures. *)
  let config = { Config.default with max_failures = 0 } in
  let pre ctx =
    let t = Pmdk.Btree_map.create_or_open ctx in
    List.iter (fun k -> Pmdk.Btree_map.insert t k (k * 100)) (keys 20);
    Pmdk.Btree_map.check t;
    List.iter
      (fun k ->
        match Pmdk.Btree_map.lookup t k with
        | Some v -> Ctx.check ctx (v = k * 100) "value mismatch"
        | None -> Ctx.abort ctx "missing key")
      (keys 20);
    Ctx.check ctx (Pmdk.Btree_map.lookup t 999 = None) "phantom key";
    let ks = List.map fst (Pmdk.Btree_map.entries t) in
    Ctx.check ctx (ks = List.sort_uniq compare (keys 20)) "entries not sorted"
  in
  let o = Explorer.run ~config (Explorer.scenario ~name:"btree-fn" ~pre ~post:(fun _ -> ())) in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) "no bugs" false (Explorer.found_bug o)

let remove_functional () =
  let config = { Config.default with max_failures = 0 } in
  let pre ctx =
    let t = Pmdk.Btree_map.create_or_open ctx in
    List.iter (fun k -> Pmdk.Btree_map.insert t k (k * 100)) (keys 20);
    let distinct = List.sort_uniq compare (keys 20) in
    (* Remove every other key; the rest must survive with their values. *)
    let victims = List.filteri (fun i _ -> i mod 2 = 0) distinct in
    List.iter (Pmdk.Btree_map.remove t) victims;
    Pmdk.Btree_map.remove t 999 (* absent *);
    Pmdk.Btree_map.check t;
    List.iter
      (fun k -> Ctx.check ctx (Pmdk.Btree_map.lookup t k = None) "victim gone")
      victims;
    List.iter
      (fun k ->
        if not (List.mem k victims) then
          Ctx.check ctx (Pmdk.Btree_map.lookup t k = Some (k * 100)) "survivor intact")
      distinct;
    (* Drain the whole tree; the root shrinks back to an empty leaf. *)
    List.iter (Pmdk.Btree_map.remove t) distinct;
    Pmdk.Btree_map.check t;
    Ctx.check ctx (Pmdk.Btree_map.entries t = []) "emptied";
    Ctx.check ctx (Pmdk.Btree_map.min_key t = None) "no min";
    (* And it still works afterwards. *)
    Pmdk.Btree_map.insert t 42 1;
    Ctx.check ctx (Pmdk.Btree_map.lookup t 42 = Some 1) "reusable"
  in
  let o = Explorer.run ~config (Explorer.scenario ~name:"btree-rm" ~pre ~post:(fun _ -> ())) in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) "no bugs" false (Explorer.found_bug o)

let remove_crash_atomic () =
  let pre ctx =
    let t = Pmdk.Btree_map.create_or_open ctx in
    List.iter (fun k -> Pmdk.Btree_map.insert t k (k * 10)) [ 4; 2; 6; 1; 3 ];
    Pmdk.Btree_map.remove t 2;
    Pmdk.Btree_map.remove t 4
  in
  let post ctx =
    let t = Pmdk.Btree_map.create_or_open ctx in
    Pmdk.Btree_map.check t;
    List.iter
      (fun k ->
        match Pmdk.Btree_map.lookup t k with
        | None -> ()
        | Some v -> Ctx.check ctx (v = k * 10) "surviving key carries its value")
      [ 1; 2; 3; 4; 6 ]
  in
  let config = { Config.default with max_steps = 100_000 } in
  let o = Explorer.run ~config (Explorer.scenario ~name:"btree-rm-crash" ~pre ~post) in
  Alcotest.(check bool) "clean" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

let crash_consistent () =
  let o = Explorer.run (btree_scenario 8) in
  Format.printf "btree fixed: %a@." Explorer.pp_outcome o;
  Alcotest.(check bool) "no bugs" false (Explorer.found_bug o);
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Stats.exhausted

let buggy_split () =
  let o = Explorer.run (btree_scenario ~bugs:{ Pmdk.Btree_map.no_bugs with nontx_split = true } 8) in
  Format.printf "btree nontx_split: %a@." Explorer.pp_outcome o;
  Alcotest.(check bool) "found bug" true (Explorer.found_bug o)

let () =
  Alcotest.run "pmdk-btree"
    [
      ( "btree",
        [
          Alcotest.test_case "functional" `Quick no_crash_semantics;
          Alcotest.test_case "remove functional" `Quick remove_functional;
          Alcotest.test_case "remove crash-atomic" `Quick remove_crash_atomic;
          Alcotest.test_case "crash consistent" `Quick crash_consistent;
          Alcotest.test_case "buggy split found" `Quick buggy_split;
        ] );
    ]
