test/test_choice.ml: Alcotest Choice Gen Jaaru List QCheck QCheck_alcotest
