test/test_pmdk_suite.ml: Alcotest Bug Config Ctx Explorer Format Jaaru List Pmdk Stats String
