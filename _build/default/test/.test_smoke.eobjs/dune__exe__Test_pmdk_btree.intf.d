test/test_pmdk_btree.mli:
