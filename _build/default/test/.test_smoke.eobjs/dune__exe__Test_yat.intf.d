test/test_yat.mli:
