test/test_ctx.mli:
