test/test_pmdk_suite.mli:
