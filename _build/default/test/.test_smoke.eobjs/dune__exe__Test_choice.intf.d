test/test_choice.mli:
