test/test_exec.ml: Alcotest Exec Gen List Option Pmem Printf QCheck QCheck_alcotest
