test/test_litmus.ml: Alcotest Config Ctx Jaaru Printf Yat
