test/test_yat.ml: Alcotest Ctx Explorer Format Jaaru Printf Recipe Yat
