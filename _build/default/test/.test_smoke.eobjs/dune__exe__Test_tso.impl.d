test/test_tso.ml: Alcotest Exec List Option Pmem Tso
