test/test_smoke.ml: Alcotest Ctx Explorer Format Jaaru List Printf Stats Yat
