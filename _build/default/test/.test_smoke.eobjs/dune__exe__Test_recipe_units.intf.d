test/test_recipe_units.mli:
