test/test_ctx.ml: Alcotest Bug Config Ctx Explorer Jaaru List Printf Scheduler Stats String Yat
