test/test_pmdk_btree.ml: Alcotest Bug Config Ctx Explorer Format Jaaru List Pmdk Stats
