test/test_scheduler.ml: Alcotest Jaaru List Printf Scheduler
