test/test_recipe_suite.mli:
