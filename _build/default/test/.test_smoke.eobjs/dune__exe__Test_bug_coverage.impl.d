test/test_bug_coverage.ml: Alcotest Bug Config Ctx Explorer Format Jaaru List Pmdk Recipe Stats
