test/test_extensions.ml: Alcotest Config Ctx Explorer Format Jaaru List Recipe Stats String
