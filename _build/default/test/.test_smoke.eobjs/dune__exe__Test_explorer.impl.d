test/test_explorer.ml: Alcotest Bug Config Ctx Explorer Format Fuzz Jaaru List Stats String Trace
