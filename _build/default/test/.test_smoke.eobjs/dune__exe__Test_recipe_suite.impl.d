test/test_recipe_suite.ml: Alcotest Bug Config Ctx Explorer Format Jaaru List Recipe Stats String
