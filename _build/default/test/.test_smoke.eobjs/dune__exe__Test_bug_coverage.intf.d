test/test_bug_coverage.mli:
