test/test_pmem.ml: Alcotest Gen List Pmem QCheck QCheck_alcotest
