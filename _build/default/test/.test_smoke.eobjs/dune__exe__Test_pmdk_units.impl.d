test/test_pmdk_units.ml: Alcotest Bug Config Ctx Explorer Format Jaaru List Pmdk Pmem Printf Stats
