test/test_properties.ml: Alcotest Bug Config Ctx Explorer Format Gen Int Jaaru List Map Pmdk Printf QCheck QCheck_alcotest Recipe Stats String Yat
