test/test_pmdk_units.mli:
