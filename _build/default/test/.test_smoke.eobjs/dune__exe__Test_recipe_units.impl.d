test/test_recipe_units.ml: Alcotest Bug Config Ctx Explorer Format Jaaru List Pmem Printf Recipe Stats
