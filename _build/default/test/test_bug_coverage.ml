(* Every seeded bug toggle in the tree must be findable by the checker —
   this suite covers the toggles the Fig. 12/13 case tables do not use. *)
open Jaaru

let bug_config =
  { Config.default with Config.stop_at_first_bug = true; Config.max_steps = 60_000 }

let expect_bug name scenario =
  let o = Explorer.run ~config:bug_config scenario in
  if not (Explorer.found_bug o) then
    Alcotest.failf "%s: seeded bug was not found (%d executions)" name
      o.Explorer.stats.Stats.executions

let expect_clean name scenario =
  let o = Explorer.run ~config:{ bug_config with Config.stop_at_first_bug = false } scenario in
  List.iter (fun b -> Format.printf "%s unexpected: %a@." name Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) (name ^ " clean") false (Explorer.found_bug o)

let keys n = List.init n (fun i -> ((i * 13) mod 61) + 1)

(* --- btree: missing_root_flush ------------------------------------------------ *)

let btree_missing_root_flush () =
  (* Losing the new-root pointer is SILENT data loss (the surviving subtree
     is internally consistent — the paper's §5.1 remark about missing sanity
     checks). The workload therefore carries a durability oracle: each
     insert is fully fenced before the next begins, so the set of present
     keys must be a prefix of the insertion order. A reverted root makes
     mid-sequence keys vanish while later ones survive. *)
  let bugs = { Pmdk.Btree_map.no_bugs with missing_root_flush = true } in
  let ks = keys 8 in
  let pre ctx =
    let t = Pmdk.Btree_map.create_or_open ~bugs ctx in
    List.iter (fun k -> Pmdk.Btree_map.insert t k k) ks
  in
  let post ctx =
    let t = Pmdk.Btree_map.create_or_open ~bugs ctx in
    Pmdk.Btree_map.check t;
    let present = List.map (fun k -> Pmdk.Btree_map.lookup t k <> None) ks in
    let rec prefix_shape = function
      | true :: rest -> prefix_shape rest
      | [] -> true
      | false :: rest -> List.for_all not rest
    in
    Ctx.check ctx (prefix_shape present) "durable keys must form an insertion-order prefix"
  in
  expect_bug "btree root flush" (Explorer.scenario ~name:"btree-root" ~pre ~post)

(* --- ctree: missing_leaf_flush ------------------------------------------------- *)

let ctree_missing_leaf_flush () =
  let bugs = { Pmdk.Ctree_map.no_bugs with missing_leaf_flush = true } in
  let pre ctx =
    let t = Pmdk.Ctree_map.create_or_open ~bugs ctx in
    List.iter (fun k -> Pmdk.Ctree_map.insert t k (k + 1000)) (keys 6)
  in
  let post ctx =
    let t = Pmdk.Ctree_map.create_or_open ~bugs ctx in
    Pmdk.Ctree_map.check t;
    List.iter
      (fun k ->
        match Pmdk.Ctree_map.lookup t k with
        | Some v -> Ctx.check ctx (v = k + 1000) "value corrupt"
        | None -> ())
      (keys 6)
  in
  expect_bug "ctree leaf flush" (Explorer.scenario ~name:"ctree-leaf" ~pre ~post)

(* --- hashmap_atomic: missing_entry_flush ---------------------------------------- *)

let hashmap_missing_entry_flush () =
  let bugs = { Pmdk.Hashmap_atomic.missing_entry_flush = true } in
  let pre ctx =
    let t = Pmdk.Hashmap_atomic.create_or_open ~bugs ctx in
    List.iter (fun k -> Pmdk.Hashmap_atomic.insert t k (k + 1000)) (keys 6)
  in
  let post ctx =
    let t = Pmdk.Hashmap_atomic.create_or_open ~bugs ctx in
    Pmdk.Hashmap_atomic.check t;
    List.iter
      (fun k ->
        match Pmdk.Hashmap_atomic.lookup t k with
        | Some v -> Ctx.check ctx (v = k + 1000) "value corrupt"
        | None -> ())
      (keys 6)
  in
  expect_bug "hashmap entry flush" (Explorer.scenario ~name:"hma-entry" ~pre ~post)

(* --- pmalloc: missing_init_flush -------------------------------------------------- *)

let pmalloc_missing_init_flush () =
  (* The heap constructor's bump/free-head are unflushed when the magic
     commits; the next execution's allocations go off the rails. The pool is
     zero-initialised (not poisoned), so the window is the magic line flush
     that can persist while the init line does not across a crash between
     the two allocator uses. *)
  let alloc_bugs = { Pmdk.Pmalloc.no_bugs with missing_init_flush = true } in
  let pre ctx =
    let t = Pmdk.Hashmap_atomic.create_or_open ~alloc_bugs ctx in
    List.iter (fun k -> Pmdk.Hashmap_atomic.insert t k k) (keys 4)
  in
  let post ctx =
    let t = Pmdk.Hashmap_atomic.create_or_open ~alloc_bugs ctx in
    Pmdk.Hashmap_atomic.check t;
    (* Recovery-side allocation exercises the possibly-stale bump pointer:
       handing out memory that live entries occupy corrupts them. *)
    Pmdk.Hashmap_atomic.insert t 251 77;
    Pmdk.Hashmap_atomic.check t;
    List.iter
      (fun k ->
        match Pmdk.Hashmap_atomic.lookup t k with
        | Some v -> Ctx.check ctx (v = k) "value corrupt"
        | None -> ())
      (keys 4)
  in
  expect_bug "pmalloc init flush" (Explorer.scenario ~name:"pmalloc-init" ~pre ~post)

(* --- tx: missing_log_flush and missing_stage_flush -------------------------------- *)

let tx_scenario tx_bugs =
  let pre ctx =
    let t = Pmdk.Rbtree_map.create_or_open ~tx_bugs ctx in
    List.iter (fun k -> Pmdk.Rbtree_map.insert t k (k * 10)) (keys 8)
  in
  let post ctx =
    let t = Pmdk.Rbtree_map.create_or_open ~tx_bugs ctx in
    Pmdk.Rbtree_map.check t;
    List.iter
      (fun k ->
        match Pmdk.Rbtree_map.lookup t k with
        | Some v -> Ctx.check ctx (v = k * 10) "value corrupt"
        | None -> ())
      (keys 8)
  in
  Explorer.scenario ~name:"tx-bugs" ~pre ~post

let tx_missing_log_flush () =
  expect_bug "tx log flush" (tx_scenario { Pmdk.Tx.no_bugs with missing_log_flush = true })

let tx_missing_stage_flush () =
  expect_bug "tx stage flush" (tx_scenario { Pmdk.Tx.no_bugs with missing_stage_flush = true })

(* --- region_alloc: missing_bump_flush ----------------------------------------------- *)

let region_alloc_missing_bump_flush () =
  let alloc_bugs = { Recipe.Region_alloc.no_bugs with missing_bump_flush = true } in
  let pre ctx =
    let t = Recipe.Fast_fair.create_or_open ~alloc_bugs ctx in
    List.iter (fun k -> Recipe.Fast_fair.insert t k k) (keys 6)
  in
  let post ctx =
    let t = Recipe.Fast_fair.create_or_open ~alloc_bugs ctx in
    Recipe.Fast_fair.check t;
    (* A recovery-side insert allocates from the stale bump pointer and can
       scribble over a committed node. *)
    Recipe.Fast_fair.insert t 97 97;
    Recipe.Fast_fair.check t;
    List.iter
      (fun k ->
        match Recipe.Fast_fair.lookup t k with
        | Some v -> Ctx.check ctx (v = k) "value corrupt"
        | None -> ())
      (keys 6)
  in
  expect_bug "region_alloc bump flush" (Explorer.scenario ~name:"ralloc-bump" ~pre ~post)

(* --- p_clht: skip_table_flush ---------------------------------------------------------- *)

let clht_skip_table_flush () =
  let bugs = { Recipe.P_clht.no_bugs with skip_table_flush = true } in
  let pre ctx =
    let t = Recipe.P_clht.create_or_open ~bugs ctx in
    List.iter (fun k -> Recipe.P_clht.insert t k k) (keys 4)
  in
  let post ctx =
    let t = Recipe.P_clht.create_or_open ~bugs ctx in
    Recipe.P_clht.check t
  in
  expect_bug "clht table flush" (Explorer.scenario ~name:"clht-table" ~pre ~post)

(* --- sanity: all-false toggles stay clean ----------------------------------------------- *)

let all_toggles_off_clean () =
  let pre ctx =
    let t = Pmdk.Btree_map.create_or_open ~bugs:Pmdk.Btree_map.no_bugs ctx in
    List.iter (fun k -> Pmdk.Btree_map.insert t k k) (keys 4)
  in
  let post ctx =
    let t = Pmdk.Btree_map.create_or_open ctx in
    Pmdk.Btree_map.check t
  in
  expect_clean "no-bugs btree" (Explorer.scenario ~name:"clean" ~pre ~post)

let () =
  Alcotest.run "bug-coverage"
    [
      ( "remaining-toggles",
        [
          Alcotest.test_case "btree missing_root_flush" `Quick btree_missing_root_flush;
          Alcotest.test_case "ctree missing_leaf_flush" `Quick ctree_missing_leaf_flush;
          Alcotest.test_case "hashmap missing_entry_flush" `Quick hashmap_missing_entry_flush;
          Alcotest.test_case "pmalloc missing_init_flush" `Quick pmalloc_missing_init_flush;
          Alcotest.test_case "tx missing_log_flush" `Quick tx_missing_log_flush;
          Alcotest.test_case "tx missing_stage_flush" `Quick tx_missing_stage_flush;
          Alcotest.test_case "region_alloc missing_bump_flush" `Quick region_alloc_missing_bump_flush;
          Alcotest.test_case "clht skip_table_flush" `Quick clht_skip_table_flush;
          Alcotest.test_case "all toggles off" `Quick all_toggles_off_clean;
        ] );
    ]
