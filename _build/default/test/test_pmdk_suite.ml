(* Functional and model-checking tests across the PMDK mini-suite. *)
open Jaaru

let no_failures = { Config.default with Config.max_failures = 0 }

let run_functional name body =
  let o = Explorer.run ~config:no_failures (Explorer.scenario ~name ~pre:body ~post:(fun _ -> ())) in
  List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
  Alcotest.(check bool) (name ^ ": no bugs") false (Explorer.found_bug o)

let keys n = List.init n (fun i -> ((i * 13) mod 61) + 1)

(* --- functional semantics (no failures injected) -------------------------- *)

let ctree_functional () =
  run_functional "ctree-fn" (fun ctx ->
      let t = Pmdk.Ctree_map.create_or_open ctx in
      List.iter (fun k -> Pmdk.Ctree_map.insert t k (k * 3)) (keys 24);
      Pmdk.Ctree_map.check t;
      List.iter
        (fun k ->
          Ctx.check ctx (Pmdk.Ctree_map.lookup t k = Some (k * 3)) "ctree lookup mismatch")
        (keys 24);
      Ctx.check ctx (Pmdk.Ctree_map.lookup t 4095 = None) "ctree phantom";
      Pmdk.Ctree_map.insert t 7 999;
      Ctx.check ctx (Pmdk.Ctree_map.lookup t 7 = Some 999) "ctree update";
      Pmdk.Ctree_map.remove t 7;
      Ctx.check ctx (Pmdk.Ctree_map.lookup t 7 = None) "ctree remove";
      Pmdk.Ctree_map.check t;
      let ks = List.sort compare (List.map fst (Pmdk.Ctree_map.entries t)) in
      Ctx.check ctx
        (ks = List.filter (fun k -> k <> 7) (List.sort_uniq compare (keys 24)))
        "ctree entries")

let rbtree_functional () =
  run_functional "rbtree-fn" (fun ctx ->
      let t = Pmdk.Rbtree_map.create_or_open ctx in
      List.iter (fun k -> Pmdk.Rbtree_map.insert t k (k * 3)) (keys 30);
      Pmdk.Rbtree_map.check t;
      List.iter
        (fun k ->
          Ctx.check ctx (Pmdk.Rbtree_map.lookup t k = Some (k * 3)) "rbtree lookup mismatch")
        (keys 30);
      Ctx.check ctx (Pmdk.Rbtree_map.lookup t 4095 = None) "rbtree phantom";
      let ks = List.map fst (Pmdk.Rbtree_map.entries t) in
      Ctx.check ctx (ks = List.sort_uniq compare (keys 30)) "rbtree entries sorted";
      (* Deletion keeps the red-black invariants (check validates them). *)
      let victims = List.filteri (fun i _ -> i mod 3 = 0) (List.sort_uniq compare (keys 30)) in
      List.iter (Pmdk.Rbtree_map.remove t) victims;
      Pmdk.Rbtree_map.remove t 4095 (* absent: no-op *);
      Pmdk.Rbtree_map.check t;
      List.iter
        (fun k -> Ctx.check ctx (Pmdk.Rbtree_map.lookup t k = None) "rbtree removed")
        victims;
      Ctx.check ctx
        (List.map fst (Pmdk.Rbtree_map.entries t)
        = List.filter (fun k -> not (List.mem k victims)) (List.sort_uniq compare (keys 30)))
        "rbtree entries after removals")

let hashmap_atomic_functional () =
  run_functional "hma-fn" (fun ctx ->
      let t = Pmdk.Hashmap_atomic.create_or_open ctx in
      List.iter (fun k -> Pmdk.Hashmap_atomic.insert t k (k * 3)) (keys 20);
      Pmdk.Hashmap_atomic.check t;
      let distinct = List.length (List.sort_uniq compare (keys 20)) in
      Ctx.check ctx (Pmdk.Hashmap_atomic.count t = distinct) "hma count";
      Pmdk.Hashmap_atomic.remove t (List.hd (keys 20));
      Ctx.check ctx (Pmdk.Hashmap_atomic.count t = distinct - 1) "hma count after remove";
      Ctx.check ctx (Pmdk.Hashmap_atomic.lookup t (List.hd (keys 20)) = None) "hma removed";
      Pmdk.Hashmap_atomic.check t)

let hashmap_tx_functional () =
  run_functional "hmtx-fn" (fun ctx ->
      let t = Pmdk.Hashmap_tx.create_or_open ctx in
      List.iter (fun k -> Pmdk.Hashmap_tx.insert t k (k * 3)) (keys 20);
      Pmdk.Hashmap_tx.check t;
      List.iter
        (fun k ->
          Ctx.check ctx (Pmdk.Hashmap_tx.lookup t k = Some (k * 3)) "hmtx lookup mismatch")
        (keys 20);
      Pmdk.Hashmap_tx.remove t (List.hd (keys 20));
      Ctx.check ctx (Pmdk.Hashmap_tx.lookup t (List.hd (keys 20)) = None) "hmtx removed";
      Pmdk.Hashmap_tx.check t)

let skiplist_functional () =
  run_functional "skiplist-fn" (fun ctx ->
      let t = Pmdk.Skiplist_map.create_or_open ctx in
      List.iter (fun k -> Pmdk.Skiplist_map.insert t k (k * 3)) (keys 30);
      Pmdk.Skiplist_map.check t;
      List.iter
        (fun k ->
          Ctx.check ctx (Pmdk.Skiplist_map.lookup t k = Some (k * 3)) "skiplist lookup")
        (keys 30);
      Ctx.check ctx (Pmdk.Skiplist_map.lookup t 4095 = None) "skiplist phantom";
      Pmdk.Skiplist_map.insert t 9 999;
      Ctx.check ctx (Pmdk.Skiplist_map.lookup t 9 = Some 999) "skiplist update";
      Pmdk.Skiplist_map.remove t 9;
      Ctx.check ctx (Pmdk.Skiplist_map.lookup t 9 = None) "skiplist remove";
      Pmdk.Skiplist_map.check t;
      let ks = List.map fst (Pmdk.Skiplist_map.entries t) in
      Ctx.check ctx
        (ks = List.filter (fun k -> k <> 9) (List.sort_uniq compare (keys 30)))
        "skiplist entries sorted")

let clog_functional () =
  run_functional "clog-fn" (fun ctx ->
      let t = Pmdk.Clog.create_or_open ctx in
      List.iter (Pmdk.Clog.append t) [ 11; 22; 33 ];
      Ctx.check ctx (Pmdk.Clog.recover t = [ 11; 22; 33 ]) "clog roundtrip")

(* --- model checking: fixed variants are clean, buggy find their bug ------- *)

let check_case (c : Pmdk.Workloads.case) () =
  let o = Explorer.run ~config:c.config c.scenario in
  Format.printf "%s: %a@." c.id Explorer.pp_outcome o;
  match c.expected_symptom with
  | None ->
      List.iter (fun b -> Format.printf "BUG %a@." Bug.pp b) o.Explorer.bugs;
      Alcotest.(check bool) (c.id ^ ": clean") false (Explorer.found_bug o);
      Alcotest.(check bool) (c.id ^ ": exhausted") true o.Explorer.stats.Stats.exhausted
  | Some fragments ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        nn = 0 || at 0
      in
      let hit =
        List.exists
          (fun b -> List.exists (contains (Bug.symptom b)) fragments)
          o.Explorer.bugs
      in
      if not hit then
        List.iter (fun b -> Format.printf "got instead: %s@." (Bug.symptom b)) o.Explorer.bugs;
      Alcotest.(check bool) (c.id ^ ": found " ^ String.concat "|" fragments) true hit

let case_tests cases = List.map (fun c -> Alcotest.test_case c.Pmdk.Workloads.id `Quick (check_case c)) cases

let () =
  Alcotest.run "pmdk-suite"
    [
      ( "functional",
        [
          Alcotest.test_case "ctree" `Quick ctree_functional;
          Alcotest.test_case "rbtree" `Quick rbtree_functional;
          Alcotest.test_case "hashmap_atomic" `Quick hashmap_atomic_functional;
          Alcotest.test_case "hashmap_tx" `Quick hashmap_tx_functional;
          Alcotest.test_case "skiplist" `Quick skiplist_functional;
          Alcotest.test_case "clog" `Quick clog_functional;
        ] );
      ("fixed", case_tests (Pmdk.Workloads.fixed_cases ~n:6 ()));
      ("fig12", case_tests (Pmdk.Workloads.fig12_cases ()));
      ("checksum", case_tests (Pmdk.Workloads.checksum_cases ()));
      ("skiplist", case_tests (Pmdk.Workloads.skiplist_cases ()));
    ]
