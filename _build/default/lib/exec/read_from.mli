(** Constraint-refinement read-from analysis (paper Figures 9 and 10).

    [build_may_read_from] computes the set of stores a byte load may observe,
    walking the execution stack and filtering each failed execution's store
    history through its cache line's last-writeback interval. Once the
    exploration has committed to one candidate, [do_read] refines the
    last-writeback intervals of the intervening executions so that later loads
    on the same cache line stay consistent with the observed value. *)

type source = {
  exec : Exec_record.t;  (** execution that performed the store *)
  seq : int option;  (** sequence number; [None] for the current execution *)
  value : int;  (** the byte value *)
  label : string;  (** source label of the store, for bug reports *)
}

val source_from_current : Exec_stack.t -> value:int -> label:string -> source
(** A store performed by the currently-running execution — no persistency
    constraint applies (the paper's [⟨top(exec), _, val⟩] tuples). *)

val build_may_read_from :
  ?sb_value:int * string -> Exec_stack.t -> Pmem.Addr.t -> source list
(** All stores the byte load may read from, newest candidates first.

    [sb_value], when given, is the value and label of the newest store to the
    address still sitting in the loading thread's store buffer — store-buffer
    bypass wins outright (Fig. 9 lines 2–3). Otherwise the newest cache store
    of the current execution wins (lines 4–5); otherwise candidates come from
    pre-failure executions via [ReadPreFailure] (lines 7–13). The result is
    never empty: the initial all-zero image backstops the recursion. *)

val do_read : Exec_stack.t -> Pmem.Addr.t -> source -> unit
(** Commits the load to one source and refines last-writeback intervals of
    previous executions (Fig. 10): each failed execution newer than the
    source must not have flushed the line after its first store to the byte,
    and the source execution's line must have been written back within
    [(seq, next-store-seq)). *)

val pp_source : Format.formatter -> source -> unit
