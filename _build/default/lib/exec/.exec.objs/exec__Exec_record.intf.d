lib/exec/exec_record.mli: Format Pmem Store_queue
