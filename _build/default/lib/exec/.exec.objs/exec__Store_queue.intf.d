lib/exec/store_queue.mli: Format
