lib/exec/exec_stack.mli: Exec_record
