lib/exec/read_from.mli: Exec_record Exec_stack Format Pmem
