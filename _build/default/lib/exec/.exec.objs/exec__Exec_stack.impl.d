lib/exec/exec_stack.ml: Exec_record List
