lib/exec/exec_record.ml: Format Hashtbl Pmem Store_queue
