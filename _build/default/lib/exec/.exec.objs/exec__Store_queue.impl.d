lib/exec/store_queue.ml: Array Format List Pmem
