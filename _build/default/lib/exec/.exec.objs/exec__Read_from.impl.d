lib/exec/read_from.ml: Exec_record Exec_stack Format List Pmem Store_queue
