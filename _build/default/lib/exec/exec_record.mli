(** The persistent-memory-relevant record of one execution.

    A failure scenario is a stack of executions, each ending in a power
    failure except the last. For each execution Jaaru records (paper §4):

    - [queue(addr)]: the per-byte history of stores that reached the cache;
    - [getcacheline(addr)]: the interval bounding when each cache line was
      most recently written back to persistent memory.

    The bottom of every stack is the {e initial} pseudo-execution: a fully
    persisted, all-zero memory image, the analogue of a freshly zeroed pool
    file. *)

type t

val create : id:int -> t
(** A fresh execution record. [id] is its depth in the execution stack;
    id 0 is reserved for {!initial}. *)

val initial : unit -> t
(** The all-zero, fully-flushed base image. *)

val id : t -> int
val is_initial : t -> bool

val queue : t -> Pmem.Addr.t -> Store_queue.t
(** The store history for one byte address, created empty on first use. *)

val queue_opt : t -> Pmem.Addr.t -> Store_queue.t option
(** Like {!queue} but without materialising an empty history. *)

val cacheline : t -> Pmem.Addr.t -> Pmem.Interval.t
(** The last-writeback interval of the line containing the given byte,
    created as [\[0, inf)] on first use. *)

val push_store : t -> Pmem.Addr.t -> value:int -> seq:int -> label:string -> unit
(** Records one byte store taking effect in the cache. *)

val flush_line : t -> Pmem.Addr.t -> seq:int -> unit
(** Raises the line's last-writeback lower bound to [seq] (a [clflush] or an
    evicted [clflushopt] took effect). *)

val store_count : t -> int
(** Total byte stores recorded. *)

val flush_count : t -> int
(** Total line-flush events recorded. *)

val written_addrs : t -> Pmem.Addr.t list
(** All byte addresses with at least one recorded store (unordered). *)

val unflushed_store_count : t -> Pmem.Addr.t -> int
(** Number of stores to the byte that are not certainly persisted, i.e. with
    sequence numbers above the line's last-writeback lower bound. Used by the
    Yat state counter. *)

val pp : Format.formatter -> t -> unit
