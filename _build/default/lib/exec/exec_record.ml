type t = {
  id : int;
  queues : (Pmem.Addr.t, Store_queue.t) Hashtbl.t;
  lines : (int, Pmem.Interval.t) Hashtbl.t;
  mutable store_count : int;
  mutable flush_count : int;
}

let create ~id =
  if id < 0 then invalid_arg "Exec_record.create: negative id";
  { id; queues = Hashtbl.create 64; lines = Hashtbl.create 16; store_count = 0; flush_count = 0 }

let initial () = create ~id:0
let id e = e.id
let is_initial e = e.id = 0

let queue e addr =
  match Hashtbl.find_opt e.queues addr with
  | Some q -> q
  | None ->
      let q = Store_queue.create () in
      Hashtbl.add e.queues addr q;
      q

let queue_opt e addr = Hashtbl.find_opt e.queues addr

let cacheline e addr =
  let line = Pmem.Addr.line_of addr in
  match Hashtbl.find_opt e.lines line with
  | Some iv -> iv
  | None ->
      let iv = Pmem.Interval.make () in
      Hashtbl.add e.lines line iv;
      iv

let push_store e addr ~value ~seq ~label =
  Store_queue.push (queue e addr) { Store_queue.value; seq; label };
  e.store_count <- e.store_count + 1

let flush_line e addr ~seq =
  Pmem.Interval.raise_lo (cacheline e addr) seq;
  e.flush_count <- e.flush_count + 1

let store_count e = e.store_count
let flush_count e = e.flush_count
let written_addrs e = Hashtbl.fold (fun addr _ acc -> addr :: acc) e.queues []

let unflushed_store_count e addr =
  match queue_opt e addr with
  | None -> 0
  | Some q ->
      let lo = Pmem.Interval.lo (cacheline e addr) in
      Store_queue.fold (fun entry n -> if entry.Store_queue.seq > lo then n + 1 else n) q 0

let pp ppf e =
  Format.fprintf ppf "exec#%d: %d stores, %d flushes over %d addrs" e.id e.store_count
    e.flush_count (Hashtbl.length e.queues)
