type t = {
  next_seq : unit -> int;
  cur_seq : unit -> int;
  push_store : Pmem.Addr.t -> value:int -> seq:int -> label:string -> unit;
  flush_line : Pmem.Addr.t -> seq:int -> unit;
}

let to_exec_record ~seq record =
  {
    next_seq =
      (fun () ->
        incr seq;
        !seq);
    cur_seq = (fun () -> !seq);
    push_store =
      (fun addr ~value ~seq ~label -> Exec.Exec_record.push_store record addr ~value ~seq ~label);
    flush_line = (fun addr ~seq -> Exec.Exec_record.flush_line record addr ~seq);
  }
