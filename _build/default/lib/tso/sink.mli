(** Where evicted instructions take effect.

    The store-buffer machinery is independent of the model checker: evictions
    report their effects (cache-visible stores and line flushes) through this
    record, which the checker wires to the top of its execution stack. Keeping
    the dependency inverted makes the TSO simulation unit-testable on its
    own. *)

type t = {
  next_seq : unit -> int;
      (** Draws the next global sequence number (the paper's σ_curr + 1). *)
  cur_seq : unit -> int;
      (** Reads the current global sequence number without advancing it. *)
  push_store : Pmem.Addr.t -> value:int -> seq:int -> label:string -> unit;
      (** One byte store takes effect in the cache. *)
  flush_line : Pmem.Addr.t -> seq:int -> unit;
      (** The byte's cache line is guaranteed written back at or after [seq]. *)
}

val to_exec_record : seq:int ref -> Exec.Exec_record.t -> t
(** The standard wiring: sequence numbers from [seq], effects into the given
    execution record. *)
