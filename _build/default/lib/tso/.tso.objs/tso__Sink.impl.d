lib/tso/sink.ml: Exec Pmem
