lib/tso/constraints.ml: Format List String
