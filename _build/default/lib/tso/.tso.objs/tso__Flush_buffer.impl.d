lib/tso/flush_buffer.ml: List Pmem Queue
