lib/tso/flush_buffer.mli: Pmem
