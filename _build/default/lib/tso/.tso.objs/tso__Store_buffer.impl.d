lib/tso/store_buffer.ml: Array List Pmem Queue
