lib/tso/sink.mli: Exec Pmem
