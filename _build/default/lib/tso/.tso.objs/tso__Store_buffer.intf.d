lib/tso/store_buffer.mli: Pmem
