lib/tso/thread_state.ml: Array Flush_buffer Hashtbl List Option Pmem Sink Store_buffer
