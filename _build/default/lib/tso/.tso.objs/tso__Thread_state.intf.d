lib/tso/thread_state.mli: Flush_buffer Pmem Sink Store_buffer
