lib/tso/constraints.mli: Format
