type kind = Read | Write | Rmw | Mfence | Sfence | Clflushopt | Clflush

type ordering = Ordered | Reorderable | Same_line_only

let all_kinds = [ Read; Write; Rmw; Mfence; Sfence; Clflushopt; Clflush ]

let kind_name = function
  | Read -> "Read"
  | Write -> "Write"
  | Rmw -> "RMW"
  | Mfence -> "mfence"
  | Sfence -> "sfence"
  | Clflushopt -> "clflushopt"
  | Clflush -> "clflush"

let ordering_symbol = function
  | Ordered -> "Y"
  | Reorderable -> "N"
  | Same_line_only -> "CL"

let preserved ~earlier ~later =
  match (earlier, later) with
  (* Reads, RMWs and mfences are ordered against everything later. *)
  | (Read | Rmw | Mfence), _ -> Ordered
  (* A later read may bypass earlier buffered stores, fences and flushes
     (store-buffer forwarding / load reordering on TSO). *)
  | (Write | Sfence | Clflushopt | Clflush), Read -> Reorderable
  (* Stores stay ordered among themselves and against clflush; a clflushopt
     may move above a store to a different line. *)
  | Write, (Write | Rmw | Mfence | Sfence | Clflush) -> Ordered
  | Write, Clflushopt -> Same_line_only
  (* sfence orders all later store-class operations. *)
  | Sfence, (Write | Rmw | Mfence | Sfence | Clflushopt | Clflush) -> Ordered
  (* clflushopt is weakly ordered: later stores, other clflushopts and
     clflushes to other lines may overtake it; RMW, mfence and sfence drain
     the flush buffer. *)
  | Clflushopt, (Write | Clflushopt) -> Reorderable
  | Clflushopt, (Rmw | Mfence | Sfence) -> Ordered
  | Clflushopt, Clflush -> Same_line_only
  (* clflush behaves like a store: ordered, except against clflushopt where
     only same-line order is kept. *)
  | Clflush, (Write | Rmw | Mfence | Sfence | Clflush) -> Ordered
  | Clflush, Clflushopt -> Same_line_only

let pp_table ppf () =
  let pad s n = s ^ String.make (max 0 (n - String.length s)) ' ' in
  Format.fprintf ppf "%s" (pad "earlier \\ later" 16);
  List.iter (fun k -> Format.fprintf ppf "%s" (pad (kind_name k) 12)) all_kinds;
  Format.fprintf ppf "@.";
  List.iter
    (fun earlier ->
      Format.fprintf ppf "%s" (pad (kind_name earlier) 16);
      List.iter
        (fun later ->
          Format.fprintf ppf "%s" (pad (ordering_symbol (preserved ~earlier ~later)) 12))
        all_kinds;
      Format.fprintf ppf "@.")
    all_kinds
