(** The Px86sim reordering-constraint matrix (paper Table 1).

    For a pair of instructions (earlier, later) in program order, the matrix
    states whether the Px86sim model preserves their order. [Same_line_only]
    is the table's "CL": order is preserved only when both operate on the same
    cache line. The simulator in {!Thread_state} implements these constraints
    operationally (store buffer + flush buffer); this module is the
    declarative form, used by the litmus tests to check the two agree and by
    the bench harness to print the table. *)

type kind = Read | Write | Rmw | Mfence | Sfence | Clflushopt | Clflush

type ordering = Ordered | Reorderable | Same_line_only

val preserved : earlier:kind -> later:kind -> ordering

val all_kinds : kind list
(** In the table's row/column order. *)

val kind_name : kind -> string
val ordering_symbol : ordering -> string
(** "Y", "N", or "CL". *)

val pp_table : Format.formatter -> unit -> unit
(** Prints the full 7x7 matrix in the paper's layout. *)
