(** Analytic counting of the post-failure states an eager model checker (Yat,
    paper §1 and §5.2) would have to enumerate.

    At a failure point, each cache line with [k] store events that are not
    certainly persisted can be in [k + 1] distinct persistent states (the
    content at the last guaranteed flush, plus the content after each
    unflushed store — the paper's "array of n integers has 9^(n/8) states"
    calculation). The number of memory states at the point is the product
    over lines, and the Yat execution count for a program is the sum over
    its failure-injection points. The counts overflow native integers (the
    paper reports up to 1.93x10^605), so everything is carried in log10. *)

type t = {
  log10_total : float;  (** log10 of the summed state count; [neg_infinity] for 0 *)
  failure_points : int;
  max_line_states : int;  (** largest per-line state count seen at any point *)
}

val log10_states_at : Exec.Exec_record.t -> float
(** log10 of the number of post-failure memory states of one execution
    record at this instant. 0.0 when everything is persisted (one state). *)

val analyze : ?config:Jaaru.Config.t -> (Jaaru.Ctx.t -> unit) -> t
(** Runs the pre-failure program once (no failures actually injected),
    evaluating the eager state count at every failure-injection point Jaaru
    would use. *)

val pp_count : Format.formatter -> float -> unit
(** Pretty-prints a log10 count in the paper's ["2.17x10^182"] style (plain
    decimal below 10^6). *)

val pp : Format.formatter -> t -> unit
