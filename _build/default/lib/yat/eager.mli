(** A real eager (Yat-style) model checker for small programs.

    Where Jaaru lazily enumerates only the stores that recovery loads actually
    read, this checker does what the paper describes Yat doing: at every
    failure-injection point it eagerly materialises {e every} legal
    post-failure persistent-memory state — one cut point per cache line,
    constrained by the line's last guaranteed flush — and runs the recovery
    program on each concrete image.

    It exists for two purposes: as the baseline whose execution counts the
    ablation benchmark compares against, and as a cross-validation oracle —
    on programs small enough for it to finish, the set of recovery behaviours
    it observes must equal the set Jaaru explores (Jaaru's soundness and
    completeness on that program). *)

type result = {
  states : int;  (** concrete post-failure states executed *)
  failure_points : int;
  behaviors : string list;  (** distinct recovery observations, sorted *)
  bugs : Jaaru.Bug.t list;  (** deduplicated *)
  truncated : bool;  (** hit [state_limit] before finishing *)
}

val check :
  ?config:Jaaru.Config.t ->
  ?state_limit:int ->
  pre:(Jaaru.Ctx.t -> unit) ->
  post:(Jaaru.Ctx.t -> string) ->
  unit ->
  result
(** [check ~pre ~post ()] runs [pre] once, snapshotting the persistent state
    space at each failure point, then runs [post] on every member of every
    snapshot (default [state_limit] 20_000 across the whole run). [post]
    returns an observation string describing what recovery saw; a bug aborts
    the state's run and is recorded as the observation ["bug: ..."]. *)

val jaaru_behaviors :
  ?config:Jaaru.Config.t ->
  pre:(Jaaru.Ctx.t -> unit) ->
  post:(Jaaru.Ctx.t -> string) ->
  unit ->
  string list
(** The same observation set collected by running Jaaru's lazy exploration on
    the same scenario — for equivalence checks against {!check}. The
    failure-free execution's observation is excluded (the eager baseline only
    runs recoveries), as is any recovery whose observation equals one already
    seen. The caller's [max_failures] is respected: pass 0 together with an
    explicit {!Jaaru.Ctx.crash} at the end of [pre] for sharp single-point
    litmus semantics. *)
