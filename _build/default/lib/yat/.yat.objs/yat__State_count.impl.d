lib/yat/state_count.ml: Exec Format Hashtbl Jaaru List Pmem
