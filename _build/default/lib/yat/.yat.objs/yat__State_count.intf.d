lib/yat/state_count.mli: Exec Format Jaaru
