lib/yat/eager.ml: Exec Hashtbl Jaaru List Option Pmem Printexc
