lib/yat/eager.mli: Jaaru
