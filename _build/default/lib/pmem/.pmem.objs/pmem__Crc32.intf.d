lib/pmem/crc32.mli:
