lib/pmem/interval.ml: Format
