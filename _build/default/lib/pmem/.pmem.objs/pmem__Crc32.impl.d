lib/pmem/crc32.ml: Array Char Lazy List String
