lib/pmem/bytes_le.ml: List Printf
