lib/pmem/region.ml: Addr Format
