lib/pmem/interval.mli: Format
