lib/pmem/region.mli: Addr Format
