lib/pmem/bytes_le.mli:
