lib/pmem/addr.ml: Format
