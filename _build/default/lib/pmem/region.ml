type t = { base : Addr.t; size : int }

let v ~base ~size =
  if base <= 0 || base mod Addr.cache_line_size <> 0 then
    invalid_arg "Region.v: base must be positive and cache-line aligned";
  if size <= 0 then invalid_arg "Region.v: size must be positive";
  { base; size }

let contains r a n = n >= 0 && a >= r.base && a + n <= r.base + r.size
let limit r = r.base + r.size
let pp ppf r = Format.fprintf ppf "[%a, %a)" Addr.pp r.base Addr.pp (r.base + r.size)
