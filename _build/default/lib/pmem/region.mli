(** Persistent-memory region descriptors.

    A checked program is given one contiguous PM region (the analogue of a
    mapped pool file). Accesses outside the region model wild pointers — the
    segmentation faults of the paper's Fig. 12/13 symptoms — and are reported
    by the checker as illegal accesses. *)

type t = private { base : Addr.t; size : int }

val v : base:Addr.t -> size:int -> t
(** [v ~base ~size] describes the byte range [\[base, base+size)]. [base] must
    be cache-line aligned and positive; [size] positive. *)

val contains : t -> Addr.t -> int -> bool
(** [contains r a n] holds when the byte range [\[a, a+n)] lies inside [r]. *)

val limit : t -> Addr.t
(** One past the last valid byte. *)

val pp : Format.formatter -> t -> unit
