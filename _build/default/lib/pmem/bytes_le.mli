(** Little-endian packing of integers into byte sequences.

    Jaaru implements accesses wider than a byte as atomically-grouped byte
    accesses (paper §4, "Mixed size accesses"). These helpers split an integer
    value into its little-endian bytes and reassemble bytes into a value, so
    that a 64-bit store becomes eight byte stores and a 32-bit load of the same
    field reads back the right half. Values are carried in OCaml [int]s; widths
    up to 8 bytes are supported, with 8-byte values occupying the full 63-bit
    native range (the sign bit round-trips). *)

val max_width : int
(** 8 bytes. *)

val explode : width:int -> int -> int list
(** [explode ~width v] is the [width] little-endian bytes of [v], each in
    [0, 255]. Raises [Invalid_argument] if [width] is not in [1, 8]. *)

val implode : int list -> int
(** [implode bytes] reassembles little-endian [bytes] into a value. For widths
    below 8 the result is zero-extended; for width 8 the top byte carries the
    native sign. Raises [Invalid_argument] on an empty or over-long list or a
    byte outside [0, 255]. *)

val byte_at : width:int -> int -> int -> int
(** [byte_at ~width v i] is byte [i] (little-endian) of [v]. *)

val truncate : width:int -> int -> int
(** [truncate ~width v] keeps the low [width] bytes of [v] (zero-extending,
    except width 8 which is the identity). *)
