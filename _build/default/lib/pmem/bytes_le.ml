let max_width = 8

let check_width width =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bytes_le: width %d not in [1, 8]" width)

let byte_at ~width v i =
  check_width width;
  if i < 0 || i >= width then invalid_arg "Bytes_le.byte_at: index out of range";
  (v lsr (8 * i)) land 0xff

let explode ~width v =
  check_width width;
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (byte_at ~width v i :: acc) in
  loop (width - 1) []

let implode bytes =
  let width = List.length bytes in
  check_width width;
  let add (acc, shift) b =
    if b < 0 || b > 0xff then invalid_arg "Bytes_le.implode: byte out of range";
    (acc lor (b lsl shift), shift + 8)
  in
  (* Width 8 carries the 63-bit two's-complement pattern: byte 7 is at most
     0x7f (OCaml's lsr is logical over 63 bits), and or-ing all 63 bits back
     reconstructs negatives exactly. *)
  let v, _ = List.fold_left add (0, 0) bytes in
  v

let truncate ~width v =
  check_width width;
  if width = max_width then v else v land ((1 lsl (8 * width)) - 1)
