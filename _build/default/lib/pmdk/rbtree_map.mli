(** A persistent red-black tree map, modelled on the PMDK [rbtree_map]
    example.

    Classic CLRS red-black insertion with parent pointers and a persistent
    nil sentinel. Every structural mutation (BST link-in, recoloring,
    rotations) runs inside one undo-log transaction, so a crash anywhere
    rolls the whole insert back. The paper's RBTree bug (Fig. 12 #7,
    "Illegal memory access at rbtree_map.c:137") is reproduced by the
    [nontx_rotate] toggle, which performs rotations with raw unlogged,
    unflushed stores. *)

type bugs = {
  nontx_rotate : bool;
      (** Rotations bypass the transaction: a crash mid-rotation leaves
          inconsistent parent/child links. *)
}

val no_bugs : bugs

type t

val create_or_open :
  ?bugs:bugs -> ?pool_bugs:Pool.bugs -> ?alloc_bugs:Pmalloc.bugs ->
  ?tx_bugs:Tx.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-zero. Duplicates update the value. *)

val lookup : t -> int -> int option

val remove : t -> int -> unit
(** CLRS deletion with black-height fixup, inside one transaction: a crash
    anywhere rolls the whole removal back. *)

val check : t -> unit
(** Recovery verification: BST order, no red-red edges, equal black heights,
    consistent parent pointers; re-validates the heap. *)

val entries : t -> (int * int) list
