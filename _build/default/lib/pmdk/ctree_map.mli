(** A persistent crit-bit tree map, modelled on the PMDK [ctree_map] example.

    Internal nodes hold the index of the differing bit and two tagged child
    pointers (low bit set = leaf); leaves hold a key/value pair. Updates use
    the atomic flush-ordering style: new nodes are fully persisted before the
    single 8-byte parent-slot store commits them. The paper's CTree bug
    (Fig. 12 #4) is a missing flush on a freshly constructed internal node —
    the [missing_node_flush] toggle. *)

type bugs = {
  missing_node_flush : bool;
      (** The new internal node is not flushed before the parent slot commit:
          recovery can read a garbage diff-bit or child pointer. *)
  missing_leaf_flush : bool;
      (** The new leaf is not flushed before it is committed. *)
}

val no_bugs : bugs

type t

val create_or_open :
  ?bugs:bugs -> ?pool_bugs:Pool.bugs -> ?alloc_bugs:Pmalloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-negative and below 2^62. Duplicate keys update. *)

val lookup : t -> int -> int option
val remove : t -> int -> unit

val check : t -> unit
(** Recovery verification: walks the tree checking diff-bit monotonicity,
    tag sanity and key prefixes; re-validates the heap. *)

val entries : t -> (int * int) list
