(** A persistent chained hash map whose updates run in undo-log transactions,
    modelled on the PMDK [hashmap_tx] example.

    Inserts and the load-factor-triggered rehash are each one transaction:
    recovery rolls back a half-done update before any reader sees it. The
    paper's hashmap_tx bug (Fig. 12 #6, "Illegal memory access at
    obj.c:1528") corresponds to a transaction whose committed data never
    became persistent — reproduce it by passing
    [{ Tx.no_bugs with missing_data_flush = true }]: a crash after a rehash
    "commits" leaves the bucket pointer aimed at freed memory. *)

type bugs = { rehash_factor : int  (** rehash when count > factor x buckets *) }

val no_bugs : bugs

type t

val create_or_open :
  ?bugs:bugs -> ?pool_bugs:Pool.bugs -> ?alloc_bugs:Pmalloc.bugs ->
  ?tx_bugs:Tx.bugs -> ?nbuckets:int -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
val lookup : t -> int -> int option
val remove : t -> int -> unit
val count : t -> int

val check : t -> unit
val entries : t -> (int * int) list
