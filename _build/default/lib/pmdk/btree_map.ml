type bugs = { nontx_split : bool; missing_root_flush : bool }

let no_bugs = { nontx_split = false; missing_root_flush = false }

let order = 4 (* max items per node *)
let layout_id = 0xb7ee

(* Node layout. *)
let off_n = 0
let off_keys = 8
let off_values = 40
let off_children = 72
let node_size = 112

(* Root object layout: tree-root pointer, then the undo log. *)
let tx_capacity = 48
let root_size = 64 + Tx.area_size ~capacity:tx_capacity

type t = { pool : Pool.t; heap : Pmalloc.t; tx : Tx.t; bugs : bugs }

let ctx t = Pool.ctx t.pool
let root_ptr_addr t = Pool.root t.pool

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()

let key_addr node i = node + off_keys + (8 * i)
let value_addr node i = node + off_values + (8 * i)
let child_addr node i = node + off_children + (8 * i)

let read_n t node = load64 t "btree_map.ml:read n" (node + off_n)
let read_key t node i = load64 t "btree_map.ml:read key" (key_addr node i)
let read_value t node i = load64 t "btree_map.ml:read value" (value_addr node i)

(* The paper's symptom line: dereferencing a child pointer. *)
let read_child t node i = load64 t "btree_map.ml:89" (child_addr node i)

let node_init t node =
  for word = 0 to (node_size / 8) - 1 do
    store64 t "btree_map.ml:node_init" (node + (8 * word)) 0
  done;
  flush t "btree_map.ml:flush node_init" node node_size;
  fence t "btree_map.ml:fence node_init"

let alloc_node t =
  let node = Pmalloc.alloc t.heap ~label:"btree_map.ml:alloc node" node_size in
  node_init t node;
  node

let tree_root t = load64 t "btree_map.ml:read root" (root_ptr_addr t)

let set_tree_root t node =
  store64 t "btree_map.ml:set root" (root_ptr_addr t) node;
  if not t.bugs.missing_root_flush then begin
    flush t "btree_map.ml:flush root" (root_ptr_addr t) 8;
    fence t "btree_map.ml:fence root"
  end

let create_or_open ?(bugs = no_bugs) ?pool_bugs ?alloc_bugs ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let heap = Pmalloc.init_or_open ?bugs:alloc_bugs pool in
  let tx = Tx.attach ctx0 ~base:(Pool.root pool + 64) ~capacity:tx_capacity in
  let t = { pool; heap; tx; bugs } in
  Tx.recover tx;
  if tree_root t = 0 then begin
    let node = alloc_node t in
    set_tree_root t node
  end;
  t

let is_leaf t node = read_child t node 0 = 0

(* --- lookup -------------------------------------------------------------- *)

let rec lookup_in t node k =
  Jaaru.Ctx.progress (ctx t) ~label:"btree_map.ml:lookup" ();
  let n = read_n t node in
  let rec scan i =
    if i >= n then if is_leaf t node then None else lookup_in t (read_child t node i) k
    else
      let ki = read_key t node i in
      if ki = k then Some (read_value t node i)
      else if k < ki then
        if is_leaf t node then None else lookup_in t (read_child t node i) k
      else scan (i + 1)
  in
  scan 0

let lookup t k = lookup_in t (tree_root t) k

let rec min_in t node =
  let n = read_n t node in
  if n = 0 then None
  else if is_leaf t node then Some (read_key t node 0)
  else min_in t (read_child t node 0)

let min_key t = min_in t (tree_root t)

(* --- insert -------------------------------------------------------------- *)

let txset t label addr v = Tx.set64 t.tx ~label addr v

(* Move the upper half of a full child to a fresh sibling and promote the
   median into the parent at slot [i]. *)
let split_child t parent i =
  let child = read_child t parent i in
  let sibling = alloc_node t in
  let set =
    if t.bugs.nontx_split then fun label addr v ->
      (* Atomicity violation: the parent's count commits first, unflushed
         intermediate states leak to PM. *)
      store64 t label addr v
    else txset t
  in
  let pn = read_n t parent in
  if t.bugs.nontx_split then begin
    (* The buggy ordering publishes the enlarged parent before the arrays
       are consistent. *)
    set "btree_map.ml:bug parent n" (parent + off_n) (pn + 1);
    flush t "btree_map.ml:bug flush n" (parent + off_n) 8;
    fence t "btree_map.ml:bug fence n"
  end;
  (* Sibling takes item 3 and children 3..4 of the child. *)
  set "btree_map.ml:split sib key" (key_addr sibling 0) (read_key t child 3);
  set "btree_map.ml:split sib val" (value_addr sibling 0) (read_value t child 3);
  set "btree_map.ml:split sib c0" (child_addr sibling 0) (read_child t child 3);
  set "btree_map.ml:split sib c1" (child_addr sibling 1) (read_child t child 4);
  set "btree_map.ml:split sib n" (sibling + off_n) 1;
  (* Shift the parent's items and children right of slot [i]. *)
  for j = pn - 1 downto i do
    set "btree_map.ml:split shift key" (key_addr parent (j + 1)) (read_key t parent j);
    set "btree_map.ml:split shift val" (value_addr parent (j + 1)) (read_value t parent j);
    set "btree_map.ml:split shift child" (child_addr parent (j + 2)) (read_child t parent (j + 1))
  done;
  (* Promote the child's median item. *)
  set "btree_map.ml:split promote key" (key_addr parent i) (read_key t child 2);
  set "btree_map.ml:split promote val" (value_addr parent i) (read_value t child 2);
  set "btree_map.ml:split link sib" (child_addr parent (i + 1)) sibling;
  (* Shrink the child. *)
  set "btree_map.ml:split child n" (child + off_n) 2;
  set "btree_map.ml:split clear key" (key_addr child 3) 0;
  set "btree_map.ml:split clear key" (key_addr child 2) 0;
  if not t.bugs.nontx_split then set "btree_map.ml:split parent n" (parent + off_n) (pn + 1)

let rec insert_nonfull t node k v =
  Jaaru.Ctx.progress (ctx t) ~label:"btree_map.ml:insert" ();
  let n = read_n t node in
  (* Update in place on duplicate keys. *)
  let rec find_dup i =
    if i >= n then None else if read_key t node i = k then Some i else find_dup (i + 1)
  in
  match find_dup 0 with
  | Some i -> txset t "btree_map.ml:update value" (value_addr node i) v
  | None ->
      if is_leaf t node then begin
        let rec shift j =
          if j >= 0 && read_key t node j > k then begin
            txset t "btree_map.ml:shift key" (key_addr node (j + 1)) (read_key t node j);
            txset t "btree_map.ml:shift val" (value_addr node (j + 1)) (read_value t node j);
            shift (j - 1)
          end
          else j
        in
        let j = shift (n - 1) in
        txset t "btree_map.ml:leaf key" (key_addr node (j + 1)) k;
        txset t "btree_map.ml:leaf val" (value_addr node (j + 1)) v;
        txset t "btree_map.ml:leaf n" (node + off_n) (n + 1)
      end
      else begin
        let rec pick i = if i < n && read_key t node i < k then pick (i + 1) else i in
        let i = pick 0 in
        let child = read_child t node i in
        if read_n t child = order then begin
          split_child t node i;
          (* The promoted key may redirect the descent (or be the key). *)
          let pk = read_key t node i in
          if pk = k then txset t "btree_map.ml:update value" (value_addr node i) v
          else
            let i = if pk < k then i + 1 else i in
            insert_nonfull t (read_child t node i) k v
        end
        else insert_nonfull t child k v
      end

let insert t k v =
  Jaaru.Ctx.check (ctx t) ~label:"btree_map.ml:insert" (k <> 0) "btree keys must be non-zero";
  Tx.run t.tx (fun () ->
      let root = tree_root t in
      if read_n t root = order then begin
        let new_root = alloc_node t in
        txset t "btree_map.ml:new root child" (child_addr new_root 0) root;
        set_tree_root t new_root;
        split_child t new_root 0;
        insert_nonfull t new_root k v
      end
      else insert_nonfull t root k v)

(* --- delete ----------------------------------------------------------------- *)

(* CLRS-style B-tree deletion inside one transaction. The invariant is that
   every non-root node visited has at least 2 items before descending, so a
   removal never underflows below 1; nodes freed by merges are released
   after commit. *)
let item_of t node i = (read_key t node i, read_value t node i)

let set_item t node i (k, v) =
  txset t "btree_map.ml:del set key" (key_addr node i) k;
  txset t "btree_map.ml:del set val" (value_addr node i) v

(* Remove item i (and, in an internal node, child i+1) by shifting left. *)
let excise t node i ~with_child =
  let n = read_n t node in
  for j = i to n - 2 do
    set_item t node j (item_of t node (j + 1));
    if with_child then
      txset t "btree_map.ml:del shift child" (child_addr node (j + 1))
        (read_child t node (j + 2))
  done;
  txset t "btree_map.ml:del clear key" (key_addr node (n - 1)) 0;
  txset t "btree_map.ml:del n" (node + off_n) (n - 1)

(* Merge separator i and child i+1 into child i; frees the right child. *)
let merge_children t node i pending_free =
  let left_c = read_child t node i and right_c = read_child t node (i + 1) in
  let ln = read_n t left_c and rn = read_n t right_c in
  Jaaru.Ctx.check (ctx t) ~label:"btree_map.ml:merge fit" (ln + rn + 1 <= order)
    "merge would overflow";
  set_item t left_c ln (item_of t node i);
  for j = 0 to rn - 1 do
    set_item t left_c (ln + 1 + j) (item_of t right_c j);
    txset t "btree_map.ml:merge child" (child_addr left_c (ln + 1 + j))
      (read_child t right_c j)
  done;
  txset t "btree_map.ml:merge last child" (child_addr left_c (ln + rn + 1))
    (read_child t right_c rn);
  txset t "btree_map.ml:merge n" (left_c + off_n) (ln + rn + 1);
  excise t node i ~with_child:true;
  pending_free := right_c :: !pending_free;
  left_c

(* Ensure child i of node has at least 2 items, borrowing or merging. *)
let fortify t node i pending_free =
  let c = read_child t node i in
  if read_n t c >= 2 then c
  else begin
    let n = read_n t node in
    let left_sib = if i > 0 then Some (read_child t node (i - 1)) else None in
    let right_sib = if i < n then Some (read_child t node (i + 1)) else None in
    match (left_sib, right_sib) with
    | Some ls, _ when read_n t ls >= 2 ->
        (* Rotate right through separator i-1. *)
        let lsn = read_n t ls in
        let cn = read_n t c in
        for j = cn - 1 downto 0 do
          set_item t c (j + 1) (item_of t c j)
        done;
        for j = cn + 1 downto 1 do
          txset t "btree_map.ml:borrow shift child" (child_addr c j) (read_child t c (j - 1))
        done;
        set_item t c 0 (item_of t node (i - 1));
        txset t "btree_map.ml:borrow child" (child_addr c 0) (read_child t ls lsn);
        set_item t node (i - 1) (item_of t ls (lsn - 1));
        txset t "btree_map.ml:borrow clear" (key_addr ls (lsn - 1)) 0;
        txset t "btree_map.ml:borrow n" (ls + off_n) (lsn - 1);
        txset t "btree_map.ml:borrow cn" (c + off_n) (cn + 1);
        c
    | _, Some rs when read_n t rs >= 2 ->
        (* Rotate left through separator i: the sibling loses its first item
           AND its first child. *)
        let cn = read_n t c in
        set_item t c cn (item_of t node i);
        txset t "btree_map.ml:borrow child r" (child_addr c (cn + 1)) (read_child t rs 0);
        set_item t node i (item_of t rs 0);
        let rsn = read_n t rs in
        for j = 0 to rsn - 2 do
          set_item t rs j (item_of t rs (j + 1))
        done;
        for j = 0 to rsn - 1 do
          txset t "btree_map.ml:borrow shift child r" (child_addr rs j) (read_child t rs (j + 1))
        done;
        txset t "btree_map.ml:borrow clear r" (key_addr rs (rsn - 1)) 0;
        txset t "btree_map.ml:borrow rsn" (rs + off_n) (rsn - 1);
        txset t "btree_map.ml:borrow cn r" (c + off_n) (cn + 1);
        c
    | Some _, _ -> merge_children t node (i - 1) pending_free
    | None, Some _ -> merge_children t node i pending_free
    | None, None -> c (* single-child root shapes cannot occur *)
  end

let rec max_item t node =
  if is_leaf t node then item_of t node (read_n t node - 1)
  else max_item t (read_child t node (read_n t node))

let rec min_item t node =
  if is_leaf t node then item_of t node 0 else min_item t (read_child t node 0)

let rec delete_from t node k pending_free =
  Jaaru.Ctx.progress (ctx t) ~label:"btree_map.ml:delete" ();
  let n = read_n t node in
  let rec find i = if i >= n then None else if read_key t node i = k then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
      if is_leaf t node then excise t node i ~with_child:false
      else begin
        let left_c = read_child t node i and right_c = read_child t node (i + 1) in
        if read_n t left_c >= 2 then begin
          let pk, pv = max_item t left_c in
          set_item t node i (pk, pv);
          delete_from t left_c pk pending_free
        end
        else if read_n t right_c >= 2 then begin
          let sk, sv = min_item t right_c in
          set_item t node i (sk, sv);
          delete_from t right_c sk pending_free
        end
        else begin
          let merged = merge_children t node i pending_free in
          delete_from t merged k pending_free
        end
      end
  | None ->
      if not (is_leaf t node) then begin
        let rec pick i = if i < n && read_key t node i < k then pick (i + 1) else i in
        let i = pick 0 in
        let c = fortify t node i pending_free in
        delete_from t c k pending_free
      end

let remove t k =
  let pending_free = ref [] in
  Tx.run t.tx (fun () ->
      let root = tree_root t in
      delete_from t root k pending_free;
      (* Shrink an emptied internal root. *)
      if read_n t root = 0 && not (is_leaf t root) then begin
        set_tree_root t (read_child t root 0);
        pending_free := root :: !pending_free
      end);
  List.iter (Pmalloc.free t.heap ~label:"btree_map.ml:free") !pending_free

(* --- verification -------------------------------------------------------- *)

let rec check_node t node ~lo ~hi ~depth =
  Jaaru.Ctx.progress (ctx t) ~label:"btree_map.ml:check" ();
  Jaaru.Ctx.check (ctx t) ~label:"btree_map.ml:check depth" (depth < 64) "btree too deep";
  let n = read_n t node in
  Jaaru.Ctx.check (ctx t) ~label:"btree_map.ml:check n" (n >= 0 && n <= order)
    "btree node item count out of range";
  let leaf = is_leaf t node in
  for i = 0 to n - 1 do
    let k = read_key t node i in
    Jaaru.Ctx.check (ctx t) ~label:"btree_map.ml:check key" (k <> 0) "btree item key is zero";
    Jaaru.Ctx.check (ctx t) ~label:"btree_map.ml:check order"
      (k > lo && (hi = 0 || k < hi))
      "btree keys out of order";
    if not leaf then begin
      let left = read_child t node i in
      let right_bound = k in
      check_node t left ~lo:(if i = 0 then lo else read_key t node (i - 1)) ~hi:right_bound
        ~depth:(depth + 1)
    end
  done;
  if (not leaf) && n > 0 then
    check_node t (read_child t node n) ~lo:(read_key t node (n - 1)) ~hi ~depth:(depth + 1)

let check t =
  Pmalloc.check t.heap;
  check_node t (tree_root t) ~lo:0 ~hi:0 ~depth:0

let entries t =
  let rec walk node acc =
    Jaaru.Ctx.progress (ctx t) ~label:"btree_map.ml:entries" ();
    let n = read_n t node in
    let leaf = is_leaf t node in
    let rec items i acc =
      if i >= n then if leaf then acc else walk (read_child t node i) acc
      else
        let acc = if leaf then acc else walk (read_child t node i) acc in
        items (i + 1) ((read_key t node i, read_value t node i) :: acc)
    in
    items 0 acc
  in
  List.rev (walk (tree_root t) [])
