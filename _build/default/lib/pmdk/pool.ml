type bugs = { missing_header_flush : bool }

let no_bugs = { missing_header_flush = false }

(* Header layout. The commit line (magic + checksum) is deliberately a
   different cache line from the parameter line, as in the real multi-line
   pmemobj header: committing the magic must be ordered after the parameters
   are persistent. *)
let magic_value = 0x504d504f4f4c31 (* "PMPOOL1" *)
let off_magic = 0
let off_checksum = 8
let off_layout = 64
let off_root_off = 72
let off_root_size = 80
let off_heap_off = 88
let header_size = 128

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; root : Pmem.Addr.t; heap_base : Pmem.Addr.t }

let ctx t = t.ctx
let root t = t.root
let heap_base t = t.heap_base
let heap_limit t = Pmem.Region.limit (Jaaru.Ctx.region t.ctx)

let checksum_of ~layout ~root_off ~root_size ~heap_off =
  let bytes =
    List.concat_map (Pmem.Bytes_le.explode ~width:8) [ layout; root_off; root_size; heap_off ]
  in
  Pmem.Crc32.digest_bytes bytes

let align_up n a = (n + a - 1) / a * a

let geometry ctx ~root_size =
  let base = (Jaaru.Ctx.region ctx).Pmem.Region.base in
  let root_off = header_size in
  let heap_off = align_up (root_off + root_size) Pmem.Addr.cache_line_size in
  (base, root_off, heap_off)

let handle ctx ~root_off ~heap_off =
  let base = (Jaaru.Ctx.region ctx).Pmem.Region.base in
  { ctx; base; root = base + root_off; heap_base = base + heap_off }

let create ?(bugs = no_bugs) ctx ~layout ~root_size =
  let base, root_off, heap_off = geometry ctx ~root_size in
  Jaaru.Ctx.store64 ctx ~label:"pool.ml:layout" (base + off_layout) layout;
  Jaaru.Ctx.store64 ctx ~label:"pool.ml:root_off" (base + off_root_off) root_off;
  Jaaru.Ctx.store64 ctx ~label:"pool.ml:root_size" (base + off_root_size) root_size;
  Jaaru.Ctx.store64 ctx ~label:"pool.ml:heap_off" (base + off_heap_off) heap_off;
  if not bugs.missing_header_flush then begin
    Jaaru.Ctx.clflush ctx ~label:"pool.ml:flush params" (base + off_layout) 32;
    Jaaru.Ctx.sfence ctx ~label:"pool.ml:fence params" ()
  end;
  let csum = checksum_of ~layout ~root_off ~root_size ~heap_off in
  Jaaru.Ctx.store64 ctx ~label:"pool.ml:checksum" (base + off_checksum) csum;
  Jaaru.Ctx.store64 ctx ~label:"pool.ml:magic" (base + off_magic) magic_value;
  Jaaru.Ctx.clflush ctx ~label:"pool.ml:flush commit" (base + off_magic) 16;
  Jaaru.Ctx.sfence ctx ~label:"pool.ml:fence commit" ();
  handle ctx ~root_off ~heap_off

let read_header ctx =
  let base = (Jaaru.Ctx.region ctx).Pmem.Region.base in
  let magic = Jaaru.Ctx.load64 ctx ~label:"pool.ml:read magic" (base + off_magic) in
  let csum = Jaaru.Ctx.load64 ctx ~label:"pool.ml:read checksum" (base + off_checksum) in
  let layout = Jaaru.Ctx.load64 ctx ~label:"pool.ml:read layout" (base + off_layout) in
  let root_off = Jaaru.Ctx.load64 ctx ~label:"pool.ml:read root_off" (base + off_root_off) in
  let root_size = Jaaru.Ctx.load64 ctx ~label:"pool.ml:read root_size" (base + off_root_size) in
  let heap_off = Jaaru.Ctx.load64 ctx ~label:"pool.ml:read heap_off" (base + off_heap_off) in
  (magic, csum, layout, root_off, root_size, heap_off)

let valid ctx ~layout =
  let magic, csum, layout', root_off, root_size, heap_off = read_header ctx in
  magic = magic_value && layout' = layout
  && csum = checksum_of ~layout:layout' ~root_off ~root_size ~heap_off

let open_or_create ?(bugs = no_bugs) ctx ~layout ~root_size =
  let magic, csum, layout', root_off, root_size', heap_off = read_header ctx in
  if magic <> magic_value then
    (* The commit store never reached persistent memory: the pool was never
       created, so creation simply restarts. *)
    create ~bugs ctx ~layout ~root_size
  else if
    layout' <> layout
    || csum <> checksum_of ~layout:layout' ~root_off ~root_size:root_size' ~heap_off
  then Jaaru.Ctx.abort ctx ~label:"pool.ml:open" "failed to open pool"
  else handle ctx ~root_off ~heap_off
