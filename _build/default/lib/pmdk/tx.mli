(** Miniature libpmemobj undo-log transactions.

    A transaction snapshots the old value of every word it is about to
    modify into a persistent undo log, makes its stores, and at commit
    flushes the modified data before discarding the log. Recovery after a
    crash mid-transaction rolls the data back from the log, restoring the
    pre-transaction state — giving failure atomicity to multi-word updates
    (used by the hashmap_tx and rbtree examples, as in PMDK).

    Protocol invariants: a log entry is flushed before the entry count that
    commits it advances; all modified data is flushed before the log is
    discarded; the stage word orders both. Each has a bug toggle. *)

type bugs = {
  missing_log_flush : bool;
      (** Entries are not flushed before the count commits them: rollback can
          apply garbage. *)
  missing_data_flush : bool;
      (** Modified ranges are not flushed before the log is discarded:
          committed transactions can silently lose their writes. *)
  missing_stage_flush : bool;
      (** Stage transitions are not flushed. *)
}

val no_bugs : bugs

val area_size : capacity:int -> int
(** Bytes of persistent memory a log with room for [capacity] entries needs. *)

type t

val attach : ?bugs:bugs -> Jaaru.Ctx.t -> base:Pmem.Addr.t -> capacity:int -> t
(** Binds a transaction handle to a log area (allocated by the caller, e.g.
    inside the pool root object). Does not touch PM. *)

val recover : t -> unit
(** Recovery entry point: rolls back a transaction that was in progress at
    the crash and resets the log. Must run before the data is read. *)

val run : t -> (unit -> unit) -> unit
(** [run t body] wraps [body] in begin/commit. Nested transactions flatten
    into the outermost one. *)

val set64 : t -> ?label:string -> Pmem.Addr.t -> int -> unit
(** A logged 64-bit store: inside a transaction, snapshots the old value
    first; outside one, fails the checker. *)

val add_range : t -> ?label:string -> Pmem.Addr.t -> int -> unit
(** Snapshots [size] bytes (word-aligned) so the caller may write them with
    plain stores inside the transaction. *)

val in_tx : t -> bool

val stage_was_active : t -> bool
(** Whether recovery found (and rolled back) an interrupted transaction —
    observable for tests. *)
