type bugs = { nontx_rotate : bool }

let no_bugs = { nontx_rotate = false }

let layout_id = 0x9b7e
let red = 0
let black = 1

(* Node layout. *)
let off_key = 0
let off_value = 8
let off_color = 16
let off_left = 24
let off_right = 32
let off_parent = 40
let node_size = 48

(* Root object: tree-root slot, nil sentinel slot, then the undo log. *)
let tx_capacity = 64
let root_size = 64 + Tx.area_size ~capacity:tx_capacity

type t = { pool : Pool.t; heap : Pmalloc.t; tx : Tx.t; bugs : bugs; nil : Pmem.Addr.t }

let ctx t = Pool.ctx t.pool
let root_slot t = Pool.root t.pool
let nil_slot pool = Pool.root pool + 8

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()

let key t n = load64 t "rbtree_map.ml:key" (n + off_key)
let value t n = load64 t "rbtree_map.ml:value" (n + off_value)
let color t n = load64 t "rbtree_map.ml:color" (n + off_color)
let left t n = load64 t "rbtree_map.ml:137" (n + off_left)
let right t n = load64 t "rbtree_map.ml:137" (n + off_right)
let parent t n = load64 t "rbtree_map.ml:parent" (n + off_parent)

(* Inside-transaction setters; the buggy rotation swaps these for raw stores. *)
let txset t label addr v = Tx.set64 t.tx ~label addr v
let set_color t n c = txset t "rbtree_map.ml:set color" (n + off_color) c
let set_left t n x = txset t "rbtree_map.ml:set left" (n + off_left) x
let set_right t n x = txset t "rbtree_map.ml:set right" (n + off_right) x
let set_parent t n x = txset t "rbtree_map.ml:set parent" (n + off_parent) x

let tree_root t = load64 t "rbtree_map.ml:read root" (root_slot t)
let set_tree_root t n = txset t "rbtree_map.ml:set root" (root_slot t) n

let alloc_node t k v ~color:c ~nil =
  let n = Pmalloc.alloc t.heap ~label:"rbtree_map.ml:alloc" node_size in
  store64 t "rbtree_map.ml:init key" (n + off_key) k;
  store64 t "rbtree_map.ml:init value" (n + off_value) v;
  store64 t "rbtree_map.ml:init color" (n + off_color) c;
  store64 t "rbtree_map.ml:init left" (n + off_left) nil;
  store64 t "rbtree_map.ml:init right" (n + off_right) nil;
  store64 t "rbtree_map.ml:init parent" (n + off_parent) nil;
  flush t "rbtree_map.ml:flush init" n node_size;
  fence t "rbtree_map.ml:fence init";
  n

let create_or_open ?(bugs = no_bugs) ?pool_bugs ?alloc_bugs ?tx_bugs ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let heap = Pmalloc.init_or_open ?bugs:alloc_bugs pool in
  let tx = Tx.attach ?bugs:tx_bugs ctx0 ~base:(Pool.root pool + 64) ~capacity:tx_capacity in
  Tx.recover tx;
  let nil0 = Jaaru.Ctx.load64 ctx0 ~label:"rbtree_map.ml:read nil" (nil_slot pool) in
  let t0 = { pool; heap; tx; bugs; nil = nil0 } in
  if nil0 = 0 then begin
    let nil = Pmalloc.alloc heap ~label:"rbtree_map.ml:alloc nil" node_size in
    let t1 = { t0 with nil } in
    store64 t1 "rbtree_map.ml:init nil color" (nil + off_color) black;
    store64 t1 "rbtree_map.ml:init nil key" (nil + off_key) 0;
    store64 t1 "rbtree_map.ml:init nil left" (nil + off_left) nil;
    store64 t1 "rbtree_map.ml:init nil right" (nil + off_right) nil;
    store64 t1 "rbtree_map.ml:init nil parent" (nil + off_parent) nil;
    flush t1 "rbtree_map.ml:flush nil" nil node_size;
    fence t1 "rbtree_map.ml:fence nil";
    (* Commit the sentinel and the empty root together. *)
    store64 t1 "rbtree_map.ml:init root" (root_slot t1) nil;
    store64 t1 "rbtree_map.ml:commit nil" (nil_slot pool) nil;
    flush t1 "rbtree_map.ml:flush slots" (root_slot t1) 16;
    fence t1 "rbtree_map.ml:fence slots";
    t1
  end
  else t0

(* --- rotations ----------------------------------------------------------- *)

let rot_set t label addr v =
  if t.bugs.nontx_rotate then store64 t label addr v else txset t label addr v

let rotate_left t x =
  let y = right t x in
  rot_set t "rbtree_map.ml:rot x.right" (x + off_right) (left t y);
  if left t y <> t.nil then rot_set t "rbtree_map.ml:rot yl.parent" (left t y + off_parent) x;
  rot_set t "rbtree_map.ml:rot y.parent" (y + off_parent) (parent t x);
  let px = parent t x in
  if px = t.nil then
    if t.bugs.nontx_rotate then store64 t "rbtree_map.ml:rot root" (root_slot t) y
    else set_tree_root t y
  else if x = left t px then rot_set t "rbtree_map.ml:rot p.left" (px + off_left) y
  else rot_set t "rbtree_map.ml:rot p.right" (px + off_right) y;
  rot_set t "rbtree_map.ml:rot y.left" (y + off_left) x;
  rot_set t "rbtree_map.ml:rot x.parent" (x + off_parent) y

let rotate_right t x =
  let y = left t x in
  rot_set t "rbtree_map.ml:rot x.left" (x + off_left) (right t y);
  if right t y <> t.nil then rot_set t "rbtree_map.ml:rot yr.parent" (right t y + off_parent) x;
  rot_set t "rbtree_map.ml:rot y.parent" (y + off_parent) (parent t x);
  let px = parent t x in
  if px = t.nil then
    if t.bugs.nontx_rotate then store64 t "rbtree_map.ml:rot root" (root_slot t) y
    else set_tree_root t y
  else if x = right t px then rot_set t "rbtree_map.ml:rot p.right" (px + off_right) y
  else rot_set t "rbtree_map.ml:rot p.left" (px + off_left) y;
  rot_set t "rbtree_map.ml:rot y.right" (y + off_right) x;
  rot_set t "rbtree_map.ml:rot x.parent" (x + off_parent) y

(* --- insert -------------------------------------------------------------- *)

let rec fixup t z =
  Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:fixup" ();
  let p = parent t z in
  if color t p = red then begin
    let g = parent t p in
    if p = left t g then begin
      let u = right t g in
      if color t u = red then begin
        set_color t p black;
        set_color t u black;
        set_color t g red;
        fixup t g
      end
      else begin
        let z = if z = right t p then (rotate_left t p; p) else z in
        let p = parent t z in
        let g = parent t p in
        set_color t p black;
        set_color t g red;
        rotate_right t g;
        fixup t z
      end
    end
    else begin
      let u = left t g in
      if color t u = red then begin
        set_color t p black;
        set_color t u black;
        set_color t g red;
        fixup t g
      end
      else begin
        let z = if z = left t p then (rotate_right t p; p) else z in
        let p = parent t z in
        let g = parent t p in
        set_color t p black;
        set_color t g red;
        rotate_left t g;
        fixup t z
      end
    end
  end

let insert t k v =
  Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:insert" (k <> 0) "rbtree keys must be non-zero";
  Tx.run t.tx (fun () ->
      (* BST descent. *)
      let rec descend p n =
        Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:descend" ();
        if n = t.nil then `Attach p
        else
          let nk = key t n in
          if nk = k then `Update n
          else descend n (if k < nk then left t n else right t n)
      in
      match descend t.nil (tree_root t) with
      | `Update n -> txset t "rbtree_map.ml:update value" (n + off_value) v
      | `Attach p ->
          let z = alloc_node t k v ~color:red ~nil:t.nil in
          set_parent t z p;
          if p = t.nil then set_tree_root t z
          else if k < key t p then set_left t p z
          else set_right t p z;
          fixup t z;
          set_color t (tree_root t) black)

(* --- delete ----------------------------------------------------------------- *)

(* CLRS deletion, entirely inside one transaction: transplant, successor
   splice, and the black-height fixup. The sentinel's parent field is
   written transiently during transplant, exactly as CLRS relies on. *)
let transplant t u v =
  let pu = parent t u in
  if pu = t.nil then set_tree_root t v
  else if u = left t pu then set_left t pu v
  else set_right t pu v;
  set_parent t v pu

let rec minimum t n = if left t n = t.nil then n else minimum t (left t n)

let rec delete_fixup t x =
  Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:delete fixup" ();
  if x <> tree_root t && color t x = black then begin
    let p = parent t x in
    if x = left t p then begin
      let w = right t p in
      let w =
        if color t w = red then begin
          set_color t w black;
          set_color t p red;
          rotate_left t p;
          right t p
        end
        else w
      in
      if color t (left t w) = black && color t (right t w) = black then begin
        set_color t w red;
        delete_fixup t p
      end
      else begin
        let w =
          if color t (right t w) = black then begin
            set_color t (left t w) black;
            set_color t w red;
            rotate_right t w;
            right t p
          end
          else w
        in
        set_color t w (color t p);
        set_color t p black;
        set_color t (right t w) black;
        rotate_left t p;
        delete_fixup t (tree_root t)
      end
    end
    else begin
      let w = left t p in
      let w =
        if color t w = red then begin
          set_color t w black;
          set_color t p red;
          rotate_right t p;
          left t p
        end
        else w
      in
      if color t (right t w) = black && color t (left t w) = black then begin
        set_color t w red;
        delete_fixup t p
      end
      else begin
        let w =
          if color t (left t w) = black then begin
            set_color t (right t w) black;
            set_color t w red;
            rotate_left t w;
            left t p
          end
          else w
        in
        set_color t w (color t p);
        set_color t p black;
        set_color t (left t w) black;
        rotate_right t p;
        delete_fixup t (tree_root t)
      end
    end
  end
  else set_color t x black

let remove t k =
  let pending_free = ref None in
  Tx.run t.tx (fun () ->
      let rec find n =
        Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:remove find" ();
        if n = t.nil then None
        else
          let nk = key t n in
          if nk = k then Some n else find (if k < nk then left t n else right t n)
      in
      match find (tree_root t) with
      | None -> ()
      | Some z ->
          let y_color = ref (color t z) in
          let x =
            if left t z = t.nil then begin
              let x = right t z in
              transplant t z x;
              x
            end
            else if right t z = t.nil then begin
              let x = left t z in
              transplant t z x;
              x
            end
            else begin
              let y = minimum t (right t z) in
              y_color := color t y;
              let x = right t y in
              if parent t y = z then set_parent t x y
              else begin
                transplant t y (right t y);
                set_right t y (right t z);
                set_parent t (right t y) y
              end;
              transplant t z y;
              set_left t y (left t z);
              set_parent t (left t y) y;
              set_color t y (color t z);
              x
            end
          in
          if !y_color = black then delete_fixup t x;
          pending_free := Some z);
  (* Free only after the commit: rollback must be able to resurrect z. *)
  Option.iter (Pmalloc.free t.heap ~label:"rbtree_map.ml:free") !pending_free

(* --- lookup / verification ----------------------------------------------- *)

let lookup t k =
  let rec go n =
    Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:lookup" ();
    if n = t.nil || n = 0 then None
    else
      let nk = key t n in
      if nk = k then Some (value t n) else go (if k < nk then left t n else right t n)
  in
  go (tree_root t)

(* Returns the subtree's black height. *)
let rec check_node t n ~lo ~hi ~depth =
  Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:check" ();
  Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check depth" (depth < 128) "rbtree too deep";
  if n = t.nil then 1
  else begin
    let k = key t n in
    let c = color t n in
    Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check color" (c = red || c = black)
      "rbtree node color corrupt";
    Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check order"
      (k > lo && (hi = 0 || k < hi))
      "rbtree keys out of order";
    let l = left t n and r = right t n in
    if l <> t.nil then
      Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check parent" (parent t l = n)
        "rbtree left child's parent link broken";
    if r <> t.nil then
      Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check parent" (parent t r = n)
        "rbtree right child's parent link broken";
    if c = red then
      Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check red" (color t l = black && color t r = black)
        "rbtree red node has a red child";
    let bh_l = check_node t l ~lo ~hi:k ~depth:(depth + 1) in
    let bh_r = check_node t r ~lo:k ~hi ~depth:(depth + 1) in
    Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check bh" (bh_l = bh_r)
      "rbtree black heights differ";
    bh_l + if c = black then 1 else 0
  end

let check t =
  Pmalloc.check t.heap;
  let r = tree_root t in
  if r <> 0 && r <> t.nil then begin
    Jaaru.Ctx.check (ctx t) ~label:"rbtree_map.ml:check root" (color t r = black)
      "rbtree root is not black";
    ignore (check_node t r ~lo:0 ~hi:0 ~depth:0)
  end

let entries t =
  let rec walk n acc =
    Jaaru.Ctx.progress (ctx t) ~label:"rbtree_map.ml:entries" ();
    if n = t.nil || n = 0 then acc
    else walk (left t n) ((key t n, value t n) :: walk (right t n) acc)
  in
  let r = tree_root t in
  if r = 0 then [] else walk r []
