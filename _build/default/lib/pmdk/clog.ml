type bugs = { skip_crc : bool }

let no_bugs = { skip_crc = false }

let layout_id = 0xc106
let root_size = 8 (* unused placeholder; records live in the heap area *)

(* Record layout: sequence number, payload, CRC of both; 32-byte stride so
   two records share a cache line and torn line cuts are interesting. *)
let off_seqno = 0
let off_payload = 8
let off_crc = 16
let record_stride = 32

type t = { pool : Pool.t; bugs : bugs; mutable next : int }

let ctx t = Pool.ctx t.pool
let record_addr t i = Pool.heap_base t.pool + (i * record_stride)
let max_records t = (Pool.heap_limit t.pool - Pool.heap_base t.pool) / record_stride

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr

let crc_of ~seqno ~payload =
  Pmem.Crc32.digest_bytes
    (Pmem.Bytes_le.explode ~width:8 seqno @ Pmem.Bytes_le.explode ~width:8 payload)

(* A record is accepted if its sequence number matches its slot and (unless
   the bug is enabled) its checksum validates the contents. *)
let read_record t i =
  let r = record_addr t i in
  let seqno = load64 t "clog.ml:read seqno" (r + off_seqno) in
  if seqno <> i + 1 then None
  else
    let payload = load64 t "clog.ml:read payload" (r + off_payload) in
    if t.bugs.skip_crc then Some payload
    else
      let crc = load64 t "clog.ml:read crc" (r + off_crc) in
      if crc = crc_of ~seqno ~payload then Some payload else None

let recover_list t =
  let limit = max_records t in
  let rec scan i acc =
    if i >= limit then List.rev acc
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"clog.ml:recover" ();
      match read_record t i with
      | None -> List.rev acc
      | Some payload -> scan (i + 1) (payload :: acc)
    end
  in
  scan 0 []

let create_or_open ?(bugs = no_bugs) ?pool_bugs ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let t = { pool; bugs; next = 0 } in
  t.next <- List.length (recover_list t);
  t

let append t payload =
  Jaaru.Ctx.check (ctx t) ~label:"clog.ml:append" (t.next < max_records t) "log full";
  let i = t.next in
  let r = record_addr t i in
  let seqno = i + 1 in
  (* Header-first logging: the slot header goes down before the body, as in
     a real write-ahead log, and nothing is flushed — only the trailing CRC
     makes accepting the record safe. *)
  store64 t "clog.ml:append seqno" (r + off_seqno) seqno;
  store64 t "clog.ml:append payload" (r + off_payload) payload;
  store64 t "clog.ml:append crc" (r + off_crc) (crc_of ~seqno ~payload);
  t.next <- i + 1

let recover = recover_list

let check t ~expected =
  let got = recover_list t in
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
    | _ :: _, [] -> false
  in
  Jaaru.Ctx.check (ctx t) ~label:"clog.ml:check"
    (is_prefix got expected)
    "recovered log is not a prefix of what was appended"
