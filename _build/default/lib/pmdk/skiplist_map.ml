type bugs = { missing_node_flush : bool; index_before_data : bool }

let no_bugs = { missing_node_flush = false; index_before_data = false }

let layout_id = 0x5417
let levels = 4

(* Node layout. *)
let off_key = 0
let off_value = 8
let off_next l = 16 + (8 * l)
let node_size = 16 + (8 * levels)

(* Root object: the head node's next pointers. *)
let root_size = 8 * levels

type t = { pool : Pool.t; heap : Pmalloc.t; bugs : bugs }

let ctx t = Pool.ctx t.pool

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()

(* The head's next-pointer cell for a level; nodes use their own slots. *)
let head_slot t l = Pool.root t.pool + (8 * l)
let next_slot node l = node + off_next l

let node_key t n = load64 t "skiplist_map.ml:key" (n + off_key)
let node_value t n = load64 t "skiplist_map.ml:value" (n + off_value)
let read_next t slot = load64 t "skiplist_map.ml:next" slot

(* Deterministic level for a key (replays must be reproducible): count
   trailing ones of a mixed hash, capped at levels-1. *)
let level_of k =
  let h = k * 0x2545f4914f6cdd1 land max_int in
  let rec ones i = if i >= levels - 1 || (h lsr i) land 1 = 0 then i else ones (i + 1) in
  ones 0

let create_or_open ?(bugs = no_bugs) ?pool_bugs ?alloc_bugs ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let heap = Pmalloc.init_or_open ?bugs:alloc_bugs pool in
  { pool; heap; bugs }

(* The slots whose pointers precede [k] at every level, top-down. *)
let find_preds t k =
  let preds = Array.make levels 0 in
  let slot = ref (head_slot t (levels - 1)) in
  for l = levels - 1 downto 0 do
    (* [slot] currently points at this level's chain position. *)
    let rec advance () =
      Jaaru.Ctx.progress (ctx t) ~label:"skiplist_map.ml:search" ();
      let n = read_next t !slot in
      if n <> 0 && node_key t n < k then begin
        slot := next_slot n l;
        advance ()
      end
    in
    advance ();
    preds.(l) <- !slot;
    if l > 0 then begin
      (* Step down: the same node's next level, or the head's. *)
      let p = !slot in
      slot :=
        (if p >= Pool.root t.pool && p < Pool.root t.pool + root_size then head_slot t (l - 1)
         else p - off_next l + off_next (l - 1))
    end
  done;
  preds

let lookup t k =
  let preds = find_preds t k in
  let n = read_next t preds.(0) in
  if n <> 0 && node_key t n = k then Some (node_value t n) else None

let insert t k v =
  Jaaru.Ctx.check (ctx t) ~label:"skiplist_map.ml:insert" (k <> 0) "keys must be non-zero";
  let preds = find_preds t k in
  let existing = read_next t preds.(0) in
  if existing <> 0 && node_key t existing = k then begin
    store64 t "skiplist_map.ml:update" (existing + off_value) v;
    flush t "skiplist_map.ml:flush update" (existing + off_value) 8;
    fence t "skiplist_map.ml:fence update"
  end
  else begin
    let lvl = level_of k in
    let n = Pmalloc.alloc t.heap ~label:"skiplist_map.ml:alloc" node_size in
    store64 t "skiplist_map.ml:init key" (n + off_key) k;
    store64 t "skiplist_map.ml:init value" (n + off_value) v;
    for l = 0 to levels - 1 do
      store64 t "skiplist_map.ml:init next" (next_slot n l)
        (if l <= lvl then read_next t preds.(l) else 0)
    done;
    if not t.bugs.missing_node_flush then begin
      flush t "skiplist_map.ml:flush node" n node_size;
      fence t "skiplist_map.ml:fence node"
    end;
    let splice_upper () =
      for l = 1 to lvl do
        store64 t "skiplist_map.ml:splice upper" preds.(l) n;
        flush t "skiplist_map.ml:flush upper" preds.(l) 8
      done;
      if lvl > 0 then fence t "skiplist_map.ml:fence upper"
    in
    if t.bugs.index_before_data then begin
      (* The bug: index entries published before the data-level commit. *)
      splice_upper ();
      store64 t "skiplist_map.ml:commit L0" preds.(0) n;
      flush t "skiplist_map.ml:flush L0" preds.(0) 8;
      fence t "skiplist_map.ml:fence L0"
    end
    else begin
      (* The level-0 splice is the commit store. *)
      store64 t "skiplist_map.ml:commit L0" preds.(0) n;
      flush t "skiplist_map.ml:flush L0" preds.(0) 8;
      fence t "skiplist_map.ml:fence L0";
      splice_upper ()
    end
  end

let remove t k =
  let preds = find_preds t k in
  let n = read_next t preds.(0) in
  if n <> 0 && node_key t n = k then begin
    (* Unlink top-down so the node never dangles from the index. *)
    for l = levels - 1 downto 1 do
      if read_next t preds.(l) = n then begin
        store64 t "skiplist_map.ml:unlink upper" preds.(l) (read_next t (next_slot n l));
        flush t "skiplist_map.ml:flush unlink upper" preds.(l) 8;
        fence t "skiplist_map.ml:fence unlink upper"
      end
    done;
    store64 t "skiplist_map.ml:unlink L0" preds.(0) (read_next t (next_slot n 0));
    flush t "skiplist_map.ml:flush unlink L0" preds.(0) 8;
    fence t "skiplist_map.ml:fence unlink L0";
    Pmalloc.free t.heap ~label:"skiplist_map.ml:free" n
  end

let check t =
  Pmalloc.check t.heap;
  (* Level 0: strictly sorted; collect its keys. *)
  let keys = Hashtbl.create 32 in
  let rec walk0 slot last =
    Jaaru.Ctx.progress (ctx t) ~label:"skiplist_map.ml:check L0" ();
    let n = read_next t slot in
    if n <> 0 then begin
      Pmalloc.assert_allocated t.heap n;
      let k = node_key t n in
      Jaaru.Ctx.check (ctx t) ~label:"skiplist_map.ml:check order" (k > last)
        "level-0 keys out of order";
      Hashtbl.replace keys k ();
      walk0 (next_slot n 0) k
    end
  in
  walk0 (head_slot t 0) 0;
  (* Upper levels: sorted sublists of level 0. *)
  for l = 1 to levels - 1 do
    let rec walk slot last =
      Jaaru.Ctx.progress (ctx t) ~label:"skiplist_map.ml:check upper" ();
      let n = read_next t slot in
      if n <> 0 then begin
        let k = node_key t n in
        Jaaru.Ctx.check (ctx t) ~label:"skiplist_map.ml:check upper order" (k > last)
          "upper-level keys out of order";
        Jaaru.Ctx.check (ctx t) ~label:"skiplist_map.ml:check index"
          (Hashtbl.mem keys k)
          "index entry not present in the data level";
        walk (next_slot n l) k
      end
    in
    walk (head_slot t l) 0
  done

let entries t =
  let rec walk slot acc =
    Jaaru.Ctx.progress (ctx t) ~label:"skiplist_map.ml:entries" ();
    let n = read_next t slot in
    if n = 0 then List.rev acc
    else walk (next_slot n 0) ((node_key t n, node_value t n) :: acc)
  in
  walk (head_slot t 0) []
