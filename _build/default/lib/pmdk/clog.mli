(** A checksum-committed append-only log.

    The checksum-based recovery idiom the paper gives special support for
    (§4): records carry a CRC of their contents instead of being committed by
    a separate commit store, and the writer issues {e no} flushes at all —
    persistence is whatever the cache happened to write back. Recovery scans
    from the start and accepts records until the first checksum mismatch.

    Because nothing is flushed, recovery loads read from many unflushed
    stores; Jaaru explores every consistent cut of each cache line, and the
    CRC must reject every torn prefix. The [skip_crc] toggle turns the
    validation off, which lets torn records through — a real bug Jaaru
    reports as an assertion when the payload disagrees with the sequence
    invariant. *)

type bugs = {
  skip_crc : bool;  (** Recovery trusts record lengths without validating CRCs. *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?pool_bugs:Pool.bugs -> Jaaru.Ctx.t -> t

val append : t -> int -> unit
(** Appends one 62-bit payload. No flushes are issued. *)

val recover : t -> int list
(** The recovered payload prefix, oldest first. *)

val check : t -> expected:int list -> unit
(** Fails the checker unless {!recover} returns a prefix of [expected] —
    the fundamental guarantee of an append-only log. *)
