type bugs = { rehash_factor : int }

let no_bugs = { rehash_factor = 2 }

let layout_id = 0x4a5b

(* Root object fields, then the undo log. *)
let off_nbuckets = 0
let off_buckets = 8
let off_count = 16
let tx_capacity = 96
let root_size = 64 + Tx.area_size ~capacity:tx_capacity

(* Entry layout. *)
let off_key = 0
let off_value = 8
let off_next = 16
let entry_size = 24

type t = { pool : Pool.t; heap : Pmalloc.t; tx : Tx.t; bugs : bugs }

let ctx t = Pool.ctx t.pool
let root t = Pool.root t.pool

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()
let txset t label addr v = Tx.set64 t.tx ~label addr v

let nbuckets t = load64 t "hashmap_tx.ml:nbuckets" (root t + off_nbuckets)
let buckets t = load64 t "hashmap_tx.ml:buckets" (root t + off_buckets)
let count t = load64 t "hashmap_tx.ml:count" (root t + off_count)
let bucket_slot t i = buckets t + (8 * i)
let read_bucket t i = load64 t "hashmap_tx.ml:1528" (bucket_slot t i)

let hash_with n k = k * 2654435761 land max_int mod n
let hash t k = hash_with (nbuckets t) k

let entry_key t e = load64 t "hashmap_tx.ml:entry key" (e + off_key)
let entry_value t e = load64 t "hashmap_tx.ml:entry value" (e + off_value)
let entry_next t e = load64 t "hashmap_tx.ml:entry next" (e + off_next)

let alloc_buckets t n =
  let arr = Pmalloc.alloc t.heap ~label:"hashmap_tx.ml:alloc buckets" (8 * n) in
  for i = 0 to n - 1 do
    store64 t "hashmap_tx.ml:init bucket" (arr + (8 * i)) 0
  done;
  flush t "hashmap_tx.ml:flush buckets" arr (8 * n);
  fence t "hashmap_tx.ml:fence buckets";
  arr

let create t ~nbuckets:n =
  let arr = alloc_buckets t n in
  store64 t "hashmap_tx.ml:init nbuckets" (root t + off_nbuckets) n;
  store64 t "hashmap_tx.ml:init count" (root t + off_count) 0;
  flush t "hashmap_tx.ml:flush meta" (root t + off_nbuckets) 24;
  fence t "hashmap_tx.ml:fence meta";
  store64 t "hashmap_tx.ml:commit buckets" (root t + off_buckets) arr;
  flush t "hashmap_tx.ml:flush commit" (root t + off_buckets) 8;
  fence t "hashmap_tx.ml:fence commit"

let create_or_open ?(bugs = no_bugs) ?pool_bugs ?alloc_bugs ?tx_bugs ?(nbuckets = 4) ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let heap = Pmalloc.init_or_open ?bugs:alloc_bugs pool in
  let tx = Tx.attach ?bugs:tx_bugs ctx0 ~base:(Pool.root pool + 64) ~capacity:tx_capacity in
  let t = { pool; heap; tx; bugs } in
  Tx.recover tx;
  if buckets t = 0 then create t ~nbuckets;
  t

let find t k =
  let i = hash t k in
  let rec walk prev e =
    if e = 0 then None
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"hashmap_tx.ml:find" ();
      if entry_key t e = k then Some (prev, e) else walk e (entry_next t e)
    end
  in
  walk 0 (read_bucket t i)

let lookup t k = Option.map (fun (_, e) -> entry_value t e) (find t k)

let fold t f acc =
  let n = nbuckets t in
  let rec chain e acc =
    if e = 0 then acc
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"hashmap_tx.ml:fold" ();
      chain (entry_next t e) (f e acc)
    end
  in
  let rec go i acc = if i >= n then acc else go (i + 1) (chain (read_bucket t i) acc) in
  go 0 acc

(* Rebuild into a bigger table inside the caller's transaction. Chains are
   relinked through logged stores; the array swap is the last logged write. *)
let rehash t =
  let old_n = nbuckets t in
  let new_n = old_n * 2 in
  let old_arr = buckets t in
  let new_arr = alloc_buckets t new_n in
  let all = fold t (fun e acc -> e :: acc) [] in
  List.iter
    (fun e ->
      let i = hash_with new_n (entry_key t e) in
      let head = load64 t "hashmap_tx.ml:rehash head" (new_arr + (8 * i)) in
      txset t "hashmap_tx.ml:rehash next" (e + off_next) head;
      txset t "hashmap_tx.ml:rehash bucket" (new_arr + (8 * i)) e)
    all;
  txset t "hashmap_tx.ml:rehash nbuckets" (root t + off_nbuckets) new_n;
  txset t "hashmap_tx.ml:rehash swap" (root t + off_buckets) new_arr;
  old_arr

(* Frees must wait until the transaction has committed: rolling back a crash
   would otherwise resurrect pointers into blocks whose payloads the free
   list has already clobbered. A crash between commit and free only leaks. *)
let insert t k v =
  Jaaru.Ctx.check (ctx t) ~label:"hashmap_tx.ml:insert" (k <> 0) "keys must be non-zero";
  let pending_free = ref None in
  Tx.run t.tx (fun () ->
      match find t k with
      | Some (_, e) -> txset t "hashmap_tx.ml:update value" (e + off_value) v
      | None ->
          let i = hash t k in
          let e = Pmalloc.alloc t.heap ~label:"hashmap_tx.ml:alloc entry" entry_size in
          (* Fresh object: plain stores plus an explicit flush are enough;
             the bucket head is the logged commit. *)
          store64 t "hashmap_tx.ml:new key" (e + off_key) k;
          store64 t "hashmap_tx.ml:new value" (e + off_value) v;
          store64 t "hashmap_tx.ml:new next" (e + off_next) (read_bucket t i);
          flush t "hashmap_tx.ml:flush entry" e entry_size;
          fence t "hashmap_tx.ml:fence entry";
          txset t "hashmap_tx.ml:link entry" (bucket_slot t i) e;
          txset t "hashmap_tx.ml:count" (root t + off_count) (count t + 1);
          if count t > t.bugs.rehash_factor * nbuckets t then pending_free := Some (rehash t));
  Option.iter (Pmalloc.free t.heap ~label:"hashmap_tx.ml:free old buckets") !pending_free

let remove t k =
  let pending_free = ref None in
  Tx.run t.tx (fun () ->
      match find t k with
      | None -> ()
      | Some (prev, e) ->
          let next = entry_next t e in
          let slot = if prev = 0 then bucket_slot t (hash t k) else prev + off_next in
          txset t "hashmap_tx.ml:unlink" slot next;
          txset t "hashmap_tx.ml:count" (root t + off_count) (count t - 1);
          pending_free := Some e);
  Option.iter (Pmalloc.free t.heap ~label:"hashmap_tx.ml:free entry") !pending_free

let check t =
  Pmalloc.check t.heap;
  let n = nbuckets t in
  Jaaru.Ctx.check (ctx t) ~label:"hashmap_tx.ml:check nbuckets" (n > 0 && n <= 65536)
    "bucket count out of range";
  let total = ref 0 in
  for i = 0 to n - 1 do
    let rec walk e =
      if e <> 0 then begin
        Jaaru.Ctx.progress (ctx t) ~label:"hashmap_tx.ml:check chain" ();
        incr total;
        Pmalloc.assert_allocated t.heap e;
        Jaaru.Ctx.check (ctx t) ~label:"hashmap_tx.ml:check hash"
          (hash t (entry_key t e) = i)
          "entry in the wrong bucket";
        walk (entry_next t e)
      end
    in
    walk (read_bucket t i)
  done;
  Jaaru.Ctx.check (ctx t) ~label:"hashmap_tx.ml:check count" (count t = !total)
    "count does not match the chains"

let entries t = List.rev (fold t (fun e acc -> (entry_key t e, entry_value t e) :: acc) [])
