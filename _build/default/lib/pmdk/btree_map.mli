(** A persistent B-tree map, modelled on the PMDK [btree_map] example.

    Fixed order 4: a node holds up to 4 sorted key/value items and 5
    children. Structural changes (item shifts, splits, root replacement) run
    inside an undo-log transaction so a crash rolls them back; the paper's
    PMDK bug #1 ("Illegal memory access at btree_map.c:89") is an atomicity
    violation in exactly this kind of update, reproduced here by the
    [nontx_split] toggle. Keys must be non-zero (0 marks an empty slot). *)

type bugs = {
  nontx_split : bool;
      (** Perform node splits with raw stores instead of transactionally: a
          crash mid-split leaves a node whose item count disagrees with its
          children array, and recovery dereferences garbage. *)
  missing_root_flush : bool;
      (** The root pointer update after a root split is not flushed. *)
}

val no_bugs : bugs

type t

val create_or_open :
  ?bugs:bugs -> ?pool_bugs:Pool.bugs -> ?alloc_bugs:Pmalloc.bugs -> Jaaru.Ctx.t -> t
(** Opens (or on first use creates) the tree in the context's region,
    running transaction recovery first. *)

val insert : t -> int -> int -> unit
val lookup : t -> int -> int option
val remove : t -> int -> unit
(** CLRS-style deletion (predecessor/successor replacement, sibling borrow,
    child merge, root shrink), inside one transaction: a crash anywhere
    rolls the whole removal back. *)

val min_key : t -> int option

val check : t -> unit
(** Recovery verification: walks the whole tree checking item counts, key
    ordering and child-pointer sanity; also re-validates the heap. *)

val entries : t -> (int * int) list
(** In-order key/value pairs (walks PM). *)
