type bugs = {
  missing_init_flush : bool;
  missing_bump_flush : bool;
  missing_free_flush : bool;
}

let no_bugs = { missing_init_flush = false; missing_bump_flush = false; missing_free_flush = false }

let heap_magic = 0x504d48454150 (* "PMHEAP" *)
let state_allocated = 1
let state_free = 2
let block_header_size = 16

(* Heap header fields, relative to the heap base. The magic commit lives on
   its own cache line: flushing it must not incidentally persist the bump
   pointer and free-list head it vouches for. *)
let off_magic = 0
let off_bump = 64
let off_free_head = 72
let heap_header_size = 128

type t = { pool : Pool.t; base : Pmem.Addr.t; bugs : bugs }

let ctx t = Pool.ctx t.pool
let align_up n a = (n + a - 1) / a * a

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()

let first_block t = t.base + heap_header_size
let bump t = load64 t "pmalloc.ml:read bump" (t.base + off_bump)
let free_head t = load64 t "pmalloc.ml:read free_head" (t.base + off_free_head)

let init t =
  store64 t "pmalloc.ml:init bump" (t.base + off_bump) (first_block t);
  store64 t "pmalloc.ml:init free_head" (t.base + off_free_head) 0;
  if not t.bugs.missing_init_flush then begin
    flush t "pmalloc.ml:flush init" (t.base + off_bump) 16;
    fence t "pmalloc.ml:fence init"
  end;
  store64 t "pmalloc.ml:init magic" (t.base + off_magic) heap_magic;
  flush t "pmalloc.ml:flush magic" (t.base + off_magic) 8;
  fence t "pmalloc.ml:fence magic"

let init_or_open ?(bugs = no_bugs) pool =
  let t = { pool; base = Pool.heap_base pool; bugs } in
  let magic = load64 t "pmalloc.ml:read magic" (t.base + off_magic) in
  if magic <> heap_magic then init t;
  t

(* Block headers: [size] then [state]; payload follows. Freed blocks reuse
   the first payload word as the free-list next link. *)
let hdr_size block = block
let hdr_state block = block + 8
let payload block = block + block_header_size
let block_of_payload p = p - block_header_size

let read_size t block = load64 t "pmalloc.ml:read size" (hdr_size block)
let read_state t block = load64 t "pmalloc.ml:read state" (hdr_state block)

let block_payload_size t p = read_size t (block_of_payload p)

let assert_allocated t p =
  let block = block_of_payload p in
  Jaaru.Ctx.check (ctx t) ~label:"heap.ml:533"
    (block >= first_block t && p <= bump t)
    "object lies outside the committed heap";
  let size = read_size t block in
  Jaaru.Ctx.check (ctx t) ~label:"heap.ml:533"
    (size > 0 && size mod block_header_size = 0
    && block + block_header_size + size <= bump t)
    "object's block header is corrupt";
  Jaaru.Ctx.check (ctx t) ~label:"heap.ml:533"
    (read_state t block = state_allocated)
    "object's block is not allocated"

(* First-fit scan of the persistent free list; returns (predecessor, block). *)
let find_free t want =
  let rec walk prev link =
    if link = 0 then None
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"pmalloc.ml:free scan" ();
      let block = block_of_payload link in
      let size = read_size t block in
      if size >= want then Some (prev, block)
      else walk link (load64 t "pmalloc.ml:read next" link)
    end
  in
  walk 0 (free_head t)

let alloc t ?(label = "pmalloc.ml:alloc") want =
  let want = align_up (max want 8) block_header_size in
  match find_free t want with
  | Some (prev_link, block) ->
      let next = load64 t "pmalloc.ml:read next" (payload block) in
      (* Unlink first, then mark allocated: a crash in between leaks the
         block but never double-allocates it. *)
      if prev_link = 0 then begin
        store64 t "pmalloc.ml:pop head" (t.base + off_free_head) next;
        flush t "pmalloc.ml:flush head" (t.base + off_free_head) 8
      end
      else begin
        store64 t "pmalloc.ml:unlink" prev_link next;
        flush t "pmalloc.ml:flush unlink" prev_link 8
      end;
      fence t "pmalloc.ml:fence unlink";
      store64 t label (hdr_state block) state_allocated;
      flush t "pmalloc.ml:flush state" (hdr_state block) 8;
      fence t "pmalloc.ml:fence state";
      payload block
  | None ->
      let block = bump t in
      let new_bump = block + block_header_size + want in
      if new_bump > Pool.heap_limit t.pool then
        Jaaru.Ctx.abort (ctx t) ~label:"pmalloc.ml:oom" "persistent heap exhausted";
      store64 t label (hdr_size block) want;
      store64 t label (hdr_state block) state_allocated;
      flush t "pmalloc.ml:flush header" block block_header_size;
      fence t "pmalloc.ml:fence header";
      (* The bump advance is the commit store for the new block. *)
      store64 t "pmalloc.ml:bump" (t.base + off_bump) new_bump;
      if not t.bugs.missing_bump_flush then begin
        flush t "pmalloc.ml:flush bump" (t.base + off_bump) 8;
        fence t "pmalloc.ml:fence bump"
      end;
      payload block

let free t ?(label = "pmalloc.ml:free") p =
  let block = block_of_payload p in
  let head = free_head t in
  store64 t label (hdr_state block) state_free;
  store64 t "pmalloc.ml:free next" p head;
  if not t.bugs.missing_free_flush then begin
    flush t "pmalloc.ml:flush freed" (hdr_state block) 8;
    flush t "pmalloc.ml:flush freed next" p 8;
    fence t "pmalloc.ml:fence freed"
  end;
  store64 t "pmalloc.ml:push head" (t.base + off_free_head) p;
  flush t "pmalloc.ml:flush push" (t.base + off_free_head) 8;
  fence t "pmalloc.ml:fence push"

let fold_blocks t f acc =
  let stop = bump t in
  let limit = Pool.heap_limit t.pool in
  let rec walk block acc =
    if block >= stop then acc
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"pmalloc.ml:walk" ();
      let size = read_size t block in
      Jaaru.Ctx.check (ctx t) ~label:"heap.ml:walk"
        (size > 0 && size mod block_header_size = 0 && block + block_header_size + size <= limit)
        "heap block has corrupt size";
      let state = read_state t block in
      Jaaru.Ctx.check (ctx t) ~label:"heap.ml:state"
        (state = state_allocated || state = state_free)
        "heap block has corrupt state";
      walk (block + block_header_size + size) (f block state size acc)
    end
  in
  walk (first_block t) acc

let check t =
  let stop = bump t in
  Jaaru.Ctx.check (ctx t) ~label:"heap.ml:bump"
    (stop >= first_block t && stop <= Pool.heap_limit t.pool)
    "heap bump pointer out of range";
  let blocks = fold_blocks t (fun block _ _ acc -> block :: acc) [] in
  let free_blocks = List.length (List.filter (fun b -> read_state t b = state_free) blocks) in
  (* Every free-list entry must be a known block in the free state; the list
     must terminate within the number of free blocks (no cycles). *)
  let rec walk link remaining =
    if link <> 0 then begin
      Jaaru.Ctx.progress (ctx t) ~label:"pmalloc.ml:check scan" ();
      Jaaru.Ctx.check (ctx t) ~label:"pmalloc.ml:freelist" (remaining > 0)
        "free list longer than the number of free blocks";
      let block = block_of_payload link in
      Jaaru.Ctx.check (ctx t) ~label:"pmalloc.ml:freelist"
        (List.mem block blocks)
        "free list entry is not a heap block";
      Jaaru.Ctx.check (ctx t) ~label:"pmalloc.ml:freelist"
        (read_state t block = state_free)
        "free list entry is not free";
      walk (load64 t "pmalloc.ml:read next" link) (remaining - 1)
    end
  in
  walk (free_head t) free_blocks

let live_blocks t =
  List.rev
    (fold_blocks t
       (fun block state _ acc -> if state = state_allocated then payload block :: acc else acc)
       [])
