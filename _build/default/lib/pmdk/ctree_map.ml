type bugs = { missing_node_flush : bool; missing_leaf_flush : bool }

let no_bugs = { missing_node_flush = false; missing_leaf_flush = false }

let layout_id = 0xc7ee
let max_bit = 61 (* keys are 62-bit non-negative ints *)
let root_size = 64

type t = { pool : Pool.t; heap : Pmalloc.t; bugs : bugs }

let ctx t = Pool.ctx t.pool
let root_slot t = Pool.root t.pool

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()

(* Tagged pointers: low bit set marks a leaf. *)
let tag_leaf addr = addr lor 1
let is_leaf p = p land 1 = 1
let untag p = p land lnot 1

(* Leaf: key, value. Internal: diff bit, child0, child1. *)
let leaf_key t p = load64 t "ctree_map.ml:leaf key" (untag p)
let leaf_value t p = load64 t "ctree_map.ml:leaf value" (untag p + 8)
let node_bit t p = load64 t "ctree_map.ml:node bit" p
let child_slot p side = p + 8 + (8 * side)
let read_child t p side = load64 t "ctree_map.ml:137" (child_slot p side)

let bit_of k b = (k lsr b) land 1

let create_or_open ?(bugs = no_bugs) ?pool_bugs ?alloc_bugs ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let heap = Pmalloc.init_or_open ?bugs:alloc_bugs pool in
  { pool; heap; bugs }

let alloc_leaf t k v =
  let p = Pmalloc.alloc t.heap ~label:"ctree_map.ml:alloc leaf" 16 in
  store64 t "ctree_map.ml:leaf init key" p k;
  store64 t "ctree_map.ml:leaf init value" (p + 8) v;
  if not t.bugs.missing_leaf_flush then begin
    flush t "ctree_map.ml:flush leaf" p 16;
    fence t "ctree_map.ml:fence leaf"
  end;
  p

let commit_slot t slot p =
  store64 t "ctree_map.ml:commit slot" slot p;
  flush t "ctree_map.ml:flush slot" slot 8;
  fence t "ctree_map.ml:fence slot"

let root_ptr t = load64 t "ctree_map.ml:read root" (root_slot t)

(* Descend to the leaf the key would occupy. *)
let rec find_leaf t p k =
  Jaaru.Ctx.progress (ctx t) ~label:"ctree_map.ml:descend" ();
  if is_leaf p then p
  else
    let b = node_bit t p in
    find_leaf t (read_child t p (bit_of k b)) k

let lookup t k =
  let r = root_ptr t in
  if r = 0 then None
  else
    let leaf = find_leaf t r k in
    if leaf_key t leaf = k then Some (leaf_value t leaf) else None

let highest_diff_bit a b =
  let x = a lxor b in
  let rec scan i = if i < 0 then -1 else if (x lsr i) land 1 = 1 then i else scan (i - 1) in
  scan max_bit

let insert t k v =
  Jaaru.Ctx.check (ctx t) ~label:"ctree_map.ml:insert"
    (k >= 0 && k <= (1 lsl (max_bit + 1)) - 1)
    "ctree keys must fit in 62 bits";
  let r = root_ptr t in
  if r = 0 then commit_slot t (root_slot t) (tag_leaf (alloc_leaf t k v))
  else begin
    let leaf = find_leaf t r k in
    let lk = leaf_key t leaf in
    if lk = k then begin
      (* In-place value update: an 8-byte store is failure-atomic. *)
      store64 t "ctree_map.ml:update value" (untag leaf + 8) v;
      flush t "ctree_map.ml:flush update" (untag leaf + 8) 8;
      fence t "ctree_map.ml:fence update"
    end
    else begin
      let b = highest_diff_bit k lk in
      (* Walk again to the edge where the new internal node belongs: the
         first slot whose subtree tests a bit below b. *)
      let rec find_edge slot p =
        if is_leaf p then (slot, p)
        else
          let pb = node_bit t p in
          if pb < b then (slot, p)
          else find_edge (child_slot p (bit_of k pb)) (read_child t p (bit_of k pb))
      in
      let slot, existing = find_edge (root_slot t) r in
      let new_leaf = tag_leaf (alloc_leaf t k v) in
      let node = Pmalloc.alloc t.heap ~label:"ctree_map.ml:alloc node" 24 in
      store64 t "ctree_map.ml:node init bit" node b;
      let side = bit_of k b in
      store64 t "ctree_map.ml:node init child" (child_slot node side) new_leaf;
      store64 t "ctree_map.ml:node init child" (child_slot node (1 - side)) existing;
      if not t.bugs.missing_node_flush then begin
        flush t "ctree_map.ml:flush node" node 24;
        fence t "ctree_map.ml:fence node"
      end;
      commit_slot t slot node
    end
  end

let remove t k =
  let r = root_ptr t in
  if r <> 0 then begin
    if is_leaf r then begin
      if leaf_key t r = k then begin
        commit_slot t (root_slot t) 0;
        Pmalloc.free t.heap ~label:"ctree_map.ml:free leaf" (untag r)
      end
    end
    else begin
      (* Track the slot holding the parent so the sibling can splice up. *)
      let rec descend parent_slot p =
        let b = node_bit t p in
        let side = bit_of k b in
        let c = read_child t p side in
        if is_leaf c then
          if leaf_key t c = k then begin
            let sibling = read_child t p (1 - side) in
            commit_slot t parent_slot sibling;
            Pmalloc.free t.heap ~label:"ctree_map.ml:free leaf" (untag c);
            Pmalloc.free t.heap ~label:"ctree_map.ml:free node" p
          end
          else ()
        else descend (child_slot p side) c
      in
      descend (root_slot t) r
    end
  end

(* --- verification -------------------------------------------------------- *)

(* Returns a representative key of the subtree. *)
let rec check_node t p ~parent_bit ~depth =
  Jaaru.Ctx.progress (ctx t) ~label:"ctree_map.ml:check" ();
  Jaaru.Ctx.check (ctx t) ~label:"ctree_map.ml:check depth" (depth <= max_bit + 2)
    "ctree deeper than the key width";
  if is_leaf p then leaf_key t p
  else begin
    let b = node_bit t p in
    Jaaru.Ctx.check (ctx t) ~label:"ctree_map.ml:check bit"
      (b >= 0 && b <= max_bit && b < parent_bit)
      "ctree diff bit out of order";
    let k0 = check_node t (read_child t p 0) ~parent_bit:b ~depth:(depth + 1) in
    let k1 = check_node t (read_child t p 1) ~parent_bit:b ~depth:(depth + 1) in
    Jaaru.Ctx.check (ctx t) ~label:"ctree_map.ml:check sides"
      (bit_of k0 b = 0 && bit_of k1 b = 1)
      "ctree child on the wrong side of its diff bit";
    Jaaru.Ctx.check (ctx t) ~label:"ctree_map.ml:check prefix"
      (k0 lsr (b + 1) = k1 lsr (b + 1))
      "ctree children disagree above the diff bit";
    k0
  end

let check t =
  Pmalloc.check t.heap;
  let r = root_ptr t in
  if r <> 0 then ignore (check_node t r ~parent_bit:(max_bit + 1) ~depth:0)

let entries t =
  let rec walk p acc =
    Jaaru.Ctx.progress (ctx t) ~label:"ctree_map.ml:entries" ();
    if is_leaf p then (leaf_key t p, leaf_value t p) :: acc
    else walk (read_child t p 0) (walk (read_child t p 1) acc)
  in
  let r = root_ptr t in
  if r = 0 then [] else walk r []
