type bugs = { missing_entry_flush : bool }

let no_bugs = { missing_entry_flush = false }

let layout_id = 0x4a5a
let root_size = 64

(* Root object fields. *)
let off_nbuckets = 0
let off_buckets = 8
let off_count = 16
let off_dirty = 24

(* Entry layout. *)
let off_key = 0
let off_value = 8
let off_next = 16
let entry_size = 24

type t = { pool : Pool.t; heap : Pmalloc.t; bugs : bugs }

let ctx t = Pool.ctx t.pool
let root t = Pool.root t.pool

let store64 t label addr v = Jaaru.Ctx.store64 (ctx t) ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 (ctx t) ~label addr
let flush t label addr size = Jaaru.Ctx.clflush (ctx t) ~label addr size
let fence t label = Jaaru.Ctx.sfence (ctx t) ~label ()

let nbuckets t = load64 t "hashmap_atomic.ml:nbuckets" (root t + off_nbuckets)
let buckets t = load64 t "hashmap_atomic.ml:buckets" (root t + off_buckets)
let count t = load64 t "hashmap_atomic.ml:count" (root t + off_count)
let dirty t = load64 t "hashmap_atomic.ml:dirty" (root t + off_dirty)
let bucket_slot t i = buckets t + (8 * i)
let read_bucket t i = load64 t "hashmap_atomic.ml:bucket head" (bucket_slot t i)

let hash t k = k * 2654435761 land max_int mod nbuckets t

let entry_key t e = load64 t "hashmap_atomic.ml:entry key" (e + off_key)
let entry_value t e = load64 t "hashmap_atomic.ml:entry value" (e + off_value)
let entry_next t e = load64 t "hashmap_atomic.ml:entry next" (e + off_next)

(* The dirty flag must be persistent before the structural commit store, so
   a crash between the commit and the count update recounts on recovery. *)
let mark_dirty t =
  store64 t "hashmap_atomic.ml:set dirty" (root t + off_dirty) 1;
  flush t "hashmap_atomic.ml:flush dirty" (root t + off_dirty) 8;
  fence t "hashmap_atomic.ml:fence dirty"

let publish_count t n =
  store64 t "hashmap_atomic.ml:set count" (root t + off_count) n;
  flush t "hashmap_atomic.ml:flush count" (root t + off_count) 8;
  fence t "hashmap_atomic.ml:fence count";
  store64 t "hashmap_atomic.ml:clear dirty" (root t + off_dirty) 0;
  flush t "hashmap_atomic.ml:flush dirty clear" (root t + off_dirty) 8;
  fence t "hashmap_atomic.ml:fence dirty clear"

let set_count t n =
  mark_dirty t;
  publish_count t n

let fold_chain t i f acc =
  let rec walk e acc =
    if e = 0 then acc
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"hashmap_atomic.ml:chain" ();
      walk (entry_next t e) (f e acc)
    end
  in
  walk (read_bucket t i) acc

let fold t f acc =
  let n = nbuckets t in
  let rec go i acc = if i >= n then acc else go (i + 1) (fold_chain t i f acc) in
  go 0 acc

let recount t =
  let real = fold t (fun _ n -> n + 1) 0 in
  set_count t real

let create t ~nbuckets:n =
  let arr = Pmalloc.alloc t.heap ~label:"hashmap_atomic.ml:alloc buckets" (8 * n) in
  for i = 0 to n - 1 do
    store64 t "hashmap_atomic.ml:init bucket" (arr + (8 * i)) 0
  done;
  flush t "hashmap_atomic.ml:flush buckets" arr (8 * n);
  fence t "hashmap_atomic.ml:fence buckets";
  store64 t "hashmap_atomic.ml:init nbuckets" (root t + off_nbuckets) n;
  store64 t "hashmap_atomic.ml:init count" (root t + off_count) 0;
  store64 t "hashmap_atomic.ml:init dirty" (root t + off_dirty) 0;
  flush t "hashmap_atomic.ml:flush meta" (root t + off_nbuckets) 32;
  fence t "hashmap_atomic.ml:fence meta";
  (* The buckets pointer is the creation commit store. *)
  store64 t "hashmap_atomic.ml:commit buckets" (root t + off_buckets) arr;
  flush t "hashmap_atomic.ml:flush commit" (root t + off_buckets) 8;
  fence t "hashmap_atomic.ml:fence commit"

let create_or_open ?(bugs = no_bugs) ?pool_bugs ?alloc_bugs ?(nbuckets = 4) ctx0 =
  let pool = Pool.open_or_create ?bugs:pool_bugs ctx0 ~layout:layout_id ~root_size in
  let heap = Pmalloc.init_or_open ?bugs:alloc_bugs pool in
  let t = { pool; heap; bugs } in
  if buckets t = 0 then create t ~nbuckets
  else if dirty t <> 0 then recount t;
  t

let find t k =
  let i = hash t k in
  let rec walk prev e =
    if e = 0 then None
    else begin
      Jaaru.Ctx.progress (ctx t) ~label:"hashmap_atomic.ml:find" ();
      if entry_key t e = k then Some (prev, e) else walk e (entry_next t e)
    end
  in
  walk 0 (read_bucket t i)

let lookup t k = Option.map (fun (_, e) -> entry_value t e) (find t k)

let insert t k v =
  Jaaru.Ctx.check (ctx t) ~label:"hashmap_atomic.ml:insert" (k <> 0) "keys must be non-zero";
  match find t k with
  | Some (_, e) ->
      store64 t "hashmap_atomic.ml:update value" (e + off_value) v;
      flush t "hashmap_atomic.ml:flush update" (e + off_value) 8;
      fence t "hashmap_atomic.ml:fence update"
  | None ->
      let i = hash t k in
      let e = Pmalloc.alloc t.heap ~label:"hashmap_atomic.ml:alloc entry" entry_size in
      store64 t "hashmap_atomic.ml:new key" (e + off_key) k;
      store64 t "hashmap_atomic.ml:new value" (e + off_value) v;
      store64 t "hashmap_atomic.ml:new next" (e + off_next) (read_bucket t i);
      if not t.bugs.missing_entry_flush then begin
        flush t "hashmap_atomic.ml:flush entry" e entry_size;
        fence t "hashmap_atomic.ml:fence entry"
      end;
      mark_dirty t;
      store64 t "hashmap_atomic.ml:commit entry" (bucket_slot t i) e;
      flush t "hashmap_atomic.ml:flush head" (bucket_slot t i) 8;
      fence t "hashmap_atomic.ml:fence head";
      publish_count t (count t + 1)

let remove t k =
  match find t k with
  | None -> ()
  | Some (prev, e) ->
      let next = entry_next t e in
      let slot = if prev = 0 then bucket_slot t (hash t k) else prev + off_next in
      mark_dirty t;
      store64 t "hashmap_atomic.ml:unlink" slot next;
      flush t "hashmap_atomic.ml:flush unlink" slot 8;
      fence t "hashmap_atomic.ml:fence unlink";
      Pmalloc.free t.heap ~label:"hashmap_atomic.ml:free entry" e;
      publish_count t (count t - 1)

let check t =
  Pmalloc.check t.heap;
  let n = nbuckets t in
  Jaaru.Ctx.check (ctx t) ~label:"hashmap_atomic.ml:check nbuckets" (n > 0 && n <= 65536)
    "bucket count out of range";
  let total = ref 0 in
  for i = 0 to n - 1 do
    fold_chain t i
      (fun e () ->
        incr total;
        Jaaru.Ctx.check (ctx t) ~label:"hashmap_atomic.ml:check chain" (!total <= 1_000_000)
          "hash chain does not terminate";
        Pmalloc.assert_allocated t.heap e;
        let k = entry_key t e in
        Jaaru.Ctx.check (ctx t) ~label:"hashmap_atomic.ml:check hash" (hash t k = i)
          "entry in the wrong bucket")
      ()
  done;
  if dirty t = 0 then
    Jaaru.Ctx.check (ctx t) ~label:"hashmap_atomic.ml:check count" (count t = !total)
      "clean count does not match the chains"

let entries t = List.rev (fold t (fun e acc -> (entry_key t e, entry_value t e) :: acc) [])
