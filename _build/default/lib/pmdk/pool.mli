(** A miniature libpmemobj pool.

    The pool occupies the checker's whole PM region. A header at the region
    base carries a magic number, a caller-chosen layout identifier, the root
    object offset and a checksum; [open_or_create] validates it on recovery.
    The paper's PMDK bug #2 ("Failed to open pool error") is a non-atomic
    pool-creation protocol: with [bugs.missing_header_flush] the magic can
    reach persistent memory while the fields it vouches for did not, so a
    crash during creation leaves a header that neither opens nor reads as
    never-created. *)

type bugs = {
  missing_header_flush : bool;
      (** Skip the flush + fence that must order header fields before the
          closing magic/checksum commit store. *)
}

val no_bugs : bugs

type t

val ctx : t -> Jaaru.Ctx.t
val root : t -> Pmem.Addr.t
(** Address of the root object (fixed size, chosen at creation). *)

val heap_base : t -> Pmem.Addr.t
(** First byte available to an allocator above the header and root. *)

val heap_limit : t -> Pmem.Addr.t

val create : ?bugs:bugs -> Jaaru.Ctx.t -> layout:int -> root_size:int -> t
(** Initialises a fresh pool. Fails the checker with an assertion if the
    region already holds a valid pool of a different layout. *)

val open_or_create : ?bugs:bugs -> Jaaru.Ctx.t -> layout:int -> root_size:int -> t
(** The recovery entry point: opens a valid pool, re-creates a never-created
    one (all-zero header), and reports the "failed to open pool" bug on a
    corrupt header. *)

val valid : Jaaru.Ctx.t -> layout:int -> bool
(** Whether the region currently holds a fully valid header (reads PM). *)
