(** A miniature persistent allocator in the style of libpmemobj's heap
    (pmalloc).

    Blocks live contiguously above the heap header; each carries a 16-byte
    persistent header (payload size and allocation state). A bump pointer in
    the heap header commits fresh blocks; freed blocks go on a persistent
    free list threaded through their payloads.

    Crash-consistency protocol: a fresh block's header is flushed before the
    bump pointer advances (the bump store is the commit store); a freed
    block's state and next link are flushed before the free-list head is
    updated. The recovery-side {!check} re-validates both invariants, with
    assertion labels mirroring the paper's PMDK symptoms ([heap.c:533],
    [pmalloc.c:270]). *)

type bugs = {
  missing_init_flush : bool;
      (** Constructor commits the heap magic without flushing the bump
          pointer / free-list head first. *)
  missing_bump_flush : bool;
      (** The bump pointer advance is not flushed: a committed object can sit
          beyond the recovered heap end. *)
  missing_free_flush : bool;
      (** A freed block's state/link are not flushed before the free-list
          head commits. *)
}

val no_bugs : bugs

type t

val init_or_open : ?bugs:bugs -> Pool.t -> t
(** Opens the heap in the pool's heap area, initialising it on first use.
    Safe to call from recovery code. *)

val alloc : t -> ?label:string -> int -> Pmem.Addr.t
(** Allocates a block of at least the given payload size (16-byte aligned)
    and returns the payload address. Fails the checker with an assertion when
    the heap is exhausted. *)

val free : t -> ?label:string -> Pmem.Addr.t -> unit
(** Returns a payload address to the free list. *)

val check : t -> unit
(** Recovery heap verification: walks every block header up to the bump
    pointer and the whole free list, failing the checker on any corruption. *)

val block_payload_size : t -> Pmem.Addr.t -> int
(** Reads a block's payload size from its header. *)

val assert_allocated : t -> Pmem.Addr.t -> unit
(** Validates that a payload address refers to a live heap object: inside the
    committed heap (below the bump pointer) and marked allocated. The analog
    of libpmemobj validating an object's chunk metadata on access — its
    failure is the paper's "Assertion failure at heap.c:533" symptom. *)

val live_blocks : t -> Pmem.Addr.t list
(** Payload addresses of blocks currently marked allocated (walks PM). *)
