(** A persistent chained hash map with atomic (non-transactional) updates,
    modelled on the PMDK [hashmap_atomic] example.

    Buckets form a persistent pointer array; entries are chained. Inserts
    follow the atomic protocol: the fully-initialised entry (including its
    next link) is flushed before the single bucket-head store commits it.
    The element count is maintained with a dirty flag and recounted on
    recovery when the flag was set at the crash.

    The paper's two hashmap_atomic bugs (Fig. 12 #3 and #5) are allocator
    bugs surfaced by this workload — pass the corresponding {!Pmalloc.bugs}
    toggles; [missing_entry_flush] is the map's own missing-flush bug. *)

type bugs = {
  missing_entry_flush : bool;
      (** The new entry is not flushed before the bucket head commits it. *)
}

val no_bugs : bugs

type t

val create_or_open :
  ?bugs:bugs -> ?pool_bugs:Pool.bugs -> ?alloc_bugs:Pmalloc.bugs ->
  ?nbuckets:int -> Jaaru.Ctx.t -> t
(** Runs count recovery on open when the dirty flag was set. *)

val insert : t -> int -> int -> unit
(** Keys must be non-zero; duplicate keys update the value in place. *)

val lookup : t -> int -> int option
val remove : t -> int -> unit
val count : t -> int

val check : t -> unit
(** Recovery verification: every chain entry hashes to its bucket, the chain
    terminates, and the count matches unless marked dirty; re-validates the
    heap. *)

val entries : t -> (int * int) list
