type bugs = {
  missing_log_flush : bool;
  missing_data_flush : bool;
  missing_stage_flush : bool;
}

let no_bugs = { missing_log_flush = false; missing_data_flush = false; missing_stage_flush = false }

let stage_none = 0
let stage_work = 1

(* Log layout: the stage word and the entry count live on separate cache
   lines — each is a commit for different state (the count for entries, the
   stage for the whole log), and flushing one must not persist the other. *)
let off_stage = 0
let off_count = 64
let off_entries = 128
let entry_size = 16

let area_size ~capacity = off_entries + (entry_size * capacity)

type t = {
  ctx : Jaaru.Ctx.t;
  base : Pmem.Addr.t;
  capacity : int;
  bugs : bugs;
  mutable depth : int;  (* nesting depth; only the outermost commits *)
  mutable dirty : (Pmem.Addr.t * int) list;  (* ranges to flush at commit *)
  mutable recovered_active : bool;
}

let attach ?(bugs = no_bugs) ctx ~base ~capacity =
  if capacity <= 0 then invalid_arg "Tx.attach: capacity must be positive";
  { ctx; base; capacity; bugs; depth = 0; dirty = []; recovered_active = false }

let in_tx t = t.depth > 0
let stage_was_active t = t.recovered_active

let entry_addr t i = t.base + off_entries + (i * entry_size)

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let set_stage t stage =
  store64 t "tx.ml:stage" (t.base + off_stage) stage;
  if not t.bugs.missing_stage_flush then begin
    flush t "tx.ml:flush stage" (t.base + off_stage) 8;
    fence t "tx.ml:fence stage"
  end

let reset_log t =
  (* The count reset must be durable before the stage returns to NONE: a
     stale count would make the next transaction append entries after relics
     of this one, and a later rollback would then resurrect stale values.
     (Found by the checker itself once the count stopped sharing the stage's
     cache line.) *)
  store64 t "tx.ml:reset count" (t.base + off_count) 0;
  if not t.bugs.missing_stage_flush then begin
    flush t "tx.ml:flush reset count" (t.base + off_count) 8;
    fence t "tx.ml:fence reset count"
  end;
  set_stage t stage_none

let snapshot t label addr =
  let count = load64 t "tx.ml:read count" (t.base + off_count) in
  Jaaru.Ctx.check t.ctx ~label:"tx.ml:capacity" (count < t.capacity) "transaction log overflow";
  let old = load64 t label addr in
  let e = entry_addr t count in
  store64 t "tx.ml:log addr" e addr;
  store64 t "tx.ml:log old" (e + 8) old;
  if not t.bugs.missing_log_flush then begin
    flush t "tx.ml:flush entry" e entry_size;
    fence t "tx.ml:fence entry"
  end;
  (* The count advance commits the entry. *)
  store64 t "tx.ml:count" (t.base + off_count) (count + 1);
  if not t.bugs.missing_log_flush then begin
    flush t "tx.ml:flush count" (t.base + off_count) 8;
    fence t "tx.ml:fence count"
  end

let add_range t ?(label = "tx.ml:add_range") addr size =
  if not (in_tx t) then Jaaru.Ctx.abort t.ctx ~label "add_range outside a transaction";
  let words = (max size 1 + 7) / 8 in
  for i = 0 to words - 1 do
    snapshot t label (addr + (8 * i))
  done;
  t.dirty <- (addr, words * 8) :: t.dirty

let set64 t ?(label = "tx.ml:set64") addr v =
  if not (in_tx t) then Jaaru.Ctx.abort t.ctx ~label "set64 outside a transaction";
  snapshot t label addr;
  t.dirty <- (addr, 8) :: t.dirty;
  store64 t label addr v

let commit t =
  if not t.bugs.missing_data_flush then begin
    List.iter (fun (addr, size) -> flush t "tx.ml:flush data" addr size) t.dirty;
    fence t "tx.ml:fence data"
  end;
  t.dirty <- [];
  reset_log t

let run t body =
  if t.depth = 0 then begin
    Jaaru.Ctx.check t.ctx ~label:"tx.ml:begin"
      (load64 t "tx.ml:read stage" (t.base + off_stage) = stage_none)
      "transaction already in progress";
    t.dirty <- [];
    set_stage t stage_work
  end;
  t.depth <- t.depth + 1;
  Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1)
    (fun () ->
      body ();
      if t.depth = 1 then commit t)

let recover t =
  let stage = load64 t "tx.ml:recover stage" (t.base + off_stage) in
  if stage = stage_work then begin
    t.recovered_active <- true;
    let count = load64 t "tx.ml:recover count" (t.base + off_count) in
    Jaaru.Ctx.check t.ctx ~label:"tx.ml:recover"
      (count >= 0 && count <= t.capacity)
      "undo log count out of range";
    (* Newest first: later snapshots may shadow earlier ones. *)
    for i = count - 1 downto 0 do
      let e = entry_addr t i in
      let addr = load64 t "tx.ml:recover addr" e in
      let old = load64 t "tx.ml:recover old" (e + 8) in
      store64 t "tx.ml:rollback" addr old;
      flush t "tx.ml:flush rollback" addr 8
    done;
    fence t "tx.ml:fence rollback";
    reset_log t
  end
  else if stage <> stage_none then
    Jaaru.Ctx.abort t.ctx ~label:"tx.ml:recover" "undo log stage corrupt"
