lib/pmdk/workloads.ml: Btree_map Clog Ctree_map Hashmap_atomic Hashmap_tx Jaaru List Pmalloc Pool Rbtree_map Skiplist_map Tx
