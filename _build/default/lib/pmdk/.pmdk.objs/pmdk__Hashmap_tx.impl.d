lib/pmdk/hashmap_tx.ml: Jaaru List Option Pmalloc Pool Tx
