lib/pmdk/rbtree_map.mli: Jaaru Pmalloc Pool Tx
