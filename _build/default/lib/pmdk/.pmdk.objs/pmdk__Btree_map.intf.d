lib/pmdk/btree_map.mli: Jaaru Pmalloc Pool
