lib/pmdk/clog.ml: Jaaru List Pmem Pool
