lib/pmdk/workloads.mli: Jaaru
