lib/pmdk/btree_map.ml: Jaaru List Pmalloc Pool Tx
