lib/pmdk/pool.ml: Jaaru List Pmem
