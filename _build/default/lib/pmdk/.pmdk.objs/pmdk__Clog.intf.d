lib/pmdk/clog.mli: Jaaru Pool
