lib/pmdk/tx.ml: Fun Jaaru List Pmem
