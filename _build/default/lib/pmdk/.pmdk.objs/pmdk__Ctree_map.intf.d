lib/pmdk/ctree_map.mli: Jaaru Pmalloc Pool
