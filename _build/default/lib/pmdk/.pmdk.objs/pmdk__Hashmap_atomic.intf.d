lib/pmdk/hashmap_atomic.mli: Jaaru Pmalloc Pool
