lib/pmdk/pool.mli: Jaaru Pmem
