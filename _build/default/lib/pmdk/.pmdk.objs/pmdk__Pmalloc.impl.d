lib/pmdk/pmalloc.ml: Jaaru List Pmem Pool
