lib/pmdk/rbtree_map.ml: Jaaru Option Pmalloc Pmem Pool Tx
