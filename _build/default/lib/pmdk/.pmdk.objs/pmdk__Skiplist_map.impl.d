lib/pmdk/skiplist_map.ml: Array Hashtbl Jaaru List Pmalloc Pool
