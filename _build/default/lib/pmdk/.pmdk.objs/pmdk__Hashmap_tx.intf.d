lib/pmdk/hashmap_tx.mli: Jaaru Pmalloc Pool Tx
