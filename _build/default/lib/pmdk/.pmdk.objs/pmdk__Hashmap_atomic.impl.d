lib/pmdk/hashmap_atomic.ml: Jaaru List Option Pmalloc Pool
