lib/pmdk/tx.mli: Jaaru Pmem
