lib/pmdk/ctree_map.ml: Jaaru Pmalloc Pool
