lib/pmdk/pmalloc.mli: Pmem Pool
