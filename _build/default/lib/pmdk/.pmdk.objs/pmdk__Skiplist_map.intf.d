lib/pmdk/skiplist_map.mli: Jaaru Pmalloc Pool
