(** A persistent skip list map, modelled on the PMDK [skiplist_map] example
    (the paper checked every program in the PMDK suite).

    Four levels; the level-0 chain owns the data and the upper levels are a
    search index. A fully persisted node is committed by the single level-0
    predecessor-link store; upper-level splices follow, each an independent
    8-byte store whose loss a crash only costs search performance, never
    correctness. *)

type bugs = {
  missing_node_flush : bool;
      (** The new node is not flushed before the level-0 splice commits it. *)
  index_before_data : bool;
      (** Upper levels are spliced before the level-0 commit: a crash leaves
          index entries pointing at an unreachable (possibly torn) node. *)
}

val no_bugs : bugs

type t

val create_or_open :
  ?bugs:bugs -> ?pool_bugs:Pool.bugs -> ?alloc_bugs:Pmalloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-zero; duplicates update in place. *)

val lookup : t -> int -> int option
val remove : t -> int -> unit

val check : t -> unit
(** Recovery verification: every level sorted, every upper-level node
    present in the level-0 chain, heap re-validated. *)

val entries : t -> (int * int) list
