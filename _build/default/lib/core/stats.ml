type t = {
  executions : int;
  failure_points : int;
  rf_decisions : int;
  multi_rf_loads : int;
  stores : int;
  flushes : int;
  wall_time : float;
  exhausted : bool;
}

let executions_per_fp s =
  if s.failure_points = 0 then 0. else float_of_int s.executions /. float_of_int s.failure_points

let pp ppf s =
  Format.fprintf ppf
    "%d executions over %d failure points (%.2f per fp), %d rf decisions, %d multi-rf loads, %d \
     stores, %d flushes, %.3fs%s"
    s.executions s.failure_points (executions_per_fp s) s.rf_decisions s.multi_rf_loads s.stores
    s.flushes s.wall_time
    (if s.exhausted then "" else " (cut short)")
