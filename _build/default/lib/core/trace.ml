type t = { slots : string array; mutable next : int; mutable count : int }

let create ~depth = { slots = Array.make (max 1 depth) ""; next = 0; count = 0 }

let add t ev =
  let depth = Array.length t.slots in
  t.slots.(t.next) <- ev;
  t.next <- (t.next + 1) mod depth;
  if t.count < depth then t.count <- t.count + 1

let clear t =
  t.next <- 0;
  t.count <- 0

let events t =
  let depth = Array.length t.slots in
  let start = (t.next - t.count + depth) mod depth in
  List.init t.count (fun i -> t.slots.((start + i) mod depth))
