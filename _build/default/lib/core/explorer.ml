type scenario = { name : string; pre : Ctx.t -> unit; post : Ctx.t -> unit }

let scenario ~name ~pre ~post = { name; pre; post }
let scenario_single ~name main = { name; pre = main; post = main }

type outcome = {
  bugs : Bug.t list;
  stats : Stats.t;
  multi_rf : Ctx.multi_rf list;
  perf : Ctx.perf_report list;
}

(* One complete scenario execution: run the pre-failure program; every
   injected failure aborts the current execution and starts the recovery
   program on the surviving persistent state. *)
let replay_once scn ctx =
  let rec recover () =
    Ctx.after_crash ctx;
    try
      scn.post ctx;
      Ctx.finish_execution ctx
    with Ctx.Power_failure -> recover ()
  in
  try
    scn.pre ctx;
    Ctx.finish_execution ctx
  with Ctx.Power_failure -> recover ()

let run ?(config = Config.default) scn =
  let choice = Choice.create () in
  let bugs = ref [] in
  let multi_rf : (string * Pmem.Addr.t, Ctx.multi_rf) Hashtbl.t = Hashtbl.create 16 in
  let perf : (Ctx.perf_report, unit) Hashtbl.t = Hashtbl.create 16 in
  let executions = ref 0 in
  let failure_points = ref 0 in
  let stores = ref 0 in
  let flushes = ref 0 in
  let exhausted = ref false in
  let t0 = Unix.gettimeofday () in
  let record_bug ctx kind location =
    let bug =
      {
        Bug.kind;
        location;
        exec_depth = Ctx.failures ctx;
        trace = Ctx.trace_events ctx;
      }
    in
    if not (List.exists (Bug.same_report bug) !bugs) then bugs := bug :: !bugs
  in
  let stop = ref false in
  while not !stop do
    Choice.begin_replay choice;
    let ctx = Ctx.create ~config ~choice in
    (try replay_once scn ctx with
    | Ctx.Power_failure -> assert false
    | Choice.Divergence _ as e -> raise e
    | Bug.Found (kind, location) -> record_bug ctx kind location
    | Stack_overflow | Out_of_memory -> record_bug ctx (Bug.Program_exception "resource exhaustion") (Ctx.last_label ctx)
    | e -> record_bug ctx (Bug.Program_exception (Printexc.to_string e)) (Ctx.last_label ctx));
    incr executions;
    if !executions = 1 then begin
      (* The first replay takes every continue branch: it is the original
         failure-free execution, whose counts Fig. 14 reports. *)
      failure_points := Ctx.fp_count ctx;
      match List.rev (Exec.Exec_stack.to_list (Ctx.exec_stack ctx)) with
      | _ :: first :: _ ->
          stores := Exec.Exec_record.store_count first;
          flushes := Exec.Exec_record.flush_count first
      | [ _ ] | [] -> ()
    end;
    List.iter
      (fun (r : Ctx.multi_rf) ->
        let key = (r.load_label, r.load_addr) in
        if not (Hashtbl.mem multi_rf key) then Hashtbl.add multi_rf key r)
      (Ctx.multi_rf_reports ctx);
    List.iter (fun r -> Hashtbl.replace perf r ()) (Ctx.perf_reports ctx);
    if config.Config.stop_at_first_bug && !bugs <> [] then stop := true
    else if !executions >= config.Config.max_executions then stop := true
    else if not (Choice.advance choice) then begin
      exhausted := true;
      stop := true
    end
  done;
  let stats =
    {
      Stats.executions = !executions;
      failure_points = !failure_points;
      rf_decisions = Choice.created choice Choice.Read_from;
      multi_rf_loads = Hashtbl.length multi_rf;
      stores = !stores;
      flushes = !flushes;
      wall_time = Unix.gettimeofday () -. t0;
      exhausted = !exhausted;
    }
  in
  let multi_rf = Hashtbl.fold (fun _ r acc -> r :: acc) multi_rf [] in
  let multi_rf =
    List.sort (fun a b -> compare (a.Ctx.load_label, a.Ctx.load_addr) (b.Ctx.load_label, b.Ctx.load_addr)) multi_rf
  in
  let perf = List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) perf []) in
  { bugs = List.rev !bugs; stats; multi_rf; perf }

let found_bug o = o.bugs <> []

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%a@," Stats.pp o.stats;
  (if o.bugs = [] then Format.fprintf ppf "no bugs found"
   else begin
     Format.fprintf ppf "%d bug(s):" (List.length o.bugs);
     List.iter (fun b -> Format.fprintf ppf "@,  %s" (Bug.symptom b)) o.bugs
   end);
  if o.perf <> [] then begin
    Format.fprintf ppf "@,%d performance issue(s):" (List.length o.perf);
    List.iter
      (fun (r : Ctx.perf_report) ->
        Format.fprintf ppf "@,  %s at %s"
          (match r.Ctx.perf_kind with
          | Ctx.Redundant_flush -> "redundant flush"
          | Ctx.Redundant_fence -> "redundant fence")
          r.Ctx.perf_label)
      o.perf
  end;
  Format.fprintf ppf "@]"
