(** The replay DFS over nondeterministic choices.

    Jaaru explores a failure scenario by re-running it from scratch under a
    recorded list of decisions (stateless-model-checking replay — the
    substitute for the paper's fork-based rollback). Each nondeterministic
    point in an execution — inject a failure or not, which store a load reads
    from, how much of the store buffer drains at a crash — consults this
    stack: decisions inside the recorded prefix are replayed, fresh ones
    default to alternative 0 and are recorded. After each replay, {!advance}
    flips the deepest unexhausted decision, depth-first, until the whole tree
    has been visited. *)

type kind = Failure_point | Read_from | Drain
(** What a decision was about — kept for statistics and debug output. *)

exception Divergence of string
(** A replayed decision saw a different shape than when it was recorded —
    the program under test is nondeterministic (e.g. it consulted wall-clock
    time or hash-table iteration order). *)

type t

val create : unit -> t

val begin_replay : t -> unit
(** Rewinds the cursor to the start of the recorded prefix. *)

val choose : t -> kind -> int -> int
(** [choose t kind n] returns the alternative (in [0, n-1]) for the decision
    at the cursor. Raises [Invalid_argument] on [n <= 0] and {!Divergence}
    when a replayed decision sees a different [kind] or [n] than when it was
    recorded. *)

val advance : t -> bool
(** Truncates the record to the decisions actually consumed by the last
    replay, then steps to the next unexplored leaf. [false] when the search
    space is exhausted. *)

val depth : t -> int
(** Decisions consumed by the current replay so far. *)

val count_kind : t -> kind -> int
(** Decisions of a kind in the current record (diagnostic). *)

val created : t -> kind -> int
(** Cumulative count of fresh decisions of a kind created over the whole
    exploration (never decreases on truncation). *)
