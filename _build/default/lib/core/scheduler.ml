type fiber = { enter : unit -> unit; body : unit -> unit }

type _ Effect.t += Yield : unit Effect.t

let yield () = try Effect.perform Yield with Effect.Unhandled _ -> ()

(* Trampoline: a yielding fiber parks its continuation on the run queue and
   the handled computation returns to the scheduler loop, so the native stack
   stays constant no matter how many context switches occur. [pick], given
   the queue length, selects which parked fiber runs next — index 0 is
   round-robin; a seeded PRNG turns the scheduler into a deterministic
   concurrency fuzzer. *)
let run_fibers ?(pick = fun _ -> 0) fibers =
  let open Effect.Deep in
  let runq : (unit -> unit) list ref = ref [] in
  let push resume = runq := !runq @ [ resume ] in
  let take () =
    match !runq with
    | [] -> None
    | q ->
        let n = List.length q in
        let i = pick n in
        let i = if i < 0 || i >= n then 0 else i in
        let chosen = List.nth q i in
        runq := List.filteri (fun j _ -> j <> i) q;
        Some chosen
  in
  let handler fb =
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) continuation) ->
                  push (fun () ->
                      fb.enter ();
                      continue k ()))
          | _ -> None);
    }
  in
  List.iter
    (fun fb ->
      push (fun () ->
          fb.enter ();
          match_with fb.body () (handler fb)))
    fibers;
  let rec loop () =
    match take () with
    | None -> ()
    | Some resume ->
        resume ();
        loop ()
  in
  loop ()
