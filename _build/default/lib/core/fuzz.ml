type result = {
  runs : int;
  bugs : Bug.t list;
  buggy_seeds : (int * string) list;
  total_executions : int;
}

let run ?(config = Config.default) ~seeds scn =
  let bugs = ref [] in
  let buggy_seeds = ref [] in
  let total = ref 0 in
  List.iter
    (fun seed ->
      let config = { config with Config.schedule_seed = Some seed } in
      let o = Explorer.run ~config scn in
      total := !total + o.Explorer.stats.Stats.executions;
      (match o.Explorer.bugs with
      | [] -> ()
      | b :: _ -> buggy_seeds := (seed, Bug.symptom b) :: !buggy_seeds);
      List.iter
        (fun b -> if not (List.exists (Bug.same_report b) !bugs) then bugs := b :: !bugs)
        o.Explorer.bugs)
    seeds;
  {
    runs = List.length seeds;
    bugs = List.rev !bugs;
    buggy_seeds = List.rev !buggy_seeds;
    total_executions = !total;
  }

let found_bug r = r.bugs <> []

let pp ppf r =
  Format.fprintf ppf "@[<v>%d schedules fuzzed, %d executions total@," r.runs r.total_executions;
  if r.bugs = [] then Format.fprintf ppf "no bugs found@]"
  else begin
    Format.fprintf ppf "%d bug(s) on %d seed(s):" (List.length r.bugs)
      (List.length r.buggy_seeds);
    List.iter (fun (seed, s) -> Format.fprintf ppf "@,  seed %d: %s" seed s) r.buggy_seeds;
    Format.fprintf ppf "@]"
  end
