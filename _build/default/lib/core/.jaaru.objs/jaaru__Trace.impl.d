lib/core/trace.ml: Array List
