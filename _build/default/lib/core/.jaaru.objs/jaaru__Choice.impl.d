lib/core/choice.ml: Array Printf
