lib/core/scheduler.ml: Effect Fun List
