lib/core/config.ml: Format Pmem
