lib/core/scheduler.mli:
