lib/core/fuzz.mli: Bug Config Explorer Format
