lib/core/trace.mli:
