lib/core/explorer.mli: Bug Config Ctx Format Stats
