lib/core/bug.ml: Format List Pmem Printf String
