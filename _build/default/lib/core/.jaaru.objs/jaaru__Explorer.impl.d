lib/core/explorer.ml: Bug Choice Config Ctx Exec Format Hashtbl List Pmem Printexc Stats Unix
