lib/core/choice.mli:
