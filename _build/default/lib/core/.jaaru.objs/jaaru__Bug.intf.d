lib/core/bug.mli: Format Pmem
