lib/core/ctx.ml: Array Bug Choice Config Exec Format Fun Hashtbl List Pmem Scheduler Trace Tso
