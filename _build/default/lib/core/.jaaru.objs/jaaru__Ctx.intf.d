lib/core/ctx.mli: Choice Config Exec Pmem
