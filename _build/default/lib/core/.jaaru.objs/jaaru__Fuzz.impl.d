lib/core/fuzz.ml: Bug Config Explorer Format List Stats
