lib/core/config.mli: Format Pmem
