(** A bounded ring of recent execution events, attached to bug reports so a
    developer can see what led to the crash (paper §4, Debugging support). *)

type t

val create : depth:int -> t
val add : t -> string -> unit
val clear : t -> unit

val events : t -> string list
(** Oldest first, at most [depth] entries. *)
